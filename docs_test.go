package lfoc_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	lfoc "github.com/faircache/lfoc"
)

// docFiles returns every committed markdown file the link checker and
// drift tests cover.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md", "DESIGN.md", "PAPER.md", "ROADMAP.md"}
	extra, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, extra...)
	for _, f := range files {
		if _, err := os.Stat(f); err != nil {
			t.Fatalf("doc file missing: %v", err)
		}
	}
	return files
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// headingAnchor reproduces the GitHub slug for a markdown heading:
// lowercase, spaces to hyphens, punctuation dropped.
func headingAnchor(heading string) string {
	h := strings.ToLower(strings.TrimSpace(heading))
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}

func fileAnchors(t *testing.T, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	anchors := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		anchors[headingAnchor(strings.TrimLeft(line, "# "))] = true
	}
	return anchors
}

// TestMarkdownLinksResolve walks every relative link in the committed
// docs and fails on targets that do not exist, including heading
// anchors.
func TestMarkdownLinksResolve(t *testing.T) {
	for _, file := range docFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, anchor, _ := strings.Cut(target, "#")
			resolved := file
			if path != "" {
				resolved = filepath.Join(filepath.Dir(file), path)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q: %v", file, target, err)
					continue
				}
			}
			if anchor != "" && strings.HasSuffix(resolved, ".md") {
				if !fileAnchors(t, resolved)[anchor] {
					t.Errorf("%s: link %q: no heading with anchor %q in %s",
						file, target, anchor, resolved)
				}
			}
		}
	}
}

// flagDef matches flag definitions on the global flag package and on
// a `fs`-named FlagSet (cmd/lfoc-vet parses into one for testability).
var flagDef = regexp.MustCompile(`\b(?:flag|fs)\.(?:String|Bool|Int|Int64|Uint64|Float64|Duration)\("([^"]+)"`)

func definedFlags(t *testing.T, mainPath string) []string {
	t.Helper()
	data, err := os.ReadFile(mainPath)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, m := range flagDef.FindAllStringSubmatch(string(data), -1) {
		names = append(names, m[1])
	}
	if len(names) == 0 {
		t.Fatalf("no flag definitions found in %s", mainPath)
	}
	return names
}

// readmeSection extracts the README text between a heading and the next
// heading of the same or higher level.
func readmeSection(t *testing.T, readme, heading string) string {
	t.Helper()
	idx := strings.Index(readme, heading)
	if idx < 0 {
		t.Fatalf("README section %q missing", heading)
	}
	rest := readme[idx+len(heading):]
	if end := strings.Index(rest, "\n#"); end >= 0 {
		rest = rest[:end]
	}
	return rest
}

// TestREADMEFlagTablesCurrent pins the README CLI flag tables to the
// flag definitions in the CLI sources: every defined flag must have a
// table row, and every table row must correspond to a defined flag.
func TestREADMEFlagTablesCurrent(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	readme := string(data)
	rowName := regexp.MustCompile("(?m)^\\| `-([^`]+)` \\|")

	cases := []struct {
		heading string
		main    string
	}{
		{"### lfoc-sim flags", filepath.Join("cmd", "lfoc-sim", "main.go")},
		{"### lfoc-bench flags", filepath.Join("cmd", "lfoc-bench", "main.go")},
		{"### lfoc-vet flags", filepath.Join("cmd", "lfoc-vet", "main.go")},
	}
	for _, c := range cases {
		section := readmeSection(t, readme, c.heading)
		rows := map[string]bool{}
		for _, m := range rowName.FindAllStringSubmatch(section, -1) {
			rows[m[1]] = true
		}
		defined := definedFlags(t, c.main)
		for _, name := range defined {
			if !rows[name] {
				t.Errorf("%s: flag -%s defined in %s but missing from the README table",
					c.heading, name, c.main)
			}
			delete(rows, name)
		}
		for name := range rows {
			t.Errorf("%s: README table lists -%s but %s does not define it",
				c.heading, name, c.main)
		}
	}
}

// TestExampleSpecsRun smoke-tests every committed spec under
// examples/specs/: it must parse, validate, generate a non-empty
// arrival stream, and run through the open-system simulator.
func TestExampleSpecsRun(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("examples", "specs", "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 4 {
		t.Fatalf("expected at least the 4 cookbook specs under examples/specs, found %d", len(paths))
	}
	cfg := lfoc.DefaultExperimentConfig()
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			spec, err := lfoc.LoadWorkloadSpec(path)
			if err != nil {
				t.Fatal(err)
			}
			scn, err := spec.Scenario(cfg.Scale)
			if err != nil {
				t.Fatal(err)
			}
			if len(scn.Arrivals()) == 0 {
				t.Fatalf("%s generated no arrivals", path)
			}
			pol, _, err := cfg.NewDynamicPolicy("lfoc")
			if err != nil {
				t.Fatal(err)
			}
			res, err := lfoc.RunOpen(cfg.SimConfig(), scn, pol)
			if err != nil {
				t.Fatal(err)
			}
			if res.Departed == 0 {
				t.Fatalf("%s: no application departed", path)
			}
		})
	}
}
