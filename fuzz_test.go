// Native fuzz targets for every text format the CLIs parse from user
// input: workload specs (YAML and JSON), arrival traces, fleet event
// schedules and machine-mix strings. The contract under fuzzing is
// uniform — a parser either succeeds or returns an error; it never
// panics — and successful parses must satisfy the format's own
// invariants (a reparse of a successful parse cannot fail). Seed
// corpora come from the shipped example specs and the flag syntax the
// documentation advertises.
//
// CI runs these with a short -fuzztime as a smoke test; run them longer
// locally with e.g.:
//
//	go test -fuzz=FuzzParseWorkloadSpec -fuzztime=60s .
package lfoc_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	lfoc "github.com/faircache/lfoc"
	"github.com/faircache/lfoc/internal/harness"
	"github.com/faircache/lfoc/internal/workloads"
)

func FuzzParseWorkloadSpec(f *testing.F) {
	for _, name := range []string{
		"bursty-batch.yaml", "diurnal-bursty.yaml", "diurnal-web.yaml", "failure-under-load.yaml",
	} {
		data, err := os.ReadFile(filepath.Join("examples", "specs", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data, true)
	}
	f.Add([]byte(`{"spec_version":1,"name":"j","seed":1,"duration_seconds":1,"cohorts":[]}`), false)
	f.Fuzz(func(t *testing.T, data []byte, yaml bool) {
		ext := ".json"
		if yaml {
			ext = ".yaml"
		}
		spec, err := lfoc.ParseWorkloadSpec(data, ext)
		if err != nil {
			return
		}
		if spec == nil {
			t.Fatal("nil spec with nil error")
		}
	})
}

func FuzzReadArrivalTrace(f *testing.F) {
	f.Add([]byte("lfoc-trace v1\nname seeded\nscale 50\narrivals 1\n0.5 lbm06 1\n"))
	f.Add([]byte("lfoc-trace v1\n# comment\nname x\nscale 1\narrivals 0\n"))
	f.Add([]byte("lfoc-trace v2\nname future\nscale 1\narrivals 0\n"))
	f.Add([]byte("not a trace"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := workloads.ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful parse must round-trip through the writer and
		// reparse — the format's own invariant.
		var buf bytes.Buffer
		if err := workloads.WriteTrace(&buf, tr); err != nil {
			t.Fatalf("reserialize accepted trace: %v", err)
		}
		if _, err := workloads.ReadTrace(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("reparse written trace: %v", err)
		}
	})
}

func FuzzParseFleetEvents(f *testing.F) {
	f.Add("drain:t=5,m=1;fail:t=7,m=0;join:t=9")
	f.Add("join:t=0.5")
	f.Add("fail:t=1.5,m=2")
	f.Add("")
	f.Add("drain:t=;fail")
	f.Fuzz(func(t *testing.T, s string) {
		evs, err := lfoc.ParseFleetEvents(s)
		if err != nil {
			return
		}
		for _, ev := range evs {
			if ev.Time < 0 {
				t.Fatalf("accepted event with negative time: %+v", ev)
			}
		}
	})
}

func FuzzParseMachineMix(f *testing.F) {
	f.Add("2x11way,2x7way")
	f.Add("1x4way2c")
	f.Add("3x20way16c,1x11way")
	f.Add("")
	f.Add("0x0way")
	f.Fuzz(func(t *testing.T, s string) {
		base := harness.DefaultConfig().SimConfig()
		fleet, err := lfoc.ParseMachineMix(s, base)
		if err != nil {
			return
		}
		for i, mc := range fleet {
			if mc.Plat == nil || mc.Plat.Ways <= 0 || mc.Plat.Cores <= 0 {
				t.Fatalf("accepted machine %d with invalid platform", i)
			}
		}
	})
}
