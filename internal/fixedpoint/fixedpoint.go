// Package fixedpoint provides integer fixed-point arithmetic for the LFOC
// core. The paper implements LFOC inside the Linux kernel, where
// floating-point is off-limits ("our implementation of LFOC is free of any
// FP operation", §2.3.2); slowdown curves, thresholds and utility values are
// therefore represented as Q16.16 fixed-point integers throughout
// internal/core, and this package is the only arithmetic it uses.
//
// The format is signed Q16.16: value = raw / 65536. The dynamic range
// (±32767 with ~1.5e-5 resolution) comfortably covers slowdowns (1.0–20.0),
// MPKC values (0–1000) and IPC values (0–8).
package fixedpoint

import (
	"fmt"
	"math"
)

// Value is a signed Q16.16 fixed-point number.
type Value int64

// Shift is the number of fractional bits in a Value.
const Shift = 16

// One is the fixed-point representation of 1.0.
const One Value = 1 << Shift

// Half is the fixed-point representation of 0.5.
const Half Value = One / 2

// Max is the largest representable Value that is still safe to multiply
// by another Value of similar magnitude without overflowing int64.
const Max Value = math.MaxInt32

// FromInt converts an integer to fixed point.
func FromInt(i int) Value { return Value(i) << Shift }

// FromRatio returns the fixed-point quotient num/den. den must be nonzero.
func FromRatio(num, den int64) Value {
	if den == 0 {
		panic("fixedpoint: division by zero in FromRatio")
	}
	return Value((num << Shift) / den)
}

// FromMilli converts a value expressed in thousandths (e.g. a slowdown of
// 1.03 passed as 1030) to fixed point.
func FromMilli(m int64) Value { return Value(m<<Shift) / 1000 }

// FromFloat converts a float64 to fixed point, rounding to nearest. It is
// intended for test code and for boundary conversion at the edge of the
// "kernel" (the core package itself never calls it).
func FromFloat(f float64) Value {
	return Value(math.Round(f * float64(One)))
}

// Float returns the float64 representation of v. Boundary/diagnostic use
// only.
func (v Value) Float() float64 { return float64(v) / float64(One) }

// Int returns v truncated toward zero to an integer.
func (v Value) Int() int {
	if v < 0 {
		return -int((-v) >> Shift)
	}
	return int(v >> Shift)
}

// Round returns v rounded to the nearest integer.
func (v Value) Round() int {
	if v >= 0 {
		return int((v + Half) >> Shift)
	}
	return -int((-v + Half) >> Shift)
}

// Milli returns v expressed in thousandths, rounded to nearest.
func (v Value) Milli() int64 {
	if v >= 0 {
		return (int64(v)*1000 + int64(Half)) >> Shift
	}
	return -((int64(-v)*1000 + int64(Half)) >> Shift)
}

// Mul returns the fixed-point product a*b.
func Mul(a, b Value) Value { return Value((int64(a) * int64(b)) >> Shift) }

// Div returns the fixed-point quotient a/b. b must be nonzero.
func Div(a, b Value) Value {
	if b == 0 {
		panic("fixedpoint: division by zero in Div")
	}
	return Value((int64(a) << Shift) / int64(b))
}

// MulInt returns a scaled by the integer n.
func MulInt(a Value, n int) Value { return a * Value(n) }

// DivInt returns a divided by the integer n. n must be nonzero.
func DivInt(a Value, n int) Value {
	if n == 0 {
		panic("fixedpoint: division by zero in DivInt")
	}
	return a / Value(n)
}

// Min returns the smaller of a and b.
func Min(a, b Value) Value {
	if a < b {
		return a
	}
	return b
}

// Max2 returns the larger of a and b.
func Max2(a, b Value) Value {
	if a > b {
		return a
	}
	return b
}

// Abs returns the absolute value of v.
func Abs(v Value) Value {
	if v < 0 {
		return -v
	}
	return v
}

// Clamp limits v to the inclusive range [lo, hi].
func Clamp(v, lo, hi Value) Value {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Sqrt returns the fixed-point square root of v using integer Newton
// iteration. It panics if v is negative.
func Sqrt(v Value) Value {
	if v < 0 {
		panic("fixedpoint: Sqrt of negative value")
	}
	if v == 0 {
		return 0
	}
	// Compute sqrt(raw << Shift) in the integer domain so the result is
	// again Q16.16: sqrt(v/2^16) * 2^16 == sqrt(v * 2^16).
	n := uint64(v) << Shift
	// Initial guess must be >= sqrt(n) for the monotone-descent exit test
	// below: with b the highest set bit, n < 2^(b+1), so
	// sqrt(n) < 2^((b+1)/2) <= 2^(b/2+1).
	x := uint64(1) << (bits64(n)/2 + 1)
	for {
		y := (x + n/x) / 2
		if y >= x {
			break
		}
		x = y
	}
	return Value(x)
}

// bits64 returns the position of the highest set bit of n (0-based), or 0
// for n == 0.
func bits64(n uint64) uint {
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// Mean returns the arithmetic mean of vs, or 0 for an empty slice.
func Mean(vs []Value) Value {
	if len(vs) == 0 {
		return 0
	}
	var sum int64
	for _, v := range vs {
		sum += int64(v)
	}
	return Value(sum / int64(len(vs)))
}

// String formats v with three decimal places.
func (v Value) String() string {
	m := v.Milli()
	neg := ""
	if m < 0 {
		neg = "-"
		m = -m
	}
	return fmt.Sprintf("%s%d.%03d", neg, m/1000, m%1000)
}
