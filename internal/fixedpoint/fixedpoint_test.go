package fixedpoint

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromIntRoundTrip(t *testing.T) {
	for _, i := range []int{0, 1, -1, 42, -42, 32767, -32767} {
		if got := FromInt(i).Int(); got != i {
			t.Errorf("FromInt(%d).Int() = %d", i, got)
		}
	}
}

func TestFromRatio(t *testing.T) {
	cases := []struct {
		num, den int64
		want     float64
	}{
		{1, 2, 0.5},
		{3, 4, 0.75},
		{1030, 1000, 1.03},
		{-1, 4, -0.25},
		{10, 1, 10},
	}
	for _, c := range cases {
		got := FromRatio(c.num, c.den).Float()
		if math.Abs(got-c.want) > 1e-4 {
			t.Errorf("FromRatio(%d,%d) = %v, want %v", c.num, c.den, got, c.want)
		}
	}
}

func TestFromMilli(t *testing.T) {
	if got := FromMilli(1030).Float(); math.Abs(got-1.03) > 1e-4 {
		t.Errorf("FromMilli(1030) = %v", got)
	}
	if got := FromMilli(-500).Float(); math.Abs(got+0.5) > 1e-4 {
		t.Errorf("FromMilli(-500) = %v", got)
	}
}

func TestMilliRoundTrip(t *testing.T) {
	for _, m := range []int64{0, 1, 999, 1000, 1030, 1050, 123456, -1030} {
		if got := FromMilli(m).Milli(); got != m {
			t.Errorf("FromMilli(%d).Milli() = %d", m, got)
		}
	}
}

func TestMulDiv(t *testing.T) {
	a := FromFloat(1.5)
	b := FromFloat(2.5)
	if got := Mul(a, b).Float(); math.Abs(got-3.75) > 1e-4 {
		t.Errorf("Mul = %v", got)
	}
	if got := Div(b, a).Float(); math.Abs(got-5.0/3.0) > 1e-4 {
		t.Errorf("Div = %v", got)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Div(One, 0)
}

func TestDivIntByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DivInt(One, 0)
}

func TestFromRatioByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRatio(1, 0)
}

func TestIntTruncation(t *testing.T) {
	if got := FromFloat(2.9).Int(); got != 2 {
		t.Errorf("Int(2.9) = %d", got)
	}
	if got := FromFloat(-2.9).Int(); got != -2 {
		t.Errorf("Int(-2.9) = %d", got)
	}
}

func TestRound(t *testing.T) {
	cases := []struct {
		in   float64
		want int
	}{{2.4, 2}, {2.5, 3}, {2.6, 3}, {-2.4, -2}, {-2.6, -3}, {0, 0}}
	for _, c := range cases {
		if got := FromFloat(c.in).Round(); got != c.want {
			t.Errorf("Round(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSqrt(t *testing.T) {
	for _, f := range []float64{0, 1, 2, 4, 9, 100, 0.25, 1234.5} {
		got := Sqrt(FromFloat(f)).Float()
		want := math.Sqrt(f)
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("Sqrt(%v) = %v, want %v", f, got, want)
		}
	}
}

func TestSqrtNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sqrt(-One)
}

func TestMinMaxAbsClamp(t *testing.T) {
	a, b := FromInt(3), FromInt(7)
	if Min(a, b) != a || Min(b, a) != a {
		t.Error("Min wrong")
	}
	if Max2(a, b) != b || Max2(b, a) != b {
		t.Error("Max2 wrong")
	}
	if Abs(-a) != a || Abs(a) != a {
		t.Error("Abs wrong")
	}
	if Clamp(FromInt(10), a, b) != b {
		t.Error("Clamp high wrong")
	}
	if Clamp(FromInt(1), a, b) != a {
		t.Error("Clamp low wrong")
	}
	if Clamp(FromInt(5), a, b) != FromInt(5) {
		t.Error("Clamp mid wrong")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	vs := []Value{FromInt(1), FromInt(2), FromInt(3)}
	if got := Mean(vs).Float(); math.Abs(got-2) > 1e-4 {
		t.Errorf("Mean = %v", got)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{FromMilli(1030), "1.030"},
		{FromMilli(-1030), "-1.030"},
		{0, "0.000"},
		{FromInt(12), "12.000"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", c.v, got, c.want)
		}
	}
}

// Property: Mul/Div are inverse operations within fixed-point tolerance.
func TestQuickMulDivInverse(t *testing.T) {
	f := func(a16, b16 int16) bool {
		a, b := Value(a16)<<Shift, Value(b16)<<Shift
		if b == 0 {
			return true
		}
		got := Div(Mul(a, b), b)
		return Abs(got-a) <= One // integer division error bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FromRatio(a,b) ~ a/b.
func TestQuickFromRatio(t *testing.T) {
	f := func(a int32, b int32) bool {
		if b == 0 {
			return true
		}
		got := FromRatio(int64(a), int64(b)).Float()
		want := float64(a) / float64(b)
		return math.Abs(got-want) < 1e-3*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Sqrt(v)^2 ~ v for non-negative v.
func TestQuickSqrt(t *testing.T) {
	f := func(v32 uint32) bool {
		v := Value(v32)
		s := Sqrt(v)
		back := Mul(s, s)
		return Abs(back-v) <= 4*One || Abs(back-v).Float() < 0.01*v.Float()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ordering is preserved by FromMilli.
func TestQuickFromMilliMonotone(t *testing.T) {
	f := func(a, b int32) bool {
		if a > b {
			a, b = b, a
		}
		return FromMilli(int64(a)) <= FromMilli(int64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
