package pmc

import fp "github.com/faircache/lfoc/internal/fixedpoint"

// History is a fixed-capacity ring of recent fixed-point metric readings.
// LFOC's phase-change heuristics average a metric "over the last five
// monitoring periods" (§4.2) to filter out spikes; History provides that
// smoothing window.
type History struct {
	buf  []fp.Value
	next int
	n    int
}

// NewHistory creates a history holding up to capacity readings.
func NewHistory(capacity int) *History {
	if capacity < 1 {
		capacity = 1
	}
	return &History{buf: make([]fp.Value, capacity)}
}

// Push records a reading, evicting the oldest when full.
func (h *History) Push(v fp.Value) {
	h.buf[h.next] = v
	h.next = (h.next + 1) % len(h.buf)
	if h.n < len(h.buf) {
		h.n++
	}
}

// Len returns the number of recorded readings (≤ capacity).
func (h *History) Len() int { return h.n }

// Full reports whether the window has reached capacity.
func (h *History) Full() bool { return h.n == len(h.buf) }

// Mean returns the arithmetic mean of the recorded readings (0 if empty).
func (h *History) Mean() fp.Value {
	if h.n == 0 {
		return 0
	}
	var sum int64
	for i := 0; i < h.n; i++ {
		sum += int64(h.buf[i])
	}
	return fp.Value(sum / int64(h.n))
}

// Last returns the most recent reading (0 if empty).
func (h *History) Last() fp.Value {
	if h.n == 0 {
		return 0
	}
	return h.buf[(h.next-1+len(h.buf))%len(h.buf)]
}

// Reset empties the window.
func (h *History) Reset() {
	h.n = 0
	h.next = 0
}
