package pmc

import fp "github.com/faircache/lfoc/internal/fixedpoint"

// CounterSnapshot is the serializable state of a Counter: the running
// total plus the open window's base. Restoring both reproduces Total,
// Window and the next ReadWindow exactly.
type CounterSnapshot struct {
	Total      Sample `json:"total"`
	WindowBase Sample `json:"window_base"`
}

// Snapshot captures the counter for checkpointing.
func (c *Counter) Snapshot() CounterSnapshot {
	return CounterSnapshot{Total: c.total, WindowBase: c.windowBase}
}

// Restore overwrites the counter from a snapshot.
func (c *Counter) Restore(s CounterSnapshot) {
	c.total = s.Total
	c.windowBase = s.WindowBase
}

// Values returns the recorded readings oldest-first. Re-pushing them
// into a fresh History of the same capacity rebuilds a window whose
// Mean, Last, Full and subsequent eviction order are identical — Push
// semantics are rotation-invariant, so the ring offset itself is not
// state worth preserving.
func (h *History) Values() []fp.Value {
	out := make([]fp.Value, 0, h.n)
	start := h.next - h.n
	if start < 0 {
		start += len(h.buf)
	}
	for i := 0; i < h.n; i++ {
		out = append(out, h.buf[(start+i)%len(h.buf)])
	}
	return out
}

// Cap returns the window capacity.
func (h *History) Cap() int { return len(h.buf) }
