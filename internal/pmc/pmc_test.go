package pmc

import (
	"math"
	"testing"
	"testing/quick"

	fp "github.com/faircache/lfoc/internal/fixedpoint"
)

func TestSampleAddSub(t *testing.T) {
	var s Sample
	s.Add(Sample{Instructions: 100, Cycles: 50, LLCMisses: 5, LLCAccesses: 10, StallsL2Miss: 20, OccupancyBytes: 4096})
	s.Add(Sample{Instructions: 200, Cycles: 100, LLCMisses: 1, LLCAccesses: 2, StallsL2Miss: 3, OccupancyBytes: 8192})
	if s.Instructions != 300 || s.Cycles != 150 || s.LLCMisses != 6 || s.LLCAccesses != 12 || s.StallsL2Miss != 23 {
		t.Errorf("Add wrong: %v", s)
	}
	if s.OccupancyBytes != 8192 {
		t.Errorf("occupancy should adopt latest reading, got %d", s.OccupancyBytes)
	}
	d := s.Sub(Sample{Instructions: 100, Cycles: 50, LLCMisses: 5, LLCAccesses: 10, StallsL2Miss: 20})
	if d.Instructions != 200 || d.Cycles != 100 || d.LLCMisses != 1 || d.OccupancyBytes != 8192 {
		t.Errorf("Sub wrong: %v", d)
	}
}

func TestDerivedMetrics(t *testing.T) {
	s := Sample{Instructions: 2000, Cycles: 1000, LLCMisses: 10, StallsL2Miss: 250}
	if got := s.IPC().Float(); math.Abs(got-2.0) > 1e-3 {
		t.Errorf("IPC = %v", got)
	}
	if got := s.LLCMPKC().Float(); math.Abs(got-10.0) > 1e-3 {
		t.Errorf("LLCMPKC = %v", got)
	}
	if got := s.LLCMPKI().Float(); math.Abs(got-5.0) > 1e-3 {
		t.Errorf("LLCMPKI = %v", got)
	}
	if got := s.StallFraction().Float(); math.Abs(got-0.25) > 1e-3 {
		t.Errorf("StallFraction = %v", got)
	}
}

func TestDerivedMetricsZeroDenominators(t *testing.T) {
	var s Sample
	if s.IPC() != 0 || s.LLCMPKC() != 0 || s.StallFraction() != 0 {
		t.Error("zero-cycle metrics should be 0")
	}
	if s.LLCMPKI() != 0 {
		t.Error("zero-instruction LLCMPKI should be 0")
	}
}

func TestCounterWindows(t *testing.T) {
	var c Counter
	c.Add(Sample{Instructions: 100, Cycles: 100})
	c.Add(Sample{Instructions: 50, Cycles: 25})
	if w := c.Window(); w.Instructions != 150 {
		t.Errorf("Window = %v", w)
	}
	w := c.ReadWindow()
	if w.Instructions != 150 || w.Cycles != 125 {
		t.Errorf("ReadWindow = %v", w)
	}
	// New window starts empty.
	if w := c.Window(); w.Instructions != 0 {
		t.Errorf("post-read Window = %v", w)
	}
	c.Add(Sample{Instructions: 30, Cycles: 10})
	if w := c.ReadWindow(); w.Instructions != 30 || w.Cycles != 10 {
		t.Errorf("second ReadWindow = %v", w)
	}
	if tot := c.Total(); tot.Instructions != 180 {
		t.Errorf("Total = %v", tot)
	}
	c.Reset()
	if c.Total().Instructions != 0 || c.Window().Instructions != 0 {
		t.Error("Reset incomplete")
	}
}

func TestHistoryBasics(t *testing.T) {
	h := NewHistory(3)
	if h.Len() != 0 || h.Mean() != 0 || h.Last() != 0 || h.Full() {
		t.Error("empty history wrong")
	}
	h.Push(fp.FromInt(2))
	h.Push(fp.FromInt(4))
	if h.Len() != 2 || h.Full() {
		t.Error("partial fill wrong")
	}
	if got := h.Mean().Float(); math.Abs(got-3) > 1e-3 {
		t.Errorf("Mean = %v", got)
	}
	if h.Last() != fp.FromInt(4) {
		t.Error("Last wrong")
	}
	h.Push(fp.FromInt(6))
	h.Push(fp.FromInt(8)) // evicts 2
	if !h.Full() || h.Len() != 3 {
		t.Error("full state wrong")
	}
	if got := h.Mean().Float(); math.Abs(got-6) > 1e-3 {
		t.Errorf("Mean after wrap = %v", got)
	}
	if h.Last() != fp.FromInt(8) {
		t.Error("Last after wrap wrong")
	}
	h.Reset()
	if h.Len() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestHistoryMinimumCapacity(t *testing.T) {
	h := NewHistory(0)
	h.Push(fp.One)
	if h.Len() != 1 || h.Last() != fp.One {
		t.Error("degenerate capacity not clamped to 1")
	}
}

// Property: Counter windows partition the total — the sum of all
// ReadWindow results equals Total.
func TestQuickWindowsPartitionTotal(t *testing.T) {
	f := func(deltas []uint16, readAt []bool) bool {
		var c Counter
		var windowSum uint64
		i := 0
		for _, d := range deltas {
			c.Add(Sample{Instructions: uint64(d)})
			if i < len(readAt) && readAt[i] {
				windowSum += c.ReadWindow().Instructions
			}
			i++
		}
		windowSum += c.ReadWindow().Instructions
		return windowSum == c.Total().Instructions
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: History mean is bounded by min and max of the pushed window.
func TestQuickHistoryMeanBounded(t *testing.T) {
	f := func(vals []int32) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistory(5)
		for _, v := range vals {
			h.Push(fp.Value(v))
		}
		start := len(vals) - 5
		if start < 0 {
			start = 0
		}
		lo, hi := fp.Value(vals[start]), fp.Value(vals[start])
		for _, v := range vals[start:] {
			if fp.Value(v) < lo {
				lo = fp.Value(v)
			}
			if fp.Value(v) > hi {
				hi = fp.Value(v)
			}
		}
		m := h.Mean()
		return m >= lo-1 && m <= hi+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: adding per-interval samples one by one is field-identical
// to adding their batched sum with the last interval's occupancy — the
// exactness the simulator's event-horizon batching relies on, across
// window boundaries too.
func TestCounterBatchedAddEquivalence(t *testing.T) {
	f := func(raw [][6]uint16, readAt uint8) bool {
		var tickwise, batched Counter
		var sum Sample
		ticks := 0 // intervals in the current batch
		for i, r := range raw {
			d := Sample{
				Instructions:   uint64(r[0]),
				Cycles:         uint64(r[1]),
				LLCMisses:      uint64(r[2]),
				LLCAccesses:    uint64(r[3]),
				StallsL2Miss:   uint64(r[4]),
				OccupancyBytes: uint64(r[5]),
			}
			tickwise.Add(d)
			sum.Add(d)
			ticks++
			// Windows may only close on batch boundaries; close the same
			// one on both counters mid-stream.
			if i == int(readAt)%len(raw) {
				batched.Add(sum)
				sum, ticks = Sample{}, 0
				if tickwise.ReadWindow() != batched.ReadWindow() {
					return false
				}
			}
		}
		if ticks > 0 {
			batched.Add(sum)
		}
		return tickwise.Total() == batched.Total() && tickwise.Window() == batched.Window()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
