// Package pmc models the hardware performance-monitoring counters LFOC and
// Dunn consume: instructions retired, core cycles, LLC misses, LLC
// accesses, the STALLS_L2_MISS event (cycles the pipeline stalls on
// long-latency memory accesses), and the CMT LLC-occupancy counter.
//
// Hardware exposes free-running counters; system software computes rates
// over sampling windows. Counter mirrors that structure: Add accumulates a
// delta, ReadWindow returns and closes the current window. Derived-metric
// helpers return fixed-point values because the policy code that consumes
// them emulates kernel code and must not touch floating point.
package pmc

import (
	"fmt"

	fp "github.com/faircache/lfoc/internal/fixedpoint"
)

// Sample is a vector of raw event counts covering one interval.
type Sample struct {
	Instructions uint64
	Cycles       uint64
	LLCMisses    uint64
	LLCAccesses  uint64
	StallsL2Miss uint64
	// OccupancyBytes is a point-in-time CMT reading, not an accumulating
	// count: Add keeps the most recent value.
	OccupancyBytes uint64
}

// Add accumulates the accumulating events of d into s and adopts d's
// occupancy reading.
//
//lfoc:hotpath
func (s *Sample) Add(d Sample) {
	s.Instructions += d.Instructions
	s.Cycles += d.Cycles
	s.LLCMisses += d.LLCMisses
	s.LLCAccesses += d.LLCAccesses
	s.StallsL2Miss += d.StallsL2Miss
	s.OccupancyBytes = d.OccupancyBytes
}

// Sub returns s - o for the accumulating events, keeping s's occupancy.
//
//lfoc:hotpath
func (s Sample) Sub(o Sample) Sample {
	return Sample{
		Instructions:   s.Instructions - o.Instructions,
		Cycles:         s.Cycles - o.Cycles,
		LLCMisses:      s.LLCMisses - o.LLCMisses,
		LLCAccesses:    s.LLCAccesses - o.LLCAccesses,
		StallsL2Miss:   s.StallsL2Miss - o.StallsL2Miss,
		OccupancyBytes: s.OccupancyBytes,
	}
}

// IPC returns instructions per cycle as a fixed-point value (0 when no
// cycles elapsed).
func (s Sample) IPC() fp.Value {
	if s.Cycles == 0 {
		return 0
	}
	return fp.FromRatio(int64(s.Instructions), int64(s.Cycles))
}

// LLCMPKC returns LLC misses per kilo-cycle — the metric Table 1 and the
// runtime heuristics of §4.2 are defined on.
func (s Sample) LLCMPKC() fp.Value {
	if s.Cycles == 0 {
		return 0
	}
	return fp.FromRatio(int64(s.LLCMisses)*1000, int64(s.Cycles))
}

// LLCMPKI returns LLC misses per kilo-instruction (the KPart/UCP metric).
func (s Sample) LLCMPKI() fp.Value {
	if s.Instructions == 0 {
		return 0
	}
	return fp.FromRatio(int64(s.LLCMisses)*1000, int64(s.Instructions))
}

// StallFraction returns STALLS_L2_MISS / cycles — the fraction of time the
// core was stalled on long-latency memory accesses (the Dunn metric).
func (s Sample) StallFraction() fp.Value {
	if s.Cycles == 0 {
		return 0
	}
	return fp.FromRatio(int64(s.StallsL2Miss), int64(s.Cycles))
}

func (s Sample) String() string {
	return fmt.Sprintf("insns=%d cycles=%d misses=%d accesses=%d stalls=%d occ=%d",
		s.Instructions, s.Cycles, s.LLCMisses, s.LLCAccesses, s.StallsL2Miss, s.OccupancyBytes)
}

// Counter is a per-task counter set with window semantics.
type Counter struct {
	total      Sample
	windowBase Sample
}

// Add accumulates a delta into the counter.
//
// Batching is exact: every accumulating field is an integer sum
// (associative, no rounding) and occupancy adopts the most recent
// reading, so adding n per-interval samples is field-identical to
// adding their field-wise sum carrying the last interval's occupancy —
// window totals and ReadWindow boundaries cannot tell the difference.
// The simulator's event-horizon fast path relies on this to issue one
// add per app per horizon instead of one per tick
// (TestCounterBatchedAddEquivalence pins it).
//
//lfoc:hotpath
func (c *Counter) Add(d Sample) { c.total.Add(d) }

// Total returns the counts since creation.
func (c *Counter) Total() Sample { return c.total }

// Window returns the counts accumulated since the last ReadWindow without
// closing the window.
//
//lfoc:hotpath
func (c *Counter) Window() Sample { return c.total.Sub(c.windowBase) }

// ReadWindow returns the counts accumulated since the previous ReadWindow
// and starts a new window.
//
//lfoc:hotpath
func (c *Counter) ReadWindow() Sample {
	w := c.total.Sub(c.windowBase)
	c.windowBase = c.total
	return w
}

// Reset zeroes the counter entirely.
func (c *Counter) Reset() { *c = Counter{} }
