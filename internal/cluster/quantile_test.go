package cluster

import "testing"

// quantile is the nearest-rank estimator behind WaitStats. The edge
// cases matter operationally: machines that admitted nothing (empty)
// and machines that admitted exactly one application (every quantile is
// that observation) both appear in lifecycle runs, where a machine can
// fail before its first admission.
func TestQuantileEdgeCases(t *testing.T) {
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile(nil, 0.5) = %v, want 0", got)
	}
	if got := quantile([]float64{}, 0.95); got != 0 {
		t.Errorf("quantile(empty, 0.95) = %v, want 0", got)
	}
	single := []float64{3.25}
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := quantile(single, q); got != 3.25 {
			t.Errorf("quantile(single, %v) = %v, want 3.25", q, got)
		}
	}
}

// Pin the nearest-rank semantics on known data so any estimator change
// shows up as an explicit golden failure, not a silent stat shift.
func TestQuantileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 5},  // rank ceil-ish: int(0.5*10+0.5)-1 = 4 → element 5
		{0.95, 10}, // int(0.95*10+0.5)-1 = 9 → element 10
		{0.10, 1},
		{1.00, 10},
		{0.00, 1}, // clamped below
	}
	for _, c := range cases {
		if got := quantile(sorted, c.q); got != c.want {
			t.Errorf("quantile(1..10, %v) = %v, want %v", c.q, got, c.want)
		}
	}
	odd := []float64{2, 4, 6}
	if got := quantile(odd, 0.5); got != 4 {
		t.Errorf("quantile({2,4,6}, 0.5) = %v, want the middle element 4", got)
	}
	if got := quantile(odd, 0.95); got != 6 {
		t.Errorf("quantile({2,4,6}, 0.95) = %v, want the max 6", got)
	}
}
