package cluster

import (
	"testing"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/core"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/profiles"
)

func states(loads ...[3]int) []MachineState {
	out := make([]MachineState, len(loads))
	for i, l := range loads {
		out[i] = MachineState{Index: i, Cores: l[0], Active: l[1], Queued: l[2]}
	}
	return out
}

func TestRoundRobinOrder(t *testing.T) {
	rr := NewRoundRobin()
	ms := states([3]int{4, 0, 0}, [3]int{4, 0, 0}, [3]int{4, 0, 0})
	spec := profiles.MustGet("povray06")
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := rr.Place(spec, float64(i), ms); got != w {
			t.Errorf("arrival %d: placed on %d, want %d", i, got, w)
		}
	}
}

func TestLeastLoadedTieBreaking(t *testing.T) {
	ll := NewLeastLoaded()
	spec := profiles.MustGet("povray06")
	cases := []struct {
		name string
		ms   []MachineState
		want int
	}{
		{"fewest total load wins", states([3]int{4, 3, 0}, [3]int{4, 1, 0}, [3]int{4, 2, 0}), 1},
		{"queued counts as load", states([3]int{4, 1, 3}, [3]int{4, 2, 0}), 1},
		{"equal load, shorter queue wins", states([3]int{4, 1, 2}, [3]int{4, 2, 1}, [3]int{4, 3, 0}), 2},
		{"full tie, lowest index wins", states([3]int{4, 2, 1}, [3]int{4, 2, 1}), 0},
		{"empty fleet, lowest index wins", states([3]int{4, 0, 0}, [3]int{4, 0, 0}, [3]int{4, 0, 0}), 0},
		// Heterogeneous capacities: an idle core beats a smaller absolute
		// load on a full machine — queueing behind a full 4-core machine
		// is strictly worse than running on a busier 20-core one.
		{"free core beats lower absolute load", states([3]int{4, 4, 0}, [3]int{20, 5, 0}), 1},
		{"all full, load then ties as before", states([3]int{2, 2, 2}, [3]int{2, 2, 1}), 1},
	}
	for _, c := range cases {
		if got := ll.Place(spec, 0, c.ms); got != c.want {
			t.Errorf("%s: placed on %d, want %d", c.name, got, c.want)
		}
	}
}

// Time-zero placement beyond a machine's core count must count toward
// Queued, not Active: the kernel will start those apps queued, and both
// LeastLoaded's tie-break and FairnessAware's queue penalty read the
// split. Before the fix, Active grew without bound and Queued stayed 0,
// so placement scored a fleet state the kernel never produces.
func TestPlaceInitialOverCapacity(t *testing.T) {
	spec := profiles.MustGet("povray06")
	initial := make([]*appmodel.Spec, 7)
	for i := range initial {
		initial[i] = spec
	}
	states := states([3]int{2, 0, 0}, [3]int{2, 0, 0})
	per, err := placeInitial(NewLeastLoaded(), initial, states)
	if err != nil {
		t.Fatal(err)
	}
	if len(per[0])+len(per[1]) != 7 {
		t.Fatalf("placed %d+%d initial apps, want 7", len(per[0]), len(per[1]))
	}
	for i, s := range states {
		if s.Active > s.Cores {
			t.Errorf("machine %d: Active %d exceeds %d cores", i, s.Active, s.Cores)
		}
		if s.Active+s.Queued != len(per[i]) {
			t.Errorf("machine %d: Active %d + Queued %d != %d placed", i, s.Active, s.Queued, len(per[i]))
		}
		if len(s.Phases) != s.Active {
			t.Errorf("machine %d: %d resident phases for %d active apps (queued apps are not resident)",
				i, len(s.Phases), s.Active)
		}
	}
	// 7 identical apps over 2 machines × 2 cores: least-loaded alternates,
	// so the fleet ends 4/3 with each machine full and the rest queued.
	if states[0].Queued+states[1].Queued != 3 {
		t.Errorf("fleet queued %d+%d, want 3 over-capacity apps queued",
			states[0].Queued, states[1].Queued)
	}
}

// A placement that returns an out-of-range machine at time zero must
// fail the run, mirroring the main-loop check.
func TestPlaceInitialRejectsBadIndex(t *testing.T) {
	bad := placeFunc(func(*appmodel.Spec, float64, []MachineState) int { return 99 })
	if _, err := placeInitial(bad, []*appmodel.Spec{profiles.MustGet("povray06")},
		states([3]int{2, 0, 0})); err == nil {
		t.Error("out-of-range time-zero placement accepted")
	}
}

// placeFunc adapts a function to Policy for tests.
type placeFunc func(*appmodel.Spec, float64, []MachineState) int

func (placeFunc) Name() string { return "test" }
func (f placeFunc) Place(spec *appmodel.Spec, t float64, ms []MachineState) int {
	return f(spec, t, ms)
}

// phasesOf returns the dominant phases of the named catalog benchmarks.
func phasesOf(names ...string) []*appmodel.PhaseSpec {
	out := make([]*appmodel.PhaseSpec, len(names))
	for i, n := range names {
		out[i] = profiles.MustGet(n).DominantPhase()
	}
	return out
}

// A sensitive arrival must avoid the machine whose residents are
// streaming aggressors: the sharing model predicts the slowdown they
// inflict, so the machine hosting light programs scores best.
func TestFairnessAwarePicksModelBest(t *testing.T) {
	plat := machine.Skylake()
	fa := NewFairnessAware(plat)
	ms := []MachineState{
		{Index: 0, Cores: 8, Active: 2, Phases: phasesOf("lbm06", "libquantum06")},
		{Index: 1, Cores: 8, Active: 2, Phases: phasesOf("povray06", "namd06")},
	}
	sensitive := profiles.MustGet("xalancbmk06")
	if got := fa.Place(sensitive, 0, ms); got != 1 {
		t.Errorf("sensitive arrival placed with the streaming aggressors (machine %d), want the light machine 1", got)
	}
	// Swap the machines: the pick must follow the residents, not the index.
	ms[0].Phases, ms[1].Phases = ms[1].Phases, ms[0].Phases
	if got := fa.Place(sensitive, 0, ms); got != 0 {
		t.Errorf("sensitive arrival placed on machine %d after swap, want 0", got)
	}
}

// A machine with no free core is penalized by its queue depth: a
// sensitive arrival prefers an emptier machine even when the full
// machine's mix looks benign.
func TestFairnessAwareAvoidsQueues(t *testing.T) {
	plat := machine.Skylake()
	fa := NewFairnessAware(plat)
	light4 := phasesOf("povray06", "namd06", "povray06", "namd06")
	ms := []MachineState{
		{Index: 0, Cores: 4, Active: 4, Queued: 2, Phases: light4},
		{Index: 1, Cores: 4, Active: 2, Phases: phasesOf("lbm06", "soplex06")},
	}
	if got := fa.Place(profiles.MustGet("xalancbmk06"), 0, ms); got != 1 {
		t.Errorf("sensitive arrival queued on a full machine (%d), want the machine with free cores", got)
	}
}

// In a heterogeneous fleet every candidate is scored on its own
// platform: with identical residents, the two machines must score
// differently (a 4-way LLC predicts a different unfairness ratio than
// an 11-way one) and the pick must follow the platform through a swap —
// a single fleet-wide evaluator would score both machines the same and
// always break the tie toward index 0.
func TestFairnessAwareHeterogeneousPlatforms(t *testing.T) {
	big := machine.Skylake()
	small := machine.Small(4, 8)
	fa := NewFairnessAware(big)
	residents := phasesOf("lbm06", "soplex06")
	ms := []MachineState{
		{Index: 0, Cores: small.Cores, Plat: small, Active: 2, Phases: residents},
		{Index: 1, Cores: big.Cores, Plat: big, Active: 2, Phases: residents},
	}
	sensitive := profiles.MustGet("xalancbmk06")
	ph := sensitive.DominantPhase()
	if s0, s1 := fa.score(ph, ms[0]), fa.score(ph, ms[1]); s0 == s1 {
		t.Fatalf("identical residents score %v on both a 4-way and an 11-way platform", s0)
	}
	first := fa.Place(sensitive, 0, ms)
	// Swap the platforms: everything else is identical, so the pick must
	// follow the platform to the other machine.
	ms[0].Plat, ms[1].Plat = ms[1].Plat, ms[0].Plat
	ms[0].Cores, ms[1].Cores = ms[1].Cores, ms[0].Cores
	if got := fa.Place(sensitive, 0, ms); got == first {
		t.Errorf("pick stayed on machine %d after platform swap; scoring ignores MachineState.Plat", got)
	}
}

// The light fast path must consult the candidates' platforms, not the
// constructor's fallback: xalancbmk06 classifies light against a tiny
// 2-way LLC (so small a cache offers nothing to be sensitive to) but
// sensitive against the big one the fleet actually runs, so it must
// take the model path and avoid the streaming-heavy machine — triaging
// on the fallback alone would send it there least-loaded.
func TestFairnessAwareTriagePerPlatform(t *testing.T) {
	big := machine.Skylake()
	tiny := machine.Small(2, 8)
	fa := NewFairnessAware(tiny)
	pe := newPlatformEval(tiny)
	ph := profiles.MustGet("xalancbmk06").DominantPhase()
	if got := pe.classOf(ph); got != core.ClassLight {
		t.Fatalf("premise broken: xalancbmk06 classifies %v on the 2-way platform, want light", got)
	}
	ms := []MachineState{
		{Index: 0, Cores: 8, Plat: big, Active: 2, Phases: phasesOf("lbm06", "libquantum06")},
		{Index: 1, Cores: 8, Plat: big, Active: 3, Phases: phasesOf("povray06", "namd06", "povray06")},
	}
	if got := fa.Place(profiles.MustGet("xalancbmk06"), 0, ms); got != 1 {
		t.Errorf("arrival placed on machine %d: the fallback-platform light class short-circuited "+
			"the model and least-loaded sent it to the streaming aggressors; want 1", got)
	}
}

// Light arrivals skip the model: they place least-loaded.
func TestFairnessAwareLightGoesLeastLoaded(t *testing.T) {
	plat := machine.Skylake()
	fa := NewFairnessAware(plat)
	ms := []MachineState{
		{Index: 0, Cores: 8, Active: 3, Phases: phasesOf("povray06", "namd06", "povray06")},
		{Index: 1, Cores: 8, Active: 1, Phases: phasesOf("lbm06")},
	}
	if got := fa.Place(profiles.MustGet("povray06"), 0, ms); got != 1 {
		t.Errorf("light arrival placed on machine %d, want least-loaded 1", got)
	}
}

func TestNewPlacement(t *testing.T) {
	plat := machine.Skylake()
	for name, want := range map[string]string{
		"rr": "rr", "roundrobin": "rr",
		"least": "least", "leastloaded": "least",
		"fair": "fair", "fairness": "fair",
	} {
		p, err := NewPlacement(name, plat)
		if err != nil {
			t.Fatalf("NewPlacement(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("NewPlacement(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := NewPlacement("nope", plat); err == nil {
		t.Error("unknown placement accepted")
	}
	if _, err := NewPlacement("fair", nil); err == nil {
		t.Error("fairness placement without a platform accepted")
	}
}
