package cluster

import (
	"testing"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/profiles"
)

func states(loads ...[3]int) []MachineState {
	out := make([]MachineState, len(loads))
	for i, l := range loads {
		out[i] = MachineState{Index: i, Cores: l[0], Active: l[1], Queued: l[2]}
	}
	return out
}

func TestRoundRobinOrder(t *testing.T) {
	rr := NewRoundRobin()
	ms := states([3]int{4, 0, 0}, [3]int{4, 0, 0}, [3]int{4, 0, 0})
	spec := profiles.MustGet("povray06")
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := rr.Place(spec, float64(i), ms); got != w {
			t.Errorf("arrival %d: placed on %d, want %d", i, got, w)
		}
	}
}

func TestLeastLoadedTieBreaking(t *testing.T) {
	ll := NewLeastLoaded()
	spec := profiles.MustGet("povray06")
	cases := []struct {
		name string
		ms   []MachineState
		want int
	}{
		{"fewest total load wins", states([3]int{4, 3, 0}, [3]int{4, 1, 0}, [3]int{4, 2, 0}), 1},
		{"queued counts as load", states([3]int{4, 1, 3}, [3]int{4, 2, 0}), 1},
		{"equal load, shorter queue wins", states([3]int{4, 1, 2}, [3]int{4, 2, 1}, [3]int{4, 3, 0}), 2},
		{"full tie, lowest index wins", states([3]int{4, 2, 1}, [3]int{4, 2, 1}), 0},
		{"empty fleet, lowest index wins", states([3]int{4, 0, 0}, [3]int{4, 0, 0}, [3]int{4, 0, 0}), 0},
	}
	for _, c := range cases {
		if got := ll.Place(spec, 0, c.ms); got != c.want {
			t.Errorf("%s: placed on %d, want %d", c.name, got, c.want)
		}
	}
}

// phasesOf returns the dominant phases of the named catalog benchmarks.
func phasesOf(names ...string) []*appmodel.PhaseSpec {
	out := make([]*appmodel.PhaseSpec, len(names))
	for i, n := range names {
		out[i] = profiles.MustGet(n).DominantPhase()
	}
	return out
}

// A sensitive arrival must avoid the machine whose residents are
// streaming aggressors: the sharing model predicts the slowdown they
// inflict, so the machine hosting light programs scores best.
func TestFairnessAwarePicksModelBest(t *testing.T) {
	plat := machine.Skylake()
	fa := NewFairnessAware(plat)
	ms := []MachineState{
		{Index: 0, Cores: 8, Active: 2, Phases: phasesOf("lbm06", "libquantum06")},
		{Index: 1, Cores: 8, Active: 2, Phases: phasesOf("povray06", "namd06")},
	}
	sensitive := profiles.MustGet("xalancbmk06")
	if got := fa.Place(sensitive, 0, ms); got != 1 {
		t.Errorf("sensitive arrival placed with the streaming aggressors (machine %d), want the light machine 1", got)
	}
	// Swap the machines: the pick must follow the residents, not the index.
	ms[0].Phases, ms[1].Phases = ms[1].Phases, ms[0].Phases
	if got := fa.Place(sensitive, 0, ms); got != 0 {
		t.Errorf("sensitive arrival placed on machine %d after swap, want 0", got)
	}
}

// A machine with no free core is penalized by its queue depth: a
// sensitive arrival prefers an emptier machine even when the full
// machine's mix looks benign.
func TestFairnessAwareAvoidsQueues(t *testing.T) {
	plat := machine.Skylake()
	fa := NewFairnessAware(plat)
	light4 := phasesOf("povray06", "namd06", "povray06", "namd06")
	ms := []MachineState{
		{Index: 0, Cores: 4, Active: 4, Queued: 2, Phases: light4},
		{Index: 1, Cores: 4, Active: 2, Phases: phasesOf("lbm06", "soplex06")},
	}
	if got := fa.Place(profiles.MustGet("xalancbmk06"), 0, ms); got != 1 {
		t.Errorf("sensitive arrival queued on a full machine (%d), want the machine with free cores", got)
	}
}

// Light arrivals skip the model: they place least-loaded.
func TestFairnessAwareLightGoesLeastLoaded(t *testing.T) {
	plat := machine.Skylake()
	fa := NewFairnessAware(plat)
	ms := []MachineState{
		{Index: 0, Cores: 8, Active: 3, Phases: phasesOf("povray06", "namd06", "povray06")},
		{Index: 1, Cores: 8, Active: 1, Phases: phasesOf("lbm06")},
	}
	if got := fa.Place(profiles.MustGet("povray06"), 0, ms); got != 1 {
		t.Errorf("light arrival placed on machine %d, want least-loaded 1", got)
	}
}

func TestNewPlacement(t *testing.T) {
	plat := machine.Skylake()
	for name, want := range map[string]string{
		"rr": "rr", "roundrobin": "rr",
		"least": "least", "leastloaded": "least",
		"fair": "fair", "fairness": "fair",
	} {
		p, err := NewPlacement(name, plat)
		if err != nil {
			t.Fatalf("NewPlacement(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("NewPlacement(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := NewPlacement("nope", plat); err == nil {
		t.Error("unknown placement accepted")
	}
	if _, err := NewPlacement("fair", nil); err == nil {
		t.Error("fairness placement without a platform accepted")
	}
}
