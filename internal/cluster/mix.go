package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/faircache/lfoc/internal/sim"
)

// ParseMachineMix parses a heterogeneous fleet specification into
// per-machine simulator configurations for Config.Fleet.
//
// The grammar is comma-separated groups of <count>x<ways>way with an
// optional <cores>c suffix: "2x11way,2x7way" is two 11-way machines
// followed by two 7-way ones; "1x11way20c,3x4way8c" mixes core counts
// too. Machine order follows the spec left to right (placement indices
// are positional).
//
// Each group derives its machines from base, the fleet-wide default:
// the platform is cloned with the group's way count (the LLC shrinks or
// grows with it — WayBytes is inherited) and, when given, core count;
// everything else — way size, latencies, bandwidth, policy period,
// instruction quota — is inherited unchanged. Machines within a group
// share one *machine.Platform value, so placement caches keyed by
// platform are shared across the group too.
func ParseMachineMix(spec string, base sim.Config) ([]sim.Config, error) {
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: machine mix base config: %w", err)
	}
	var fleet []sim.Config
	for _, group := range strings.Split(spec, ",") {
		group = strings.TrimSpace(group)
		count, ways, cores, err := parseMixGroup(group)
		if err != nil {
			return nil, err
		}
		plat := *base.Plat
		plat.Ways = ways
		plat.Name = fmt.Sprintf("%s-%dw", base.Plat.Name, ways)
		if cores > 0 {
			plat.Cores = cores
			plat.Name += fmt.Sprintf("-%dc", cores)
		}
		if plat.MinCBMBits > plat.Ways {
			plat.MinCBMBits = plat.Ways
		}
		if err := plat.Validate(); err != nil {
			return nil, fmt.Errorf("cluster: machine mix %q: %w", group, err)
		}
		cfg := base
		cfg.Plat = &plat
		for i := 0; i < count; i++ {
			fleet = append(fleet, cfg)
		}
	}
	if len(fleet) == 0 {
		return nil, fmt.Errorf("cluster: machine mix %q configures no machines", spec)
	}
	return fleet, nil
}

// parseMixGroup parses one "<count>x<ways>way[<cores>c]" group.
func parseMixGroup(group string) (count, ways, cores int, err error) {
	fail := func() (int, int, int, error) {
		return 0, 0, 0, fmt.Errorf("cluster: machine mix group %q: want <count>x<ways>way[<cores>c], e.g. 2x11way or 1x7way8c", group)
	}
	countStr, rest, ok := strings.Cut(group, "x")
	if !ok {
		return fail()
	}
	waysStr, coresStr, ok := strings.Cut(rest, "way")
	if !ok {
		return fail()
	}
	if coresStr != "" {
		var found bool
		if coresStr, found = strings.CutSuffix(coresStr, "c"); !found {
			return fail()
		}
		if cores, err = strconv.Atoi(coresStr); err != nil || cores < 1 {
			return fail()
		}
	}
	if count, err = strconv.Atoi(countStr); err != nil || count < 1 {
		return fail()
	}
	if ways, err = strconv.Atoi(waysStr); err != nil || ways < 1 {
		return fail()
	}
	return count, ways, cores, nil
}

// MixNames summarizes a fleet's platforms compactly ("skylake-11w x2,
// skylake-7w x2") for reports and logs: consecutive machines with the
// same platform collapse into one group.
func MixNames(sims []sim.Config) string {
	var parts []string
	for i := 0; i < len(sims); {
		j := i
		for j < len(sims) && sims[j].Plat == sims[i].Plat {
			j++
		}
		parts = append(parts, fmt.Sprintf("%s x%d", sims[i].Plat.Name, j-i))
		i = j
	}
	return strings.Join(parts, ", ")
}
