package cluster

import (
	"encoding/json"
	"fmt"
)

// PlacementSnapshotter is the optional Policy refinement checkpointing
// requires: a placement policy that can serialize whatever state its
// Place decisions depend on and rebuild it on a fresh same-construction
// instance. Stateless policies return an empty payload; policies
// without the interface are rejected up-front with a typed error when a
// run is configured to checkpoint (see Config.Checkpoint).
type PlacementSnapshotter interface {
	// PlacementSnapshot serializes the policy's decision state.
	PlacementSnapshot() ([]byte, error)
	// PlacementRestore rebuilds the state on a fresh instance.
	PlacementRestore(data []byte) error
}

type roundRobinSnapshot struct {
	Next int `json:"next"`
}

// PlacementSnapshot implements PlacementSnapshotter: the cursor is the
// policy's only decision state.
func (r *RoundRobin) PlacementSnapshot() ([]byte, error) {
	return json.Marshal(roundRobinSnapshot{Next: r.next})
}

// PlacementRestore implements PlacementSnapshotter.
func (r *RoundRobin) PlacementRestore(data []byte) error {
	var snap roundRobinSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("cluster: restore round-robin placement: %w", err)
	}
	if snap.Next < 0 {
		return fmt.Errorf("cluster: restore round-robin placement: negative cursor %d", snap.Next)
	}
	r.next = snap.Next
	return nil
}

// PlacementSnapshot implements PlacementSnapshotter: the policy is
// stateless, every decision is a pure function of the machine states.
func (l *LeastLoaded) PlacementSnapshot() ([]byte, error) { return nil, nil }

// PlacementRestore implements PlacementSnapshotter.
func (l *LeastLoaded) PlacementRestore([]byte) error { return nil }

// PlacementSnapshot implements PlacementSnapshotter: the policy holds
// only memoized pure-function caches (per-platform evaluators), which
// rebuild identically on demand — no decision state to serialize.
func (f *FairnessAware) PlacementSnapshot() ([]byte, error) { return nil, nil }

// PlacementRestore implements PlacementSnapshotter.
func (f *FairnessAware) PlacementRestore([]byte) error { return nil }
