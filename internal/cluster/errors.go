package cluster

import "fmt"

// RunPanicError reports a panic recovered inside a fleet-pool worker: a
// machine kernel (or the policy it hosts) panicked while advancing. The
// panic is confined to the offending machine's job — the worker pool
// unwinds cleanly and the run fails with this error instead of crashing
// the process — so callers can distinguish a modeling bug (errors.As)
// from an ordinary simulation failure and still flush partial output.
type RunPanicError struct {
	// Machine is the index of the machine whose job panicked.
	Machine int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *RunPanicError) Error() string {
	return fmt.Sprintf("cluster: machine %d panicked: %v", e.Machine, e.Value)
}

// PlacementError reports an invalid machine choice by a placement or
// migration policy: an index outside the fleet, or a machine that is
// not eligible (down) at the decision instant. It is a typed error so
// callers embedding policies can distinguish a policy bug from a
// simulation failure with errors.As.
type PlacementError struct {
	// Policy names the deciding policy.
	Policy string
	// Index is the machine index the policy returned.
	Index int
	// Machines is the fleet size at the decision instant.
	Machines int
	// Reason states what made the choice invalid.
	Reason string
}

func (e *PlacementError) Error() string {
	return fmt.Sprintf("cluster: placement %q chose machine %d of %d: %s",
		e.Policy, e.Index, e.Machines, e.Reason)
}

// checkPlaced is the one central validation of every Policy.Place and
// MigrationPolicy.Migrate result — initial placement, per-arrival
// placement, lifecycle requeues and migrations all route through it, so
// an out-of-contract policy fails identically everywhere. up is the
// machine-eligibility mask (nil when every machine is eligible, as in a
// fleet without lifecycle events).
func checkPlaced(policy string, idx, machines int, up []bool) error {
	if idx < 0 || idx >= machines {
		return &PlacementError{Policy: policy, Index: idx, Machines: machines, Reason: "index out of range"}
	}
	if up != nil && !up[idx] {
		return &PlacementError{Policy: policy, Index: idx, Machines: machines, Reason: "machine is not up"}
	}
	return nil
}
