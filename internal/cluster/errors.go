package cluster

import "fmt"

// PlacementError reports an invalid machine choice by a placement or
// migration policy: an index outside the fleet, or a machine that is
// not eligible (down) at the decision instant. It is a typed error so
// callers embedding policies can distinguish a policy bug from a
// simulation failure with errors.As.
type PlacementError struct {
	// Policy names the deciding policy.
	Policy string
	// Index is the machine index the policy returned.
	Index int
	// Machines is the fleet size at the decision instant.
	Machines int
	// Reason states what made the choice invalid.
	Reason string
}

func (e *PlacementError) Error() string {
	return fmt.Sprintf("cluster: placement %q chose machine %d of %d: %s",
		e.Policy, e.Index, e.Machines, e.Reason)
}

// checkPlaced is the one central validation of every Policy.Place and
// MigrationPolicy.Migrate result — initial placement, per-arrival
// placement, lifecycle requeues and migrations all route through it, so
// an out-of-contract policy fails identically everywhere. up is the
// machine-eligibility mask (nil when every machine is eligible, as in a
// fleet without lifecycle events).
func checkPlaced(policy string, idx, machines int, up []bool) error {
	if idx < 0 || idx >= machines {
		return &PlacementError{Policy: policy, Index: idx, Machines: machines, Reason: "index out of range"}
	}
	if up != nil && !up[idx] {
		return &PlacementError{Policy: policy, Index: idx, Machines: machines, Reason: "machine is not up"}
	}
	return nil
}
