package cluster

// Differential tests for the lazy fleet event queue: the heap-driven
// advancement path must be bit-identical to the retired eager loop
// (kept behind Config.eagerAdvance for exactly this comparison) across
// placements, worker counts, heterogeneous fleets and lifecycle
// schedules — and must do strictly less machine-advancement work on
// sparse fleets. CI runs this package under -race, which also
// exercises the parallel horizon-recompute path.

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/profiles"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

func lazySimConfig(plat *machine.Platform) sim.Config {
	return sim.Config{
		Plat:         plat,
		TargetInsns:  500_000_000,
		PolicyPeriod: 100 * time.Millisecond,
	}
}

func lazySpecs(names ...string) []*appmodel.Spec {
	out := make([]*appmodel.Spec, len(names))
	for i, n := range names {
		out[i] = profiles.MustGet(n)
	}
	return out
}

// lazyScenario rebuilds the identical seeded trace for each half of a
// differential pair: scenarios are consumed by a run.
func lazyScenario(t *testing.T, rate, window float64, seed int64) *scenario.Open {
	t.Helper()
	scn, err := scenario.NewPoisson("lazy-diff",
		lazySpecs("xalancbmk06", "lbm06", "povray06", "namd06"), rate, window, seed)
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

func stockPolicyFactory(sims []sim.Config) func(int) (sim.Dynamic, error) {
	return func(i int) (sim.Dynamic, error) {
		return policy.NewStockDynamic(sims[i].Plat.Ways), nil
	}
}

// sameResults reports whether two cluster results are identical, down
// to per-app departure instants and series points.
func sameResults(a, b *Result) bool {
	return reflect.DeepEqual(a, b)
}

// runDiffPair executes the identical cluster configuration twice —
// once on the lazy fleet event queue, once on the eager reference loop
// — with fresh placement, lifecycle and scenario state for each half,
// and returns both results plus the advancement statistics.
func runDiffPair(t *testing.T, mkCfg func() Config, rate, window float64, seed int64) (lazy, eager *Result, lazyStats, eagerStats fleetStats) {
	t.Helper()
	run := func(eagerMode bool) (*Result, fleetStats) {
		cfg := mkCfg()
		cfg.eagerAdvance = eagerMode
		var st fleetStats
		cfg.statsSink = &st
		sims, err := cfg.MachineConfigs()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, lazyScenario(t, rate, window, seed), stockPolicyFactory(sims))
		if err != nil {
			t.Fatal(err)
		}
		return res, st
	}
	lazy, lazyStats = run(false)
	eager, eagerStats = run(true)
	return lazy, eager, lazyStats, eagerStats
}

// The lazy fleet event queue is an execution-strategy change, not a
// semantics change: over seeds × worker counts × fleet shapes — with
// scheduled drains, failures, joins, a seeded MTBF failure process and
// migration all armed — every field of the result must match the eager
// loop exactly.
func TestLazyEagerDifferential(t *testing.T) {
	plat := machine.Small(8, 4)
	base := lazySimConfig(plat)

	mkLifecycle := func() *Lifecycle {
		return &Lifecycle{
			Events: []Event{
				{Time: 0.4, Kind: MachineDrain, Machine: 1},
				{Time: 0.9, Kind: MachineFail, Machine: 0},
				{Time: 1.3, Kind: MachineJoin},
			},
			MTBF:          2.5,
			FailureSeed:   11,
			MigrationCost: 0.02,
			JoinPolicy: func(_ int, mc sim.Config) (sim.Dynamic, error) {
				return policy.NewStockDynamic(mc.Plat.Ways), nil
			},
		}
	}
	het := func() []sim.Config {
		fleet, err := ParseMachineMix("2x11way,2x7way", base)
		if err != nil {
			t.Fatal(err)
		}
		return fleet
	}

	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"rr-3", func() Config {
			return Config{Sim: base, Machines: 3, Placement: NewRoundRobin()}
		}},
		{"least-4", func() Config {
			return Config{Sim: base, Machines: 4, Placement: NewLeastLoaded()}
		}},
		{"fair-3", func() Config {
			return Config{Sim: base, Machines: 3, Placement: NewFairnessAware(plat)}
		}},
		{"het-least", func() Config {
			return Config{Fleet: het(), Placement: NewLeastLoaded()}
		}},
		{"lifecycle-least", func() Config {
			return Config{Sim: base, Machines: 4, Placement: NewLeastLoaded(), Lifecycle: mkLifecycle()}
		}},
		{"lifecycle-het-rr", func() Config {
			return Config{Fleet: het(), Placement: NewRoundRobin(), Lifecycle: mkLifecycle()}
		}},
	}

	for _, tc := range cases {
		for _, workers := range []int{1, 2, 4} {
			for _, seed := range []int64{3, 17} {
				t.Run(fmt.Sprintf("%s/w%d/seed%d", tc.name, workers, seed), func(t *testing.T) {
					mk := func() Config {
						cfg := tc.cfg()
						cfg.Workers = workers
						cfg.RecordAssignments = true
						return cfg
					}
					lazy, eager, _, _ := runDiffPair(t, mk, 8, 2, seed)
					if !sameResults(lazy, eager) {
						t.Errorf("lazy result diverges from eager reference:\nlazy:  %+v\neager: %+v", lazy, eager)
					}
				})
			}
		}
	}
}

// The point of the queue: on a sparse fleet (many machines, few of
// them busy at any instant) the lazy path advances an order of
// magnitude fewer machine-steps per arrival than the eager
// every-machine barrier. 256 machines at 6 arrivals/s leaves most of
// the fleet idle at every sync — exactly the 1024-machine regime the
// cluster-1k benchmark gates, shrunk to test size.
func TestLazyAdvanceSavings(t *testing.T) {
	plat := machine.Small(8, 4)
	mk := func() Config {
		return Config{Sim: lazySimConfig(plat), Machines: 256, Placement: NewLeastLoaded()}
	}
	lazy, eager, lazyStats, eagerStats := runDiffPair(t, mk, 6, 2, 5)
	if !sameResults(lazy, eager) {
		t.Fatal("lazy result diverges from eager reference on the sparse fleet")
	}
	if lazyStats.Syncs != eagerStats.Syncs {
		t.Errorf("sync counts differ: lazy %d eager %d", lazyStats.Syncs, eagerStats.Syncs)
	}
	if eagerStats.Advances < 10*lazyStats.Advances {
		t.Errorf("lazy advanced %d machine-steps vs eager %d: want >=10x reduction",
			lazyStats.Advances, eagerStats.Advances)
	}
	if lazyStats.Advances == 0 {
		t.Error("lazy path advanced no machines at all")
	}
}

// A machine's advertised horizon is a conservative lower bound:
// advancing to any instant strictly below it must not change
// placement-visible state (active/queued populations).
func TestNextEventHorizonConservative(t *testing.T) {
	plat := machine.Small(8, 4)
	scn := lazyScenario(t, 8, 2, 9)
	m, err := sim.NewOpenMachine(lazySimConfig(plat), policy.NewStockDynamic(plat.Ways), scn.Name(), scn.Initial(), scn.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	for _, arr := range scn.Arrivals() {
		h := m.NextEventHorizon()
		if math.IsInf(h, 1) {
			break
		}
		a, q := m.Active(), m.Queued()
		// Probe just below the horizon: no event may fire there.
		probe := h - 1e-9*math.Max(1, math.Abs(h))
		if probe > 0 {
			if err := m.AdvanceTo(probe); err != nil {
				t.Fatal(err)
			}
			if m.Active() != a || m.Queued() != q {
				t.Fatalf("state changed below the advertised horizon %g: active %d->%d queued %d->%d",
					h, a, m.Active(), q, m.Queued())
			}
		}
		if err := m.AdvanceTo(arr.Time); err != nil {
			t.Fatal(err)
		}
		if err := m.Inject(arr); err != nil {
			t.Fatal(err)
		}
		if got := m.NextEventHorizon(); got > arr.Time {
			t.Fatalf("horizon %g ignores pending injected arrival at t=%g", got, arr.Time)
		}
	}
}

// Sharded runs are deterministic (identical across repetitions and
// worker settings), conserve applications, and report the shard count.
func TestShardedDeterminism(t *testing.T) {
	plat := machine.Small(8, 4)
	mk := func(placement Policy) Config {
		return Config{
			Sim: lazySimConfig(plat), Machines: 8,
			Placement: placement, Shards: 4, RecordAssignments: true,
		}
	}
	run := func(placement Policy) *Result {
		cfg := mk(placement)
		sims, err := cfg.MachineConfigs()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, lazyScenario(t, 10, 2, 21), stockPolicyFactory(sims))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, name := range []string{"rr", "least"} {
		t.Run(name, func(t *testing.T) {
			mkPol := func() Policy {
				if name == "rr" {
					return NewRoundRobin()
				}
				return NewLeastLoaded()
			}
			a, b := run(mkPol()), run(mkPol())
			if !reflect.DeepEqual(a, b) {
				t.Error("sharded run is not deterministic across repetitions")
			}
			if a.Shards != 4 {
				t.Errorf("Shards %d, want 4", a.Shards)
			}
			placedTotal := 0
			for _, m := range a.PerMachine {
				placedTotal += m.Arrivals
			}
			if a.Departed+a.Remaining != placedTotal {
				t.Errorf("departed %d + remaining %d != %d placed", a.Departed, a.Remaining, placedTotal)
			}
			for i, g := range a.Assignments {
				if g < 0 || g >= 8 {
					t.Fatalf("arrival %d assigned to %d, out of fleet range", i, g)
				}
				if g%4 != i%4 {
					t.Errorf("arrival %d (shard %d) assigned to machine %d (shard %d)", i, i%4, g, g%4)
				}
			}
		})
	}
}

// Sharding refuses configurations it cannot execute faithfully:
// order-dependent placements, the lifecycle layer, and more shards
// than machines.
func TestShardedRejections(t *testing.T) {
	plat := machine.Small(8, 4)
	base := Config{Sim: lazySimConfig(plat), Machines: 4, Placement: NewRoundRobin(), Shards: 2}
	try := func(mutate func(*Config)) error {
		cfg := base
		mutate(&cfg)
		sims, err := cfg.MachineConfigs()
		if err != nil {
			t.Fatal(err)
		}
		_, err = Run(cfg, lazyScenario(t, 6, 1, 2), stockPolicyFactory(sims))
		return err
	}
	if err := try(func(cfg *Config) { cfg.Placement = NewFairnessAware(plat) }); err == nil {
		t.Error("sharded run accepted the order-dependent fairness-aware placement")
	}
	if err := try(func(cfg *Config) {
		cfg.Lifecycle = &Lifecycle{Events: []Event{{Time: 0.5, Kind: MachineFail, Machine: 0}}}
	}); err == nil {
		t.Error("sharded run accepted a lifecycle schedule")
	}
	if err := try(func(cfg *Config) { cfg.Shards = 5 }); err == nil {
		t.Error("5 shards over 4 machines accepted")
	}
	if err := try(func(cfg *Config) {}); err != nil {
		t.Errorf("valid sharded configuration rejected: %v", err)
	}
}
