package cluster_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/faircache/lfoc/internal/cluster"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/plan"
	"github.com/faircache/lfoc/internal/pmc"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

func ckptScn(t *testing.T) *scenario.Open {
	t.Helper()
	scn, err := scenario.NewPoisson("ckpt", pool("xalancbmk06", "lbm06", "povray06", "libquantum06"), 8, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// The headline guarantee, cluster level: interrupt a run at T with a
// checkpoint, resume from the file, and the final Result is
// reflect.DeepEqual to the uninterrupted run's — across worker counts,
// placement policies and partitioning policies.
func TestCheckpointResumeDeepEqual(t *testing.T) {
	plat := machine.Small(8, 4)
	cases := []struct {
		name      string
		placement func() cluster.Policy
		factory   func(int) (sim.Dynamic, error)
	}{
		{"roundrobin-stock", func() cluster.Policy { return cluster.NewRoundRobin() }, stockFactory(plat)},
		{"leastloaded-lfoc", func() cluster.Policy { return cluster.NewLeastLoaded() }, lfocFactory(plat)},
		{"fair-stock", func() cluster.Policy { return cluster.NewFairnessAware(plat) }, stockFactory(plat)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := func(workers int) cluster.Config {
				return cluster.Config{
					Sim: clusterSimConfig(plat), Machines: 3,
					Placement: tc.placement(), Workers: workers,
					RecordAssignments: true,
				}
			}
			full, err := cluster.Run(base(1), ckptScn(t), tc.factory)
			if err != nil {
				t.Fatal(err)
			}

			path := filepath.Join(t.TempDir(), "run.ckpt")
			partialCfg := base(4)
			partialCfg.StopAfter = 1.5
			partialCfg.Checkpoint = &cluster.CheckpointConfig{Path: path, Every: 0.5}
			partial, err := cluster.Run(partialCfg, ckptScn(t), tc.factory)
			if err != nil {
				t.Fatal(err)
			}
			if !partial.Interrupted {
				t.Fatal("stopped run not marked interrupted")
			}

			ck, err := cluster.ReadCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			if na := ck.NextArrival(); na <= 0 || na >= len(full.Assignments) {
				t.Fatalf("checkpoint at arrival %d, want a genuine midpoint of the %d-arrival trace",
					na, len(full.Assignments))
			}

			resumeCfg := base(4)
			resumeCfg.Resume = ck
			resumed, err := cluster.Run(resumeCfg, ckptScn(t), tc.factory)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(resumed, full) {
				t.Errorf("resumed run diverges from uninterrupted run\nseries resumed %s\nseries full    %s",
					resumed.Series.Fingerprint(), full.Series.Fingerprint())
			}
		})
	}
}

// Same guarantee with the full chaos lifecycle active: scheduled
// drain/fail/join, the seeded MTBF process, migrations, retries and
// autoscaling all cross the checkpoint boundary and still reproduce the
// uninterrupted run exactly — lifecycle summary and series included.
func TestLifecycleCheckpointResumeDeepEqual(t *testing.T) {
	plat := machine.Small(8, 4)
	mkScn := func() *scenario.Open {
		scn, err := scenario.NewPoisson("chaos", pool("xalancbmk06", "lbm06", "povray06", "libquantum06"), 8, 3, 42)
		if err != nil {
			t.Fatal(err)
		}
		return scn
	}

	full, err := cluster.Run(chaosConfig(plat, 1), mkScn(), stockFactory(plat))
	if err != nil {
		t.Fatal(err)
	}

	for _, stopAt := range []float64{1.2, 1.8} {
		path := filepath.Join(t.TempDir(), "chaos.ckpt")
		partialCfg := chaosConfig(plat, 4)
		partialCfg.StopAfter = stopAt
		partialCfg.Checkpoint = &cluster.CheckpointConfig{Path: path, Every: 0.4}
		partial, err := cluster.Run(partialCfg, mkScn(), stockFactory(plat))
		if err != nil {
			t.Fatalf("stop@%g: %v", stopAt, err)
		}
		if !partial.Interrupted {
			t.Fatalf("stop@%g: run not marked interrupted", stopAt)
		}

		ck, err := cluster.ReadCheckpoint(path)
		if err != nil {
			t.Fatalf("stop@%g: %v", stopAt, err)
		}
		resumeCfg := chaosConfig(plat, 4)
		resumeCfg.Resume = ck
		resumed, err := cluster.Run(resumeCfg, mkScn(), stockFactory(plat))
		if err != nil {
			t.Fatalf("stop@%g: resume: %v", stopAt, err)
		}
		if !reflect.DeepEqual(resumed, full) {
			t.Errorf("stop@%g: resumed chaos run diverges from uninterrupted run", stopAt)
			if resumed.Lifecycle != nil && full.Lifecycle != nil &&
				!reflect.DeepEqual(resumed.Lifecycle, full.Lifecycle) {
				t.Errorf("  lifecycle summaries differ:\n resumed %+v\n full    %+v",
					resumed.Lifecycle, full.Lifecycle)
			}
		}
	}
}

// Cooperative cancellation: a canceled run returns a partial Result
// marked interrupted (no error), leaves a valid checkpoint behind, and
// resuming that checkpoint completes to the uninterrupted result.
func TestCancelWritesResumableCheckpoint(t *testing.T) {
	plat := machine.Small(8, 4)
	base := func() cluster.Config {
		return cluster.Config{
			Sim: clusterSimConfig(plat), Machines: 3,
			Placement: cluster.NewRoundRobin(), Workers: 4,
		}
	}
	full, err := cluster.Run(base(), ckptScn(t), stockFactory(plat))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "cancel.ckpt")
	var flag sim.CancelFlag
	flag.Cancel()
	cfg := base()
	cfg.Cancel = &flag
	cfg.Checkpoint = &cluster.CheckpointConfig{Path: path}
	partial, err := cluster.Run(cfg, ckptScn(t), stockFactory(plat))
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Interrupted {
		t.Fatal("canceled run not marked interrupted")
	}

	ck, err := cluster.ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("canceled run left no valid checkpoint: %v", err)
	}
	resumeCfg := base()
	resumeCfg.Resume = ck
	resumed, err := cluster.Run(resumeCfg, ckptScn(t), stockFactory(plat))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, full) {
		t.Error("resume after cancellation diverges from uninterrupted run")
	}
}

// A canceled parallel run must wind down its worker pool completely: no
// goroutine may outlive Run.
func TestCancelLeavesNoGoroutines(t *testing.T) {
	plat := machine.Small(8, 4)
	before := runtime.NumGoroutine()
	var flag sim.CancelFlag
	flag.Cancel()
	cfg := cluster.Config{
		Sim: clusterSimConfig(plat), Machines: 4,
		Placement: cluster.NewRoundRobin(), Workers: 4,
		Cancel: &flag,
	}
	if _, err := cluster.Run(cfg, ckptScn(t), stockFactory(plat)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("%d goroutines after canceled run, %d before", got, before)
	}
}

// Every way a checkpoint file can be bad maps to a typed error: not a
// checkpoint, wrong version, corrupted payload.
func TestReadCheckpointTypedErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	var ferr *cluster.CheckpointFormatError
	var cerr *cluster.CheckpointChecksumError

	if _, err := cluster.ReadCheckpoint(write("garbage", []byte("hello\n"))); !errors.As(err, &ferr) {
		t.Errorf("garbage file: %v, want *CheckpointFormatError", err)
	}
	if _, err := cluster.ReadCheckpoint(write("magic",
		[]byte(`{"magic":"nope","version":1,"sha256":"","payload":{}}`))); !errors.As(err, &ferr) {
		t.Errorf("bad magic: %v, want *CheckpointFormatError", err)
	}
	if _, err := cluster.ReadCheckpoint(write("version",
		[]byte(`{"magic":"lfoc-checkpoint","version":99,"sha256":"","payload":{}}`))); !errors.As(err, &ferr) {
		t.Errorf("future version: %v, want *CheckpointFormatError", err)
	}

	// A real checkpoint with one payload byte altered: the wrapper still
	// parses, the checksum catches the tampering.
	plat := machine.Small(8, 4)
	path := filepath.Join(dir, "real.ckpt")
	var flag sim.CancelFlag
	flag.Cancel()
	cfg := cluster.Config{
		Sim: clusterSimConfig(plat), Machines: 2,
		Placement: cluster.NewRoundRobin(), Workers: 1,
		Cancel:     &flag,
		Checkpoint: &cluster.CheckpointConfig{Path: path},
	}
	if _, err := cluster.Run(cfg, ckptScn(t), stockFactory(plat)); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.ReadCheckpoint(path); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte(`"scenario"`), []byte(`"scenArio"`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper target not found in checkpoint payload")
	}
	if _, err := cluster.ReadCheckpoint(write("tampered", tampered)); !errors.As(err, &cerr) {
		t.Errorf("tampered payload: %v, want *CheckpointChecksumError", err)
	}
}

// Checkpointing is validated up-front: a placement policy or a
// partitioning policy without snapshot support is rejected with the
// typed error before the run starts, not at the first write.
func TestCheckpointUnsupportedPoliciesTyped(t *testing.T) {
	plat := machine.Small(8, 4)
	path := filepath.Join(t.TempDir(), "never.ckpt")
	var unsup *sim.SnapshotUnsupportedError

	_, err := cluster.Run(cluster.Config{
		Sim: clusterSimConfig(plat), Machines: 2,
		Placement:  badPlacement{idx: 0},
		Checkpoint: &cluster.CheckpointConfig{Path: path},
	}, ckptScn(t), stockFactory(plat))
	if !errors.As(err, &unsup) {
		t.Errorf("snapshot-free placement: %v, want *sim.SnapshotUnsupportedError", err)
	}

	fixedFactory := func(int) (sim.Dynamic, error) {
		return sim.NewFixedPlanPolicy(plan.SingleCluster(1, plat.Ways), 1, plat.Ways)
	}
	_, err = cluster.Run(cluster.Config{
		Sim: clusterSimConfig(plat), Machines: 2,
		Placement:  cluster.NewRoundRobin(),
		Checkpoint: &cluster.CheckpointConfig{Path: path},
	}, ckptScn(t), fixedFactory)
	if !errors.As(err, &unsup) {
		t.Errorf("snapshot-free partitioning policy: %v, want *sim.SnapshotUnsupportedError", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("rejected run wrote a checkpoint anyway")
	}
}

// panicPolicy panics inside the kernel after a fixed number of counter
// windows — a stand-in for a buggy policy plugin.
type panicPolicy struct {
	sim.Dynamic
	left int
}

func (p *panicPolicy) OnWindow(id int, w pmc.Sample) bool {
	p.left--
	if p.left <= 0 {
		panic("policy bug: window bookkeeping exploded")
	}
	return p.Dynamic.OnWindow(id, w)
}

// A panicking policy must not crash the process or deadlock the worker
// pool: the run fails with the typed *RunPanicError naming the machine,
// at any worker count.
func TestWorkerPanicIsolated(t *testing.T) {
	plat := machine.Small(8, 4)
	for _, workers := range []int{1, 4} {
		factory := func(i int) (sim.Dynamic, error) {
			if i == 1 {
				// Dunn monitors every window, so OnWindow fires often.
				return &panicPolicy{Dynamic: policy.NewDunnDynamic(plat.Ways), left: 3}, nil
			}
			return policy.NewStockDynamic(plat.Ways), nil
		}
		_, err := cluster.Run(cluster.Config{
			Sim: clusterSimConfig(plat), Machines: 3,
			Placement: cluster.NewRoundRobin(), Workers: workers,
		}, ckptScn(t), factory)
		var pe *cluster.RunPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: %v, want *RunPanicError", workers, err)
		}
		if pe.Machine != 1 {
			t.Errorf("workers=%d: panic attributed to machine %d, want 1", workers, pe.Machine)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: panic error carries no stack trace", workers)
		}
	}
}
