package cluster

import "math"

// fleetQueue is the fleet event queue: an indexed binary min-heap of
// machine indices ordered by (horizon, index), where horizon[i] is the
// conservative next-event bound sim.OpenMachine.NextEventHorizon
// reported the last time machine i was touched. The cluster engine
// consults it at every synchronization instant t (arrival, lifecycle
// event) and advances only the machines whose horizon has passed —
// every other machine's placement-visible state provably cannot have
// changed, so the eager every-machine-every-arrival fan-out collapses
// to the handful of machines with something to do.
//
// Invariants:
//   - heap[0..n) is a binary min-heap under (horizon, index); pos is
//     its inverse permutation (pos[heap[k]] == k). Every live machine
//     is in the heap exactly once — done, halted and idle machines stay
//     in with horizon +Inf rather than being removed, so membership
//     never has to be tracked separately.
//   - horizon[i] is a lower bound on machine i's next state-visible
//     event; it may be stale low (machine due but nothing happens — a
//     cheap no-op advance) but never stale high. Out-of-band kernel
//     mutations (Inject, InjectResident, Halt, join) must therefore be
//     followed by touch/update before the next collectDue.
//
// All heap operations are serial; only the horizon recomputation after
// an advance happens on the worker pool (distinct indices, then fixed
// up serially), so the structure is deterministic at any worker count.
type fleetQueue struct {
	horizon []float64
	heap    []int
	pos     []int
	stack   []int // collectDue descent scratch
}

// newFleetQueue builds the queue with every machine due at time zero:
// the first synchronization instant advances the whole fleet once
// (exactly what the eager loop does on its first arrival) and the real
// horizons are learned from that advance.
func newFleetQueue(n int) *fleetQueue {
	q := &fleetQueue{
		horizon: make([]float64, n),
		heap:    make([]int, n),
		pos:     make([]int, n),
	}
	for i := range q.heap {
		q.heap[i] = i
		q.pos[i] = i
	}
	return q
}

// less orders heap slots a, b by (horizon, machine index); the index
// tie-break makes the layout — and with it collectDue's output order —
// a pure function of the operation history.
func (q *fleetQueue) less(a, b int) bool {
	ha, hb := q.horizon[q.heap[a]], q.horizon[q.heap[b]]
	if ha != hb {
		return ha < hb
	}
	return q.heap[a] < q.heap[b]
}

func (q *fleetQueue) swap(a, b int) {
	q.heap[a], q.heap[b] = q.heap[b], q.heap[a]
	q.pos[q.heap[a]] = a
	q.pos[q.heap[b]] = b
}

func (q *fleetQueue) up(k int) {
	for k > 0 {
		parent := (k - 1) / 2
		if !q.less(k, parent) {
			return
		}
		q.swap(k, parent)
		k = parent
	}
}

func (q *fleetQueue) down(k int) {
	n := len(q.heap)
	for {
		l := 2*k + 1
		if l >= n {
			return
		}
		c := l
		if r := l + 1; r < n && q.less(r, l) {
			c = r
		}
		if !q.less(c, k) {
			return
		}
		q.swap(k, c)
		k = c
	}
}

// update sets machine idx's horizon and restores the heap invariant.
func (q *fleetQueue) update(idx int, h float64) {
	q.horizon[idx] = h
	q.fix(idx)
}

// fix restores the heap invariant after horizon[idx] was rewritten in
// place (the worker pool stores recomputed horizons directly into the
// shared slice; the serial caller then fixes each touched entry).
func (q *fleetQueue) fix(idx int) {
	k := q.pos[idx]
	q.up(k)
	q.down(q.pos[idx])
}

// touch lowers machine idx's horizon to at most t — the caller mutated
// the machine's kernel out of band (injected an arrival or a migrated
// resident) and the machine must count as due no later than t.
func (q *fleetQueue) touch(idx int, t float64) {
	if t < q.horizon[idx] {
		q.horizon[idx] = t
		q.up(q.pos[idx])
	}
}

// grow appends a joining machine with horizon h.
func (q *fleetQueue) grow(h float64) {
	idx := len(q.horizon)
	q.horizon = append(q.horizon, h)
	q.heap = append(q.heap, idx)
	q.pos = append(q.pos, len(q.heap)-1)
	q.up(q.pos[idx])
}

// collectDue appends every machine with horizon ≤ t to dst and returns
// it. It descends the heap without popping — a subtree whose root is
// beyond t cannot contain a due machine, so the walk visits O(due)
// nodes — and leaves the heap untouched: the caller advances the due
// machines, rewrites their horizons and calls fix on each.
func (q *fleetQueue) collectDue(t float64, dst []int) []int {
	if len(q.heap) == 0 || math.IsInf(t, -1) {
		return dst
	}
	q.stack = append(q.stack[:0], 0)
	for len(q.stack) > 0 {
		k := q.stack[len(q.stack)-1]
		q.stack = q.stack[:len(q.stack)-1]
		idx := q.heap[k]
		if q.horizon[idx] > t {
			continue
		}
		dst = append(dst, idx)
		if l := 2*k + 1; l < len(q.heap) {
			q.stack = append(q.stack, l)
		}
		if r := 2*k + 2; r < len(q.heap) {
			q.stack = append(q.stack, r)
		}
	}
	return dst
}
