// Sharded arrival streams: Config.Shards splits a cluster run into K
// disjoint sub-fleets fed by K striped sub-streams that execute with no
// cross-shard synchronization at all — the serial per-arrival placement
// point of the main loop becomes K independent placement points running
// concurrently. Machine i belongs to shard i%K and trace arrival j to
// shard j%K, so every shard sees ~1/K of the load over ~1/K of the
// fleet in the original relative order.
//
// This is only a faithful execution for placement policies that declare
// order-independence (ShardablePlacement): each shard gets its own
// fresh instance via Shard() and never observes another shard's
// machines, so a policy whose decisions depend on the global decision
// history (FairnessAware) must stay on the serial path. Sharded results
// are deterministic — shards share nothing and the merge walks global
// machine order — but differ from the unsharded run by construction;
// the unsharded path remains the bit-exact reference.
package cluster

import (
	"fmt"
	"sync"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

// shardRun is one shard's world: local slices index the shard's
// machines 0..m, with global fleet index g = shard + local*k.
type shardRun struct {
	shard     int // this shard's number in 0..k
	k         int // shard count (the global-index stride)
	fleet     int // global fleet size
	placement Policy
	globals   []int
	machines  []*sim.OpenMachine
	states    []MachineState
	arrs      []scenario.Arrival
	arrIdx    []int // global trace index of each shard arrival
	pool      *fleetPool
	err       error
}

// runSharded executes the Shards > 1 path of Run. cfg, scn and sims
// are pre-validated by Run.
func runSharded(cfg Config, scn *scenario.Open, sims []sim.Config, newPolicy func(machine int) (sim.Dynamic, error)) (*Result, error) {
	k := cfg.Shards
	n := len(sims)
	if cfg.Lifecycle.active() {
		return nil, fmt.Errorf("cluster: sharded arrival streams are incompatible with the lifecycle layer (shards share no event timeline)")
	}
	sp, ok := cfg.Placement.(ShardablePlacement)
	if !ok {
		return nil, fmt.Errorf("cluster: placement %q does not declare order-independence (ShardablePlacement) — sharded arrival streams would change its semantics", cfg.Placement.Name())
	}
	if k > n {
		return nil, fmt.Errorf("cluster: %d shards need at least %d machines, fleet has %d", k, k, n)
	}

	initial := scn.Initial()
	arrivals := scn.Arrivals()
	machines := make([]*sim.OpenMachine, n) // global index order
	placed := make([]int, n)
	var assignments []int
	if cfg.RecordAssignments {
		assignments = make([]int, len(arrivals))
		for i := range assignments {
			assignments[i] = -1
		}
	}

	// Build every shard's world serially (policy factories and initial
	// placement are not required to be concurrency-safe); only the
	// simulation loops below run concurrently.
	shards := make([]*shardRun, k)
	for s := range shards {
		sh := &shardRun{shard: s, k: k, fleet: n, placement: sp.Shard()}
		for g := s; g < n; g += k {
			sh.globals = append(sh.globals, g)
			sh.states = append(sh.states, MachineState{Index: g, Cores: sims[g].Plat.Cores, Plat: sims[g].Plat})
		}
		shards[s] = sh
	}
	for j, arr := range arrivals {
		sh := shards[j%k]
		sh.arrs = append(sh.arrs, arr)
		sh.arrIdx = append(sh.arrIdx, j)
	}
	perMachineInitial := make([][]*appmodel.Spec, n)
	for j, spec := range initial {
		sh := shards[j%k]
		g, err := sh.place(spec, 0)
		if err != nil {
			return nil, err
		}
		perMachineInitial[g] = append(perMachineInitial[g], spec)
		// Mirror placeInitial's admission preview: one app per core,
		// overflow starts queued.
		st := &sh.states[g/k]
		if st.Active < st.Cores {
			st.Active++
			st.Phases = append(st.Phases, spec.DominantPhase())
		} else {
			st.Queued++
		}
	}
	for _, sh := range shards {
		for _, g := range sh.globals {
			pol, err := newPolicy(g)
			if err != nil {
				return nil, fmt.Errorf("cluster: machine %d policy: %w", g, err)
			}
			m, err := sim.NewOpenMachine(sims[g], pol, scn.Name(), perMachineInitial[g], scn.Horizon())
			if err != nil {
				return nil, fmt.Errorf("cluster: machine %d: %w", g, err)
			}
			sh.machines = append(sh.machines, m)
			machines[g] = m
			placed[g] = len(perMachineInitial[g])
		}
	}

	// Run the shards concurrently; each shard is serial inside (its own
	// single-worker pool and fleet event queue), so Workers does not
	// apply here — the shard count is the parallelism.
	var wg sync.WaitGroup
	for _, sh := range shards {
		wg.Add(1)
		go func(sh *shardRun) {
			defer wg.Done()
			sh.err = sh.run(&cfg, placed, assignments)
		}(sh)
	}
	wg.Wait()
	for _, sh := range shards {
		if sh.err != nil {
			return nil, sh.err
		}
	}
	if cfg.statsSink != nil {
		for _, sh := range shards {
			cfg.statsSink.Advances += sh.pool.advances.Load()
			cfg.statsSink.Syncs += sh.pool.syncs
		}
	}

	res, err := buildResult(cfg, scn, machines, placed, assignments, nil)
	if err != nil {
		return nil, err
	}
	res.Shards = k
	return res, nil
}

// place routes one arrival through the shard's placement instance and
// validates that the decision stayed inside the shard. Returns the
// global machine index.
func (sh *shardRun) place(spec *appmodel.Spec, t float64) (int, error) {
	g := sh.placement.Place(spec, t, sh.states)
	if err := checkPlaced(sh.placement.Name(), g, sh.fleet, nil); err != nil {
		return 0, err
	}
	if g%sh.k != sh.shard {
		return 0, &PlacementError{Policy: sh.placement.Name(), Index: g, Machines: sh.fleet,
			Reason: fmt.Sprintf("machine belongs to shard %d, not %d", g%sh.k, sh.shard)}
	}
	return g, nil
}

// run is one shard's arrival loop: the main Run loop over the shard's
// sub-stream and sub-fleet, lazy by default, eager under the knob.
// placed and assignments are fleet-global slices — shards write
// disjoint entries (their own machines, their own trace indices), so
// the concurrent writes are race-free.
func (sh *shardRun) run(cfg *Config, placed, assignments []int) error {
	sh.pool = newFleetPool(sh.machines, sh.states, 1)
	var q *fleetQueue
	if !cfg.eagerAdvance {
		q = newFleetQueue(len(sh.machines))
		sh.pool.horizons = q.horizon
	}
	for i, arr := range sh.arrs {
		var err error
		if q != nil {
			err = sh.pool.advanceDue(q, arr.Time)
		} else {
			err = sh.pool.advanceTo(arr.Time)
		}
		if err != nil {
			return err
		}
		g, err := sh.place(arr.Spec, arr.Time)
		if err != nil {
			return err
		}
		local := g / sh.k
		if err := sh.machines[local].Inject(arr); err != nil {
			return fmt.Errorf("cluster: machine %d: %w", g, err)
		}
		if q != nil {
			q.touch(local, arr.Time)
		}
		placed[g]++
		if assignments != nil {
			assignments[sh.arrIdx[i]] = g
		}
	}
	if q != nil && len(sh.arrs) > 0 {
		if err := sh.pool.alignClocks(sh.arrs[len(sh.arrs)-1].Time); err != nil {
			return err
		}
	}
	return sh.pool.drain()
}
