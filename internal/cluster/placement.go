package cluster

import (
	"fmt"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/cat"
	"github.com/faircache/lfoc/internal/core"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/sharing"
)

// MachineState is one machine's placement-visible load at an arrival
// instant: every machine has been advanced to the arrival time before
// the policy is consulted, so the view is synchronous across the fleet.
type MachineState struct {
	// Index identifies the machine within the cluster.
	Index int
	// Cores is the machine's admission capacity (one app per core).
	Cores int
	// Active counts applications currently holding a core.
	Active int
	// Queued counts arrivals waiting for a core (plus injected arrivals
	// not yet delivered) — the admission-queue length.
	Queued int
	// Phases holds the current phase of every resident application, the
	// contention-model view of what the machine is running.
	Phases []*appmodel.PhaseSpec
}

// Load is the machine's total commitment: resident plus queued.
func (s MachineState) Load() int { return s.Active + s.Queued }

// Policy decides which machine admits an arriving application. A policy
// may keep internal state (RoundRobin's cursor, FairnessAware's caches),
// so one instance must not be shared across concurrent cluster runs;
// construct a fresh policy per Run.
type Policy interface {
	// Name labels the policy in results and reports.
	Name() string
	// Place returns the MachineState.Index of the machine that admits
	// the arrival. machines is non-empty and ordered by Index.
	Place(spec *appmodel.Spec, t float64, machines []MachineState) int
}

// RoundRobin cycles through the machines in index order regardless of
// load — the baseline every placement study needs.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a round-robin placement starting at machine 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (r *RoundRobin) Name() string { return "rr" }

// Place implements Policy.
func (r *RoundRobin) Place(_ *appmodel.Spec, _ float64, machines []MachineState) int {
	idx := r.next % len(machines)
	r.next = (r.next + 1) % len(machines)
	return machines[idx].Index
}

// LeastLoaded admits on the machine with the fewest resident plus
// queued applications, breaking ties toward the shorter admission queue
// and then the lower index — deterministic joint-shortest-queue.
type LeastLoaded struct{}

// NewLeastLoaded returns the least-loaded placement.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Policy.
func (l *LeastLoaded) Name() string { return "least" }

// Place implements Policy.
func (l *LeastLoaded) Place(_ *appmodel.Spec, _ float64, machines []MachineState) int {
	best := 0
	for i := 1; i < len(machines); i++ {
		if better(machines[i], machines[best]) {
			best = i
		}
	}
	return machines[best].Index
}

// better orders machine states by load, then queue length (index order
// breaks the final tie because the scan goes low to high).
func better(a, b MachineState) bool {
	if a.Load() != b.Load() {
		return a.Load() < b.Load()
	}
	return a.Queued < b.Queued
}

// FairnessAware is the contention-aware placement: it scores every
// candidate machine with the sharing model — the predicted unfairness
// of the machine's residents plus the newcomer, all competing for the
// full LLC (the pessimistic pre-partitioning view the per-machine LFOC
// then improves on) — and admits where the prediction is best, with
// queueing machines penalized by their queue depth.
//
// LFOC's light/streaming classification keeps the policy cheap where
// the model cannot change the answer: an arrival whose dominant phase
// classifies as light-sharing neither suffers nor inflicts contention
// (Table 1), so it is placed least-loaded without evaluating the model.
// Streaming and sensitive arrivals take the model path, which is where
// classification pays off twice — a sensitive newcomer is steered away
// from streaming-heavy machines because the model predicts exactly the
// slowdown those aggressors inflict.
type FairnessAware struct {
	plat   *machine.Platform
	eval   *sharing.Evaluator
	params core.Params

	classes  map[*appmodel.PhaseSpec]core.Class
	aloneIPC map[*appmodel.PhaseSpec]float64
	fullMask cat.WayMask

	scratch []sharing.App
	res     []sharing.Result
	sds     []float64
	ll      LeastLoaded
}

// NewFairnessAware returns the contention-aware placement for a fleet
// of machines of the given (identical) platform.
func NewFairnessAware(plat *machine.Platform) *FairnessAware {
	return &FairnessAware{
		plat:     plat,
		eval:     sharing.NewEvaluator(sharing.NewModel(plat)),
		params:   core.DefaultParams(plat.Ways),
		classes:  map[*appmodel.PhaseSpec]core.Class{},
		aloneIPC: map[*appmodel.PhaseSpec]float64{},
		fullMask: cat.FullMask(plat.Ways),
	}
}

// Name implements Policy.
func (f *FairnessAware) Name() string { return "fair" }

// classOf classifies a phase through LFOC's Table 1 criteria, cached
// per phase spec (the offline profile build dominates the cost).
func (f *FairnessAware) classOf(ph *appmodel.PhaseSpec) core.Class {
	if c, ok := f.classes[ph]; ok {
		return c
	}
	prof := policy.ProfileFromTable(appmodel.BuildTable(ph, f.plat))
	c := core.Classify(prof, &f.params)
	f.classes[ph] = c
	return c
}

// alone returns the phase's solo IPC (full LLC, unloaded memory),
// cached per phase spec.
func (f *FairnessAware) alone(ph *appmodel.PhaseSpec) float64 {
	if ipc, ok := f.aloneIPC[ph]; ok {
		return ipc
	}
	ipc := appmodel.PhasePerf(ph, f.plat, f.plat.LLCBytes(), 1).IPC
	f.aloneIPC[ph] = ipc
	return ipc
}

// Place implements Policy.
func (f *FairnessAware) Place(spec *appmodel.Spec, t float64, machines []MachineState) int {
	ph := spec.DominantPhase()
	if f.classOf(ph) == core.ClassLight {
		return f.ll.Place(spec, t, machines)
	}
	best, bestScore := 0, 0.0
	for i, m := range machines {
		score := f.score(ph, m)
		if i == 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	return machines[best].Index
}

// score is the predicted unfairness of the machine's residents plus the
// newcomer under full-LLC sharing, inflated by the queue depth when the
// machine has no free core (the newcomer would wait, and everyone ahead
// of it makes the wait longer).
func (f *FairnessAware) score(ph *appmodel.PhaseSpec, m MachineState) float64 {
	f.scratch = f.scratch[:0]
	for i, resident := range m.Phases {
		f.scratch = append(f.scratch, sharing.App{ID: i, Phase: resident, Mask: f.fullMask})
	}
	f.scratch = append(f.scratch, sharing.App{ID: len(m.Phases), Phase: ph, Mask: f.fullMask})

	f.res = f.eval.EvaluateInto(f.res, f.scratch)
	f.sds = f.sds[:0]
	for i, a := range f.scratch {
		f.sds = append(f.sds, f.alone(a.Phase)/f.res[i].Perf.IPC)
	}
	lo, hi := f.sds[0], f.sds[0]
	for _, s := range f.sds[1:] {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	unfairness := hi / lo
	if m.Load() >= m.Cores {
		unfairness *= float64(2 + m.Queued)
	}
	return unfairness
}

// NewPlacement constructs a placement policy by name: "rr"/"roundrobin",
// "least"/"leastloaded", or "fair"/"fairness". plat is needed only by
// the fairness-aware policy (the machines' shared platform model).
func NewPlacement(name string, plat *machine.Platform) (Policy, error) {
	switch name {
	case "rr", "roundrobin":
		return NewRoundRobin(), nil
	case "least", "leastloaded":
		return NewLeastLoaded(), nil
	case "fair", "fairness":
		if plat == nil {
			return nil, fmt.Errorf("cluster: fairness-aware placement needs a platform")
		}
		return NewFairnessAware(plat), nil
	default:
		return nil, fmt.Errorf("cluster: unknown placement %q (want rr, least or fair)", name)
	}
}
