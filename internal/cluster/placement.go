package cluster

import (
	"fmt"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/cat"
	"github.com/faircache/lfoc/internal/core"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/sharing"
)

// MachineState is one machine's placement-visible load at an arrival
// instant: every machine has been advanced to the arrival time before
// the policy is consulted, so the view is synchronous across the fleet.
type MachineState struct {
	// Index identifies the machine within the cluster.
	Index int
	// Cores is the machine's admission capacity (one app per core).
	Cores int
	// Plat is the machine's platform model. Heterogeneous fleets differ
	// per machine (core counts, way counts, LLC sizes); contention-aware
	// placements must evaluate a candidate on its own platform, not a
	// fleet-wide one.
	Plat *machine.Platform
	// Active counts applications currently holding a core.
	Active int
	// Queued counts arrivals waiting for a core (plus injected arrivals
	// not yet delivered) — the admission-queue length. At time zero this
	// includes initial applications beyond the machine's core count:
	// they will start queued, not resident.
	Queued int
	// Phases holds the current phase of every resident application, the
	// contention-model view of what the machine is running. Queued
	// applications are not resident and do not appear here.
	Phases []*appmodel.PhaseSpec
}

// Load is the machine's total commitment: resident plus queued.
func (s MachineState) Load() int { return s.Active + s.Queued }

// Policy decides which machine admits an arriving application. A policy
// may keep internal state (RoundRobin's cursor, FairnessAware's caches),
// so one instance must not be shared across concurrent cluster runs;
// construct a fresh policy per Run.
type Policy interface {
	// Name labels the policy in results and reports.
	Name() string
	// Place returns the MachineState.Index of the machine that admits
	// the arrival — the Index field of the chosen state, NOT the
	// state's position in the machines slice. cluster.Run passes
	// machines ordered by Index with Index equal to position, so the
	// two coincide there, but the contract is the Index field: a policy
	// that reorders, filters or subsets the slice while scoring must
	// still return the original Index. machines is non-empty.
	Place(spec *appmodel.Spec, t float64, machines []MachineState) int
}

// ShardablePlacement is the optional Policy refinement behind sharded
// arrival streams (Config.Shards): a policy implements it to declare
// that its decisions are order-independent — it scores each arrival
// against the machine states alone, with no memory that makes decision
// k depend on which arrivals preceded it on which machines — so routing
// a striped sub-stream over a striped sub-fleet is still a faithful
// execution of the policy. RoundRobin (its cursor cycles whatever fleet
// it is given) and LeastLoaded (stateless joint-shortest-queue) qualify;
// FairnessAware does not — its prediction feeds on the residents every
// earlier global decision produced, so it stays serial-exact.
type ShardablePlacement interface {
	Policy
	// Shard returns a fresh, independent instance of this policy for
	// one sub-fleet. Instances share nothing: shards run concurrently.
	Shard() Policy
}

// RoundRobin cycles through the machines in index order regardless of
// load — the baseline every placement study needs.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a round-robin placement starting at machine 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (r *RoundRobin) Name() string { return "rr" }

// Place implements Policy.
func (r *RoundRobin) Place(_ *appmodel.Spec, _ float64, machines []MachineState) int {
	idx := r.next % len(machines)
	r.next = (r.next + 1) % len(machines)
	return machines[idx].Index
}

// Shard implements ShardablePlacement: each sub-fleet gets its own
// cursor starting at its first machine.
func (r *RoundRobin) Shard() Policy { return NewRoundRobin() }

// LeastLoaded admits on a machine with a free core when one exists,
// preferring the fewest resident plus queued applications, breaking
// ties toward the shorter admission queue and then the lower index —
// deterministic joint-shortest-queue. The free-core rule exists for
// heterogeneous fleets: a full 4-core machine carries less absolute
// load than a 20-core machine with idle cores, but queueing behind it
// is strictly worse. On homogeneous fleets the rule never changes a
// pick (a machine with a free core always carries less load than a
// full one), so existing placement goldens are unaffected.
type LeastLoaded struct{}

// NewLeastLoaded returns the least-loaded placement.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Policy.
func (l *LeastLoaded) Name() string { return "least" }

// Shard implements ShardablePlacement: the policy is stateless, so a
// fresh instance is equivalent by construction.
func (l *LeastLoaded) Shard() Policy { return NewLeastLoaded() }

// Place implements Policy.
func (l *LeastLoaded) Place(_ *appmodel.Spec, _ float64, machines []MachineState) int {
	best := 0
	for i := 1; i < len(machines); i++ {
		if better(machines[i], machines[best]) {
			best = i
		}
	}
	return machines[best].Index
}

// better orders machine states: free core first, then by load, then
// queue length (index order breaks the final tie because the scan goes
// low to high).
func better(a, b MachineState) bool {
	if aFree, bFree := a.Load() < a.Cores, b.Load() < b.Cores; aFree != bFree {
		return aFree
	}
	if a.Load() != b.Load() {
		return a.Load() < b.Load()
	}
	return a.Queued < b.Queued
}

// FairnessAware is the contention-aware placement: it scores every
// candidate machine with the sharing model — the predicted unfairness
// of the machine's residents plus the newcomer, all competing for the
// full LLC (the pessimistic pre-partitioning view the per-machine LFOC
// then improves on) — and admits where the prediction is best, with
// queueing machines penalized by their queue depth. Every candidate is
// evaluated on its own platform (MachineState.Plat), so a heterogeneous
// fleet scores each machine against its actual LLC: the same residents
// predict more unfairness on a 7-way machine than an 11-way one.
//
// LFOC's light/streaming classification keeps the policy cheap where
// the model cannot change the answer: an arrival whose dominant phase
// classifies as light-sharing neither suffers nor inflicts contention
// (Table 1), so it is placed least-loaded without evaluating the model.
// The triage is checked on every candidate platform — a phase that is
// light against a big LLC can be an aggressor against a small one, so
// only an everywhere-light arrival takes the fast path.
// Streaming and sensitive arrivals take the model path, which is where
// classification pays off twice — a sensitive newcomer is steered away
// from streaming-heavy machines because the model predicts exactly the
// slowdown those aggressors inflict.
type FairnessAware struct {
	// ref is the fallback platform, standing in for machines whose
	// state carries no platform of its own.
	ref   *machine.Platform
	evals map[*machine.Platform]*platformEval

	sds []float64
	ll  LeastLoaded
}

// platformEval is FairnessAware's per-platform machinery. The sharing
// model, the classification thresholds, the class and alone-IPC caches
// and the full-LLC mask are all platform-specific — a phase classifies
// differently against a 7-way LLC than an 11-way one, and its alone IPC
// depends on the LLC size — so a heterogeneous fleet needs one of these
// per distinct platform. Machines sharing a *machine.Platform share one
// (ParseMachineMix reuses a single Platform per mix group for exactly
// this reason).
type platformEval struct {
	plat     *machine.Platform
	eval     *sharing.Evaluator
	params   core.Params
	classes  map[*appmodel.PhaseSpec]core.Class
	aloneIPC map[*appmodel.PhaseSpec]float64
	fullMask cat.WayMask

	scratch []sharing.App
	res     []sharing.Result
}

func newPlatformEval(plat *machine.Platform) *platformEval {
	return &platformEval{
		plat:     plat,
		eval:     sharing.NewEvaluator(sharing.NewModel(plat)),
		params:   core.DefaultParams(plat.Ways),
		classes:  map[*appmodel.PhaseSpec]core.Class{},
		aloneIPC: map[*appmodel.PhaseSpec]float64{},
		fullMask: cat.FullMask(plat.Ways),
	}
}

// NewFairnessAware returns the contention-aware placement. plat is the
// fallback platform for machines whose MachineState carries none;
// candidates are classified and scored on their per-state platforms.
func NewFairnessAware(plat *machine.Platform) *FairnessAware {
	f := &FairnessAware{ref: plat, evals: map[*machine.Platform]*platformEval{}}
	f.evals[plat] = newPlatformEval(plat)
	return f
}

// Name implements Policy.
func (f *FairnessAware) Name() string { return "fair" }

// evalFor returns (building on first use) the per-platform machinery
// for a candidate machine, falling back to the reference platform for
// states without one.
func (f *FairnessAware) evalFor(plat *machine.Platform) *platformEval {
	if plat == nil {
		plat = f.ref
	}
	pe, ok := f.evals[plat]
	if !ok {
		pe = newPlatformEval(plat)
		f.evals[plat] = pe
	}
	return pe
}

// classOf classifies a phase through LFOC's Table 1 criteria, cached
// per phase spec (the offline profile build dominates the cost).
func (pe *platformEval) classOf(ph *appmodel.PhaseSpec) core.Class {
	if c, ok := pe.classes[ph]; ok {
		return c
	}
	prof := policy.ProfileFromTable(appmodel.BuildTable(ph, pe.plat))
	c := core.Classify(prof, &pe.params)
	pe.classes[ph] = c
	return c
}

// alone returns the phase's solo IPC (full LLC, unloaded memory),
// cached per phase spec.
func (pe *platformEval) alone(ph *appmodel.PhaseSpec) float64 {
	if ipc, ok := pe.aloneIPC[ph]; ok {
		return ipc
	}
	ipc := appmodel.PhasePerf(ph, pe.plat, pe.plat.LLCBytes(), 1).IPC
	pe.aloneIPC[ph] = ipc
	return ipc
}

// Place implements Policy.
func (f *FairnessAware) Place(spec *appmodel.Spec, t float64, machines []MachineState) int {
	ph := spec.DominantPhase()
	// The light-sharing fast path must hold on every platform the
	// arrival could land on: a phase whose working set fits an 11-way
	// LLC can be a streaming aggressor against a 7-way one, so only an
	// everywhere-light arrival skips the model. Classes are cached per
	// (platform, phase); a homogeneous fleet does one lookup.
	light := true
	for i := range machines {
		if f.evalFor(machines[i].Plat).classOf(ph) != core.ClassLight {
			light = false
			break
		}
	}
	if light {
		return f.ll.Place(spec, t, machines)
	}
	best, bestScore := 0, 0.0
	for i, m := range machines {
		score := f.score(ph, m)
		if i == 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	return machines[best].Index
}

// score is the predicted unfairness of the machine's residents plus the
// newcomer under full-LLC sharing on the machine's own platform,
// inflated by the queue depth when the machine has no free core (the
// newcomer would wait, and everyone ahead of it makes the wait longer).
func (f *FairnessAware) score(ph *appmodel.PhaseSpec, m MachineState) float64 {
	pe := f.evalFor(m.Plat)
	var unfairness float64
	unfairness, f.sds = pe.predictedUnfairness(m.Phases, ph, f.sds)
	if m.Load() >= m.Cores {
		unfairness *= float64(2 + m.Queued)
	}
	return unfairness
}

// predictedUnfairness evaluates the machine's residents plus one
// newcomer under full-LLC sharing on this platform and returns the
// predicted unfairness (max/min slowdown ratio) — the scoring core
// shared by the fairness-aware placement and the cost-aware migration
// policy. sds is the caller's scratch slice, returned so it can be
// reused across calls.
func (pe *platformEval) predictedUnfairness(residents []*appmodel.PhaseSpec, ph *appmodel.PhaseSpec, sds []float64) (float64, []float64) {
	pe.scratch = pe.scratch[:0]
	for i, resident := range residents {
		pe.scratch = append(pe.scratch, sharing.App{ID: i, Phase: resident, Mask: pe.fullMask})
	}
	pe.scratch = append(pe.scratch, sharing.App{ID: len(residents), Phase: ph, Mask: pe.fullMask})

	pe.res = pe.eval.EvaluateInto(pe.res, pe.scratch)
	sds = sds[:0]
	for i, a := range pe.scratch {
		sds = append(sds, pe.alone(a.Phase)/pe.res[i].Perf.IPC)
	}
	lo, hi := sds[0], sds[0]
	for _, s := range sds[1:] {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	return hi / lo, sds
}

// NewPlacement constructs a placement policy by name: "rr"/"roundrobin",
// "least"/"leastloaded", or "fair"/"fairness". plat is needed only by
// the fairness-aware policy (the fleet's reference platform; candidate
// machines are scored on their own MachineState.Plat).
func NewPlacement(name string, plat *machine.Platform) (Policy, error) {
	switch name {
	case "rr", "roundrobin":
		return NewRoundRobin(), nil
	case "least", "leastloaded":
		return NewLeastLoaded(), nil
	case "fair", "fairness":
		if plat == nil {
			return nil, fmt.Errorf("cluster: fairness-aware placement needs a platform")
		}
		return NewFairnessAware(plat), nil
	default:
		return nil, fmt.Errorf("cluster: unknown placement %q (want rr, least or fair)", name)
	}
}
