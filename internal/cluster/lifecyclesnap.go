package cluster

import (
	"container/heap"
	"fmt"
	"math/rand"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/metrics"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

// The lifecycle engine's checkpoint coordinate. The event heap itself is
// mostly regenerable: schedule() rebuilds the static timeline (declared
// events, the seeded MTBF failure process, autoscale ticks) with the
// identical (time, seq) keys, so the snapshot only records how many
// static events already fired — heap pops are monotone in (time, seq)
// and the fired statics are exactly the first StaticFired of the
// static-only order — plus the dynamically scheduled retries verbatim
// with their original sequence numbers. The victim RNG cannot be
// serialized, but its position is determined by the Intn call history:
// the snapshot records each call's argument and restore replays the
// calls against a fresh same-seed stream, consuming exactly the same
// underlying draws.

// parkedSnapshot is one arrival waiting out a zero-up-machines spell.
type parkedSnapshot struct {
	Time     float64        `json:"time"`
	Spec     *appmodel.Spec `json:"spec"`
	Tag      int            `json:"tag,omitempty"`
	TraceIdx int            `json:"trace_idx"`
}

// retrySnapshot is one in-flight failure retry: a dynamically scheduled
// timeline event. Seq is the event's original heap sequence number, so
// the restored heap reproduces the exact (time, seq) order.
type retrySnapshot struct {
	Time     float64        `json:"time"`
	Seq      int            `json:"seq"`
	Spec     *appmodel.Spec `json:"spec"`
	Attempts int            `json:"attempts"`
	Delay    float64        `json:"delay"`
}

// trackerSnapshot serializes the lifeTracker verbatim (window integrals
// included — a checkpoint can land mid-window).
type trackerSnapshot struct {
	Width    float64                 `json:"width"`
	Series   metrics.LifecycleSeries `json:"series"`
	WinStart float64                 `json:"win_start"`
	LastT    float64                 `json:"last_t"`
	Up       int                     `json:"up"`
	Fleet    int                     `json:"fleet"`

	UpSec       float64 `json:"up_sec"`
	FleetSec    float64 `json:"fleet_sec"`
	TotUpSec    float64 `json:"tot_up_sec"`
	TotFleetSec float64 `json:"tot_fleet_sec"`
	TotMigLat   float64 `json:"tot_mig_lat"`
	TotReqLat   float64 `json:"tot_req_lat"`

	Joins  int `json:"joins"`
	Drains int `json:"drains"`
	Fails  int `json:"fails"`
	Migs   int `json:"migs"`
	Reqs   int `json:"reqs"`
	Dead   int `json:"dead"`
	Disr   int `json:"disr"`

	MigLat float64 `json:"mig_lat"`
	ReqLat float64 `json:"req_lat"`
}

// engineSnapshot is the lifecycle engine's full coordinate at an
// arrival-boundary pause point.
type engineSnapshot struct {
	Up       []bool    `json:"up"`
	JoinedAt []float64 `json:"joined_at"`
	DownAt   []float64 `json:"down_at"`
	FailedAt []bool    `json:"failed_at"`

	Parked []parkedSnapshot `json:"parked,omitempty"`

	LastSync    float64         `json:"last_sync"`
	Seq         int             `json:"seq"`
	StaticFired int             `json:"static_fired"`
	VictimDraws []int           `json:"victim_draws,omitempty"`
	Retries     []retrySnapshot `json:"retries,omitempty"`

	Sum LifecycleSummary `json:"summary"`
	Trk trackerSnapshot  `json:"tracker"`
}

// snapshot captures the engine coordinate. Call only at the run loop's
// top (before the instant's event or arrival is processed).
func (e *engine) snapshot() *engineSnapshot {
	snap := &engineSnapshot{
		Up:          append([]bool(nil), e.up...),
		JoinedAt:    append([]float64(nil), e.joinedAt...),
		DownAt:      append([]float64(nil), e.downAt...),
		FailedAt:    append([]bool(nil), e.failedAt...),
		LastSync:    e.lastSync,
		Seq:         e.seq,
		StaticFired: e.staticFired,
		VictimDraws: append([]int(nil), e.victimDraws...),
		Sum:         e.sum,
	}
	for _, pa := range e.parked {
		snap.Parked = append(snap.Parked, parkedSnapshot{
			Time: pa.arr.Time, Spec: pa.arr.Spec, Tag: pa.arr.Tag, TraceIdx: pa.traceIdx,
		})
	}
	for _, ev := range e.evq {
		if ev.kind != tlRetry {
			continue
		}
		snap.Retries = append(snap.Retries, retrySnapshot{
			Time: ev.time, Seq: ev.seq, Spec: ev.res.Spec, Attempts: ev.res.Attempts, Delay: ev.delay,
		})
	}
	t := e.trk
	snap.Trk = trackerSnapshot{
		Width: t.width, Series: t.series, WinStart: t.winStart, LastT: t.lastT,
		Up: t.up, Fleet: t.fleet,
		UpSec: t.upSec, FleetSec: t.fleetSec,
		TotUpSec: t.totUpSec, TotFleetSec: t.totFleetSec,
		TotMigLat: t.totMigLat, TotReqLat: t.totReqLat,
		Joins: t.joins, Drains: t.drains, Fails: t.fails,
		Migs: t.migs, Reqs: t.reqs, Dead: t.dead, Disr: t.disr,
		MigLat: t.migLat, ReqLat: t.reqLat,
	}
	return snap
}

// restore rebuilds the engine coordinate on a freshly constructed engine
// whose schedule() has already repopulated the static timeline. The pool
// must already hold the restored machines (including joined ones).
func (e *engine) restore(snap *engineSnapshot) error {
	n := len(e.pool.machines)
	if len(snap.Up) != n || len(snap.JoinedAt) != n || len(snap.DownAt) != n || len(snap.FailedAt) != n {
		return fmt.Errorf("cluster: lifecycle snapshot covers %d machines, fleet has %d", len(snap.Up), n)
	}
	e.up = append(e.up[:0], snap.Up...)
	e.joinedAt = append(e.joinedAt[:0], snap.JoinedAt...)
	e.downAt = append(e.downAt[:0], snap.DownAt...)
	e.failedAt = append(e.failedAt[:0], snap.FailedAt...)
	e.nUp = 0
	for i, u := range e.up {
		if u != !e.pool.machines[i].Halted() {
			return fmt.Errorf("cluster: lifecycle snapshot says machine %d up=%v but its kernel disagrees", i, u)
		}
		if u {
			e.nUp++
		}
	}
	// Joined machines run machine 0's configuration (checkpointing
	// rejects per-event join configs up-front), so extending sims keeps
	// future joins and autoscale decisions identical.
	for len(e.sims) < n {
		e.sims = append(e.sims, e.sims[0])
	}

	e.parked = e.parked[:0]
	for i, pa := range snap.Parked {
		if pa.Spec == nil {
			return fmt.Errorf("cluster: lifecycle snapshot parked arrival %d without a spec", i)
		}
		if err := pa.Spec.Validate(); err != nil {
			return err
		}
		e.parked = append(e.parked, parkedArrival{
			arr:      scenario.Arrival{Time: pa.Time, Spec: pa.Spec, Tag: pa.Tag},
			traceIdx: pa.TraceIdx,
		})
	}

	// The heap currently holds exactly the regenerated static timeline.
	// Discard the statics that already fired — pops are monotone in
	// (time, seq), so they are precisely the first StaticFired — then
	// re-add the retries under their original sequence numbers.
	if snap.StaticFired < 0 || snap.StaticFired > e.evq.Len() {
		return fmt.Errorf("cluster: lifecycle snapshot fired %d static events of %d scheduled", snap.StaticFired, e.evq.Len())
	}
	if snap.Seq < e.seq {
		return fmt.Errorf("cluster: lifecycle snapshot sequence %d below the %d statically scheduled events — "+
			"resume must use the original lifecycle configuration", snap.Seq, e.seq)
	}
	e.staticFired = snap.StaticFired
	for i := 0; i < snap.StaticFired; i++ {
		heap.Pop(&e.evq)
	}
	for i, r := range snap.Retries {
		if r.Spec == nil {
			return fmt.Errorf("cluster: lifecycle snapshot retry %d without a spec", i)
		}
		if err := r.Spec.Validate(); err != nil {
			return err
		}
		if r.Seq >= snap.Seq {
			return fmt.Errorf("cluster: lifecycle snapshot retry %d has sequence %d beyond the engine's %d", i, r.Seq, snap.Seq)
		}
		heap.Push(&e.evq, &timelineEvent{
			time:  r.Time,
			seq:   r.Seq,
			kind:  tlRetry,
			res:   sim.Resident{Spec: r.Spec, Attempts: r.Attempts},
			delay: r.Delay,
		})
	}
	e.seq = snap.Seq

	// Reposition the victim stream by replaying the recorded Intn calls
	// against a fresh same-seed generator: Intn's rejection sampling
	// consumes a argument-dependent number of underlying draws, so the
	// call history — not the results — is the stream coordinate.
	if len(snap.VictimDraws) > 0 && e.victims == nil {
		return fmt.Errorf("cluster: lifecycle snapshot recorded %d victim draws but the configuration has no MTBF process",
			len(snap.VictimDraws))
	}
	if e.victims != nil {
		e.victims = rand.New(rand.NewSource(e.lc.FailureSeed + 1))
		for i, draw := range snap.VictimDraws {
			if draw <= 0 {
				return fmt.Errorf("cluster: lifecycle snapshot victim draw %d over %d machines", i, draw)
			}
			e.victims.Intn(draw)
		}
	}
	e.victimDraws = append([]int(nil), snap.VictimDraws...)

	e.lastSync = snap.LastSync
	e.lastCkpt = snap.LastSync
	e.sum = snap.Sum

	t := e.trk
	if snap.Trk.Width != t.width {
		return fmt.Errorf("cluster: lifecycle snapshot tracked %gs windows, config says %gs — resume must use the original config",
			snap.Trk.Width, t.width)
	}
	t.series = snap.Trk.Series
	t.winStart = snap.Trk.WinStart
	t.lastT = snap.Trk.LastT
	t.up, t.fleet = snap.Trk.Up, snap.Trk.Fleet
	t.upSec, t.fleetSec = snap.Trk.UpSec, snap.Trk.FleetSec
	t.totUpSec, t.totFleetSec = snap.Trk.TotUpSec, snap.Trk.TotFleetSec
	t.totMigLat, t.totReqLat = snap.Trk.TotMigLat, snap.Trk.TotReqLat
	t.joins, t.drains, t.fails = snap.Trk.Joins, snap.Trk.Drains, snap.Trk.Fails
	t.migs, t.reqs, t.dead, t.disr = snap.Trk.Migs, snap.Trk.Reqs, snap.Trk.Dead, snap.Trk.Disr
	t.migLat, t.reqLat = snap.Trk.MigLat, snap.Trk.ReqLat
	return nil
}
