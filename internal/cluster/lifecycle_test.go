package cluster_test

import (
	"errors"
	"reflect"
	"testing"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/cluster"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

// chaosConfig is a 4-machine fleet with every lifecycle mechanism armed
// at once: scheduled drain/fail/join, a seeded MTBF failure process,
// autoscaling and cost-aware migration.
func chaosConfig(plat *machine.Platform, workers int) cluster.Config {
	return cluster.Config{
		Sim:       clusterSimConfig(plat),
		Machines:  4,
		Placement: cluster.NewLeastLoaded(),
		Workers:   workers,
		Lifecycle: &cluster.Lifecycle{
			Events: []cluster.Event{
				{Time: 1.0, Kind: cluster.MachineDrain, Machine: 1},
				{Time: 1.6, Kind: cluster.MachineFail, Machine: 2},
				{Time: 2.0, Kind: cluster.MachineJoin},
			},
			MTBF:          1.5,
			FailureSeed:   7,
			MigrationCost: 0.02,
			Autoscale:     &cluster.Autoscale{Interval: 0.7, Up: 0.9, Down: 0.05, Min: 1, Max: 6},
			JoinPolicy: func(_ int, mc sim.Config) (sim.Dynamic, error) {
				return stockFactory(mc.Plat)(0)
			},
		},
	}
}

// The tentpole guarantee: the same (seed, trace, event schedule) inputs
// reproduce the identical run — byte for byte — at any worker count and
// across repetitions, with every lifecycle mechanism firing at once.
func TestLifecycleChaosDeterminism(t *testing.T) {
	plat := machine.Small(8, 4)
	mkScn := func() *scenario.Open {
		scn, err := scenario.NewPoisson("chaos", pool("xalancbmk06", "lbm06", "povray06", "libquantum06"), 8, 3, 42)
		if err != nil {
			t.Fatal(err)
		}
		return scn
	}

	var ref *cluster.Result
	for _, workers := range []int{1, 1, 4, 4} {
		res, err := cluster.Run(chaosConfig(plat, workers), mkScn(), stockFactory(plat))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Lifecycle == nil {
			t.Fatal("lifecycle run reported no lifecycle summary")
		}
		if ref == nil {
			ref = res
			if res.Lifecycle.Events == 0 {
				t.Fatal("chaos run applied no lifecycle events")
			}
			if res.Lifecycle.Disruptions == 0 {
				t.Fatal("chaos run disrupted no applications")
			}
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Errorf("workers=%d: result diverges from reference", workers)
			if a, b := res.Lifecycle.Series.Fingerprint(), ref.Lifecycle.Series.Fingerprint(); a != b {
				t.Errorf("lifecycle series:\n got %s\nwant %s", a, b)
			}
			if a, b := res.Series.Fingerprint(), ref.Series.Fingerprint(); a != b {
				t.Errorf("metric series:\n got %s\nwant %s", a, b)
			}
		}
	}
}

// An inactive lifecycle (nil, or set but event-free) must leave the run
// bit-identical to one without the layer: the fast path is the
// historical loop, verbatim.
func TestLifecycleInactiveIsZeroCost(t *testing.T) {
	plat := machine.Small(8, 4)
	mkScn := func() *scenario.Open {
		scn, err := scenario.NewPoisson("quiet", pool("xalancbmk06", "lbm06", "povray06"), 6, 2, 11)
		if err != nil {
			t.Fatal(err)
		}
		return scn
	}
	run := func(lc *cluster.Lifecycle) *cluster.Result {
		res, err := cluster.Run(cluster.Config{
			Sim: clusterSimConfig(plat), Machines: 3,
			Placement: cluster.NewLeastLoaded(), Workers: 1, Lifecycle: lc,
		}, mkScn(), stockFactory(plat))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(nil)
	got := run(&cluster.Lifecycle{MaxRetries: 5, MigrationCost: 0.5})
	if !reflect.DeepEqual(got, want) {
		t.Error("event-free lifecycle perturbed the run")
	}
	if want.Lifecycle != nil || got.Lifecycle != nil {
		t.Error("inactive lifecycle produced a lifecycle summary")
	}
	for _, m := range want.PerMachine {
		if m.State != "" {
			t.Errorf("machine %d carries lifecycle state %q without a lifecycle", m.Index, m.State)
		}
	}
}

// Degradation contract: when every machine fails, the run still
// completes — arrivals and requeued residents are parked and reported
// as unplaced/remaining or dead-lettered, never an error.
func TestLifecycleAllMachinesFailedDegradesGracefully(t *testing.T) {
	plat := machine.Small(8, 2)
	scn, err := scenario.NewPoisson("blackout", pool("xalancbmk06", "lbm06"), 6, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	nArr := len(scn.Arrivals())
	res, err := cluster.Run(cluster.Config{
		Sim: clusterSimConfig(plat), Machines: 2,
		Placement: cluster.NewLeastLoaded(), Workers: 1,
		RecordAssignments: true,
		Lifecycle: &cluster.Lifecycle{
			Events: []cluster.Event{
				{Time: 0.2, Kind: cluster.MachineFail, Machine: 0},
				{Time: 0.3, Kind: cluster.MachineFail, Machine: 1},
			},
			MaxRetries: 1,
		},
	}, scn, stockFactory(plat))
	if err != nil {
		t.Fatalf("all-machines-failed run errored: %v", err)
	}
	lc := res.Lifecycle
	if lc == nil {
		t.Fatal("no lifecycle summary")
	}
	if lc.Failures != 2 || lc.FinalMachines != 0 {
		t.Fatalf("failures=%d final=%d, want 2 and 0", lc.Failures, lc.FinalMachines)
	}
	if res.Departed != 0 {
		t.Errorf("%d applications departed from a fleet that was fully down at t=0.3", res.Departed)
	}
	// Every trace arrival is accounted for: unplaced (parked forever)
	// or dead-lettered; nothing vanishes and nothing errors.
	if lc.Unplaced == 0 {
		t.Error("no arrivals parked despite zero up machines")
	}
	if res.Remaining < lc.Unplaced {
		t.Errorf("Remaining %d < Unplaced %d: parked arrivals left out of the aggregate", res.Remaining, lc.Unplaced)
	}
	for i, m := range res.Assignments {
		if m >= 0 && scn.Arrivals()[i].Time > 0.3 {
			t.Errorf("arrival %d at t=%g assigned to machine %d after the fleet was down",
				i, scn.Arrivals()[i].Time, m)
		}
	}
	if nArr == 0 {
		t.Fatal("trace generated no arrivals")
	}
	if len(res.Assignments) != nArr {
		t.Errorf("assignments %d, want %d", len(res.Assignments), nArr)
	}
	if lc.Availability >= 0.2 {
		t.Errorf("availability %v for a fleet down from t=0.3", lc.Availability)
	}
}

// badPlacement returns a constant machine index regardless of fleet
// state — out of range, or a down machine once the fleet shrinks.
type badPlacement struct{ idx int }

func (b badPlacement) Name() string { return "bad" }
func (b badPlacement) Place(_ *appmodel.Spec, _ float64, _ []cluster.MachineState) int {
	return b.idx
}

// Satellite: every out-of-contract placement decision surfaces as the
// typed *PlacementError, from the central validation — both the plain
// out-of-range index and the subtler "machine exists but is down".
func TestPlacementErrorTyped(t *testing.T) {
	plat := machine.Small(8, 2)
	mkScn := func() *scenario.Open {
		scn, err := scenario.NewPoisson("bad", pool("xalancbmk06", "lbm06"), 4, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		return scn
	}

	_, err := cluster.Run(cluster.Config{
		Sim: clusterSimConfig(plat), Machines: 2,
		Placement: badPlacement{idx: 7}, Workers: 1,
	}, mkScn(), stockFactory(plat))
	var pe *cluster.PlacementError
	if !errors.As(err, &pe) {
		t.Fatalf("out-of-range placement returned %v, want a *PlacementError", err)
	}
	if pe.Policy != "bad" || pe.Index != 7 || pe.Machines != 2 {
		t.Errorf("error fields %+v, want policy bad, index 7, machines 2", pe)
	}

	// Machine 0 exists but is down after the failure: still a
	// placement-contract violation, caught by the same validation.
	_, err = cluster.Run(cluster.Config{
		Sim: clusterSimConfig(plat), Machines: 2,
		Placement: badPlacement{idx: 0}, Workers: 1,
		Lifecycle: &cluster.Lifecycle{
			Events: []cluster.Event{{Time: 0.01, Kind: cluster.MachineFail, Machine: 0}},
		},
	}, mkScn(), stockFactory(plat))
	pe = nil
	if !errors.As(err, &pe) {
		t.Fatalf("down-machine placement returned %v, want a *PlacementError", err)
	}
	if pe.Index != 0 || pe.Reason != "machine is not up" {
		t.Errorf("error fields %+v, want index 0 and the not-up reason", pe)
	}
}

// A drain with migration enabled moves residents live: the drained
// machine reports them evicted, the fleet loses nothing, and the
// migrated applications' end-to-end outcomes (arrival through
// departure) survive the move.
func TestLifecycleDrainMigratesResidents(t *testing.T) {
	plat := machine.Small(8, 2)
	// Two initial residents on machine 0 (round-robin would split them;
	// least-loaded splits too — use an explicit trace instead).
	spec := pool("lbm06")[0]
	scn, err := scenario.NewTrace("drainmig", []*appmodel.Spec{spec, spec}, []scenario.Arrival{
		{Time: 2.0, Spec: pool("povray06")[0]},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(cluster.Config{
		Sim: clusterSimConfig(plat), Machines: 2,
		Placement: cluster.NewRoundRobin(), Workers: 1,
		Lifecycle: &cluster.Lifecycle{
			// Mid-run: the time-zero lbm06 departs around t=0.48 solo.
			Events:        []cluster.Event{{Time: 0.25, Kind: cluster.MachineDrain, Machine: 0}},
			MigrationCost: 0, // migrate anything with any progress
		},
	}, scn, stockFactory(plat))
	if err != nil {
		t.Fatal(err)
	}
	lc := res.Lifecycle
	if lc == nil || lc.Drains != 1 {
		t.Fatalf("lifecycle summary %+v, want exactly one drain", lc)
	}
	if lc.Migrations == 0 {
		t.Fatalf("drain with zero migration cost migrated nothing (disruptions %d, requeues %d)",
			lc.Disruptions, lc.Requeues)
	}
	if lc.DeadLettered != 0 {
		t.Errorf("a drain dead-lettered %d applications; drains must be lossless", lc.DeadLettered)
	}
	m0 := res.PerMachine[0]
	if m0.State != "drained" || m0.DownAt != 0.25 {
		t.Errorf("machine 0 state %q down at %v, want drained at 0.25", m0.State, m0.DownAt)
	}
	if m0.Open.Evicted != lc.Migrations+lc.Requeues {
		t.Errorf("machine 0 evicted %d, want the %d displaced residents",
			m0.Open.Evicted, lc.Migrations+lc.Requeues)
	}
	// Lossless end to end: everything that entered the system departed
	// (the drained machine is gone but its applications finished
	// elsewhere).
	total := 3 // 2 initial + 1 arrival
	if res.Departed != total || res.Remaining != 0 {
		t.Errorf("departed %d remaining %d, want %d and 0", res.Departed, res.Remaining, total)
	}
	// The migrated apps departed from machine 1 with their original
	// arrival times intact (machine 1's own time-zero resident makes
	// the +1).
	var departedElsewhere int
	for _, a := range res.PerMachine[1].Open.Apps {
		if a.DepartedAt >= 0 && a.ArrivedAt == 0 {
			departedElsewhere++
		}
	}
	if departedElsewhere != lc.Migrations+1 {
		t.Errorf("%d time-zero applications departed from machine 1, want its own plus the %d migrated there",
			departedElsewhere, lc.Migrations)
	}
}

// Failures requeue with bounded retry: an application that keeps
// landing on failing machines is retried MaxRetries times, then
// dead-lettered — and the retry backoff is visible in the requeue
// latency accounting.
func TestLifecycleFailureRetryThenDeadLetter(t *testing.T) {
	plat := machine.Small(8, 2)
	spec := pool("lbm06")[0]
	scn, err := scenario.NewTrace("deadletter", []*appmodel.Spec{spec}, []scenario.Arrival{
		{Time: 5.0, Spec: spec}, // keeps the trace alive past both failures
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(cluster.Config{
		Sim: clusterSimConfig(plat), Machines: 2,
		Placement: cluster.NewLeastLoaded(), Workers: 1,
		Lifecycle: &cluster.Lifecycle{
			Events: []cluster.Event{
				// Fail the app's machine; the retry (default backoff
				// 0.25s) lands on the survivor at 0.35, which then fails
				// too: attempts 2 > MaxRetries 1 → dead-letter.
				{Time: 0.1, Kind: cluster.MachineFail, Machine: 0},
				{Time: 0.6, Kind: cluster.MachineFail, Machine: 1},
			},
			MaxRetries: 1,
		},
	}, scn, stockFactory(plat))
	if err != nil {
		t.Fatal(err)
	}
	lc := res.Lifecycle
	if lc == nil {
		t.Fatal("no lifecycle summary")
	}
	if lc.Retries != 1 {
		t.Errorf("retries %d, want exactly 1 (the one allowed attempt)", lc.Retries)
	}
	if lc.DeadLettered != 1 {
		t.Errorf("dead-lettered %d, want 1 after the retry budget ran out", lc.DeadLettered)
	}
	if lc.MeanRequeueLatency <= 0 {
		t.Errorf("mean requeue latency %v, want the positive retry backoff", lc.MeanRequeueLatency)
	}
	if res.Departed != 0 {
		t.Errorf("departed %d from a fleet that failed under the only resident", res.Departed)
	}
}

// A scheduled join grows the fleet mid-run: the machine appears with
// its join time recorded, takes arrivals, and its windows merge into
// the fleet series without disturbing window alignment.
func TestLifecycleJoinGrowsFleet(t *testing.T) {
	plat := machine.Small(8, 2)
	scn, err := scenario.NewPoisson("grow", pool("xalancbmk06", "povray06"), 6, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(cluster.Config{
		Sim: clusterSimConfig(plat), Machines: 1,
		Placement: cluster.NewLeastLoaded(), Workers: 1,
		Lifecycle: &cluster.Lifecycle{
			Events: []cluster.Event{{Time: 1.0, Kind: cluster.MachineJoin}},
			JoinPolicy: func(_ int, mc sim.Config) (sim.Dynamic, error) {
				return stockFactory(mc.Plat)(0)
			},
		},
	}, scn, stockFactory(plat))
	if err != nil {
		t.Fatal(err)
	}
	if res.Machines != 2 || len(res.PerMachine) != 2 {
		t.Fatalf("fleet size %d (%d per-machine), want 2 after the join", res.Machines, len(res.PerMachine))
	}
	m1 := res.PerMachine[1]
	if m1.State != "up" || m1.JoinedAt != 1.0 {
		t.Errorf("joined machine state %q joined at %v, want up, 1.0", m1.State, m1.JoinedAt)
	}
	if m1.Arrivals == 0 {
		t.Error("joined machine received no arrivals from least-loaded placement")
	}
	if res.Lifecycle.FleetSize != 2 || res.Lifecycle.Joins != 1 {
		t.Errorf("summary fleet %d joins %d, want 2 and 1", res.Lifecycle.FleetSize, res.Lifecycle.Joins)
	}
	// A join without a JoinPolicy is a configuration error, reported,
	// not panicked.
	_, err = cluster.Run(cluster.Config{
		Sim: clusterSimConfig(plat), Machines: 1,
		Placement: cluster.NewLeastLoaded(), Workers: 1,
		Lifecycle: &cluster.Lifecycle{
			Events: []cluster.Event{{Time: 1.0, Kind: cluster.MachineJoin}},
		},
	}, scn, stockFactory(plat))
	if err == nil {
		t.Error("join without JoinPolicy succeeded, want an error")
	}
}

// The lifecycle series aligns with the metric series: same width, and
// availability degrades exactly in the windows after the failure.
func TestLifecycleSeriesAlignment(t *testing.T) {
	plat := machine.Small(8, 2)
	scn, err := scenario.NewPoisson("series", pool("xalancbmk06", "lbm06"), 6, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(cluster.Config{
		Sim: clusterSimConfig(plat), Machines: 2,
		Placement: cluster.NewLeastLoaded(), Workers: 1,
		Lifecycle: &cluster.Lifecycle{
			Events: []cluster.Event{{Time: 1.0, Kind: cluster.MachineFail, Machine: 1}},
		},
	}, scn, stockFactory(plat))
	if err != nil {
		t.Fatal(err)
	}
	ls := res.Lifecycle.Series
	if ls.Width != res.Series.Width {
		t.Fatalf("lifecycle window width %v, metric window width %v", ls.Width, res.Series.Width)
	}
	for _, p := range ls.Points {
		switch {
		case p.End <= 1.0 && p.Availability != 1:
			t.Errorf("window [%g,%g) availability %v before the failure, want 1", p.Start, p.End, p.Availability)
		case p.Start >= 1.0 && p.Availability != 0.5:
			t.Errorf("window [%g,%g) availability %v after the failure, want 0.5", p.Start, p.End, p.Availability)
		}
	}
	if res.Lifecycle.Availability >= 1 || res.Lifecycle.Availability <= 0.5 {
		t.Errorf("run-wide availability %v, want strictly between 0.5 and 1", res.Lifecycle.Availability)
	}
}
