package cluster

import (
	"testing"
	"time"

	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/sim"
)

func mixBase() sim.Config {
	return sim.Config{
		Plat:         machine.Skylake(),
		TargetInsns:  1_000_000_000,
		PolicyPeriod: 100 * time.Millisecond,
	}
}

func TestParseMachineMix(t *testing.T) {
	base := mixBase()
	fleet, err := ParseMachineMix("2x11way,2x7way", base)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 4 {
		t.Fatalf("fleet size %d, want 4", len(fleet))
	}
	wantWays := []int{11, 11, 7, 7}
	for i, cfg := range fleet {
		if cfg.Plat.Ways != wantWays[i] {
			t.Errorf("machine %d: %d ways, want %d", i, cfg.Plat.Ways, wantWays[i])
		}
		if cfg.Plat.Cores != base.Plat.Cores {
			t.Errorf("machine %d: %d cores, want inherited %d", i, cfg.Plat.Cores, base.Plat.Cores)
		}
		if cfg.Plat.WayBytes != base.Plat.WayBytes || cfg.TargetInsns != base.TargetInsns {
			t.Errorf("machine %d: way size / quota not inherited from base", i)
		}
	}
	// The LLC shrinks with the way count — a 7-way machine really has a
	// smaller cache, not a renamed one.
	if fleet[2].Plat.LLCBytes() >= fleet[0].Plat.LLCBytes() {
		t.Errorf("7-way LLC (%d B) not smaller than 11-way (%d B)",
			fleet[2].Plat.LLCBytes(), fleet[0].Plat.LLCBytes())
	}
	// Machines of one group share a single Platform value (placement
	// caches key on it), and groups get distinct ones.
	if fleet[0].Plat != fleet[1].Plat || fleet[2].Plat != fleet[3].Plat {
		t.Error("machines within a group do not share a Platform")
	}
	if fleet[1].Plat == fleet[2].Plat {
		t.Error("distinct groups share a Platform")
	}
}

func TestParseMachineMixCores(t *testing.T) {
	fleet, err := ParseMachineMix(" 1x11way20c, 3x4way8c ", mixBase())
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 4 {
		t.Fatalf("fleet size %d, want 4", len(fleet))
	}
	if fleet[0].Plat.Cores != 20 || fleet[0].Plat.Ways != 11 {
		t.Errorf("machine 0 = %d cores / %d ways, want 20c/11w", fleet[0].Plat.Cores, fleet[0].Plat.Ways)
	}
	if fleet[3].Plat.Cores != 8 || fleet[3].Plat.Ways != 4 {
		t.Errorf("machine 3 = %d cores / %d ways, want 8c/4w", fleet[3].Plat.Cores, fleet[3].Plat.Ways)
	}
}

func TestParseMachineMixRejectsBadSpecs(t *testing.T) {
	base := mixBase()
	for _, spec := range []string{
		"", "nonsense", "x11way", "2x", "2xway", "0x11way", "2x0way",
		"-1x11way", "2x11way8", "2x11way0c", "2x11ways", "2x11way,",
	} {
		if _, err := ParseMachineMix(spec, base); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	if _, err := ParseMachineMix("1x11way", sim.Config{}); err == nil {
		t.Error("invalid base config accepted")
	}
}

func TestMixNames(t *testing.T) {
	fleet, err := ParseMachineMix("2x11way,1x7way", mixBase())
	if err != nil {
		t.Fatal(err)
	}
	want := "xeon-gold-6138-11w x2, xeon-gold-6138-7w x1"
	if got := MixNames(fleet); got != want {
		t.Errorf("MixNames = %q, want %q", got, want)
	}
}

func TestMachineConfigsFleetValidation(t *testing.T) {
	base := mixBase()
	fleet, err := ParseMachineMix("2x11way", base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Fleet: fleet, Machines: 3}
	if _, err := cfg.MachineConfigs(); err == nil {
		t.Error("Machines/Fleet size mismatch accepted")
	}
	cfg.Machines = 0
	sims, err := cfg.MachineConfigs()
	if err != nil {
		t.Fatal(err)
	}
	if len(sims) != 2 {
		t.Errorf("fleet of %d machines, want 2", len(sims))
	}
	cfg = Config{Fleet: []sim.Config{{}}}
	if _, err := cfg.MachineConfigs(); err == nil {
		t.Error("invalid fleet entry accepted")
	}
}
