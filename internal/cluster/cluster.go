// Package cluster scales the single-socket simulator to a fleet: N
// independent machine kernels behind one open-system arrival stream,
// with a pluggable placement policy deciding which machine admits each
// arrival. Every machine runs its own dynamic partitioning policy
// (stock/Dunn/LFOC) over its own resctrl-style state, exactly as a
// single-machine RunOpen would; the cluster layer only routes arrivals
// and aggregates metrics, so an N=1 cluster is bit-identical to RunOpen
// and every machine's result equals an independent replay of its split
// trace (both pinned by tests).
//
// Fleets may be heterogeneous: Config.Fleet gives every machine its own
// sim.Config (mixed core counts, LLC sizes and way counts; mixed
// partitioning-policy cadences too, provided every entry sets one
// common explicit MetricsWindow — fleet windows merge index-by-index,
// so widths must agree), while the homogeneous Sim+Machines form
// remains a shorthand for N copies of one configuration — the two
// forms produce byte-identical results for identical fleets.
//
// Execution interleaves deterministically at arrival granularity: for
// each trace arrival the fleet event queue (fleetQueue) identifies the
// machines whose next-event horizon has passed, only those are advanced
// to the arrival instant, the placement policy scores the fleet state
// (stale entries are provably content-identical below their horizon —
// see DESIGN.md §3 "Fleet event queue"), and the arrival is injected
// into the chosen machine. Skipped machines catch up lazily in one
// batched call when next touched, so a mostly idle 1000-machine fleet
// pays per-arrival work proportional to the machines with something to
// do, not to the fleet size — while staying bit-identical to the eager
// every-machine-every-arrival loop (the kernel's pause-point invariance
// makes coarser pause points unobservable; pinned by a randomized
// differential test). Machines share nothing between placement points,
// so the advancement fans out over a bounded worker pool
// (Config.Workers); placement itself stays serial — it is the only
// synchronization point — and results are bit-identical for every
// worker count and GOMAXPROCS setting. When the trace is exhausted the
// machines drain through the same pool.
//
// For placement policies that declare order-independence
// (ShardablePlacement: round-robin, least-loaded), Config.Shards
// additionally splits the arrival stream and the fleet into disjoint
// sub-fleets that run concurrently with no synchronization at all —
// see shard.go.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/metrics"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

// Config parameterizes a cluster run.
type Config struct {
	// Sim is the default per-machine simulator configuration (platform,
	// quotas, policy period): every machine of a homogeneous fleet runs
	// it. Ignored when Fleet is set.
	Sim sim.Config
	// Machines is the fleet size (≥ 1). When Fleet is set it may be left
	// zero (the fleet size is len(Fleet)); a non-zero value must then
	// match len(Fleet).
	Machines int
	// Fleet, when non-empty, configures each machine individually — a
	// heterogeneous fleet. Machine i runs Fleet[i]; platforms may differ
	// in core count, way count and LLC size. Entries with different
	// PolicyPeriods must set one common explicit MetricsWindow (see
	// MachineConfigs). A fleet of identical entries is equivalent to the
	// Sim+Machines form.
	Fleet []sim.Config
	// Placement decides which machine admits each arrival. The instance
	// must be fresh for this run (policies may keep internal state).
	Placement Policy
	// Workers bounds the fleet-advancement worker pool (0 = GOMAXPROCS,
	// 1 = serial). Machines are independent between placement points, so
	// the setting affects wall-clock time only, never results.
	Workers int
	// Lifecycle, when set and carrying events (scheduled, MTBF or
	// autoscale), runs the machine lifecycle layer: a deterministic
	// event timeline interleaved with the arrival stream. Nil or empty
	// is guaranteed zero-cost — Run takes the historical path and
	// produces byte-identical results.
	Lifecycle *Lifecycle
	// RecordAssignments keeps the full per-arrival placement log in
	// Result.Assignments. Off by default: the log is O(arrivals) memory
	// — a million-arrival churn run should not hold it just to report a
	// summary — and the per-machine placement counts
	// (MachineResult.Arrivals) cover the common accounting. Turn it on
	// to replay machines solo via workloads.SplitArrivals.
	RecordAssignments bool
	// Shards, when > 1, splits the arrival stream and the fleet into
	// Shards disjoint striped sub-fleets (machine i and arrival j belong
	// to shard i%Shards resp. j%Shards) that run concurrently with no
	// cross-shard synchronization. Placement then happens per shard, so
	// the Placement policy must declare order-independence by
	// implementing ShardablePlacement (round-robin and least-loaded do;
	// fairness-aware placement is order-sensitive and stays
	// serial-exact). Sharded results are deterministic at any worker
	// count but differ from the unsharded run by construction (each
	// shard places against its own sub-fleet only). Incompatible with
	// Lifecycle.
	Shards int

	// Checkpoint, when set, writes the run's coordinate to
	// Checkpoint.Path — periodically (Checkpoint.Every simulated
	// seconds) and once more when the run is interrupted. Requires a
	// placement policy implementing PlacementSnapshotter and per-machine
	// partitioning policies implementing sim.PolicySnapshotter; both are
	// validated up-front with a typed *sim.SnapshotUnsupportedError.
	// Incompatible with Shards and with lifecycle events carrying
	// per-event join configs.
	Checkpoint *CheckpointConfig
	// Resume, when set, restores the run from a decoded checkpoint (see
	// ReadCheckpoint) instead of starting fresh. The scenario, fleet
	// configuration and policies must be the ones the checkpoint was
	// taken under (names are cross-checked; platform parameters are code,
	// not checkpoint data). A resumed run's Result is bit-identical —
	// reflect.DeepEqual — to the never-interrupted run's.
	Resume *Checkpoint
	// StopAfter, when positive, pauses the run at the first
	// synchronization instant at or past this simulated time: the run
	// returns a partial Result with Interrupted set (writing a final
	// checkpoint when Checkpoint is configured) instead of draining.
	StopAfter float64
	// Cancel, when set, is polled cooperatively: machines pause at their
	// next tick boundary and the run returns a partial, resumable Result
	// with Interrupted set, exactly as StopAfter does.
	Cancel *sim.CancelFlag

	// Testing knobs (internal tests only). eagerAdvance restores the
	// legacy every-machine-every-arrival advancement loop — the
	// reference the lazy fleet event queue is differentially tested
	// against. statsSink, when set, receives the advancement counters
	// after the run.
	eagerAdvance bool
	statsSink    *fleetStats
}

// fleetStats counts the fleet-advancement work a run performed — the
// evidence behind the fleet event queue's headline claim (advancing
// ~10× fewer machine-steps per arrival than the eager loop on sparse
// fleets). Internal: reachable only through Config.statsSink.
type fleetStats struct {
	// Advances counts machine advancement calls (AdvanceTo jobs
	// executed, whether or not the machine had anything to do).
	Advances int64
	// Syncs counts synchronization instants (arrivals plus lifecycle
	// events) — Advances/Syncs is the machine-steps-per-arrival figure.
	Syncs int64
}

// MachineConfigs resolves the per-machine simulator configurations: N
// validated copies of Sim for a homogeneous fleet, or the validated
// Fleet entries. The returned slice is freshly allocated and defaults
// are applied, so callers may use it to build per-machine policies.
//
// Every machine must collect metric windows of the same width (the
// fleet series merges window-by-window): a machine's effective width is
// MetricsWindow, defaulting to its PolicyPeriod, so a mixed-cadence
// fleet must set MetricsWindow explicitly on every entry. The mismatch
// is rejected here, before any machine simulates.
func (c *Config) MachineConfigs() ([]sim.Config, error) {
	if len(c.Fleet) > 0 {
		if c.Machines != 0 && c.Machines != len(c.Fleet) {
			return nil, fmt.Errorf("cluster: Machines = %d but Fleet configures %d machines", c.Machines, len(c.Fleet))
		}
		sims := make([]sim.Config, len(c.Fleet))
		for i, s := range c.Fleet {
			if err := s.Validate(); err != nil {
				return nil, fmt.Errorf("cluster: machine %d: %w", i, err)
			}
			sims[i] = s
			if w, w0 := sims[i].EffectiveMetricsWindow(), sims[0].EffectiveMetricsWindow(); w != w0 {
				return nil, fmt.Errorf("cluster: machine %d collects %v metric windows but machine 0 collects %v — "+
					"mixed-cadence fleets must set an explicit common MetricsWindow", i, w, w0)
			}
		}
		return sims, nil
	}
	if c.Machines < 1 {
		return nil, fmt.Errorf("cluster: need at least one machine, got %d", c.Machines)
	}
	s := c.Sim
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sims := make([]sim.Config, c.Machines)
	for i := range sims {
		sims[i] = s
	}
	return sims, nil
}

// WaitStats is a machine's admission-queue wait distribution over every
// application it admitted — including applications still resident when
// the run ended (their wait is known at admission). Contrast with
// Result.MeanWait, which covers only departed applications.
type WaitStats struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	Max  float64 `json:"max"`
}

// MachineResult is one machine's share of a cluster run.
type MachineResult struct {
	// Index is the machine's position in the fleet.
	Index int `json:"machine"`
	// Platform names the machine's platform model; Cores and Ways are
	// its capacity — identical across a homogeneous fleet, the
	// distinguishing columns of a heterogeneous one.
	Platform string `json:"platform"`
	Cores    int    `json:"cores"`
	Ways     int    `json:"ways"`
	// Arrivals counts applications placed on this machine (including
	// time-zero initial placements).
	Arrivals int `json:"arrivals"`
	// Wait is the admission-queue wait distribution over admitted apps.
	Wait WaitStats `json:"wait"`
	// State is the machine's lifecycle state when the run ended: "up",
	// "drained" or "failed". Empty when the run had no lifecycle layer.
	State string `json:"state,omitempty"`
	// JoinedAt is when the machine joined the fleet (omitted for the
	// initial fleet); DownAt when it was drained or failed (omitted
	// while up). Lifecycle runs only.
	JoinedAt float64 `json:"joined_at,omitempty"`
	DownAt   float64 `json:"down_at,omitempty"`
	// Open is the machine's full open-system result: per-app outcomes
	// and its windowed metric series.
	Open *sim.OpenResult `json:"result"`
}

// Result is what a cluster run reports: cluster-wide aggregates plus
// the per-machine breakdowns they were merged from.
type Result struct {
	Scenario  string `json:"scenario"`
	Placement string `json:"placement"`
	Machines  int    `json:"machines"`
	// Assignments maps each trace arrival (in trace order) to the
	// machine that received it — the placement decision record, and the
	// input to workloads.SplitArrivals for replaying machines solo.
	// Recorded only when Config.RecordAssignments is set (it is
	// O(arrivals) memory); nil — and omitted from JSON — otherwise.
	Assignments []int `json:"assignments,omitempty"`
	// Shards echoes Config.Shards for sharded runs (0 otherwise).
	Shards int `json:"shards,omitempty"`
	// PerMachine holds each machine's result, in index order.
	PerMachine []MachineResult `json:"per_machine"`
	// Series is the cluster-wide windowed series: per-machine windows
	// merged index by index (counts and STP sum, unfairness is the
	// fleet-wide max/min slowdown ratio).
	Series metrics.WindowedSeries `json:"series"`
	// Summary, MeanSlowdown and MeanWait aggregate over the fleet's
	// departed applications — exactly the population counted by
	// Departed, the same denominator sim.OpenResult.MeanWait uses. Apps
	// still resident or queued when the run ended contribute to the
	// per-machine WaitStats (which cover every admitted app) but not
	// here; the two views answer different questions and deliberately
	// use different denominators.
	Summary      metrics.Summary `json:"summary"`
	MeanSlowdown float64         `json:"mean_slowdown"`
	MeanWait     float64         `json:"mean_wait"`
	Departed     int             `json:"departed"`
	Remaining    int             `json:"remaining"`
	// PeakActive is the largest end-of-window fleet population;
	// Repartitions sums policy activations across machines; SimSeconds
	// is the longest machine's simulated duration.
	PeakActive   int     `json:"peak_active"`
	Repartitions int     `json:"repartitions"`
	SimSeconds   float64 `json:"sim_seconds"`
	// Lifecycle reports the machine lifecycle layer's accounting; nil
	// when the run had none (keeping lifecycle-free JSON byte-identical
	// to earlier releases).
	Lifecycle *LifecycleSummary `json:"lifecycle,omitempty"`
	// Interrupted marks a partial result: the run paused (cancellation
	// or StopAfter) before the trace drained. Machines report their
	// state as of the pause; a checkpoint, if configured, resumes it.
	Interrupted bool `json:"interrupted,omitempty"`
}

// Run executes an open scenario over a cluster. newPolicy constructs
// the per-machine partitioning policy (each machine needs its own
// instance — policies hold per-app monitoring state; in a heterogeneous
// fleet it must also match machine i's platform, see
// Config.MachineConfigs). Identical (scenario, config, placement,
// policy) inputs produce identical results regardless of Workers and
// GOMAXPROCS; the determinism tests pin this under the race detector.
func Run(cfg Config, scn *scenario.Open, newPolicy func(machine int) (sim.Dynamic, error)) (*Result, error) {
	sims, err := cfg.MachineConfigs()
	if err != nil {
		return nil, err
	}
	nMachines := len(sims)
	if cfg.Placement == nil {
		return nil, fmt.Errorf("cluster: no placement policy")
	}
	if newPolicy == nil {
		return nil, fmt.Errorf("cluster: no policy factory")
	}
	initial := scn.Initial()
	arrivals := scn.Arrivals()
	if len(initial) == 0 && len(arrivals) == 0 {
		return nil, fmt.Errorf("cluster: open scenario %q has no applications", scn.Name())
	}
	ckptActive := cfg.Checkpoint != nil || cfg.Resume != nil
	if cfg.Checkpoint != nil {
		if cfg.Checkpoint.Path == "" {
			return nil, fmt.Errorf("cluster: checkpoint configuration without a path")
		}
		if cfg.Checkpoint.Every < 0 {
			return nil, fmt.Errorf("cluster: negative checkpoint interval %g", cfg.Checkpoint.Every)
		}
	}
	if cfg.Shards > 1 {
		if ckptActive || cfg.StopAfter > 0 || cfg.Cancel != nil {
			return nil, fmt.Errorf("cluster: sharded runs support neither checkpointing nor cooperative interruption")
		}
		return runSharded(cfg, scn, sims, newPolicy)
	}
	if ckptActive {
		// Reject non-snapshottable configurations up-front, before any
		// machine simulates: a run that cannot write its first checkpoint
		// should fail at construction, not an hour in.
		if _, ok := cfg.Placement.(PlacementSnapshotter); !ok {
			return nil, &sim.SnapshotUnsupportedError{What: fmt.Sprintf("placement policy %T", cfg.Placement)}
		}
		if cfg.Lifecycle.active() {
			for i, ev := range cfg.Lifecycle.Events {
				if ev.Config != nil {
					return nil, fmt.Errorf("cluster: checkpointing cannot serialize the per-event join config of lifecycle event %d", i)
				}
			}
		}
	}
	// Machines poll the shared flag at tick boundaries, so cancellation
	// pauses mid-advance without losing the coordinate.
	for i := range sims {
		sims[i].Cancel = cfg.Cancel
	}

	var resume *checkpointPayload
	if cfg.Resume != nil {
		resume = &cfg.Resume.payload
	}
	startArrival := 0
	var machines []*sim.OpenMachine
	var placed []int
	var states []MachineState
	if resume != nil {
		if resume.Scenario != scn.Name() {
			return nil, fmt.Errorf("cluster: checkpoint is of scenario %q, resuming %q", resume.Scenario, scn.Name())
		}
		if resume.Placement != cfg.Placement.Name() {
			return nil, fmt.Errorf("cluster: checkpoint used placement %q, resuming with %q", resume.Placement, cfg.Placement.Name())
		}
		if resume.NextArrival > len(arrivals) {
			return nil, fmt.Errorf("cluster: checkpoint processed %d arrivals, trace has %d — resume must use the original trace",
				resume.NextArrival, len(arrivals))
		}
		lcActive := cfg.Lifecycle.active()
		if (resume.Lifecycle != nil) != lcActive {
			return nil, fmt.Errorf("cluster: checkpoint and resume disagree on the lifecycle layer — resume must use the original config")
		}
		n := len(resume.Machines)
		if n < nMachines || (!lcActive && n != nMachines) {
			return nil, fmt.Errorf("cluster: checkpoint holds %d machines, config says %d", n, nMachines)
		}
		machines = make([]*sim.OpenMachine, n)
		placed = append([]int(nil), resume.Placed...)
		for i := range machines {
			mc := sims[0]
			var pol sim.Dynamic
			if i < nMachines {
				mc = sims[i]
				pol, err = newPolicy(i)
			} else {
				// Machines beyond the initial fleet joined mid-run; they
				// run machine 0's configuration (checkpointing rejects
				// per-event join configs) under a JoinPolicy-built policy.
				if cfg.Lifecycle.JoinPolicy == nil {
					return nil, fmt.Errorf("cluster: checkpoint holds joined machine %d but Lifecycle.JoinPolicy is nil", i)
				}
				pol, err = cfg.Lifecycle.JoinPolicy(i, mc)
			}
			if err != nil {
				return nil, fmt.Errorf("cluster: machine %d policy: %w", i, err)
			}
			m, err := sim.RestoreMachine(mc, pol, resume.Machines[i])
			if err != nil {
				return nil, fmt.Errorf("cluster: machine %d: %w", i, err)
			}
			machines[i] = m
		}
		if err := cfg.Placement.(PlacementSnapshotter).PlacementRestore(resume.PlacementState); err != nil {
			return nil, err
		}
		startArrival = resume.NextArrival
		// Placement-visible states refresh at the first synchronization
		// (the restored fleet queue makes every machine due immediately).
		states = make([]MachineState, n)
		for i := range states {
			states[i] = MachineState{Index: i, Cores: machines[i].Cores(), Plat: machines[i].Platform()}
		}
	} else {
		states = make([]MachineState, nMachines)
		for i := range states {
			states[i] = MachineState{Index: i, Cores: sims[i].Plat.Cores, Plat: sims[i].Plat}
		}
		perMachineInitial, err := placeInitial(cfg.Placement, initial, states)
		if err != nil {
			return nil, err
		}
		machines = make([]*sim.OpenMachine, nMachines)
		placed = make([]int, nMachines)
		for i := range machines {
			pol, err := newPolicy(i)
			if err != nil {
				return nil, fmt.Errorf("cluster: machine %d policy: %w", i, err)
			}
			if ckptActive {
				if _, ok := pol.(sim.PolicySnapshotter); !ok {
					return nil, &sim.SnapshotUnsupportedError{What: fmt.Sprintf("partitioning policy %T", pol)}
				}
			}
			m, err := sim.NewOpenMachine(sims[i], pol, scn.Name(), perMachineInitial[i], scn.Horizon())
			if err != nil {
				return nil, fmt.Errorf("cluster: machine %d: %w", i, err)
			}
			machines[i] = m
			placed[i] = len(perMachineInitial[i])
		}
	}

	pool := newFleetPool(machines, states, cfg.Workers)
	defer pool.close()
	defer pool.reportStats(cfg.statsSink)

	// The fleet event queue drives lazy advancement (the default); with
	// the eagerAdvance knob it stays nil and every synchronization
	// instant advances the whole fleet — the bit-identical reference
	// path the differential tests compare against.
	var q *fleetQueue
	if !cfg.eagerAdvance {
		q = newFleetQueue(len(machines))
		pool.horizons = q.horizon
	}

	// Lifecycle path: the engine interleaves the event timeline with
	// the arrival stream. Gated so a lifecycle-free run pays nothing
	// and takes the exact historical loop below.
	if cfg.Lifecycle.active() {
		eng, err := newEngine(&cfg, cfg.Lifecycle, scn, sims, pool, placed, len(arrivals))
		if err != nil {
			return nil, err
		}
		eng.q = q
		eng.cancel = cfg.Cancel
		eng.stopAfter = cfg.StopAfter
		eng.ai = startArrival
		if cfg.Checkpoint != nil {
			eng.ckptEvery = cfg.Checkpoint.Every
			eng.save = func() error {
				p, err := captureCheckpoint(&cfg, scn.Name(), pool, eng.ai, eng.placed, eng.assignments, eng)
				if err != nil {
					return err
				}
				return writeCheckpointPayload(cfg.Checkpoint.Path, p)
			}
		}
		if err := eng.schedule(arrivals); err != nil {
			return nil, err
		}
		if resume != nil {
			if err := eng.restore(resume.Lifecycle); err != nil {
				return nil, err
			}
			if eng.assignments != nil && len(resume.Assignments) == len(eng.assignments) {
				copy(eng.assignments, resume.Assignments)
			}
		}
		if err := eng.run(arrivals); err != nil {
			return nil, err
		}
		interrupted := eng.interrupted
		if !interrupted {
			if q != nil {
				if err := pool.alignClocks(eng.lastSync); err != nil {
					if !errors.Is(err, sim.ErrCanceled) {
						return nil, err
					}
					interrupted = true
				}
			}
		}
		if !interrupted {
			if err := pool.drain(); err != nil {
				if !errors.Is(err, sim.ErrCanceled) {
					return nil, err
				}
				interrupted = true
			}
		}
		if interrupted && eng.save != nil {
			if err := eng.save(); err != nil {
				return nil, err
			}
		}
		res, err := buildResult(cfg, scn, pool.machines, eng.placed, eng.assignments, eng)
		if err != nil {
			return nil, err
		}
		res.Interrupted = interrupted
		return res, nil
	}

	// Main loop: catch up the machines whose event horizon has passed
	// (in parallel — machines share nothing between placement points),
	// place against the synchronized states, inject serially. Machines
	// beyond their horizon keep stale state entries whose content is
	// provably identical to what an advance would refresh, so placement
	// sees exactly the eager fleet view.
	var assignments []int
	if cfg.RecordAssignments {
		if resume != nil && len(resume.Assignments) > 0 {
			assignments = append([]int(nil), resume.Assignments...)
		} else {
			assignments = make([]int, 0, len(arrivals))
		}
	}
	saveCkpt := func(nextArrival int) error {
		p, err := captureCheckpoint(&cfg, scn.Name(), pool, nextArrival, placed, assignments, nil)
		if err != nil {
			return err
		}
		return writeCheckpointPayload(cfg.Checkpoint.Path, p)
	}
	lastCkpt := 0.0
	if startArrival > 0 {
		lastCkpt = arrivals[startArrival-1].Time
	}
	interrupted := false
	ai := startArrival
	for ; ai < len(arrivals); ai++ {
		arr := arrivals[ai]
		// The loop top — before anything at this instant is processed —
		// is the checkpointable coordinate: pause checks and periodic
		// checkpoints both live here.
		if cfg.Cancel.Canceled() || (cfg.StopAfter > 0 && arr.Time >= cfg.StopAfter) {
			interrupted = true
			break
		}
		if cfg.Checkpoint != nil && cfg.Checkpoint.Every > 0 && arr.Time >= lastCkpt+cfg.Checkpoint.Every {
			if err := saveCkpt(ai); err != nil {
				return nil, err
			}
			lastCkpt = arr.Time
		}
		if q != nil {
			err = pool.advanceDue(q, arr.Time)
		} else {
			err = pool.advanceTo(arr.Time)
		}
		if err != nil {
			if errors.Is(err, sim.ErrCanceled) {
				// Machines paused at tick boundaries mid-advance; the
				// arrival-loop coordinate has not moved, so the resumed
				// run re-issues this advance and catches them up.
				interrupted = true
				break
			}
			return nil, err
		}
		idx := cfg.Placement.Place(arr.Spec, arr.Time, states)
		if err := checkPlaced(cfg.Placement.Name(), idx, nMachines, nil); err != nil {
			return nil, err
		}
		if err := machines[idx].Inject(arr); err != nil {
			return nil, fmt.Errorf("cluster: machine %d: %w", idx, err)
		}
		if q != nil {
			// The injected arrival is the machine's next event: make it
			// due no later than its delivery so the admission happens at
			// the same pause point the eager loop would use.
			q.touch(idx, arr.Time)
		}
		if assignments != nil {
			assignments = append(assignments, idx)
		}
		placed[idx]++
	}

	// Drain through the same pool: machines are fully independent past
	// placement. The lazy path first aligns every clock to the last
	// synchronization instant, where the eager barrier left them.
	if !interrupted && q != nil && len(arrivals) > 0 {
		if err := pool.alignClocks(arrivals[len(arrivals)-1].Time); err != nil {
			if !errors.Is(err, sim.ErrCanceled) {
				return nil, err
			}
			interrupted = true
		}
	}
	if !interrupted {
		if err := pool.drain(); err != nil {
			if !errors.Is(err, sim.ErrCanceled) {
				return nil, err
			}
			interrupted = true
		}
	}
	if interrupted && cfg.Checkpoint != nil {
		if err := saveCkpt(ai); err != nil {
			return nil, err
		}
	}
	res, err := buildResult(cfg, scn, machines, placed, assignments, nil)
	if err != nil {
		return nil, err
	}
	res.Interrupted = interrupted
	return res, nil
}

// placeInitial routes the time-zero applications: each is placed against
// the fleet state its predecessors produced, so load-sensitive policies
// spread them. A machine admits one application per core; initial
// applications beyond a machine's core count will start queued, so they
// count toward Queued — not Active — and stay out of the resident phase
// set. Placement must see the over-subscribed start the kernel will
// actually produce: LeastLoaded's tie-break and FairnessAware's queue
// penalty both read Queued.
func placeInitial(p Policy, initial []*appmodel.Spec, states []MachineState) ([][]*appmodel.Spec, error) {
	perMachine := make([][]*appmodel.Spec, len(states))
	for _, spec := range initial {
		idx := p.Place(spec, 0, states)
		if err := checkPlaced(p.Name(), idx, len(states), nil); err != nil {
			return nil, err
		}
		perMachine[idx] = append(perMachine[idx], spec)
		if states[idx].Active < states[idx].Cores {
			states[idx].Active++
			states[idx].Phases = append(states[idx].Phases, spec.DominantPhase())
		} else {
			states[idx].Queued++
		}
	}
	return perMachine, nil
}

// fleetJob is one unit of fleet-pool work: advance machine idx to time t,
// or drain it. silent advances are excluded from the advancement
// statistics (the end-of-run clock alignment, not per-arrival work).
type fleetJob struct {
	idx    int
	t      float64
	drain  bool
	silent bool
}

// fleetPool advances a fleet over a persistent bounded worker pool (the
// harness mapRows pattern, kept alive across arrivals so the per-arrival
// fan-out does not re-spawn goroutines). Worker i only ever touches
// machines[j] and states[j] for the jobs it receives, and jobs within a
// batch have distinct indices, so the fan-out is race-free and cannot
// perturb any machine's trajectory: results are bit-identical to the
// serial loop for every worker count.
type fleetPool struct {
	machines []*sim.OpenMachine
	states   []MachineState
	errs     []error
	jobs     chan fleetJob
	batch    sync.WaitGroup // in-flight jobs of the current batch
	workers  sync.WaitGroup // worker lifetimes, for close()
	// horizons, when non-nil, is the fleet event queue's horizon slice:
	// every advance job stores the machine's recomputed
	// NextEventHorizon into its own slot (distinct indices per batch,
	// so race-free); the serial caller then restores the heap invariant.
	horizons []float64
	dueBuf   []int        // collectDue scratch, reused across instants
	advances atomic.Int64 // advance jobs executed (lazy-savings metric)
	syncs    int64        // synchronization instants served (serial)
}

// newFleetPool sizes the pool: workers caps at the fleet size, 0 means
// GOMAXPROCS, and ≤ 1 degrades to inline serial execution (no
// goroutines at all).
func newFleetPool(machines []*sim.OpenMachine, states []MachineState, workers int) *fleetPool {
	p := &fleetPool{
		machines: machines,
		states:   states,
		errs:     make([]error, len(machines)),
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(machines) {
		workers = len(machines)
	}
	if workers <= 1 {
		return p
	}
	p.jobs = make(chan fleetJob)
	for w := 0; w < workers; w++ {
		p.workers.Add(1)
		go func() {
			defer p.workers.Done()
			for j := range p.jobs {
				p.run(j)
				p.batch.Done()
			}
		}()
	}
	return p
}

// run executes one job; the error (if any) lands in the job's slot so
// dispatch can report the lowest-indexed failure deterministically.
// Halted machines are skipped entirely — halts only happen serially
// between batches (lifecycle events are placement-layer work), and the
// pool's channel handoff orders them before any later job, so the check
// is race-free at every worker count.
//
// A panic inside the job — a kernel or policy bug — is confined to the
// job's machine: it is recovered into a typed *RunPanicError in the
// job's error slot and run returns normally, so the worker loop still
// reaches batch.Done() and the pool unwinds without deadlock. The run
// then fails with that error through the ordinary dispatch path.
func (p *fleetPool) run(j fleetJob) {
	defer func() {
		if r := recover(); r != nil {
			p.errs[j.idx] = &RunPanicError{Machine: j.idx, Value: r, Stack: debug.Stack()}
		}
	}()
	m := p.machines[j.idx]
	if m.Halted() {
		if p.horizons != nil {
			p.horizons[j.idx] = math.Inf(1)
		}
		return
	}
	if j.drain {
		p.errs[j.idx] = m.Drain()
		if p.horizons != nil {
			p.horizons[j.idx] = math.Inf(1)
		}
		return
	}
	if !j.silent {
		p.advances.Add(1)
	}
	if err := m.AdvanceTo(j.t); err != nil {
		p.errs[j.idx] = err
		return
	}
	p.refreshState(j.idx)
	if p.horizons != nil {
		p.horizons[j.idx] = m.NextEventHorizon()
	}
}

// refreshState re-reads one machine's placement-visible state. The
// lifecycle engine calls it after out-of-band injections (migrations,
// requeues at the displacement instant) so the next placement decision
// sees the move.
func (p *fleetPool) refreshState(idx int) {
	m := p.machines[idx]
	s := &p.states[idx]
	s.Active = m.Active()
	s.Queued = m.Queued()
	s.Phases = m.ActivePhases(s.Phases[:0])
}

// grow appends a joining machine to the pool. Serial-only, like halts:
// the lifecycle engine grows the fleet between batches, and the next
// dispatch picks the new machine up.
func (p *fleetPool) grow(m *sim.OpenMachine, state MachineState) {
	p.machines = append(p.machines, m)
	p.states = append(p.states, state)
	p.errs = append(p.errs, nil)
}

// dispatch runs one job per machine (inline when the pool is serial) and
// returns the lowest-indexed error.
func (p *fleetPool) dispatch(mk func(i int) fleetJob) error {
	if p.jobs == nil {
		for i := range p.machines {
			p.run(mk(i))
		}
	} else {
		p.batch.Add(len(p.machines))
		for i := range p.machines {
			p.jobs <- mk(i)
		}
		p.batch.Wait()
	}
	return p.batchErr(nil)
}

// batchErr reports a batch's authoritative error: the lowest-indexed
// machine failure, or the bare sim.ErrCanceled when the only errors are
// cancellation pauses. Canceled slots are cleared — cancellation is a
// pause, not a machine failure, and a stale sentinel must not poison a
// later batch. due limits the scan to the batch's machine indices (nil
// scans the whole fleet).
func (p *fleetPool) batchErr(due []int) error {
	canceled := false
	scan := func(i int) error {
		err := p.errs[i]
		if err == nil {
			return nil
		}
		if errors.Is(err, sim.ErrCanceled) {
			p.errs[i] = nil
			canceled = true
			return nil
		}
		return fmt.Errorf("cluster: machine %d: %w", i, err)
	}
	if due == nil {
		for i := range p.errs {
			if err := scan(i); err != nil {
				return err
			}
		}
	} else {
		bad := -1
		for _, i := range due {
			if p.errs[i] != nil && !errors.Is(p.errs[i], sim.ErrCanceled) && (bad < 0 || i < bad) {
				bad = i
			}
		}
		if bad >= 0 {
			return fmt.Errorf("cluster: machine %d: %w", bad, p.errs[bad])
		}
		for _, i := range due {
			if err := scan(i); err != nil {
				return err
			}
		}
	}
	if canceled {
		return sim.ErrCanceled
	}
	return nil
}

// advanceTo advances every machine to time t and refreshes its
// placement-visible state — the eager reference path.
func (p *fleetPool) advanceTo(t float64) error {
	p.syncs++
	return p.dispatch(func(i int) fleetJob { return fleetJob{idx: i, t: t} })
}

// advanceDue advances only the machines whose event horizon has passed
// t (per the fleet event queue), recomputes their horizons on the
// workers and restores the heap serially. Machines left alone are
// provably unchanged below their horizon, so the fleet state placement
// reads next is exactly what advanceTo would have produced.
func (p *fleetPool) advanceDue(q *fleetQueue, t float64) error {
	p.syncs++
	p.dueBuf = q.collectDue(t, p.dueBuf[:0])
	due := p.dueBuf
	if len(due) == 0 {
		return nil
	}
	if p.jobs == nil {
		for _, i := range due {
			p.run(fleetJob{idx: i, t: t})
		}
	} else {
		p.batch.Add(len(due))
		for _, i := range due {
			p.jobs <- fleetJob{idx: i, t: t}
		}
		p.batch.Wait()
	}
	for _, i := range due {
		q.fix(i)
	}
	return p.batchErr(due)
}

// advanceOne forces one machine to time t regardless of its horizon — a
// targeted catch-up for machines the lifecycle layer is about to mutate
// at t (drain/fail victims before resident extraction, migration
// destinations before resident injection). Extra pause points are free:
// the kernel's pause-point invariance keeps the trajectory identical.
func (p *fleetPool) advanceOne(q *fleetQueue, idx int, t float64) error {
	p.run(fleetJob{idx: idx, t: t})
	if q != nil {
		q.fix(idx)
	}
	return p.batchErr([]int{idx})
}

// reportStats copies the advancement counters into sink (nil-safe) —
// deferred by Run so the testing knob sees drains too.
func (p *fleetPool) reportStats(sink *fleetStats) {
	if sink == nil {
		return
	}
	sink.Advances = p.advances.Load()
	sink.Syncs = p.syncs
}

// alignClocks advances every machine to the run's final
// synchronization instant — the last pause point the eager loop's
// per-arrival barrier would have left each idle machine at. The lazy
// path calls it once before draining so final clocks (and the last
// partial metrics window) are bit-identical to the eager reference.
// One fleet-wide barrier amortized over the whole run, excluded from
// the per-arrival advancement statistics.
func (p *fleetPool) alignClocks(t float64) error {
	return p.dispatch(func(i int) fleetJob { return fleetJob{idx: i, t: t, silent: true} })
}

// drain marks every machine's arrival stream exhausted and runs it to
// completion.
func (p *fleetPool) drain() error {
	return p.dispatch(func(i int) fleetJob { return fleetJob{idx: i, drain: true} })
}

// close shuts the workers down. Safe on a serial pool.
func (p *fleetPool) close() {
	if p.jobs != nil {
		close(p.jobs)
		p.workers.Wait()
	}
}

// buildResult assembles the cluster result. eng is the lifecycle
// engine when the run had one (nil otherwise — every lifecycle field
// stays empty and the JSON shape is unchanged).
func buildResult(cfg Config, scn *scenario.Open, machines []*sim.OpenMachine, placed, assignments []int, eng *engine) (*Result, error) {
	res := &Result{
		Scenario:    scn.Name(),
		Placement:   cfg.Placement.Name(),
		Machines:    len(machines),
		Assignments: assignments,
		PerMachine:  make([]MachineResult, len(machines)),
	}
	series := make([]*metrics.WindowedSeries, len(machines))
	var slowdowns []float64
	var waitSum float64
	for i, m := range machines {
		open := m.Result()
		plat := m.Platform()
		res.PerMachine[i] = MachineResult{
			Index:    i,
			Platform: plat.Name,
			Cores:    plat.Cores,
			Ways:     plat.Ways,
			Arrivals: placed[i],
			Wait:     waitStats(open),
			Open:     open,
		}
		if eng != nil {
			mr := &res.PerMachine[i]
			switch {
			case eng.up[i]:
				mr.State = "up"
			case eng.failedAt[i]:
				mr.State = "failed"
			default:
				mr.State = "drained"
			}
			if eng.joinedAt[i] > 0 {
				mr.JoinedAt = eng.joinedAt[i]
			}
			if eng.downAt[i] >= 0 {
				mr.DownAt = eng.downAt[i]
			}
		}
		series[i] = &open.Series
		res.Departed += open.Departed
		res.Remaining += open.Remaining
		res.Repartitions += open.Repartitions
		if open.SimSeconds > res.SimSeconds {
			res.SimSeconds = open.SimSeconds
		}
		for _, a := range open.Apps {
			// A departed app always has Slowdown > 0 (clamped ≥ 1 at
			// departure), so this predicate is exactly the one behind
			// open.Departed: len(slowdowns) == res.Departed, the one
			// documented denominator for MeanSlowdown and MeanWait.
			if a.DepartedAt >= 0 && a.Slowdown > 0 {
				slowdowns = append(slowdowns, a.Slowdown)
				waitSum += a.WaitSeconds
			}
		}
	}
	merged, err := metrics.MergeSeries(series)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	res.Series = merged
	res.PeakActive = res.Series.PeakActive()
	if res.Departed > 0 {
		unf, stp, mean, _, _ := metrics.SlowdownStats(slowdowns)
		res.Summary = metrics.Summary{Unfairness: unf, STP: stp}
		res.MeanSlowdown = mean
		res.MeanWait = waitSum / float64(res.Departed)
	}
	if eng != nil {
		res.Remaining += len(eng.parked)
		res.Lifecycle = eng.finish(res.SimSeconds)
	}
	return res, nil
}

// waitStats summarizes the admission-queue waits of a machine's
// admitted applications (zero value when none were admitted).
func waitStats(open *sim.OpenResult) WaitStats {
	var waits []float64
	for _, a := range open.Apps {
		if a.AdmittedAt >= 0 {
			waits = append(waits, a.WaitSeconds)
		}
	}
	if len(waits) == 0 {
		return WaitStats{}
	}
	sort.Float64s(waits)
	sum := 0.0
	for _, w := range waits {
		sum += w
	}
	return WaitStats{
		Mean: sum / float64(len(waits)),
		P50:  quantile(waits, 0.50),
		P95:  quantile(waits, 0.95),
		Max:  waits[len(waits)-1],
	}
}

// quantile returns the nearest-rank q-quantile of a sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
