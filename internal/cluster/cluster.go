// Package cluster scales the single-socket simulator to a fleet: N
// independent machine kernels behind one open-system arrival stream,
// with a pluggable placement policy deciding which machine admits each
// arrival. Every machine runs its own dynamic partitioning policy
// (stock/Dunn/LFOC) over its own resctrl-style state, exactly as a
// single-machine RunOpen would; the cluster layer only routes arrivals
// and aggregates metrics, so an N=1 cluster is bit-identical to RunOpen
// and every machine's result equals an independent replay of its split
// trace (both pinned by tests).
//
// Fleets may be heterogeneous: Config.Fleet gives every machine its own
// sim.Config (mixed core counts, LLC sizes and way counts; mixed
// partitioning-policy cadences too, provided every entry sets one
// common explicit MetricsWindow — fleet windows merge index-by-index,
// so widths must agree), while the homogeneous Sim+Machines form
// remains a shorthand for N copies of one configuration — the two
// forms produce byte-identical results for identical fleets.
//
// Execution interleaves deterministically at arrival granularity: for
// each trace arrival, every machine is advanced to the arrival instant
// (machines tick independently between arrivals — an idle machine keeps
// its policy period and metrics windows running, like real hardware),
// the placement policy scores the synchronized fleet state, and the
// arrival is injected into the chosen machine. Machines share nothing
// between placement points, so the advancement fans out over a bounded
// worker pool (Config.Workers); placement itself stays serial — it is
// the only synchronization point — and results are bit-identical for
// every worker count and GOMAXPROCS setting. When the trace is
// exhausted the machines drain through the same pool.
package cluster

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/metrics"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

// Config parameterizes a cluster run.
type Config struct {
	// Sim is the default per-machine simulator configuration (platform,
	// quotas, policy period): every machine of a homogeneous fleet runs
	// it. Ignored when Fleet is set.
	Sim sim.Config
	// Machines is the fleet size (≥ 1). When Fleet is set it may be left
	// zero (the fleet size is len(Fleet)); a non-zero value must then
	// match len(Fleet).
	Machines int
	// Fleet, when non-empty, configures each machine individually — a
	// heterogeneous fleet. Machine i runs Fleet[i]; platforms may differ
	// in core count, way count and LLC size. Entries with different
	// PolicyPeriods must set one common explicit MetricsWindow (see
	// MachineConfigs). A fleet of identical entries is equivalent to the
	// Sim+Machines form.
	Fleet []sim.Config
	// Placement decides which machine admits each arrival. The instance
	// must be fresh for this run (policies may keep internal state).
	Placement Policy
	// Workers bounds the fleet-advancement worker pool (0 = GOMAXPROCS,
	// 1 = serial). Machines are independent between placement points, so
	// the setting affects wall-clock time only, never results.
	Workers int
	// Lifecycle, when set and carrying events (scheduled, MTBF or
	// autoscale), runs the machine lifecycle layer: a deterministic
	// event timeline interleaved with the arrival stream. Nil or empty
	// is guaranteed zero-cost — Run takes the historical path and
	// produces byte-identical results.
	Lifecycle *Lifecycle
}

// MachineConfigs resolves the per-machine simulator configurations: N
// validated copies of Sim for a homogeneous fleet, or the validated
// Fleet entries. The returned slice is freshly allocated and defaults
// are applied, so callers may use it to build per-machine policies.
//
// Every machine must collect metric windows of the same width (the
// fleet series merges window-by-window): a machine's effective width is
// MetricsWindow, defaulting to its PolicyPeriod, so a mixed-cadence
// fleet must set MetricsWindow explicitly on every entry. The mismatch
// is rejected here, before any machine simulates.
func (c *Config) MachineConfigs() ([]sim.Config, error) {
	if len(c.Fleet) > 0 {
		if c.Machines != 0 && c.Machines != len(c.Fleet) {
			return nil, fmt.Errorf("cluster: Machines = %d but Fleet configures %d machines", c.Machines, len(c.Fleet))
		}
		sims := make([]sim.Config, len(c.Fleet))
		for i, s := range c.Fleet {
			if err := s.Validate(); err != nil {
				return nil, fmt.Errorf("cluster: machine %d: %w", i, err)
			}
			sims[i] = s
			if w, w0 := sims[i].EffectiveMetricsWindow(), sims[0].EffectiveMetricsWindow(); w != w0 {
				return nil, fmt.Errorf("cluster: machine %d collects %v metric windows but machine 0 collects %v — "+
					"mixed-cadence fleets must set an explicit common MetricsWindow", i, w, w0)
			}
		}
		return sims, nil
	}
	if c.Machines < 1 {
		return nil, fmt.Errorf("cluster: need at least one machine, got %d", c.Machines)
	}
	s := c.Sim
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sims := make([]sim.Config, c.Machines)
	for i := range sims {
		sims[i] = s
	}
	return sims, nil
}

// WaitStats is a machine's admission-queue wait distribution over every
// application it admitted — including applications still resident when
// the run ended (their wait is known at admission). Contrast with
// Result.MeanWait, which covers only departed applications.
type WaitStats struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	Max  float64 `json:"max"`
}

// MachineResult is one machine's share of a cluster run.
type MachineResult struct {
	// Index is the machine's position in the fleet.
	Index int `json:"machine"`
	// Platform names the machine's platform model; Cores and Ways are
	// its capacity — identical across a homogeneous fleet, the
	// distinguishing columns of a heterogeneous one.
	Platform string `json:"platform"`
	Cores    int    `json:"cores"`
	Ways     int    `json:"ways"`
	// Arrivals counts applications placed on this machine (including
	// time-zero initial placements).
	Arrivals int `json:"arrivals"`
	// Wait is the admission-queue wait distribution over admitted apps.
	Wait WaitStats `json:"wait"`
	// State is the machine's lifecycle state when the run ended: "up",
	// "drained" or "failed". Empty when the run had no lifecycle layer.
	State string `json:"state,omitempty"`
	// JoinedAt is when the machine joined the fleet (omitted for the
	// initial fleet); DownAt when it was drained or failed (omitted
	// while up). Lifecycle runs only.
	JoinedAt float64 `json:"joined_at,omitempty"`
	DownAt   float64 `json:"down_at,omitempty"`
	// Open is the machine's full open-system result: per-app outcomes
	// and its windowed metric series.
	Open *sim.OpenResult `json:"result"`
}

// Result is what a cluster run reports: cluster-wide aggregates plus
// the per-machine breakdowns they were merged from.
type Result struct {
	Scenario  string `json:"scenario"`
	Placement string `json:"placement"`
	Machines  int    `json:"machines"`
	// Assignments maps each trace arrival (in trace order) to the
	// machine that received it — the placement decision record, and the
	// input to workloads.SplitArrivals for replaying machines solo.
	Assignments []int `json:"assignments"`
	// PerMachine holds each machine's result, in index order.
	PerMachine []MachineResult `json:"per_machine"`
	// Series is the cluster-wide windowed series: per-machine windows
	// merged index by index (counts and STP sum, unfairness is the
	// fleet-wide max/min slowdown ratio).
	Series metrics.WindowedSeries `json:"series"`
	// Summary, MeanSlowdown and MeanWait aggregate over the fleet's
	// departed applications — exactly the population counted by
	// Departed, the same denominator sim.OpenResult.MeanWait uses. Apps
	// still resident or queued when the run ended contribute to the
	// per-machine WaitStats (which cover every admitted app) but not
	// here; the two views answer different questions and deliberately
	// use different denominators.
	Summary      metrics.Summary `json:"summary"`
	MeanSlowdown float64         `json:"mean_slowdown"`
	MeanWait     float64         `json:"mean_wait"`
	Departed     int             `json:"departed"`
	Remaining    int             `json:"remaining"`
	// PeakActive is the largest end-of-window fleet population;
	// Repartitions sums policy activations across machines; SimSeconds
	// is the longest machine's simulated duration.
	PeakActive   int     `json:"peak_active"`
	Repartitions int     `json:"repartitions"`
	SimSeconds   float64 `json:"sim_seconds"`
	// Lifecycle reports the machine lifecycle layer's accounting; nil
	// when the run had none (keeping lifecycle-free JSON byte-identical
	// to earlier releases).
	Lifecycle *LifecycleSummary `json:"lifecycle,omitempty"`
}

// Run executes an open scenario over a cluster. newPolicy constructs
// the per-machine partitioning policy (each machine needs its own
// instance — policies hold per-app monitoring state; in a heterogeneous
// fleet it must also match machine i's platform, see
// Config.MachineConfigs). Identical (scenario, config, placement,
// policy) inputs produce identical results regardless of Workers and
// GOMAXPROCS; the determinism tests pin this under the race detector.
func Run(cfg Config, scn *scenario.Open, newPolicy func(machine int) (sim.Dynamic, error)) (*Result, error) {
	sims, err := cfg.MachineConfigs()
	if err != nil {
		return nil, err
	}
	nMachines := len(sims)
	if cfg.Placement == nil {
		return nil, fmt.Errorf("cluster: no placement policy")
	}
	if newPolicy == nil {
		return nil, fmt.Errorf("cluster: no policy factory")
	}
	initial := scn.Initial()
	arrivals := scn.Arrivals()
	if len(initial) == 0 && len(arrivals) == 0 {
		return nil, fmt.Errorf("cluster: open scenario %q has no applications", scn.Name())
	}

	states := make([]MachineState, nMachines)
	for i := range states {
		states[i] = MachineState{Index: i, Cores: sims[i].Plat.Cores, Plat: sims[i].Plat}
	}
	perMachineInitial, err := placeInitial(cfg.Placement, initial, states)
	if err != nil {
		return nil, err
	}

	machines := make([]*sim.OpenMachine, nMachines)
	placed := make([]int, nMachines)
	for i := range machines {
		pol, err := newPolicy(i)
		if err != nil {
			return nil, fmt.Errorf("cluster: machine %d policy: %w", i, err)
		}
		m, err := sim.NewOpenMachine(sims[i], pol, scn.Name(), perMachineInitial[i], scn.Horizon())
		if err != nil {
			return nil, fmt.Errorf("cluster: machine %d: %w", i, err)
		}
		machines[i] = m
		placed[i] = len(perMachineInitial[i])
	}

	pool := newFleetPool(machines, states, cfg.Workers)
	defer pool.close()

	// Lifecycle path: the engine interleaves the event timeline with
	// the arrival stream. Gated so a lifecycle-free run pays nothing
	// and takes the exact historical loop below.
	if cfg.Lifecycle.active() {
		eng, err := newEngine(&cfg, cfg.Lifecycle, scn, sims, pool, placed, len(arrivals))
		if err != nil {
			return nil, err
		}
		if err := eng.schedule(arrivals); err != nil {
			return nil, err
		}
		if err := eng.run(arrivals); err != nil {
			return nil, err
		}
		if err := pool.drain(); err != nil {
			return nil, err
		}
		return buildResult(cfg, scn, pool.machines, eng.placed, eng.assignments, eng)
	}

	// Main loop: advance the fleet to each arrival instant (in parallel
	// — machines share nothing between placement points), place against
	// the synchronized states, inject serially.
	assignments := make([]int, 0, len(arrivals))
	for _, arr := range arrivals {
		if err := pool.advanceTo(arr.Time); err != nil {
			return nil, err
		}
		idx := cfg.Placement.Place(arr.Spec, arr.Time, states)
		if err := checkPlaced(cfg.Placement.Name(), idx, nMachines, nil); err != nil {
			return nil, err
		}
		if err := machines[idx].Inject(arr); err != nil {
			return nil, fmt.Errorf("cluster: machine %d: %w", idx, err)
		}
		assignments = append(assignments, idx)
		placed[idx]++
	}

	// Drain through the same pool: machines are fully independent past
	// placement.
	if err := pool.drain(); err != nil {
		return nil, err
	}

	return buildResult(cfg, scn, machines, placed, assignments, nil)
}

// placeInitial routes the time-zero applications: each is placed against
// the fleet state its predecessors produced, so load-sensitive policies
// spread them. A machine admits one application per core; initial
// applications beyond a machine's core count will start queued, so they
// count toward Queued — not Active — and stay out of the resident phase
// set. Placement must see the over-subscribed start the kernel will
// actually produce: LeastLoaded's tie-break and FairnessAware's queue
// penalty both read Queued.
func placeInitial(p Policy, initial []*appmodel.Spec, states []MachineState) ([][]*appmodel.Spec, error) {
	perMachine := make([][]*appmodel.Spec, len(states))
	for _, spec := range initial {
		idx := p.Place(spec, 0, states)
		if err := checkPlaced(p.Name(), idx, len(states), nil); err != nil {
			return nil, err
		}
		perMachine[idx] = append(perMachine[idx], spec)
		if states[idx].Active < states[idx].Cores {
			states[idx].Active++
			states[idx].Phases = append(states[idx].Phases, spec.DominantPhase())
		} else {
			states[idx].Queued++
		}
	}
	return perMachine, nil
}

// fleetJob is one unit of fleet-pool work: advance machine idx to time t,
// or drain it.
type fleetJob struct {
	idx   int
	t     float64
	drain bool
}

// fleetPool advances a fleet over a persistent bounded worker pool (the
// harness mapRows pattern, kept alive across arrivals so the per-arrival
// fan-out does not re-spawn goroutines). Worker i only ever touches
// machines[j] and states[j] for the jobs it receives, and jobs within a
// batch have distinct indices, so the fan-out is race-free and cannot
// perturb any machine's trajectory: results are bit-identical to the
// serial loop for every worker count.
type fleetPool struct {
	machines []*sim.OpenMachine
	states   []MachineState
	errs     []error
	jobs     chan fleetJob
	batch    sync.WaitGroup // in-flight jobs of the current batch
	workers  sync.WaitGroup // worker lifetimes, for close()
}

// newFleetPool sizes the pool: workers caps at the fleet size, 0 means
// GOMAXPROCS, and ≤ 1 degrades to inline serial execution (no
// goroutines at all).
func newFleetPool(machines []*sim.OpenMachine, states []MachineState, workers int) *fleetPool {
	p := &fleetPool{
		machines: machines,
		states:   states,
		errs:     make([]error, len(machines)),
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(machines) {
		workers = len(machines)
	}
	if workers <= 1 {
		return p
	}
	p.jobs = make(chan fleetJob)
	for w := 0; w < workers; w++ {
		p.workers.Add(1)
		go func() {
			defer p.workers.Done()
			for j := range p.jobs {
				p.run(j)
				p.batch.Done()
			}
		}()
	}
	return p
}

// run executes one job; the error (if any) lands in the job's slot so
// dispatch can report the lowest-indexed failure deterministically.
// Halted machines are skipped entirely — halts only happen serially
// between batches (lifecycle events are placement-layer work), and the
// pool's channel handoff orders them before any later job, so the check
// is race-free at every worker count.
func (p *fleetPool) run(j fleetJob) {
	m := p.machines[j.idx]
	if m.Halted() {
		return
	}
	if j.drain {
		p.errs[j.idx] = m.Drain()
		return
	}
	if err := m.AdvanceTo(j.t); err != nil {
		p.errs[j.idx] = err
		return
	}
	p.refreshState(j.idx)
}

// refreshState re-reads one machine's placement-visible state. The
// lifecycle engine calls it after out-of-band injections (migrations,
// requeues at the displacement instant) so the next placement decision
// sees the move.
func (p *fleetPool) refreshState(idx int) {
	m := p.machines[idx]
	s := &p.states[idx]
	s.Active = m.Active()
	s.Queued = m.Queued()
	s.Phases = m.ActivePhases(s.Phases[:0])
}

// grow appends a joining machine to the pool. Serial-only, like halts:
// the lifecycle engine grows the fleet between batches, and the next
// dispatch picks the new machine up.
func (p *fleetPool) grow(m *sim.OpenMachine, state MachineState) {
	p.machines = append(p.machines, m)
	p.states = append(p.states, state)
	p.errs = append(p.errs, nil)
}

// dispatch runs one job per machine (inline when the pool is serial) and
// returns the lowest-indexed error.
func (p *fleetPool) dispatch(mk func(i int) fleetJob) error {
	if p.jobs == nil {
		for i := range p.machines {
			p.run(mk(i))
		}
	} else {
		p.batch.Add(len(p.machines))
		for i := range p.machines {
			p.jobs <- mk(i)
		}
		p.batch.Wait()
	}
	for i, err := range p.errs {
		if err != nil {
			return fmt.Errorf("cluster: machine %d: %w", i, err)
		}
	}
	return nil
}

// advanceTo advances every machine to time t and refreshes its
// placement-visible state.
func (p *fleetPool) advanceTo(t float64) error {
	return p.dispatch(func(i int) fleetJob { return fleetJob{idx: i, t: t} })
}

// drain marks every machine's arrival stream exhausted and runs it to
// completion.
func (p *fleetPool) drain() error {
	return p.dispatch(func(i int) fleetJob { return fleetJob{idx: i, drain: true} })
}

// close shuts the workers down. Safe on a serial pool.
func (p *fleetPool) close() {
	if p.jobs != nil {
		close(p.jobs)
		p.workers.Wait()
	}
}

// buildResult assembles the cluster result. eng is the lifecycle
// engine when the run had one (nil otherwise — every lifecycle field
// stays empty and the JSON shape is unchanged).
func buildResult(cfg Config, scn *scenario.Open, machines []*sim.OpenMachine, placed, assignments []int, eng *engine) (*Result, error) {
	res := &Result{
		Scenario:    scn.Name(),
		Placement:   cfg.Placement.Name(),
		Machines:    len(machines),
		Assignments: assignments,
		PerMachine:  make([]MachineResult, len(machines)),
	}
	series := make([]*metrics.WindowedSeries, len(machines))
	var slowdowns []float64
	var waitSum float64
	for i, m := range machines {
		open := m.Result()
		plat := m.Platform()
		res.PerMachine[i] = MachineResult{
			Index:    i,
			Platform: plat.Name,
			Cores:    plat.Cores,
			Ways:     plat.Ways,
			Arrivals: placed[i],
			Wait:     waitStats(open),
			Open:     open,
		}
		if eng != nil {
			mr := &res.PerMachine[i]
			switch {
			case eng.up[i]:
				mr.State = "up"
			case eng.failedAt[i]:
				mr.State = "failed"
			default:
				mr.State = "drained"
			}
			if eng.joinedAt[i] > 0 {
				mr.JoinedAt = eng.joinedAt[i]
			}
			if eng.downAt[i] >= 0 {
				mr.DownAt = eng.downAt[i]
			}
		}
		series[i] = &open.Series
		res.Departed += open.Departed
		res.Remaining += open.Remaining
		res.Repartitions += open.Repartitions
		if open.SimSeconds > res.SimSeconds {
			res.SimSeconds = open.SimSeconds
		}
		for _, a := range open.Apps {
			// A departed app always has Slowdown > 0 (clamped ≥ 1 at
			// departure), so this predicate is exactly the one behind
			// open.Departed: len(slowdowns) == res.Departed, the one
			// documented denominator for MeanSlowdown and MeanWait.
			if a.DepartedAt >= 0 && a.Slowdown > 0 {
				slowdowns = append(slowdowns, a.Slowdown)
				waitSum += a.WaitSeconds
			}
		}
	}
	merged, err := metrics.MergeSeries(series)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	res.Series = merged
	res.PeakActive = res.Series.PeakActive()
	if res.Departed > 0 {
		unf, stp, mean, _, _ := metrics.SlowdownStats(slowdowns)
		res.Summary = metrics.Summary{Unfairness: unf, STP: stp}
		res.MeanSlowdown = mean
		res.MeanWait = waitSum / float64(res.Departed)
	}
	if eng != nil {
		res.Remaining += len(eng.parked)
		res.Lifecycle = eng.finish(res.SimSeconds)
	}
	return res, nil
}

// waitStats summarizes the admission-queue waits of a machine's
// admitted applications (zero value when none were admitted).
func waitStats(open *sim.OpenResult) WaitStats {
	var waits []float64
	for _, a := range open.Apps {
		if a.AdmittedAt >= 0 {
			waits = append(waits, a.WaitSeconds)
		}
	}
	if len(waits) == 0 {
		return WaitStats{}
	}
	sort.Float64s(waits)
	sum := 0.0
	for _, w := range waits {
		sum += w
	}
	return WaitStats{
		Mean: sum / float64(len(waits)),
		P50:  quantile(waits, 0.50),
		P95:  quantile(waits, 0.95),
		Max:  waits[len(waits)-1],
	}
}

// quantile returns the nearest-rank q-quantile of a sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
