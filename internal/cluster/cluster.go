// Package cluster scales the single-socket simulator to a fleet: N
// independent machine kernels behind one open-system arrival stream,
// with a pluggable placement policy deciding which machine admits each
// arrival. Every machine runs its own dynamic partitioning policy
// (stock/Dunn/LFOC) over its own resctrl-style state, exactly as a
// single-machine RunOpen would; the cluster layer only routes arrivals
// and aggregates metrics, so an N=1 cluster is bit-identical to RunOpen
// and every machine's result equals an independent replay of its split
// trace (both pinned by tests).
//
// Execution interleaves deterministically at arrival granularity: for
// each trace arrival, every machine is advanced to the arrival instant
// (machines tick independently between arrivals — an idle machine keeps
// its policy period and metrics windows running, like real hardware),
// the placement policy scores the synchronized fleet state, and the
// arrival is injected into the chosen machine. When the trace is
// exhausted the machines drain concurrently; they share nothing, so the
// parallel drain cannot perturb results.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/metrics"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

// Config parameterizes a cluster run.
type Config struct {
	// Sim is the per-machine simulator configuration (platform, quotas,
	// policy period). Machines are homogeneous.
	Sim sim.Config
	// Machines is the fleet size (≥ 1).
	Machines int
	// Placement decides which machine admits each arrival. The instance
	// must be fresh for this run (policies may keep internal state).
	Placement Policy
}

// WaitStats is a machine's admission-queue wait distribution over the
// applications it admitted.
type WaitStats struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	Max  float64 `json:"max"`
}

// MachineResult is one machine's share of a cluster run.
type MachineResult struct {
	// Index is the machine's position in the fleet.
	Index int `json:"machine"`
	// Arrivals counts applications placed on this machine (including
	// time-zero initial placements).
	Arrivals int `json:"arrivals"`
	// Wait is the admission-queue wait distribution over admitted apps.
	Wait WaitStats `json:"wait"`
	// Open is the machine's full open-system result: per-app outcomes
	// and its windowed metric series.
	Open *sim.OpenResult `json:"result"`
}

// Result is what a cluster run reports: cluster-wide aggregates plus
// the per-machine breakdowns they were merged from.
type Result struct {
	Scenario  string `json:"scenario"`
	Placement string `json:"placement"`
	Machines  int    `json:"machines"`
	// Assignments maps each trace arrival (in trace order) to the
	// machine that received it — the placement decision record, and the
	// input to workloads.SplitArrivals for replaying machines solo.
	Assignments []int `json:"assignments"`
	// PerMachine holds each machine's result, in index order.
	PerMachine []MachineResult `json:"per_machine"`
	// Series is the cluster-wide windowed series: per-machine windows
	// merged index by index (counts and STP sum, unfairness is the
	// fleet-wide max/min slowdown ratio).
	Series metrics.WindowedSeries `json:"series"`
	// Summary, MeanSlowdown and MeanWait aggregate over all departed
	// applications across the fleet.
	Summary      metrics.Summary `json:"summary"`
	MeanSlowdown float64         `json:"mean_slowdown"`
	MeanWait     float64         `json:"mean_wait"`
	Departed     int             `json:"departed"`
	Remaining    int             `json:"remaining"`
	// PeakActive is the largest end-of-window fleet population;
	// Repartitions sums policy activations across machines; SimSeconds
	// is the longest machine's simulated duration.
	PeakActive   int     `json:"peak_active"`
	Repartitions int     `json:"repartitions"`
	SimSeconds   float64 `json:"sim_seconds"`
}

// Run executes an open scenario over a cluster. newPolicy constructs
// the per-machine partitioning policy (each machine needs its own
// instance — policies hold per-app monitoring state). Identical
// (scenario, config, placement, policy) inputs produce identical
// results; the determinism tests pin this under the race detector.
func Run(cfg Config, scn *scenario.Open, newPolicy func(machine int) (sim.Dynamic, error)) (*Result, error) {
	if err := cfg.Sim.Validate(); err != nil {
		return nil, err
	}
	if cfg.Machines < 1 {
		return nil, fmt.Errorf("cluster: need at least one machine, got %d", cfg.Machines)
	}
	if cfg.Placement == nil {
		return nil, fmt.Errorf("cluster: no placement policy")
	}
	if newPolicy == nil {
		return nil, fmt.Errorf("cluster: no policy factory")
	}
	initial := scn.Initial()
	arrivals := scn.Arrivals()
	if len(initial) == 0 && len(arrivals) == 0 {
		return nil, fmt.Errorf("cluster: open scenario %q has no applications", scn.Name())
	}

	// Time-zero placement: initial applications are placed against the
	// empty fleet, with the states updated as each one lands so load-
	// sensitive policies spread them. Not-yet-running apps are
	// represented by their dominant phase.
	states := make([]MachineState, cfg.Machines)
	for i := range states {
		states[i] = MachineState{Index: i, Cores: cfg.Sim.Plat.Cores}
	}
	perMachineInitial := make([][]*appmodel.Spec, cfg.Machines)
	for _, spec := range initial {
		idx := cfg.Placement.Place(spec, 0, states)
		if idx < 0 || idx >= cfg.Machines {
			return nil, fmt.Errorf("cluster: placement %q chose machine %d of %d", cfg.Placement.Name(), idx, cfg.Machines)
		}
		perMachineInitial[idx] = append(perMachineInitial[idx], spec)
		states[idx].Active++
		states[idx].Phases = append(states[idx].Phases, spec.DominantPhase())
	}

	machines := make([]*sim.OpenMachine, cfg.Machines)
	placed := make([]int, cfg.Machines)
	for i := range machines {
		pol, err := newPolicy(i)
		if err != nil {
			return nil, fmt.Errorf("cluster: machine %d policy: %w", i, err)
		}
		m, err := sim.NewOpenMachine(cfg.Sim, pol, scn.Name(), perMachineInitial[i], scn.Horizon())
		if err != nil {
			return nil, fmt.Errorf("cluster: machine %d: %w", i, err)
		}
		machines[i] = m
		placed[i] = len(perMachineInitial[i])
	}

	// Main loop: advance the fleet to each arrival instant, place, inject.
	assignments := make([]int, 0, len(arrivals))
	for _, arr := range arrivals {
		for i, m := range machines {
			if err := m.AdvanceTo(arr.Time); err != nil {
				return nil, fmt.Errorf("cluster: machine %d: %w", i, err)
			}
			states[i].Active = m.Active()
			states[i].Queued = m.Queued()
			states[i].Phases = m.ActivePhases(states[i].Phases[:0])
		}
		idx := cfg.Placement.Place(arr.Spec, arr.Time, states)
		if idx < 0 || idx >= cfg.Machines {
			return nil, fmt.Errorf("cluster: placement %q chose machine %d of %d", cfg.Placement.Name(), idx, cfg.Machines)
		}
		if err := machines[idx].Inject(arr); err != nil {
			return nil, fmt.Errorf("cluster: machine %d: %w", idx, err)
		}
		assignments = append(assignments, idx)
		placed[idx]++
	}

	// Drain concurrently: machines are fully independent past placement.
	errs := make([]error, cfg.Machines)
	var wg sync.WaitGroup
	for i, m := range machines {
		wg.Add(1)
		go func(i int, m *sim.OpenMachine) {
			defer wg.Done()
			errs[i] = m.Drain()
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: machine %d: %w", i, err)
		}
	}

	return buildResult(cfg, scn, machines, placed, assignments), nil
}

func buildResult(cfg Config, scn *scenario.Open, machines []*sim.OpenMachine, placed, assignments []int) *Result {
	res := &Result{
		Scenario:    scn.Name(),
		Placement:   cfg.Placement.Name(),
		Machines:    cfg.Machines,
		Assignments: assignments,
		PerMachine:  make([]MachineResult, cfg.Machines),
	}
	series := make([]*metrics.WindowedSeries, cfg.Machines)
	var slowdowns []float64
	var waitSum float64
	for i, m := range machines {
		open := m.Result()
		res.PerMachine[i] = MachineResult{
			Index:    i,
			Arrivals: placed[i],
			Wait:     waitStats(open),
			Open:     open,
		}
		series[i] = &open.Series
		res.Departed += open.Departed
		res.Remaining += open.Remaining
		res.Repartitions += open.Repartitions
		if open.SimSeconds > res.SimSeconds {
			res.SimSeconds = open.SimSeconds
		}
		for _, a := range open.Apps {
			if a.DepartedAt >= 0 && a.Slowdown > 0 {
				slowdowns = append(slowdowns, a.Slowdown)
				waitSum += a.WaitSeconds
			}
		}
	}
	res.Series = metrics.MergeSeries(series)
	res.PeakActive = res.Series.PeakActive()
	if n := len(slowdowns); n > 0 {
		unf, stp, mean, _, _ := metrics.SlowdownStats(slowdowns)
		res.Summary = metrics.Summary{Unfairness: unf, STP: stp}
		res.MeanSlowdown = mean
		res.MeanWait = waitSum / float64(n)
	}
	return res
}

// waitStats summarizes the admission-queue waits of a machine's
// admitted applications (zero value when none were admitted).
func waitStats(open *sim.OpenResult) WaitStats {
	var waits []float64
	for _, a := range open.Apps {
		if a.AdmittedAt >= 0 {
			waits = append(waits, a.WaitSeconds)
		}
	}
	if len(waits) == 0 {
		return WaitStats{}
	}
	sort.Float64s(waits)
	sum := 0.0
	for _, w := range waits {
		sum += w
	}
	return WaitStats{
		Mean: sum / float64(len(waits)),
		P50:  quantile(waits, 0.50),
		P95:  quantile(waits, 0.95),
		Max:  waits[len(waits)-1],
	}
}

// quantile returns the nearest-rank q-quantile of a sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
