// Checkpoint/resume: the serialized coordinate of a paused cluster run.
//
// A checkpoint is taken only at an arrival-boundary pause point — the
// top of the per-arrival loop (or of the lifecycle engine's merged
// event/arrival loop), before anything at that instant was processed.
// The payload composes the per-machine sim.MachineSnapshots with the
// cluster layer's own coordinate: the next trace-arrival index, the
// per-machine placement counts, the placement policy's state, and (for
// lifecycle runs) the event-heap position, parked/retry queues and
// accounting. Everything else — fleet-queue horizons, placement-visible
// machine states — is rederived on resume: the restored fleet queue
// makes every machine due immediately, so the first synchronization
// re-advances and re-reads the whole fleet, and the kernel's
// pause-point invariance makes those catch-up advances unobservable.
//
// The on-disk format is a small JSON wrapper {magic, version, sha256,
// payload}: the checksum covers the payload bytes exactly as embedded,
// so a truncated or hand-edited file is rejected with a typed error
// before any of it is interpreted. Files are written atomically
// (temp+rename): a crash mid-write never clobbers the previous
// checkpoint.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"github.com/faircache/lfoc/internal/atomicfile"
	"github.com/faircache/lfoc/internal/sim"
)

// checkpointMagic identifies a checkpoint file; CheckpointVersion is the
// current payload schema version. Version bumps are deliberate and rare:
// a reader only ever accepts the version it was built for (resuming is a
// same-binary, same-config affair — the snapshot stores coordinates, not
// platform models), so an old file fails fast with a typed error instead
// of misinterpreting fields.
const (
	checkpointMagic   = "lfoc-checkpoint"
	CheckpointVersion = 1
)

// CheckpointConfig configures periodic checkpointing of a cluster run.
type CheckpointConfig struct {
	// Path is where checkpoints are written (atomically; each write
	// replaces the previous one). Required.
	Path string
	// Every is the minimum simulated-seconds spacing between periodic
	// checkpoints; the run checkpoints at the first arrival boundary at
	// or past each multiple. 0 writes no periodic checkpoints — only the
	// final one on interruption (cancel or StopAfter).
	Every float64
}

// CheckpointFormatError reports a file that is not a checkpoint (bad
// magic, malformed JSON) or whose version this binary does not speak.
type CheckpointFormatError struct {
	Path   string
	Reason string
}

func (e *CheckpointFormatError) Error() string {
	return fmt.Sprintf("cluster: checkpoint %s: %s", e.Path, e.Reason)
}

// CheckpointChecksumError reports a checkpoint whose payload does not
// match its recorded checksum — truncation or corruption.
type CheckpointChecksumError struct {
	Path string
	Want string
	Got  string
}

func (e *CheckpointChecksumError) Error() string {
	return fmt.Sprintf("cluster: checkpoint %s: payload checksum mismatch (file says %s, payload hashes to %s)",
		e.Path, e.Want, e.Got)
}

// checkpointFile is the on-disk wrapper.
type checkpointFile struct {
	Magic   string          `json:"magic"`
	Version int             `json:"version"`
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// checkpointPayload is the cluster-run coordinate. NextArrival is the
// index of the first trace arrival not yet processed; everything at
// earlier indices (and every lifecycle event before the pause instant)
// is fully reflected in the machine snapshots and counters.
type checkpointPayload struct {
	Scenario    string `json:"scenario"`
	Placement   string `json:"placement"`
	NextArrival int    `json:"next_arrival"`
	// Placed is the per-machine placement count (len == len(Machines)).
	Placed []int `json:"placed"`
	// Assignments is the per-trace-arrival machine log; present only
	// when the run recorded assignments.
	Assignments []int `json:"assignments,omitempty"`
	// PlacementState is the placement policy's PlacementSnapshot payload.
	PlacementState json.RawMessage `json:"placement_state,omitempty"`
	// Machines holds every machine's full advancement coordinate, in
	// index order (joined machines extend the initial fleet).
	Machines []*sim.MachineSnapshot `json:"machines"`
	// Lifecycle is the engine's coordinate; nil for lifecycle-free runs.
	Lifecycle *engineSnapshot `json:"lifecycle,omitempty"`
}

// Checkpoint is a decoded, checksum-verified checkpoint, ready to hand
// to Config.Resume.
type Checkpoint struct {
	payload checkpointPayload
}

// Scenario returns the checkpointed run's scenario name; Run
// cross-checks it against the resumed scenario.
func (c *Checkpoint) Scenario() string { return c.payload.Scenario }

// Placement returns the checkpointed run's placement policy name.
func (c *Checkpoint) Placement() string { return c.payload.Placement }

// NextArrival returns the index of the first unprocessed trace arrival
// — how far the checkpointed run got.
func (c *Checkpoint) NextArrival() int { return c.payload.NextArrival }

// Machines returns the checkpointed fleet size.
func (c *Checkpoint) Machines() int { return len(c.payload.Machines) }

// writeCheckpointPayload serializes and atomically writes one
// checkpoint. The checksum is computed over the marshaled payload bytes
// exactly as embedded in the wrapper.
func writeCheckpointPayload(path string, p *checkpointPayload) error {
	raw, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("cluster: marshal checkpoint: %w", err)
	}
	sum := sha256.Sum256(raw)
	out, err := json.Marshal(&checkpointFile{
		Magic:   checkpointMagic,
		Version: CheckpointVersion,
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: raw,
	})
	if err != nil {
		return fmt.Errorf("cluster: marshal checkpoint: %w", err)
	}
	out = append(out, '\n')
	if err := atomicfile.WriteFile(path, out, 0o644); err != nil {
		return fmt.Errorf("cluster: write checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint loads and verifies a checkpoint file: magic, version,
// then payload checksum, each failure a typed error.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: read checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, &CheckpointFormatError{Path: path, Reason: fmt.Sprintf("not a checkpoint file: %v", err)}
	}
	if f.Magic != checkpointMagic {
		return nil, &CheckpointFormatError{Path: path, Reason: fmt.Sprintf("bad magic %q", f.Magic)}
	}
	if f.Version != CheckpointVersion {
		return nil, &CheckpointFormatError{Path: path,
			Reason: fmt.Sprintf("version %d, this build reads version %d", f.Version, CheckpointVersion)}
	}
	sum := sha256.Sum256(f.Payload)
	if got := hex.EncodeToString(sum[:]); got != f.SHA256 {
		return nil, &CheckpointChecksumError{Path: path, Want: f.SHA256, Got: got}
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(f.Payload, &ck.payload); err != nil {
		return nil, &CheckpointFormatError{Path: path, Reason: fmt.Sprintf("malformed payload: %v", err)}
	}
	if len(ck.payload.Placed) != len(ck.payload.Machines) {
		return nil, &CheckpointFormatError{Path: path,
			Reason: fmt.Sprintf("%d placement counts for %d machines", len(ck.payload.Placed), len(ck.payload.Machines))}
	}
	if ck.payload.NextArrival < 0 {
		return nil, &CheckpointFormatError{Path: path,
			Reason: fmt.Sprintf("negative next-arrival index %d", ck.payload.NextArrival)}
	}
	return ck, nil
}

// captureCheckpoint assembles the payload at an arrival-boundary pause
// point. eng is nil for lifecycle-free runs.
func captureCheckpoint(cfg *Config, scnName string, pool *fleetPool, nextArrival int, placed, assignments []int, eng *engine) (*checkpointPayload, error) {
	ps, ok := cfg.Placement.(PlacementSnapshotter)
	if !ok { // validated up-front; defensive here
		return nil, &sim.SnapshotUnsupportedError{What: fmt.Sprintf("placement policy %T", cfg.Placement)}
	}
	pstate, err := ps.PlacementSnapshot()
	if err != nil {
		return nil, fmt.Errorf("cluster: snapshot placement: %w", err)
	}
	p := &checkpointPayload{
		Scenario:       scnName,
		Placement:      cfg.Placement.Name(),
		NextArrival:    nextArrival,
		Placed:         append([]int(nil), placed...),
		Assignments:    append([]int(nil), assignments...),
		PlacementState: pstate,
		Machines:       make([]*sim.MachineSnapshot, len(pool.machines)),
	}
	for i, m := range pool.machines {
		snap, err := m.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("cluster: machine %d: %w", i, err)
		}
		p.Machines[i] = snap
	}
	if eng != nil {
		p.Lifecycle = eng.snapshot()
	}
	return p, nil
}
