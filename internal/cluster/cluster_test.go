package cluster_test

import (
	"reflect"
	"testing"
	"time"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/cluster"
	"github.com/faircache/lfoc/internal/core"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/profiles"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/sim/scenario"
	"github.com/faircache/lfoc/internal/workloads"
)

func clusterSimConfig(plat *machine.Platform) sim.Config {
	return sim.Config{
		Plat:         plat,
		TargetInsns:  500_000_000,
		PolicyPeriod: 100 * time.Millisecond,
	}
}

func pool(names ...string) []*appmodel.Spec {
	out := make([]*appmodel.Spec, len(names))
	for i, n := range names {
		out[i] = profiles.MustGet(n)
	}
	return out
}

func stockFactory(plat *machine.Platform) func(int) (sim.Dynamic, error) {
	return func(int) (sim.Dynamic, error) { return policy.NewStockDynamic(plat.Ways), nil }
}

func lfocFactory(plat *machine.Platform) func(int) (sim.Dynamic, error) {
	return func(int) (sim.Dynamic, error) {
		return core.NewController(core.DefaultParams(plat.Ways), plat.WayBytes)
	}
}

// An N=1 cluster must reproduce RunOpen bit-for-bit: same trace, same
// policy, same config — the cluster layer adds routing, not physics.
func TestClusterN1GoldenVsRunOpen(t *testing.T) {
	plat := machine.Skylake()
	cfg := clusterSimConfig(plat)
	mkScn := func() *scenario.Open {
		scn, err := scenario.NewPoisson("golden", pool("xalancbmk06", "lbm06", "povray06", "libquantum06"), 8, 3, 42)
		if err != nil {
			t.Fatal(err)
		}
		return scn
	}

	ctrl, err := core.NewController(core.DefaultParams(plat.Ways), plat.WayBytes)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.RunOpen(cfg, mkScn(), ctrl)
	if err != nil {
		t.Fatal(err)
	}

	res, err := cluster.Run(cluster.Config{Sim: cfg, Machines: 1, Placement: cluster.NewRoundRobin()},
		mkScn(), lfocFactory(plat))
	if err != nil {
		t.Fatal(err)
	}
	got := res.PerMachine[0].Open
	if !reflect.DeepEqual(got, want) {
		if got.Series.Fingerprint() != want.Series.Fingerprint() {
			t.Errorf("series diverge:\n cluster %s\n solo    %s", got.Series.Fingerprint(), want.Series.Fingerprint())
		}
		if len(got.Apps) != len(want.Apps) {
			t.Fatalf("populations diverge: %d vs %d", len(got.Apps), len(want.Apps))
		}
		for i := range got.Apps {
			if got.Apps[i] != want.Apps[i] {
				t.Errorf("app %d diverges:\n cluster %+v\n solo    %+v", i, got.Apps[i], want.Apps[i])
			}
		}
		t.Errorf("N=1 cluster result not bit-identical to RunOpen:\n cluster %+v\n solo    %+v",
			*got, *want)
	}
	// Cluster-wide aggregates of a single machine collapse to the
	// machine's own numbers.
	if res.Departed != want.Departed || res.Remaining != want.Remaining {
		t.Errorf("aggregate departed/remaining %d/%d, want %d/%d",
			res.Departed, res.Remaining, want.Departed, want.Remaining)
	}
	if res.MeanSlowdown != want.MeanSlowdown {
		t.Errorf("aggregate mean slowdown %v, want %v", res.MeanSlowdown, want.MeanSlowdown)
	}
}

// Machines inside a cluster are independent: replaying each machine's
// split sub-trace through a solo RunOpen must reproduce that machine's
// cluster result exactly.
func TestClusterSplitTraceEquivalence(t *testing.T) {
	plat := machine.Small(8, 4)
	cfg := clusterSimConfig(plat)
	const machines = 3
	scn, err := scenario.NewPoisson("split", pool("xalancbmk06", "lbm06", "povray06", "namd06"), 10, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(cluster.Config{Sim: cfg, Machines: machines, Placement: cluster.NewLeastLoaded()},
		scn, stockFactory(plat))
	if err != nil {
		t.Fatal(err)
	}

	split, err := workloads.SplitArrivals(scn.Arrivals(), res.Assignments, machines)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < machines; m++ {
		if len(split[m]) == 0 {
			t.Errorf("machine %d got no arrivals; least-loaded should spread %d arrivals", m, len(scn.Arrivals()))
			continue
		}
		sub, err := scenario.NewTrace(scn.Name(), nil, split[m])
		if err != nil {
			t.Fatal(err)
		}
		solo, err := sim.RunOpen(cfg, sub, policy.NewStockDynamic(plat.Ways))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.PerMachine[m].Open, solo) {
			t.Errorf("machine %d: cluster result differs from solo replay of its sub-trace", m)
		}
	}
}

// Identical (scenario, seed, placement, policy) inputs must reproduce
// the whole cluster result. CI runs this under -race, which also
// exercises the concurrent drain.
func TestClusterDeterminism(t *testing.T) {
	plat := machine.Small(8, 4)
	cfg := clusterSimConfig(plat)
	for _, placement := range []string{"rr", "least", "fair"} {
		run := func() *cluster.Result {
			scn, err := scenario.NewPoisson("det", pool("xalancbmk06", "lbm06", "povray06", "soplex06"), 10, 2, 11)
			if err != nil {
				t.Fatal(err)
			}
			p, err := cluster.NewPlacement(placement, plat)
			if err != nil {
				t.Fatal(err)
			}
			res, err := cluster.Run(cluster.Config{Sim: cfg, Machines: 4, Placement: p}, scn, lfocFactory(plat))
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("placement %q: same inputs, different cluster results", placement)
		}
		if got := len(a.Assignments); got != len(a.PerMachine[0].Open.Apps)+len(a.PerMachine[1].Open.Apps)+
			len(a.PerMachine[2].Open.Apps)+len(a.PerMachine[3].Open.Apps) {
			t.Errorf("placement %q: %d assignments but machine populations disagree", placement, got)
		}
	}
}

// The fleet-wide series must conserve counts: arrivals, departures and
// completed runs across machines sum into the merged series.
func TestClusterSeriesConservation(t *testing.T) {
	plat := machine.Small(8, 4)
	cfg := clusterSimConfig(plat)
	scn, err := scenario.NewPoisson("conserve", pool("xalancbmk06", "lbm06", "povray06"), 12, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(cluster.Config{Sim: cfg, Machines: 2, Placement: cluster.NewRoundRobin()},
		scn, stockFactory(plat))
	if err != nil {
		t.Fatal(err)
	}
	var wantArr, gotArr, wantRuns, gotRuns int
	for _, m := range res.PerMachine {
		for _, p := range m.Open.Series.Points {
			wantArr += p.Arrivals
			wantRuns += p.RunsCompleted
		}
	}
	for _, p := range res.Series.Points {
		gotArr += p.Arrivals
		gotRuns += p.RunsCompleted
	}
	if gotArr != wantArr || gotRuns != wantRuns {
		t.Errorf("merged series arrivals/runs = %d/%d, machines sum %d/%d", gotArr, gotRuns, wantArr, wantRuns)
	}
	if res.Departed+res.Remaining != len(res.Assignments) {
		t.Errorf("departed %d + remaining %d != %d placed arrivals",
			res.Departed, res.Remaining, len(res.Assignments))
	}
	if res.Summary.Unfairness < 1 {
		t.Errorf("cluster unfairness %v < 1", res.Summary.Unfairness)
	}
}

func TestClusterRejectsBadConfig(t *testing.T) {
	plat := machine.Small(8, 4)
	cfg := clusterSimConfig(plat)
	scn, err := scenario.NewPoisson("bad", pool("povray06"), 5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Run(cluster.Config{Sim: cfg, Machines: 0, Placement: cluster.NewRoundRobin()},
		scn, stockFactory(plat)); err == nil {
		t.Error("zero machines accepted")
	}
	if _, err := cluster.Run(cluster.Config{Machines: 2, Placement: cluster.NewRoundRobin()},
		scn, stockFactory(plat)); err == nil {
		t.Error("zero-value sim config (nil platform) accepted")
	}
	if _, err := cluster.Run(cluster.Config{Sim: cfg, Machines: 2}, scn, stockFactory(plat)); err == nil {
		t.Error("nil placement accepted")
	}
	if _, err := cluster.Run(cluster.Config{Sim: cfg, Machines: 2, Placement: cluster.NewRoundRobin()},
		scn, nil); err == nil {
		t.Error("nil policy factory accepted")
	}
}
