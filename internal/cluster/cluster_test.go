package cluster_test

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/cluster"
	"github.com/faircache/lfoc/internal/core"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/profiles"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/sim/scenario"
	"github.com/faircache/lfoc/internal/workloads"
)

func clusterSimConfig(plat *machine.Platform) sim.Config {
	return sim.Config{
		Plat:         plat,
		TargetInsns:  500_000_000,
		PolicyPeriod: 100 * time.Millisecond,
	}
}

func pool(names ...string) []*appmodel.Spec {
	out := make([]*appmodel.Spec, len(names))
	for i, n := range names {
		out[i] = profiles.MustGet(n)
	}
	return out
}

func stockFactory(plat *machine.Platform) func(int) (sim.Dynamic, error) {
	return func(int) (sim.Dynamic, error) { return policy.NewStockDynamic(plat.Ways), nil }
}

func lfocFactory(plat *machine.Platform) func(int) (sim.Dynamic, error) {
	return func(int) (sim.Dynamic, error) {
		return core.NewController(core.DefaultParams(plat.Ways), plat.WayBytes)
	}
}

// An N=1 cluster must reproduce RunOpen bit-for-bit: same trace, same
// policy, same config — the cluster layer adds routing, not physics.
func TestClusterN1GoldenVsRunOpen(t *testing.T) {
	plat := machine.Skylake()
	cfg := clusterSimConfig(plat)
	mkScn := func() *scenario.Open {
		scn, err := scenario.NewPoisson("golden", pool("xalancbmk06", "lbm06", "povray06", "libquantum06"), 8, 3, 42)
		if err != nil {
			t.Fatal(err)
		}
		return scn
	}

	ctrl, err := core.NewController(core.DefaultParams(plat.Ways), plat.WayBytes)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.RunOpen(cfg, mkScn(), ctrl)
	if err != nil {
		t.Fatal(err)
	}

	res, err := cluster.Run(cluster.Config{Sim: cfg, Machines: 1, Placement: cluster.NewRoundRobin()},
		mkScn(), lfocFactory(plat))
	if err != nil {
		t.Fatal(err)
	}
	got := res.PerMachine[0].Open
	if !reflect.DeepEqual(got, want) {
		if got.Series.Fingerprint() != want.Series.Fingerprint() {
			t.Errorf("series diverge:\n cluster %s\n solo    %s", got.Series.Fingerprint(), want.Series.Fingerprint())
		}
		if len(got.Apps) != len(want.Apps) {
			t.Fatalf("populations diverge: %d vs %d", len(got.Apps), len(want.Apps))
		}
		for i := range got.Apps {
			if got.Apps[i] != want.Apps[i] {
				t.Errorf("app %d diverges:\n cluster %+v\n solo    %+v", i, got.Apps[i], want.Apps[i])
			}
		}
		t.Errorf("N=1 cluster result not bit-identical to RunOpen:\n cluster %+v\n solo    %+v",
			*got, *want)
	}
	// Cluster-wide aggregates of a single machine collapse to the
	// machine's own numbers.
	if res.Departed != want.Departed || res.Remaining != want.Remaining {
		t.Errorf("aggregate departed/remaining %d/%d, want %d/%d",
			res.Departed, res.Remaining, want.Departed, want.Remaining)
	}
	if res.MeanSlowdown != want.MeanSlowdown {
		t.Errorf("aggregate mean slowdown %v, want %v", res.MeanSlowdown, want.MeanSlowdown)
	}
}

// An over-subscribed time-zero fleet must actually run: initial apps
// beyond a machine's core count start in its admission queue (like
// arrivals on a full machine) and are admitted as residents depart, so
// the whole population eventually completes.
func TestClusterOverCapacityTimeZeroRuns(t *testing.T) {
	plat := machine.Small(8, 2)
	cfg := clusterSimConfig(plat)
	initial := pool("povray06", "namd06", "povray06", "namd06", "povray06", "namd06", "povray06")
	scn, err := scenario.NewTrace("overcap", initial, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 7 initial apps over 2 machines × 2 cores: 4 cores' worth start
	// resident, 3 start queued.
	res, err := cluster.Run(cluster.Config{Sim: cfg, Machines: 2, Placement: cluster.NewLeastLoaded()},
		scn, stockFactory(plat))
	if err != nil {
		t.Fatal(err)
	}
	if res.Departed != len(initial) || res.Remaining != 0 {
		t.Errorf("departed %d remaining %d, want all %d initial apps to complete",
			res.Departed, res.Remaining, len(initial))
	}
	queued := 0
	for _, m := range res.PerMachine {
		for _, a := range m.Open.Apps {
			if a.WaitSeconds > 0 {
				queued++
			}
		}
	}
	if queued != 3 {
		t.Errorf("%d apps report queue wait, want the 3 over-capacity initial apps", queued)
	}
}

// Machines with different policy cadences collect metric windows of
// different widths unless MetricsWindow is set explicitly; the mismatch
// must be rejected before any machine simulates, and an explicit common
// window must make the same fleet run.
func TestClusterMixedCadenceNeedsExplicitWindow(t *testing.T) {
	plat := machine.Small(8, 4)
	fast := clusterSimConfig(plat)
	slow := fast
	slow.PolicyPeriod = 2 * fast.PolicyPeriod
	cfg := cluster.Config{Fleet: []sim.Config{fast, slow}}
	if _, err := cfg.MachineConfigs(); err == nil {
		t.Fatal("mixed-cadence fleet without explicit MetricsWindow accepted")
	}
	fast.MetricsWindow = fast.PolicyPeriod
	slow.MetricsWindow = fast.PolicyPeriod
	scn, err := scenario.NewPoisson("cadence", pool("povray06", "lbm06"), 6, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(cluster.Config{Fleet: []sim.Config{fast, slow}, Placement: cluster.NewRoundRobin()},
		scn, stockFactory(plat))
	if err != nil {
		t.Fatal(err)
	}
	if res.Series.Width != fast.MetricsWindow.Seconds() {
		t.Errorf("merged width %v, want %v", res.Series.Width, fast.MetricsWindow.Seconds())
	}
}

// A homogeneous fleet expressed through the per-machine Fleet list must
// be byte-identical to the Sim+Machines shorthand: the heterogeneous
// config path adds expressiveness, not physics.
func TestClusterHomogeneousFleetConfigEquivalence(t *testing.T) {
	plat := machine.Small(8, 4)
	cfg := clusterSimConfig(plat)
	mkScn := func() *scenario.Open {
		scn, err := scenario.NewPoisson("hom-fleet", pool("xalancbmk06", "lbm06", "povray06"), 10, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		return scn
	}
	want, err := cluster.Run(cluster.Config{Sim: cfg, Machines: 3, Placement: cluster.NewLeastLoaded()},
		mkScn(), lfocFactory(plat))
	if err != nil {
		t.Fatal(err)
	}
	got, err := cluster.Run(cluster.Config{Fleet: []sim.Config{cfg, cfg, cfg}, Placement: cluster.NewLeastLoaded()},
		mkScn(), lfocFactory(plat))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fleet-config homogeneous run differs from Sim+Machines run:\n fleet %s\n plain %s",
			got.Series.Fingerprint(), want.Series.Fingerprint())
	}
}

// An N=1 cluster built from a heterogeneous-config Fleet entry must
// reproduce RunOpen on that same config bit-for-bit, exactly like the
// homogeneous N=1 golden.
func TestClusterHeterogeneousN1GoldenVsRunOpen(t *testing.T) {
	plat := machine.Small(7, 4)
	cfg := clusterSimConfig(plat)
	mkScn := func() *scenario.Open {
		scn, err := scenario.NewPoisson("het-golden", pool("xalancbmk06", "lbm06", "povray06"), 8, 3, 13)
		if err != nil {
			t.Fatal(err)
		}
		return scn
	}
	want, err := sim.RunOpen(cfg, mkScn(), policy.NewStockDynamic(plat.Ways))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(cluster.Config{Fleet: []sim.Config{cfg}, Placement: cluster.NewRoundRobin()},
		mkScn(), stockFactory(plat))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.PerMachine[0].Open, want) {
		t.Errorf("heterogeneous-config N=1 cluster not bit-identical to RunOpen:\n cluster %s\n solo    %s",
			res.PerMachine[0].Open.Series.Fingerprint(), want.Series.Fingerprint())
	}
	if res.PerMachine[0].Ways != plat.Ways || res.PerMachine[0].Cores != plat.Cores {
		t.Errorf("machine reports %dw/%dc, want %dw/%dc",
			res.PerMachine[0].Ways, res.PerMachine[0].Cores, plat.Ways, plat.Cores)
	}
}

// Heterogeneous machines stay independent too: each machine of a mixed
// fleet must equal a solo RunOpen replay of its split sub-trace on its
// own platform with its own policy.
func TestClusterHeterogeneousSplitTraceEquivalence(t *testing.T) {
	base := clusterSimConfig(machine.Small(8, 4))
	fleet, err := cluster.ParseMachineMix("1x8way4c,1x5way3c", base)
	if err != nil {
		t.Fatal(err)
	}
	scn, err := scenario.NewPoisson("het-split", pool("xalancbmk06", "lbm06", "povray06", "namd06"), 10, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(cluster.Config{Fleet: fleet, Placement: cluster.NewLeastLoaded(), RecordAssignments: true},
		scn, func(i int) (sim.Dynamic, error) {
			return policy.NewStockDynamic(fleet[i].Plat.Ways), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	split, err := workloads.SplitArrivals(scn.Arrivals(), res.Assignments, len(fleet))
	if err != nil {
		t.Fatal(err)
	}
	for m := range fleet {
		if len(split[m]) == 0 {
			t.Errorf("machine %d got no arrivals", m)
			continue
		}
		sub, err := scenario.NewTrace(scn.Name(), nil, split[m])
		if err != nil {
			t.Fatal(err)
		}
		solo, err := sim.RunOpen(fleet[m], sub, policy.NewStockDynamic(fleet[m].Plat.Ways))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.PerMachine[m].Open, solo) {
			t.Errorf("machine %d (%s): cluster result differs from solo replay on its own platform",
				m, res.PerMachine[m].Platform)
		}
	}
}

// Parallel fleet advancement must be bit-identical to the serial loop:
// machines share nothing between placement points, so neither the
// worker-pool size nor GOMAXPROCS may perturb any result. CI runs this
// under -race, which also exercises the pool itself.
func TestClusterParallelAdvanceDeterminism(t *testing.T) {
	base := clusterSimConfig(machine.Small(8, 4))
	fleet, err := cluster.ParseMachineMix("2x8way4c,2x5way4c", base)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *cluster.Result {
		scn, err := scenario.NewPoisson("par-det", pool("xalancbmk06", "lbm06", "povray06", "soplex06"), 12, 2, 11)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cluster.Run(
			cluster.Config{Fleet: fleet, Placement: cluster.NewLeastLoaded(), Workers: workers},
			scn, func(i int) (sim.Dynamic, error) {
				return policy.NewStockDynamic(fleet[i].Plat.Ways), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, workers := range []int{2, 4} {
		if got := run(workers); !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d: parallel advancement diverges from serial:\n parallel %s\n serial   %s",
				workers, got.Series.Fingerprint(), serial.Series.Fingerprint())
		}
	}
	// The acceptance knob is GOMAXPROCS (Workers defaults to it): the
	// same run must be bit-identical at GOMAXPROCS 1 and 4.
	prev := runtime.GOMAXPROCS(1)
	gm1 := run(0)
	runtime.GOMAXPROCS(4)
	gm4 := run(0)
	runtime.GOMAXPROCS(prev)
	if !reflect.DeepEqual(gm1, gm4) {
		t.Error("GOMAXPROCS=1 and GOMAXPROCS=4 cluster results differ")
	}
}

// Machines inside a cluster are independent: replaying each machine's
// split sub-trace through a solo RunOpen must reproduce that machine's
// cluster result exactly.
func TestClusterSplitTraceEquivalence(t *testing.T) {
	plat := machine.Small(8, 4)
	cfg := clusterSimConfig(plat)
	const machines = 3
	scn, err := scenario.NewPoisson("split", pool("xalancbmk06", "lbm06", "povray06", "namd06"), 10, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(cluster.Config{Sim: cfg, Machines: machines, Placement: cluster.NewLeastLoaded(), RecordAssignments: true},
		scn, stockFactory(plat))
	if err != nil {
		t.Fatal(err)
	}

	split, err := workloads.SplitArrivals(scn.Arrivals(), res.Assignments, machines)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < machines; m++ {
		if len(split[m]) == 0 {
			t.Errorf("machine %d got no arrivals; least-loaded should spread %d arrivals", m, len(scn.Arrivals()))
			continue
		}
		sub, err := scenario.NewTrace(scn.Name(), nil, split[m])
		if err != nil {
			t.Fatal(err)
		}
		solo, err := sim.RunOpen(cfg, sub, policy.NewStockDynamic(plat.Ways))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.PerMachine[m].Open, solo) {
			t.Errorf("machine %d: cluster result differs from solo replay of its sub-trace", m)
		}
	}
}

// Identical (scenario, seed, placement, policy) inputs must reproduce
// the whole cluster result. CI runs this under -race, which also
// exercises the concurrent drain.
func TestClusterDeterminism(t *testing.T) {
	plat := machine.Small(8, 4)
	cfg := clusterSimConfig(plat)
	for _, placement := range []string{"rr", "least", "fair"} {
		run := func() *cluster.Result {
			scn, err := scenario.NewPoisson("det", pool("xalancbmk06", "lbm06", "povray06", "soplex06"), 10, 2, 11)
			if err != nil {
				t.Fatal(err)
			}
			p, err := cluster.NewPlacement(placement, plat)
			if err != nil {
				t.Fatal(err)
			}
			res, err := cluster.Run(cluster.Config{Sim: cfg, Machines: 4, Placement: p, RecordAssignments: true}, scn, lfocFactory(plat))
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("placement %q: same inputs, different cluster results", placement)
		}
		if got := len(a.Assignments); got != len(a.PerMachine[0].Open.Apps)+len(a.PerMachine[1].Open.Apps)+
			len(a.PerMachine[2].Open.Apps)+len(a.PerMachine[3].Open.Apps) {
			t.Errorf("placement %q: %d assignments but machine populations disagree", placement, got)
		}
	}
}

// The fleet-wide series must conserve counts: arrivals, departures and
// completed runs across machines sum into the merged series.
func TestClusterSeriesConservation(t *testing.T) {
	plat := machine.Small(8, 4)
	cfg := clusterSimConfig(plat)
	scn, err := scenario.NewPoisson("conserve", pool("xalancbmk06", "lbm06", "povray06"), 12, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(cluster.Config{Sim: cfg, Machines: 2, Placement: cluster.NewRoundRobin(), RecordAssignments: true},
		scn, stockFactory(plat))
	if err != nil {
		t.Fatal(err)
	}
	var wantArr, gotArr, wantRuns, gotRuns int
	for _, m := range res.PerMachine {
		for _, p := range m.Open.Series.Points {
			wantArr += p.Arrivals
			wantRuns += p.RunsCompleted
		}
	}
	for _, p := range res.Series.Points {
		gotArr += p.Arrivals
		gotRuns += p.RunsCompleted
	}
	if gotArr != wantArr || gotRuns != wantRuns {
		t.Errorf("merged series arrivals/runs = %d/%d, machines sum %d/%d", gotArr, gotRuns, wantArr, wantRuns)
	}
	if res.Departed+res.Remaining != len(res.Assignments) {
		t.Errorf("departed %d + remaining %d != %d placed arrivals",
			res.Departed, res.Remaining, len(res.Assignments))
	}
	if res.Summary.Unfairness < 1 {
		t.Errorf("cluster unfairness %v < 1", res.Summary.Unfairness)
	}
}

func TestClusterRejectsBadConfig(t *testing.T) {
	plat := machine.Small(8, 4)
	cfg := clusterSimConfig(plat)
	scn, err := scenario.NewPoisson("bad", pool("povray06"), 5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Run(cluster.Config{Sim: cfg, Machines: 0, Placement: cluster.NewRoundRobin()},
		scn, stockFactory(plat)); err == nil {
		t.Error("zero machines accepted")
	}
	if _, err := cluster.Run(cluster.Config{Machines: 2, Placement: cluster.NewRoundRobin()},
		scn, stockFactory(plat)); err == nil {
		t.Error("zero-value sim config (nil platform) accepted")
	}
	if _, err := cluster.Run(cluster.Config{Sim: cfg, Machines: 2}, scn, stockFactory(plat)); err == nil {
		t.Error("nil placement accepted")
	}
	if _, err := cluster.Run(cluster.Config{Sim: cfg, Machines: 2, Placement: cluster.NewRoundRobin()},
		scn, nil); err == nil {
		t.Error("nil policy factory accepted")
	}
}
