package cluster

import (
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/sim"
)

// MigrationPolicy decides where an application displaced by a machine
// drain goes: live-migrate it (progress preserved, modeled cost paid)
// or requeue it through normal placement (progress forfeited). One
// instance per cluster run, like Policy.
type MigrationPolicy interface {
	// Name labels the policy in results and errors.
	Name() string
	// Migrate returns the MachineState.Index of the destination machine,
	// or a negative value to requeue the resident FIFO instead.
	// candidates holds the up machines in index order (never the drained
	// machine itself); the chosen destination must have a free core —
	// live migration cannot park an app in an admission queue. Queued
	// residents are requeued by the engine and never offered here.
	Migrate(r sim.Resident, candidates []MachineState) int
}

// CostAwareMigration is the default drain-migration policy: it weighs
// the modeled migration cost against the predicted win. The win of a
// live migration is the resident's preserved progress — its accumulated
// alone-clock, which a requeue forfeits entirely — so a resident
// migrates only when AloneSeconds exceeds Cost; young applications are
// cheaper to restart than to move. Among the candidate machines with a
// free core, the destination is the one whose residents plus the
// migrant predict the lowest unfairness under the sharing model (the
// same full-LLC scoring the fairness-aware placement uses, evaluated on
// each candidate's own platform), ties to the lower index.
type CostAwareMigration struct {
	// Cost is the modeled migration cost in simulated seconds (state
	// transfer, cache re-warm). Zero migrates every resident with a
	// destination available.
	Cost float64

	ref   *machine.Platform
	evals map[*machine.Platform]*platformEval
	sds   []float64
}

// NewCostAwareMigration returns the default migration policy. plat is
// the fallback platform for candidates whose state carries none.
func NewCostAwareMigration(cost float64, plat *machine.Platform) *CostAwareMigration {
	c := &CostAwareMigration{Cost: cost, ref: plat, evals: map[*machine.Platform]*platformEval{}}
	c.evals[plat] = newPlatformEval(plat)
	return c
}

// Name implements MigrationPolicy.
func (c *CostAwareMigration) Name() string { return "cost-aware" }

func (c *CostAwareMigration) evalFor(plat *machine.Platform) *platformEval {
	if plat == nil {
		plat = c.ref
	}
	pe, ok := c.evals[plat]
	if !ok {
		pe = newPlatformEval(plat)
		c.evals[plat] = pe
	}
	return pe
}

// Migrate implements MigrationPolicy.
func (c *CostAwareMigration) Migrate(r sim.Resident, candidates []MachineState) int {
	if r.Queued || r.AloneSeconds <= c.Cost {
		return -1
	}
	ph := &r.Spec.Phases[r.PhaseIndex]
	best, bestScore := -1, 0.0
	for _, m := range candidates {
		if m.Load() >= m.Cores {
			continue // live migration needs a free core right now
		}
		pe := c.evalFor(m.Plat)
		var score float64
		score, c.sds = pe.predictedUnfairness(m.Phases, ph, c.sds)
		if best < 0 || score < bestScore {
			best, bestScore = m.Index, score
		}
	}
	return best
}
