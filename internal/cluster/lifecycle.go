// Machine lifecycle layer: a seeded, heap-ordered event timeline
// (joins, drains, failures, scheduled and load-triggered autoscaling)
// interleaved bit-exactly with the arrival stream.
//
// Ordering rules. The timeline is a binary heap keyed by (time, seq):
// seq is the insertion order, so events scheduled earlier fire first at
// equal times, and dynamically scheduled events (retries) fire after
// every event that existed when they were created. At an instant where
// both an event and a trace arrival are due, the event is processed
// first — a machine drained at t never sees the arrival at t. All event
// handling is serial (it is placement-layer work, the cluster's one
// synchronization point), so results are bit-identical for every worker
// count; randomness (MTBF failure times, victim choice) comes from
// dedicated seeded streams fixed before the run starts.
//
// Degradation contract: placement never errors for lack of capacity.
// Arrivals (and requeued residents) that find zero up machines are
// parked FIFO and flushed through normal placement at the next join;
// if no machine ever returns they are reported as unplaced/remaining,
// so a run with the whole fleet down still completes.
package cluster

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/faircache/lfoc/internal/metrics"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

// EventKind distinguishes the scheduled machine lifecycle events.
type EventKind int

const (
	// MachineJoin adds a machine to the fleet at the event time.
	MachineJoin EventKind = iota
	// MachineDrain takes a machine out of service gracefully: residents
	// are migrated (policy permitting) or requeued FIFO, nothing is lost.
	MachineDrain
	// MachineFail kills a machine: in-flight applications lose their
	// progress and are requeued with bounded retry plus exponential
	// backoff, dead-lettered when the retry budget is exhausted.
	MachineFail
)

func (k EventKind) String() string {
	switch k {
	case MachineJoin:
		return "join"
	case MachineDrain:
		return "drain"
	case MachineFail:
		return "fail"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one scheduled machine lifecycle event.
type Event struct {
	// Time is the event instant in simulated seconds.
	Time float64
	Kind EventKind
	// Machine is the drain/fail target (a MachineState.Index; joined
	// machines extend the index space). A drain or fail whose target is
	// already down is skipped — with MTBF failures in play a scheduled
	// event can race a random one, and losing the race is not an error.
	Machine int
	// Config is the joining machine's simulator configuration (nil
	// inherits machine 0's). Its metrics window must match the fleet's.
	Config *sim.Config
}

// Autoscale configures load-triggered fleet scaling, evaluated at a
// fixed cadence against the up machines' load/capacity ratio.
type Autoscale struct {
	// Interval is the check cadence in simulated seconds (> 0).
	Interval float64
	// Up adds a machine when load/capacity ≥ Up (and the fleet is below
	// Max); Down drains the least-loaded machine when load/capacity ≤
	// Down (and the fleet is above Min). Load counts resident plus
	// queued plus parked applications; capacity counts up cores.
	Up   float64
	Down float64
	// Min and Max bound the number of up machines.
	Min int
	Max int
}

// Lifecycle configures the cluster's machine lifecycle layer. A nil (or
// event-free) Lifecycle is guaranteed zero-cost: cluster.Run takes
// exactly the historical per-arrival path and produces byte-identical
// results.
type Lifecycle struct {
	// Events is the scheduled event timeline (any order; the engine
	// orders by time, ties by list position).
	Events []Event
	// MTBF, when positive, injects random machine failures as a seeded
	// Poisson process with this mean time between failures (simulated
	// seconds), over the span of the arrival trace. Victims are drawn
	// uniformly from the up machines at each failure instant. Identical
	// (MTBF, FailureSeed, trace, schedule) inputs produce the identical
	// failure sequence.
	MTBF        float64
	FailureSeed int64
	// MaxRetries bounds failure-driven requeues per application (0
	// defaults to 3); an application failed more than MaxRetries times
	// is dead-lettered. RetryBackoff is the base delay of the
	// exponential backoff (0 defaults to 0.25 simulated seconds): the
	// n-th retry is scheduled RetryBackoff·2^(n-1) after the failure.
	MaxRetries   int
	RetryBackoff float64
	// MigrationCost is the modeled cost of one live migration in
	// simulated seconds, fed to the default CostAwareMigration policy
	// and reported as migration latency. Negative disables migration
	// entirely: drains requeue every resident.
	MigrationCost float64
	// Migration overrides the default cost-aware migration policy
	// (fresh instance per run, like Placement).
	Migration MigrationPolicy
	// Autoscale enables load-triggered scaling.
	Autoscale *Autoscale
	// JoinPolicy builds the partitioning policy for a machine joining
	// mid-run (index and config of the new machine). Required when a
	// join can happen — scheduled, or via Autoscale.
	JoinPolicy func(machine int, mc sim.Config) (sim.Dynamic, error)
}

// active reports whether the lifecycle layer can change anything: when
// false, Run takes the historical per-arrival path untouched.
func (l *Lifecycle) active() bool {
	return l != nil && (len(l.Events) > 0 || l.MTBF > 0 || l.Autoscale != nil)
}

// LifecycleSummary is the lifecycle layer's share of a cluster result.
type LifecycleSummary struct {
	// Events counts lifecycle events applied (scheduled, MTBF and
	// autoscale alike); Joins/Drains/Failures break them down.
	Events   int `json:"events"`
	Joins    int `json:"joins"`
	Drains   int `json:"drains"`
	Failures int `json:"failures"`
	// AutoscaleActions counts the joins/drains triggered by load.
	AutoscaleActions int `json:"autoscale_actions,omitempty"`
	// Disruptions counts applications displaced by drains and failures:
	// Migrations moved live (progress preserved), Requeues re-entered
	// placement from scratch, DeadLettered exhausted their retry budget.
	Disruptions  int `json:"disruptions"`
	Migrations   int `json:"migrations"`
	Requeues     int `json:"requeues"`
	DeadLettered int `json:"dead_lettered"`
	// Retries counts retry arrivals that actually re-entered placement
	// (a requeued app can be requeued again by a later failure).
	Retries int `json:"retries"`
	// Unplaced counts arrivals still parked when the run ended — they
	// found zero up machines and none ever joined. Also in Remaining.
	Unplaced int `json:"unplaced"`
	// FinalMachines is the number of up machines at the end; FleetSize
	// the total ever in the fleet (initial plus joined).
	FinalMachines int `json:"final_machines"`
	FleetSize     int `json:"fleet_size"`
	// Availability is the run-wide time-averaged fraction of existing
	// machines that were up.
	Availability float64 `json:"availability"`
	// MeanMigrationLatency / MeanRequeueLatency average the modeled
	// migration cost and the scheduled retry delays (drain requeues are
	// immediate and count as zero).
	MeanMigrationLatency float64 `json:"mean_migration_latency"`
	MeanRequeueLatency   float64 `json:"mean_requeue_latency"`
	// Series is the per-window lifecycle trajectory, aligned with the
	// cluster's windowed metric series.
	Series metrics.LifecycleSeries `json:"series"`
}

// timelineKind is the internal event vocabulary: the public Event kinds
// plus the engine's own retry and autoscale-check events.
type timelineKind int

const (
	tlJoin timelineKind = iota
	tlDrain
	tlFail
	tlRetry
	tlScale
)

// timelineEvent is one heap entry of the event timeline.
type timelineEvent struct {
	time    float64
	seq     int
	kind    timelineKind
	machine int          // drain/fail target; -1 = draw an MTBF victim
	cfg     *sim.Config  // join configuration
	res     sim.Resident // retry payload
	delay   float64      // the retry's scheduled backoff
}

// eventQueue is a (time, seq)-ordered binary heap — seq makes the order
// total, so equal-time events fire in scheduling order, deterministically.
type eventQueue []*timelineEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*timelineEvent)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// parkedArrival is an arrival that found zero up machines: it waits for
// a join. traceIdx indexes Result.Assignments for trace arrivals (-1
// for lifecycle requeues, which have no assignment slot).
type parkedArrival struct {
	arr      scenario.Arrival
	traceIdx int
}

// engine is the lifecycle state machine driving a cluster run with an
// active Lifecycle. Everything it does is serial placement-layer work.
type engine struct {
	cfg  *Config
	lc   *Lifecycle
	scn  *scenario.Open
	sims []sim.Config
	pool *fleetPool

	up       []bool
	nUp      int
	joinedAt []float64
	downAt   []float64
	failedAt []bool // down by failure (vs drain), for MachineResult.State

	placed      []int
	assignments []int // nil unless Config.RecordAssignments
	parked      []parkedArrival

	// q is the fleet event queue (nil under the eagerAdvance knob):
	// synchronization instants advance only due machines, and machines
	// the engine mutates at t — drain/fail victims before resident
	// extraction, migration destinations before resident injection —
	// get a targeted catch-up instead of riding a fleet barrier.
	q *fleetQueue
	// lastSync is the latest fleet synchronization instant — where Run
	// aligns every lazy clock before the final drain.
	lastSync float64

	evq     eventQueue
	seq     int
	victims *rand.Rand
	// ai is the next trace-arrival index — together with the heap, the
	// engine's checkpoint coordinate. staticFired counts popped events
	// that schedule() created (everything but retries); victimDraws is
	// the victim RNG's Intn call history. See lifecyclesnap.go.
	ai          int
	staticFired int
	victimDraws []int

	// Cooperative interruption (all set by Run): cancel and stopAfter
	// pause the run at the next loop top; save writes a periodic
	// checkpoint (nil when the run has none configured) every ckptEvery
	// simulated seconds; interrupted reports how run() ended.
	cancel      *sim.CancelFlag
	stopAfter   float64
	ckptEvery   float64
	lastCkpt    float64
	save        func() error
	interrupted bool

	migration  MigrationPolicy
	maxRetries int
	backoff    float64

	trk *lifeTracker
	sum LifecycleSummary

	resScratch  []sim.Resident
	candScratch []MachineState
}

func newEngine(cfg *Config, lc *Lifecycle, scn *scenario.Open, sims []sim.Config, pool *fleetPool, placed []int, nArrivals int) (*engine, error) {
	n := len(pool.machines)
	e := &engine{
		cfg:        cfg,
		lc:         lc,
		scn:        scn,
		sims:       sims,
		pool:       pool,
		up:         make([]bool, n),
		nUp:        n,
		joinedAt:   make([]float64, n),
		downAt:     make([]float64, n),
		failedAt:   make([]bool, n),
		placed:     placed,
		maxRetries: lc.MaxRetries,
		backoff:    lc.RetryBackoff,
	}
	for i := range e.up {
		e.up[i] = true
		e.downAt[i] = -1
	}
	if cfg.RecordAssignments {
		e.assignments = make([]int, nArrivals)
		for i := range e.assignments {
			e.assignments[i] = -1
		}
	}
	if e.maxRetries == 0 {
		e.maxRetries = 3
	}
	if e.backoff == 0 {
		e.backoff = 0.25
	}
	switch {
	case lc.Migration != nil:
		e.migration = lc.Migration
	case lc.MigrationCost >= 0:
		e.migration = NewCostAwareMigration(lc.MigrationCost, sims[0].Plat)
	}
	e.trk = newLifeTracker(sims[0].EffectiveMetricsWindow().Seconds(), n, n)
	return e, nil
}

// schedule seeds the timeline: the declared events, the MTBF failure
// process and the autoscale checks, all fixed before the run starts.
func (e *engine) schedule(arrivals []scenario.Arrival) error {
	for i, ev := range e.lc.Events {
		if ev.Time < 0 {
			return fmt.Errorf("cluster: lifecycle event %d at negative time %v", i, ev.Time)
		}
		var kind timelineKind
		switch ev.Kind {
		case MachineJoin:
			kind = tlJoin
		case MachineDrain:
			kind = tlDrain
		case MachineFail:
			kind = tlFail
		default:
			return fmt.Errorf("cluster: lifecycle event %d has unknown kind %v", i, ev.Kind)
		}
		if kind != tlJoin && ev.Machine < 0 {
			return fmt.Errorf("cluster: lifecycle event %d (%v) targets machine %d", i, ev.Kind, ev.Machine)
		}
		e.push(&timelineEvent{time: ev.Time, kind: kind, machine: ev.Machine, cfg: ev.Config})
	}
	end := 0.0
	if n := len(arrivals); n > 0 {
		end = arrivals[n-1].Time
	}
	if e.lc.MTBF > 0 {
		rng := rand.New(rand.NewSource(e.lc.FailureSeed))
		e.victims = rand.New(rand.NewSource(e.lc.FailureSeed + 1))
		for t := rng.ExpFloat64() * e.lc.MTBF; t < end; t += rng.ExpFloat64() * e.lc.MTBF {
			e.push(&timelineEvent{time: t, kind: tlFail, machine: -1})
		}
	}
	if as := e.lc.Autoscale; as != nil {
		if as.Interval <= 0 {
			return fmt.Errorf("cluster: autoscale interval must be positive, got %v", as.Interval)
		}
		if as.Max > 0 && as.Min > as.Max {
			return fmt.Errorf("cluster: autoscale Min %d exceeds Max %d", as.Min, as.Max)
		}
		for t := as.Interval; t < end; t += as.Interval {
			e.push(&timelineEvent{time: t, kind: tlScale})
		}
	}
	return nil
}

func (e *engine) push(ev *timelineEvent) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.evq, ev)
}

// run interleaves the event timeline with the arrival stream: at each
// step the earlier of (next event, next arrival) is processed, events
// first at equal times. With an empty timeline this degenerates to
// exactly the historical per-arrival loop.
//
// The loop top is the engine's checkpoint pause point: the next event
// is only peeked (not popped) before the fleet advances, so a
// cancellation caught mid-advance leaves the heap — and the whole
// engine coordinate — exactly as a checkpoint needs it. Event handling
// itself runs with the cancel flag masked: a drain or join mutates
// several machines out of band, and pausing halfway through would leave
// a coordinate no snapshot describes.
func (e *engine) run(arrivals []scenario.Arrival) error {
	for e.ai < len(arrivals) || e.evq.Len() > 0 {
		evNext := e.evq.Len() > 0 && (e.ai >= len(arrivals) || e.evq[0].time <= arrivals[e.ai].Time)
		var t float64
		if evNext {
			t = e.evq[0].time
		} else {
			t = arrivals[e.ai].Time
		}
		if e.cancel.Canceled() || (e.stopAfter > 0 && t >= e.stopAfter) {
			e.interrupted = true
			return nil
		}
		if e.save != nil && e.ckptEvery > 0 && t >= e.lastCkpt+e.ckptEvery {
			if err := e.save(); err != nil {
				return err
			}
			e.lastCkpt = t
		}
		if err := e.advance(t); err != nil {
			if errors.Is(err, sim.ErrCanceled) {
				e.interrupted = true
				return nil
			}
			return err
		}
		e.trk.advance(t)
		if evNext {
			ev := heap.Pop(&e.evq).(*timelineEvent)
			if ev.kind != tlRetry {
				e.staticFired++
			}
			e.cancel.Mask()
			err := e.handle(ev)
			e.cancel.Unmask()
			if err != nil {
				return err
			}
			continue
		}
		if err := e.place(arrivals[e.ai], e.ai); err != nil {
			return err
		}
		e.ai++
	}
	return nil
}

// advance synchronizes the fleet to instant t: due machines only via
// the fleet event queue, or the whole fleet on the eager reference
// path. Either way, every up machine's placement-visible state then
// matches an eager advance bit for bit.
func (e *engine) advance(t float64) error {
	e.lastSync = t
	if e.q != nil {
		return e.pool.advanceDue(e.q, t)
	}
	return e.pool.advanceTo(t)
}

// catchUp forces one machine to instant t before the engine mutates it
// out of band; a no-op on the eager path (the fleet barrier already ran).
func (e *engine) catchUp(idx int, t float64) error {
	if e.q == nil {
		return nil
	}
	return e.pool.advanceOne(e.q, idx, t)
}

func (e *engine) handle(ev *timelineEvent) error {
	switch ev.kind {
	case tlJoin:
		return e.join(ev.time, ev.cfg, false)
	case tlDrain:
		return e.drainMachine(ev.time, ev.machine, false)
	case tlFail:
		idx := ev.machine
		if idx < 0 { // MTBF failure: draw the victim now
			ups := e.upIndices()
			if len(ups) == 0 {
				return nil // nothing left to fail
			}
			idx = ups[e.drawVictim(len(ups))]
		}
		return e.failMachine(ev.time, idx)
	case tlRetry:
		e.sum.Retries++
		return e.place(scenario.Arrival{Time: ev.time, Spec: ev.res.Spec, Tag: ev.res.Attempts}, -1)
	case tlScale:
		return e.autoscaleCheck(ev.time)
	default:
		return fmt.Errorf("cluster: unknown timeline event kind %d", ev.kind)
	}
}

// place routes one arrival (trace, requeue or retry) through the
// placement policy over the up machines — or parks it when there are
// none. traceIdx records the decision in Assignments for trace arrivals.
func (e *engine) place(arr scenario.Arrival, traceIdx int) error {
	cands := e.candidates()
	if len(cands) == 0 {
		e.parked = append(e.parked, parkedArrival{arr: arr, traceIdx: traceIdx})
		return nil
	}
	idx := e.cfg.Placement.Place(arr.Spec, arr.Time, cands)
	if err := checkPlaced(e.cfg.Placement.Name(), idx, len(e.pool.machines), e.up); err != nil {
		return err
	}
	if err := e.pool.machines[idx].Inject(arr); err != nil {
		return fmt.Errorf("cluster: machine %d: %w", idx, err)
	}
	e.pool.refreshState(idx)
	if e.q != nil {
		e.q.touch(idx, arr.Time)
	}
	e.placed[idx]++
	if traceIdx >= 0 && e.assignments != nil {
		e.assignments[traceIdx] = idx
	}
	return nil
}

// candidates returns the up machines' states in index order. When the
// whole fleet is up it is the states slice itself, so placement sees
// exactly what a lifecycle-free run would.
func (e *engine) candidates() []MachineState {
	if e.nUp == len(e.pool.states) {
		return e.pool.states
	}
	e.candScratch = e.candScratch[:0]
	for i := range e.pool.states {
		if e.up[i] {
			e.candScratch = append(e.candScratch, e.pool.states[i])
		}
	}
	return e.candScratch
}

// drawVictim draws from the victim RNG, recording the call's argument —
// the stream coordinate a checkpoint replays (see lifecyclesnap.go).
func (e *engine) drawVictim(n int) int {
	e.victimDraws = append(e.victimDraws, n)
	return e.victims.Intn(n)
}

func (e *engine) upIndices() []int {
	ups := make([]int, 0, e.nUp)
	for i, u := range e.up {
		if u {
			ups = append(ups, i)
		}
	}
	return ups
}

// join adds a machine at time t: built fresh, advanced from zero to t
// (so its metric windows stay index-aligned with the fleet's), then
// offered the parked backlog FIFO.
func (e *engine) join(t float64, cfg *sim.Config, autoscaled bool) error {
	if e.lc.JoinPolicy == nil {
		return fmt.Errorf("cluster: lifecycle join at t=%g needs Lifecycle.JoinPolicy", t)
	}
	mc := e.sims[0]
	if cfg != nil {
		mc = *cfg
	}
	if err := mc.Validate(); err != nil {
		return fmt.Errorf("cluster: joining machine: %w", err)
	}
	if w, w0 := mc.EffectiveMetricsWindow(), e.sims[0].EffectiveMetricsWindow(); w != w0 {
		return fmt.Errorf("cluster: joining machine collects %v metric windows but the fleet collects %v", w, w0)
	}
	idx := len(e.pool.machines)
	pol, err := e.lc.JoinPolicy(idx, mc)
	if err != nil {
		return fmt.Errorf("cluster: machine %d policy: %w", idx, err)
	}
	m, err := sim.NewOpenMachine(mc, pol, e.scn.Name(), nil, e.scn.Horizon())
	if err != nil {
		return fmt.Errorf("cluster: machine %d: %w", idx, err)
	}
	if err := m.AdvanceTo(t); err != nil {
		return fmt.Errorf("cluster: machine %d: %w", idx, err)
	}
	e.sims = append(e.sims, mc)
	e.pool.grow(m, MachineState{Index: idx, Cores: mc.Plat.Cores, Plat: mc.Plat})
	e.pool.refreshState(idx)
	if e.q != nil {
		// The joiner was just advanced to t, so its horizon is current;
		// growing may reallocate the shared horizon slice, so re-point
		// the pool at it.
		e.q.grow(m.NextEventHorizon())
		e.pool.horizons = e.q.horizon
	}
	e.up = append(e.up, true)
	e.nUp++
	e.joinedAt = append(e.joinedAt, t)
	e.downAt = append(e.downAt, -1)
	e.failedAt = append(e.failedAt, false)
	e.placed = append(e.placed, 0)
	e.sum.Events++
	e.sum.Joins++
	if autoscaled {
		e.sum.AutoscaleActions++
	}
	e.trk.joins++
	e.trk.setFleet(e.nUp, len(e.pool.machines))
	// The backlog waited for exactly this: flush it FIFO through normal
	// placement (arrival times stay nondecreasing per machine — nothing
	// was injected anywhere while zero machines were up).
	parked := e.parked
	e.parked = nil
	for _, pa := range parked {
		if err := e.place(pa.arr, pa.traceIdx); err != nil {
			return err
		}
	}
	return nil
}

// drainMachine takes a machine out of service gracefully: residents are
// live-migrated when the migration policy finds the tradeoff worth it,
// requeued FIFO otherwise. Draining a machine that is already down is a
// no-op (a scheduled drain can lose the race against an MTBF failure).
func (e *engine) drainMachine(t float64, idx int, autoscaled bool) error {
	if idx >= len(e.pool.machines) {
		return fmt.Errorf("cluster: lifecycle drain at t=%g targets machine %d of %d", t, idx, len(e.pool.machines))
	}
	if !e.up[idx] {
		return nil
	}
	// The victim must be at t before extraction: residents carry run
	// progress and phase coordinates as of the drain instant.
	if err := e.catchUp(idx, t); err != nil {
		return err
	}
	residents := e.takeResidents(idx)
	e.takeDown(t, idx, false)
	e.sum.Drains++
	e.trk.drains++
	if autoscaled {
		e.sum.AutoscaleActions++
	}
	for _, r := range residents {
		dest := -1
		if e.migration != nil && !r.Queued {
			if cands := e.candidates(); len(cands) > 0 {
				dest = e.migration.Migrate(r, cands)
			}
		}
		if dest >= 0 {
			if err := checkPlaced(e.migration.Name(), dest, len(e.pool.machines), e.up); err != nil {
				return err
			}
			// InjectResident requires the destination at the migration
			// instant (the incoming app lands in the window open at t).
			if err := e.catchUp(dest, t); err != nil {
				return err
			}
			if err := e.pool.machines[dest].InjectResident(r); err != nil {
				return fmt.Errorf("cluster: machine %d: %w", dest, err)
			}
			e.pool.refreshState(dest)
			if e.q != nil {
				e.q.touch(dest, t)
			}
			e.placed[dest]++
			e.sum.Disruptions++
			e.sum.Migrations++
			e.trk.migrate(e.lc.MigrationCost)
			continue
		}
		e.sum.Disruptions++
		e.sum.Requeues++
		e.trk.requeue(0)
		if err := e.place(scenario.Arrival{Time: t, Spec: r.Spec, Tag: r.Attempts}, -1); err != nil {
			return err
		}
	}
	return nil
}

// failMachine kills a machine: every resident loses its progress and is
// requeued as a fresh arrival after an exponential backoff, or
// dead-lettered once its retry budget is spent. Failing a machine that
// is already down is a no-op.
func (e *engine) failMachine(t float64, idx int) error {
	if idx >= len(e.pool.machines) {
		return fmt.Errorf("cluster: lifecycle fail at t=%g targets machine %d of %d", t, idx, len(e.pool.machines))
	}
	if !e.up[idx] {
		return nil
	}
	// As for drains: extraction must see the machine's state at t.
	if err := e.catchUp(idx, t); err != nil {
		return err
	}
	residents := e.takeResidents(idx)
	e.takeDown(t, idx, true)
	e.sum.Failures++
	e.trk.fails++
	for _, r := range residents {
		attempts := r.Attempts + 1
		if attempts > e.maxRetries {
			e.sum.Disruptions++
			e.sum.DeadLettered++
			e.trk.deadLetter()
			continue
		}
		// Exponential backoff: base·2^(attempts-1), shift capped far
		// beyond any realistic retry budget.
		shift := attempts - 1
		if shift > 30 {
			shift = 30
		}
		delay := e.backoff * float64(int64(1)<<shift)
		e.sum.Disruptions++
		e.sum.Requeues++
		e.trk.requeue(delay)
		e.push(&timelineEvent{
			time:  t + delay,
			kind:  tlRetry,
			res:   sim.Resident{Spec: r.Spec, Attempts: attempts},
			delay: delay,
		})
	}
	return nil
}

// takeDown flips a machine out of the up set and halts its kernel —
// its simulated time freezes at t and its metric windows end there.
func (e *engine) takeDown(t float64, idx int, failed bool) {
	e.pool.machines[idx].Halt()
	if e.q != nil {
		// A halted machine's state is frozen: drop it out of every
		// future due set.
		e.q.update(idx, math.Inf(1))
	}
	e.up[idx] = false
	e.nUp--
	e.downAt[idx] = t
	e.failedAt[idx] = failed
	e.sum.Events++
	e.trk.setFleet(e.nUp, len(e.pool.machines))
}

// takeResidents extracts and returns a machine's residents, reusing the
// engine's scratch slice.
func (e *engine) takeResidents(idx int) []sim.Resident {
	e.resScratch = e.pool.machines[idx].ExtractResidents(e.resScratch[:0])
	return e.resScratch
}

// autoscaleCheck compares the up fleet's load to its capacity and joins
// or drains one machine per check, within the configured bounds.
func (e *engine) autoscaleCheck(t float64) error {
	as := e.lc.Autoscale
	load, capac := len(e.parked), 0
	for i := range e.pool.states {
		if e.up[i] {
			load += e.pool.states[i].Load()
			capac += e.pool.states[i].Cores
		}
	}
	max := as.Max
	if max <= 0 {
		max = len(e.pool.machines) + 1 // unbounded in practice: one step per check
	}
	switch {
	case capac == 0:
		if load > 0 && e.nUp < max {
			return e.join(t, nil, true)
		}
	case float64(load) >= as.Up*float64(capac) && e.nUp < max:
		return e.join(t, nil, true)
	case float64(load) <= as.Down*float64(capac) && e.nUp > as.Min:
		victim, best := -1, 0
		for i := range e.pool.states {
			if !e.up[i] {
				continue
			}
			if victim < 0 || e.pool.states[i].Load() < best {
				victim, best = i, e.pool.states[i].Load()
			}
		}
		if victim >= 0 {
			return e.drainMachine(t, victim, true)
		}
	}
	return nil
}

// finish closes the lifecycle accounting at the end of the run and
// returns the summary. end is the fleet's final simulated time.
func (e *engine) finish(end float64) *LifecycleSummary {
	e.sum.Unplaced = len(e.parked)
	e.sum.FinalMachines = e.nUp
	e.sum.FleetSize = len(e.pool.machines)
	e.trk.finish(end)
	e.sum.Series = e.trk.series
	e.sum.Availability = e.trk.availability()
	if e.sum.Migrations > 0 {
		e.sum.MeanMigrationLatency = e.trk.totMigLat / float64(e.sum.Migrations)
	}
	if e.sum.Requeues > 0 {
		e.sum.MeanRequeueLatency = e.trk.totReqLat / float64(e.sum.Requeues)
	}
	return &e.sum
}

// lifeTracker integrates fleet availability over time and buckets the
// lifecycle counters into windows aligned with the metric series.
type lifeTracker struct {
	width    float64
	series   metrics.LifecycleSeries
	winStart float64
	lastT    float64

	up    int
	fleet int

	upSec, fleetSec       float64 // current-window integrals
	totUpSec, totFleetSec float64 // run-wide integrals
	totMigLat, totReqLat  float64 // run-wide latency sums

	joins, drains, fails   int
	migs, reqs, dead, disr int
	migLat, reqLat         float64
}

func newLifeTracker(width float64, up, fleet int) *lifeTracker {
	return &lifeTracker{
		width:  width,
		up:     up,
		fleet:  fleet,
		series: metrics.LifecycleSeries{Width: width},
	}
}

// advance integrates occupancy up to t, closing windows at their
// boundaries. Call before handling anything at time t: the integral up
// to t uses the old up/fleet counts, the event's changes apply after.
func (lt *lifeTracker) advance(t float64) {
	for t >= lt.winStart+lt.width {
		end := lt.winStart + lt.width
		lt.integrate(end)
		lt.close(end)
	}
	lt.integrate(t)
}

func (lt *lifeTracker) integrate(t float64) {
	if t <= lt.lastT {
		return
	}
	dt := t - lt.lastT
	lt.upSec += float64(lt.up) * dt
	lt.fleetSec += float64(lt.fleet) * dt
	lt.lastT = t
}

func (lt *lifeTracker) close(end float64) {
	p := metrics.LifecyclePoint{
		Start:        lt.winStart,
		End:          end,
		UpMachines:   lt.up,
		FleetSize:    lt.fleet,
		Joins:        lt.joins,
		Drains:       lt.drains,
		Failures:     lt.fails,
		Disruptions:  lt.disr,
		Migrations:   lt.migs,
		Requeues:     lt.reqs,
		DeadLettered: lt.dead,
	}
	if lt.fleetSec > 0 {
		p.Availability = lt.upSec / lt.fleetSec
	} else {
		p.Availability = 1
	}
	if lt.migs > 0 {
		p.MeanMigrationLatency = lt.migLat / float64(lt.migs)
	}
	if lt.reqs > 0 {
		p.MeanRequeueLatency = lt.reqLat / float64(lt.reqs)
	}
	lt.series.Add(p)
	lt.totUpSec += lt.upSec
	lt.totFleetSec += lt.fleetSec
	lt.winStart = end
	lt.upSec, lt.fleetSec = 0, 0
	lt.joins, lt.drains, lt.fails = 0, 0, 0
	lt.migs, lt.reqs, lt.dead, lt.disr = 0, 0, 0, 0
	lt.migLat, lt.reqLat = 0, 0
}

func (lt *lifeTracker) setFleet(up, fleet int) { lt.up, lt.fleet = up, fleet }

func (lt *lifeTracker) migrate(cost float64) {
	lt.disr++
	lt.migs++
	lt.migLat += cost
	lt.totMigLat += cost
}

func (lt *lifeTracker) requeue(delay float64) {
	lt.disr++
	lt.reqs++
	lt.reqLat += delay
	lt.totReqLat += delay
}

func (lt *lifeTracker) deadLetter() {
	lt.disr++
	lt.dead++
}

// finish closes the trailing window at the end of the run. Events can
// outlast the fleet's simulated time (a drain scheduled past the last
// departure); the series extends to whichever came last.
func (lt *lifeTracker) finish(end float64) {
	if end < lt.lastT {
		end = lt.lastT
	}
	lt.advance(end)
	if end > lt.winStart || lt.dirty() {
		lt.close(end)
	}
}

func (lt *lifeTracker) dirty() bool {
	return lt.joins|lt.drains|lt.fails|lt.disr != 0
}

func (lt *lifeTracker) availability() float64 {
	if lt.totFleetSec <= 0 {
		return 1
	}
	return lt.totUpSec / lt.totFleetSec
}
