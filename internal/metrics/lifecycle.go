package metrics

import "fmt"

// LifecyclePoint is one fixed-width time window of a fleet's lifecycle
// trajectory: how much of the fleet was up, and what disruption the
// lifecycle events of the window inflicted on running applications.
// The cluster engine builds the series fleet-wide by construction —
// lifecycle events are cluster-level decisions, so unlike WindowPoint
// there is no per-machine series to merge.
type LifecyclePoint struct {
	// Start and End bound the window in simulated seconds.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Availability is the time-averaged fraction of existing machines
	// that were up over the window (machine-up-seconds over
	// machine-existing-seconds, so a fleet that grows mid-window is
	// averaged correctly).
	Availability float64 `json:"availability"`
	// UpMachines and FleetSize sample the fleet at the window's end.
	UpMachines int `json:"up_machines"`
	FleetSize  int `json:"fleet_size"`
	// Joins, Drains and Failures count lifecycle events inside the
	// window (scheduled, autoscale-triggered and MTBF-driven alike).
	Joins    int `json:"joins"`
	Drains   int `json:"drains"`
	Failures int `json:"failures"`
	// Disruptions counts applications displaced by those events;
	// Migrations of them moved live with progress preserved, Requeues
	// re-entered placement from scratch, and DeadLettered exhausted
	// their retry budget and were dropped.
	Disruptions  int `json:"disruptions"`
	Migrations   int `json:"migrations"`
	Requeues     int `json:"requeues"`
	DeadLettered int `json:"dead_lettered"`
	// MeanMigrationLatency is the mean modeled migration cost of the
	// window's migrations; MeanRequeueLatency the mean scheduled delay
	// (retry backoff; zero for drain requeues) of its requeues. Both are
	// 0 when the window had none.
	MeanMigrationLatency float64 `json:"mean_migration_latency"`
	MeanRequeueLatency   float64 `json:"mean_requeue_latency"`
}

// LifecycleSeries is a sequence of contiguous lifecycle windows of
// equal width — the same windowing as the fleet's WindowedSeries, so
// the two series line up index by index.
type LifecycleSeries struct {
	// Width is the window length in simulated seconds.
	Width  float64          `json:"width"`
	Points []LifecyclePoint `json:"points"`
}

// Add appends a lifecycle window point.
func (s *LifecycleSeries) Add(p LifecyclePoint) { s.Points = append(s.Points, p) }

// TotalDisruptions sums displaced applications over the series.
func (s *LifecycleSeries) TotalDisruptions() int {
	n := 0
	for _, p := range s.Points {
		n += p.Disruptions
	}
	return n
}

// MeanAvailability is the time-weighted mean availability over the
// series (1 for an empty series — no window ever saw a machine down).
func (s *LifecycleSeries) MeanAvailability() float64 {
	up, t := 0.0, 0.0
	for _, p := range s.Points {
		w := p.End - p.Start
		up += p.Availability * w
		t += w
	}
	if t <= 0 {
		return 1
	}
	return up / t
}

// Fingerprint renders the series compactly for determinism checks: two
// series are byte-identical iff every lifecycle metric is.
func (s *LifecycleSeries) Fingerprint() string {
	out := fmt.Sprintf("w=%.17g n=%d", s.Width, len(s.Points))
	for _, p := range s.Points {
		out += fmt.Sprintf(";[%.17g,%.17g)av=%.17g up=%d/%d j=%d d=%d f=%d x=%d m=%d r=%d dl=%d ml=%.17g rl=%.17g",
			p.Start, p.End, p.Availability, p.UpMachines, p.FleetSize,
			p.Joins, p.Drains, p.Failures, p.Disruptions, p.Migrations, p.Requeues, p.DeadLettered,
			p.MeanMigrationLatency, p.MeanRequeueLatency)
	}
	return out
}
