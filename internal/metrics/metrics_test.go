package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSlowdown(t *testing.T) {
	if s, err := Slowdown(20, 10); err != nil || s != 2 {
		t.Errorf("Slowdown = %v, %v", s, err)
	}
	if _, err := Slowdown(0, 10); err == nil {
		t.Error("zero shared time accepted")
	}
	if _, err := Slowdown(10, 0); err == nil {
		t.Error("zero alone time accepted")
	}
}

func TestSlowdownFromIPC(t *testing.T) {
	if s, err := SlowdownFromIPC(2, 1); err != nil || s != 2 {
		t.Errorf("SlowdownFromIPC = %v, %v", s, err)
	}
	if _, err := SlowdownFromIPC(-1, 1); err == nil {
		t.Error("negative IPC accepted")
	}
	if _, err := SlowdownFromIPC(1, 0); err == nil {
		t.Error("zero IPC accepted")
	}
}

func TestUnfairness(t *testing.T) {
	u, err := Unfairness([]float64{1.0, 2.0, 1.5})
	if err != nil || u != 2.0 {
		t.Errorf("Unfairness = %v, %v", u, err)
	}
	// Perfect fairness.
	u, _ = Unfairness([]float64{1.3, 1.3, 1.3})
	if u != 1 {
		t.Errorf("uniform unfairness = %v, want 1", u)
	}
	if _, err := Unfairness(nil); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := Unfairness([]float64{1, -1}); err == nil {
		t.Error("negative slowdown accepted")
	}
}

func TestSTP(t *testing.T) {
	s, err := STP([]float64{1, 2, 4})
	if err != nil || math.Abs(s-1.75) > 1e-12 {
		t.Errorf("STP = %v, %v", s, err)
	}
	// Perfect isolation: STP = n.
	s, _ = STP([]float64{1, 1, 1})
	if s != 3 {
		t.Errorf("ideal STP = %v", s)
	}
	if _, err := STP(nil); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := STP([]float64{0}); err == nil {
		t.Error("zero slowdown accepted")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4})
	if err != nil || math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean = %v, %v", g, err)
	}
	g, _ = GeoMean([]float64{7})
	if g != 7 {
		t.Errorf("singleton GeoMean = %v", g)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("zero accepted")
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{2, 6}, []float64{4, 3})
	if err != nil || out[0] != 0.5 || out[1] != 2 {
		t.Errorf("Normalize = %v, %v", out, err)
	}
	if _, err := Normalize([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Normalize([]float64{1}, []float64{0}); err == nil {
		t.Error("zero baseline accepted")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2})
	if err != nil || s.Unfairness != 2 || math.Abs(s.STP-1.5) > 1e-12 {
		t.Errorf("Summarize = %+v, %v", s, err)
	}
	if _, err := Summarize(nil); err != nil {
		// expected error
	} else {
		t.Error("empty accepted")
	}
	if _, err := Summarize([]float64{-1, 1}); err == nil {
		t.Error("negative slowdown accepted")
	}
}

// Property: unfairness >= 1 always, and == 1 iff all slowdowns are equal.
func TestQuickUnfairnessAtLeastOne(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		sd := make([]float64, len(raw))
		for i, r := range raw {
			sd[i] = 1 + float64(r)/1000
		}
		u, err := Unfairness(sd)
		return err == nil && u >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: STP is bounded by the workload size and positive.
func TestQuickSTPBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		sd := make([]float64, len(raw))
		for i, r := range raw {
			sd[i] = 1 + float64(r)/1000
		}
		s, err := STP(sd)
		return err == nil && s > 0 && s <= float64(len(sd))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: GeoMean lies between min and max.
func TestQuickGeoMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			vs[i] = float64(r) + 1
			lo = math.Min(lo, vs[i])
			hi = math.Max(hi, vs[i])
		}
		g, err := GeoMean(vs)
		return err == nil && g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
