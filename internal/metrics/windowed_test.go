package metrics

import (
	"math"
	"testing"
)

func TestWindowSnapshot(t *testing.T) {
	u, s, m := WindowSnapshot(nil)
	if u != 1 || s != 0 || m != 0 {
		t.Errorf("empty snapshot = (%v,%v,%v)", u, s, m)
	}
	u, s, m = WindowSnapshot([]float64{2})
	if u != 1 || s != 0.5 || m != 2 {
		t.Errorf("singleton snapshot = (%v,%v,%v)", u, s, m)
	}
	u, s, m = WindowSnapshot([]float64{1, 2, 4})
	if u != 4 || math.Abs(s-1.75) > 1e-15 || math.Abs(m-7.0/3) > 1e-15 {
		t.Errorf("snapshot = (%v,%v,%v)", u, s, m)
	}
	// Sub-1 slowdowns (tick quantization) are clamped.
	u, _, m = WindowSnapshot([]float64{0.5, 2})
	if u != 2 || m != 1.5 {
		t.Errorf("clamped snapshot = (%v,_,%v)", u, m)
	}
}

func TestWindowedSeriesAggregates(t *testing.T) {
	var s WindowedSeries
	s.Width = 1
	if s.MeanUnfairness() != 1 || s.MeanSTP() != 0 || s.TotalThroughput() != 0 || s.PeakActive() != 0 {
		t.Error("empty-series aggregates wrong")
	}
	s.Add(WindowPoint{Start: 0, End: 1, Active: 2, RunsCompleted: 4, Throughput: 4, Unfairness: 1.5, STP: 1.5})
	s.Add(WindowPoint{Start: 1, End: 2, Active: 0}) // idle window: excluded from means
	s.Add(WindowPoint{Start: 2, End: 3, Active: 4, RunsCompleted: 2, Throughput: 2, Unfairness: 2.5, STP: 3.5})
	if got := s.MeanUnfairness(); got != 2 {
		t.Errorf("MeanUnfairness = %v", got)
	}
	if got := s.MeanSTP(); got != 2.5 {
		t.Errorf("MeanSTP = %v", got)
	}
	if got := s.TotalThroughput(); got != 2 {
		t.Errorf("TotalThroughput = %v", got)
	}
	if got := s.PeakActive(); got != 4 {
		t.Errorf("PeakActive = %v", got)
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	a := WindowedSeries{Width: 1, Points: []WindowPoint{{Start: 0, End: 1, STP: 2}}}
	b := WindowedSeries{Width: 1, Points: []WindowPoint{{Start: 0, End: 1, STP: 2}}}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical series, different fingerprints")
	}
	b.Points[0].STP = math.Nextafter(2, 3)
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("one-ulp STP difference not visible in fingerprint")
	}
}
