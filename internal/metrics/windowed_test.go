package metrics

import (
	"math"
	"testing"
)

func TestWindowSnapshot(t *testing.T) {
	u, s, m := WindowSnapshot(nil)
	if u != 1 || s != 0 || m != 0 {
		t.Errorf("empty snapshot = (%v,%v,%v)", u, s, m)
	}
	u, s, m = WindowSnapshot([]float64{2})
	if u != 1 || s != 0.5 || m != 2 {
		t.Errorf("singleton snapshot = (%v,%v,%v)", u, s, m)
	}
	u, s, m = WindowSnapshot([]float64{1, 2, 4})
	if u != 4 || math.Abs(s-1.75) > 1e-15 || math.Abs(m-7.0/3) > 1e-15 {
		t.Errorf("snapshot = (%v,%v,%v)", u, s, m)
	}
	// Sub-1 slowdowns (tick quantization) are clamped.
	u, _, m = WindowSnapshot([]float64{0.5, 2})
	if u != 2 || m != 1.5 {
		t.Errorf("clamped snapshot = (%v,_,%v)", u, m)
	}
}

func TestWindowedSeriesAggregates(t *testing.T) {
	var s WindowedSeries
	s.Width = 1
	if s.MeanUnfairness() != 1 || s.MeanSTP() != 0 || s.TotalThroughput() != 0 || s.PeakActive() != 0 {
		t.Error("empty-series aggregates wrong")
	}
	s.Add(WindowPoint{Start: 0, End: 1, Active: 2, RunsCompleted: 4, Throughput: 4, Unfairness: 1.5, STP: 1.5})
	s.Add(WindowPoint{Start: 1, End: 2, Active: 0}) // idle window: excluded from means
	s.Add(WindowPoint{Start: 2, End: 3, Active: 4, RunsCompleted: 2, Throughput: 2, Unfairness: 2.5, STP: 3.5})
	if got := s.MeanUnfairness(); got != 2 {
		t.Errorf("MeanUnfairness = %v", got)
	}
	if got := s.MeanSTP(); got != 2.5 {
		t.Errorf("MeanSTP = %v", got)
	}
	if got := s.TotalThroughput(); got != 2 {
		t.Errorf("TotalThroughput = %v", got)
	}
	if got := s.PeakActive(); got != 4 {
		t.Errorf("PeakActive = %v", got)
	}
}

func TestMergeSeries(t *testing.T) {
	a := &WindowedSeries{Width: 1, Points: []WindowPoint{
		{Start: 0, End: 1, Active: 2, RunsCompleted: 2, STP: 1.5, MeanSlowdown: 2, Samples: 2, MinSlowdown: 1, MaxSlowdown: 3},
		{Start: 1, End: 2, Active: 1, RunsCompleted: 1, STP: 0.5, MeanSlowdown: 2, Samples: 1, MinSlowdown: 2, MaxSlowdown: 2},
	}}
	b := &WindowedSeries{Width: 1, Points: []WindowPoint{
		{Start: 0, End: 1, Active: 1, RunsCompleted: 3, STP: 0.25, MeanSlowdown: 4, Samples: 1, MinSlowdown: 4, MaxSlowdown: 4},
	}}
	got, err := MergeSeries([]*WindowedSeries{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != 1 || len(got.Points) != 2 {
		t.Fatalf("merged width/len = %v/%d", got.Width, len(got.Points))
	}
	w0 := got.Points[0]
	if w0.Active != 3 || w0.RunsCompleted != 5 || w0.STP != 1.75 || w0.Samples != 3 {
		t.Errorf("window 0 counts wrong: %+v", w0)
	}
	if w0.Unfairness != 4 || w0.MinSlowdown != 1 || w0.MaxSlowdown != 4 {
		t.Errorf("window 0 unfairness = %v (min %v max %v), want max-of-maxes/min-of-mins = 4",
			w0.Unfairness, w0.MinSlowdown, w0.MaxSlowdown)
	}
	if want := (2*2.0 + 4*1.0) / 3; w0.MeanSlowdown != want {
		t.Errorf("window 0 mean slowdown = %v, want sample-weighted %v", w0.MeanSlowdown, want)
	}
	// Machine b finished early: window 1 is machine a's alone.
	if got.Points[1].Samples != 1 || got.Points[1].Unfairness != 1 {
		t.Errorf("window 1 = %+v, want a's singleton", got.Points[1])
	}
}

// Merging series of different widths would pair windows covering
// disjoint time spans; the documented "equal width" contract is now
// enforced instead of silently violated.
func TestMergeSeriesWidthMismatch(t *testing.T) {
	a := &WindowedSeries{Width: 1, Points: []WindowPoint{{Start: 0, End: 1}}}
	b := &WindowedSeries{Width: 2, Points: []WindowPoint{{Start: 0, End: 2}}}
	if _, err := MergeSeries([]*WindowedSeries{a, b}); err == nil {
		t.Error("width mismatch accepted")
	}
	// A contributing series must carry a positive width: adopting a zero
	// width from the first series was the old silent failure mode.
	z := &WindowedSeries{Width: 0, Points: []WindowPoint{{Start: 0, End: 1}}}
	if _, err := MergeSeries([]*WindowedSeries{z, a}); err == nil {
		t.Error("zero-width contributing series accepted")
	}
}

// Nil and empty series contribute nothing: they are skipped, not
// width-checked (a machine that never collected a window has width 0).
func TestMergeSeriesSkipsEmpty(t *testing.T) {
	a := &WindowedSeries{Width: 1, Points: []WindowPoint{{Start: 0, End: 1, Active: 1}}}
	empty := &WindowedSeries{}
	got, err := MergeSeries([]*WindowedSeries{nil, empty, a})
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != 1 || len(got.Points) != 1 || got.Points[0].Active != 1 {
		t.Errorf("merge with nil/empty series = %+v", got)
	}
	got, err = MergeSeries([]*WindowedSeries{nil, empty})
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != 0 || len(got.Points) != 0 {
		t.Errorf("all-empty merge = %+v, want zero series", got)
	}
}

// Lifecycle runs produce partial-lifetime machines: a machine that
// fails mid-run stops collecting windows (short series), and an
// autoscaled join contributes idle leading windows before its first
// admission. The merge must treat both as "absent", not as zeros that
// drag cluster stats down.
func TestMergeSeriesPartialLifetimes(t *testing.T) {
	// Survivor: active the whole run, four windows.
	full := &WindowedSeries{Width: 1, Points: []WindowPoint{
		{Start: 0, End: 1, Active: 1, RunsCompleted: 2, Throughput: 2, STP: 0.5, MeanSlowdown: 2, Samples: 1, MinSlowdown: 2, MaxSlowdown: 2},
		{Start: 1, End: 2, Active: 1, RunsCompleted: 2, Throughput: 2, STP: 0.5, MeanSlowdown: 2, Samples: 1, MinSlowdown: 2, MaxSlowdown: 2},
		{Start: 2, End: 3, Active: 1, RunsCompleted: 2, Throughput: 2, STP: 0.5, MeanSlowdown: 2, Samples: 1, MinSlowdown: 2, MaxSlowdown: 2},
		{Start: 3, End: 4, Active: 1, RunsCompleted: 2, Throughput: 2, STP: 0.5, MeanSlowdown: 2, Samples: 1, MinSlowdown: 2, MaxSlowdown: 2},
	}}
	// Failed at t=2: the trailing windows simply do not exist.
	failed := &WindowedSeries{Width: 1, Points: []WindowPoint{
		{Start: 0, End: 1, Active: 2, RunsCompleted: 4, Throughput: 4, STP: 1.5, MeanSlowdown: 3, Samples: 2, MinSlowdown: 1, MaxSlowdown: 5},
		{Start: 1, End: 2, Active: 2, RunsCompleted: 4, Throughput: 4, STP: 1.5, MeanSlowdown: 3, Samples: 2, MinSlowdown: 1, MaxSlowdown: 5},
	}}
	// Autoscaled join: windows exist from t=0 (joined machines advance
	// from zero so indices align) but stay idle until t=3.
	joined := &WindowedSeries{Width: 1, Points: []WindowPoint{
		{Start: 0, End: 1},
		{Start: 1, End: 2},
		{Start: 2, End: 3},
		{Start: 3, End: 4, Active: 1, RunsCompleted: 6, Throughput: 6, STP: 0.25, MeanSlowdown: 4, Samples: 1, MinSlowdown: 4, MaxSlowdown: 4},
	}}
	got, err := MergeSeries([]*WindowedSeries{full, failed, joined})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 4 {
		t.Fatalf("merged to %d windows, want the longest lifetime (4)", len(got.Points))
	}
	// While all three contribute: samples and STP add across machines.
	if w := got.Points[1]; w.Active != 3 || w.Samples != 3 || w.STP != 2 || w.Unfairness != 5 {
		t.Errorf("window 1 = %+v, want all three machines merged", w)
	}
	// After the failure the dead machine must vanish from the stats, not
	// contribute zeros: window 2 is the survivor alone (joined is idle).
	if w := got.Points[2]; w.Active != 1 || w.Samples != 1 || w.Unfairness != 1 || w.MeanSlowdown != 2 {
		t.Errorf("window 2 = %+v, want survivor-only stats", w)
	}
	// The late joiner shows up only once it admits work.
	if w := got.Points[3]; w.Active != 2 || w.Samples != 2 || w.RunsCompleted != 8 {
		t.Errorf("window 3 = %+v, want survivor + joiner", w)
	}
	if w := got.Points[3]; w.Unfairness != 2 || w.MeanSlowdown != 3 {
		t.Errorf("window 3 unfairness/mean = %v/%v, want 2/3", w.Unfairness, w.MeanSlowdown)
	}
	// Merged throughput is recomputed from the merged span, not summed.
	if w := got.Points[0]; w.Throughput != 6 {
		t.Errorf("window 0 throughput = %v, want 6 runs over 1s", w.Throughput)
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	a := WindowedSeries{Width: 1, Points: []WindowPoint{{Start: 0, End: 1, STP: 2}}}
	b := WindowedSeries{Width: 1, Points: []WindowPoint{{Start: 0, End: 1, STP: 2}}}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical series, different fingerprints")
	}
	b.Points[0].STP = math.Nextafter(2, 3)
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("one-ulp STP difference not visible in fingerprint")
	}
}

// naiveMergeSeries is the pre-compaction reference merge: rescan every
// series at every window index. Kept here as the oracle for the
// fleet-scale merge below.
func naiveMergeSeries(series []*WindowedSeries) WindowedSeries {
	out := WindowedSeries{}
	maxLen := 0
	for _, s := range series {
		if s == nil || len(s.Points) == 0 {
			continue
		}
		if out.Width == 0 {
			out.Width = s.Width
		}
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
	}
	for i := 0; i < maxLen; i++ {
		var m WindowPoint
		first := true
		sdSum := 0.0
		for _, s := range series {
			if s == nil || i >= len(s.Points) {
				continue
			}
			p := s.Points[i]
			if first {
				m.Start, m.End = p.Start, p.End
				first = false
			} else {
				if p.Start < m.Start {
					m.Start = p.Start
				}
				if p.End > m.End {
					m.End = p.End
				}
			}
			m.Active += p.Active
			m.Arrivals += p.Arrivals
			m.Departures += p.Departures
			m.RunsCompleted += p.RunsCompleted
			m.STP += p.STP
			sdSum += p.MeanSlowdown * float64(p.Samples)
			m.Samples += p.Samples
			if p.Samples > 0 {
				if m.MinSlowdown == 0 || p.MinSlowdown < m.MinSlowdown {
					m.MinSlowdown = p.MinSlowdown
				}
				if p.MaxSlowdown > m.MaxSlowdown {
					m.MaxSlowdown = p.MaxSlowdown
				}
			}
		}
		if w := m.End - m.Start; w > 0 {
			m.Throughput = float64(m.RunsCompleted) / w
		}
		if m.Samples > 0 {
			m.Unfairness = m.MaxSlowdown / m.MinSlowdown
			m.MeanSlowdown = sdSum / float64(m.Samples)
		} else {
			m.Unfairness = 1
		}
		out.Add(m)
	}
	return out
}

// Fleet-scale merge contract at 1024 machines with ragged lifetimes:
// the compacting single-pass merge must reproduce the naive rescan bit
// for bit (same float accumulation order), keep every window at the
// shared width, and cover as many windows as the longest series.
func TestMergeSeriesFleetScale(t *testing.T) {
	const n, width = 1024, 0.25
	series := make([]*WindowedSeries, n)
	maxLen := 0
	for i := range series {
		if i%97 == 0 {
			continue // sprinkle nil machines (failed before any window)
		}
		// Ragged lifetimes: lengths cycle 1..32 windows.
		length := 1 + (i*7)%32
		if length > maxLen {
			maxLen = length
		}
		s := &WindowedSeries{Width: width}
		for w := 0; w < length; w++ {
			samples := (i + w) % 3
			p := WindowPoint{
				Start:         float64(w) * width,
				End:           float64(w+1) * width,
				Active:        samples,
				Arrivals:      i % 5,
				RunsCompleted: w % 4,
				STP:           float64(i%13) / 7,
				Samples:       samples,
			}
			if samples > 0 {
				p.MinSlowdown = 1 + float64(i%11)/3
				p.MaxSlowdown = p.MinSlowdown + float64(w%5)
				p.MeanSlowdown = (p.MinSlowdown + p.MaxSlowdown) / 2
			}
			s.Add(p)
		}
		series[i] = s
	}
	got, err := MergeSeries(series)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != maxLen {
		t.Fatalf("merged %d windows, want the longest lifetime %d", len(got.Points), maxLen)
	}
	for i, p := range got.Points {
		if w := p.End - p.Start; math.Abs(w-width) > 1e-12 {
			t.Fatalf("window %d spans %v, want the shared width %v", i, w, width)
		}
	}
	want := naiveMergeSeries(series)
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("compacting merge diverges from the naive reference rescan")
	}
}
