// Package metrics implements the evaluation metrics of §2.1: per-program
// Slowdown (Eq. 1/2), workload Unfairness (Eq. 3) and System Throughput /
// STP, a.k.a. Weighted Speedup (Eq. 4), plus the geometric-mean helpers
// the methodology of §5 relies on.
package metrics

import (
	"fmt"
	"math"
)

// Slowdown computes CT_shared / CT_alone (Eq. 1). Both times must be
// positive.
func Slowdown(ctShared, ctAlone float64) (float64, error) {
	if ctShared <= 0 || ctAlone <= 0 {
		return 0, fmt.Errorf("metrics: completion times must be positive (shared=%v alone=%v)", ctShared, ctAlone)
	}
	return ctShared / ctAlone, nil
}

// SlowdownFromIPC computes IPC_alone / IPC_shared (Eq. 2).
func SlowdownFromIPC(ipcAlone, ipcShared float64) (float64, error) {
	if ipcAlone <= 0 || ipcShared <= 0 {
		return 0, fmt.Errorf("metrics: IPC values must be positive (alone=%v shared=%v)", ipcAlone, ipcShared)
	}
	return ipcAlone / ipcShared, nil
}

// Unfairness computes MAX(slowdowns)/MIN(slowdowns) (Eq. 3, lower is
// better).
func Unfairness(slowdowns []float64) (float64, error) {
	if len(slowdowns) == 0 {
		return 0, fmt.Errorf("metrics: unfairness of empty workload")
	}
	lo, hi := slowdowns[0], slowdowns[0]
	for _, s := range slowdowns {
		if s <= 0 {
			return 0, fmt.Errorf("metrics: non-positive slowdown %v", s)
		}
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	return hi / lo, nil
}

// STP computes Σ 1/slowdown_i (Eq. 4, higher is better; equals the
// workload size under perfect isolation).
func STP(slowdowns []float64) (float64, error) {
	if len(slowdowns) == 0 {
		return 0, fmt.Errorf("metrics: STP of empty workload")
	}
	sum := 0.0
	for _, s := range slowdowns {
		if s <= 0 {
			return 0, fmt.Errorf("metrics: non-positive slowdown %v", s)
		}
		sum += 1 / s
	}
	return sum, nil
}

// GeoMean returns the geometric mean of positive values — §5 reports
// per-program completion times as geometric means across repetitions.
func GeoMean(vs []float64) (float64, error) {
	if len(vs) == 0 {
		return 0, fmt.Errorf("metrics: geometric mean of no values")
	}
	logSum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return 0, fmt.Errorf("metrics: non-positive value %v in geometric mean", v)
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vs))), nil
}

// Normalize divides each value by the corresponding baseline value, as
// Figs. 6 and 7 normalize unfairness and STP to Stock-Linux.
func Normalize(values, baseline []float64) ([]float64, error) {
	if len(values) != len(baseline) {
		return nil, fmt.Errorf("metrics: normalize length mismatch %d vs %d", len(values), len(baseline))
	}
	out := make([]float64, len(values))
	for i := range values {
		if baseline[i] == 0 {
			return nil, fmt.Errorf("metrics: zero baseline at %d", i)
		}
		out[i] = values[i] / baseline[i]
	}
	return out, nil
}

// Summary bundles the two headline metrics for one workload under one
// policy.
type Summary struct {
	Unfairness float64
	STP        float64
}

// Summarize computes both metrics at once.
func Summarize(slowdowns []float64) (Summary, error) {
	u, err := Unfairness(slowdowns)
	if err != nil {
		return Summary{}, err
	}
	s, err := STP(slowdowns)
	if err != nil {
		return Summary{}, err
	}
	return Summary{Unfairness: u, STP: s}, nil
}
