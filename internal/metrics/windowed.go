package metrics

import "fmt"

// WindowPoint is one fixed-width time window of an experiment. In an
// open system the end-of-run scalar aggregates of Summary are
// meaningless — the population changes under the metric — so fairness
// and throughput are reported per window over the applications active
// in that window.
type WindowPoint struct {
	// Start and End bound the window in simulated seconds.
	Start, End float64
	// Active is the number of applications in the system at the end of
	// the window.
	Active int
	// Arrivals and Departures count the population changes inside the
	// window.
	Arrivals, Departures int
	// RunsCompleted counts instruction quotas retired inside the window.
	RunsCompleted int
	// Throughput is RunsCompleted per simulated second.
	Throughput float64
	// Unfairness, STP and MeanSlowdown are computed over the cumulative
	// slowdowns of the applications active at the window's end (1, 0 and
	// 0 respectively when no application has measurable progress yet).
	Unfairness   float64
	STP          float64
	MeanSlowdown float64
	// Samples counts the slowdowns behind those three aggregates, and
	// MinSlowdown/MaxSlowdown bound them (0 when Samples is 0). They
	// exist so a cluster can merge per-machine windows exactly: STP sums,
	// MeanSlowdown recombines weighted by Samples, and cluster unfairness
	// is max-of-maxes over min-of-mins — none of which is recoverable
	// from the per-machine ratios alone.
	Samples     int
	MinSlowdown float64
	MaxSlowdown float64
}

// WindowedSeries is a sequence of contiguous windows of equal width.
type WindowedSeries struct {
	// Width is the window length in simulated seconds.
	Width  float64
	Points []WindowPoint
}

// WindowSnapshot summarizes a set of instantaneous slowdowns without
// erroring on degenerate populations, which windows in an open system
// routinely are (empty right after a departure burst, singleton under
// light load). Slowdowns below 1 — tick-quantization artifacts — are
// clamped, mirroring the closed-methodology reporting.
func WindowSnapshot(slowdowns []float64) (unfairness, stp, mean float64) {
	unfairness, stp, mean, _, _ = SlowdownStats(slowdowns)
	return unfairness, stp, mean
}

// SlowdownStats is WindowSnapshot plus the extreme slowdowns behind the
// unfairness ratio (lo and hi are 0 for an empty population). Cluster
// aggregation needs the extremes: the unfairness of a fleet is the
// max-of-maxes over the min-of-mins, not any function of the
// per-machine ratios.
func SlowdownStats(slowdowns []float64) (unfairness, stp, mean, lo, hi float64) {
	if len(slowdowns) == 0 {
		return 1, 0, 0, 0, 0
	}
	sum, inv := 0.0, 0.0
	for i, s := range slowdowns {
		if s < 1 {
			s = 1
		}
		if i == 0 || s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
		sum += s
		inv += 1 / s
	}
	return hi / lo, inv, sum / float64(len(slowdowns)), lo, hi
}

// Add appends a window point.
func (s *WindowedSeries) Add(p WindowPoint) { s.Points = append(s.Points, p) }

// MeanUnfairness averages Unfairness over windows that had at least one
// active application (1 when there were none).
func (s *WindowedSeries) MeanUnfairness() float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.Active > 0 {
			sum += p.Unfairness
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// MeanSTP averages STP over windows with at least one active
// application (0 when there were none).
func (s *WindowedSeries) MeanSTP() float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.Active > 0 {
			sum += p.STP
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TotalThroughput is completed runs divided by covered time (0 for an
// empty series).
func (s *WindowedSeries) TotalThroughput() float64 {
	runs, t := 0, 0.0
	for _, p := range s.Points {
		runs += p.RunsCompleted
		t += p.End - p.Start
	}
	if t <= 0 {
		return 0
	}
	return float64(runs) / t
}

// PeakActive returns the largest end-of-window population.
func (s *WindowedSeries) PeakActive() int {
	peak := 0
	for _, p := range s.Points {
		if p.Active > peak {
			peak = p.Active
		}
	}
	return peak
}

// Fingerprint renders the series compactly for determinism checks: two
// series are byte-identical iff every windowed metric is.
func (s *WindowedSeries) Fingerprint() string {
	out := fmt.Sprintf("w=%.17g n=%d", s.Width, len(s.Points))
	for _, p := range s.Points {
		out += fmt.Sprintf(";[%.17g,%.17g)a=%d+%d-%d r=%d u=%.17g stp=%.17g ms=%.17g n=%d lo=%.17g hi=%.17g",
			p.Start, p.End, p.Active, p.Arrivals, p.Departures, p.RunsCompleted,
			p.Unfairness, p.STP, p.MeanSlowdown, p.Samples, p.MinSlowdown, p.MaxSlowdown)
	}
	return out
}

// MergeSeries combines per-machine series of equal width into one
// cluster-wide series, window index by window index. Counts and STP
// (a sum of speedups, Eq. 4) add; MeanSlowdown recombines weighted by
// each machine's sample count; cluster unfairness is the max-of-maxes
// over the min-of-mins (Eq. 3 over the whole fleet). Machines that
// finished early simply stop contributing; a window's Start/End span
// the contributing machines' bounds (final partial windows may make the
// last span ragged).
//
// Nil or empty series contribute nothing and are skipped (a machine
// that never collected a window has no width to agree on). Every
// contributing series must have the same positive Width: windows are
// matched by index, so merging mismatched widths would silently
// combine disjoint time spans.
func MergeSeries(series []*WindowedSeries) (WindowedSeries, error) {
	out := WindowedSeries{}
	// One validation pass builds the live set (non-nil, non-empty, in
	// input order); the merge loop then compacts it in place as series
	// exhaust, so each window only visits series that still contribute
	// — O(total points), not O(windows × fleet). Compaction preserves
	// relative order, which keeps the float accumulation order — and
	// therefore the merged values — bit-identical to a full rescan.
	live := make([]*WindowedSeries, 0, len(series))
	maxLen := 0
	for i, s := range series {
		if s == nil || len(s.Points) == 0 {
			continue
		}
		if s.Width <= 0 {
			return WindowedSeries{}, fmt.Errorf("metrics: merge: series %d has non-positive width %v", i, s.Width)
		}
		if out.Width == 0 {
			out.Width = s.Width
		} else if s.Width != out.Width {
			return WindowedSeries{}, fmt.Errorf("metrics: merge: series %d has width %v, want %v", i, s.Width, out.Width)
		}
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
		live = append(live, s)
	}
	out.Points = make([]WindowPoint, 0, maxLen)
	for i := 0; i < maxLen; i++ {
		var m WindowPoint
		first := true
		sdSum := 0.0
		n := 0
		for _, s := range live {
			if i >= len(s.Points) {
				continue // exhausted: drop from the live set
			}
			live[n] = s
			n++
			p := s.Points[i]
			if first {
				m.Start, m.End = p.Start, p.End
				first = false
			} else {
				if p.Start < m.Start {
					m.Start = p.Start
				}
				if p.End > m.End {
					m.End = p.End
				}
			}
			m.Active += p.Active
			m.Arrivals += p.Arrivals
			m.Departures += p.Departures
			m.RunsCompleted += p.RunsCompleted
			m.STP += p.STP
			sdSum += p.MeanSlowdown * float64(p.Samples)
			m.Samples += p.Samples
			if p.Samples > 0 {
				if m.MinSlowdown == 0 || p.MinSlowdown < m.MinSlowdown {
					m.MinSlowdown = p.MinSlowdown
				}
				if p.MaxSlowdown > m.MaxSlowdown {
					m.MaxSlowdown = p.MaxSlowdown
				}
			}
		}
		live = live[:n]
		if w := m.End - m.Start; w > 0 {
			m.Throughput = float64(m.RunsCompleted) / w
		}
		if m.Samples > 0 {
			m.Unfairness = m.MaxSlowdown / m.MinSlowdown
			m.MeanSlowdown = sdSum / float64(m.Samples)
		} else {
			m.Unfairness = 1
		}
		out.Add(m)
	}
	return out, nil
}
