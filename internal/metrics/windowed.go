package metrics

import "fmt"

// WindowPoint is one fixed-width time window of an experiment. In an
// open system the end-of-run scalar aggregates of Summary are
// meaningless — the population changes under the metric — so fairness
// and throughput are reported per window over the applications active
// in that window.
type WindowPoint struct {
	// Start and End bound the window in simulated seconds.
	Start, End float64
	// Active is the number of applications in the system at the end of
	// the window.
	Active int
	// Arrivals and Departures count the population changes inside the
	// window.
	Arrivals, Departures int
	// RunsCompleted counts instruction quotas retired inside the window.
	RunsCompleted int
	// Throughput is RunsCompleted per simulated second.
	Throughput float64
	// Unfairness, STP and MeanSlowdown are computed over the cumulative
	// slowdowns of the applications active at the window's end (1, 0 and
	// 0 respectively when no application has measurable progress yet).
	Unfairness   float64
	STP          float64
	MeanSlowdown float64
}

// WindowedSeries is a sequence of contiguous windows of equal width.
type WindowedSeries struct {
	// Width is the window length in simulated seconds.
	Width  float64
	Points []WindowPoint
}

// WindowSnapshot summarizes a set of instantaneous slowdowns without
// erroring on degenerate populations, which windows in an open system
// routinely are (empty right after a departure burst, singleton under
// light load). Slowdowns below 1 — tick-quantization artifacts — are
// clamped, mirroring the closed-methodology reporting.
func WindowSnapshot(slowdowns []float64) (unfairness, stp, mean float64) {
	if len(slowdowns) == 0 {
		return 1, 0, 0
	}
	lo, hi, sum, inv := 0.0, 0.0, 0.0, 0.0
	for i, s := range slowdowns {
		if s < 1 {
			s = 1
		}
		if i == 0 || s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
		sum += s
		inv += 1 / s
	}
	return hi / lo, inv, sum / float64(len(slowdowns))
}

// Add appends a window point.
func (s *WindowedSeries) Add(p WindowPoint) { s.Points = append(s.Points, p) }

// MeanUnfairness averages Unfairness over windows that had at least one
// active application (1 when there were none).
func (s *WindowedSeries) MeanUnfairness() float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.Active > 0 {
			sum += p.Unfairness
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// MeanSTP averages STP over windows with at least one active
// application (0 when there were none).
func (s *WindowedSeries) MeanSTP() float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.Active > 0 {
			sum += p.STP
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TotalThroughput is completed runs divided by covered time (0 for an
// empty series).
func (s *WindowedSeries) TotalThroughput() float64 {
	runs, t := 0, 0.0
	for _, p := range s.Points {
		runs += p.RunsCompleted
		t += p.End - p.Start
	}
	if t <= 0 {
		return 0
	}
	return float64(runs) / t
}

// PeakActive returns the largest end-of-window population.
func (s *WindowedSeries) PeakActive() int {
	peak := 0
	for _, p := range s.Points {
		if p.Active > peak {
			peak = p.Active
		}
	}
	return peak
}

// Fingerprint renders the series compactly for determinism checks: two
// series are byte-identical iff every windowed metric is.
func (s *WindowedSeries) Fingerprint() string {
	out := fmt.Sprintf("w=%.17g n=%d", s.Width, len(s.Points))
	for _, p := range s.Points {
		out += fmt.Sprintf(";[%.17g,%.17g)a=%d+%d-%d r=%d u=%.17g stp=%.17g ms=%.17g",
			p.Start, p.End, p.Active, p.Arrivals, p.Departures, p.RunsCompleted,
			p.Unfairness, p.STP, p.MeanSlowdown)
	}
	return out
}
