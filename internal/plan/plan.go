// Package plan defines the common representation of a cache-clustering
// decision: a set of clusters, each grouping applications and holding a
// number of LLC ways. Every policy (LFOC, Dunn, KPart, UCP, the optimal
// solver, stock Linux) produces a Plan; the contention model, the
// simulator and the metrics layer consume it.
//
// A Plan with Overlapping=false is a cache clustering in the strict sense
// of §2.2: clusters partition the application set and way counts sum to
// at most the LLC's associativity, laid out as disjoint contiguous masks.
// Overlapping=true reproduces Dunn's layout, where every cluster's mask
// starts at way 0 (§2.3.2 notes Dunn's partitions "may overlap").
package plan

import (
	"fmt"
	"sort"

	"github.com/faircache/lfoc/internal/cat"
)

// Cluster groups applications into one cache partition.
type Cluster struct {
	// Apps holds workload-relative application indices.
	Apps []int
	// Ways is the partition size in LLC ways.
	Ways int
}

// Plan is a complete clustering decision.
type Plan struct {
	Clusters []Cluster
	// Overlapping selects Dunn-style low-aligned overlapping masks
	// instead of disjoint sequential masks.
	Overlapping bool
}

// SingleCluster returns the stock-Linux plan: every application in one
// cluster covering the whole LLC.
func SingleCluster(nApps, ways int) Plan {
	apps := make([]int, nApps)
	for i := range apps {
		apps[i] = i
	}
	return Plan{Clusters: []Cluster{{Apps: apps, Ways: ways}}}
}

// Validate checks that the plan covers each of nApps applications exactly
// once, that every cluster has at least one way and one application, and
// that non-overlapping plans fit within totalWays.
func (p Plan) Validate(nApps, totalWays int) error {
	seen := make([]bool, nApps)
	waySum := 0
	for ci, c := range p.Clusters {
		if len(c.Apps) == 0 {
			return fmt.Errorf("plan: cluster %d has no applications", ci)
		}
		if c.Ways < 1 {
			return fmt.Errorf("plan: cluster %d has %d ways", ci, c.Ways)
		}
		if c.Ways > totalWays {
			return fmt.Errorf("plan: cluster %d has %d ways, LLC has %d", ci, c.Ways, totalWays)
		}
		for _, a := range c.Apps {
			if a < 0 || a >= nApps {
				return fmt.Errorf("plan: cluster %d references app %d outside [0,%d)", ci, a, nApps)
			}
			if seen[a] {
				return fmt.Errorf("plan: app %d appears in more than one cluster", a)
			}
			seen[a] = true
		}
		waySum += c.Ways
	}
	for a, ok := range seen {
		if !ok {
			return fmt.Errorf("plan: app %d not assigned to any cluster", a)
		}
	}
	if !p.Overlapping && waySum > totalWays {
		return fmt.Errorf("plan: clusters use %d ways, LLC has %d", waySum, totalWays)
	}
	return nil
}

// Masks lays the plan out as CAT capacity bitmasks, one per cluster.
func (p Plan) Masks(totalWays int) ([]cat.WayMask, error) {
	counts := make([]int, len(p.Clusters))
	for i, c := range p.Clusters {
		counts[i] = c.Ways
	}
	if p.Overlapping {
		return cat.OverlappingLowLayout(counts, totalWays)
	}
	return cat.SequentialLayout(counts, totalWays)
}

// AppMasks returns the per-application mask implied by the plan, indexed
// by application index.
func (p Plan) AppMasks(nApps, totalWays int) ([]cat.WayMask, error) {
	masks, err := p.Masks(totalWays)
	if err != nil {
		return nil, err
	}
	out := make([]cat.WayMask, nApps)
	for ci, c := range p.Clusters {
		for _, a := range c.Apps {
			if a < 0 || a >= nApps {
				return nil, fmt.Errorf("plan: app index %d out of range", a)
			}
			out[a] = masks[ci]
		}
	}
	for a, m := range out {
		if m == 0 {
			return nil, fmt.Errorf("plan: app %d has no cluster", a)
		}
	}
	return out, nil
}

// ClusterOf returns the index of the cluster containing app, or -1.
func (p Plan) ClusterOf(app int) int {
	for ci, c := range p.Clusters {
		for _, a := range c.Apps {
			if a == app {
				return ci
			}
		}
	}
	return -1
}

// NumApps returns the number of application slots the plan covers.
func (p Plan) NumApps() int {
	n := 0
	for _, c := range p.Clusters {
		n += len(c.Apps)
	}
	return n
}

// Canonical returns a deterministic rendering such as
// "{0,3}:2 {1}:8 {2}:1" with apps sorted inside clusters and clusters
// sorted by their smallest app, for logging and test assertions.
func (p Plan) Canonical() string {
	type cl struct {
		apps []int
		ways int
	}
	cls := make([]cl, 0, len(p.Clusters))
	for _, c := range p.Clusters {
		apps := append([]int(nil), c.Apps...)
		sort.Ints(apps)
		cls = append(cls, cl{apps, c.Ways})
	}
	sort.Slice(cls, func(i, j int) bool {
		if len(cls[i].apps) == 0 || len(cls[j].apps) == 0 {
			return len(cls[i].apps) > len(cls[j].apps)
		}
		return cls[i].apps[0] < cls[j].apps[0]
	})
	s := ""
	for i, c := range cls {
		if i > 0 {
			s += " "
		}
		s += "{"
		for j, a := range c.apps {
			if j > 0 {
				s += ","
			}
			s += fmt.Sprint(a)
		}
		s += fmt.Sprintf("}:%d", c.ways)
	}
	return s
}
