package plan

import (
	"testing"

	"github.com/faircache/lfoc/internal/cat"
)

func TestSingleCluster(t *testing.T) {
	p := SingleCluster(4, 11)
	if err := p.Validate(4, 11); err != nil {
		t.Fatal(err)
	}
	if len(p.Clusters) != 1 || p.Clusters[0].Ways != 11 || len(p.Clusters[0].Apps) != 4 {
		t.Errorf("plan = %+v", p)
	}
	if p.NumApps() != 4 {
		t.Errorf("NumApps = %d", p.NumApps())
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		p    Plan
	}{
		{"empty cluster", Plan{Clusters: []Cluster{{Apps: nil, Ways: 1}, {Apps: []int{0, 1}, Ways: 1}}}},
		{"zero ways", Plan{Clusters: []Cluster{{Apps: []int{0, 1}, Ways: 0}}}},
		{"too many ways", Plan{Clusters: []Cluster{{Apps: []int{0, 1}, Ways: 12}}}},
		{"app out of range", Plan{Clusters: []Cluster{{Apps: []int{0, 5}, Ways: 2}}}},
		{"duplicate app", Plan{Clusters: []Cluster{{Apps: []int{0, 0}, Ways: 2}, {Apps: []int{1}, Ways: 1}}}},
		{"missing app", Plan{Clusters: []Cluster{{Apps: []int{0}, Ways: 2}}}},
		{"way overflow", Plan{Clusters: []Cluster{{Apps: []int{0}, Ways: 6}, {Apps: []int{1}, Ways: 6}}}},
	}
	for _, c := range cases {
		if err := c.p.Validate(2, 11); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestOverlappingWaySumAllowed(t *testing.T) {
	p := Plan{
		Overlapping: true,
		Clusters: []Cluster{
			{Apps: []int{0}, Ways: 8},
			{Apps: []int{1}, Ways: 8},
		},
	}
	if err := p.Validate(2, 11); err != nil {
		t.Errorf("overlapping plan rejected: %v", err)
	}
}

func TestMasksSequential(t *testing.T) {
	p := Plan{Clusters: []Cluster{
		{Apps: []int{0, 1}, Ways: 1},
		{Apps: []int{2}, Ways: 6},
		{Apps: []int{3}, Ways: 4},
	}}
	masks, err := p.Masks(11)
	if err != nil {
		t.Fatal(err)
	}
	if masks[0] != cat.MaskRange(0, 1) || masks[1] != cat.MaskRange(1, 6) || masks[2] != cat.MaskRange(7, 4) {
		t.Errorf("masks = %v", masks)
	}
}

func TestMasksOverlapping(t *testing.T) {
	p := Plan{
		Overlapping: true,
		Clusters: []Cluster{
			{Apps: []int{0}, Ways: 3},
			{Apps: []int{1}, Ways: 7},
		},
	}
	masks, err := p.Masks(11)
	if err != nil {
		t.Fatal(err)
	}
	if masks[0] != cat.MaskRange(0, 3) || masks[1] != cat.MaskRange(0, 7) {
		t.Errorf("masks = %v", masks)
	}
}

func TestAppMasks(t *testing.T) {
	p := Plan{Clusters: []Cluster{
		{Apps: []int{1, 2}, Ways: 2},
		{Apps: []int{0}, Ways: 9},
	}}
	am, err := p.AppMasks(3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if am[1] != cat.MaskRange(0, 2) || am[2] != cat.MaskRange(0, 2) {
		t.Errorf("cluster-0 app masks wrong: %v", am)
	}
	if am[0] != cat.MaskRange(2, 9) {
		t.Errorf("cluster-1 app mask wrong: %v", am)
	}
	// Missing app detection.
	bad := Plan{Clusters: []Cluster{{Apps: []int{0}, Ways: 2}}}
	if _, err := bad.AppMasks(2, 11); err == nil {
		t.Error("missing app not detected")
	}
}

func TestClusterOf(t *testing.T) {
	p := Plan{Clusters: []Cluster{
		{Apps: []int{1, 2}, Ways: 2},
		{Apps: []int{0}, Ways: 9},
	}}
	if p.ClusterOf(2) != 0 || p.ClusterOf(0) != 1 || p.ClusterOf(7) != -1 {
		t.Error("ClusterOf wrong")
	}
}

func TestCanonical(t *testing.T) {
	a := Plan{Clusters: []Cluster{
		{Apps: []int{3, 0}, Ways: 2},
		{Apps: []int{2, 1}, Ways: 9},
	}}
	b := Plan{Clusters: []Cluster{
		{Apps: []int{1, 2}, Ways: 9},
		{Apps: []int{0, 3}, Ways: 2},
	}}
	if a.Canonical() != b.Canonical() {
		t.Errorf("canonical forms differ: %q vs %q", a.Canonical(), b.Canonical())
	}
	if a.Canonical() != "{0,3}:2 {1,2}:9" {
		t.Errorf("canonical = %q", a.Canonical())
	}
}
