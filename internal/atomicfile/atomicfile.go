// Package atomicfile provides crash-safe file writes: data lands in a
// temporary file in the destination directory, is fsynced, and is then
// renamed over the target. Readers never observe a truncated artifact —
// either the old file (or nothing) or the complete new contents. Every
// results writer in the repo (-json, -record-trace, benchmark JSON,
// checkpoints) goes through this helper so a crash or SIGKILL at any
// instant cannot leave a half-written file behind.
package atomicfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. The temporary file is
// created in path's directory (rename is only atomic within one
// filesystem) and removed on any failure.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: %w", err)
	}
	return nil
}
