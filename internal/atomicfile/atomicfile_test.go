package atomicfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	want := []byte(`{"ok":true}` + "\n")
	if err := WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("got %q, want \"new\"", got)
	}
}

func TestWriteFileLeavesNoTempOnFailure(t *testing.T) {
	dir := t.TempDir()
	// Writing into a missing directory fails before any temp file lands
	// next to the target.
	if err := WriteFile(filepath.Join(dir, "missing", "out"), []byte("x"), 0o644); err == nil {
		t.Fatal("expected error for missing directory")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("stray temp file %s", e.Name())
		}
	}
}
