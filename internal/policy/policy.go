// Package policy implements the cache-management policies the paper
// evaluates against LFOC: stock Linux (no partitioning), UCP, Dunn [24],
// KPart [3] and Best-Static (the optimal-fairness clustering from the
// PBBCache-style solver), plus the static-mode adapter for LFOC itself.
//
// Static policies implement the §5.1 methodology: they receive the
// offline per-way profile tables of the workload's applications, decide a
// clustering once, and the workload then runs under that fixed
// configuration.
package policy

import (
	"fmt"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/lookahead"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/plan"
)

// Workload is the static policies' input: one dominant phase and one
// offline profile table per application.
type Workload struct {
	Plat   *machine.Platform
	Phases []*appmodel.PhaseSpec
	Tables []*appmodel.Table
}

// NumApps returns the workload size.
func (w *Workload) NumApps() int { return len(w.Phases) }

// Validate checks structural consistency.
func (w *Workload) Validate() error {
	if w.Plat == nil {
		return fmt.Errorf("policy: workload without platform")
	}
	if len(w.Phases) == 0 {
		return fmt.Errorf("policy: empty workload")
	}
	if len(w.Tables) != len(w.Phases) {
		return fmt.Errorf("policy: %d tables for %d phases", len(w.Tables), len(w.Phases))
	}
	return nil
}

// Static is a clustering policy evaluated in static mode.
type Static interface {
	Name() string
	Decide(w *Workload) (plan.Plan, error)
}

// Stock is the baseline: no partitioning, everything shares the LLC.
type Stock struct{}

// Name implements Static.
func (Stock) Name() string { return "Stock-Linux" }

// Decide implements Static.
func (Stock) Decide(w *Workload) (plan.Plan, error) {
	if err := w.Validate(); err != nil {
		return plan.Plan{}, err
	}
	return plan.SingleCluster(w.NumApps(), w.Plat.Ways), nil
}

// UCP is Qureshi & Patt's utility-based cache partitioning: strict
// partitioning (one app per cluster) with lookahead on MPKI curves,
// targeting throughput. Feasible only when apps ≤ ways.
type UCP struct{}

// Name implements Static.
func (UCP) Name() string { return "UCP" }

// Decide implements Static.
func (UCP) Decide(w *Workload) (plan.Plan, error) {
	if err := w.Validate(); err != nil {
		return plan.Plan{}, err
	}
	n := w.NumApps()
	if n > w.Plat.Ways {
		return plan.Plan{}, fmt.Errorf("ucp: %d apps exceed %d ways (strict partitioning infeasible)", n, w.Plat.Ways)
	}
	util := make([][]int64, n)
	for i, t := range w.Tables {
		util[i] = lookahead.MissesUtility(scaleCurve(t.MPKI, 1000))
	}
	alloc, err := lookahead.Allocate(util, w.Plat.Ways)
	if err != nil {
		return plan.Plan{}, err
	}
	p := plan.Plan{Clusters: make([]plan.Cluster, n)}
	for i := 0; i < n; i++ {
		p.Clusters[i] = plan.Cluster{Apps: []int{i}, Ways: alloc[i]}
	}
	return p, nil
}

// scaleCurve converts a float curve (index 0 unused) to scaled int64.
func scaleCurve(c []float64, scale float64) []int64 {
	out := make([]int64, len(c))
	for i, v := range c {
		out[i] = int64(v * scale)
	}
	return out
}
