package policy

import (
	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/core"
	fp "github.com/faircache/lfoc/internal/fixedpoint"
	"github.com/faircache/lfoc/internal/plan"
)

// LFOCStatic runs LFOC's clustering algorithm (Algorithm 1 + the Table 1
// classifier) once over offline profiles — the §5.1 static-mode
// evaluation, which measures the quality of the clustering decision
// itself without online monitoring overheads.
//
// The offline float tables are converted to the fixed-point profiles the
// kernel-style core consumes; from there on the decision path is exactly
// the code the dynamic controller runs.
type LFOCStatic struct {
	// Params overrides the LFOC tunables; nil = paper defaults.
	Params *core.Params
}

// Name implements Static.
func (LFOCStatic) Name() string { return "LFOC" }

// Decide implements Static.
func (l LFOCStatic) Decide(w *Workload) (plan.Plan, error) {
	if err := w.Validate(); err != nil {
		return plan.Plan{}, err
	}
	params := core.DefaultParams(w.Plat.Ways)
	if l.Params != nil {
		params = *l.Params
	}
	infos := make([]core.AppInfo, w.NumApps())
	for i, t := range w.Tables {
		profile := ProfileFromTable(t)
		infos[i] = core.AppInfo{
			ID:      i,
			Class:   core.Classify(profile, &params),
			Profile: profile,
		}
	}
	return core.Partition(infos, &params)
}

// ProfileFromTable converts an offline float profile table into the
// fixed-point core.Profile LFOC operates on (the boundary where the
// "userland" float world meets the "kernel" integer world).
func ProfileFromTable(t *appmodel.Table) *core.Profile {
	samples := make([]core.ProfileSample, 0, t.Ways)
	for w := 1; w <= t.Ways; w++ {
		samples = append(samples, core.ProfileSample{
			Ways: w,
			IPC:  fp.FromFloat(t.IPC[w]),
			MPKC: fp.FromFloat(t.MPKC[w]),
		})
	}
	return core.NewProfile(t.Ways, samples)
}
