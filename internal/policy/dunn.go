package policy

import (
	"github.com/faircache/lfoc/internal/kmeans"
	"github.com/faircache/lfoc/internal/plan"
)

// Dunn reimplements Selfa et al.'s fairness-oriented clustering policy
// [24]: applications are grouped with k-means on a single metric — the
// fraction of core stall cycles caused by L2 misses (STALLS_L2_MISS) —
// and each cluster receives a number of ways proportional to its centroid
// stall fraction ("the higher the value of this event, the higher the
// number of cache ways allotted"). Partitions are laid out overlapping
// from the low ways, as in the original proposal (§2.3.2 points out
// Dunn's partitions may overlap).
//
// The paper's §5.1 analysis shows why this under-performs: streaming
// aggressors such as GemsFDTD exhibit stall fractions as high as truly
// sensitive programs, so Dunn maps them to the same (or overlapping)
// large partitions. This implementation deliberately preserves that
// behaviour.
type Dunn struct {
	// KMin/KMax bound the k-means sweep (silhouette picks within); the
	// defaults 2..4 match the small cluster counts the original reports.
	KMin, KMax int
}

// Name implements Static.
func (Dunn) Name() string { return "Dunn" }

// Decide implements Static.
func (d Dunn) Decide(w *Workload) (plan.Plan, error) {
	if err := w.Validate(); err != nil {
		return plan.Plan{}, err
	}
	stalls := make([]float64, w.NumApps())
	for i, t := range w.Tables {
		stalls[i] = t.StallFrac[w.Plat.Ways]
	}
	return dunnPlan(stalls, w.Plat.Ways, d.KMin, d.KMax)
}

// dunnPlan builds the overlapping proportional plan from per-app stall
// fractions; shared by the static and dynamic variants.
func dunnPlan(stalls []float64, totalWays, kMin, kMax int) (plan.Plan, error) {
	if kMin <= 0 {
		kMin = 2
	}
	if kMax <= 0 {
		kMax = 4
	}
	res, err := kmeans.ChooseK(stalls, kMin, kMax)
	if err != nil {
		return plan.Plan{}, err
	}
	clusters := make([]plan.Cluster, res.K)
	var sum float64
	for c := 0; c < res.K; c++ {
		clusters[c].Apps = nil
		sum += res.Centroids[c]
	}
	for i, c := range res.Assignments {
		clusters[c].Apps = append(clusters[c].Apps, i)
	}
	for c := 0; c < res.K; c++ {
		ways := totalWays
		if sum > 0 {
			ways = int(float64(totalWays)*res.Centroids[c]/sum + 0.5)
		}
		if ways < 1 {
			ways = 1
		}
		if ways > totalWays {
			ways = totalWays
		}
		clusters[c].Ways = ways
	}
	return plan.Plan{Clusters: clusters, Overlapping: true}, nil
}
