package policy

import (
	"testing"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/core"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/metrics"
	"github.com/faircache/lfoc/internal/plan"
	"github.com/faircache/lfoc/internal/profiles"
	"github.com/faircache/lfoc/internal/sharing"
)

// workloadOf builds a static Workload from catalog names.
func workloadOf(t *testing.T, names ...string) *Workload {
	t.Helper()
	plat := machine.Skylake()
	w := &Workload{Plat: plat}
	for _, n := range names {
		spec := profiles.MustGet(n)
		ph := &spec.Phases[0]
		w.Phases = append(w.Phases, ph)
		w.Tables = append(w.Tables, appmodel.BuildTable(ph, plat))
	}
	return w
}

func evaluate(t *testing.T, w *Workload, p plan.Plan) metrics.Summary {
	t.Helper()
	model := sharing.NewModel(w.Plat)
	sd, err := sharing.EvaluatePlan(model, w.Phases, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := metrics.Summarize(sd)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWorkloadValidate(t *testing.T) {
	if (&Workload{}).Validate() == nil {
		t.Error("workload without platform accepted")
	}
	w := workloadOf(t, "povray06")
	w.Tables = nil
	if w.Validate() == nil {
		t.Error("mismatched tables accepted")
	}
}

func TestStock(t *testing.T) {
	w := workloadOf(t, "povray06", "lbm06", "soplex06")
	p, err := Stock{}.Decide(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Clusters) != 1 || p.Clusters[0].Ways != w.Plat.Ways {
		t.Errorf("plan = %s", p.Canonical())
	}
	if (Stock{}).Name() != "Stock-Linux" {
		t.Error("name wrong")
	}
}

func TestUCP(t *testing.T) {
	w := workloadOf(t, "xalancbmk06", "povray06", "lbm06")
	p, err := UCP{}.Decide(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(3, w.Plat.Ways); err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, c := range p.Clusters {
		if len(c.Apps) != 1 {
			t.Error("UCP must use strict partitioning")
		}
		sum += c.Ways
	}
	if sum != w.Plat.Ways {
		t.Errorf("ways sum = %d", sum)
	}
	// The cache-sensitive app saves the most misses and must get the
	// most ways.
	wx := p.Clusters[p.ClusterOf(0)].Ways
	for i := 1; i < 3; i++ {
		if p.Clusters[p.ClusterOf(i)].Ways > wx {
			t.Errorf("UCP gave app %d more ways than xalancbmk: %s", i, p.Canonical())
		}
	}
	// Infeasible with more apps than ways.
	big := workloadOf(t, "povray06", "povray06", "povray06", "povray06",
		"povray06", "povray06", "povray06", "povray06", "povray06",
		"povray06", "povray06", "povray06")
	if _, err := (UCP{}).Decide(big); err == nil {
		t.Error("UCP accepted n > ways")
	}
}

func TestDunnStructure(t *testing.T) {
	w := workloadOf(t, "gemsfdtd06", "lbm06", "soplex06", "omnetpp06", "povray06", "gamess06")
	p, err := Dunn{}.Decide(w)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Overlapping {
		t.Error("Dunn plan should be overlapping")
	}
	if err := p.Validate(6, w.Plat.Ways); err != nil {
		t.Fatal(err)
	}
	// Ways should be ordered with stalls: find clusters of povray (low
	// stalls) and of gemsfdtd (high stalls).
	wLight := p.Clusters[p.ClusterOf(4)].Ways
	wStream := p.Clusters[p.ClusterOf(0)].Ways
	if wStream <= wLight {
		t.Errorf("Dunn should give high-stall apps more ways: stream=%d light=%d (%s)",
			wStream, wLight, p.Canonical())
	}
}

func TestDunnConfusionCoMapsStreamingAndSensitive(t *testing.T) {
	// The §5.1 failure mode: GemsFDTD (streaming) and soplex (sensitive)
	// have similar stall fractions, so Dunn places them in the same or
	// overlapping partitions.
	w := workloadOf(t, "gemsfdtd06", "soplex06", "povray06", "gamess06")
	p, err := Dunn{}.Decide(w)
	if err != nil {
		t.Fatal(err)
	}
	masks, err := p.Masks(w.Plat.Ways)
	if err != nil {
		t.Fatal(err)
	}
	mg := masks[p.ClusterOf(0)]
	ms := masks[p.ClusterOf(1)]
	if !mg.Overlaps(ms) {
		t.Errorf("expected overlapping partitions for gems/soplex: %s vs %s", mg, ms)
	}
}

func TestKPartProducesValidThroughputPlan(t *testing.T) {
	w := workloadOf(t, "xalancbmk06", "soplex06", "lbm06", "libquantum06", "povray06", "namd06")
	p, err := KPart{}.Decide(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(6, w.Plat.Ways); err != nil {
		t.Fatalf("%v (%s)", err, p.Canonical())
	}
	// KPart optimizes throughput: it must not be (much) worse than stock.
	stockPlan, _ := Stock{}.Decide(w)
	sKP := evaluate(t, w, p)
	sStock := evaluate(t, w, stockPlan)
	if sKP.STP < sStock.STP*0.97 {
		t.Errorf("KPart STP %.3f well below stock %.3f", sKP.STP, sStock.STP)
	}
}

func TestKPartMoreAppsThanWays(t *testing.T) {
	// 12 apps on 11 ways: singleton level infeasible, needs merging.
	names := []string{
		"xalancbmk06", "soplex06", "omnetpp06", "lbm06", "libquantum06", "milc06",
		"povray06", "namd06", "gamess06", "hmmer06", "gobmk06", "sjeng06",
	}
	w := workloadOf(t, names...)
	p, err := KPart{}.Decide(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(12, w.Plat.Ways); err != nil {
		t.Fatalf("%v (%s)", err, p.Canonical())
	}
	if len(p.Clusters) > w.Plat.Ways {
		t.Error("more clusters than ways")
	}
}

func TestLFOCStaticIsolatesStreaming(t *testing.T) {
	w := workloadOf(t, "xalancbmk06", "soplex06", "lbm06", "libquantum06", "povray06")
	p, err := LFOCStatic{}.Decide(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(5, w.Plat.Ways); err != nil {
		t.Fatalf("%v (%s)", err, p.Canonical())
	}
	// lbm (2) and libquantum (3) must share a small cluster.
	ci := p.ClusterOf(2)
	if ci != p.ClusterOf(3) {
		t.Errorf("streaming apps not co-located: %s", p.Canonical())
	}
	if p.Clusters[ci].Ways > 2 {
		t.Errorf("streaming cluster too large: %s", p.Canonical())
	}
	// And LFOC must beat stock on unfairness for this mix.
	stockPlan, _ := Stock{}.Decide(w)
	if sLFOC, sStock := evaluate(t, w, p), evaluate(t, w, stockPlan); sLFOC.Unfairness >= sStock.Unfairness {
		t.Errorf("LFOC unfairness %.3f >= stock %.3f", sLFOC.Unfairness, sStock.Unfairness)
	}
}

func TestLFOCStaticClassificationMatchesOracle(t *testing.T) {
	// The fixed-point classifier over converted tables must agree with
	// the float Table 1 oracle for every catalog application.
	plat := machine.Skylake()
	crit := appmodel.DefaultCriteria()
	params := core.DefaultParams(plat.Ways)
	for _, name := range profiles.Names() {
		spec := profiles.MustGet(name)
		tbl := appmodel.DominantTable(spec, plat)
		want := crit.Classify(tbl)
		got := core.Classify(ProfileFromTable(tbl), &params)
		if got.String() != want.String() {
			t.Errorf("%s: fixed-point classifier says %v, oracle says %v", name, got, want)
		}
	}
}

func TestBestStaticBeatsStock(t *testing.T) {
	w := workloadOf(t, "xalancbmk06", "soplex06", "lbm06", "povray06")
	p, err := BestStatic{}.Decide(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(4, w.Plat.Ways); err != nil {
		t.Fatal(err)
	}
	stockPlan, _ := Stock{}.Decide(w)
	sBest := evaluate(t, w, p)
	sStock := evaluate(t, w, stockPlan)
	if sBest.Unfairness >= sStock.Unfairness {
		t.Errorf("Best-Static unfairness %.3f >= stock %.3f", sBest.Unfairness, sStock.Unfairness)
	}
}

func TestBestStaticAtLeastAsFairAsLFOC(t *testing.T) {
	w := workloadOf(t, "xalancbmk06", "omnetpp06", "lbm06", "milc06", "povray06", "namd06")
	pBest, err := BestStatic{}.Decide(w)
	if err != nil {
		t.Fatal(err)
	}
	pLFOC, err := LFOCStatic{}.Decide(w)
	if err != nil {
		t.Fatal(err)
	}
	sBest := evaluate(t, w, pBest)
	sLFOC := evaluate(t, w, pLFOC)
	// Allow solver-model mismatch slack: Best-Static scores candidates
	// under a frozen bandwidth factor.
	if sBest.Unfairness > sLFOC.Unfairness*1.05 {
		t.Errorf("Best-Static (%.3f) clearly worse than LFOC (%.3f)", sBest.Unfairness, sLFOC.Unfairness)
	}
}

func TestKPartCombineCostsReflectSharing(t *testing.T) {
	w := workloadOf(t, "xalancbmk06", "lbm06")
	sens := singleton(w, 0)
	strm := singleton(w, 1)
	eval := sharing.NewEvaluator(&sharing.Model{Plat: w.Plat, CacheIters: 10, Damping: 0.6})
	merged := combine(w, eval, sens, strm)
	ways := w.Plat.Ways
	if len(merged.members) != 2 {
		t.Fatal("member bookkeeping wrong")
	}
	// Sharing a partition with a streaming app must cost the sensitive
	// app IPC relative to owning the same partition alone.
	if merged.ipc[ways][0] >= sens.ipc[ways][0] {
		t.Errorf("sharing did not cost the sensitive app: %.3f vs %.3f",
			merged.ipc[ways][0], sens.ipc[ways][0])
	}
	// Combined misses at full size at least match the sum of what both
	// would produce with the same capacity split between them.
	if merged.mpki[ways] <= 0 {
		t.Error("combined miss curve empty")
	}
	// Miss curve monotone nonincreasing with more ways.
	for ww := 2; ww <= ways; ww++ {
		if merged.mpki[ww] > merged.mpki[ww-1]*1.02 {
			t.Errorf("combined MPKI increases at %d ways", ww)
		}
	}
}

func TestCurveDistance(t *testing.T) {
	a := []float64{0, 10, 5, 2}
	if d := curveDistance(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	b := []float64{0, 10, 10, 10} // flat
	if d := curveDistance(a, b); d <= 0 {
		t.Errorf("distinct curves distance = %v", d)
	}
	// Scale invariance: 2x curve has zero distance.
	c := []float64{0, 20, 10, 4}
	if d := curveDistance(a, c); d > 1e-9 {
		t.Errorf("scaled curve distance = %v", d)
	}
}
