package policy

import (
	"fmt"
	"math"

	"github.com/faircache/lfoc/internal/cat"
	"github.com/faircache/lfoc/internal/lookahead"
	"github.com/faircache/lfoc/internal/plan"
	"github.com/faircache/lfoc/internal/sharing"
)

// KPart reimplements El-Sayed et al.'s hybrid partitioning-sharing
// technique [3], the throughput-oriented baseline of §5. The algorithm:
//
//  1. starts with every application in its own cluster;
//  2. iteratively merges the two most similar clusters (hierarchical
//     clustering), where similarity follows the Whirlpool-style distance
//     on normalized miss curves [16] — clusters whose miss curves have
//     the same shape share cache space with the least loss;
//  3. builds each merged cluster's *combined* curves (misses and
//     per-member IPC as functions of the cluster's way count) — the
//     original estimates these from online profiling plus an analytic
//     sharing model, and we use the same contention model that governs
//     the rest of this reproduction (internal/sharing), so merging costs
//     exactly what sharing actually costs;
//  4. evaluates every level of the resulting dendrogram: ways are
//     distributed across clusters with UCP's lookahead on misses-saved
//     utility, the level's throughput (weighted speedup) is estimated
//     from the per-member IPC curves, and the best level wins.
//
// Like the original, the algorithm needs far more profiling information
// than LFOC (full per-way curves for every application) and far more
// computation (Table 2 compares their execution times).
type KPart struct{}

// Name implements Static.
func (KPart) Name() string { return "KPart" }

// kcluster is one dendrogram node.
type kcluster struct {
	members []int
	mpki    []float64   // combined misses curve, index 1..ways
	ipc     [][]float64 // ipc[w][j] = member j's IPC with the cluster at w ways
}

// Decide implements Static.
func (KPart) Decide(w *Workload) (plan.Plan, error) {
	if err := w.Validate(); err != nil {
		return plan.Plan{}, err
	}
	// One evaluation session for the whole dendrogram: curve caches and
	// equilibrium scratch are shared across every merge evaluation.
	model := &sharing.Model{Plat: w.Plat, CacheIters: 10, Damping: 0.6}
	eval := sharing.NewEvaluator(model)
	levels := kpartDendrogram(w, eval)
	return kpartBestLevel(w, levels)
}

// singleton builds the dendrogram leaf for one application.
func singleton(w *Workload, i int) *kcluster {
	ways := w.Plat.Ways
	c := &kcluster{
		members: []int{i},
		mpki:    make([]float64, ways+1),
		ipc:     make([][]float64, ways+1),
	}
	for ww := 1; ww <= ways; ww++ {
		c.mpki[ww] = w.Tables[i].MPKI[ww]
		c.ipc[ww] = []float64{w.Tables[i].IPC[ww]}
	}
	return c
}

// combine merges two clusters, deriving the combined curves from the
// sharing equilibrium of all members inside a single partition of each
// possible size.
func combine(w *Workload, eval *sharing.Evaluator, a, b *kcluster) *kcluster {
	ways := w.Plat.Ways
	members := append(append([]int(nil), a.members...), b.members...)
	out := &kcluster{
		members: members,
		mpki:    make([]float64, ways+1),
		ipc:     make([][]float64, ways+1),
	}
	apps := make([]sharing.App, len(members))
	var res []sharing.Result
	for ww := 1; ww <= ways; ww++ {
		mask := cat.MaskRange(0, ww)
		for j, m := range members {
			apps[j] = sharing.App{ID: m, Phase: w.Phases[m], Mask: mask}
		}
		res = eval.EvaluateAtScaleInto(res, apps, 1)
		out.ipc[ww] = make([]float64, len(members))
		total := 0.0
		for j := range members {
			p := res[j].Perf
			out.ipc[ww][j] = p.IPC
			total += p.MPKI
		}
		out.mpki[ww] = total
	}
	return out
}

// kpartDendrogram builds all levels of the hierarchical clustering, from
// n singleton clusters down to one.
func kpartDendrogram(w *Workload, eval *sharing.Evaluator) [][]*kcluster {
	cur := make([]*kcluster, w.NumApps())
	for i := range cur {
		cur[i] = singleton(w, i)
	}
	levels := [][]*kcluster{append([]*kcluster(nil), cur...)}
	for len(cur) > 1 {
		bi, bj := 0, 1
		best := math.Inf(1)
		for i := 0; i < len(cur); i++ {
			for j := i + 1; j < len(cur); j++ {
				if d := curveDistance(cur[i].mpki, cur[j].mpki); d < best {
					best, bi, bj = d, i, j
				}
			}
		}
		merged := combine(w, eval, cur[bi], cur[bj])
		next := make([]*kcluster, 0, len(cur)-1)
		for idx, c := range cur {
			if idx != bi && idx != bj {
				next = append(next, c)
			}
		}
		next = append(next, merged)
		cur = next
		levels = append(levels, append([]*kcluster(nil), cur...))
	}
	return levels
}

// curveDistance is the Whirlpool-style shape distance between normalized
// miss curves: similar-shaped curves cluster cheaply.
func curveDistance(a, b []float64) float64 {
	na, nb := a[1], b[1]
	if na <= 0 {
		na = 1
	}
	if nb <= 0 {
		nb = 1
	}
	d := 0.0
	for w := 1; w < len(a) && w < len(b); w++ {
		d += math.Abs(a[w]/na - b[w]/nb)
	}
	return d
}

// kpartBestLevel scores every feasible dendrogram level and returns the
// plan of the one with the highest estimated weighted speedup.
func kpartBestLevel(w *Workload, levels [][]*kcluster) (plan.Plan, error) {
	ways := w.Plat.Ways
	aloneIPC := make([]float64, w.NumApps())
	for i, t := range w.Tables {
		aloneIPC[i] = t.IPC[ways]
	}
	bestWS := math.Inf(-1)
	var bestPlan plan.Plan
	found := false
	for _, level := range levels {
		m := len(level)
		if m > ways {
			continue // cannot give every cluster a way
		}
		util := make([][]int64, m)
		for ci, c := range level {
			util[ci] = lookahead.MissesUtility(scaleCurve(c.mpki, 1000))
		}
		alloc, err := lookahead.Allocate(util, ways)
		if err != nil {
			continue
		}
		ws := 0.0
		for ci, c := range level {
			for j, member := range c.members {
				ws += c.ipc[alloc[ci]][j] / aloneIPC[member]
			}
		}
		if ws > bestWS {
			bestWS = ws
			p := plan.Plan{Clusters: make([]plan.Cluster, m)}
			for ci, c := range level {
				p.Clusters[ci] = plan.Cluster{
					Apps: append([]int(nil), c.members...),
					Ways: alloc[ci],
				}
			}
			bestPlan = p
			found = true
		}
	}
	if !found {
		return plan.Plan{}, fmt.Errorf("kpart: no feasible dendrogram level (apps=%d ways=%d)", w.NumApps(), ways)
	}
	return bestPlan, nil
}
