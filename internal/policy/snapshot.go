package policy

import (
	"encoding/json"
	"fmt"

	"github.com/faircache/lfoc/internal/plan"
)

// Checkpoint support: every dynamic policy implements
// sim.PolicySnapshotter by serializing exactly the state its
// construction parameters do not determine — learned histories, sweep
// positions, the current plan — so a freshly constructed policy plus
// PolicyRestore renders the identical Assignment(). Construction
// parameters (way count, window cadence, clustering bounds) are code,
// not checkpoint data; restoring under different ones is a user error
// the cross-checks below catch where cheap.

// stallWindowSnapshot serializes a stallWindow ring verbatim (values,
// cursor, fill) — raw is simpler than rotation-normalizing and equally
// exact.
type stallWindowSnapshot struct {
	Vals []float64 `json:"vals"`
	Next int       `json:"next"`
	N    int       `json:"n"`
}

type dunnAppSnapshot struct {
	ID      int                 `json:"id"`
	History stallWindowSnapshot `json:"history"`
}

type dunnSnapshot struct {
	Apps    []dunnAppSnapshot `json:"apps"`
	Current plan.Plan         `json:"current"`
	Have    bool              `json:"have"`
}

// PolicySnapshot implements sim.PolicySnapshotter.
func (d *DunnDynamic) PolicySnapshot() ([]byte, error) {
	snap := dunnSnapshot{Current: d.current, Have: d.have}
	for _, id := range d.order {
		h := d.history[id]
		snap.Apps = append(snap.Apps, dunnAppSnapshot{
			ID: id,
			History: stallWindowSnapshot{
				Vals: append([]float64(nil), h.vals...),
				Next: h.next,
				N:    h.n,
			},
		})
	}
	return json.Marshal(snap)
}

// PolicyRestore implements sim.PolicySnapshotter.
func (d *DunnDynamic) PolicyRestore(data []byte) error {
	if len(d.history) != 0 {
		return fmt.Errorf("dunn: restore into a policy that already has %d apps", len(d.history))
	}
	var snap dunnSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("dunn: restore: %w", err)
	}
	d.order = d.order[:0]
	for _, a := range snap.Apps {
		if _, dup := d.history[a.ID]; dup {
			return fmt.Errorf("dunn: restore: duplicate app %d", a.ID)
		}
		h := newStallWindow(5)
		if len(a.History.Vals) != len(h.vals) ||
			a.History.N < 0 || a.History.N > len(h.vals) ||
			a.History.Next < 0 || a.History.Next >= len(h.vals) {
			return fmt.Errorf("dunn: restore: app %d has a malformed stall window", a.ID)
		}
		copy(h.vals, a.History.Vals)
		h.next = a.History.Next
		h.n = a.History.N
		d.history[a.ID] = h
		d.order = append(d.order, a.ID)
	}
	d.current = snap.Current
	d.have = snap.Have
	return nil
}

type stockSnapshot struct {
	IDs []int `json:"ids,omitempty"`
}

// PolicySnapshot implements sim.PolicySnapshotter.
func (s *StockDynamic) PolicySnapshot() ([]byte, error) {
	return json.Marshal(stockSnapshot{IDs: append([]int(nil), s.ids...)})
}

// PolicyRestore implements sim.PolicySnapshotter.
func (s *StockDynamic) PolicyRestore(data []byte) error {
	if len(s.ids) != 0 {
		return fmt.Errorf("stock: restore into a policy that already has %d apps", len(s.ids))
	}
	var snap stockSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("stock: restore: %w", err)
	}
	s.ids = append(s.ids[:0], snap.IDs...)
	return nil
}

type kdAppSnapshot struct {
	ID       int       `json:"id"`
	IPC      []float64 `json:"ipc"`
	MPKI     []float64 `json:"mpki"`
	NextWays int       `json:"next_ways"`
	Done     bool      `json:"done"`
}

type kpartSnapshot struct {
	Apps    []kdAppSnapshot `json:"apps"`
	Active  int             `json:"active"`
	Reconfs int             `json:"reconfs"`
	Current plan.Plan       `json:"current"`
	Have    bool            `json:"have"`
}

// PolicySnapshot implements sim.PolicySnapshotter.
func (k *KPartDynaway) PolicySnapshot() ([]byte, error) {
	snap := kpartSnapshot{
		Active:  k.active,
		Reconfs: k.reconfs,
		Current: k.current,
		Have:    k.have,
	}
	for _, id := range k.order {
		st := k.apps[id]
		snap.Apps = append(snap.Apps, kdAppSnapshot{
			ID:       id,
			IPC:      append([]float64(nil), st.ipc...),
			MPKI:     append([]float64(nil), st.mpki...),
			NextWays: st.nextWays,
			Done:     st.done,
		})
	}
	return json.Marshal(snap)
}

// PolicyRestore implements sim.PolicySnapshotter.
func (k *KPartDynaway) PolicyRestore(data []byte) error {
	if len(k.apps) != 0 {
		return fmt.Errorf("kpart-dynaway: restore into a policy that already has %d apps", len(k.apps))
	}
	var snap kpartSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("kpart-dynaway: restore: %w", err)
	}
	k.order = k.order[:0]
	for _, a := range snap.Apps {
		if _, dup := k.apps[a.ID]; dup {
			return fmt.Errorf("kpart-dynaway: restore: duplicate app %d", a.ID)
		}
		if len(a.IPC) != k.ways+1 || len(a.MPKI) != k.ways+1 {
			return fmt.Errorf("kpart-dynaway: restore: app %d curves sized for %d ways, policy has %d",
				a.ID, len(a.IPC)-1, k.ways)
		}
		k.apps[a.ID] = &kdApp{
			ipc:      append([]float64(nil), a.IPC...),
			mpki:     append([]float64(nil), a.MPKI...),
			nextWays: a.NextWays,
			done:     a.Done,
		}
		k.order = append(k.order, a.ID)
	}
	k.active = snap.Active
	k.reconfs = snap.Reconfs
	k.current = snap.Current
	k.have = snap.Have
	return nil
}
