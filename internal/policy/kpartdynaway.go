package policy

import (
	"fmt"
	"math"
	"sort"

	"github.com/faircache/lfoc/internal/cat"
	"github.com/faircache/lfoc/internal/lookahead"
	"github.com/faircache/lfoc/internal/plan"
	"github.com/faircache/lfoc/internal/pmc"
)

// KPartDynaway is the dynamic variant of KPart ("KPart-Dynaway" [3]).
// The authors' own user-level implementation crashed on the paper's
// platform, so §5.2 could not evaluate it; the paper leaves "the
// adaptation of this somewhat complex implementation ... for future
// work". This is that adaptation, built on the same runtime contract as
// the other dynamic policies.
//
// Faithful to the original's design — and to the overheads LFOC's §4.2
// criticizes — Dynaway profiles every application with a *full* downward
// way sweep (ways−1 → 1), gathering IPC and MPKI at every size, and
// repeats the whole profiling round periodically rather than on detected
// phase changes. Between rounds it runs KPart's hierarchical clustering
// on the measured curves: min-plus curve combination (the profiled-curve
// analogue of the original's curve combining), lookahead on misses-saved
// utility, and level selection by estimated weighted speedup.
type KPartDynaway struct {
	ways        int
	windowInsns uint64 // sampling window (10M in the paper's setting)
	// ResampleEvery re-profiles everything after this many partitioner
	// activations (Dynaway's periodic behaviour).
	ResampleEvery int

	order   []int
	apps    map[int]*kdApp
	active  int // app being sampled, or -1
	reconfs int
	current plan.Plan
	have    bool
}

type kdApp struct {
	ipc      []float64 // measured IPC per way count (index 1..ways)
	mpki     []float64
	nextWays int // next sampling-partition size to measure (downward)
	done     bool
}

// NewKPartDynaway creates the runtime for a given LLC way count.
func NewKPartDynaway(ways int) *KPartDynaway {
	return &KPartDynaway{
		ways:          ways,
		windowInsns:   10_000_000,
		ResampleEvery: 40, // ~20s at the paper's 500ms period
		apps:          map[int]*kdApp{},
		active:        -1,
	}
}

// SetWindow overrides the sampling window (scaled experiments).
func (k *KPartDynaway) SetWindow(insns uint64) {
	if insns > 0 {
		k.windowInsns = insns
	}
}

// AddApp registers an application and schedules its profiling sweep.
func (k *KPartDynaway) AddApp(id int) error {
	if _, dup := k.apps[id]; dup {
		return fmt.Errorf("kpart-dynaway: app %d already registered", id)
	}
	k.apps[id] = k.freshApp()
	k.order = append(k.order, id)
	sort.Ints(k.order)
	k.have = false
	return nil
}

func (k *KPartDynaway) freshApp() *kdApp {
	return &kdApp{
		ipc:      make([]float64, k.ways+1),
		mpki:     make([]float64, k.ways+1),
		nextWays: k.ways - 1,
	}
}

// RemoveApp deregisters an application.
func (k *KPartDynaway) RemoveApp(id int) {
	delete(k.apps, id)
	for i, v := range k.order {
		if v == id {
			k.order = append(k.order[:i], k.order[i+1:]...)
			break
		}
	}
	if k.active == id {
		k.active = -1
	}
	k.have = false
}

// WindowInsns implements sim.Dynamic: Dynaway always runs short windows
// (its profiling is continuous, unlike LFOC's event-driven episodes).
func (k *KPartDynaway) WindowInsns(int) uint64 { return k.windowInsns }

// OnWindow implements sim.Dynamic.
func (k *KPartDynaway) OnWindow(id int, w pmc.Sample) bool {
	if k.active != id {
		return k.maybeStartSampling()
	}
	st := k.apps[id]
	if st == nil || st.done {
		k.active = -1
		return k.maybeStartSampling()
	}
	st.ipc[st.nextWays] = w.IPC().Float()
	st.mpki[st.nextWays] = w.LLCMPKI().Float()
	st.nextWays--
	if st.nextWays < 1 {
		// Extrapolate the full-LLC point from the largest measured size.
		st.ipc[k.ways] = st.ipc[k.ways-1]
		st.mpki[k.ways] = st.mpki[k.ways-1]
		st.done = true
		k.active = -1
		k.maybeStartSampling()
	}
	return true
}

// maybeStartSampling picks the next unprofiled app; returns true when
// the CAT configuration changes.
func (k *KPartDynaway) maybeStartSampling() bool {
	if k.active >= 0 {
		return false
	}
	for _, id := range k.order {
		if !k.apps[id].done {
			k.active = id
			return true
		}
	}
	return false
}

// Reconfigure implements sim.Dynamic: rebuild the clustering from the
// measured curves, and periodically restart the profiling round.
func (k *KPartDynaway) Reconfigure() plan.Plan {
	k.reconfs++
	if k.ResampleEvery > 0 && k.reconfs%k.ResampleEvery == 0 {
		for _, st := range k.apps {
			*st = *k.freshApp()
		}
		k.active = -1
		k.maybeStartSampling()
	}
	k.rebuild()
	return k.current
}

// rebuild runs the measured-curve KPart algorithm; apps without complete
// profiles keep everything in one cluster (bootstrap).
func (k *KPartDynaway) rebuild() {
	k.have = true
	n := len(k.order)
	if n == 0 {
		k.current = plan.Plan{}
		return
	}
	for _, id := range k.order {
		if !k.apps[id].done {
			k.current = stockPlanFor(k.order, k.ways)
			return
		}
	}
	p, err := kpartFromCurves(k.order, k.apps, k.ways)
	if err != nil {
		p = stockPlanFor(k.order, k.ways)
	}
	k.current = p
}

func stockPlanFor(ids []int, ways int) plan.Plan {
	return plan.Plan{Clusters: []plan.Cluster{{Apps: append([]int(nil), ids...), Ways: ways}}}
}

// Assignment implements sim.Dynamic: the sampling layout while a sweep
// is active, otherwise the current plan's masks.
func (k *KPartDynaway) Assignment() (map[int]cat.WayMask, error) {
	out := make(map[int]cat.WayMask, len(k.order))
	if k.active >= 0 {
		st := k.apps[k.active]
		sample, rest, err := cat.SamplingLayout(st.nextWays, k.ways)
		if err != nil {
			return nil, err
		}
		for _, id := range k.order {
			if id == k.active {
				out[id] = sample
			} else {
				out[id] = rest
			}
		}
		return out, nil
	}
	if !k.have {
		k.rebuild()
	}
	if len(k.current.Clusters) == 0 {
		return out, nil
	}
	masks, err := k.current.Masks(k.ways)
	if err != nil {
		return nil, err
	}
	for ci, c := range k.current.Clusters {
		for _, id := range c.Apps {
			out[id] = masks[ci]
		}
	}
	return out, nil
}

// kdCluster is a dendrogram node over measured curves.
type kdCluster struct {
	members []int
	mpki    []float64
	ipcSum  []float64
	splits  [][]int
}

// kpartFromCurves runs KPart's algorithm with min-plus curve combination
// over measured per-app curves (the information the original gathers
// online).
func kpartFromCurves(ids []int, apps map[int]*kdApp, ways int) (plan.Plan, error) {
	cur := make([]*kdCluster, len(ids))
	for i, id := range ids {
		st := apps[id]
		c := &kdCluster{
			members: []int{id},
			mpki:    append([]float64(nil), st.mpki...),
			ipcSum:  append([]float64(nil), st.ipc...),
			splits:  make([][]int, ways+1),
		}
		for w := 1; w <= ways; w++ {
			c.splits[w] = []int{w}
		}
		cur[i] = c
	}
	levels := [][]*kdCluster{append([]*kdCluster(nil), cur...)}
	for len(cur) > 1 {
		bi, bj := 0, 1
		best := math.Inf(1)
		for i := 0; i < len(cur); i++ {
			for j := i + 1; j < len(cur); j++ {
				if d := curveDistance(cur[i].mpki, cur[j].mpki); d < best {
					best, bi, bj = d, i, j
				}
			}
		}
		merged := minPlusCombine(cur[bi], cur[bj], ways)
		next := make([]*kdCluster, 0, len(cur)-1)
		for idx, c := range cur {
			if idx != bi && idx != bj {
				next = append(next, c)
			}
		}
		cur = append(next, merged)
		levels = append(levels, append([]*kdCluster(nil), cur...))
	}

	aloneIPC := map[int]float64{}
	for _, id := range ids {
		aloneIPC[id] = math.Max(apps[id].ipc[ways], 1e-9)
	}
	bestWS := math.Inf(-1)
	var bestPlan plan.Plan
	found := false
	for _, level := range levels {
		m := len(level)
		if m > ways {
			continue
		}
		util := make([][]int64, m)
		for ci, c := range level {
			util[ci] = lookahead.MissesUtility(scaleCurve(c.mpki, 1000))
		}
		alloc, err := lookahead.Allocate(util, ways)
		if err != nil {
			continue
		}
		ws := 0.0
		ok := true
		for ci, c := range level {
			split := c.splits[alloc[ci]]
			// Contention haircut: the min-plus combination is optimistic
			// (it treats intra-cluster sharing as a perfect partition),
			// so each member pays a small penalty per co-tenant; without
			// it every level ties and the coarsest one wins spuriously.
			haircut := math.Pow(0.96, float64(len(c.members)-1))
			for j, member := range c.members {
				w := split[j]
				if w < 1 {
					w = 1
				}
				ipc := apps[member].ipc[w] * haircut
				if ipc <= 0 {
					ok = false
					break
				}
				ws += ipc / aloneIPC[member]
			}
			if !ok {
				break
			}
		}
		if ok && ws > bestWS {
			bestWS = ws
			p := plan.Plan{Clusters: make([]plan.Cluster, m)}
			for ci, c := range level {
				p.Clusters[ci] = plan.Cluster{Apps: append([]int(nil), c.members...), Ways: alloc[ci]}
			}
			bestPlan = p
			found = true
		}
	}
	if !found {
		return plan.Plan{}, fmt.Errorf("kpart-dynaway: no feasible level")
	}
	return bestPlan, nil
}

// minPlusCombine merges two measured-curve clusters by choosing, for
// every total way count, the member split minimizing combined misses.
func minPlusCombine(a, b *kdCluster, ways int) *kdCluster {
	out := &kdCluster{
		members: append(append([]int(nil), a.members...), b.members...),
		mpki:    make([]float64, ways+1),
		ipcSum:  make([]float64, ways+1),
		splits:  make([][]int, ways+1),
	}
	for w := 1; w <= ways; w++ {
		bestM := math.Inf(1)
		bestA := 0
		for wa := 0; wa <= w; wa++ {
			var m float64
			switch {
			case wa == 0:
				m = a.mpki[1]*1.1 + b.mpki[w]
			case wa == w:
				m = a.mpki[w] + b.mpki[1]*1.1
			default:
				m = a.mpki[wa] + b.mpki[w-wa]
			}
			if m < bestM {
				bestM = m
				bestA = wa
			}
		}
		out.mpki[w] = bestM
		split := make([]int, len(out.members))
		var aSplit, bSplit []int
		if bestA == 0 {
			aSplit = make([]int, len(a.members))
		} else {
			aSplit = a.splits[bestA]
		}
		if w-bestA == 0 {
			bSplit = make([]int, len(b.members))
		} else {
			bSplit = b.splits[w-bestA]
		}
		copy(split, aSplit)
		copy(split[len(a.members):], bSplit)
		out.splits[w] = split
		ia, ib := 0.0, 0.0
		if bestA > 0 {
			ia = a.ipcSum[bestA]
		} else {
			ia = a.ipcSum[1] * 0.9
		}
		if w-bestA > 0 {
			ib = b.ipcSum[w-bestA]
		} else {
			ib = b.ipcSum[1] * 0.9
		}
		out.ipcSum[w] = ia + ib
	}
	return out
}

// Profiled reports how many applications have complete profiles
// (diagnostics).
func (k *KPartDynaway) Profiled() int {
	n := 0
	for _, st := range k.apps {
		if st.done {
			n++
		}
	}
	return n
}
