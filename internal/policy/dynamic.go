package policy

import (
	"fmt"
	"sort"

	"github.com/faircache/lfoc/internal/cat"
	"github.com/faircache/lfoc/internal/plan"
	"github.com/faircache/lfoc/internal/pmc"
)

// DunnDynamic is the user-level dynamic variant of Dunn used in §5.2: it
// continuously monitors each application's STALLS_L2_MISS stall fraction
// (the only event Dunn needs) and re-runs the k-means clustering at every
// partitioner activation. There is no sampling mode and no per-way
// profiling — that simplicity is Dunn's selling point and its weakness.
type DunnDynamic struct {
	ways        int
	windowInsns uint64
	kMin, kMax  int

	order   []int
	history map[int]*stallWindow
	current plan.Plan
	have    bool
}

type stallWindow struct {
	vals []float64
	next int
	n    int
}

func newStallWindow(n int) *stallWindow { return &stallWindow{vals: make([]float64, n)} }

func (s *stallWindow) push(v float64) {
	s.vals[s.next] = v
	s.next = (s.next + 1) % len(s.vals)
	if s.n < len(s.vals) {
		s.n++
	}
}

func (s *stallWindow) mean() float64 {
	if s.n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < s.n; i++ {
		sum += s.vals[i]
	}
	return sum / float64(s.n)
}

// NewDunnDynamic creates the runtime for a given LLC way count. The
// window matches the paper's monitoring cadence (100M instructions).
func NewDunnDynamic(ways int) *DunnDynamic {
	return &DunnDynamic{
		ways:        ways,
		windowInsns: 100_000_000,
		kMin:        2,
		kMax:        4,
		history:     map[int]*stallWindow{},
	}
}

// AddApp registers an application.
func (d *DunnDynamic) AddApp(id int) error {
	if _, dup := d.history[id]; dup {
		return fmt.Errorf("dunn: app %d already registered", id)
	}
	d.history[id] = newStallWindow(5)
	d.order = append(d.order, id)
	sort.Ints(d.order)
	d.have = false
	return nil
}

// RemoveApp deregisters an application.
func (d *DunnDynamic) RemoveApp(id int) {
	delete(d.history, id)
	for i, v := range d.order {
		if v == id {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	d.have = false
}

// WindowInsns returns the monitoring window (constant for Dunn).
func (d *DunnDynamic) WindowInsns(int) uint64 { return d.windowInsns }

// SetWindow overrides the monitoring window (used by scaled experiments
// that shrink every instruction quantity by the same factor).
func (d *DunnDynamic) SetWindow(insns uint64) {
	if insns > 0 {
		d.windowInsns = insns
	}
}

// OnWindow records the stall fraction; Dunn never changes the CAT
// configuration between partitioner activations, so it always returns
// false.
func (d *DunnDynamic) OnWindow(id int, w pmc.Sample) bool {
	if h, ok := d.history[id]; ok {
		h.push(w.StallFraction().Float())
	}
	return false
}

// PassiveWindows implements the sim.PassiveWindows refinement: OnWindow
// only pushes into the window's own per-app history (never requesting a
// mask refresh), and the monitoring cadence is fixed, so the kernel may
// deliver Dunn's windows inside an event-horizon batch.
func (d *DunnDynamic) PassiveWindows() bool { return true }

// Reconfigure re-runs the clustering over the smoothed stall fractions.
func (d *DunnDynamic) Reconfigure() plan.Plan {
	if len(d.order) == 0 {
		d.current = plan.Plan{}
		d.have = true
		return d.current
	}
	stalls := make([]float64, len(d.order))
	for i, id := range d.order {
		stalls[i] = d.history[id].mean()
	}
	p, err := dunnPlan(stalls, d.ways, d.kMin, d.kMax)
	if err != nil {
		p = plan.SingleCluster(len(d.order), d.ways)
	}
	// dunnPlan works in positional indices; translate to app ids.
	for ci := range p.Clusters {
		ids := make([]int, len(p.Clusters[ci].Apps))
		for j, pos := range p.Clusters[ci].Apps {
			ids[j] = d.order[pos]
		}
		p.Clusters[ci].Apps = ids
	}
	d.current = p
	d.have = true
	return d.current
}

// Assignment returns the masks of the current plan (overlapping layout).
func (d *DunnDynamic) Assignment() (map[int]cat.WayMask, error) {
	if !d.have {
		d.Reconfigure()
	}
	out := make(map[int]cat.WayMask, len(d.order))
	if len(d.current.Clusters) == 0 {
		return out, nil
	}
	masks, err := d.current.Masks(d.ways)
	if err != nil {
		return nil, err
	}
	for ci, c := range d.current.Clusters {
		for _, id := range c.Apps {
			out[id] = masks[ci]
		}
	}
	return out, nil
}

// StockDynamic is the no-partitioning dynamic baseline: every application
// always runs with the full LLC mask.
type StockDynamic struct {
	ways int
	ids  []int
}

// NewStockDynamic creates the baseline for a way count.
func NewStockDynamic(ways int) *StockDynamic { return &StockDynamic{ways: ways} }

// AddApp registers an application.
func (s *StockDynamic) AddApp(id int) error {
	s.ids = append(s.ids, id)
	sort.Ints(s.ids)
	return nil
}

// RemoveApp deregisters an application.
func (s *StockDynamic) RemoveApp(id int) {
	for i, v := range s.ids {
		if v == id {
			s.ids = append(s.ids[:i], s.ids[i+1:]...)
			return
		}
	}
}

// WindowInsns returns a long window (stock needs no monitoring).
func (s *StockDynamic) WindowInsns(int) uint64 { return 1_000_000_000 }

// OnWindow ignores samples.
func (s *StockDynamic) OnWindow(int, pmc.Sample) bool { return false }

// PassiveWindows implements the sim.PassiveWindows refinement: stock
// does no monitoring at all.
func (s *StockDynamic) PassiveWindows() bool { return true }

// Reconfigure returns the single full-LLC cluster.
func (s *StockDynamic) Reconfigure() plan.Plan {
	c := plan.Cluster{Apps: append([]int(nil), s.ids...), Ways: s.ways}
	return plan.Plan{Clusters: []plan.Cluster{c}}
}

// Assignment gives every app the full mask.
func (s *StockDynamic) Assignment() (map[int]cat.WayMask, error) {
	out := make(map[int]cat.WayMask, len(s.ids))
	for _, id := range s.ids {
		out[id] = cat.FullMask(s.ways)
	}
	return out, nil
}
