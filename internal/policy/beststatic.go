package policy

import (
	"github.com/faircache/lfoc/internal/pbb"
	"github.com/faircache/lfoc/internal/plan"
)

// BestStatic is the paper's ideal reference policy: the clustering that
// the PBBCache-style solver determines to be optimal for fairness
// ("Best-Static ... establishes the cache-partitions and
// application-to-cluster mappings based on the optimal fairness solution
// determined by the simulator", §5.1).
type BestStatic struct {
	// Objective defaults to fairness.
	Objective pbb.Objective
	// NodeBudget caps the anytime search (0 = solver default).
	NodeBudget uint64
	// Workers bounds the solver's parallelism (0 = GOMAXPROCS).
	Workers int
	// Seeds warm-start the branch-and-bound (e.g. with LFOC's plan).
	Seeds []plan.Plan
}

// Name implements Static.
func (BestStatic) Name() string { return "Best-Static" }

// Decide implements Static.
func (b BestStatic) Decide(w *Workload) (plan.Plan, error) {
	if err := w.Validate(); err != nil {
		return plan.Plan{}, err
	}
	solver := pbb.New(w.Plat)
	solver.NodeBudget = b.NodeBudget
	solver.Workers = b.Workers
	solver.Seeds = b.Seeds
	sol, err := solver.OptimalClustering(w.Phases, b.Objective)
	if err != nil {
		return plan.Plan{}, err
	}
	return sol.Plan, nil
}
