package policy

import (
	"testing"

	"github.com/faircache/lfoc/internal/cat"
	fp "github.com/faircache/lfoc/internal/fixedpoint"
	"github.com/faircache/lfoc/internal/pmc"
)

// stallSample fabricates a window with the given stall fraction (milli).
func stallSample(stallMilli uint64) pmc.Sample {
	const cycles = 1_000_000
	return pmc.Sample{
		Instructions: cycles,
		Cycles:       cycles,
		StallsL2Miss: cycles * stallMilli / 1000,
	}
}

func TestDunnDynamicLifecycle(t *testing.T) {
	d := NewDunnDynamic(11)
	for id := 0; id < 4; id++ {
		if err := d.AddApp(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AddApp(0); err == nil {
		t.Error("duplicate app accepted")
	}
	if d.WindowInsns(0) != 100_000_000 {
		t.Error("default window wrong")
	}
	d.SetWindow(2_000_000)
	if d.WindowInsns(0) != 2_000_000 {
		t.Error("SetWindow ignored")
	}
	d.SetWindow(0) // ignored
	if d.WindowInsns(0) != 2_000_000 {
		t.Error("zero window accepted")
	}

	// Two high-stall apps, two low-stall apps.
	for i := 0; i < 6; i++ {
		d.OnWindow(0, stallSample(700))
		d.OnWindow(1, stallSample(680))
		d.OnWindow(2, stallSample(50))
		d.OnWindow(3, stallSample(60))
	}
	p := d.Reconfigure()
	if err := p.Validate(4, 11); err != nil {
		t.Fatalf("%v (%s)", err, p.Canonical())
	}
	if !p.Overlapping {
		t.Error("Dunn plan should be overlapping")
	}
	// High-stall apps grouped together and given more ways than the
	// low-stall group.
	if p.ClusterOf(0) != p.ClusterOf(1) || p.ClusterOf(2) != p.ClusterOf(3) {
		t.Errorf("grouping wrong: %s", p.Canonical())
	}
	wHigh := p.Clusters[p.ClusterOf(0)].Ways
	wLow := p.Clusters[p.ClusterOf(2)].Ways
	if wHigh <= wLow {
		t.Errorf("high-stall cluster got %d ways vs %d", wHigh, wLow)
	}

	masks, err := d.Assignment()
	if err != nil {
		t.Fatal(err)
	}
	if len(masks) != 4 {
		t.Fatalf("masks = %v", masks)
	}
	for id, m := range masks {
		if m == 0 {
			t.Errorf("app %d has empty mask", id)
		}
	}

	d.RemoveApp(0)
	p = d.Reconfigure()
	if p.ClusterOf(0) != -1 {
		t.Error("removed app still planned")
	}
	if p.NumApps() != 3 {
		t.Errorf("plan covers %d apps", p.NumApps())
	}
}

func TestDunnDynamicEmpty(t *testing.T) {
	d := NewDunnDynamic(11)
	p := d.Reconfigure()
	if len(p.Clusters) != 0 {
		t.Error("empty Dunn should produce empty plan")
	}
	masks, err := d.Assignment()
	if err != nil || len(masks) != 0 {
		t.Error("empty assignment wrong")
	}
	// OnWindow for unknown app is a no-op.
	if d.OnWindow(99, stallSample(100)) {
		t.Error("unknown app changed config")
	}
}

func TestDunnDynamicAssignmentBeforeReconfigure(t *testing.T) {
	d := NewDunnDynamic(11)
	_ = d.AddApp(0)
	// Assignment before any Reconfigure must self-initialize.
	masks, err := d.Assignment()
	if err != nil {
		t.Fatal(err)
	}
	if masks[0] == 0 {
		t.Error("no mask for app 0")
	}
}

func TestStockDynamic(t *testing.T) {
	s := NewStockDynamic(11)
	_ = s.AddApp(2)
	_ = s.AddApp(0)
	if s.WindowInsns(0) == 0 {
		t.Error("window should be positive")
	}
	if s.OnWindow(0, stallSample(500)) {
		t.Error("stock should never change config")
	}
	p := s.Reconfigure()
	if len(p.Clusters) != 1 || p.Clusters[0].Ways != 11 || len(p.Clusters[0].Apps) != 2 {
		t.Errorf("plan = %s", p.Canonical())
	}
	masks, err := s.Assignment()
	if err != nil {
		t.Fatal(err)
	}
	if masks[0] != cat.FullMask(11) || masks[2] != cat.FullMask(11) {
		t.Error("stock masks wrong")
	}
	s.RemoveApp(0)
	if masks, _ = s.Assignment(); len(masks) != 1 {
		t.Error("RemoveApp ignored")
	}
	s.RemoveApp(42) // no-op
}

func TestStallWindowSmoothing(t *testing.T) {
	w := newStallWindow(3)
	if w.mean() != 0 {
		t.Error("empty mean should be 0")
	}
	w.push(0.3)
	w.push(0.6)
	if m := w.mean(); m < 0.44 || m > 0.46 {
		t.Errorf("mean = %v", m)
	}
	w.push(0.9)
	w.push(1.2) // evicts 0.3
	if m := w.mean(); m < 0.89 || m > 0.91 {
		t.Errorf("mean after wrap = %v", m)
	}
}

func TestDunnPlanDegenerateStalls(t *testing.T) {
	// All-zero stalls: proportional allocation degenerates; every
	// cluster must still get at least one way.
	p, err := dunnPlan([]float64{0, 0, 0}, 11, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Clusters {
		if c.Ways < 1 {
			t.Errorf("cluster with %d ways", c.Ways)
		}
	}
	if err := p.Validate(3, 11); err != nil {
		t.Error(err)
	}
}

func TestProfileFromTableBoundary(t *testing.T) {
	w := workloadOf(t, "xalancbmk06")
	prof := ProfileFromTable(w.Tables[0])
	// Fixed-point slowdown at 1 way must match the float table within
	// rounding.
	want := w.Tables[0].Slowdown(1)
	got := fp.Value(prof.SlowdownTable()[1]).Float()
	if got < want*0.99 || got > want*1.01 {
		t.Errorf("fixed-point slowdown %v vs float %v", got, want)
	}
}

func TestKPartDynawayLifecycle(t *testing.T) {
	k := NewKPartDynaway(11)
	if err := k.AddApp(0); err != nil {
		t.Fatal(err)
	}
	if err := k.AddApp(0); err == nil {
		t.Error("duplicate accepted")
	}
	_ = k.AddApp(1)
	if k.WindowInsns(0) != 10_000_000 {
		t.Error("default window wrong")
	}
	k.SetWindow(1_000_000)
	if k.WindowInsns(0) != 1_000_000 {
		t.Error("SetWindow ignored")
	}
	// Bootstrap: stock plan until profiling completes.
	p := k.Reconfigure()
	if len(p.Clusters) != 1 {
		t.Errorf("bootstrap plan = %s", p.Canonical())
	}
	// Drive the sweeps manually: app 0 flat/streaming, app 1 sensitive.
	mkSample := func(ipcMilli, mpkiMilli uint64) pmc.Sample {
		const insns = 1_000_000
		return pmc.Sample{
			Instructions: insns,
			Cycles:       insns * 1000 / ipcMilli,
			LLCMisses:    insns * mpkiMilli / 1000 / 1000,
		}
	}
	for rounds := 0; rounds < 100 && k.Profiled() < 2; rounds++ {
		masks, err := k.Assignment()
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < 2; id++ {
			ways := masks[id].Count()
			if id == 0 {
				k.OnWindow(id, mkSample(520, 50_000))
			} else {
				k.OnWindow(id, mkSample(uint64(300+70*ways), uint64(30_000/uint64(ways))))
			}
		}
	}
	if k.Profiled() != 2 {
		t.Fatalf("profiled = %d", k.Profiled())
	}
	p = k.Reconfigure()
	if err := p.Validate(2, 11); err != nil {
		t.Fatalf("%v (%s)", err, p.Canonical())
	}
	// The sensitive app must receive more ways than the flat one when
	// they end up in separate clusters.
	if p.ClusterOf(0) != p.ClusterOf(1) {
		if p.Clusters[p.ClusterOf(1)].Ways <= p.Clusters[p.ClusterOf(0)].Ways {
			t.Errorf("miss-driven allocation wrong: %s", p.Canonical())
		}
	}
	// Periodic resampling resets profiles.
	k.ResampleEvery = 1
	k.Reconfigure()
	if k.Profiled() != 0 {
		t.Error("periodic resample did not reset profiles")
	}
	k.RemoveApp(0)
	k.RemoveApp(99) // no-op
	p = k.Reconfigure()
	if p.ClusterOf(0) != -1 {
		t.Error("removed app still planned")
	}
}

func TestKPartDynawayEmpty(t *testing.T) {
	k := NewKPartDynaway(11)
	if len(k.Reconfigure().Clusters) != 0 {
		t.Error("empty plan expected")
	}
	masks, err := k.Assignment()
	if err != nil || len(masks) != 0 {
		t.Error("empty assignment expected")
	}
}
