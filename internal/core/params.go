// Package core implements LFOC — the Lightweight Fairness-Oriented Cache
// clustering policy that is the paper's primary contribution (§4).
//
// The package mirrors the paper's Linux-kernel implementation split:
//
//   - classify.go — the Table 1 application classifier;
//   - algorithm.go — Algorithm 1, the cache-clustering algorithm;
//   - sampling.go — the §4.2 sampling-mode state machine (upward way
//     sweep with early stopping);
//   - controller.go — the OS-module glue: warm-up handling, phase-change
//     heuristics, sampling serialization and the periodic partitioner.
//
// Because the original runs in the kernel where floating point is
// unavailable (§2.3.2), everything in this package uses Q16.16
// fixed-point arithmetic (internal/fixedpoint) and integer counters only.
// The package tests enforce this with a source scan.
package core

import fp "github.com/faircache/lfoc/internal/fixedpoint"

// Params collects LFOC's tunables with the paper's default values.
type Params struct {
	// NrWays is the LLC associativity (k).
	NrWays int

	// MaxStreamingWay is the maximum number of streaming applications
	// per 1-way streaming cluster before a second way is reserved
	// (Algorithm 1, default 5).
	MaxStreamingWay int

	// GapsPerStreaming controls how many light-sharing applications fit
	// in a streaming cluster's spare capacity (Algorithm 1, default 3).
	GapsPerStreaming int

	// StreamingMaxSlowdown (1.03): a streaming app shows slowdown ≤ this
	// in at least one way assignment (with MPKC ≥ HighThresholdMPKC).
	StreamingMaxSlowdown fp.Value
	// StreamingAllMaxSlowdown (1.06): and slowdown below this everywhere.
	StreamingAllMaxSlowdown fp.Value
	// SensitiveMinSlowdown (1.05): a sensitive app shows slowdown ≥ this
	// for some allocation of at least 2 ways.
	SensitiveMinSlowdown fp.Value

	// HighThresholdMPKC is Table 1's LLCMPKC ≥ 10 "memory intensive"
	// threshold, reused by the phase heuristics (§4.2).
	HighThresholdMPKC fp.Value
	// LowThresholdMPKC is 30% of the high threshold (§4.2).
	LowThresholdMPKC fp.Value
	// StallFracThreshold is the 25% long-latency-stall trigger (§4.2).
	StallFracThreshold fp.Value

	// CriticalSlowdown (5%) defines a sensitive app's critical size: the
	// smallest allocation where slowdown falls below 1+this (§4.2).
	CriticalSlowdown fp.Value

	// WarmupIntervals is the number of initial sampling intervals whose
	// counters are discarded (§4.1, 3 in the paper's setting).
	WarmupIntervals int

	// HistoryLen is the smoothing window of the phase heuristics ("the
	// average ... measured over the last five monitoring periods").
	HistoryLen int

	// NormalWindowInsns is the instruction window between counter reads
	// in normal operation (100M in the paper).
	NormalWindowInsns uint64
	// SamplingWindowInsns is the window during sampling mode (10M).
	SamplingWindowInsns uint64

	// IPCFlatTolerance: during sampling, a step whose IPC improves by
	// less than this fraction counts as "flat" for early stopping.
	IPCFlatTolerance fp.Value
	// FlatStepsToStop is the number of consecutive flat steps (with high
	// MPKC) after which a sweep stops early as streaming-like.
	FlatStepsToStop int
}

// DefaultParams returns the paper's configuration for a k-way LLC.
func DefaultParams(nrWays int) Params {
	high := fp.FromInt(10)
	return Params{
		NrWays:                  nrWays,
		MaxStreamingWay:         5,
		GapsPerStreaming:        3,
		StreamingMaxSlowdown:    fp.FromMilli(1030),
		StreamingAllMaxSlowdown: fp.FromMilli(1060),
		SensitiveMinSlowdown:    fp.FromMilli(1050),
		HighThresholdMPKC:       high,
		LowThresholdMPKC:        fp.Mul(high, fp.FromMilli(300)),
		StallFracThreshold:      fp.FromMilli(250),
		CriticalSlowdown:        fp.FromMilli(50),
		WarmupIntervals:         3,
		HistoryLen:              5,
		NormalWindowInsns:       100_000_000,
		SamplingWindowInsns:     10_000_000,
		IPCFlatTolerance:        fp.FromMilli(30),
		FlatStepsToStop:         2,
	}
}

// Class is LFOC's runtime application classification.
type Class int

const (
	// ClassUnknown is assigned right after spawn, before sampling.
	ClassUnknown Class = iota
	// ClassLight marks light-sharing applications.
	ClassLight
	// ClassStreaming marks contentious cache-insensitive aggressors.
	ClassStreaming
	// ClassSensitive marks cache-sensitive applications.
	ClassSensitive
)

func (c Class) String() string {
	switch c {
	case ClassLight:
		return "light"
	case ClassStreaming:
		return "streaming"
	case ClassSensitive:
		return "sensitive"
	default:
		return "unknown"
	}
}
