package core

import (
	"fmt"
	"sort"

	"github.com/faircache/lfoc/internal/cat"
	fp "github.com/faircache/lfoc/internal/fixedpoint"
	"github.com/faircache/lfoc/internal/plan"
	"github.com/faircache/lfoc/internal/pmc"
)

// Controller is the OS-resident LFOC runtime: it owns per-application
// monitoring state, serializes sampling episodes, applies the §4.2
// phase-change heuristics, and periodically re-runs Algorithm 1.
//
// The embedding runtime (internal/sim, or a real kernel shim) drives it
// with three calls:
//
//   - WindowInsns(id) tells the runtime how many instructions to let the
//     application retire before the next counter read (100M in normal
//     mode, 10M while the app is being sampled);
//   - OnWindow(id, sample) delivers a completed counter window; the
//     return value says whether the CAT configuration changed;
//   - Reconfigure() is the periodic partitioner activation (every 500ms
//     in the paper's setup).
//
// Assignment() exposes the CAT masks the controller currently wants.
// All internal arithmetic is integer/fixed-point.
type Controller struct {
	params Params
	// wayBytes is needed to compare CMT occupancy readings against a
	// sensitive app's critical size.
	wayBytes uint64

	apps  map[int]*appState
	order []int // sorted ids for deterministic iteration

	sampleQueue    []int
	activeSampling int // app id, or -1

	current plan.Plan
	have    bool
}

type appState struct {
	id           int
	class        Class
	profile      *Profile
	criticalWays int
	warmupLeft   int
	mpkcHist     *pmc.History
	stallHist    *pmc.History
	sampling     *SamplingState
	queued       bool
	resamples    int
}

// NewController creates a controller. wayBytes is the platform's per-way
// LLC capacity (for CMT-based critical-size checks).
func NewController(params Params, wayBytes uint64) (*Controller, error) {
	if params.NrWays < 2 {
		return nil, fmt.Errorf("core: controller needs at least 2 ways, got %d", params.NrWays)
	}
	if wayBytes == 0 {
		return nil, fmt.Errorf("core: wayBytes must be positive")
	}
	return &Controller{
		params:         params,
		wayBytes:       wayBytes,
		apps:           map[int]*appState{},
		activeSampling: -1,
	}, nil
}

// AddApp registers a newly spawned application (class unknown, warm-up
// pending).
func (c *Controller) AddApp(id int) error {
	if _, dup := c.apps[id]; dup {
		return fmt.Errorf("core: app %d already registered", id)
	}
	c.apps[id] = &appState{
		id:         id,
		class:      ClassUnknown,
		warmupLeft: c.params.WarmupIntervals,
		mpkcHist:   pmc.NewHistory(c.params.HistoryLen),
		stallHist:  pmc.NewHistory(c.params.HistoryLen),
	}
	c.order = append(c.order, id)
	sort.Ints(c.order)
	return nil
}

// RemoveApp deregisters an application.
func (c *Controller) RemoveApp(id int) {
	if c.activeSampling == id {
		c.activeSampling = -1
	}
	delete(c.apps, id)
	for i, v := range c.order {
		if v == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	q := c.sampleQueue[:0]
	for _, v := range c.sampleQueue {
		if v != id {
			q = append(q, v)
		}
	}
	c.sampleQueue = q
	c.have = false
}

// ClassOf returns the current classification of an application.
func (c *Controller) ClassOf(id int) Class {
	if st, ok := c.apps[id]; ok {
		return st.class
	}
	return ClassUnknown
}

// Resamples returns how many sampling episodes the application has
// triggered after its initial one (phase-change detections).
func (c *Controller) Resamples(id int) int {
	if st, ok := c.apps[id]; ok {
		return st.resamples
	}
	return 0
}

// SamplingActive returns the id of the application currently being
// sampled, or -1.
func (c *Controller) SamplingActive() int { return c.activeSampling }

// WindowInsns returns the instruction window the runtime should use
// before the next counter delivery for this application.
func (c *Controller) WindowInsns(id int) uint64 {
	if c.activeSampling == id {
		return c.params.SamplingWindowInsns
	}
	return c.params.NormalWindowInsns
}

// OnWindow delivers one completed counter window. The return value
// reports whether the desired CAT configuration changed.
func (c *Controller) OnWindow(id int, w pmc.Sample) bool {
	st, ok := c.apps[id]
	if !ok {
		return false
	}

	// Warm-up: discard the first intervals entirely (§4.1).
	if st.warmupLeft > 0 {
		st.warmupLeft--
		if st.warmupLeft == 0 && st.class == ClassUnknown {
			c.enqueueSampling(st)
			return c.maybeStartSampling()
		}
		return false
	}

	if c.activeSampling == id {
		return c.onSamplingWindow(st, w)
	}
	return c.onNormalWindow(st, w)
}

// onSamplingWindow advances the active sweep.
func (c *Controller) onSamplingWindow(st *appState, w pmc.Sample) bool {
	done := st.sampling.Record(w.IPC(), w.LLCMPKC())
	if !done {
		return true // sampling partition grew
	}
	st.profile = st.sampling.Finish()
	st.class = Classify(st.profile, &c.params)
	st.criticalWays = st.profile.CriticalWays(c.params.CriticalSlowdown)
	st.sampling = nil
	st.mpkcHist.Reset()
	st.stallHist.Reset()
	c.activeSampling = -1
	c.rebuildPlan()
	c.maybeStartSampling()
	return true
}

// onNormalWindow updates monitoring state and runs the phase-change
// heuristics of §4.2.
func (c *Controller) onNormalWindow(st *appState, w pmc.Sample) bool {
	st.mpkcHist.Push(w.LLCMPKC())
	st.stallHist.Push(w.StallFraction())
	if st.queued || !st.mpkcHist.Full() {
		return false
	}
	mpkc := st.mpkcHist.Mean()
	stall := st.stallHist.Mean()
	trigger := false
	switch st.class {
	case ClassLight, ClassUnknown:
		// A light app entering a memory-intensive phase.
		trigger = mpkc > c.params.HighThresholdMPKC || stall > c.params.StallFracThreshold
	case ClassStreaming:
		// A streaming app going quiet.
		trigger = mpkc < c.params.LowThresholdMPKC
	case ClassSensitive:
		criticalBytes := uint64(st.criticalWays) * c.wayBytes
		occ := w.OccupancyBytes
		quiet := mpkc < c.params.LowThresholdMPKC && stall < c.params.StallFracThreshold
		if quiet && occ < criticalBytes {
			// Stable non-memory-intensive phase below the critical size.
			trigger = true
		} else if mpkc > c.params.HighThresholdMPKC && occ >= criticalBytes {
			// Memory intensive despite having its critical size.
			trigger = true
		}
	}
	if trigger {
		st.resamples++
		c.enqueueSampling(st)
		return c.maybeStartSampling()
	}
	return false
}

func (c *Controller) enqueueSampling(st *appState) {
	if st.queued || c.activeSampling == st.id {
		return
	}
	st.queued = true
	c.sampleQueue = append(c.sampleQueue, st.id)
}

// maybeStartSampling starts the next queued episode if none is active.
// It returns true when the CAT configuration changed.
func (c *Controller) maybeStartSampling() bool {
	if c.activeSampling >= 0 || len(c.sampleQueue) == 0 {
		return false
	}
	id := c.sampleQueue[0]
	c.sampleQueue = c.sampleQueue[1:]
	st, ok := c.apps[id]
	if !ok {
		return c.maybeStartSampling()
	}
	st.queued = false
	st.sampling = NewSampling(&c.params)
	st.mpkcHist.Reset()
	st.stallHist.Reset()
	c.activeSampling = id
	return true
}

// Reconfigure is the periodic partitioner activation. It returns the
// (possibly updated) plan.
func (c *Controller) Reconfigure() plan.Plan {
	c.rebuildPlan()
	c.maybeStartSampling()
	return c.current
}

// rebuildPlan reruns Algorithm 1 over the current classifications.
func (c *Controller) rebuildPlan() {
	if len(c.order) == 0 {
		c.current = plan.Plan{}
		c.have = true
		return
	}
	infos := make([]AppInfo, 0, len(c.order))
	for _, id := range c.order {
		st := c.apps[id]
		infos = append(infos, AppInfo{ID: id, Class: st.class, Profile: st.profile})
	}
	p, err := Partition(infos, &c.params)
	if err != nil {
		// Degenerate fallback: one cluster with everything. Partition
		// only fails on structurally impossible inputs; never leave the
		// machine without a configuration.
		p = plan.SingleCluster(len(c.order), c.params.NrWays)
		for ci := range p.Clusters {
			p.Clusters[ci].Apps = append([]int(nil), c.order...)
		}
	}
	c.current = p
	c.have = true
}

// Plan returns the last plan produced by Reconfigure/rebuildPlan.
func (c *Controller) Plan() plan.Plan {
	if !c.have {
		c.rebuildPlan()
	}
	return c.current
}

// Assignment returns the CAT mask every application should run under
// right now: the sampling layout while an episode is active, otherwise
// the masks of the current plan.
func (c *Controller) Assignment() (map[int]cat.WayMask, error) {
	out := make(map[int]cat.WayMask, len(c.apps))
	if c.activeSampling >= 0 {
		st := c.apps[c.activeSampling]
		sampleMask, restMask, err := cat.SamplingLayout(st.sampling.CurrentWays(), c.params.NrWays)
		if err != nil {
			return nil, err
		}
		for _, id := range c.order {
			if id == c.activeSampling {
				out[id] = sampleMask
			} else {
				out[id] = restMask
			}
		}
		return out, nil
	}
	p := c.Plan()
	if len(p.Clusters) == 0 {
		return out, nil
	}
	masks, err := p.Masks(c.params.NrWays)
	if err != nil {
		return nil, err
	}
	for ci, cl := range p.Clusters {
		for _, id := range cl.Apps {
			out[id] = masks[ci]
		}
	}
	return out, nil
}

// SlowdownOf returns the app's fixed-point slowdown estimate at the given
// way count (1.0 when the app has no profile yet); exposed for
// diagnostics and tests.
func (c *Controller) SlowdownOf(id int, ways int) fp.Value {
	st, ok := c.apps[id]
	if !ok || st.profile == nil {
		return fp.One
	}
	return st.profile.Slowdown(ways)
}
