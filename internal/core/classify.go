package core

import fp "github.com/faircache/lfoc/internal/fixedpoint"

// ProfileSample is one point of an online profile: the metrics LFOC
// gathered with the sampling partition sized at Ways ways.
type ProfileSample struct {
	Ways int
	IPC  fp.Value
	MPKC fp.Value
}

// Profile is the table the sampling mode builds: per-way-count IPC and
// MPKC, with extrapolation for way counts beyond the last measured one
// (§4.2: "LFOC uses the last IPC sample gathered to approximate the
// performance with higher way counts").
type Profile struct {
	nrWays int
	ipc    []fp.Value // index 1..nrWays
	mpkc   []fp.Value
	maxW   int // highest measured way count
}

// NewProfile builds a profile from sweep samples (at least one, ways
// strictly increasing, 1-based). Missing higher way counts are filled
// with the last sample's values.
func NewProfile(nrWays int, samples []ProfileSample) *Profile {
	p := &Profile{
		nrWays: nrWays,
		ipc:    make([]fp.Value, nrWays+1),
		mpkc:   make([]fp.Value, nrWays+1),
	}
	last := ProfileSample{Ways: 0, IPC: fp.One, MPKC: 0}
	for w := 1; w <= nrWays; w++ {
		for _, s := range samples {
			if s.Ways == w {
				last = s
				if w > p.maxW {
					p.maxW = w
				}
			}
		}
		// Hold the most recent (or extrapolated) value. Gaps inside the
		// sweep inherit the previous measurement too.
		p.ipc[w] = last.IPC
		p.mpkc[w] = last.MPKC
	}
	if p.maxW == 0 {
		p.maxW = 1
	}
	return p
}

// IPCAt returns the (possibly extrapolated) IPC at w ways.
func (p *Profile) IPCAt(w int) fp.Value { return p.ipc[clampWays(w, p.nrWays)] }

// MPKCAt returns the (possibly extrapolated) MPKC at w ways.
func (p *Profile) MPKCAt(w int) fp.Value { return p.mpkc[clampWays(w, p.nrWays)] }

// MeasuredWays returns the highest way count actually measured.
func (p *Profile) MeasuredWays() int { return p.maxW }

// Slowdown returns the slowdown at w ways relative to the full LLC, in
// fixed point (Eq. 2 with the extrapolated full-size IPC as baseline).
func (p *Profile) Slowdown(w int) fp.Value {
	full := p.ipc[p.nrWays]
	at := p.ipc[clampWays(w, p.nrWays)]
	if at <= 0 || full <= 0 {
		return fp.One
	}
	sd := fp.Div(full, at)
	if sd < fp.One {
		sd = fp.One
	}
	return sd
}

// SlowdownTable returns the whole fixed-point slowdown curve as int64
// raw values suitable for lookahead.SlowdownUtility (index 0 unused).
func (p *Profile) SlowdownTable() []int64 {
	out := make([]int64, p.nrWays+1)
	for w := 1; w <= p.nrWays; w++ {
		out[w] = int64(p.Slowdown(w))
	}
	return out
}

// CriticalWays returns the smallest way count whose slowdown is below
// 1 + threshold — the §4.2 "critical size" in ways.
func (p *Profile) CriticalWays(threshold fp.Value) int {
	limit := fp.One + threshold
	for w := 1; w <= p.nrWays; w++ {
		if p.Slowdown(w) < limit {
			return w
		}
	}
	return p.nrWays
}

// Classify applies the Table 1 criteria to the profile.
func Classify(p *Profile, params *Params) Class {
	streamingWitness := false
	allBelow := true
	for w := 1; w <= p.nrWays; w++ {
		sd := p.Slowdown(w)
		if sd <= params.StreamingMaxSlowdown && p.MPKCAt(w) >= params.HighThresholdMPKC {
			streamingWitness = true
		}
		if sd >= params.StreamingAllMaxSlowdown {
			allBelow = false
		}
	}
	if streamingWitness && allBelow {
		return ClassStreaming
	}
	for w := 2; w <= p.nrWays; w++ {
		if p.Slowdown(w) >= params.SensitiveMinSlowdown {
			return ClassSensitive
		}
	}
	return ClassLight
}

func clampWays(w, nrWays int) int {
	if w < 1 {
		return 1
	}
	if w > nrWays {
		return nrWays
	}
	return w
}
