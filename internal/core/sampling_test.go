package core

import (
	"testing"

	fp "github.com/faircache/lfoc/internal/fixedpoint"
)

func TestSamplingStopsOnLowMPKC(t *testing.T) {
	prm := params11()
	s := NewSampling(&prm)
	if s.CurrentWays() != 1 {
		t.Fatal("sweep should start at 1 way")
	}
	// First window: moderate MPKC, keeps going.
	if done := s.Record(fp.FromMilli(600), fp.FromInt(8)); done {
		t.Fatal("stopped too early")
	}
	if s.CurrentWays() != 2 {
		t.Fatal("sweep should grow upward")
	}
	// Second window: MPKC collapses below the low threshold (3): stop.
	if done := s.Record(fp.FromMilli(950), fp.FromInt(1)); !done {
		t.Fatal("should stop once cache needs are met")
	}
	if !s.Done() || s.Steps() != 2 {
		t.Errorf("done=%v steps=%d", s.Done(), s.Steps())
	}
	p := s.Finish()
	// Extrapolation: IPC at 11 ways equals the last sample.
	if p.IPCAt(11) != fp.FromMilli(950) {
		t.Errorf("extrapolated IPC = %v", p.IPCAt(11))
	}
}

func TestSamplingStopsOnFlatStreaming(t *testing.T) {
	prm := params11()
	s := NewSampling(&prm)
	// Streaming: flat IPC, high MPKC. Default FlatStepsToStop = 2.
	steps := 0
	for !s.Done() {
		s.Record(fp.FromMilli(520), fp.FromInt(25))
		steps++
		if steps > 11 {
			t.Fatal("sweep never stopped")
		}
	}
	if steps > 3 {
		t.Errorf("streaming sweep took %d steps, early stop failed", steps)
	}
	p := s.Finish()
	prm2 := params11()
	if got := Classify(p, &prm2); got != ClassStreaming {
		t.Errorf("class = %v, want streaming", got)
	}
}

func TestSamplingFullSweepForSensitive(t *testing.T) {
	prm := params11()
	s := NewSampling(&prm)
	// Sensitive app: IPC keeps growing, MPKC stays above low threshold
	// until late.
	ipc := []int64{400, 500, 600, 700, 780, 850, 900, 940, 970, 990}
	mpkc := []int64{12, 10, 9, 7, 6, 5, 4, 4, 4, 4}
	steps := 0
	for !s.Done() && steps < len(ipc) {
		s.Record(fp.FromMilli(ipc[steps]), fp.FromInt(int(mpkc[steps])))
		steps++
	}
	// MPKC never fell below 3 and IPC never flattened: the sweep must
	// reach NrWays-1 = 10.
	if steps != 10 {
		t.Errorf("sweep stopped after %d steps, want 10", steps)
	}
	p := s.Finish()
	prm2 := params11()
	if got := Classify(p, &prm2); got != ClassSensitive {
		t.Errorf("class = %v, want sensitive", got)
	}
}

func TestSamplingRecordAfterDone(t *testing.T) {
	prm := params11()
	s := NewSampling(&prm)
	s.Record(fp.FromMilli(900), fp.FromMilli(100)) // low MPKC → done
	if !s.Done() {
		t.Fatal("not done")
	}
	if done := s.Record(fp.FromMilli(100), fp.FromInt(50)); !done {
		t.Error("Record after done should stay done")
	}
	if s.Steps() != 1 {
		t.Error("post-done Record should not add samples")
	}
}

func TestSamplingFlatButLowMPKCKeepsGoing(t *testing.T) {
	// Flat IPC alone is not enough to stop if MPKC is between low and
	// high thresholds (not streaming, needs more evidence).
	prm := params11()
	s := NewSampling(&prm)
	steps := 0
	for !s.Done() {
		s.Record(fp.FromMilli(800), fp.FromInt(5)) // flat, mid MPKC
		steps++
	}
	if steps != 10 {
		t.Errorf("mid-MPKC flat sweep stopped after %d steps, want full sweep", steps)
	}
}
