package core

import (
	"encoding/json"
	"fmt"

	fp "github.com/faircache/lfoc/internal/fixedpoint"
	"github.com/faircache/lfoc/internal/plan"
	"github.com/faircache/lfoc/internal/pmc"
)

// The controller's checkpoint support implements sim.PolicySnapshotter:
// PolicySnapshot serializes every piece of learned state — per-app
// classes, profiles, monitoring histories, in-flight sampling episodes,
// the sampling queue, and the current plan — and PolicyRestore rebuilds
// it on a freshly constructed controller with the same Params. All
// values are integers or fixed-point (int64), so the JSON round-trip is
// exact and a restored controller's Assignment() renders the identical
// masks.

// profileSnapshot is the raw profile table. It is serialized verbatim
// rather than rebuilt from sweep samples because NewProfile's gap
// extrapolation is lossy: two different sample sets can produce the
// same table, but only the table itself determines future decisions.
type profileSnapshot struct {
	NrWays int        `json:"nr_ways"`
	IPC    []fp.Value `json:"ipc"`
	MPKC   []fp.Value `json:"mpkc"`
	MaxW   int        `json:"max_w"`
}

// samplingSnapshot is an in-flight sampling episode. The params pointer
// re-binds to the restored controller's own Params.
type samplingSnapshot struct {
	Ways      int             `json:"ways"`
	Samples   []ProfileSample `json:"samples,omitempty"`
	FlatSteps int             `json:"flat_steps"`
	Done      bool            `json:"done"`
}

type appSnapshot struct {
	ID           int               `json:"id"`
	Class        int               `json:"class"`
	Profile      *profileSnapshot  `json:"profile,omitempty"`
	CriticalWays int               `json:"critical_ways"`
	WarmupLeft   int               `json:"warmup_left"`
	MPKCHist     []fp.Value        `json:"mpkc_hist,omitempty"`
	StallHist    []fp.Value        `json:"stall_hist,omitempty"`
	Sampling     *samplingSnapshot `json:"sampling,omitempty"`
	Queued       bool              `json:"queued,omitempty"`
	Resamples    int               `json:"resamples,omitempty"`
}

type controllerSnapshot struct {
	Apps           []appSnapshot `json:"apps"`
	SampleQueue    []int         `json:"sample_queue,omitempty"`
	ActiveSampling int           `json:"active_sampling"`
	Current        plan.Plan     `json:"current"`
	Have           bool          `json:"have"`
}

// PolicySnapshot implements sim.PolicySnapshotter.
func (c *Controller) PolicySnapshot() ([]byte, error) {
	snap := controllerSnapshot{
		Apps:           make([]appSnapshot, 0, len(c.order)),
		SampleQueue:    append([]int(nil), c.sampleQueue...),
		ActiveSampling: c.activeSampling,
		Current:        c.current,
		Have:           c.have,
	}
	for _, id := range c.order {
		st := c.apps[id]
		a := appSnapshot{
			ID:           st.id,
			Class:        int(st.class),
			CriticalWays: st.criticalWays,
			WarmupLeft:   st.warmupLeft,
			MPKCHist:     st.mpkcHist.Values(),
			StallHist:    st.stallHist.Values(),
			Queued:       st.queued,
			Resamples:    st.resamples,
		}
		if st.profile != nil {
			a.Profile = &profileSnapshot{
				NrWays: st.profile.nrWays,
				IPC:    append([]fp.Value(nil), st.profile.ipc...),
				MPKC:   append([]fp.Value(nil), st.profile.mpkc...),
				MaxW:   st.profile.maxW,
			}
		}
		if st.sampling != nil {
			a.Sampling = &samplingSnapshot{
				Ways:      st.sampling.ways,
				Samples:   append([]ProfileSample(nil), st.sampling.samples...),
				FlatSteps: st.sampling.flatSteps,
				Done:      st.sampling.done,
			}
		}
		snap.Apps = append(snap.Apps, a)
	}
	return json.Marshal(snap)
}

// PolicyRestore implements sim.PolicySnapshotter. The controller must
// be freshly constructed with the Params the snapshot was taken under.
func (c *Controller) PolicyRestore(data []byte) error {
	if len(c.apps) != 0 {
		return fmt.Errorf("core: restore into a controller that already has %d apps", len(c.apps))
	}
	var snap controllerSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("core: restore controller: %w", err)
	}
	c.order = c.order[:0]
	for _, a := range snap.Apps {
		if _, dup := c.apps[a.ID]; dup {
			return fmt.Errorf("core: restore: duplicate app %d", a.ID)
		}
		st := &appState{
			id:           a.ID,
			class:        Class(a.Class),
			criticalWays: a.CriticalWays,
			warmupLeft:   a.WarmupLeft,
			mpkcHist:     pmc.NewHistory(c.params.HistoryLen),
			stallHist:    pmc.NewHistory(c.params.HistoryLen),
			queued:       a.Queued,
			resamples:    a.Resamples,
		}
		// Re-pushing oldest-first reproduces Mean, Last and the eviction
		// order exactly (Push is rotation-invariant); overlong snapshots
		// would silently drop readings, so reject them.
		if len(a.MPKCHist) > c.params.HistoryLen || len(a.StallHist) > c.params.HistoryLen {
			return fmt.Errorf("core: restore: app %d history exceeds HistoryLen %d", a.ID, c.params.HistoryLen)
		}
		for _, v := range a.MPKCHist {
			st.mpkcHist.Push(v)
		}
		for _, v := range a.StallHist {
			st.stallHist.Push(v)
		}
		if p := a.Profile; p != nil {
			if p.NrWays != c.params.NrWays || len(p.IPC) != p.NrWays+1 || len(p.MPKC) != p.NrWays+1 {
				return fmt.Errorf("core: restore: app %d profile sized for %d ways, params say %d", a.ID, p.NrWays, c.params.NrWays)
			}
			st.profile = &Profile{
				nrWays: p.NrWays,
				ipc:    append([]fp.Value(nil), p.IPC...),
				mpkc:   append([]fp.Value(nil), p.MPKC...),
				maxW:   p.MaxW,
			}
		}
		if s := a.Sampling; s != nil {
			st.sampling = &SamplingState{
				params:    &c.params,
				ways:      s.Ways,
				samples:   append([]ProfileSample(nil), s.Samples...),
				flatSteps: s.FlatSteps,
				done:      s.Done,
			}
		}
		c.apps[a.ID] = st
		c.order = append(c.order, a.ID)
	}
	c.sampleQueue = append(c.sampleQueue[:0], snap.SampleQueue...)
	c.activeSampling = snap.ActiveSampling
	c.current = snap.Current
	c.have = snap.Have
	return nil
}
