package core

import (
	"testing"

	"github.com/faircache/lfoc/internal/pmc"
)

const testWayBytes = 2_500_000

// fakeApp answers counter windows from per-way tables (milli units),
// emulating the hardware side of the controller's contract.
type fakeApp struct {
	ipcMilli  [12]int64 // per allocated ways, index 1..11
	mpkcMilli [12]int64
	stallM    int64  // stall fraction in milli
	occBytes  uint64 // CMT occupancy override; 0 = ways*wayBytes
}

func streamingFake() *fakeApp {
	a := &fakeApp{stallM: 700}
	for w := 1; w <= 11; w++ {
		a.ipcMilli[w] = 520
		a.mpkcMilli[w] = 26000
	}
	return a
}

func sensitiveFake() *fakeApp {
	a := &fakeApp{stallM: 500}
	ipc := []int64{0, 400, 500, 600, 700, 780, 850, 900, 940, 970, 990, 1000}
	mpkc := []int64{0, 12000, 10000, 9000, 7000, 6000, 5000, 4500, 4200, 4000, 4000, 4000}
	copy(a.ipcMilli[:], ipc)
	copy(a.mpkcMilli[:], mpkc)
	return a
}

func lightFake() *fakeApp {
	a := &fakeApp{stallM: 50}
	for w := 1; w <= 11; w++ {
		a.ipcMilli[w] = 1800
		a.mpkcMilli[w] = 500
	}
	return a
}

// window fabricates a pmc.Sample consistent with the fake app's tables at
// the given allocation.
func (a *fakeApp) window(insns uint64, ways int) pmc.Sample {
	if ways < 1 {
		ways = 1
	}
	if ways > 11 {
		ways = 11
	}
	cycles := insns * 1000 / uint64(a.ipcMilli[ways])
	misses := uint64(a.mpkcMilli[ways]) * cycles / 1_000_000
	stalls := uint64(a.stallM) * cycles / 1000
	occ := a.occBytes
	if occ == 0 {
		occ = uint64(ways) * testWayBytes
	}
	return pmc.Sample{
		Instructions:   insns,
		Cycles:         cycles,
		LLCMisses:      misses,
		LLCAccesses:    misses * 2,
		StallsL2Miss:   stalls,
		OccupancyBytes: occ,
	}
}

// drive delivers `rounds` windows per app, re-reading the assignment
// between windows exactly like the simulator does.
func drive(t *testing.T, c *Controller, apps map[int]*fakeApp, rounds int) {
	t.Helper()
	ids := make([]int, 0, len(apps))
	for id := range apps {
		ids = append(ids, id)
	}
	for r := 0; r < rounds; r++ {
		for _, id := range ids {
			masks, err := c.Assignment()
			if err != nil {
				t.Fatal(err)
			}
			ways := masks[id].Count()
			c.OnWindow(id, apps[id].window(c.WindowInsns(id), ways))
		}
	}
}

func newTestController(t *testing.T, n int) *Controller {
	t.Helper()
	c, err := NewController(DefaultParams(11), testWayBytes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := c.AddApp(i); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestControllerValidation(t *testing.T) {
	if _, err := NewController(DefaultParams(1), testWayBytes); err == nil {
		t.Error("1-way controller accepted")
	}
	if _, err := NewController(DefaultParams(11), 0); err == nil {
		t.Error("zero wayBytes accepted")
	}
	c := newTestController(t, 1)
	if err := c.AddApp(0); err == nil {
		t.Error("duplicate app accepted")
	}
}

func TestControllerClassifiesWorkload(t *testing.T) {
	c := newTestController(t, 4)
	apps := map[int]*fakeApp{
		0: streamingFake(),
		1: sensitiveFake(),
		2: lightFake(),
		3: streamingFake(),
	}
	drive(t, c, apps, 60)
	if c.SamplingActive() != -1 {
		t.Fatal("sampling still active after long drive")
	}
	if got := c.ClassOf(0); got != ClassStreaming {
		t.Errorf("app 0 = %v, want streaming", got)
	}
	if got := c.ClassOf(1); got != ClassSensitive {
		t.Errorf("app 1 = %v, want sensitive", got)
	}
	if got := c.ClassOf(2); got != ClassLight {
		t.Errorf("app 2 = %v, want light", got)
	}
	if got := c.ClassOf(3); got != ClassStreaming {
		t.Errorf("app 3 = %v, want streaming", got)
	}

	// The resulting plan must isolate both streaming apps in a 1-way
	// cluster and hand the sensitive app a large partition.
	p := c.Reconfigure()
	if err := p.Validate(4, 11); err != nil {
		t.Fatalf("%v (%s)", err, p.Canonical())
	}
	st := p.ClusterOf(0)
	if st != p.ClusterOf(3) || p.Clusters[st].Ways != 1 {
		t.Errorf("streaming isolation missing: %s", p.Canonical())
	}
	if w := p.Clusters[p.ClusterOf(1)].Ways; w < 6 {
		t.Errorf("sensitive app got only %d ways: %s", w, p.Canonical())
	}
}

func TestControllerSamplingSerialized(t *testing.T) {
	c := newTestController(t, 3)
	apps := map[int]*fakeApp{0: lightFake(), 1: lightFake(), 2: lightFake()}
	sawSampling := map[int]bool{}
	for r := 0; r < 30; r++ {
		for id := 0; id < 3; id++ {
			if a := c.SamplingActive(); a >= 0 {
				sawSampling[a] = true
			}
			masks, err := c.Assignment()
			if err != nil {
				t.Fatal(err)
			}
			c.OnWindow(id, apps[id].window(c.WindowInsns(id), masks[id].Count()))
		}
	}
	for id := 0; id < 3; id++ {
		if !sawSampling[id] {
			t.Errorf("app %d never entered sampling", id)
		}
		if c.ClassOf(id) != ClassLight {
			t.Errorf("app %d = %v", id, c.ClassOf(id))
		}
	}
}

func TestControllerSamplingAssignmentShape(t *testing.T) {
	c := newTestController(t, 2)
	apps := map[int]*fakeApp{0: sensitiveFake(), 1: lightFake()}
	// Drive until app 0 or 1 starts sampling.
	for r := 0; r < 10 && c.SamplingActive() < 0; r++ {
		for id := 0; id < 2; id++ {
			masks, _ := c.Assignment()
			c.OnWindow(id, apps[id].window(c.WindowInsns(id), masks[id].Count()))
		}
	}
	active := c.SamplingActive()
	if active < 0 {
		t.Fatal("no sampling episode started")
	}
	masks, err := c.Assignment()
	if err != nil {
		t.Fatal(err)
	}
	other := 1 - active
	if masks[active].Overlaps(masks[other]) {
		t.Error("sampling partitions overlap")
	}
	if masks[active].Count()+masks[other].Count() != 11 {
		t.Error("sampling partitions do not cover the LLC")
	}
	if c.WindowInsns(active) != c.params.SamplingWindowInsns {
		t.Error("sampled app should use the short window")
	}
	if c.WindowInsns(other) != c.params.NormalWindowInsns {
		t.Error("other apps should use the normal window")
	}
}

func TestControllerPhaseChangeTriggersResample(t *testing.T) {
	c := newTestController(t, 2)
	apps := map[int]*fakeApp{0: lightFake(), 1: lightFake()}
	drive(t, c, apps, 30)
	if c.ClassOf(0) != ClassLight {
		t.Fatalf("setup failed: app 0 = %v", c.ClassOf(0))
	}
	// App 0 enters a streaming phase (fotonik3d-style, Fig. 4).
	apps[0] = streamingFake()
	drive(t, c, apps, 40)
	if c.ClassOf(0) != ClassStreaming {
		t.Errorf("phase change not detected: app 0 = %v", c.ClassOf(0))
	}
	if c.Resamples(0) == 0 {
		t.Error("no resample recorded")
	}
	// App 1 stayed light and must not have been resampled.
	if c.Resamples(1) != 0 {
		t.Errorf("stable app resampled %d times", c.Resamples(1))
	}
}

func TestControllerStreamingGoesQuiet(t *testing.T) {
	c := newTestController(t, 2)
	apps := map[int]*fakeApp{0: streamingFake(), 1: sensitiveFake()}
	drive(t, c, apps, 40)
	if c.ClassOf(0) != ClassStreaming {
		t.Fatalf("setup failed: %v", c.ClassOf(0))
	}
	apps[0] = lightFake()
	drive(t, c, apps, 40)
	if c.ClassOf(0) != ClassLight {
		t.Errorf("quiet transition not detected: %v", c.ClassOf(0))
	}
}

func TestControllerRemoveApp(t *testing.T) {
	c := newTestController(t, 3)
	apps := map[int]*fakeApp{0: streamingFake(), 1: sensitiveFake(), 2: lightFake()}
	drive(t, c, apps, 40)
	c.RemoveApp(0)
	p := c.Reconfigure()
	if err := p.Validate(3, 11); err == nil {
		// Validate demands ids < nApps; after removing id 0 the plan
		// holds ids {1,2} — check membership manually instead.
		t.Log("plan validated against 3 apps")
	}
	if p.ClusterOf(0) != -1 {
		t.Error("removed app still in plan")
	}
	if p.ClusterOf(1) == -1 || p.ClusterOf(2) == -1 {
		t.Error("remaining apps missing from plan")
	}
	// Removing the actively sampled app aborts the episode.
	c2 := newTestController(t, 1)
	apps2 := map[int]*fakeApp{0: lightFake()}
	for r := 0; r < 5 && c2.SamplingActive() < 0; r++ {
		masks, _ := c2.Assignment()
		c2.OnWindow(0, apps2[0].window(c2.WindowInsns(0), masks[0].Count()))
	}
	if c2.SamplingActive() == 0 {
		c2.RemoveApp(0)
		if c2.SamplingActive() != -1 {
			t.Error("sampling not aborted on removal")
		}
	}
}

func TestControllerEmptyPlan(t *testing.T) {
	c, err := NewController(DefaultParams(11), testWayBytes)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Reconfigure()
	if len(p.Clusters) != 0 {
		t.Error("empty controller should produce an empty plan")
	}
	masks, err := c.Assignment()
	if err != nil || len(masks) != 0 {
		t.Error("empty controller assignment wrong")
	}
}
