package core

import (
	"fmt"
	"sort"

	fp "github.com/faircache/lfoc/internal/fixedpoint"
	"github.com/faircache/lfoc/internal/lookahead"
	"github.com/faircache/lfoc/internal/plan"
)

// AppInfo is the partitioner's view of one application.
type AppInfo struct {
	// ID is the workload-relative application index.
	ID int
	// Class is the current runtime classification.
	Class Class
	// Profile is required for sensitive applications (their slowdown
	// curves drive lookahead); ignored for other classes.
	Profile *Profile
}

// Partition runs Algorithm 1: LFOC's cache-clustering algorithm.
//
// Following the paper: streaming applications are confined to at most two
// 1-way clusters (ways_for_streaming = min(2, ⌈|ST|/max_streaming_way⌉);
// the paper's integer division would reserve zero ways for small
// streaming sets, so we round up — a nonempty ST always gets a cluster).
// The remaining ways are distributed among cache-sensitive applications
// with UCP's lookahead on their slowdown curves, one cluster each. Light
// (and still-unknown) applications first fill spare capacity in the
// streaming clusters — gaps_available = r − |C|·gaps_per_streaming,
// clamped at zero, implemented literally from Algorithm 1 — and the rest
// are spread round-robin over the sensitive clusters.
func Partition(apps []AppInfo, params *Params) (plan.Plan, error) {
	if params.NrWays < 1 {
		return plan.Plan{}, fmt.Errorf("core: NrWays must be positive")
	}
	if len(apps) == 0 {
		return plan.Plan{}, fmt.Errorf("core: no applications")
	}

	var st, cs, ls []AppInfo
	for _, a := range apps {
		switch a.Class {
		case ClassStreaming:
			st = append(st, a)
		case ClassSensitive:
			if a.Profile == nil {
				return plan.Plan{}, fmt.Errorf("core: sensitive app %d has no profile", a.ID)
			}
			cs = append(cs, a)
		default: // light and unknown share the light path
			ls = append(ls, a)
		}
	}

	// No sensitive applications: a single cluster spanning the LLC.
	if len(cs) == 0 {
		all := make([]int, 0, len(apps))
		for _, a := range apps {
			all = append(all, a.ID)
		}
		sort.Ints(all)
		return plan.Plan{Clusters: []plan.Cluster{{Apps: all, Ways: params.NrWays}}}, nil
	}

	maxStreamingWay := params.MaxStreamingWay
	if maxStreamingWay < 1 {
		maxStreamingWay = 1
	}
	waysForStreaming := 0
	r := 0
	if len(st) > 0 {
		waysForStreaming = ceilDiv(len(st), maxStreamingWay)
		if waysForStreaming > 2 {
			waysForStreaming = 2
		}
		r = ceilDiv(len(st), waysForStreaming)
	}
	if waysForStreaming >= params.NrWays {
		// Degenerate LLC: everything shares one cluster.
		all := make([]int, 0, len(apps))
		for _, a := range apps {
			all = append(all, a.ID)
		}
		sort.Ints(all)
		return plan.Plan{Clusters: []plan.Cluster{{Apps: all, Ways: params.NrWays}}}, nil
	}

	var clusters []plan.Cluster

	// Streaming clusters: waysForStreaming 1-way clusters, up to r apps
	// each.
	next := 0
	for i := 0; i < waysForStreaming; i++ {
		var members []int
		for len(members) < r && next < len(st) {
			members = append(members, st[next].ID)
			next++
		}
		clusters = append(clusters, plan.Cluster{Apps: members, Ways: 1})
	}

	// Sensitive clusters: lookahead over slowdown-reduction utilities.
	csForLookahead := fitSensitive(cs, params.NrWays-waysForStreaming)
	util := make([][]int64, len(csForLookahead))
	for i, grp := range csForLookahead {
		util[i] = lookahead.SlowdownUtility(groupSlowdown(grp, params.NrWays))
	}
	alloc, err := lookahead.Allocate(util, params.NrWays-waysForStreaming)
	if err != nil {
		return plan.Plan{}, fmt.Errorf("core: lookahead: %w", err)
	}
	firstSensitive := len(clusters)
	for i, grp := range csForLookahead {
		ids := make([]int, 0, len(grp))
		for _, a := range grp {
			ids = append(ids, a.ID)
		}
		sort.Ints(ids)
		clusters = append(clusters, plan.Cluster{Apps: ids, Ways: alloc[i]})
	}

	// Light-sharing placement: streaming clusters first (Algorithm 1's
	// gaps), then round-robin over sensitive clusters.
	lsQueue := append([]AppInfo(nil), ls...)
	for idx := 0; len(lsQueue) > 0 && idx < waysForStreaming; idx++ {
		target := &clusters[idx]
		gaps := r - len(target.Apps)*params.GapsPerStreaming
		for gaps > 0 && len(lsQueue) > 0 {
			target.Apps = append(target.Apps, lsQueue[0].ID)
			lsQueue = lsQueue[1:]
			gaps--
		}
	}
	for i := 0; len(lsQueue) > 0; i++ {
		c := firstSensitive + i%(len(clusters)-firstSensitive)
		clusters[c].Apps = append(clusters[c].Apps, lsQueue[0].ID)
		lsQueue = lsQueue[1:]
	}

	// Drop empty streaming clusters (possible when r·waysForStreaming
	// overshoots |ST| and no light app landed there), returning their
	// ways to the first sensitive cluster.
	extraWays := 0
	out := make([]plan.Cluster, 0, len(clusters))
	keptStreaming := 0
	for i, c := range clusters {
		if len(c.Apps) == 0 {
			extraWays += c.Ways
			continue
		}
		if i < firstSensitive {
			keptStreaming++
		}
		out = append(out, c)
	}
	if extraWays > 0 {
		out[keptStreaming].Ways += extraWays
	}

	return plan.Plan{Clusters: out}, nil
}

// fitSensitive groups sensitive apps so their cluster count does not
// exceed the available ways: normally one app per group; if there are
// more sensitive apps than ways, the least sensitive apps (smallest
// slowdown range) are merged pairwise into shared clusters.
func fitSensitive(cs []AppInfo, availWays int) [][]AppInfo {
	groups := make([][]AppInfo, len(cs))
	for i := range cs {
		groups[i] = []AppInfo{cs[i]}
	}
	if len(groups) <= availWays {
		return groups
	}
	// Sort ascending by slowdown range (least sensitive first) and merge
	// the two least sensitive groups until the count fits.
	sort.Slice(groups, func(i, j int) bool {
		return groupRange(groups[i]) < groupRange(groups[j])
	})
	for len(groups) > availWays {
		merged := append(groups[0], groups[1]...)
		groups = append([][]AppInfo{merged}, groups[2:]...)
		sort.Slice(groups, func(i, j int) bool {
			return groupRange(groups[i]) < groupRange(groups[j])
		})
	}
	return groups
}

// groupRange returns the largest 1-way slowdown within the group.
func groupRange(grp []AppInfo) fp.Value {
	var m fp.Value
	for _, a := range grp {
		if sd := a.Profile.Slowdown(1); sd > m {
			m = sd
		}
	}
	return m
}

// groupSlowdown returns the element-wise maximum slowdown curve of a
// group (a shared cluster must satisfy its hungriest member).
func groupSlowdown(grp []AppInfo, nrWays int) []int64 {
	out := make([]int64, nrWays+1)
	for _, a := range grp {
		for w := 1; w <= nrWays; w++ {
			if v := int64(a.Profile.Slowdown(w)); v > out[w] {
				out[w] = v
			}
		}
	}
	return out
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
