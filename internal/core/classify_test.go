package core

import (
	"testing"

	fp "github.com/faircache/lfoc/internal/fixedpoint"
)

// mkProfile builds a profile from float-ish milli tables for tests.
func mkProfile(nrWays int, ipcMilli, mpkcMilli []int64) *Profile {
	samples := make([]ProfileSample, 0, len(ipcMilli))
	for i := range ipcMilli {
		samples = append(samples, ProfileSample{
			Ways: i + 1,
			IPC:  fp.FromMilli(ipcMilli[i]),
			MPKC: fp.FromMilli(mpkcMilli[i]),
		})
	}
	return NewProfile(nrWays, samples)
}

func params11() Params { return DefaultParams(11) }

func TestProfileExtrapolation(t *testing.T) {
	// Only ways 1..3 measured on an 11-way LLC.
	p := NewProfile(11, []ProfileSample{
		{Ways: 1, IPC: fp.FromMilli(500), MPKC: fp.FromInt(20)},
		{Ways: 2, IPC: fp.FromMilli(700), MPKC: fp.FromInt(12)},
		{Ways: 3, IPC: fp.FromMilli(900), MPKC: fp.FromInt(2)},
	})
	if p.MeasuredWays() != 3 {
		t.Errorf("MeasuredWays = %d", p.MeasuredWays())
	}
	if p.IPCAt(3) != p.IPCAt(11) {
		t.Error("extrapolation should hold the last IPC")
	}
	if p.MPKCAt(7) != fp.FromInt(2) {
		t.Error("extrapolation should hold the last MPKC")
	}
	// Slowdown relative to the extrapolated full-size IPC.
	want := fp.Div(fp.FromMilli(900), fp.FromMilli(500))
	if got := p.Slowdown(1); fp.Abs(got-want) > fp.FromMilli(2) {
		t.Errorf("Slowdown(1) = %v, want %v", got, want)
	}
	if p.Slowdown(11) != fp.One {
		t.Error("Slowdown at full LLC should be 1")
	}
	// Out-of-range ways clamp.
	if p.Slowdown(0) != p.Slowdown(1) || p.IPCAt(99) != p.IPCAt(11) {
		t.Error("clamping wrong")
	}
}

func TestProfileDegenerate(t *testing.T) {
	p := NewProfile(11, nil)
	if p.Slowdown(1) != fp.One {
		t.Error("empty profile slowdown should be 1")
	}
	if p.MeasuredWays() != 1 {
		t.Error("empty profile MeasuredWays should be 1")
	}
}

func TestClassifyStreaming(t *testing.T) {
	// Flat IPC, high MPKC everywhere.
	ipc := []int64{520, 520, 525, 525, 525, 528, 528, 528, 528, 528, 530}
	mpkc := []int64{26000, 26000, 25500, 25500, 25000, 25000, 25000, 25000, 25000, 25000, 25000}
	p := mkProfile(11, ipc, mpkc)
	prm := params11()
	if got := Classify(p, &prm); got != ClassStreaming {
		t.Errorf("class = %v, want streaming", got)
	}
}

func TestClassifySensitive(t *testing.T) {
	// Strong IPC growth with ways; MPKC moderate.
	ipc := []int64{480, 570, 660, 740, 810, 870, 920, 950, 975, 990, 1000}
	mpkc := []int64{9500, 8000, 6500, 5200, 4000, 3000, 2200, 1600, 1200, 1000, 900}
	p := mkProfile(11, ipc, mpkc)
	prm := params11()
	if got := Classify(p, &prm); got != ClassSensitive {
		t.Errorf("class = %v, want sensitive", got)
	}
}

func TestClassifyLight(t *testing.T) {
	// Tiny slowdown only at 1 way, low MPKC.
	ipc := []int64{1900, 1990, 2000, 2000, 2000, 2000, 2000, 2000, 2000, 2000, 2000}
	mpkc := []int64{900, 300, 100, 100, 100, 100, 100, 100, 100, 100, 100}
	p := mkProfile(11, ipc, mpkc)
	prm := params11()
	if got := Classify(p, &prm); got != ClassLight {
		t.Errorf("class = %v, want light", got)
	}
}

func TestClassifyHighMPKCButSensitiveIsNotStreaming(t *testing.T) {
	// High MPKC at small allocations *and* a steep slowdown curve: the
	// all-assignments condition must exclude streaming.
	ipc := []int64{500, 650, 800, 900, 960, 990, 1000, 1000, 1000, 1000, 1000}
	mpkc := []int64{15000, 12000, 9000, 6000, 4000, 2000, 1500, 1500, 1500, 1500, 1500}
	p := mkProfile(11, ipc, mpkc)
	prm := params11()
	if got := Classify(p, &prm); got != ClassSensitive {
		t.Errorf("class = %v, want sensitive", got)
	}
}

func TestCriticalWays(t *testing.T) {
	ipc := []int64{480, 570, 660, 740, 810, 870, 920, 950, 975, 990, 1000}
	mpkc := make([]int64, 11)
	p := mkProfile(11, ipc, mpkc)
	prm := params11()
	cw := p.CriticalWays(prm.CriticalSlowdown)
	// slowdown(w) < 1.05 requires ipc > 1000/1.05 = 952.4 → ways >= 9.
	if cw != 9 {
		t.Errorf("critical ways = %d, want 9", cw)
	}
}

func TestSlowdownTable(t *testing.T) {
	ipc := []int64{500, 750, 1000, 1000, 1000, 1000, 1000, 1000, 1000, 1000, 1000}
	p := mkProfile(11, ipc, make([]int64, 11))
	tbl := p.SlowdownTable()
	if len(tbl) != 12 {
		t.Fatalf("len = %d", len(tbl))
	}
	if tbl[0] != 0 {
		t.Error("index 0 should be unused/zero")
	}
	if fp.Value(tbl[1]).Milli() != 2000 {
		t.Errorf("slowdown(1) = %v milli", fp.Value(tbl[1]).Milli())
	}
	if fp.Value(tbl[11]) != fp.One {
		t.Error("slowdown(11) != 1")
	}
}
