package core

import fp "github.com/faircache/lfoc/internal/fixedpoint"

// SamplingState drives one application's sampling episode (§4.2).
//
// Unlike KPart's full downward sweep, LFOC sweeps the sampling partition
// *upward* from one way and stops early as soon as growing it further
// provides no information to the clustering algorithm: (a) when the miss
// rate falls below the low threshold, performance barely improves with
// more space, so the remaining IPC values are extrapolated from the last
// sample; (b) streaming applications show flat IPC with persistently high
// LLCMPKC, so a run of flat steps also terminates the sweep.
type SamplingState struct {
	params    *Params
	ways      int
	samples   []ProfileSample
	flatSteps int
	done      bool
}

// NewSampling starts a sweep at a 1-way sampling partition.
func NewSampling(params *Params) *SamplingState {
	return &SamplingState{params: params, ways: 1}
}

// CurrentWays returns the size of the sampling partition being measured.
func (s *SamplingState) CurrentWays() int { return s.ways }

// Done reports whether the sweep has terminated.
func (s *SamplingState) Done() bool { return s.done }

// Record consumes the metrics measured with the sampling partition at
// CurrentWays ways and either advances the sweep or terminates it.
// It returns true when the sweep is complete.
func (s *SamplingState) Record(ipc, mpkc fp.Value) bool {
	if s.done {
		return true
	}
	prevIPC := fp.Value(0)
	if n := len(s.samples); n > 0 {
		prevIPC = s.samples[n-1].IPC
	}
	s.samples = append(s.samples, ProfileSample{Ways: s.ways, IPC: ipc, MPKC: mpkc})

	// Early stop (a): the application's cache needs are met.
	if mpkc < s.params.LowThresholdMPKC {
		s.done = true
		return true
	}
	// Early stop (b): flat IPC at high miss rate — streaming behaviour.
	if prevIPC > 0 && mpkc >= s.params.HighThresholdMPKC {
		gain := fp.Div(ipc, prevIPC) - fp.One
		if gain <= s.params.IPCFlatTolerance {
			s.flatSteps++
			if s.flatSteps >= s.params.FlatStepsToStop {
				s.done = true
				return true
			}
		} else {
			s.flatSteps = 0
		}
	}
	// The complementary partition needs at least one way.
	if s.ways >= s.params.NrWays-1 {
		s.done = true
		return true
	}
	s.ways++
	return false
}

// Steps returns how many way counts were actually measured.
func (s *SamplingState) Steps() int { return len(s.samples) }

// Finish converts the sweep into a profile (with extrapolation for
// unmeasured way counts).
func (s *SamplingState) Finish() *Profile {
	return NewProfile(s.params.NrWays, s.samples)
}
