package core

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The paper stresses that LFOC's kernel implementation "is free of any FP
// operation" (§2.3.2). This test enforces the same property on this
// package: no float32/float64 types, no floating-point literals, and no
// math package import in any non-test source file.
func TestNoFloatingPointInKernelCode(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(".", name), nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math" || strings.HasPrefix(path, "math/") {
				t.Errorf("%s imports %s", name, path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.Ident:
				if v.Name == "float64" || v.Name == "float32" || v.Name == "complex128" || v.Name == "complex64" {
					t.Errorf("%s:%v uses %s", name, fset.Position(v.Pos()), v.Name)
				}
			case *ast.BasicLit:
				if v.Kind == token.FLOAT {
					t.Errorf("%s:%v has floating-point literal %s", name, fset.Position(v.Pos()), v.Value)
				}
			}
			return true
		})
	}
}
