package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	fp "github.com/faircache/lfoc/internal/fixedpoint"
)

// sensitiveProfile builds a steep slowdown profile whose critical size is
// roughly critWays.
func sensitiveProfile(nrWays, critWays int) *Profile {
	samples := make([]ProfileSample, nrWays)
	for w := 1; w <= nrWays; w++ {
		// IPC ramps to 1.0 at critWays and stays flat.
		var ipcMilli int64
		if w >= critWays {
			ipcMilli = 1000
		} else {
			ipcMilli = 400 + int64(600*w/critWays)
		}
		samples[w-1] = ProfileSample{Ways: w, IPC: fp.FromMilli(ipcMilli), MPKC: fp.FromInt(5)}
	}
	return NewProfile(nrWays, samples)
}

func TestPartitionErrors(t *testing.T) {
	prm := params11()
	if _, err := Partition(nil, &prm); err == nil {
		t.Error("empty workload accepted")
	}
	bad := Params{NrWays: 0}
	if _, err := Partition([]AppInfo{{ID: 0, Class: ClassLight}}, &bad); err == nil {
		t.Error("zero ways accepted")
	}
	if _, err := Partition([]AppInfo{{ID: 0, Class: ClassSensitive, Profile: nil}}, &prm); err == nil {
		t.Error("sensitive app without profile accepted")
	}
}

func TestNoSensitiveSingleCluster(t *testing.T) {
	prm := params11()
	apps := []AppInfo{
		{ID: 0, Class: ClassStreaming},
		{ID: 1, Class: ClassLight},
		{ID: 2, Class: ClassStreaming},
		{ID: 3, Class: ClassUnknown},
	}
	p, err := Partition(apps, &prm)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Clusters) != 1 || p.Clusters[0].Ways != 11 || len(p.Clusters[0].Apps) != 4 {
		t.Errorf("plan = %s", p.Canonical())
	}
}

func TestStreamingConfinedToOneWay(t *testing.T) {
	prm := params11()
	apps := []AppInfo{
		{ID: 0, Class: ClassStreaming},
		{ID: 1, Class: ClassStreaming},
		{ID: 2, Class: ClassSensitive, Profile: sensitiveProfile(11, 8)},
		{ID: 3, Class: ClassSensitive, Profile: sensitiveProfile(11, 4)},
	}
	p, err := Partition(apps, &prm)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(4, 11); err != nil {
		t.Fatalf("%v (%s)", err, p.Canonical())
	}
	// Both streaming apps (|ST|=2 ≤ max_streaming_way) share one 1-way
	// cluster; 10 ways remain for the two sensitive apps.
	stCluster := p.ClusterOf(0)
	if stCluster != p.ClusterOf(1) {
		t.Errorf("streaming apps not co-located: %s", p.Canonical())
	}
	if p.Clusters[stCluster].Ways != 1 {
		t.Errorf("streaming cluster has %d ways: %s", p.Clusters[stCluster].Ways, p.Canonical())
	}
	// The steeper/hungrier sensitive app (critical size 8) must receive
	// more ways than the modest one (critical size 4).
	w2 := p.Clusters[p.ClusterOf(2)].Ways
	w3 := p.Clusters[p.ClusterOf(3)].Ways
	if w2 <= w3 {
		t.Errorf("lookahead gave hungry app %d ways, modest app %d: %s", w2, w3, p.Canonical())
	}
	if w2+w3 != 10 {
		t.Errorf("sensitive apps got %d ways, want 10: %s", w2+w3, p.Canonical())
	}
}

func TestManyStreamingGetTwoWays(t *testing.T) {
	prm := params11()
	var apps []AppInfo
	for i := 0; i < 6; i++ { // ceil(6/5) = 2 streaming ways
		apps = append(apps, AppInfo{ID: i, Class: ClassStreaming})
	}
	apps = append(apps, AppInfo{ID: 6, Class: ClassSensitive, Profile: sensitiveProfile(11, 6)})
	p, err := Partition(apps, &prm)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(7, 11); err != nil {
		t.Fatal(err)
	}
	streamingClusters := map[int]bool{}
	for i := 0; i < 6; i++ {
		ci := p.ClusterOf(i)
		streamingClusters[ci] = true
		if p.Clusters[ci].Ways != 1 {
			t.Errorf("streaming cluster with %d ways", p.Clusters[ci].Ways)
		}
	}
	if len(streamingClusters) != 2 {
		t.Errorf("streaming apps in %d clusters, want 2: %s", len(streamingClusters), p.Canonical())
	}
	// Sensitive app gets the remaining 9 ways.
	if w := p.Clusters[p.ClusterOf(6)].Ways; w != 9 {
		t.Errorf("sensitive app got %d ways", w)
	}
}

func TestLightFillStreamingGapsThenRoundRobin(t *testing.T) {
	prm := params11()
	apps := []AppInfo{
		{ID: 0, Class: ClassStreaming},
		{ID: 1, Class: ClassSensitive, Profile: sensitiveProfile(11, 5)},
		{ID: 2, Class: ClassSensitive, Profile: sensitiveProfile(11, 5)},
		{ID: 3, Class: ClassLight},
		{ID: 4, Class: ClassLight},
		{ID: 5, Class: ClassLight},
		{ID: 6, Class: ClassLight},
	}
	p, err := Partition(apps, &prm)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(7, 11); err != nil {
		t.Fatalf("%v (%s)", err, p.Canonical())
	}
	// |ST|=1 → ways_for_streaming=1, r=1. The streaming cluster has one
	// member, so gaps = r − |C|·gaps_per_streaming = 1−3 < 0: no light
	// app goes there; all four spread over the two sensitive clusters.
	st := p.ClusterOf(0)
	if len(p.Clusters[st].Apps) != 1 {
		t.Errorf("streaming cluster gained light apps: %s", p.Canonical())
	}
	n1 := len(p.Clusters[p.ClusterOf(1)].Apps)
	n2 := len(p.Clusters[p.ClusterOf(2)].Apps)
	if n1+n2 != 6 || absInt(n1-n2) > 1 {
		t.Errorf("light apps unbalanced (%d/%d): %s", n1, n2, p.Canonical())
	}
}

func TestLightGapsUsedWhenStreamingClusterHasRoom(t *testing.T) {
	prm := params11()
	// |ST|=5 → ways_for_streaming=1, r=5; streaming cluster holds 5 apps;
	// gaps = 5 − 5·3 < 0 → none. Use fewer: |ST|=4 → r=4, after mapping 4
	// streaming apps gaps = 4 − 4·3 < 0. The literal formula only admits
	// light apps when |C|·gaps_per_streaming < r, i.e. a nearly empty
	// streaming cluster. Force that with GapsPerStreaming=0.
	prm.GapsPerStreaming = 0
	apps := []AppInfo{
		{ID: 0, Class: ClassStreaming},
		{ID: 1, Class: ClassStreaming},
		{ID: 2, Class: ClassStreaming},
		{ID: 3, Class: ClassSensitive, Profile: sensitiveProfile(11, 5)},
		{ID: 4, Class: ClassLight},
		{ID: 5, Class: ClassLight},
	}
	p, err := Partition(apps, &prm)
	if err != nil {
		t.Fatal(err)
	}
	// gaps = r − 0 = 3: both light apps land in the streaming cluster.
	st := p.ClusterOf(0)
	if p.ClusterOf(4) != st || p.ClusterOf(5) != st {
		t.Errorf("light apps should fill streaming gaps: %s", p.Canonical())
	}
}

func TestSensitiveOverflowMerges(t *testing.T) {
	prm := DefaultParams(4)
	var apps []AppInfo
	for i := 0; i < 6; i++ {
		apps = append(apps, AppInfo{ID: i, Class: ClassSensitive, Profile: sensitiveProfile(4, 2+i%3)})
	}
	p, err := Partition(apps, &prm)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(6, 4); err != nil {
		t.Fatalf("%v (%s)", err, p.Canonical())
	}
	if len(p.Clusters) > 4 {
		t.Errorf("more clusters than ways: %s", p.Canonical())
	}
}

func TestDegenerateTinyLLC(t *testing.T) {
	prm := DefaultParams(1)
	apps := []AppInfo{
		{ID: 0, Class: ClassStreaming},
		{ID: 1, Class: ClassSensitive, Profile: sensitiveProfile(1, 1)},
	}
	p, err := Partition(apps, &prm)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Clusters) != 1 || p.Clusters[0].Ways != 1 {
		t.Errorf("tiny LLC should collapse to one cluster: %s", p.Canonical())
	}
}

func TestPartitionWaysSumToLLC(t *testing.T) {
	prm := params11()
	apps := []AppInfo{
		{ID: 0, Class: ClassStreaming},
		{ID: 1, Class: ClassStreaming},
		{ID: 2, Class: ClassStreaming},
		{ID: 3, Class: ClassSensitive, Profile: sensitiveProfile(11, 7)},
		{ID: 4, Class: ClassSensitive, Profile: sensitiveProfile(11, 3)},
		{ID: 5, Class: ClassLight},
		{ID: 6, Class: ClassLight},
	}
	p, err := Partition(apps, &prm)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, c := range p.Clusters {
		sum += c.Ways
	}
	if sum != 11 {
		t.Errorf("ways sum to %d, want 11: %s", sum, p.Canonical())
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Property: Partition produces a valid plan for any random workload
// composition (classes, profiles, sizes).
func TestQuickPartitionAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prm := params11()
		n := rng.Intn(16) + 1
		apps := make([]AppInfo, n)
		for i := range apps {
			switch rng.Intn(4) {
			case 0:
				apps[i] = AppInfo{ID: i, Class: ClassStreaming}
			case 1:
				apps[i] = AppInfo{ID: i, Class: ClassLight}
			case 2:
				apps[i] = AppInfo{ID: i, Class: ClassUnknown}
			default:
				apps[i] = AppInfo{ID: i, Class: ClassSensitive,
					Profile: sensitiveProfile(11, rng.Intn(9)+2)}
			}
		}
		p, err := Partition(apps, &prm)
		if err != nil {
			return false
		}
		return p.Validate(n, prm.NrWays) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the ways assigned to streaming clusters never exceed two,
// regardless of how many streaming apps the workload contains (§3/§4).
func TestQuickStreamingConfinement(t *testing.T) {
	f := func(nStream8 uint8) bool {
		prm := params11()
		n := int(nStream8%14) + 1
		apps := make([]AppInfo, 0, n+1)
		for i := 0; i < n; i++ {
			apps = append(apps, AppInfo{ID: i, Class: ClassStreaming})
		}
		apps = append(apps, AppInfo{ID: n, Class: ClassSensitive, Profile: sensitiveProfile(11, 6)})
		p, err := Partition(apps, &prm)
		if err != nil {
			return false
		}
		streamWays := 0
		for _, c := range p.Clusters {
			for _, a := range c.Apps {
				if a < n { // a streaming app
					streamWays += c.Ways
					break
				}
			}
		}
		return streamWays <= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
