package sharing

import (
	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/cat"
)

// Evaluator is a reusable evaluation session over one Model. It owns all
// the scratch the equilibrium computation needs (shares, sharing groups,
// water-filling buffers, per-phase curve caches), so repeated
// evaluations — the solver scoring thousands of candidate clusters, the
// simulator re-evaluating after every phase change — allocate nothing
// after warm-up.
//
// An Evaluator is not safe for concurrent use; give each goroutine its
// own (they can share one read-only curve map via NewEvaluatorWithCurves,
// which is how the branch-and-bound workers avoid rebuilding the caches
// per worker). Results are identical to the Model's map-returning methods:
// the arithmetic is the same, in the same order.
type Evaluator struct {
	model *Model

	// shared is an optional read-only curve map provided at construction;
	// curves holds lazily built caches for phases not present in shared.
	shared map[*appmodel.PhaseSpec]*appmodel.CurveCache
	curves map[*appmodel.PhaseSpec]*appmodel.CurveCache

	// Scratch, grown on demand to the app count.
	shares    []float64
	masks     []cat.WayMask
	appCurves []*appmodel.CurveCache
	perfs     []appmodel.Perf

	// Union-find + flattened sharing groups.
	parent   []int
	groupID  []int
	groupLen []int
	groupOff []int
	members  []int

	// Water-filling buffers (sized to the largest group).
	caps     []float64
	pressure []float64
	target   []float64
	active   []bool

	// resScratch backs the Model's pooled map wrappers.
	resScratch []Result
}

// NewEvaluator creates an evaluation session for a model.
func NewEvaluator(m *Model) *Evaluator {
	return NewEvaluatorWithCurves(m, nil)
}

// NewEvaluatorWithCurves creates a session that resolves phase curves
// from the given immutable map first (the map must not be mutated after
// this call); misses are cached privately.
func NewEvaluatorWithCurves(m *Model, curves map[*appmodel.PhaseSpec]*appmodel.CurveCache) *Evaluator {
	return &Evaluator{
		model:  m,
		shared: curves,
		curves: make(map[*appmodel.PhaseSpec]*appmodel.CurveCache),
	}
}

// Curve returns the evaluator's cached perf curve for a phase. Lookup
// order: the construction-time shared map (lock-free), the evaluator's
// private cache, then the model-level cache (mutex-guarded, shared by
// all evaluators of the model so curves are built once per phase).
func (e *Evaluator) Curve(ph *appmodel.PhaseSpec) *appmodel.CurveCache {
	if c, ok := e.shared[ph]; ok {
		return c
	}
	if c, ok := e.curves[ph]; ok {
		return c
	}
	c := e.model.curveFor(ph)
	e.curves[ph] = c
	return c
}

// grow sizes the scratch for n applications. groupOff is the allocation
// sentinel because it is the one slice that must hold n+1 entries (so
// n == 0 still allocates it).
func (e *Evaluator) grow(n int) {
	if cap(e.groupOff) < n+1 {
		e.shares = make([]float64, n)
		e.masks = make([]cat.WayMask, n)
		e.appCurves = make([]*appmodel.CurveCache, n)
		e.perfs = make([]appmodel.Perf, n)
		e.parent = make([]int, n)
		e.groupID = make([]int, n)
		e.groupLen = make([]int, n)
		e.groupOff = make([]int, n+1)
		e.members = make([]int, n)
		e.caps = make([]float64, n)
		e.pressure = make([]float64, n)
		e.target = make([]float64, n)
		e.active = make([]bool, n)
	}
	e.shares = e.shares[:n]
	e.masks = e.masks[:n]
	e.appCurves = e.appCurves[:n]
	e.perfs = e.perfs[:n]
	e.parent = e.parent[:n]
	e.groupID = e.groupID[:n]
	e.groupLen = e.groupLen[:n]
	e.groupOff = e.groupOff[:n+1]
	e.members = e.members[:n]
}

// EvaluateInto computes the co-run equilibrium and stores the result for
// apps[i] in dst[i] (positional, unlike the Model's ID-keyed maps). dst
// is grown if needed and returned.
//
//lfoc:hotpath
func (e *Evaluator) EvaluateInto(dst []Result, apps []App) []Result {
	dst = growResults(dst, len(apps))
	e.evaluate(dst, apps, nil)
	return dst
}

// EvaluateAtScaleInto is EvaluateInto under a frozen memory-latency
// inflation factor (the solver's decomposable scoring mode).
//
//lfoc:hotpath
func (e *Evaluator) EvaluateAtScaleInto(dst []Result, apps []App, memScale float64) []Result {
	if memScale < 1 {
		memScale = 1
	}
	dst = growResults(dst, len(apps))
	e.evaluate(dst, apps, &memScale)
	return dst
}

// MemScale returns the converged bandwidth latency-inflation factor.
func (e *Evaluator) MemScale(apps []App) float64 {
	e.resScratch = growResults(e.resScratch, len(apps))
	return e.evaluate(e.resScratch, apps, nil)
}

func growResults(dst []Result, n int) []Result {
	if cap(dst) < n {
		return make([]Result, n)
	}
	return dst[:n]
}

// evaluate is the core fixed point; when fixedScale is non-nil the
// bandwidth loop is skipped and *fixedScale is used throughout. It
// returns the final inflation factor.
//
//lfoc:hotpath
func (e *Evaluator) evaluate(dst []Result, apps []App, fixedScale *float64) float64 {
	m := e.model
	cacheIters := m.CacheIters
	if cacheIters <= 0 {
		cacheIters = 30
	}
	bwIters := m.BWIters
	if bwIters <= 0 {
		bwIters = 6
	}
	damping := m.Damping
	if damping <= 0 || damping > 1 {
		damping = 0.5
	}

	n := len(apps)
	e.grow(n)
	for i := range apps {
		e.masks[i] = apps[i].Mask
		e.appCurves[i] = e.Curve(apps[i].Phase)
	}
	ngroups := e.sharingGroups(n)

	memScale := 1.0
	if fixedScale != nil {
		memScale = *fixedScale
		bwIters = 1
	}
	for bw := 0; bw < bwIters; bw++ {
		// Cache-share equilibrium per sharing group at current memScale.
		for g := 0; g < ngroups; g++ {
			e.groupShares(e.members[e.groupOff[g]:e.groupOff[g+1]], memScale, cacheIters, damping)
		}
		// Bandwidth fixed point: demand at current shares.
		total := 0.0
		for i := range apps {
			e.perfs[i] = e.appCurves[i].Perf(uint64(e.shares[i]), memScale)
			total += e.perfs[i].Bandwidth
		}
		if fixedScale != nil {
			break
		}
		over := total / float64(m.Plat.MaxBandwidth)
		if over <= 1 {
			if memScale == 1 {
				break
			}
			// Demand dropped below saturation: relax toward 1.
			memScale = 1 + (memScale-1)*0.5
			continue
		}
		memScale *= over
	}

	for i := range apps {
		dst[i] = Result{Perf: e.perfs[i], ShareBytes: uint64(e.shares[i])}
	}
	return memScale
}

// sharingGroups partitions app indices into connected components of mask
// overlap, flattened into e.members with per-group offsets in e.groupOff.
// Group and member order match cat.SharingGroups (ascending first-seen).
//
//lfoc:hotpath
func (e *Evaluator) sharingGroups(n int) int {
	parent := e.parent
	for i := 0; i < n; i++ {
		parent[i] = i
	}
	//lfoc:ok hotpathalloc: non-escaping closure over a reused scratch slice; TestEvaluatorSteadyStateAllocFree pins 0 allocs/op
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if e.masks[i].Overlaps(e.masks[j]) {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	// Assign group ids in ascending first-member order and bucket.
	ngroups := 0
	for i := 0; i < n; i++ {
		e.groupID[i] = -1
	}
	for i := 0; i < n; i++ {
		r := find(i)
		if e.groupID[r] < 0 {
			e.groupID[r] = ngroups
			e.groupLen[ngroups] = 0
			ngroups++
		}
		e.groupLen[e.groupID[r]]++
	}
	off := 0
	for g := 0; g < ngroups; g++ {
		e.groupOff[g] = off
		off += e.groupLen[g]
		e.groupLen[g] = 0 // reuse as fill cursor
	}
	e.groupOff[ngroups] = off
	for i := 0; i < n; i++ {
		g := e.groupID[find(i)]
		e.members[e.groupOff[g]+e.groupLen[g]] = i
		e.groupLen[g]++
	}
	return ngroups
}

// groupShares computes the capacity split inside one sharing group,
// writing into e.shares.
//
//lfoc:hotpath
func (e *Evaluator) groupShares(group []int, memScale float64, iters int, damping float64) {
	plat := e.model.Plat
	var union cat.WayMask
	for _, i := range group {
		union |= e.masks[i]
	}
	capacity := float64(uint64(union.Count()) * plat.WayBytes)

	if len(group) == 1 {
		i := group[0]
		e.shares[i] = float64(uint64(e.masks[i].Count()) * plat.WayBytes)
		return
	}

	// Initialize equally, capped by own-mask capacity.
	caps := e.caps[:len(group)]
	pressure := e.pressure[:len(group)]
	target := e.target[:len(group)]
	active := e.active[:len(group)]
	for gi, i := range group {
		caps[gi] = float64(uint64(e.masks[i].Count()) * plat.WayBytes)
		s := capacity / float64(len(group))
		if s > caps[gi] {
			s = caps[gi]
		}
		e.shares[i] = s
	}

	const floorBytes = 64 * 1024 // an app always holds a few lines
	for it := 0; it < iters; it++ {
		for gi, i := range group {
			// Line-insertion rate: misses per second.
			bw := e.appCurves[i].Bandwidth(uint64(e.shares[i]), memScale)
			pressure[gi] = bw/float64(plat.LineBytes) + 1 // +1 avoids all-zero
		}
		waterfillInto(target, active, capacity, pressure, caps, floorBytes)
		for gi, i := range group {
			e.shares[i] = (1-damping)*e.shares[i] + damping*target[gi]
		}
	}
}

// waterfillInto distributes capacity proportionally to pressure, capping
// each recipient at caps[i] (but never below floor) and redistributing
// capped excess among the rest. out and active are caller-provided
// scratch of len(pressure).
//
//lfoc:hotpath
func waterfillInto(out []float64, active []bool, capacity float64, pressure, caps []float64, floor float64) {
	n := len(pressure)
	for i := range out {
		out[i] = 0
	}
	remaining := capacity
	totalP := 0.0
	for i := range pressure {
		active[i] = true
		totalP += pressure[i]
	}
	for round := 0; round < n; round++ {
		if totalP <= 0 || remaining <= 0 {
			break
		}
		capped := false
		for i := range pressure {
			if !active[i] {
				continue
			}
			want := remaining * pressure[i] / totalP
			if want >= caps[i] {
				out[i] = caps[i]
				active[i] = false
				remaining -= caps[i]
				totalP -= pressure[i]
				capped = true
			}
		}
		if !capped {
			for i := range pressure {
				if active[i] {
					out[i] = remaining * pressure[i] / totalP
				}
			}
			break
		}
	}
	for i := range out {
		if out[i] < floor {
			out[i] = floor
		}
		if out[i] > caps[i] {
			out[i] = caps[i]
		}
	}
}
