package sharing

import (
	"math"
	"testing"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/cat"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/plan"
	"github.com/faircache/lfoc/internal/profiles"
)

func phaseOf(name string) *appmodel.PhaseSpec {
	return &profiles.MustGet(name).Phases[0]
}

func TestSingleAppFullMaskMatchesAlone(t *testing.T) {
	plat := machine.Skylake()
	m := NewModel(plat)
	ph := phaseOf("soplex06")
	res := m.Evaluate([]App{{ID: 0, Phase: ph, Mask: cat.FullMask(plat.Ways)}})
	alone := appmodel.PhasePerf(ph, plat, plat.LLCBytes(), 1)
	got := res[0]
	if math.Abs(got.Perf.IPC-alone.IPC) > 1e-9 {
		t.Errorf("solo IPC = %v, want %v", got.Perf.IPC, alone.IPC)
	}
	if got.ShareBytes != plat.LLCBytes() {
		t.Errorf("solo share = %d, want full LLC", got.ShareBytes)
	}
}

func TestStreamingStealsSpaceFromSensitive(t *testing.T) {
	plat := machine.Skylake()
	m := NewModel(plat)
	full := cat.FullMask(plat.Ways)
	sens := phaseOf("xalancbmk06")
	strm := phaseOf("lbm06")
	res := m.Evaluate([]App{
		{ID: 0, Phase: sens, Mask: full},
		{ID: 1, Phase: strm, Mask: full},
	})
	// The streaming app inserts far more lines, so it must hold more
	// space even though it gains nothing from it.
	if res[1].ShareBytes <= res[0].ShareBytes {
		t.Errorf("streaming share %d should exceed sensitive share %d",
			res[1].ShareBytes, res[0].ShareBytes)
	}
	// Shares sum to the full capacity (within rounding).
	sum := res[0].ShareBytes + res[1].ShareBytes
	if math.Abs(float64(sum)-float64(plat.LLCBytes())) > float64(plat.LLCBytes())/100 {
		t.Errorf("shares sum to %d, capacity %d", sum, plat.LLCBytes())
	}
	// The sensitive app suffers: its slowdown vs alone must be large.
	alone := appmodel.PhasePerf(sens, plat, plat.LLCBytes(), 1)
	sd := alone.IPC / res[0].Perf.IPC
	if sd < 1.2 {
		t.Errorf("sensitive slowdown when sharing with streaming = %v, want > 1.2", sd)
	}
	// The streaming app barely cares.
	aloneS := appmodel.PhasePerf(strm, plat, plat.LLCBytes(), 1)
	if sdS := aloneS.IPC / res[1].Perf.IPC; sdS > 1.3 {
		t.Errorf("streaming slowdown = %v, should stay small", sdS)
	}
}

func TestIsolationRestoresSensitivePerformance(t *testing.T) {
	// Partitioning the streaming app into 1 way must give the sensitive
	// app most of its alone performance back — the core LFOC mechanism.
	plat := machine.Skylake()
	m := NewModel(plat)
	sens := phaseOf("xalancbmk06")
	strm := phaseOf("lbm06")

	sharedRes := m.Evaluate([]App{
		{ID: 0, Phase: sens, Mask: cat.FullMask(plat.Ways)},
		{ID: 1, Phase: strm, Mask: cat.FullMask(plat.Ways)},
	})
	isoRes := m.Evaluate([]App{
		{ID: 0, Phase: sens, Mask: cat.MaskRange(1, plat.Ways-1)},
		{ID: 1, Phase: strm, Mask: cat.MaskRange(0, 1)},
	})
	if isoRes[0].Perf.IPC <= sharedRes[0].Perf.IPC {
		t.Errorf("isolation should improve the sensitive app: %v vs %v",
			isoRes[0].Perf.IPC, sharedRes[0].Perf.IPC)
	}
	// And the sensitive app should now hold (nearly) its whole partition.
	if isoRes[0].ShareBytes != uint64(plat.Ways-1)*plat.WayBytes {
		t.Errorf("isolated sensitive share = %d", isoRes[0].ShareBytes)
	}
}

func TestDisjointGroupsDoNotInteractThroughCache(t *testing.T) {
	plat := machine.Skylake()
	// Use light apps so bandwidth plays no role.
	m := NewModel(plat)
	l1 := phaseOf("povray06")
	l2 := phaseOf("namd06")
	together := m.Evaluate([]App{
		{ID: 0, Phase: l1, Mask: cat.MaskRange(0, 5)},
		{ID: 1, Phase: l2, Mask: cat.MaskRange(5, 6)},
	})
	aloneA := m.Evaluate([]App{{ID: 0, Phase: l1, Mask: cat.MaskRange(0, 5)}})
	if math.Abs(together[0].Perf.IPC-aloneA[0].Perf.IPC) > 1e-9 {
		t.Error("disjoint partitions interacted through the cache model")
	}
}

func TestBandwidthSaturationSlowsEveryone(t *testing.T) {
	plat := machine.Skylake()
	m := NewModel(plat)
	// Eight streaming apps each demanding multiple GB/s exceed MaxBandwidth.
	var apps []App
	for i := 0; i < 8; i++ {
		apps = append(apps, App{ID: i, Phase: phaseOf("lbm06"), Mask: cat.FullMask(plat.Ways)})
	}
	res := m.Evaluate(apps)
	var total float64
	for _, r := range res {
		total += r.Perf.Bandwidth
	}
	if total > float64(plat.MaxBandwidth)*1.15 {
		t.Errorf("achieved bandwidth %v exceeds saturation %v by too much", total, plat.MaxBandwidth)
	}
	// Each streaming instance must run slower than alone.
	alone := appmodel.PhasePerf(phaseOf("lbm06"), plat, plat.LLCBytes(), 1)
	if res[0].Perf.IPC >= alone.IPC*0.95 {
		t.Error("bandwidth saturation did not slow streaming apps down")
	}
}

func TestOverlappingMasksShareCappedSpace(t *testing.T) {
	plat := machine.Skylake()
	m := NewModel(plat)
	// Dunn-style: a 2-way mask inside an 11-way mask. The small-mask app
	// may hold at most 2 ways of space no matter its pressure.
	strm := phaseOf("lbm06")
	sens := phaseOf("xalancbmk06")
	res := m.Evaluate([]App{
		{ID: 0, Phase: strm, Mask: cat.MaskRange(0, 2)},
		{ID: 1, Phase: sens, Mask: cat.FullMask(plat.Ways)},
	})
	if res[0].ShareBytes > 2*plat.WayBytes {
		t.Errorf("capped app holds %d bytes, cap is %d", res[0].ShareBytes, 2*plat.WayBytes)
	}
	if res[1].ShareBytes < 8*plat.WayBytes {
		t.Errorf("large-mask app should get the rest, got %d", res[1].ShareBytes)
	}
}

func TestEvaluateDeterminism(t *testing.T) {
	plat := machine.Skylake()
	m := NewModel(plat)
	apps := []App{
		{ID: 0, Phase: phaseOf("xalancbmk06"), Mask: cat.FullMask(plat.Ways)},
		{ID: 1, Phase: phaseOf("lbm06"), Mask: cat.FullMask(plat.Ways)},
		{ID: 2, Phase: phaseOf("povray06"), Mask: cat.FullMask(plat.Ways)},
	}
	a := m.Evaluate(apps)
	b := m.Evaluate(apps)
	for id := range a {
		if a[id] != b[id] {
			t.Fatalf("nondeterministic result for app %d", id)
		}
	}
}

func TestEvaluatePlanStockVsLFOCShape(t *testing.T) {
	// A 4-app workload: isolating the two streaming apps in 1 way must
	// reduce unfairness vs. the single-cluster (stock) plan.
	plat := machine.Skylake()
	m := NewModel(plat)
	phases := []*appmodel.PhaseSpec{
		phaseOf("xalancbmk06"),
		phaseOf("soplex06"),
		phaseOf("lbm06"),
		phaseOf("libquantum06"),
	}
	stock := plan.SingleCluster(4, plat.Ways)
	lfocish := plan.Plan{Clusters: []plan.Cluster{
		{Apps: []int{2, 3}, Ways: 1},
		{Apps: []int{0}, Ways: 6},
		{Apps: []int{1}, Ways: 4},
	}}
	sdStock, err := EvaluatePlan(m, phases, stock)
	if err != nil {
		t.Fatal(err)
	}
	sdLFOC, err := EvaluatePlan(m, phases, lfocish)
	if err != nil {
		t.Fatal(err)
	}
	unfStock := maxOf(sdStock) / minOf(sdStock)
	unfLFOC := maxOf(sdLFOC) / minOf(sdLFOC)
	if unfLFOC >= unfStock {
		t.Errorf("isolating streaming apps should reduce unfairness: %v vs %v", unfLFOC, unfStock)
	}
	// All slowdowns must be >= 1 (co-running never speeds you up here).
	for i, s := range append(append([]float64{}, sdStock...), sdLFOC...) {
		if s < 0.999 {
			t.Errorf("slowdown %d = %v < 1", i, s)
		}
	}
}

func TestEvaluatePlanRejectsBadPlans(t *testing.T) {
	plat := machine.Skylake()
	m := NewModel(plat)
	phases := []*appmodel.PhaseSpec{phaseOf("povray06")}
	bad := plan.Plan{Clusters: []plan.Cluster{{Apps: []int{0, 1}, Ways: 1}}}
	if _, err := EvaluatePlan(m, phases, bad); err == nil {
		t.Error("invalid plan accepted")
	}
}

func TestModelDefaultsClamped(t *testing.T) {
	plat := machine.Skylake()
	m := &Model{Plat: plat, CacheIters: -1, BWIters: -1, Damping: 7}
	res := m.Evaluate([]App{{ID: 0, Phase: phaseOf("povray06"), Mask: cat.FullMask(plat.Ways)}})
	if res[0].Perf.IPC <= 0 {
		t.Error("degenerate model parameters broke evaluation")
	}
}

func TestWaterfillProperties(t *testing.T) {
	caps := []float64{100, 1000, 1000}
	out := waterfill(1200, []float64{10, 1, 1}, caps, 1)
	// First is capped at 100; remainder split equally.
	if math.Abs(out[0]-100) > 1e-9 {
		t.Errorf("capped share = %v", out[0])
	}
	if math.Abs(out[1]-550) > 1e-6 || math.Abs(out[2]-550) > 1e-6 {
		t.Errorf("redistribution wrong: %v", out)
	}
	sum := out[0] + out[1] + out[2]
	if math.Abs(sum-1200) > 1e-6 {
		t.Errorf("waterfill does not conserve capacity: %v", sum)
	}
}

func maxOf(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

func minOf(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs {
		if v < m {
			m = v
		}
	}
	return m
}

func TestEvaluatorMatchesMapAPI(t *testing.T) {
	// EvaluateInto (positional, scratch-reusing) must agree bit-for-bit
	// with the map-returning wrappers, including across reuses of the
	// same session with different app counts and overlapping masks.
	plat := machine.Skylake()
	m := NewModel(plat)
	eval := NewEvaluator(m)
	cases := [][]App{
		{
			{ID: 0, Phase: phaseOf("xalancbmk06"), Mask: cat.MaskRange(0, 4)},
			{ID: 1, Phase: phaseOf("lbm06"), Mask: cat.MaskRange(4, 4)},
			{ID: 2, Phase: phaseOf("povray06"), Mask: cat.MaskRange(8, 3)},
		},
		{
			{ID: 0, Phase: phaseOf("xalancbmk06"), Mask: cat.FullMask(plat.Ways)},
			{ID: 1, Phase: phaseOf("lbm06"), Mask: cat.FullMask(plat.Ways)},
			{ID: 2, Phase: phaseOf("soplex06"), Mask: cat.FullMask(plat.Ways)},
			{ID: 3, Phase: phaseOf("milc06"), Mask: cat.FullMask(plat.Ways)},
		},
		{
			// Partially overlapping masks (Dunn-style) exercise the
			// sharing-group machinery.
			{ID: 0, Phase: phaseOf("omnetpp06"), Mask: cat.MaskRange(0, 6)},
			{ID: 1, Phase: phaseOf("lbm06"), Mask: cat.MaskRange(4, 4)},
			{ID: 2, Phase: phaseOf("namd06"), Mask: cat.MaskRange(9, 2)},
		},
	}
	var res []Result
	for ci, apps := range cases {
		want := m.Evaluate(apps)
		res = eval.EvaluateInto(res, apps)
		for i, a := range apps {
			if res[i] != want[a.ID] {
				t.Errorf("case %d app %d: EvaluateInto %+v != Evaluate %+v", ci, i, res[i], want[a.ID])
			}
		}
		wantScale := m.MemScale(apps)
		if gotScale := eval.MemScale(apps); gotScale != wantScale {
			t.Errorf("case %d: MemScale %v != %v", ci, gotScale, wantScale)
		}
		wantAt := m.EvaluateAtScale(apps, 1.3)
		res = eval.EvaluateAtScaleInto(res, apps, 1.3)
		for i, a := range apps {
			if res[i] != wantAt[a.ID] {
				t.Errorf("case %d app %d: EvaluateAtScaleInto %+v != EvaluateAtScale %+v", ci, i, res[i], wantAt[a.ID])
			}
		}
	}
}

func TestEvaluatorSteadyStateAllocFree(t *testing.T) {
	plat := machine.Skylake()
	eval := NewEvaluator(NewModel(plat))
	apps := []App{
		{ID: 0, Phase: phaseOf("xalancbmk06"), Mask: cat.FullMask(plat.Ways)},
		{ID: 1, Phase: phaseOf("lbm06"), Mask: cat.FullMask(plat.Ways)},
		{ID: 2, Phase: phaseOf("soplex06"), Mask: cat.MaskRange(0, 5)},
	}
	res := eval.EvaluateInto(nil, apps) // warm up scratch and curves
	allocs := testing.AllocsPerRun(50, func() {
		res = eval.EvaluateInto(res, apps)
	})
	if allocs != 0 {
		t.Errorf("steady-state EvaluateInto allocates %v times per call, want 0", allocs)
	}
}

func TestEvaluateEmptyWorkload(t *testing.T) {
	// Empty inputs must return empty results, not panic (regression:
	// grow(0) used to slice a nil groupOff).
	m := NewModel(machine.Skylake())
	if res := m.Evaluate(nil); len(res) != 0 {
		t.Errorf("Evaluate(nil) = %v, want empty", res)
	}
	if res := m.Evaluate([]App{}); len(res) != 0 {
		t.Errorf("Evaluate([]) = %v, want empty", res)
	}
	eval := NewEvaluator(m)
	if res := eval.EvaluateInto(nil, nil); len(res) != 0 {
		t.Errorf("EvaluateInto(nil, nil) = %v, want empty", res)
	}
	if scale := m.MemScale(nil); scale != 1 {
		t.Errorf("MemScale(nil) = %v, want 1", scale)
	}
}
