// Package sharing estimates co-run performance: what each application
// achieves when several of them run simultaneously under a given CAT
// configuration.
//
// It is the counterpart of the probabilistic performance model inside the
// authors' PBBCache simulator [8][15]: offline per-size profiles in,
// per-application slowdown out. Two contention mechanisms are modeled:
//
//  1. Cache-space competition. Applications whose masks overlap compete
//     for the ways they share. Under LRU, steady-state occupancy is
//     approximately proportional to each competitor's line-insertion rate
//     (miss rate × access rate): a streaming program inserts constantly
//     and grabs space even though it gains nothing, which is precisely the
//     aggression LFOC is designed to contain. We compute a damped
//     fixed-point of share ∝ insertion-rate, with each application's share
//     capped by its own mask capacity (masks may overlap partially, as
//     Dunn's do).
//
//  2. Memory bandwidth saturation. The sum of DRAM demands may exceed the
//     platform's sustainable bandwidth; when it does, every application's
//     exposed memory latency inflates by the overcommit factor (the
//     Morad-style model PBBCache borrows). Demand shrinks as latency
//     grows, so we iterate the inflation factor to its fixed point.
//
// Within a sharing group (a connected component of mask overlap) the
// model is exact in capacity: shares sum to the capacity of the union of
// masks. Applications in different groups interact only through the
// bandwidth term.
package sharing

import (
	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/cat"
	"github.com/faircache/lfoc/internal/machine"
)

// App is one co-running application: its current phase parameters and its
// effective CAT mask.
type App struct {
	ID    int
	Phase *appmodel.PhaseSpec
	Mask  cat.WayMask
}

// Result is the model's estimate for one application.
type Result struct {
	Perf appmodel.Perf
	// ShareBytes is the LLC space the application ends up holding — the
	// model's analogue of a CMT occupancy reading.
	ShareBytes uint64
}

// Model evaluates co-run configurations on a platform.
type Model struct {
	Plat *machine.Platform
	// CacheIters bounds the share fixed-point iterations (default 30).
	CacheIters int
	// BWIters bounds the bandwidth fixed-point iterations (default 6).
	BWIters int
	// Damping in (0,1] blends successive share estimates (default 0.5).
	Damping float64
}

// NewModel returns a model with default iteration parameters.
func NewModel(plat *machine.Platform) *Model {
	return &Model{Plat: plat, CacheIters: 30, BWIters: 6, Damping: 0.5}
}

// Evaluate computes the equilibrium performance of the given co-running
// applications. The returned map is keyed by App.ID.
func (m *Model) Evaluate(apps []App) map[int]Result {
	res, _ := m.evaluate(apps, nil)
	return res
}

// EvaluateAtScale computes the cache-share equilibrium under a fixed
// memory-latency inflation factor, skipping the bandwidth fixed point.
// The optimal solver uses this to keep candidate evaluation cheap and
// decomposable: it freezes the workload-level factor once (see MemScale)
// and scores every clustering candidate under it.
func (m *Model) EvaluateAtScale(apps []App, memScale float64) map[int]Result {
	if memScale < 1 {
		memScale = 1
	}
	res, _ := m.evaluate(apps, &memScale)
	return res
}

// MemScale returns the converged bandwidth latency-inflation factor for a
// co-run configuration (1 = memory unsaturated).
func (m *Model) MemScale(apps []App) float64 {
	_, scale := m.evaluate(apps, nil)
	return scale
}

// evaluate runs the full model; when fixedScale is non-nil the bandwidth
// loop is skipped and *fixedScale is used throughout.
func (m *Model) evaluate(apps []App, fixedScale *float64) (map[int]Result, float64) {
	cacheIters := m.CacheIters
	if cacheIters <= 0 {
		cacheIters = 30
	}
	bwIters := m.BWIters
	if bwIters <= 0 {
		bwIters = 6
	}
	damping := m.Damping
	if damping <= 0 || damping > 1 {
		damping = 0.5
	}

	n := len(apps)
	shares := make([]float64, n)
	masks := make([]cat.WayMask, n)
	for i, a := range apps {
		masks[i] = a.Mask
	}
	groups := cat.SharingGroups(masks)

	memScale := 1.0
	if fixedScale != nil {
		memScale = *fixedScale
		bwIters = 1
	}
	var perfs []appmodel.Perf
	for bw := 0; bw < bwIters; bw++ {
		// Cache-share equilibrium per sharing group at current memScale.
		for _, g := range groups {
			m.groupShares(apps, g, shares, memScale, cacheIters, damping)
		}
		// Bandwidth fixed point: demand at current shares.
		perfs = make([]appmodel.Perf, n)
		total := 0.0
		for i, a := range apps {
			perfs[i] = appmodel.PhasePerf(a.Phase, m.Plat, uint64(shares[i]), memScale)
			total += perfs[i].Bandwidth
		}
		if fixedScale != nil {
			break
		}
		over := total / float64(m.Plat.MaxBandwidth)
		if over <= 1 {
			if memScale == 1 {
				break
			}
			// Demand dropped below saturation: relax toward 1.
			memScale = 1 + (memScale-1)*0.5
			continue
		}
		memScale *= over
	}

	out := make(map[int]Result, n)
	for i, a := range apps {
		out[a.ID] = Result{Perf: perfs[i], ShareBytes: uint64(shares[i])}
	}
	return out, memScale
}

// groupShares computes the capacity split inside one sharing group.
func (m *Model) groupShares(apps []App, group []int, shares []float64, memScale float64, iters int, damping float64) {
	var union cat.WayMask
	for _, i := range group {
		union |= apps[i].Mask
	}
	capacity := float64(uint64(union.Count()) * m.Plat.WayBytes)

	if len(group) == 1 {
		i := group[0]
		shares[i] = float64(uint64(apps[i].Mask.Count()) * m.Plat.WayBytes)
		return
	}

	// Initialize equally, capped by own-mask capacity.
	caps := make([]float64, len(group))
	for gi, i := range group {
		caps[gi] = float64(uint64(apps[i].Mask.Count()) * m.Plat.WayBytes)
		s := capacity / float64(len(group))
		if s > caps[gi] {
			s = caps[gi]
		}
		shares[i] = s
	}

	const floorBytes = 64 * 1024 // an app always holds a few lines
	pressure := make([]float64, len(group))
	for it := 0; it < iters; it++ {
		for gi, i := range group {
			p := appmodel.PhasePerf(apps[i].Phase, m.Plat, uint64(shares[i]), memScale)
			// Line-insertion rate: misses per second.
			pressure[gi] = p.Bandwidth/float64(m.Plat.LineBytes) + 1 // +1 avoids all-zero
		}
		target := waterfill(capacity, pressure, caps, floorBytes)
		for gi, i := range group {
			shares[i] = (1-damping)*shares[i] + damping*target[gi]
		}
	}
}

// waterfill distributes capacity proportionally to pressure, capping each
// recipient at caps[i] (but never below floor) and redistributing capped
// excess among the rest.
func waterfill(capacity float64, pressure, caps []float64, floor float64) []float64 {
	n := len(pressure)
	out := make([]float64, n)
	active := make([]bool, n)
	remaining := capacity
	totalP := 0.0
	for i := range pressure {
		active[i] = true
		totalP += pressure[i]
	}
	for round := 0; round < n; round++ {
		if totalP <= 0 || remaining <= 0 {
			break
		}
		capped := false
		for i := range pressure {
			if !active[i] {
				continue
			}
			want := remaining * pressure[i] / totalP
			if want >= caps[i] {
				out[i] = caps[i]
				active[i] = false
				remaining -= caps[i]
				totalP -= pressure[i]
				capped = true
			}
		}
		if !capped {
			for i := range pressure {
				if active[i] {
					out[i] = remaining * pressure[i] / totalP
				}
			}
			break
		}
	}
	for i := range out {
		if out[i] < floor {
			out[i] = floor
		}
		if out[i] > caps[i] {
			out[i] = caps[i]
		}
	}
	return out
}
