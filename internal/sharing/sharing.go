// Package sharing estimates co-run performance: what each application
// achieves when several of them run simultaneously under a given CAT
// configuration.
//
// It is the counterpart of the probabilistic performance model inside the
// authors' PBBCache simulator [8][15]: offline per-size profiles in,
// per-application slowdown out. Two contention mechanisms are modeled:
//
//  1. Cache-space competition. Applications whose masks overlap compete
//     for the ways they share. Under LRU, steady-state occupancy is
//     approximately proportional to each competitor's line-insertion rate
//     (miss rate × access rate): a streaming program inserts constantly
//     and grabs space even though it gains nothing, which is precisely the
//     aggression LFOC is designed to contain. We compute a damped
//     fixed-point of share ∝ insertion-rate, with each application's share
//     capped by its own mask capacity (masks may overlap partially, as
//     Dunn's do).
//
//  2. Memory bandwidth saturation. The sum of DRAM demands may exceed the
//     platform's sustainable bandwidth; when it does, every application's
//     exposed memory latency inflates by the overcommit factor (the
//     Morad-style model PBBCache borrows). Demand shrinks as latency
//     grows, so we iterate the inflation factor to its fixed point.
//
// Within a sharing group (a connected component of mask overlap) the
// model is exact in capacity: shares sum to the capacity of the union of
// masks. Applications in different groups interact only through the
// bandwidth term.
package sharing

import (
	"sync"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/cat"
	"github.com/faircache/lfoc/internal/machine"
)

// App is one co-running application: its current phase parameters and its
// effective CAT mask.
type App struct {
	ID    int
	Phase *appmodel.PhaseSpec
	Mask  cat.WayMask
}

// Result is the model's estimate for one application.
type Result struct {
	Perf appmodel.Perf
	// ShareBytes is the LLC space the application ends up holding — the
	// model's analogue of a CMT occupancy reading.
	ShareBytes uint64
}

// Model evaluates co-run configurations on a platform.
type Model struct {
	Plat *machine.Platform
	// CacheIters bounds the share fixed-point iterations (default 30).
	CacheIters int
	// BWIters bounds the bandwidth fixed-point iterations (default 6).
	BWIters int
	// Damping in (0,1] blends successive share estimates (default 0.5).
	Damping float64

	// curveMu guards curves, the model-level phase-curve cache shared by
	// every Evaluator created from this model (so the convenience map
	// methods do not rebuild per call).
	curveMu sync.Mutex
	curves  map[*appmodel.PhaseSpec]*appmodel.CurveCache

	// pool recycles Evaluators for the convenience map methods, so
	// repeated Evaluate calls reuse scratch without the caller holding a
	// session explicitly.
	pool sync.Pool
}

// NewModel returns a model with default iteration parameters.
func NewModel(plat *machine.Platform) *Model {
	return &Model{Plat: plat, CacheIters: 30, BWIters: 6, Damping: 0.5}
}

// getEvaluator borrows a pooled session; putEvaluator returns it.
func (m *Model) getEvaluator() *Evaluator {
	if v := m.pool.Get(); v != nil {
		return v.(*Evaluator)
	}
	return NewEvaluator(m)
}

func (m *Model) putEvaluator(e *Evaluator) { m.pool.Put(e) }

// Evaluate computes the equilibrium performance of the given co-running
// applications. The returned map is keyed by App.ID.
//
// This is the convenience wrapper over a pooled Evaluator session. Hot
// paths (the solver, the simulator) hold their own Evaluator and use
// EvaluateInto, which is positional and allocation-free.
func (m *Model) Evaluate(apps []App) map[int]Result {
	e := m.getEvaluator()
	e.resScratch = e.EvaluateInto(e.resScratch, apps)
	out := resultMap(apps, e.resScratch)
	m.putEvaluator(e)
	return out
}

// EvaluateAtScale computes the cache-share equilibrium under a fixed
// memory-latency inflation factor, skipping the bandwidth fixed point.
// The optimal solver uses this to keep candidate evaluation cheap and
// decomposable: it freezes the workload-level factor once (see MemScale)
// and scores every clustering candidate under it.
func (m *Model) EvaluateAtScale(apps []App, memScale float64) map[int]Result {
	e := m.getEvaluator()
	e.resScratch = e.EvaluateAtScaleInto(e.resScratch, apps, memScale)
	out := resultMap(apps, e.resScratch)
	m.putEvaluator(e)
	return out
}

// MemScale returns the converged bandwidth latency-inflation factor for a
// co-run configuration (1 = memory unsaturated).
func (m *Model) MemScale(apps []App) float64 {
	e := m.getEvaluator()
	scale := e.MemScale(apps)
	m.putEvaluator(e)
	return scale
}

// curveFor returns the model-level cached curve for a phase, building it
// on first use. Safe for concurrent use.
func (m *Model) curveFor(ph *appmodel.PhaseSpec) *appmodel.CurveCache {
	m.curveMu.Lock()
	defer m.curveMu.Unlock()
	if c, ok := m.curves[ph]; ok {
		return c
	}
	if m.curves == nil {
		m.curves = make(map[*appmodel.PhaseSpec]*appmodel.CurveCache)
	}
	c := appmodel.NewCurveCache(ph, m.Plat)
	m.curves[ph] = c
	return c
}

// resultMap rekeys a positional result slice by App.ID.
func resultMap(apps []App, res []Result) map[int]Result {
	out := make(map[int]Result, len(apps))
	for i, a := range apps {
		out[a.ID] = res[i]
	}
	return out
}

// waterfill is the allocating wrapper around waterfillInto, kept for
// tests and one-off callers.
func waterfill(capacity float64, pressure, caps []float64, floor float64) []float64 {
	out := make([]float64, len(pressure))
	active := make([]bool, len(pressure))
	waterfillInto(out, active, capacity, pressure, caps, floor)
	return out
}
