package sharing

import (
	"fmt"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/plan"
)

// EvaluatePlan estimates the per-application slowdown of a workload under
// a clustering plan, with each application represented by one steady
// phase. Slowdowns are relative to running alone with the whole LLC and
// unloaded memory — the Eq. (2) baseline. This is the static-evaluation
// path used by the Fig. 6 experiments and by the optimal solver's final
// candidate scoring.
func EvaluatePlan(m *Model, phases []*appmodel.PhaseSpec, p plan.Plan) ([]float64, error) {
	n := len(phases)
	if err := p.Validate(n, m.Plat.Ways); err != nil {
		return nil, err
	}
	masks, err := p.AppMasks(n, m.Plat.Ways)
	if err != nil {
		return nil, err
	}
	apps := make([]App, n)
	for i := 0; i < n; i++ {
		apps[i] = App{ID: i, Phase: phases[i], Mask: masks[i]}
	}
	res := m.Evaluate(apps)
	slow := make([]float64, n)
	for i := 0; i < n; i++ {
		alone := appmodel.PhasePerf(phases[i], m.Plat, m.Plat.LLCBytes(), 1)
		r, ok := res[i]
		if !ok || r.Perf.IPC <= 0 {
			return nil, fmt.Errorf("sharing: no result for app %d", i)
		}
		slow[i] = alone.IPC / r.Perf.IPC
	}
	return slow, nil
}
