// Package analysis is a stdlib-only static-analysis framework for the
// project's determinism and hot-path invariants.
//
// Every PR since the seed has depended on source-level properties the
// compiler cannot check: bit-identical output across GOMAXPROCS and
// worker counts, explicit float64(...) rounding pins in the kernel
// carry chains, seeded-stream-only randomness, and zero-allocation hot
// paths. Those invariants are pinned after the fact by differential and
// golden tests; this package catches violations at the AST level,
// per diff, in seconds.
//
// The framework is deliberately a small subset of golang.org/x/tools'
// go/analysis shape — Analyzer, Pass, Diagnostic — rebuilt on go/ast,
// go/parser and go/types only, so the module keeps its no-dependency
// (no go.sum) property. Analyzers live in subpackages and self-register
// via Register from an init function; cmd/lfoc-vet and the test
// harness blank-import internal/analysis/all to pull in the standard
// set.
//
// Findings are waivable in source with a justification comment:
//
//	for k := range m { ... } //lfoc:ok maprange: reduction is commutative over ints
//
// See waive.go for the exact rules. Two source directives extend
// analyzer scope: //lfoc:hotpath on a function's doc comment opts it
// into the hotpathalloc allocation ban, and //lfoc:floatstrict
// anywhere in a file opts the whole file into floatpin's
// multiply-add rounding-pin check.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant check. Run is invoked once per
// loaded package; it reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lfoc:ok waiver comments. Lower-case, no spaces.
	Name string

	// Doc is a short description of the invariant the analyzer
	// enforces, shown by lfoc-vet -list.
	Doc string

	// Run analyzes one package. Diagnostics go through pass.Reportf;
	// a non-nil error aborts the whole vet run (reserved for internal
	// failures, not findings).
	Run func(pass *Pass) error
}

// A Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.TypesInfo.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// PkgNameOf reports the imported package an identifier refers to, or
// "" if the identifier is not a package name. Analyzers use it to
// recognise selector calls like rand.Intn or time.Now regardless of
// import renaming.
func (p *Pass) PkgNameOf(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// A Diagnostic is one finding, positioned for file:line:col reporting.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// SortDiagnostics orders findings by file, line, column, then analyzer
// name, so lfoc-vet output is stable across runs and GOMAXPROCS.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// RunAnalyzer applies a to pkg and returns its raw (unwaived) findings.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		diags:     &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	return diags, nil
}
