package analysis_test

import (
	"testing"

	"github.com/faircache/lfoc/internal/analysis"
	_ "github.com/faircache/lfoc/internal/analysis/all"
)

// TestRepoTreeIsClean runs every registered analyzer over the whole
// repository, in-process — the acceptance gate behind `lfoc-vet ./...`
// in CI. A finding here means either the new code violates a pinned
// invariant (sort the keys, thread the seeded rand, pin the product,
// hoist the allocation) or it deserves a justified //lfoc:ok waiver;
// fix the code or waive it at the site, never here.
func TestRepoTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the full tree")
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repo packages: %v", err)
	}
	analyzers := analysis.All()
	diags, err := analysis.Vet(pkgs, analyzers, analysis.KnownAnalyzers(analyzers))
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
