// Package analysistest runs one analyzer over a directory of fixture
// sources and diffs its diagnostics against // want comments — the
// same contract as golang.org/x/tools' analysistest, rebuilt on the
// standard library so the module stays dependency-free.
//
// A fixture file marks each expected finding with a trailing comment
// on the offending line:
//
//	for k := range m { // want `nondeterministic map iteration`
//
// The quoted or backquoted string is a regexp matched against the
// diagnostic message. Several want strings on one line expect several
// findings. Lines without a want comment must produce no finding, so
// every fixture doubles as a false-positive regression test, and
// //lfoc:ok waivers go through the exact pipeline the driver uses —
// a waived true positive simply carries no want.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"testing"

	"github.com/faircache/lfoc/internal/analysis"
)

// wantRE extracts the expectation strings from a want comment. Both
// "..." and `...` forms are accepted; backquotes spare the writer
// double-escaping regexp metacharacters.
var wantRE = regexp.MustCompile("`((?:[^`])+)`|\"((?:\\\\.|[^\"])*)\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run analyzes the fixture package in dir under the given import path
// (scoped analyzers key off the path, so fixtures impersonate e.g.
// internal/cluster) and fails t on any mismatch between diagnostics
// and want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixture sources in %s (%v)", dir, err)
	}
	sort.Strings(paths)
	fset := token.NewFileSet()
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	pkg, err := analysis.CheckSource(fset, importPath, files)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Vet([]*analysis.Package{pkg}, []*analysis.Analyzer{a}, analysis.KnownAnalyzers([]*analysis.Analyzer{a}))
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, fset, files)
	for i := range diags {
		d := &diags[i]
		matched := false
		for _, w := range wants {
			if w.met || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", position(d), d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func position(d *analysis.Diagnostic) string {
	return fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column)
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := wantIndex(text)
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(text[idx:], -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, text)
				}
				for _, m := range matches {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// wantIndex locates a "// want" marker inside a comment's text,
// returning the offset just past "want" or -1.
var wantMarker = regexp.MustCompile(`(?:^//|\s)want\s`)

func wantIndex(comment string) int {
	loc := wantMarker.FindStringIndex(comment)
	if loc == nil {
		return -1
	}
	return loc[1]
}
