// Package mapranges is a maprange fixture; the harness loads it under
// the import path example.com/x/internal/cluster so the analyzer's
// deterministic-output scope applies.
package mapranges

import "sort"

// sink defeats "unused" concerns without affecting the analysis.
var sink float64

func orderSensitive(m map[string]float64) {
	total := 0.0
	for _, v := range m { // want `iteration over map\[string\]float64 is nondeterministically ordered`
		total += v // float accumulation rounds per visit order
	}
	sink = total
}

func callInBody(m map[string]int, f func(int)) {
	for _, v := range m { // want `nondeterministically ordered`
		f(v)
	}
}

func breakIsOrderSensitive(m map[string]int) int {
	for k, v := range m { // want `nondeterministically ordered`
		if v > 0 {
			_ = k
			break
		}
	}
	return 0
}

func argmaxKeyIsOrderSensitive(m map[string]int) string {
	best, bestK := -1, ""
	for k, v := range m { // want `nondeterministically ordered`
		if v > best {
			best, bestK = v, k
		}
	}
	return bestK
}

func intCountersAreFine(m map[string]int) int {
	n := 0
	bits := 0
	for _, v := range m {
		n += v
		bits |= v
		n++
	}
	return n + bits
}

func deleteIsFine(m map[string]int, dead map[string]bool) {
	for k := range m {
		if dead[k] {
			delete(m, k)
		}
	}
}

func keyedStoreIsFine(src map[string]int, dst map[string]float64) {
	for k, v := range src {
		dst[k] = float64(v) * 2
	}
}

func flagSetIsFine(m map[string]int) bool {
	found := false
	for _, v := range m {
		if v < 0 {
			found = true
		}
	}
	return found
}

func collectThenSortIsFine(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectWithoutSortIsNot(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `nondeterministically ordered`
		keys = append(keys, k)
	}
	return keys
}

func waivedSite(m map[string]struct{}) {
	n := 0.0
	//lfoc:ok maprange: fixture demonstrates the waiver path; body is a test stub
	for range m {
		n += 0.5
	}
	sink = n
}

func rangeOverSliceIgnored(s []float64) {
	total := 0.0
	for _, v := range s {
		total += v // slices iterate in index order: not maprange's business
	}
	sink = total
}
