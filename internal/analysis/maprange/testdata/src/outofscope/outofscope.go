// Package outofscope is loaded under example.com/x/internal/harness,
// which is outside the deterministic-output scope: nothing here may be
// flagged, however order-sensitive it is.
package outofscope

var sink float64

func orderSensitiveButOutOfScope(m map[string]float64) {
	for _, v := range m {
		sink += v
	}
}
