package maprange_test

import (
	"path/filepath"
	"testing"

	"github.com/faircache/lfoc/internal/analysis/analysistest"
	"github.com/faircache/lfoc/internal/analysis/maprange"
)

func TestMapRangeFixtures(t *testing.T) {
	analysistest.Run(t, maprange.Analyzer,
		filepath.Join("testdata", "src", "mapranges"),
		"example.com/x/internal/cluster")
}

func TestMapRangeOutOfScope(t *testing.T) {
	analysistest.Run(t, maprange.Analyzer,
		filepath.Join("testdata", "src", "outofscope"),
		"example.com/x/internal/harness")
}
