// Package maprange flags `range` statements over maps in the
// deterministic-output packages (internal/sim, internal/cluster,
// internal/metrics, internal/workloads).
//
// Go randomises map iteration order per run, so any map range whose
// body's effect depends on visit order silently breaks the
// byte-identical-output CI gates — historically the #1 way those gates
// get broken. A range is accepted without a waiver only when the body
// is provably order-insensitive:
//
//   - delete from a map;
//   - integer/bool counter updates (++, +=, |=, &=, ^=, *=) — exact
//     commutative-associative reductions (float accumulation is NOT
//     order-free: rounding differs per order, so it is flagged);
//   - stores into another map keyed by the range key (distinct keys,
//     write-once per iteration);
//   - idempotent boolean flag sets;
//   - the collect-then-sort idiom: the body only appends the key (or
//     value) to a slice that a later sort.* / slices.Sort* call in the
//     same function orders.
//
// Everything else needs sorted keys first, or an explicit
// //lfoc:ok maprange: <why> waiver stating why order cannot leak into
// results.
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/faircache/lfoc/internal/analysis"
	"github.com/faircache/lfoc/internal/analysis/scope"
)

// Analyzer is the maprange analyzer; see the package documentation for
// the invariant it enforces.
var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc:  "flags order-sensitive iteration over maps in deterministic-output packages",
	Run:  run,
}

func init() { analysis.Register(Analyzer) }

func run(pass *analysis.Pass) error {
	if !scope.Matches(pass.Pkg.Path(), scope.DeterministicOutput) {
		return nil
	}
	for _, file := range pass.Files {
		forEachFuncBody(file, func(body *ast.BlockStmt) {
			for _, rs := range mapRangesIn(pass, body) {
				c := &checker{pass: pass, encl: body, rs: rs}
				if c.orderInsensitive() {
					continue
				}
				pass.Reportf(rs.Pos(),
					"iteration over %s is nondeterministically ordered and the body is not provably order-insensitive; sort the keys first or waive with //lfoc:ok maprange: <why>",
					types.TypeString(pass.TypeOf(rs.X), nil))
			}
		})
	}
	return nil
}

// forEachFuncBody visits every function body in the file: declarations
// and function literals alike.
func forEachFuncBody(file *ast.File, fn func(*ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Body)
			}
		case *ast.FuncLit:
			fn(n.Body)
		}
		return true
	})
}

// mapRangesIn returns the range-over-map statements whose nearest
// enclosing function body is body (nested function literals are
// visited separately by forEachFuncBody).
func mapRangesIn(pass *analysis.Pass, body *ast.BlockStmt) []*ast.RangeStmt {
	var out []*ast.RangeStmt
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok && m != n {
				return false
			}
			if rs, ok := m.(*ast.RangeStmt); ok {
				if t := pass.TypeOf(rs.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						out = append(out, rs)
					}
				}
			}
			return true
		})
	}
	walk(body)
	return out
}

// checker decides whether one map range's body is order-insensitive.
type checker struct {
	pass *analysis.Pass
	encl *ast.BlockStmt // enclosing function body (for the sort-later idiom)
	rs   *ast.RangeStmt
}

func (c *checker) orderInsensitive() bool {
	return c.stmtsOK(c.rs.Body.List)
}

func (c *checker) stmtsOK(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !c.stmtOK(s) {
			return false
		}
	}
	return true
}

func (c *checker) stmtOK(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		// Only delete(m, k): removal is commutative across distinct
		// keys, and Go defines deletion during range.
		call, ok := s.X.(*ast.CallExpr)
		return ok && c.isBuiltin(call, "delete") && c.pureExprs(call.Args)
	case *ast.IncDecStmt:
		return c.isInteger(s.X)
	case *ast.AssignStmt:
		return c.assignOK(s)
	case *ast.IfStmt:
		if s.Init != nil && !c.stmtOK(s.Init) {
			return false
		}
		if !c.pure(s.Cond) || !c.stmtsOK(s.Body.List) {
			return false
		}
		if s.Else != nil {
			return c.stmtOK(s.Else)
		}
		return true
	case *ast.BlockStmt:
		return c.stmtsOK(s.List)
	case *ast.BranchStmt:
		// continue skips an iteration independently of order; break
		// makes the set of visited entries depend on order, so it is
		// never order-insensitive.
		return s.Tok == token.CONTINUE
	default:
		return false
	}
}

func (c *checker) assignOK(s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return s.Tok == token.DEFINE && c.pureExprs(s.Rhs)
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	switch s.Tok {
	case token.DEFINE:
		// Per-iteration locals die before order can matter.
		return c.pure(rhs)
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
		// Exact commutative-associative reductions — integers only.
		// Float += rounds differently per visit order.
		return c.isInteger(lhs) && c.pure(rhs)
	case token.ASSIGN:
		// out[k] = ... : writes to distinct keys commute.
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			return c.usesRangeKey(ix.Index) && c.pure(ix.X) && c.pure(rhs)
		}
		// flag = true/false : idempotent.
		if id, ok := lhs.(*ast.Ident); ok {
			if c.isBoolConst(rhs) && c.isBool(id) {
				return true
			}
			// s = append(s, k): fine iff s is sorted later in the
			// enclosing function.
			if call, ok := rhs.(*ast.CallExpr); ok && c.isBuiltin(call, "append") {
				return c.appendSortedLater(id, call)
			}
		}
		return false
	default:
		return false
	}
}

// appendSortedLater accepts `dst = append(dst, ...pure...)` when a
// sort.* or slices.Sort* call referencing dst appears after the range
// statement in the same function — the canonical collect-then-sort
// idiom.
func (c *checker) appendSortedLater(dst *ast.Ident, call *ast.CallExpr) bool {
	if len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return false
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || c.objOf(first) == nil || c.objOf(first) != c.objOf(dst) {
		return false
	}
	if !c.pureExprs(call.Args[1:]) {
		return false
	}
	dstObj := c.objOf(dst)
	sorted := false
	ast.Inspect(c.encl, func(n ast.Node) bool {
		if sorted || n == nil || n.Pos() <= c.rs.End() {
			return true
		}
		cl, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := cl.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := c.pass.PkgNameOf(sel.X)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range cl.Args {
			if c.referencesObj(arg, dstObj) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// pure reports whether evaluating e cannot have side effects: no calls
// other than len/cap/min/max and type conversions, no channel
// receives, no function literals.
func (c *checker) pure(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if c.isConversion(n) {
				return true
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "len", "cap", "min", "max", "abs", "real", "imag":
					if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						return true
					}
				}
			}
			pure = false
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW { // channel receive
				pure = false
				return false
			}
		case *ast.FuncLit:
			pure = false
			return false
		}
		return true
	})
	return pure
}

func (c *checker) pureExprs(es []ast.Expr) bool {
	for _, e := range es {
		if !c.pure(e) {
			return false
		}
	}
	return true
}

func (c *checker) isConversion(call *ast.CallExpr) bool {
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	return ok && tv.IsType()
}

func (c *checker) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

func (c *checker) basicInfo(e ast.Expr) types.BasicInfo {
	t := c.pass.TypeOf(e)
	if t == nil {
		return 0
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 0
	}
	return b.Info()
}

func (c *checker) isInteger(e ast.Expr) bool {
	return c.basicInfo(e)&types.IsInteger != 0
}

func (c *checker) isBool(e ast.Expr) bool {
	return c.basicInfo(e)&types.IsBoolean != 0
}

func (c *checker) isBoolConst(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && (id.Name == "true" || id.Name == "false") && c.objOf(id) == types.Universe.Lookup(id.Name)
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	return c.pass.TypesInfo.ObjectOf(id)
}

// usesRangeKey reports whether e references the range statement's key
// variable.
func (c *checker) usesRangeKey(e ast.Expr) bool {
	key, ok := c.rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	return c.referencesObj(e, c.objOf(key))
}

func (c *checker) referencesObj(e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
