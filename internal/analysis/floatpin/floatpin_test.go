package floatpin_test

import (
	"path/filepath"
	"testing"

	"github.com/faircache/lfoc/internal/analysis/analysistest"
	"github.com/faircache/lfoc/internal/analysis/floatpin"
)

func TestFloatPinStrictFile(t *testing.T) {
	analysistest.Run(t, floatpin.Analyzer,
		filepath.Join("testdata", "src", "strictfile"),
		"example.com/x/internal/sim")
}

func TestFloatPinLenientFile(t *testing.T) {
	analysistest.Run(t, floatpin.Analyzer,
		filepath.Join("testdata", "src", "lenientfile"),
		"example.com/x/internal/sim")
}
