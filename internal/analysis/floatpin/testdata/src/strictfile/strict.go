// Package strictfile opts into floatpin via the directive above; the
// analyzer scans it regardless of import path.
//
//lfoc:floatstrict
package strictfile

var sink float64

func unpinned(a, b, c float64) float64 {
	return a*b + c // want `unpinned float multiply feeding \+`
}

func unpinnedSub(a, b, c float64) float64 {
	return c - a*b // want `unpinned float multiply feeding -`
}

func unpinnedNegated(a, b, c float64) float64 {
	return -(a * b) + c // want `unpinned float multiply feeding \+`
}

func unpinnedCompound(a, b float64) {
	sink += a * b // want `unpinned float multiply feeding \+`
}

func pinned(a, b, c float64) float64 {
	return float64(a*b) + c
}

func pinnedCompound(a, b float64) {
	sink += float64(a * b)
}

func mulAloneIsFine(a, b float64) float64 {
	return a * b // no add/sub: nothing to contract
}

func divideIsFine(a, b, c float64) float64 {
	return a/b + c // only multiply-add contracts
}

func intMulAddIsFine(a, b, c int) int {
	return a*b + c // integer arithmetic is exact
}

func constantFoldIsFine(c float64) float64 {
	return 2*3 + c // constant product folds at compile time
}

func waived(a, b, c float64) float64 {
	return a*b + c //lfoc:ok floatpin: fixture demonstrates the waiver path
}
