// Package lenientfile has no //lfoc:floatstrict directive: floatpin
// must ignore it entirely.
package lenientfile

func unpinnedButNotStrict(a, b, c float64) float64 {
	return a*b + c
}
