// Package floatpin enforces the kernel carry chains' defence against
// fused multiply-add contraction.
//
// The Go spec permits a compiler to fuse x*y ± z into a single FMA
// instruction, which skips the intermediate rounding of the product.
// amd64 does not fuse today; arm64 and ppc64 do — so an unpinned
// multiply-add in the event-horizon carry chains would produce floats
// that differ in the last bit across architectures, and the
// byte-identical goldens would pass on the CI arch and fail elsewhere.
// PR 5 established the fix: wrap the product in an explicit
// float64(...) conversion, which the spec defines as a rounding point
// that may not be fused away.
//
// The check is opt-in per file: files carrying a //lfoc:floatstrict
// comment (the carry-chain kernel files) are scanned for float
// multiply-add shapes — a*b + c, c - a*b, x += a*b, and their
// variants — whose product is not wrapped in an explicit conversion.
// New kernel math added to a strict file therefore cannot silently
// reintroduce cross-arch divergence.
package floatpin

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/faircache/lfoc/internal/analysis"
)

// Analyzer is the floatpin analyzer; see the package documentation for
// the invariant it enforces.
var Analyzer = &analysis.Analyzer{
	Name: "floatpin",
	Doc:  "requires float64(...) rounding pins on multiply-adds in //lfoc:floatstrict files",
	Run:  run,
}

func init() { analysis.Register(Analyzer) }

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if !analysis.FileIsFloatStrict(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.ADD && n.Op != token.SUB {
					return true
				}
				if !isFloat(pass, n) {
					return true
				}
				checkOperand(pass, n.X, n.Op)
				checkOperand(pass, n.Y, n.Op)
			case *ast.AssignStmt:
				if n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN {
					return true
				}
				if len(n.Lhs) == 1 && isFloat(pass, n.Lhs[0]) {
					op := token.ADD
					if n.Tok == token.SUB_ASSIGN {
						op = token.SUB
					}
					checkOperand(pass, n.Rhs[0], op)
				}
			}
			return true
		})
	}
	return nil
}

// checkOperand flags e when it is an unpinned float product feeding an
// add or subtract — the FMA-contractable shape.
func checkOperand(pass *analysis.Pass, e ast.Expr, op token.Token) {
	e = unparen(e)
	// -(a*b) + c contracts the same way a*b + c does.
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.SUB {
		e = unparen(u.X)
	}
	mul, ok := e.(*ast.BinaryExpr)
	if !ok || mul.Op != token.MUL || !isFloat(pass, mul) {
		return
	}
	if tv, ok := pass.TypesInfo.Types[mul]; ok && tv.Value != nil {
		return // constant-folded at compile time; no runtime FMA
	}
	pass.Reportf(mul.Pos(),
		"unpinned float multiply feeding %s may contract to a fused multiply-add on arm64/ppc64; wrap the product in float64(...) to pin rounding (see kernel carry-chain docs)",
		op)
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
