package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, parsed and fully type-checked package,
// ready to hand to analyzers.
type Package struct {
	Path      string // import path
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir),
// parses their non-test Go sources with comments, and type-checks them
// against compiler export data.
//
// There is no package-loading library in the standard library, so the
// loader leans on the go tool itself: `go list -export -deps -json`
// yields, for every matched package and every transitive dependency
// (standard library included), the build-cache path of its export
// data. Type-checking each matched package then only needs a
// go/importer "gc" importer whose lookup function resolves import
// paths through that map — no source re-checking of dependencies, no
// topological ordering (a dependency's export data exists whether or
// not it was also matched), and no module dependencies beyond the
// toolchain that built the tree in the first place.
//
// Test files are deliberately excluded: the invariants lfoc-vet
// enforces protect shipped simulation code, and the tests are what pin
// them dynamically.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}

	exportFile := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exportFile[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			p := lp
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exportFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := check(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// StdImporter returns a types.Importer that resolves any import path
// through the go tool's build cache, invoking `go list -export` lazily
// per path. The fixture test harness uses it so testdata packages can
// import standard-library packages without a full Load.
func StdImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", "--", path).Output()
		if err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				return nil, fmt.Errorf("go list -export %s: %v\n%s", path, err, ee.Stderr)
			}
			return nil, fmt.Errorf("go list -export %s: %v", path, err)
		}
		f := strings.TrimSpace(string(out))
		if f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// NewInfo allocates the types.Info maps analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// check parses and type-checks one package's files.
func check(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{
		Path:      path,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// CheckSource type-checks a single already-parsed package (the fixture
// harness path). importPath controls analyzer scoping, so fixtures can
// impersonate e.g. internal/cluster.
func CheckSource(fset *token.FileSet, importPath string, files []*ast.File) (*Package, error) {
	info := NewInfo()
	conf := types.Config{Importer: StdImporter(fset)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		Path:      importPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
