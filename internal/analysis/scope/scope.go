// Package scope decides which packages each analyzer applies to.
// Matching is by import-path suffix segment, so the rules hold for the
// real module path and for fixture or synthetic modules that mirror
// the layout (e.g. example.com/x/internal/cluster).
package scope

import "strings"

// DeterministicOutput lists the packages whose results are pinned by
// byte-identical-output CI gates: the simulation kernel and scenarios,
// the cluster layer, metric aggregation, and workload generation. The
// maprange and seededrand analyzers apply here.
var DeterministicOutput = []string{
	"internal/sim",
	"internal/cluster",
	"internal/metrics",
	"internal/workloads",
}

// Matches reports whether pkgPath is one of the listed packages or a
// subpackage of one (internal/sim matches internal/sim/scenario).
func Matches(pkgPath string, pkgs []string) bool {
	for _, p := range pkgs {
		if pkgPath == p || strings.HasSuffix(pkgPath, "/"+p) {
			return true
		}
		if i := strings.Index(pkgPath+"/", "/"+p+"/"); i >= 0 {
			return true
		}
		if strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}
