package analysis

import (
	"fmt"
	"sort"
	"sync"
)

var (
	regMu    sync.Mutex
	registry = map[string]*Analyzer{}
)

// Register adds an analyzer to the global set run by lfoc-vet.
// Analyzer subpackages call it from init; cmd/lfoc-vet and the clean-
// tree test pull them in by blank-importing internal/analysis/all.
// Registering two analyzers with the same name panics: names double as
// waiver keys, so they must be unique.
func Register(a *Analyzer) {
	regMu.Lock()
	defer regMu.Unlock()
	if a.Name == "" || a.Run == nil {
		panic("analysis: Register called with incomplete analyzer")
	}
	if _, dup := registry[a.Name]; dup {
		panic(fmt.Sprintf("analysis: duplicate analyzer %q", a.Name))
	}
	registry[a.Name] = a
}

// All returns the registered analyzers sorted by name.
func All() []*Analyzer {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Analyzer, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the registered analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	regMu.Lock()
	defer regMu.Unlock()
	return registry[name]
}
