// Package all registers the project's standard analyzer set.
// cmd/lfoc-vet and the clean-tree test blank-import it, following the
// same init-registration pattern the ROADMAP prescribes for pluggable
// simulation backends: the framework never imports the
// implementations.
package all

import (
	_ "github.com/faircache/lfoc/internal/analysis/floatpin"
	_ "github.com/faircache/lfoc/internal/analysis/hotpathalloc"
	_ "github.com/faircache/lfoc/internal/analysis/maprange"
	_ "github.com/faircache/lfoc/internal/analysis/seededrand"
)
