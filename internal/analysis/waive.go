package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// waiverPrefix introduces an in-source waiver:
//
//	//lfoc:ok <analyzer>: <why the invariant holds here anyway>
//
// A waiver suppresses that analyzer's findings on the line the comment
// sits on and on the line immediately after it, so both trailing and
// preceding placement work:
//
//	for k := range m { n++ } //lfoc:ok maprange: int count, order-free
//
//	//lfoc:ok maprange: keys feed a set; insertion order is irrelevant
//	for k := range m {
//
// The justification after the colon is mandatory: a waiver records why
// the invariant holds, not just that someone silenced the tool. A
// waiver that suppresses nothing is itself reported, so stale waivers
// can't linger after the code they excused is gone.
const waiverPrefix = "//lfoc:ok"

// waiverAnalyzer attributes waiver-hygiene findings (malformed, unknown
// name, missing reason, unused) in diagnostics output.
const waiverAnalyzer = "lfoc-vet"

// A Waiver is one parsed //lfoc:ok comment.
type Waiver struct {
	Analyzer string
	Reason   string
	Pos      token.Position // of the comment
	used     bool
}

// covers reports whether the waiver applies to a finding on the given
// line: its own line (trailing comment) or the next (preceding
// comment).
func (w *Waiver) covers(line int) bool {
	return line == w.Pos.Line || line == w.Pos.Line+1
}

// CollectWaivers parses every //lfoc:ok comment in files. known is the
// set of valid analyzer names; malformed waivers (bad syntax, unknown
// analyzer, missing justification) are returned as diagnostics
// immediately.
func CollectWaivers(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]*Waiver, []Diagnostic) {
	var waivers []*Waiver
	var bad []Diagnostic
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Diagnostic{Analyzer: waiverAnalyzer, Pos: fset.Position(pos), Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, waiverPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, waiverPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lfoc:okay — not a waiver
				}
				name, reason, found := strings.Cut(strings.TrimSpace(rest), ":")
				name = strings.TrimSpace(name)
				reason = strings.TrimSpace(reason)
				switch {
				case name == "":
					report(c.Pos(), "malformed waiver: want //lfoc:ok <analyzer>: <reason>")
					continue
				case !known[name]:
					report(c.Pos(), "waiver names unknown analyzer \""+name+"\"")
					continue
				case !found || reason == "":
					report(c.Pos(), "waiver for "+name+" has no justification: say why the invariant holds here")
					continue
				}
				waivers = append(waivers, &Waiver{
					Analyzer: name,
					Reason:   reason,
					Pos:      fset.Position(c.Pos()),
				})
			}
		}
	}
	return waivers, bad
}

// ApplyWaivers filters diags through waivers: a finding whose analyzer,
// file and line match a waiver is dropped (and the waiver marked used).
// Waiver-hygiene diagnostics (analyzer "lfoc-vet") are never waivable.
func ApplyWaivers(diags []Diagnostic, waivers []*Waiver) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		waived := false
		if d.Analyzer != waiverAnalyzer {
			for _, w := range waivers {
				if w.Analyzer == d.Analyzer && w.Pos.Filename == d.Pos.Filename && w.covers(d.Pos.Line) {
					w.used = true
					waived = true
					break
				}
			}
		}
		if !waived {
			kept = append(kept, d)
		}
	}
	return kept
}

// UnusedWaivers reports waivers that suppressed nothing, restricted to
// analyzers in ran (so `lfoc-vet -run maprange` does not condemn a
// seededrand waiver it never exercised).
func UnusedWaivers(waivers []*Waiver, ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, w := range waivers {
		if !w.used && ran[w.Analyzer] {
			out = append(out, Diagnostic{
				Analyzer: waiverAnalyzer,
				Pos:      w.Pos,
				Message:  "unused //lfoc:ok waiver for " + w.Analyzer + ": nothing is flagged here any more",
			})
		}
	}
	return out
}
