// Package seededrand bans ambient randomness and wall-clock reads in
// the deterministic-output packages.
//
// Every random draw in the simulator must flow from an explicitly
// seeded *rand.Rand threaded through configuration (the PR 6/8
// convention: splitmix sub-seeds per stream), because replayability —
// same (trace, seed, config) in, byte-identical trajectory out — is a
// CI-gated invariant. Three constructs break it:
//
//   - math/rand (and math/rand/v2) package-level draw functions, which
//     share process-global state seeded per process;
//   - rand.NewSource(time.Now()...) / rand.New seeded from the clock,
//     which makes the seed itself nondeterministic;
//   - any time.Now() in simulation code: simulated time comes from the
//     kernel clock, and wall-clock reads leak host timing into
//     results.
//
// Wall-clock timing for benchmarking lives in internal/harness, which
// is deliberately outside this analyzer's scope.
package seededrand

import (
	"go/ast"

	"github.com/faircache/lfoc/internal/analysis"
	"github.com/faircache/lfoc/internal/analysis/scope"
)

// Analyzer is the seededrand analyzer; see the package documentation
// for the invariant it enforces.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "bans global math/rand and time.Now in deterministic-output packages",
	Run:  run,
}

func init() { analysis.Register(Analyzer) }

// bannedGlobals are the package-level draw functions of math/rand and
// math/rand/v2 that consume process-global state. Constructors that
// take an explicit source or seed (New, NewSource, NewZipf, NewPCG,
// NewChaCha8) stay legal.
var bannedGlobals = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true, "N": true,
}

func isRandPkg(path string) bool { return path == "math/rand" || path == "math/rand/v2" }

func run(pass *analysis.Pass) error {
	if !scope.Matches(pass.Pkg.Path(), scope.DeterministicOutput) {
		return nil
	}
	for _, file := range pass.Files {
		// First pass: rand sources seeded from the wall clock get one
		// combined finding at the constructor call.
		clockSeeded := map[*ast.SelectorExpr]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isRandPkg(pass.PkgNameOf(sel.X)) {
				return true
			}
			if sel.Sel.Name != "NewSource" && sel.Sel.Name != "New" && sel.Sel.Name != "NewPCG" && sel.Sel.Name != "NewChaCha8" {
				return true
			}
			seen := len(clockSeeded)
			for _, arg := range call.Args {
				for _, now := range timeNowUses(pass, arg) {
					clockSeeded[now] = true
				}
			}
			if len(clockSeeded) > seen {
				pass.Reportf(call.Pos(),
					"rand source seeded from the wall clock: the seed must come from config so runs replay byte-identically")
			}
			return true
		})
		// Second pass: banned globals and bare time.Now.
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch pkg := pass.PkgNameOf(sel.X); {
			case isRandPkg(pkg) && bannedGlobals[sel.Sel.Name]:
				pass.Reportf(sel.Pos(),
					"%s.%s draws from process-global state; use the explicitly seeded *rand.Rand threaded through config",
					pkg, sel.Sel.Name)
			case pkg == "time" && sel.Sel.Name == "Now" && !clockSeeded[sel]:
				pass.Reportf(sel.Pos(),
					"time.Now in a simulation package leaks host wall-clock into results; derive times from the simulated clock or config")
			}
			return true
		})
	}
	return nil
}

// timeNowUses returns the time.Now selector expressions inside e.
func timeNowUses(pass *analysis.Pass, e ast.Expr) []*ast.SelectorExpr {
	var out []*ast.SelectorExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if pass.PkgNameOf(sel.X) == "time" && sel.Sel.Name == "Now" {
				out = append(out, sel)
			}
		}
		return true
	})
	return out
}
