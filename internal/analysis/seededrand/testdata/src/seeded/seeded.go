// Package seeded is a seededrand fixture, loaded under
// example.com/x/internal/sim so the simulation-package scope applies.
package seeded

import (
	"math/rand"
	"time"
)

var sink int

func globalDraws() {
	sink = rand.Intn(10)  // want `math/rand.Intn draws from process-global state`
	_ = rand.Float64()    // want `math/rand.Float64 draws from process-global state`
	rand.Shuffle(3, swap) // want `math/rand.Shuffle draws from process-global state`
	rand.Seed(42)         // want `math/rand.Seed draws from process-global state`
}

func swap(i, j int) {}

func clockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand source seeded from the wall clock`
}

func bareWallClock() int64 {
	return time.Now().Unix() // want `time.Now in a simulation package leaks host wall-clock`
}

func seededIsFine(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func threadedDrawsAreFine(rng *rand.Rand) int {
	return rng.Intn(10) // method on an explicit *rand.Rand, not the global
}

func waivedWallClock() int64 {
	//lfoc:ok seededrand: fixture demonstrates the waiver path for an operator-facing timestamp
	return time.Now().Unix()
}
