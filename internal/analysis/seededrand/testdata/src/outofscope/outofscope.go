// Package outofscope is loaded under example.com/x/internal/harness:
// wall-clock benchmark timing is legal outside the simulation
// packages.
package outofscope

import "time"

func wallClockTimingIsFine() time.Duration {
	start := time.Now()
	return time.Since(start)
}
