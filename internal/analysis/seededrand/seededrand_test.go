package seededrand_test

import (
	"path/filepath"
	"testing"

	"github.com/faircache/lfoc/internal/analysis/analysistest"
	"github.com/faircache/lfoc/internal/analysis/seededrand"
)

func TestSeededRandFixtures(t *testing.T) {
	analysistest.Run(t, seededrand.Analyzer,
		filepath.Join("testdata", "src", "seeded"),
		"example.com/x/internal/sim")
}

// The harness timing code measures wall-clock on purpose; the analyzer
// must not reach outside the simulation packages.
func TestSeededRandOutOfScope(t *testing.T) {
	analysistest.Run(t, seededrand.Analyzer,
		filepath.Join("testdata", "src", "outofscope"),
		"example.com/x/internal/harness")
}
