// Package hotpathalloc bans allocating constructs in functions whose
// doc comment carries //lfoc:hotpath.
//
// The solver search, the contention-model evaluator, the pmc counters
// and the kernel advancement loops are pinned at 0 allocs/op by the
// benchdiff CI gates — but those gates fire after the fact, on the
// whole benchmark, and say nothing about which line regressed. This
// analyzer moves the check to the source: an annotated function must
// not contain
//
//   - make / new calls or slice, map and function-type composite
//     literals (always heap or growth candidates);
//   - address-taken struct/array literals (&T{...} — escape bait);
//   - append to a slice declared inside the function (fresh backing
//     array; hot paths append into reusable scratch passed in or held
//     on the receiver);
//   - closures that capture variables (the capture forces a heap
//     allocation when the closure or variable escapes);
//   - go / defer statements (closure + scheduling allocations);
//   - string <-> []byte/[]rune conversions and string concatenation;
//   - interface boxing: passing or converting a concrete value to an
//     interface-typed parameter (fmt helpers are the classic
//     offender).
//
// The check is intraprocedural and conservative-by-construction: it
// cannot see escape analysis, so a construct the compiler provably
// keeps on the stack can be waived with //lfoc:ok hotpathalloc: <why>
// — ideally citing the benchmark that pins the path at 0 allocs/op.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/faircache/lfoc/internal/analysis"
)

// Analyzer is the hotpathalloc analyzer; see the package documentation
// for the invariant it enforces.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "bans allocating constructs in //lfoc:hotpath functions",
	Run:  run,
}

func init() { analysis.Register(Analyzer) }

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.FuncIsHotPath(fn) {
				continue
			}
			c := &checker{pass: pass, fn: fn}
			c.check()
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
	// addrOf marks composite literals that appear under &, visited
	// before their children in the pre-order walk.
	addrOf map[*ast.CompositeLit]bool
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	c.pass.Reportf(pos, format+" in //lfoc:hotpath function %s; use reusable scratch or waive with //lfoc:ok hotpathalloc: <why>", append(args, c.fn.Name.Name)...)
}

func (c *checker) check() {
	c.addrOf = map[*ast.CompositeLit]bool{}
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := unparen(n.X).(*ast.CompositeLit); ok {
					c.addrOf[lit] = true
				}
			}
		case *ast.CompositeLit:
			c.compositeLit(n)
		case *ast.CallExpr:
			c.call(n)
		case *ast.FuncLit:
			if capt := c.captured(n); capt != "" {
				c.reportf(n.Pos(), "closure capturing %q may allocate", capt)
			}
		case *ast.GoStmt:
			c.reportf(n.Pos(), "go statement allocates")
		case *ast.DeferStmt:
			c.reportf(n.Pos(), "defer allocates")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(c.typeOf(n)) {
				c.reportf(n.Pos(), "string concatenation allocates")
			}
		}
		return true
	})
}

func (c *checker) typeOf(e ast.Expr) types.Type { return c.pass.TypeOf(e) }

func (c *checker) compositeLit(lit *ast.CompositeLit) {
	t := c.typeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.reportf(lit.Pos(), "slice literal allocates")
	case *types.Map:
		c.reportf(lit.Pos(), "map literal allocates")
	case *types.Struct, *types.Array:
		if c.addrOf[lit] {
			c.reportf(lit.Pos(), "address-taken composite literal may escape")
		}
	}
}

func (c *checker) call(call *ast.CallExpr) {
	// Type conversions: flag string<->byte/rune-slice and
	// concrete-to-interface conversions.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		c.conversion(call, tv.Type)
		return
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				c.reportf(call.Pos(), "make allocates")
			case "new":
				c.reportf(call.Pos(), "new allocates")
			case "append":
				c.append(call)
			}
			return
		}
	}
	c.boxing(call)
}

func (c *checker) conversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := c.typeOf(call.Args[0])
	if from == nil {
		return
	}
	toU, fromU := to.Underlying(), from.Underlying()
	if isString(fromU) && isByteOrRuneSlice(toU) || isString(toU) && isByteOrRuneSlice(fromU) {
		c.reportf(call.Pos(), "string/slice conversion copies and allocates")
		return
	}
	if isIface(toU) && !isIface(fromU) && !isUntypedNil(from) {
		c.reportf(call.Pos(), "conversion of %s to interface %s boxes the value", from, to)
	}
}

// append flags appends whose destination is a slice declared inside
// this function: its backing array is fresh, so growth allocates every
// call. Appends into parameters, receiver fields or package-level
// scratch are the supported pattern and stay legal (their capacity is
// the caller's concern, pinned by the alloc benchmarks).
func (c *checker) append(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		// Receiver fields (e.scratch = append(e.scratch, ...)) and
		// other non-local destinations are the supported preallocated
		// scratch pattern.
		return
	}
	obj := c.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return
	}
	body := c.fn.Body
	if obj.Pos() >= body.Pos() && obj.Pos() < body.End() {
		c.reportf(call.Pos(), "append to function-local slice %s allocates its backing array", id.Name)
	}
}

// boxing flags concrete arguments passed to interface-typed
// parameters.
func (c *checker) boxing(call *ast.CallExpr) {
	sigT := c.typeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i == params.Len()-1 && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && !call.Ellipsis.IsValid():
			last := params.At(params.Len() - 1).Type()
			sl, ok := last.(*types.Slice)
			if !ok {
				continue
			}
			pt = sl.Elem()
		default:
			continue // f(xs...): no per-element boxing
		}
		at := c.typeOf(arg)
		if at == nil || isUntypedNil(at) {
			continue
		}
		if isIface(pt.Underlying()) && !isIface(at.Underlying()) {
			c.reportf(arg.Pos(), "argument %s boxed into interface parameter", at)
		}
	}
}

// captured returns the name of a variable the function literal
// captures from its enclosing function, or "".
func (c *checker) captured(lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Captured iff declared in the enclosing function but outside
		// the literal. Parameters count: they are declared at the
		// function, before the body, so compare against fn extent.
		if obj.Pos() >= c.fn.Pos() && obj.Pos() < lit.Pos() {
			name = obj.Name()
			return false
		}
		return true
	})
	return name
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isIface(t types.Type) bool {
	_, ok := t.(*types.Interface)
	return ok
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}
