// Package hotpath is a hotpathalloc fixture; the analyzer keys off the
// //lfoc:hotpath doc directive, not the import path.
package hotpath

import "fmt"

type evaluator struct {
	scratch []float64
	out     map[string]float64
}

// hot is the annotated function every allocating construct is planted
// in.
//
//lfoc:hotpath
func (e *evaluator) hot(dst []float64, n int, name string, bs []byte) []float64 {
	buf := make([]float64, n) // want `make allocates`
	p := new(evaluator)       // want `new allocates`
	_ = p
	lit := []int{1, 2, 3}         // want `slice literal allocates`
	m := map[string]int{"a": 1}   // want `map literal allocates`
	ptr := &evaluator{}           // want `address-taken composite literal may escape`
	local := fmt.Sprint(name)     // want `argument string boxed into interface parameter`
	buf = append(buf, 1)          // want `append to function-local slice buf allocates`
	s := string(bs)               // want `string/slice conversion copies and allocates`
	cl := func() int { return n } // want `closure capturing "n" may allocate`
	defer e.reset()               // want `defer allocates`
	go e.reset()                  // want `go statement allocates`
	joined := name + s            // want `string concatenation allocates`
	var boxed any = any(n)        // want `conversion of int to interface any boxes the value`
	_, _, _, _, _, _, _ = lit, m, ptr, local, cl, joined, boxed
	dst = append(dst, 1) // appending into caller-owned dst is the supported pattern
	e.scratch = append(e.scratch, 1)
	for i := range e.scratch {
		e.scratch[i] = 0
	}
	return dst
}

func (e *evaluator) reset() {}

// cold is unannotated: the same constructs are legal here.
func (e *evaluator) cold(n int) []float64 {
	buf := make([]float64, n)
	_ = fmt.Sprint(n)
	return buf
}

// waived demonstrates the waiver path: the closure provably does not
// escape, and the benchmark pins the function at 0 allocs/op.
//
//lfoc:hotpath
func (e *evaluator) waived(n int) int {
	total := 0
	add := func(v int) { total += v } //lfoc:ok hotpathalloc: non-escaping closure, 0 allocs/op pinned by BenchmarkFixture
	add(n)
	return total
}

// pureHot stays clean without waivers: index writes into receiver
// scratch, arithmetic, and non-interface calls.
//
//lfoc:hotpath
func (e *evaluator) pureHot(xs []float64) float64 {
	total := 0.0
	for i, x := range xs {
		e.scratch[i] = x * 2
		total += e.scratch[i]
	}
	return total
}
