package hotpathalloc_test

import (
	"path/filepath"
	"testing"

	"github.com/faircache/lfoc/internal/analysis/analysistest"
	"github.com/faircache/lfoc/internal/analysis/hotpathalloc"
)

func TestHotPathAllocFixtures(t *testing.T) {
	analysistest.Run(t, hotpathalloc.Analyzer,
		filepath.Join("testdata", "src", "hotpath"),
		"example.com/x/internal/sharing")
}
