package analysis

// Vet runs analyzers over pkgs with the full waiver pipeline — the
// single entry point shared by cmd/lfoc-vet, the fixture harness and
// the clean-tree test, so "what the driver reports" has exactly one
// definition. known is the set of analyzer names valid in waivers
// (normally every registered analyzer, even when only a subset runs).
//
// The returned diagnostics are the surviving findings: raw analyzer
// reports minus waived ones, plus waiver-hygiene findings (malformed,
// unknown-analyzer, reason-less, and unused waivers), sorted by
// position.
func Vet(pkgs []*Package, analyzers []*Analyzer, known map[string]bool) ([]Diagnostic, error) {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			ds, err := RunAnalyzer(a, pkg)
			if err != nil {
				return nil, err
			}
			diags = append(diags, ds...)
		}
		waivers, bad := CollectWaivers(pkg.Fset, pkg.Files, known)
		diags = ApplyWaivers(diags, waivers)
		diags = append(diags, bad...)
		diags = append(diags, UnusedWaivers(waivers, ran)...)
		out = append(out, diags...)
	}
	SortDiagnostics(out)
	return out, nil
}

// KnownAnalyzers returns the waiver-name set for the given analyzers.
func KnownAnalyzers(analyzers []*Analyzer) map[string]bool {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	return known
}
