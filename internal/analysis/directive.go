package analysis

import (
	"go/ast"
	"strings"
)

// Source directives recognised by the analyzer set. Directives use the
// standard Go directive shape (no space after //) so gofmt leaves them
// alone.
const (
	// HotPathDirective marks a function whose body must not allocate;
	// it belongs in the function's doc comment. Enforced by the
	// hotpathalloc analyzer.
	HotPathDirective = "//lfoc:hotpath"

	// FloatStrictDirective opts a whole file into the floatpin
	// analyzer's multiply-add rounding-pin check. It belongs on the
	// kernel carry-chain files whose float trajectories must be
	// bit-identical across architectures.
	FloatStrictDirective = "//lfoc:floatstrict"
)

// hasDirectiveLine reports whether cg contains a comment line that is
// exactly the directive, optionally followed by explanatory text after
// a space.
func hasDirectiveLine(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// FuncIsHotPath reports whether fn's doc comment carries
// //lfoc:hotpath.
func FuncIsHotPath(fn *ast.FuncDecl) bool {
	return hasDirectiveLine(fn.Doc, HotPathDirective)
}

// FileIsFloatStrict reports whether any comment in f carries
// //lfoc:floatstrict.
func FileIsFloatStrict(f *ast.File) bool {
	for _, cg := range f.Comments {
		if hasDirectiveLine(cg, FloatStrictDirective) {
			return true
		}
	}
	return false
}
