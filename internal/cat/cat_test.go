package cat

import (
	"testing"
	"testing/quick"
)

func TestMaskRange(t *testing.T) {
	cases := []struct {
		lo, count int
		want      WayMask
	}{
		{0, 1, 0b1},
		{0, 3, 0b111},
		{2, 2, 0b1100},
		{10, 1, 1 << 10},
		{0, 0, 0},
		{-1, 2, 0},
	}
	for _, c := range cases {
		if got := MaskRange(c.lo, c.count); got != c.want {
			t.Errorf("MaskRange(%d,%d) = %b, want %b", c.lo, c.count, got, c.want)
		}
	}
}

func TestContiguous(t *testing.T) {
	cases := []struct {
		m    WayMask
		want bool
	}{
		{0b1, true}, {0b11, true}, {0b1100, true}, {0b101, false},
		{0, false}, {0b1110, true}, {0b10010, false},
	}
	for _, c := range cases {
		if got := c.m.Contiguous(); got != c.want {
			t.Errorf("Contiguous(%b) = %v", c.m, got)
		}
	}
}

func TestMaskAccessors(t *testing.T) {
	m := MaskRange(2, 3) // ways 2,3,4
	if m.Count() != 3 {
		t.Errorf("Count = %d", m.Count())
	}
	if m.Lowest() != 2 {
		t.Errorf("Lowest = %d", m.Lowest())
	}
	if WayMask(0).Lowest() != -1 {
		t.Error("Lowest of empty mask should be -1")
	}
	if !m.Contains(3) || m.Contains(1) || m.Contains(5) {
		t.Error("Contains wrong")
	}
	ws := m.Ways()
	if len(ws) != 3 || ws[0] != 2 || ws[2] != 4 {
		t.Errorf("Ways = %v", ws)
	}
	if !m.Overlaps(MaskRange(4, 2)) || m.Overlaps(MaskRange(5, 2)) {
		t.Error("Overlaps wrong")
	}
}

func TestMaskString(t *testing.T) {
	if got := MaskRange(0, 5).StringWidth(11); got != "00000011111" {
		t.Errorf("StringWidth = %q", got)
	}
	if got := MaskRange(1, 2).String(); got != "110" {
		t.Errorf("String = %q", got)
	}
}

func TestControllerLifecycle(t *testing.T) {
	c, err := NewController(11, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ways() != 11 || c.NumCOS() != 16 {
		t.Fatal("dimension accessors wrong")
	}
	// COS 0 defaults to full mask.
	m, err := c.COSMask(0)
	if err != nil || m != FullMask(11) {
		t.Fatalf("COS0 = %v, %v", m, err)
	}
	// Unassigned tasks land in COS 0.
	if c.COSOf(7) != 0 || c.MaskOf(7) != FullMask(11) {
		t.Fatal("default association wrong")
	}
	if err := c.SetCOS(1, MaskRange(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Assign(7, 1); err != nil {
		t.Fatal(err)
	}
	if c.COSOf(7) != 1 || c.MaskOf(7) != MaskRange(0, 2) {
		t.Fatal("association not applied")
	}
	c.Remove(7)
	if c.COSOf(7) != 0 {
		t.Fatal("Remove did not reset association")
	}
}

func TestControllerValidation(t *testing.T) {
	c, _ := NewController(11, 4, 2)
	if err := c.SetCOS(1, 0); err == nil {
		t.Error("empty CBM accepted")
	}
	if err := c.SetCOS(1, 0b101); err == nil {
		t.Error("non-contiguous CBM accepted")
	}
	if err := c.SetCOS(1, 0b1); err == nil {
		t.Error("CBM narrower than MinCBMBits accepted")
	}
	if err := c.SetCOS(1, MaskRange(10, 2)); err == nil {
		t.Error("CBM beyond LLC accepted")
	}
	if err := c.SetCOS(9, MaskRange(0, 2)); err == nil {
		t.Error("out-of-range COS accepted")
	}
	if err := c.Assign(1, 3); err == nil {
		t.Error("assignment to undefined COS accepted")
	}
	if _, err := c.COSMask(3); err == nil {
		t.Error("reading undefined COS succeeded")
	}
}

func TestNewControllerErrors(t *testing.T) {
	if _, err := NewController(0, 4, 1); err == nil {
		t.Error("0 ways accepted")
	}
	if _, err := NewController(40, 4, 1); err == nil {
		t.Error("40 ways accepted")
	}
	if _, err := NewController(11, 0, 1); err == nil {
		t.Error("0 COS accepted")
	}
	if _, err := NewController(11, 4, 0); err == nil {
		t.Error("MinCBMBits 0 accepted")
	}
	if _, err := NewController(11, 4, 12); err == nil {
		t.Error("MinCBMBits > ways accepted")
	}
}

func TestControllerReset(t *testing.T) {
	c, _ := NewController(11, 4, 1)
	_ = c.SetCOS(1, MaskRange(0, 3))
	_ = c.Assign(5, 1)
	c.Reset()
	if c.COSOf(5) != 0 {
		t.Error("association survived reset")
	}
	if _, err := c.COSMask(1); err == nil {
		t.Error("COS 1 survived reset")
	}
	if m, _ := c.COSMask(0); m != FullMask(11) {
		t.Error("COS 0 not restored")
	}
}

func TestSequentialLayout(t *testing.T) {
	masks, err := SequentialLayout([]int{2, 1, 5}, 11)
	if err != nil {
		t.Fatal(err)
	}
	want := []WayMask{MaskRange(0, 2), MaskRange(2, 1), MaskRange(3, 5)}
	for i := range want {
		if masks[i] != want[i] {
			t.Errorf("mask %d = %s, want %s", i, masks[i], want[i])
		}
	}
	// Disjointness.
	for i := range masks {
		for j := i + 1; j < len(masks); j++ {
			if masks[i].Overlaps(masks[j]) {
				t.Errorf("masks %d and %d overlap", i, j)
			}
		}
	}
	if _, err := SequentialLayout([]int{6, 6}, 11); err == nil {
		t.Error("overcommitted layout accepted")
	}
	if _, err := SequentialLayout([]int{0, 2}, 11); err == nil {
		t.Error("zero way count accepted")
	}
}

func TestOverlappingLowLayout(t *testing.T) {
	masks, err := OverlappingLowLayout([]int{1, 4, 11, 13}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if masks[0] != MaskRange(0, 1) || masks[1] != MaskRange(0, 4) {
		t.Error("low masks wrong")
	}
	if masks[2] != FullMask(11) || masks[3] != FullMask(11) {
		t.Error("clamping wrong")
	}
	if !masks[0].Overlaps(masks[1]) {
		t.Error("expected overlap")
	}
	if _, err := OverlappingLowLayout([]int{0}, 11); err == nil {
		t.Error("zero count accepted")
	}
}

func TestSamplingLayout(t *testing.T) {
	s, r, err := SamplingLayout(3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if s != MaskRange(0, 3) || r != MaskRange(3, 8) {
		t.Errorf("layout = %s / %s", s, r)
	}
	if s.Overlaps(r) {
		t.Error("sampling partitions overlap")
	}
	if (s | r) != FullMask(11) {
		t.Error("sampling partitions do not cover the LLC")
	}
	if _, _, err := SamplingLayout(0, 11); err == nil {
		t.Error("0-way sampling partition accepted")
	}
	if _, _, err := SamplingLayout(11, 11); err == nil {
		t.Error("full-LLC sampling partition accepted")
	}
}

func TestSharingGroups(t *testing.T) {
	masks := []WayMask{
		MaskRange(0, 2),  // 0: overlaps 1
		MaskRange(1, 3),  // 1
		MaskRange(5, 2),  // 2: isolated
		MaskRange(8, 3),  // 3: overlaps 4
		MaskRange(10, 1), // 4
	}
	groups := SharingGroups(masks)
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	sizes := map[int]int{}
	for _, g := range groups {
		sizes[len(g)]++
	}
	if sizes[2] != 2 || sizes[1] != 1 {
		t.Errorf("group sizes wrong: %v", groups)
	}
}

func TestUnionMask(t *testing.T) {
	u := UnionMask([]WayMask{MaskRange(0, 2), MaskRange(4, 2)})
	if u != 0b110011 {
		t.Errorf("UnionMask = %b", u)
	}
	if UnionMask(nil) != 0 {
		t.Error("UnionMask(nil) != 0")
	}
}

// Property: SequentialLayout masks are disjoint, contiguous, and their
// union has exactly sum(counts) ways.
func TestQuickSequentialLayout(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, 0, len(raw))
		total := 0
		for _, r := range raw {
			c := int(r%4) + 1
			if total+c > 20 {
				break
			}
			counts = append(counts, c)
			total += c
		}
		if len(counts) == 0 {
			return true
		}
		masks, err := SequentialLayout(counts, 20)
		if err != nil {
			return false
		}
		var union WayMask
		for i, m := range masks {
			if !m.Contiguous() || m.Count() != counts[i] {
				return false
			}
			if union.Overlaps(m) {
				return false
			}
			union |= m
		}
		return union.Count() == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MaskRange(lo,c) has count c and lowest bit lo when in range.
func TestQuickMaskRange(t *testing.T) {
	f := func(lo8, c8 uint8) bool {
		lo, c := int(lo8%20), int(c8%10)+1
		m := MaskRange(lo, c)
		return m.Count() == c && m.Lowest() == lo && m.Contiguous()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
