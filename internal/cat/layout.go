package cat

import "fmt"

// SequentialLayout converts per-cluster way counts into disjoint
// contiguous masks laid out from way 0 upward. It is the layout LFOC,
// KPart and the optimal solver use: way counts must sum to at most the
// total way count and every count must be positive.
func SequentialLayout(counts []int, totalWays int) ([]WayMask, error) {
	masks := make([]WayMask, len(counts))
	next := 0
	for i, w := range counts {
		if w <= 0 {
			return nil, fmt.Errorf("cat: cluster %d has non-positive way count %d", i, w)
		}
		if next+w > totalWays {
			return nil, fmt.Errorf("cat: layout needs %d ways, platform has %d", next+w, totalWays)
		}
		masks[i] = MaskRange(next, w)
		next += w
	}
	return masks, nil
}

// OverlappingLowLayout converts per-cluster way counts into masks that all
// start at way 0, so bigger clusters strictly contain smaller ones. This is
// the (deliberately) overlapping layout the Dunn policy produces: as §2.3.2
// of the paper notes, Dunn's partitions "may overlap with each other",
// which creates the unpredictable cross-cluster interactions the paper
// criticizes. Counts may exceed totalWays only in the sense that each
// individual count is clamped to totalWays.
func OverlappingLowLayout(counts []int, totalWays int) ([]WayMask, error) {
	masks := make([]WayMask, len(counts))
	for i, w := range counts {
		if w <= 0 {
			return nil, fmt.Errorf("cat: cluster %d has non-positive way count %d", i, w)
		}
		if w > totalWays {
			w = totalWays
		}
		masks[i] = MaskRange(0, w)
	}
	return masks, nil
}

// SamplingLayout returns the two complementary masks used during a
// sampling episode (§4.2): a sampling partition of sampleWays ways at the
// low end for the sampled application, and the complement for everyone
// else. sampleWays must leave at least one way for the complement.
func SamplingLayout(sampleWays, totalWays int) (sample, rest WayMask, err error) {
	if sampleWays < 1 || sampleWays >= totalWays {
		return 0, 0, fmt.Errorf("cat: sampling partition of %d ways invalid on %d-way LLC", sampleWays, totalWays)
	}
	return MaskRange(0, sampleWays), MaskRange(sampleWays, totalWays-sampleWays), nil
}

// SharingGroups partitions cluster indices into connected components of
// the mask-overlap graph: clusters in different groups are perfectly
// isolated from each other; clusters within a group compete for the ways
// their masks share. The contention model uses this to decide which
// applications interact.
func SharingGroups(masks []WayMask) [][]int {
	n := len(masks)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if masks[i].Overlaps(masks[j]) {
				union(i, j)
			}
		}
	}
	groups := map[int][]int{}
	order := []int{}
	for i := 0; i < n; i++ {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

// UnionMask returns the union of the given masks.
func UnionMask(masks []WayMask) WayMask {
	var u WayMask
	for _, m := range masks {
		u |= m
	}
	return u
}
