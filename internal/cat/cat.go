// Package cat emulates Intel Cache Allocation Technology (CAT) and the
// companion Cache Monitoring Technology (CMT) occupancy interface.
//
// CAT exposes a small table of classes of service (COS); each COS holds a
// capacity bitmask (CBM) with one bit per LLC way, and hardware requires
// the set bits to be contiguous. A running task is associated with one COS
// and may only *allocate* (insert lines) into the ways its CBM covers; it
// may still hit on lines anywhere. This package models the control plane:
// the COS table, CBM validation, and task-to-COS association. The data
// plane (what a mask means for cache contents) is modeled by
// internal/cache and internal/sharing.
package cat

import (
	"fmt"
	"math/bits"
	"strings"
)

// WayMask is a capacity bitmask with one bit per LLC way (bit 0 = way 0).
type WayMask uint32

// MaskRange returns a mask covering count ways starting at way lo.
func MaskRange(lo, count int) WayMask {
	if count <= 0 || lo < 0 {
		return 0
	}
	return ((WayMask(1) << count) - 1) << lo
}

// FullMask returns a mask covering ways [0, ways).
func FullMask(ways int) WayMask { return MaskRange(0, ways) }

// Count returns the number of ways the mask covers.
func (m WayMask) Count() int { return bits.OnesCount32(uint32(m)) }

// Contiguous reports whether the set bits of m form one contiguous run.
// The empty mask is not contiguous.
func (m WayMask) Contiguous() bool {
	if m == 0 {
		return false
	}
	v := uint32(m) >> bits.TrailingZeros32(uint32(m))
	return v&(v+1) == 0
}

// Lowest returns the index of the lowest set way, or -1 for an empty mask.
func (m WayMask) Lowest() int {
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros32(uint32(m))
}

// Overlaps reports whether two masks share any way.
func (m WayMask) Overlaps(o WayMask) bool { return m&o != 0 }

// Contains reports whether way w is covered by the mask.
func (m WayMask) Contains(w int) bool { return m&(1<<w) != 0 }

// Ways returns the indices of the set ways in increasing order.
func (m WayMask) Ways() []int {
	ws := make([]int, 0, m.Count())
	for w := 0; w < 32; w++ {
		if m.Contains(w) {
			ws = append(ws, w)
		}
	}
	return ws
}

// String renders the mask as a way-bit string, highest way first, e.g.
// "00000011111" for an 11-way platform mask of the low 5 ways (the width
// is the position of the highest set bit + 1; use StringWidth for fixed
// width).
func (m WayMask) String() string { return m.StringWidth(32 - bits.LeadingZeros32(uint32(m))) }

// StringWidth renders the mask with exactly width way positions.
func (m WayMask) StringWidth(width int) string {
	if width <= 0 {
		width = 1
	}
	var b strings.Builder
	for w := width - 1; w >= 0; w-- {
		if m.Contains(w) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// COSID identifies a class of service.
type COSID int

// TaskID identifies a task (application) associated with a COS.
type TaskID int

// Controller models the CAT control interface of one LLC: a bounded COS
// table plus per-task COS association. COS 0 is the default class and
// initially covers all ways, as on real hardware.
type Controller struct {
	ways    int
	minBits int
	cos     []WayMask
	defined []bool
	assoc   map[TaskID]COSID
}

// NewController creates a controller for an LLC with the given way count,
// COS table size, and minimum contiguous CBM width.
func NewController(ways, numCOS, minBits int) (*Controller, error) {
	if ways <= 0 || ways > 32 {
		return nil, fmt.Errorf("cat: way count %d out of range [1,32]", ways)
	}
	if numCOS < 1 {
		return nil, fmt.Errorf("cat: need at least one COS, got %d", numCOS)
	}
	if minBits < 1 || minBits > ways {
		return nil, fmt.Errorf("cat: MinCBMBits %d out of range [1,%d]", minBits, ways)
	}
	c := &Controller{
		ways:    ways,
		minBits: minBits,
		cos:     make([]WayMask, numCOS),
		defined: make([]bool, numCOS),
		assoc:   make(map[TaskID]COSID),
	}
	c.cos[0] = FullMask(ways)
	c.defined[0] = true
	return c, nil
}

// Ways returns the number of partitionable ways.
func (c *Controller) Ways() int { return c.ways }

// NumCOS returns the size of the COS table.
func (c *Controller) NumCOS() int { return len(c.cos) }

// ValidateMask reports an error if mask is not programmable as a CBM:
// empty, non-contiguous, too narrow, or covering nonexistent ways.
func (c *Controller) ValidateMask(mask WayMask) error {
	if mask == 0 {
		return fmt.Errorf("cat: empty CBM")
	}
	if mask&^FullMask(c.ways) != 0 {
		return fmt.Errorf("cat: CBM %s covers ways beyond the %d-way LLC", mask, c.ways)
	}
	if !mask.Contiguous() {
		return fmt.Errorf("cat: CBM %s is not contiguous", mask)
	}
	if mask.Count() < c.minBits {
		return fmt.Errorf("cat: CBM %s has %d bits, minimum is %d", mask, mask.Count(), c.minBits)
	}
	return nil
}

// SetCOS programs the CBM of the given class of service. COS 0 may be
// reprogrammed but never undefined.
func (c *Controller) SetCOS(id COSID, mask WayMask) error {
	if int(id) < 0 || int(id) >= len(c.cos) {
		return fmt.Errorf("cat: COS %d out of range [0,%d)", id, len(c.cos))
	}
	if err := c.ValidateMask(mask); err != nil {
		return err
	}
	c.cos[id] = mask
	c.defined[id] = true
	return nil
}

// COSMask returns the CBM programmed for the class of service.
func (c *Controller) COSMask(id COSID) (WayMask, error) {
	if int(id) < 0 || int(id) >= len(c.cos) || !c.defined[id] {
		return 0, fmt.Errorf("cat: COS %d not defined", id)
	}
	return c.cos[id], nil
}

// Assign associates a task with a class of service.
func (c *Controller) Assign(task TaskID, id COSID) error {
	if int(id) < 0 || int(id) >= len(c.cos) || !c.defined[id] {
		return fmt.Errorf("cat: cannot assign task %d to undefined COS %d", task, id)
	}
	c.assoc[task] = id
	return nil
}

// COSOf returns the class of service a task is associated with (COS 0 if
// it was never assigned, matching hardware reset behaviour).
func (c *Controller) COSOf(task TaskID) COSID {
	if id, ok := c.assoc[task]; ok {
		return id
	}
	return 0
}

// MaskOf returns the effective CBM of a task.
func (c *Controller) MaskOf(task TaskID) WayMask { return c.cos[c.COSOf(task)] }

// Remove drops the association of a task (e.g. on exit).
func (c *Controller) Remove(task TaskID) { delete(c.assoc, task) }

// Reset restores the controller to its power-on state: COS 0 covers all
// ways, all other classes are undefined, and no tasks are associated.
func (c *Controller) Reset() {
	for i := range c.cos {
		c.cos[i] = 0
		c.defined[i] = false
	}
	c.cos[0] = FullMask(c.ways)
	c.defined[0] = true
	c.assoc = map[TaskID]COSID{}
}
