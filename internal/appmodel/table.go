package appmodel

import (
	"fmt"

	"github.com/faircache/lfoc/internal/machine"
)

// Table holds per-way-count performance curves for one phase of one
// application running alone — exactly the offline profile the paper feeds
// to its PBBCache simulator and that LFOC's sampling mode reconstructs
// online. Index 0 is unused; indices 1..Ways are valid.
type Table struct {
	Ways      int
	IPC       []float64
	MPKC      []float64
	MPKI      []float64
	StallFrac []float64
	Bandwidth []float64 // bytes/s
}

// BuildTable evaluates a phase alone (no bandwidth contention) at every
// way count on the platform.
func BuildTable(ph *PhaseSpec, plat *machine.Platform) *Table {
	t := &Table{
		Ways:      plat.Ways,
		IPC:       make([]float64, plat.Ways+1),
		MPKC:      make([]float64, plat.Ways+1),
		MPKI:      make([]float64, plat.Ways+1),
		StallFrac: make([]float64, plat.Ways+1),
		Bandwidth: make([]float64, plat.Ways+1),
	}
	for w := 1; w <= plat.Ways; w++ {
		p := PhasePerf(ph, plat, plat.WaysToBytes(w), 1)
		t.IPC[w] = p.IPC
		t.MPKC[w] = p.MPKC
		t.MPKI[w] = p.MPKI
		t.StallFrac[w] = p.StallFrac
		t.Bandwidth[w] = p.Bandwidth
	}
	return t
}

// Slowdown returns the slowdown at w ways relative to the full LLC —
// Eq. (2) with the alone-IPC measured at all ways.
func (t *Table) Slowdown(w int) float64 {
	if w < 1 || w > t.Ways {
		panic(fmt.Sprintf("appmodel: way count %d out of [1,%d]", w, t.Ways))
	}
	return t.IPC[t.Ways] / t.IPC[w]
}

// SlowdownCurve returns the whole slowdown table (index 0 unused).
func (t *Table) SlowdownCurve() []float64 {
	s := make([]float64, t.Ways+1)
	for w := 1; w <= t.Ways; w++ {
		s[w] = t.Slowdown(w)
	}
	return s
}

// Criteria holds the Table 1 classification thresholds.
type Criteria struct {
	// StreamingMaxSlowdown: a streaming app has slowdown ≤ this in at
	// least one way assignment (paired with the MPKC floor)…
	StreamingMaxSlowdown float64
	// StreamingMinMPKC: …while exhibiting at least this many LLC misses
	// per kilo-cycle there…
	StreamingMinMPKC float64
	// StreamingAllMaxSlowdown: …and slowdown below this in *all* way
	// assignments.
	StreamingAllMaxSlowdown float64
	// SensitiveMinSlowdown: a sensitive app has slowdown ≥ this for some
	// allocation of at least two ways.
	SensitiveMinSlowdown float64
}

// DefaultCriteria returns the thresholds of Table 1: slowdown ≤ 1.03 with
// LLCMPKC ≥ 10 somewhere and slowdown < 1.06 everywhere for streaming;
// slowdown ≥ 1.05 at ≥ 2 ways for sensitive.
func DefaultCriteria() Criteria {
	return Criteria{
		StreamingMaxSlowdown:    1.03,
		StreamingMinMPKC:        10,
		StreamingAllMaxSlowdown: 1.06,
		SensitiveMinSlowdown:    1.05,
	}
}

// Classify applies the Table 1 criteria to an offline profile table. It
// is the float-domain "oracle" used for workload construction and for
// validating the fixed-point online classifier in internal/core.
func (c Criteria) Classify(t *Table) Class {
	streamingWitness := false
	allBelow := true
	for w := 1; w <= t.Ways; w++ {
		s := t.Slowdown(w)
		if s <= c.StreamingMaxSlowdown && t.MPKC[w] >= c.StreamingMinMPKC {
			streamingWitness = true
		}
		if s >= c.StreamingAllMaxSlowdown {
			allBelow = false
		}
	}
	if streamingWitness && allBelow {
		return ClassStreaming
	}
	for w := 2; w <= t.Ways; w++ {
		if t.Slowdown(w) >= c.SensitiveMinSlowdown {
			return ClassSensitive
		}
	}
	return ClassLight
}

// DominantTable returns the profile table of the spec's longest phase
// (by instruction duration; an endless phase dominates), which stands in
// for the paper's whole-program offline profile.
func DominantTable(spec *Spec, plat *machine.Platform) *Table {
	best := 0
	var bestDur uint64
	for i := range spec.Phases {
		d := spec.Phases[i].DurationInsns
		if d == 0 { // endless phase dominates
			best = i
			break
		}
		if d > bestDur {
			bestDur = d
			best = i
		}
	}
	return BuildTable(&spec.Phases[best], plat)
}

// CriticalWays returns the smallest way count at which the slowdown
// (vs. full LLC) drops below 1+threshold — the paper's "critical size"
// notion for sensitive applications (§4.2), expressed in ways.
func (t *Table) CriticalWays(threshold float64) int {
	for w := 1; w <= t.Ways; w++ {
		if t.Slowdown(w) < 1+threshold {
			return w
		}
	}
	return t.Ways
}
