package appmodel

import (
	"github.com/faircache/lfoc/internal/machine"
)

// CurveCache precomputes everything PhasePerf derives from a (phase,
// platform) pair so the contention model's inner loop stops rebuilding
// the same piecewise-linear math on every call: the locality knots are
// flattened into parallel arrays for a branch-light binary search, the
// phase/platform constants (BaseCPI, APKI/1000, effective MLP, latencies)
// are resolved once, and the hit ratio is additionally sampled at way
// granularity for allocations that are exact way multiples.
//
// A CurveCache is immutable after construction and therefore safe to
// share across goroutines (the parallel branch-and-bound workers all read
// the same set). Perf and PerfAtWays are bit-identical to PhasePerf at
// the same operating point: they execute the same floating-point
// operations in the same order, only with the operands fetched from the
// precomputed arrays.
type CurveCache struct {
	// Locality knots (parallel arrays, ascending sizes).
	knotBytes []uint64
	knotHits  []float64

	// wayHits[w] is the hit ratio at exactly w ways (index 0 unused).
	wayHits []float64

	// Resolved constants.
	baseCPI float64
	apki    float64
	apkiK   float64 // APKI/1000
	hitCyc  float64 // float64(plat.LLCHitCycles)
	memBase float64 // float64(plat.MemCycles) / effective MLP
	freqF   float64 // float64(plat.FreqHz)
	lineF   float64 // float64(plat.LineBytes)
}

// NewCurveCache flattens a phase's locality profile and platform
// constants into an immutable evaluation cache.
func NewCurveCache(ph *PhaseSpec, plat *machine.Platform) *CurveCache {
	mlp := ph.MLP
	if mlp <= 0 {
		mlp = plat.MLP
	}
	knots := ph.Locality.Knots()
	c := &CurveCache{
		knotBytes: make([]uint64, len(knots)),
		knotHits:  make([]float64, len(knots)),
		wayHits:   make([]float64, plat.Ways+1),
		baseCPI:   ph.BaseCPI,
		apki:      ph.APKI,
		apkiK:     ph.APKI / 1000,
		hitCyc:    float64(plat.LLCHitCycles),
		memBase:   float64(plat.MemCycles) / mlp,
		freqF:     float64(plat.FreqHz),
		lineF:     float64(plat.LineBytes),
	}
	for i, k := range knots {
		c.knotBytes[i] = k.Bytes
		c.knotHits[i] = k.HitRatio
	}
	for w := 1; w <= plat.Ways; w++ {
		c.wayHits[w] = ph.Locality.HitRatio(plat.WaysToBytes(w))
	}
	return c
}

// hitRatio mirrors stackdist.Profile.HitRatio over the flattened knots.
func (c *CurveCache) hitRatio(bytes uint64) float64 {
	if len(c.knotBytes) == 0 {
		return 0
	}
	if bytes <= c.knotBytes[0] {
		if c.knotBytes[0] == 0 {
			return c.knotHits[0]
		}
		return c.knotHits[0] * float64(bytes) / float64(c.knotBytes[0])
	}
	last := len(c.knotBytes) - 1
	if bytes >= c.knotBytes[last] {
		return c.knotHits[last]
	}
	lo, hi := 1, last
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bytes <= c.knotBytes[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	frac := float64(bytes-c.knotBytes[lo-1]) / float64(c.knotBytes[lo]-c.knotBytes[lo-1])
	return c.knotHits[lo-1] + frac*(c.knotHits[lo]-c.knotHits[lo-1])
}

// perfFromHit applies the CPI decomposition to a hit ratio.
func (c *CurveCache) perfFromHit(hr, memScale float64) Perf {
	if memScale < 1 {
		memScale = 1
	}
	miss := 1 - hr
	hit := 1 - miss
	memStall := c.memBase * memScale
	stallPerAccess := hit*c.hitCyc + miss*memStall
	stallCPI := c.apkiK * stallPerAccess
	cpi := c.baseCPI + stallCPI
	ipc := 1 / cpi
	mpki := c.apki * miss
	return Perf{
		CPI:       cpi,
		IPC:       ipc,
		MissRatio: miss,
		MPKC:      mpki * ipc,
		MPKI:      mpki,
		StallFrac: stallCPI / cpi,
		Bandwidth: mpki / 1000 * ipc * c.freqF * c.lineF,
	}
}

// Perf evaluates the phase at an arbitrary allocation of cacheBytes under
// a memory-latency inflation memScale. Equivalent to PhasePerf.
func (c *CurveCache) Perf(cacheBytes uint64, memScale float64) Perf {
	return c.perfFromHit(c.hitRatio(cacheBytes), memScale)
}

// Bandwidth returns only the DRAM demand at an operating point — the
// quantity the share fixed point's pressure term needs.
func (c *CurveCache) Bandwidth(cacheBytes uint64, memScale float64) float64 {
	return c.perfFromHit(c.hitRatio(cacheBytes), memScale).Bandwidth
}

// PerfAtWays evaluates the phase at exactly w ways using the
// way-granularity samples, skipping the knot search entirely.
func (c *CurveCache) PerfAtWays(w int, memScale float64) Perf {
	return c.perfFromHit(c.wayHits[w], memScale)
}

// Ways returns the way count the cache was sampled for.
func (c *CurveCache) Ways() int { return len(c.wayHits) - 1 }
