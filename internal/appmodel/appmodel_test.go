package appmodel

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/stackdist"
)

const mb = 1 << 20

func sensitivePhase() PhaseSpec {
	return PhaseSpec{
		Name: "sens", BaseCPI: 0.55, APKI: 25, MLP: 3,
		Locality: stackdist.WorkingSet(20*mb, 0.92),
	}
}

func streamingPhase() PhaseSpec {
	return PhaseSpec{
		Name: "stream", BaseCPI: 0.6, APKI: 55, MLP: 9,
		Locality: stackdist.Streaming(0.04),
	}
}

func lightPhase() PhaseSpec {
	return PhaseSpec{
		Name: "light", BaseCPI: 0.5, APKI: 0.5, MLP: 4,
		Locality: stackdist.WorkingSet(mb/2, 0.95),
	}
}

func TestPhaseValidate(t *testing.T) {
	bad := PhaseSpec{Name: "x", BaseCPI: 0}
	if bad.Validate() == nil {
		t.Error("zero BaseCPI accepted")
	}
	bad = PhaseSpec{Name: "x", BaseCPI: 1, APKI: -1}
	if bad.Validate() == nil {
		t.Error("negative APKI accepted")
	}
	bad = PhaseSpec{Name: "x", BaseCPI: 1, MLP: -2}
	if bad.Validate() == nil {
		t.Error("negative MLP accepted")
	}
	good := lightPhase()
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSpecValidate(t *testing.T) {
	if (&Spec{Name: "", Phases: []PhaseSpec{lightPhase()}}).Validate() == nil {
		t.Error("empty name accepted")
	}
	if (&Spec{Name: "x"}).Validate() == nil {
		t.Error("no phases accepted")
	}
	loop := &Spec{Name: "x", Phases: []PhaseSpec{lightPhase()}, LoopPhases: true}
	if loop.Validate() == nil {
		t.Error("looping spec with endless phase accepted")
	}
	ph := lightPhase()
	ph.DurationInsns = 100
	ok := &Spec{Name: "x", Phases: []PhaseSpec{ph}, LoopPhases: true}
	if err := ok.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPhasePerfSensitiveShape(t *testing.T) {
	plat := machine.Skylake()
	ph := sensitivePhase()
	small := PhasePerf(&ph, plat, plat.WaysToBytes(1), 1)
	full := PhasePerf(&ph, plat, plat.WaysToBytes(plat.Ways), 1)
	if small.IPC >= full.IPC {
		t.Errorf("sensitive app should speed up with more cache: %v vs %v", small.IPC, full.IPC)
	}
	sd := full.IPC / small.IPC
	if sd < 1.5 || sd > 2.6 {
		t.Errorf("1-way slowdown = %v, want roughly Fig. 1's ~1.8-2.1", sd)
	}
	if small.MPKC < 5 || small.MPKC > 15 {
		t.Errorf("1-way MPKC = %v, want ~10", small.MPKC)
	}
	if full.MPKC > 4 {
		t.Errorf("full-LLC MPKC = %v, should be small", full.MPKC)
	}
	if small.StallFrac <= full.StallFrac {
		t.Error("stall fraction should drop with more cache")
	}
	if small.Bandwidth <= full.Bandwidth {
		t.Error("bandwidth demand should drop with more cache")
	}
}

func TestPhasePerfStreamingShape(t *testing.T) {
	plat := machine.Skylake()
	ph := streamingPhase()
	small := PhasePerf(&ph, plat, plat.WaysToBytes(1), 1)
	full := PhasePerf(&ph, plat, plat.WaysToBytes(plat.Ways), 1)
	if sd := full.IPC / small.IPC; sd > 1.01 {
		t.Errorf("streaming slowdown at 1 way = %v, want ~1.0", sd)
	}
	if small.MPKC < 10 {
		t.Errorf("streaming MPKC = %v, want >= 10 (Table 1)", small.MPKC)
	}
}

func TestPhasePerfBandwidthInflation(t *testing.T) {
	plat := machine.Skylake()
	ph := sensitivePhase()
	base := PhasePerf(&ph, plat, plat.WaysToBytes(2), 1)
	loaded := PhasePerf(&ph, plat, plat.WaysToBytes(2), 2)
	if loaded.IPC >= base.IPC {
		t.Error("memory contention should reduce IPC")
	}
	if loaded.Bandwidth >= base.Bandwidth {
		t.Error("memory contention should reduce achieved bandwidth demand")
	}
	// Scale < 1 is clamped to 1.
	clamped := PhasePerf(&ph, plat, plat.WaysToBytes(2), 0.5)
	if math.Abs(clamped.IPC-base.IPC) > 1e-12 {
		t.Error("memScale < 1 not clamped")
	}
}

func TestPhasePerfMLPDefault(t *testing.T) {
	plat := machine.Skylake()
	ph := sensitivePhase()
	ph.MLP = 0
	withDefault := PhasePerf(&ph, plat, plat.WaysToBytes(2), 1)
	ph.MLP = plat.MLP
	explicit := PhasePerf(&ph, plat, plat.WaysToBytes(2), 1)
	if math.Abs(withDefault.IPC-explicit.IPC) > 1e-12 {
		t.Error("MLP=0 should use the platform default")
	}
}

func TestBuildTableAndSlowdown(t *testing.T) {
	plat := machine.Skylake()
	ph := sensitivePhase()
	tbl := BuildTable(&ph, plat)
	if tbl.Ways != plat.Ways {
		t.Fatal("table way count wrong")
	}
	if got := tbl.Slowdown(plat.Ways); math.Abs(got-1) > 1e-12 {
		t.Errorf("slowdown at full LLC = %v, want 1", got)
	}
	// Monotone nonincreasing slowdown with more ways.
	curve := tbl.SlowdownCurve()
	for w := 2; w <= plat.Ways; w++ {
		if curve[w] > curve[w-1]+1e-9 {
			t.Errorf("slowdown increases from %d to %d ways", w-1, w)
		}
	}
}

func TestSlowdownPanicsOutOfRange(t *testing.T) {
	plat := machine.Skylake()
	ph := lightPhase()
	tbl := BuildTable(&ph, plat)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tbl.Slowdown(0)
}

func TestClassifyOracle(t *testing.T) {
	plat := machine.Skylake()
	crit := DefaultCriteria()
	cases := []struct {
		ph   PhaseSpec
		want Class
	}{
		{sensitivePhase(), ClassSensitive},
		{streamingPhase(), ClassStreaming},
		{lightPhase(), ClassLight},
	}
	for _, c := range cases {
		tbl := BuildTable(&c.ph, plat)
		if got := crit.Classify(tbl); got != c.want {
			t.Errorf("classify(%s) = %v, want %v", c.ph.Name, got, c.want)
		}
	}
}

func TestCriticalWays(t *testing.T) {
	plat := machine.Skylake()
	ph := sensitivePhase()
	tbl := BuildTable(&ph, plat)
	cw := tbl.CriticalWays(0.05)
	if cw < 2 || cw > plat.Ways {
		t.Errorf("critical ways = %d", cw)
	}
	if tbl.Slowdown(cw) >= 1.05 {
		t.Error("slowdown at critical size should be < 1.05")
	}
	if cw > 1 && tbl.Slowdown(cw-1) < 1.05 {
		t.Error("critical size not minimal")
	}
	// A light app's critical size is 1 way.
	lp := lightPhase()
	ltbl := BuildTable(&lp, plat)
	if got := ltbl.CriticalWays(0.05); got != 1 {
		t.Errorf("light critical ways = %d, want 1", got)
	}
}

func TestInstancePhaseAdvance(t *testing.T) {
	p1 := lightPhase()
	p1.DurationInsns = 100
	p2 := sensitivePhase()
	p2.DurationInsns = 200
	spec := &Spec{Name: "p", Phases: []PhaseSpec{p1, p2}, LoopPhases: true}
	in := NewInstance(spec)
	if in.Phase().Name != "light" || in.PhaseIndex() != 0 {
		t.Fatal("initial phase wrong")
	}
	if in.InstructionsToPhaseEnd() != 100 {
		t.Fatal("phase-end distance wrong")
	}
	if changed := in.Advance(50); changed {
		t.Error("mid-phase advance reported change")
	}
	if changed := in.Advance(50); !changed || in.Phase().Name != "sens" {
		t.Error("phase boundary not crossed")
	}
	// Cross the loop boundary: 200 more instructions back to phase 0.
	if changed := in.Advance(200); !changed || in.Phase().Name != "light" {
		t.Error("loop boundary not crossed")
	}
	if in.TotalInstructions() != 300 {
		t.Errorf("total instructions = %d", in.TotalInstructions())
	}
	// Advance across several phases in one call.
	in.Restart()
	in.Advance(100 + 200 + 100 + 50)
	if in.Phase().Name != "sens" || in.TotalInstructions() != 450 {
		t.Errorf("multi-phase advance landed on %s", in.Phase().Name)
	}
}

func TestInstanceEndlessTerminalPhase(t *testing.T) {
	p1 := lightPhase()
	p1.DurationInsns = 100
	p2 := streamingPhase() // endless
	spec := &Spec{Name: "f", Phases: []PhaseSpec{p1, p2}}
	in := NewInstance(spec)
	in.Advance(150)
	if in.Phase().Name != "stream" {
		t.Fatal("did not reach terminal phase")
	}
	if in.InstructionsToPhaseEnd() != 0 {
		t.Error("endless phase should report 0 to end")
	}
	if in.Advance(1 << 40) {
		t.Error("endless phase reported change")
	}
}

func TestInstanceNonLoopingLastPhaseSticks(t *testing.T) {
	p1 := lightPhase()
	p1.DurationInsns = 100
	spec := &Spec{Name: "one", Phases: []PhaseSpec{p1}}
	in := NewInstance(spec)
	in.Advance(500)
	if in.PhaseIndex() != 0 {
		t.Error("single finite phase should stick")
	}
	if in.TotalInstructions() != 500 {
		t.Errorf("total = %d", in.TotalInstructions())
	}
}

func TestDominantTable(t *testing.T) {
	plat := machine.Skylake()
	p1 := lightPhase()
	p1.DurationInsns = 100
	p2 := streamingPhase() // endless -> dominates
	spec := &Spec{Name: "f", Phases: []PhaseSpec{p1, p2}}
	tbl := DominantTable(spec, plat)
	if DefaultCriteria().Classify(tbl) != ClassStreaming {
		t.Error("endless phase should dominate")
	}
	// Without endless phases the longest finite phase dominates.
	p3 := sensitivePhase()
	p3.DurationInsns = 1000
	spec2 := &Spec{Name: "g", Phases: []PhaseSpec{p1, p3}, LoopPhases: true}
	tbl2 := DominantTable(spec2, plat)
	if DefaultCriteria().Classify(tbl2) != ClassSensitive {
		t.Error("longest phase should dominate")
	}
}

func TestClassString(t *testing.T) {
	if ClassLight.String() != "light" || ClassStreaming.String() != "streaming" ||
		ClassSensitive.String() != "sensitive" || ClassUnknown.String() != "unknown" {
		t.Error("class strings wrong")
	}
}

// Property: IPC is monotone nondecreasing in cache size for any
// well-formed phase (more cache never hurts in the unloaded model).
func TestQuickIPCMonotone(t *testing.T) {
	plat := machine.Skylake()
	f := func(apki8 uint8, ws8 uint8, s1, s2 uint32) bool {
		ph := PhaseSpec{
			Name: "q", BaseCPI: 0.5,
			APKI: float64(apki8%60) + 0.1, MLP: 3,
			Locality: stackdist.WorkingSet(uint64(ws8%30+1)*mb, 0.9),
		}
		a, b := uint64(s1), uint64(s2)
		if a > b {
			a, b = b, a
		}
		pa := PhasePerf(&ph, plat, a, 1)
		pb := PhasePerf(&ph, plat, b, 1)
		return pa.IPC <= pb.IPC+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Advance conserves instructions (sum of advances equals the
// total) for looping specs.
func TestQuickAdvanceConservation(t *testing.T) {
	f := func(steps []uint16) bool {
		p1 := lightPhase()
		p1.DurationInsns = 137
		p2 := sensitivePhase()
		p2.DurationInsns = 263
		spec := &Spec{Name: "p", Phases: []PhaseSpec{p1, p2}, LoopPhases: true}
		in := NewInstance(spec)
		var sum uint64
		for _, s := range steps {
			in.Advance(uint64(s))
			sum += uint64(s)
		}
		return in.TotalInstructions() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCurveCacheMatchesPhasePerf(t *testing.T) {
	// CurveCache.Perf / PerfAtWays must be bit-identical to PhasePerf at
	// every operating point: the solver's determinism (and comparability
	// with directly-evaluated plans) depends on it.
	plat := machine.Skylake()
	phases := []PhaseSpec{sensitivePhase(), streamingPhase(), lightPhase()}
	// Include an explicit-MLP phase so the mlp-resolution path is hit.
	withMLP := sensitivePhase()
	withMLP.MLP = 7.5
	phases = append(phases, withMLP)
	scales := []float64{0, 0.5, 1, 1.17, 2.4, 9}
	for pi := range phases {
		ph := &phases[pi]
		c := NewCurveCache(ph, plat)
		for _, scale := range scales {
			// Arbitrary byte sizes, including off-knot and beyond-LLC points.
			for _, bytes := range []uint64{0, 1, 4096, 100_000, mb, 3 * mb, 10*mb + 12345, plat.LLCBytes(), 2 * plat.LLCBytes()} {
				want := PhasePerf(ph, plat, bytes, scale)
				got := c.Perf(bytes, scale)
				if got != want {
					t.Fatalf("phase %d scale %v bytes %d: Perf %+v != PhasePerf %+v", pi, scale, bytes, got, want)
				}
				if bw := c.Bandwidth(bytes, scale); bw != want.Bandwidth {
					t.Fatalf("phase %d scale %v bytes %d: Bandwidth %v != %v", pi, scale, bytes, bw, want.Bandwidth)
				}
			}
			for w := 1; w <= plat.Ways; w++ {
				want := PhasePerf(ph, plat, plat.WaysToBytes(w), scale)
				if got := c.PerfAtWays(w, scale); got != want {
					t.Fatalf("phase %d scale %v ways %d: PerfAtWays %+v != PhasePerf %+v", pi, scale, w, got, want)
				}
			}
		}
	}
	if c := NewCurveCache(&phases[0], plat); c.Ways() != plat.Ways {
		t.Errorf("Ways() = %d, want %d", c.Ways(), plat.Ways)
	}
}
