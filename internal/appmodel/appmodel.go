// Package appmodel models application performance as a function of the
// LLC space an application receives.
//
// It substitutes for the SPEC CPU2006/2017 binaries the paper runs: each
// synthetic application is a sequence of phases, and each phase is
// described by (a) a base CPI covering everything that is not an L2 miss,
// (b) an LLC access intensity (APKI — accesses per kilo-instruction,
// i.e. L2 misses reaching the L3), (c) a memory-level-parallelism factor
// controlling how much DRAM latency the out-of-order core hides, and (d) a
// stack-distance locality profile giving the LLC hit ratio at any
// allocated size. From those, the model produces every signal the paper's
// policies consume: IPC, LLC misses per kilo-cycle (LLCMPKC), misses per
// kilo-instruction (MPKI), STALLS_L2_MISS-style stall fractions, and DRAM
// bandwidth demand — all as functions of cache space, and optionally
// under a bandwidth-contention latency inflation.
//
// The model is the standard linear CPI decomposition used by
// cache-partitioning studies (and by the authors' own PBBCache tool):
//
//	CPI(s) = BaseCPI + (APKI/1000)·[hit(s)·L3Hit + miss(s)·(Mem/MLP)·λ]
//
// where s is the allocated space, λ ≥ 1 is the bandwidth-contention
// inflation supplied by internal/sharing, and L3Hit/Mem are platform
// latencies.
package appmodel

import (
	"fmt"

	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/stackdist"
)

// Class is the paper's ground-truth application taxonomy (§3, Table 1).
type Class int

const (
	// ClassUnknown marks an application whose behaviour has not been
	// established yet (the runtime state right after spawn).
	ClassUnknown Class = iota
	// ClassLight is "light sharing": neither cache sensitive nor
	// aggressive; the working set fits the private levels.
	ClassLight
	// ClassStreaming is a contentious cache-insensitive aggressor.
	ClassStreaming
	// ClassSensitive experiences high performance drops when its LLC
	// share shrinks.
	ClassSensitive
)

func (c Class) String() string {
	switch c {
	case ClassLight:
		return "light"
	case ClassStreaming:
		return "streaming"
	case ClassSensitive:
		return "sensitive"
	default:
		return "unknown"
	}
}

// PhaseSpec describes one steady-state execution phase.
type PhaseSpec struct {
	Name string
	// DurationInsns is the phase length in retired instructions; 0 means
	// the phase lasts until the program ends.
	DurationInsns uint64
	// BaseCPI is the cycles-per-instruction with an infinite LLC
	// (includes L1/L2 behaviour).
	BaseCPI float64
	// APKI is LLC accesses (L2 misses) per kilo-instruction.
	APKI float64
	// MLP divides the exposed DRAM latency (≥1); 0 means use the
	// platform default.
	MLP float64
	// Locality is the LLC hit-ratio curve.
	Locality stackdist.Profile
}

// Validate reports an error for physically meaningless parameters.
func (p *PhaseSpec) Validate() error {
	if p.BaseCPI <= 0 {
		return fmt.Errorf("appmodel: phase %q: BaseCPI must be positive", p.Name)
	}
	if p.APKI < 0 {
		return fmt.Errorf("appmodel: phase %q: APKI must be non-negative", p.Name)
	}
	if p.MLP < 0 {
		return fmt.Errorf("appmodel: phase %q: MLP must be non-negative", p.Name)
	}
	return nil
}

// Spec is a complete synthetic application.
type Spec struct {
	Name string
	// Class is the ground-truth dominant class, used by workload
	// construction and validation tests (the policies must discover it
	// themselves).
	Class Class
	// Phases execute in order; if LoopPhases is set they repeat
	// cyclically, otherwise the last phase runs forever.
	Phases     []PhaseSpec
	LoopPhases bool
	// SizeFactor scales this application's per-run instruction quota
	// relative to the simulation-wide sim.Config.TargetInsns: the
	// kernel runs the app for round(TargetInsns·SizeFactor)
	// instructions per run (minimum 1). Zero and 1 both mean the
	// unscaled quota and are bit-identical to a build without the
	// field. Workload generators that draw heavy-tailed job sizes set
	// it on a per-arrival spec clone (scaling the phase durations by
	// the same factor, so a big job is the same program stretched, not
	// a different program).
	SizeFactor float64
}

// Validate checks the spec for consistency.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("appmodel: spec with empty name")
	}
	if s.SizeFactor < 0 {
		return fmt.Errorf("appmodel: spec %q: SizeFactor must be non-negative", s.Name)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("appmodel: spec %q has no phases", s.Name)
	}
	for i := range s.Phases {
		if err := s.Phases[i].Validate(); err != nil {
			return fmt.Errorf("spec %q: %w", s.Name, err)
		}
	}
	if s.LoopPhases {
		for i := range s.Phases {
			if s.Phases[i].DurationInsns == 0 {
				return fmt.Errorf("appmodel: spec %q loops but phase %d has no duration", s.Name, i)
			}
		}
	}
	return nil
}

// Phased reports whether the application has more than one phase.
func (s *Spec) Phased() bool { return len(s.Phases) > 1 }

// DominantPhase returns the application's longest phase (the first
// endless one if any) — the single-phase stand-in the static policies
// and the cluster placement layer use when they must characterize an
// application before running it.
func (s *Spec) DominantPhase() *PhaseSpec {
	best := 0
	var bestDur uint64
	for i := range s.Phases {
		d := s.Phases[i].DurationInsns
		if d == 0 {
			return &s.Phases[i]
		}
		if d > bestDur {
			bestDur = d
			best = i
		}
	}
	return &s.Phases[best]
}

// Perf is the model output at one operating point.
type Perf struct {
	CPI       float64
	IPC       float64
	MissRatio float64 // LLC miss ratio
	MPKC      float64 // LLC misses per kilo-cycle
	MPKI      float64 // LLC misses per kilo-instruction
	StallFrac float64 // STALLS_L2_MISS / cycles
	Bandwidth float64 // DRAM demand, bytes/second
}

// PhasePerf evaluates a phase at an allocated LLC space of cacheBytes
// under a bandwidth latency inflation memScale (1 = unloaded memory).
func PhasePerf(ph *PhaseSpec, plat *machine.Platform, cacheBytes uint64, memScale float64) Perf {
	if memScale < 1 {
		memScale = 1
	}
	mlp := ph.MLP
	if mlp <= 0 {
		mlp = plat.MLP
	}
	miss := ph.Locality.MissRatio(cacheBytes)
	hit := 1 - miss
	apki := ph.APKI
	memStall := float64(plat.MemCycles) / mlp * memScale
	stallPerAccess := hit*float64(plat.LLCHitCycles) + miss*memStall
	stallCPI := apki / 1000 * stallPerAccess
	cpi := ph.BaseCPI + stallCPI
	ipc := 1 / cpi
	mpki := apki * miss
	return Perf{
		CPI:       cpi,
		IPC:       ipc,
		MissRatio: miss,
		MPKC:      mpki * ipc, // misses/1k-insn × insn/cycle = misses/1k-cycle
		MPKI:      mpki,
		StallFrac: stallCPI / cpi,
		Bandwidth: mpki / 1000 * ipc * float64(plat.FreqHz) * float64(plat.LineBytes),
	}
}

// Instance tracks an application's progress through its phases at run
// time.
type Instance struct {
	Spec       *Spec
	phase      int
	intoPhase  uint64 // instructions retired inside the current phase
	totalInsns uint64
}

// NewInstance creates a fresh runtime instance of a spec.
func NewInstance(spec *Spec) *Instance { return &Instance{Spec: spec} }

// Phase returns the currently executing phase.
func (in *Instance) Phase() *PhaseSpec { return &in.Spec.Phases[in.phase] }

// PhaseIndex returns the index of the current phase.
func (in *Instance) PhaseIndex() int { return in.phase }

// TotalInstructions returns the instructions retired since creation (or
// the last Restart).
func (in *Instance) TotalInstructions() uint64 { return in.totalInsns }

// Advance retires insns instructions and moves through phase boundaries.
// It returns true if the current phase changed.
func (in *Instance) Advance(insns uint64) bool {
	in.totalInsns += insns
	changed := false
	for insns > 0 {
		ph := &in.Spec.Phases[in.phase]
		if ph.DurationInsns == 0 {
			// Terminal endless phase absorbs the rest.
			in.intoPhase += insns
			return changed
		}
		remain := ph.DurationInsns - in.intoPhase
		if insns < remain {
			in.intoPhase += insns
			return changed
		}
		insns -= remain
		in.intoPhase = 0
		if in.phase+1 < len(in.Spec.Phases) {
			in.phase++
			changed = true
		} else if in.Spec.LoopPhases {
			in.phase = 0
			changed = len(in.Spec.Phases) > 1 || changed
		} else {
			// Last non-looping phase continues past its nominal end.
			in.intoPhase = ph.DurationInsns
			return changed
		}
	}
	return changed
}

// IntoPhase returns the instructions retired inside the current phase —
// together with PhaseIndex and TotalInstructions it is the complete
// progress coordinate of an instance, which is what lets a migrated
// application resume on another machine exactly where it left off.
func (in *Instance) IntoPhase() uint64 { return in.intoPhase }

// SeekTo positions the instance at an explicit progress coordinate:
// phase index, instructions retired inside that phase, and total
// instructions retired since the last restart. It is the inverse of the
// (PhaseIndex, IntoPhase, TotalInstructions) accessors, used to restore
// a migrated application's progress on its destination machine.
func (in *Instance) SeekTo(phase int, intoPhase, total uint64) error {
	if phase < 0 || phase >= len(in.Spec.Phases) {
		return fmt.Errorf("appmodel: seek to phase %d of %d", phase, len(in.Spec.Phases))
	}
	if d := in.Spec.Phases[phase].DurationInsns; d > 0 && intoPhase > d {
		return fmt.Errorf("appmodel: seek %d instructions into a %d-instruction phase", intoPhase, d)
	}
	in.phase = phase
	in.intoPhase = intoPhase
	in.totalInsns = total
	return nil
}

// InstructionsToPhaseEnd returns how many instructions remain in the
// current phase (0 for an endless terminal phase).
func (in *Instance) InstructionsToPhaseEnd() uint64 {
	ph := in.Phase()
	if ph.DurationInsns == 0 {
		return 0
	}
	if in.intoPhase >= ph.DurationInsns {
		return 0
	}
	return ph.DurationInsns - in.intoPhase
}

// Restart resets per-run progress but keeps phase position — matching the
// paper's methodology where a program that finishes its instruction quota
// is immediately restarted ("the program is restarted repeatedly until
// the longest application completes three times", §5). Restarting the
// binary restarts its phases from the beginning.
func (in *Instance) Restart() {
	in.phase = 0
	in.intoPhase = 0
	in.totalInsns = 0
}
