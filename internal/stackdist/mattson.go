package stackdist

// Mattson-style reuse-distance profiler: builds a Profile from an address
// trace by maintaining an LRU stack of distinct lines and recording, for
// each access, how many distinct lines were touched since the previous
// access to the same line. This is the classical single-pass algorithm
// (Mattson et al., 1970). The stack is a move-to-front slice, so each
// access costs O(reuse depth) — cheap for the skewed traces real programs
// produce.

// Profiler accumulates reuse distances from a line-address stream.
type Profiler struct {
	lineBytes uint64
	stack     []uint64       // most recent first
	hist      map[int]uint64 // reuse distance (in lines) -> count
	cold      uint64         // first-touch accesses (infinite distance)
	total     uint64
}

// NewProfiler creates a profiler for a given line size.
func NewProfiler(lineBytes uint64) *Profiler {
	if lineBytes == 0 {
		lineBytes = 64
	}
	return &Profiler{
		lineBytes: lineBytes,
		hist:      map[int]uint64{},
	}
}

// Access records one byte-address access.
func (p *Profiler) Access(addr uint64) {
	line := addr / p.lineBytes
	p.total++
	for i, l := range p.stack {
		if l == line {
			p.hist[i]++
			copy(p.stack[1:i+1], p.stack[:i])
			p.stack[0] = line
			return
		}
	}
	p.cold++
	p.stack = append(p.stack, 0)
	copy(p.stack[1:], p.stack)
	p.stack[0] = line
}

// Total returns the number of recorded accesses.
func (p *Profiler) Total() uint64 { return p.total }

// ColdMisses returns the number of first-touch accesses.
func (p *Profiler) ColdMisses() uint64 { return p.cold }

// Profile converts the accumulated histogram into a hit-ratio curve with
// knots at the given cache sizes (bytes). Sizes are in lines internally:
// an access with reuse distance d hits in any fully-associative LRU cache
// holding more than d lines.
func (p *Profiler) Profile(sizes []uint64) Profile {
	if p.total == 0 {
		return Profile{}
	}
	pts := make([]Point, 0, len(sizes))
	for _, s := range sizes {
		lines := s / p.lineBytes
		var hits uint64
		for d, c := range p.hist {
			if uint64(d) < lines {
				hits += c
			}
		}
		pts = append(pts, Point{Bytes: s, HitRatio: float64(hits) / float64(p.total)})
	}
	return MustNew(pts)
}

// MissRatioAt returns the simulated miss ratio for a fully-associative
// LRU cache with the given capacity in lines.
func (p *Profiler) MissRatioAt(lines uint64) float64 {
	if p.total == 0 {
		return 1
	}
	var hits uint64
	for d, c := range p.hist {
		if uint64(d) < lines {
			hits += c
		}
	}
	return 1 - float64(hits)/float64(p.total)
}
