// Package stackdist models application cache locality with reuse (stack)
// distance profiles.
//
// Under LRU, an access hits in a cache of size S iff its reuse distance —
// the number of distinct lines touched since the previous access to the
// same line — is smaller than S. A program's hit ratio as a function of
// cache size is therefore the CDF of its reuse-distance distribution. This
// is the same class of model PBBCache-style tools use to predict per-size
// performance from offline profiles, and it is how we substitute for the
// SPEC CPU binaries the paper profiles on real hardware: each synthetic
// application carries a Profile, and every metric the policies observe
// (IPC, misses, stalls vs. allocated ways) is derived from it.
//
// Profiles are piecewise-linear, monotone nondecreasing hit-ratio curves
// over cache size in bytes. The package also provides a Mattson-style
// profiler that builds a Profile from an address trace, which is used to
// cross-validate the analytic profiles against the trace-driven LLC
// simulator in internal/cache.
package stackdist

import (
	"fmt"
	"sort"
)

// Point is one knot of a piecewise-linear hit-ratio curve.
type Point struct {
	Bytes    uint64  // cache size
	HitRatio float64 // fraction of accesses that hit at this size
}

// Profile is a monotone piecewise-linear hit-ratio curve. The zero value
// is a pure-streaming profile (hit ratio 0 at every size).
type Profile struct {
	points []Point
}

// New builds a profile from knots. Knots are sorted by size; hit ratios
// must be in [0,1] and nondecreasing with size.
func New(points []Point) (Profile, error) {
	ps := make([]Point, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Bytes < ps[j].Bytes })
	prev := 0.0
	for i, p := range ps {
		if p.HitRatio < 0 || p.HitRatio > 1 {
			return Profile{}, fmt.Errorf("stackdist: hit ratio %v out of [0,1]", p.HitRatio)
		}
		if p.HitRatio < prev {
			return Profile{}, fmt.Errorf("stackdist: hit ratio decreases at knot %d", i)
		}
		if i > 0 && p.Bytes == ps[i-1].Bytes {
			return Profile{}, fmt.Errorf("stackdist: duplicate knot at %d bytes", p.Bytes)
		}
		prev = p.HitRatio
	}
	return Profile{points: ps}, nil
}

// MustNew is New that panics on error; for static catalog construction.
func MustNew(points []Point) Profile {
	p, err := New(points)
	if err != nil {
		panic(err)
	}
	return p
}

// HitRatio returns the fraction of accesses that hit in a cache of the
// given size, interpolating linearly between knots. Below the first knot
// the curve ramps linearly from (0,0); beyond the last knot it is flat
// (the residual misses are compulsory/streaming). Knot lookup is a binary
// search, so the cost is O(log knots) even for trace-derived profiles
// with hundreds of knots.
func (p Profile) HitRatio(bytes uint64) float64 {
	if len(p.points) == 0 {
		return 0
	}
	first := p.points[0]
	if bytes <= first.Bytes {
		if first.Bytes == 0 {
			return first.HitRatio
		}
		return first.HitRatio * float64(bytes) / float64(first.Bytes)
	}
	last := p.points[len(p.points)-1]
	if bytes >= last.Bytes {
		return last.HitRatio
	}
	// Invariant: points[lo-1].Bytes < bytes <= points[hi].Bytes.
	lo, hi := 1, len(p.points)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bytes <= p.points[mid].Bytes {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	hiP := p.points[lo]
	loP := p.points[lo-1]
	frac := float64(bytes-loP.Bytes) / float64(hiP.Bytes-loP.Bytes)
	return loP.HitRatio + frac*(hiP.HitRatio-loP.HitRatio)
}

// MissRatio returns 1 - HitRatio.
func (p Profile) MissRatio(bytes uint64) float64 { return 1 - p.HitRatio(bytes) }

// MaxHitRatio returns the hit ratio with unbounded cache.
func (p Profile) MaxHitRatio() float64 {
	if len(p.points) == 0 {
		return 0
	}
	return p.points[len(p.points)-1].HitRatio
}

// Knots returns a copy of the profile's knots.
func (p Profile) Knots() []Point {
	out := make([]Point, len(p.points))
	copy(out, p.points)
	return out
}

// Streaming returns a profile for a program that streams through a
// footprint far larger than any cache: a tiny fraction of short-distance
// reuse (spatial locality already filtered by L1/L2), everything else
// compulsory misses.
func Streaming(residualHit float64) Profile {
	if residualHit < 0 {
		residualHit = 0
	}
	if residualHit > 0.2 {
		residualHit = 0.2
	}
	return MustNew([]Point{{Bytes: 64 * 1024, HitRatio: residualHit}})
}

// WorkingSet returns a profile with a single working set: the hit ratio
// ramps to maxHit as the cache grows to wsBytes, with a soft knee
// (three-segment ramp) so slowdown curves are smooth like measured ones.
func WorkingSet(wsBytes uint64, maxHit float64) Profile {
	if wsBytes < 4096 {
		wsBytes = 4096 // avoid degenerate/duplicate knots
	}
	return MustNew([]Point{
		{Bytes: wsBytes / 4, HitRatio: maxHit * 0.45},
		{Bytes: wsBytes / 2, HitRatio: maxHit * 0.72},
		{Bytes: wsBytes, HitRatio: maxHit * 0.95},
		{Bytes: wsBytes + wsBytes/2, HitRatio: maxHit},
	})
}

// Component is a weighted sub-working-set for Mix.
type Component struct {
	Weight  float64 // fraction of accesses belonging to this component
	Profile Profile
}

// Mix combines component profiles: the hit ratio at every size is the
// weighted sum of the component hit ratios. Weights should sum to ≤ 1;
// the remainder is treated as never-reused (streaming) accesses.
func Mix(components ...Component) Profile {
	sizes := map[uint64]bool{}
	for _, c := range components {
		for _, k := range c.Profile.points {
			sizes[k.Bytes] = true
		}
	}
	if len(sizes) == 0 {
		return Profile{}
	}
	all := make([]uint64, 0, len(sizes))
	for s := range sizes {
		all = append(all, s)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pts := make([]Point, 0, len(all))
	for _, s := range all {
		h := 0.0
		for _, c := range components {
			h += c.Weight * c.Profile.HitRatio(s)
		}
		if h > 1 {
			h = 1
		}
		pts = append(pts, Point{Bytes: s, HitRatio: h})
	}
	// Enforce monotonicity against floating-point jitter.
	for i := 1; i < len(pts); i++ {
		if pts[i].HitRatio < pts[i-1].HitRatio {
			pts[i].HitRatio = pts[i-1].HitRatio
		}
	}
	return MustNew(pts)
}
