package stackdist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const mb = 1 << 20

func TestNewValidation(t *testing.T) {
	if _, err := New([]Point{{Bytes: 1, HitRatio: -0.1}}); err == nil {
		t.Error("negative hit ratio accepted")
	}
	if _, err := New([]Point{{Bytes: 1, HitRatio: 1.1}}); err == nil {
		t.Error("hit ratio > 1 accepted")
	}
	if _, err := New([]Point{{Bytes: 1, HitRatio: 0.5}, {Bytes: 2, HitRatio: 0.4}}); err == nil {
		t.Error("decreasing curve accepted")
	}
	if _, err := New([]Point{{Bytes: 5, HitRatio: 0.5}, {Bytes: 5, HitRatio: 0.5}}); err == nil {
		t.Error("duplicate knot accepted")
	}
	if _, err := New([]Point{{Bytes: 2, HitRatio: 0.8}, {Bytes: 1, HitRatio: 0.3}}); err != nil {
		t.Error("unsorted (but valid) input rejected:", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew([]Point{{Bytes: 1, HitRatio: 2}})
}

func TestZeroProfileStreams(t *testing.T) {
	var p Profile
	if p.HitRatio(100*mb) != 0 || p.MissRatio(1) != 1 || p.MaxHitRatio() != 0 {
		t.Error("zero profile should never hit")
	}
}

func TestHitRatioInterpolation(t *testing.T) {
	p := MustNew([]Point{{Bytes: 10, HitRatio: 0.2}, {Bytes: 30, HitRatio: 0.8}})
	cases := []struct {
		bytes uint64
		want  float64
	}{
		{0, 0}, {5, 0.1}, {10, 0.2}, {20, 0.5}, {30, 0.8}, {100, 0.8},
	}
	for _, c := range cases {
		if got := p.HitRatio(c.bytes); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("HitRatio(%d) = %v, want %v", c.bytes, got, c.want)
		}
	}
}

func TestStreamingProfile(t *testing.T) {
	p := Streaming(0.05)
	if got := p.HitRatio(27 * mb); math.Abs(got-0.05) > 1e-9 {
		t.Errorf("streaming hit ratio = %v", got)
	}
	// Clamping.
	if Streaming(-1).MaxHitRatio() != 0 {
		t.Error("negative residual not clamped")
	}
	if Streaming(0.9).MaxHitRatio() > 0.2 {
		t.Error("huge residual not clamped")
	}
}

func TestWorkingSetShape(t *testing.T) {
	p := WorkingSet(16*mb, 0.9)
	full := p.HitRatio(32 * mb)
	if math.Abs(full-0.9) > 1e-9 {
		t.Errorf("asymptotic hit ratio = %v", full)
	}
	small := p.HitRatio(1 * mb)
	if small >= full || small <= 0 {
		t.Errorf("small-cache hit ratio %v not between 0 and %v", small, full)
	}
	// Monotone in size.
	prev := -1.0
	for s := uint64(0); s <= 40*mb; s += mb / 2 {
		h := p.HitRatio(s)
		if h < prev {
			t.Fatalf("hit ratio decreases at %d bytes", s)
		}
		prev = h
	}
	if WorkingSet(0, 0.5).MaxHitRatio() != 0.5 {
		t.Error("zero working set not clamped")
	}
}

func TestMix(t *testing.T) {
	p := Mix(
		Component{Weight: 0.5, Profile: WorkingSet(1*mb, 1.0)},
		Component{Weight: 0.3, Profile: WorkingSet(20*mb, 1.0)},
	)
	// At huge sizes, hit ratio -> 0.8 (0.2 streaming remainder).
	if got := p.HitRatio(100 * mb); math.Abs(got-0.8) > 0.01 {
		t.Errorf("mixed asymptote = %v", got)
	}
	// At 2 MB the small WS is fully resident, the big one partially.
	got := p.HitRatio(2 * mb)
	if got < 0.5 || got > 0.7 {
		t.Errorf("mixed midpoint = %v", got)
	}
	if Mix().MaxHitRatio() != 0 {
		t.Error("empty mix should be streaming")
	}
}

func TestProfilerLoopTrace(t *testing.T) {
	// A loop over N lines has reuse distance N-1 for every non-cold access:
	// it hits iff the cache holds >= N lines.
	const lines = 64
	pr := NewProfiler(64)
	for it := 0; it < 10; it++ {
		for i := 0; i < lines; i++ {
			pr.Access(uint64(i) * 64)
		}
	}
	if pr.Total() != 640 || pr.ColdMisses() != lines {
		t.Fatalf("total=%d cold=%d", pr.Total(), pr.ColdMisses())
	}
	if mr := pr.MissRatioAt(lines); mr > 0.11 {
		t.Errorf("miss ratio with full-size cache = %v", mr)
	}
	if mr := pr.MissRatioAt(lines - 1); mr != 1 {
		t.Errorf("miss ratio with cache one line short = %v, want 1 (LRU loop thrashing)", mr)
	}
}

func TestProfilerProfileKnots(t *testing.T) {
	pr := NewProfiler(64)
	// Heavy reuse of 8 lines plus a cold stream.
	for i := 0; i < 2000; i++ {
		pr.Access(uint64(i%8) * 64)
		pr.Access(uint64(1<<30) + uint64(i)*64)
	}
	p := pr.Profile([]uint64{512, 1024, 64 * 1024})
	if p.HitRatio(64*1024) < 0.45 || p.HitRatio(64*1024) > 0.55 {
		t.Errorf("hit ratio at large size = %v, want ~0.5", p.HitRatio(64*1024))
	}
	if pr.MissRatioAt(0) != 1 {
		t.Error("zero-size cache must miss always")
	}
}

func TestProfilerEmpty(t *testing.T) {
	pr := NewProfiler(0) // exercises default line size
	if pr.MissRatioAt(10) != 1 {
		t.Error("empty profiler should report all misses")
	}
	if got := pr.Profile([]uint64{1024}); got.MaxHitRatio() != 0 {
		t.Error("empty profiler profile should stream")
	}
}

// Property: HitRatio is monotone nondecreasing in cache size for random
// valid profiles.
func TestQuickMonotonicity(t *testing.T) {
	f := func(seed int64, s1, s2 uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 1
		pts := make([]Point, 0, n)
		h := 0.0
		size := uint64(0)
		for i := 0; i < n; i++ {
			size += uint64(rng.Intn(1000000) + 1)
			h += rng.Float64() * (1 - h) * 0.5
			pts = append(pts, Point{Bytes: size, HitRatio: h})
		}
		p := MustNew(pts)
		a, b := uint64(s1), uint64(s2)
		if a > b {
			a, b = b, a
		}
		return p.HitRatio(a) <= p.HitRatio(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mix hit ratio is bounded by the sum of the weights.
func TestQuickMixBounded(t *testing.T) {
	f := func(w1c, w2c uint8, sz uint32) bool {
		w1 := float64(w1c%100) / 200
		w2 := float64(w2c%100) / 200
		p := Mix(
			Component{Weight: w1, Profile: WorkingSet(4*mb, 1)},
			Component{Weight: w2, Profile: WorkingSet(16*mb, 1)},
		)
		h := p.HitRatio(uint64(sz))
		return h <= w1+w2+1e-9 && h >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mattson profiler hit ratio is monotone in cache size.
func TestQuickProfilerMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pr := NewProfiler(64)
		for i := 0; i < 500; i++ {
			pr.Access(uint64(rng.Intn(128)) * 64)
		}
		prev := 1.0
		for lines := uint64(0); lines <= 160; lines += 16 {
			mr := pr.MissRatioAt(lines)
			if mr > prev+1e-12 {
				return false
			}
			prev = mr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// linearHitRatio is the pre-binary-search reference implementation.
func linearHitRatio(p Profile, bytes uint64) float64 {
	pts := p.Knots()
	if len(pts) == 0 {
		return 0
	}
	first := pts[0]
	if bytes <= first.Bytes {
		if first.Bytes == 0 {
			return first.HitRatio
		}
		return first.HitRatio * float64(bytes) / float64(first.Bytes)
	}
	for i := 1; i < len(pts); i++ {
		hi := pts[i]
		if bytes <= hi.Bytes {
			lo := pts[i-1]
			frac := float64(bytes-lo.Bytes) / float64(hi.Bytes-lo.Bytes)
			return lo.HitRatio + frac*(hi.HitRatio-lo.HitRatio)
		}
	}
	return pts[len(pts)-1].HitRatio
}

func TestHitRatioBinarySearchMatchesLinearScan(t *testing.T) {
	profiles := []Profile{
		{},
		Streaming(0.05),
		WorkingSet(16<<20, 0.9),
		MustNew([]Point{{Bytes: 0, HitRatio: 0.1}, {Bytes: 1 << 20, HitRatio: 0.5}}),
		MustNew(func() []Point {
			// Many-knot profile: exercise deep binary searches.
			var pts []Point
			for i := 0; i < 257; i++ {
				pts = append(pts, Point{Bytes: uint64(i+1) * 4096, HitRatio: float64(i) / 300})
			}
			return pts
		}()),
	}
	for pi, p := range profiles {
		for _, bytes := range []uint64{0, 1, 4095, 4096, 4097, 100_000, 1 << 20, 1<<20 + 1, 16 << 20, 1 << 30} {
			want := linearHitRatio(p, bytes)
			if got := p.HitRatio(bytes); got != want {
				t.Errorf("profile %d at %d bytes: binary %v != linear %v", pi, bytes, got, want)
			}
		}
		// Dense sweep across every knot boundary.
		for _, k := range p.Knots() {
			for d := -2; d <= 2; d++ {
				b := k.Bytes + uint64(d) // underflow at 0 is fine (wraps to huge; still must agree)
				if k.Bytes == 0 && d < 0 {
					continue
				}
				want := linearHitRatio(p, b)
				if got := p.HitRatio(b); got != want {
					t.Errorf("profile %d at knot±%d (%d bytes): binary %v != linear %v", pi, d, b, got, want)
				}
			}
		}
	}
}
