package stackdist

import "encoding/json"

// MarshalJSON serializes the profile as its knot list. Knot fields are a
// uint64 and a float64, both of which encoding/json round-trips exactly
// (shortest-representation floats), so a profile survives a checkpoint
// cycle bit-identically.
func (p Profile) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.points)
}

// UnmarshalJSON rebuilds the profile from a knot list via New, so a
// hand-edited checkpoint cannot smuggle in a non-monotone curve.
func (p *Profile) UnmarshalJSON(data []byte) error {
	var pts []Point
	if err := json.Unmarshal(data, &pts); err != nil {
		return err
	}
	if len(pts) == 0 {
		*p = Profile{} // canonical zero value, same as before marshaling
		return nil
	}
	np, err := New(pts)
	if err != nil {
		return err
	}
	*p = np
	return nil
}
