// Package lookahead implements UCP's lookahead way-distribution algorithm
// (Qureshi & Patt, MICRO 2006), the greedy marginal-utility allocator
// both KPart and LFOC build on.
//
// Given per-candidate utility curves U[i][w] — the benefit candidate i
// derives from owning exactly w ways — the algorithm starts every
// candidate at one way and repeatedly awards a block of ways to the
// candidate with the highest marginal utility per way, looking ahead past
// plateaus (the "lookahead" in the name: a candidate whose curve is flat
// for two ways and then jumps still competes with its best utility/ways
// ratio over any block size).
//
// Utilities are int64 and all comparisons are exact (cross-multiplied),
// so the package is safe to call from the floating-point-free LFOC core:
// UCP uses misses-saved as utility; LFOC passes fixed-point
// slowdown-reduction curves (§4.1: "using as input the slowdown curve for
// each application"); KPart passes scaled miss-curve deltas.
package lookahead

import "fmt"

// Allocate distributes totalWays among len(util) candidates, one curve
// per candidate, indexed by way count (index 0 is ignored; indices
// 1..totalWays must be present). Every candidate receives at least one
// way. Utility curves should be monotone nondecreasing; the allocation
// maximizes greedy marginal utility per way.
func Allocate(util [][]int64, totalWays int) ([]int, error) {
	n := len(util)
	if n == 0 {
		return nil, fmt.Errorf("lookahead: no candidates")
	}
	if totalWays < n {
		return nil, fmt.Errorf("lookahead: %d ways cannot give %d candidates one way each", totalWays, n)
	}
	for i, u := range util {
		if len(u) < totalWays+1 {
			return nil, fmt.Errorf("lookahead: candidate %d has a %d-entry curve, need %d", i, len(u), totalWays+1)
		}
	}

	alloc := make([]int, n)
	for i := range alloc {
		alloc[i] = 1
	}
	balance := totalWays - n

	for balance > 0 {
		winner, winBlock := -1, 0
		var winGain int64 // gain of winner over winBlock ways
		for i := 0; i < n; i++ {
			// Best marginal utility per way over any feasible block.
			base := util[i][alloc[i]]
			for d := 1; d <= balance; d++ {
				gain := util[i][alloc[i]+d] - base
				if gain < 0 {
					gain = 0
				}
				// Compare gain/d > winGain/winBlock exactly.
				if winner == -1 || gain*int64(winBlock) > winGain*int64(d) {
					winner, winBlock, winGain = i, d, gain
				}
			}
		}
		if winGain == 0 {
			// No candidate benefits from more ways: spread the remainder
			// round-robin so no way is left unassigned (unowned ways
			// would be wasted capacity under CAT).
			for i := 0; balance > 0; i = (i + 1) % n {
				alloc[i]++
				balance--
			}
			break
		}
		alloc[winner] += winBlock
		balance -= winBlock
	}
	return alloc, nil
}

// SlowdownUtility converts a slowdown curve (fixed-point or otherwise
// scaled integers, higher = slower, indexed by ways with index 0 unused)
// into the utility curve LFOC feeds to Allocate: the slowdown *reduction*
// relative to owning a single way. It is monotone nondecreasing when the
// slowdown curve is monotone nonincreasing.
func SlowdownUtility(slowdown []int64) []int64 {
	out := make([]int64, len(slowdown))
	if len(slowdown) < 2 {
		return out
	}
	base := slowdown[1]
	for w := 1; w < len(slowdown); w++ {
		d := base - slowdown[w]
		if d < 0 {
			d = 0
		}
		out[w] = d
	}
	return out
}

// MissesUtility converts a misses-per-kilo-instruction curve (scaled
// integers, indexed by ways) into UCP's utility: misses avoided relative
// to one way.
func MissesUtility(mpki []int64) []int64 {
	out := make([]int64, len(mpki))
	if len(mpki) < 2 {
		return out
	}
	base := mpki[1]
	for w := 1; w < len(mpki); w++ {
		d := base - mpki[w]
		if d < 0 {
			d = 0
		}
		out[w] = d
	}
	return out
}
