package lookahead

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// curve builds a utility curve from explicit values for ways 1..n.
func curve(vals ...int64) []int64 {
	out := make([]int64, len(vals)+1)
	copy(out[1:], vals)
	return out
}

func TestAllocateErrors(t *testing.T) {
	if _, err := Allocate(nil, 4); err == nil {
		t.Error("no candidates accepted")
	}
	if _, err := Allocate([][]int64{curve(0, 0), curve(0, 0)}, 1); err == nil {
		t.Error("fewer ways than candidates accepted")
	}
	if _, err := Allocate([][]int64{curve(0, 0)}, 5); err == nil {
		t.Error("short curve accepted")
	}
}

func TestAllocateSum(t *testing.T) {
	util := [][]int64{
		curve(0, 10, 15, 18, 20, 21, 22, 23, 23, 23, 23),
		curve(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
		curve(0, 50, 60, 62, 63, 63, 63, 63, 63, 63, 63),
	}
	alloc, err := Allocate(util, 11)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for i, a := range alloc {
		if a < 1 {
			t.Errorf("candidate %d got %d ways", i, a)
		}
		sum += a
	}
	if sum != 11 {
		t.Errorf("allocated %d ways, want 11", sum)
	}
}

func TestGreedyFavorsSteepCurve(t *testing.T) {
	// Candidate 0 gains a lot from extra ways; candidate 1 gains nothing.
	util := [][]int64{
		curve(0, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000),
		curve(0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0),
	}
	alloc, err := Allocate(util, 11)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0] != 10 || alloc[1] != 1 {
		t.Errorf("alloc = %v, want [10 1]", alloc)
	}
}

func TestLookaheadSkipsPlateau(t *testing.T) {
	// Candidate 0: flat for 2 ways then a big jump at 4 ways — classic
	// lookahead case. Candidate 1: small steady gains.
	util := [][]int64{
		curve(0, 0, 0, 900, 900, 900, 900, 900, 900, 900, 900),
		curve(0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
	}
	alloc, err := Allocate(util, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Candidate 0 must receive at least the 4 ways needed to reach its
	// utility cliff (900/3 ways beats 10/way).
	if alloc[0] < 4 {
		t.Errorf("lookahead failed to cross plateau: alloc = %v", alloc)
	}
}

func TestAllFlatSpreadsRemainder(t *testing.T) {
	util := [][]int64{
		curve(0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0),
		curve(0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0),
	}
	alloc, err := Allocate(util, 11)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0]+alloc[1] != 11 {
		t.Errorf("flat-curve allocation dropped ways: %v", alloc)
	}
	if alloc[0] < 5 || alloc[1] < 5 {
		t.Errorf("flat-curve allocation unbalanced: %v", alloc)
	}
}

func TestSingleCandidateGetsEverything(t *testing.T) {
	util := [][]int64{curve(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)}
	alloc, err := Allocate(util, 11)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0] != 11 {
		t.Errorf("alloc = %v", alloc)
	}
}

func TestSlowdownUtility(t *testing.T) {
	// Slowdown (milli): 2000 at 1 way, 1500, 1100, 1000...
	sd := curve(2000, 1500, 1100, 1000, 1000, 1000, 1000, 1000, 1000, 1000, 1000)
	u := SlowdownUtility(sd)
	if u[1] != 0 || u[2] != 500 || u[3] != 900 || u[4] != 1000 || u[11] != 1000 {
		t.Errorf("utility = %v", u)
	}
	// Non-monotone slowdown is clamped to zero utility, never negative.
	weird := curve(1000, 1200, 900)
	uw := SlowdownUtility(weird)
	if uw[2] != 0 || uw[3] != 100 {
		t.Errorf("clamped utility = %v", uw)
	}
	if got := SlowdownUtility([]int64{5}); len(got) != 1 || got[0] != 0 {
		t.Error("degenerate slowdown curve mishandled")
	}
}

func TestMissesUtility(t *testing.T) {
	mpki := curve(50, 30, 10, 5, 5, 5, 5, 5, 5, 5, 5)
	u := MissesUtility(mpki)
	if u[1] != 0 || u[2] != 20 || u[3] != 40 || u[4] != 45 {
		t.Errorf("utility = %v", u)
	}
	if got := MissesUtility(nil); len(got) != 0 {
		t.Error("nil curve mishandled")
	}
}

// The combination used by LFOC: two sensitive apps with different
// steepness; the steeper one must receive more ways.
func TestFairnessAllocationShape(t *testing.T) {
	steep := curve(2500, 1800, 1400, 1150, 1050, 1000, 1000, 1000, 1000, 1000, 1000)
	mild := curve(1200, 1100, 1050, 1000, 1000, 1000, 1000, 1000, 1000, 1000, 1000)
	util := [][]int64{SlowdownUtility(steep), SlowdownUtility(mild)}
	alloc, err := Allocate(util, 9)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0] <= alloc[1] {
		t.Errorf("steeper slowdown curve should earn more ways: %v", alloc)
	}
}

// Property: allocations always sum to totalWays with every candidate >= 1.
func TestQuickAllocationConservation(t *testing.T) {
	f := func(seed int64, n8, ways8 uint8) bool {
		n := int(n8%6) + 1
		ways := n + int(ways8%12)
		rng := rand.New(rand.NewSource(seed))
		util := make([][]int64, n)
		for i := range util {
			u := make([]int64, ways+1)
			var v int64
			for w := 1; w <= ways; w++ {
				v += int64(rng.Intn(100))
				u[w] = v
			}
			util[i] = u
		}
		alloc, err := Allocate(util, ways)
		if err != nil {
			return false
		}
		sum := 0
		for _, a := range alloc {
			if a < 1 {
				return false
			}
			sum += a
		}
		return sum == ways
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for two candidates, giving one a uniformly dominating curve
// never earns it fewer ways than the dominated candidate.
func TestQuickDominanceRespected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const ways = 11
		weak := make([]int64, ways+1)
		strong := make([]int64, ways+1)
		var v int64
		for w := 1; w <= ways; w++ {
			v += int64(rng.Intn(20))
			weak[w] = v
			strong[w] = v * 3 // strictly steeper everywhere
		}
		alloc, err := Allocate([][]int64{strong, weak}, ways)
		if err != nil {
			return false
		}
		return alloc[0] >= alloc[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
