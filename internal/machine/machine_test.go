package machine

import "testing"

func TestSkylakeMatchesPaper(t *testing.T) {
	p := Skylake()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Ways != 11 {
		t.Errorf("ways = %d, paper: 11", p.Ways)
	}
	if p.LLCBytes() != 28_835_840 { // 27.5 MiB
		t.Errorf("LLC = %d, paper: 27.5 MiB", p.LLCBytes())
	}
	if p.FreqHz != 2_000_000_000 {
		t.Errorf("freq = %d, paper: 2 GHz", p.FreqHz)
	}
	if p.WaysToBytes(2) != 2*2_621_440 {
		t.Error("WaysToBytes wrong")
	}
}

func TestSmall(t *testing.T) {
	p := Small(4, 6)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Ways != 4 || p.Cores != 6 {
		t.Errorf("small = %d ways %d cores", p.Ways, p.Cores)
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	mk := func(mut func(*Platform)) *Platform {
		p := Skylake()
		mut(p)
		return p
	}
	cases := []struct {
		name string
		p    *Platform
	}{
		{"cores", mk(func(p *Platform) { p.Cores = 0 })},
		{"ways", mk(func(p *Platform) { p.Ways = 0 })},
		{"waybytes", mk(func(p *Platform) { p.WayBytes = 0 })},
		{"linebytes", mk(func(p *Platform) { p.LineBytes = 0 })},
		{"linedivides", mk(func(p *Platform) { p.LineBytes = 7 })},
		{"freq", mk(func(p *Platform) { p.FreqHz = 0 })},
		{"numcos", mk(func(p *Platform) { p.NumCOS = 0 })},
		{"mincbm-low", mk(func(p *Platform) { p.MinCBMBits = 0 })},
		{"mincbm-high", mk(func(p *Platform) { p.MinCBMBits = 99 })},
		{"mlp", mk(func(p *Platform) { p.MLP = 0 })},
	}
	for _, c := range cases {
		if c.p.Validate() == nil {
			t.Errorf("%s: invalid platform accepted", c.name)
		}
	}
}
