// Package machine describes the modeled multicore platform.
//
// The paper's testbed is an Intel Xeon Gold 6138 "Skylake" server: 2 GHz
// cores, an 11-way 27.5 MB shared L3 that supports way-partitioning via
// Intel CAT (one way = 2.5 MB), 1 MB private L2 and 64 KB private L1 per
// core. Platform captures the parameters of that machine that are visible
// to the cache-clustering policies and to the performance model.
package machine

import "fmt"

// Platform describes a CAT-capable multicore.
type Platform struct {
	Name string

	// Cores is the number of physical cores (one application per core in
	// the paper's methodology).
	Cores int

	// FreqHz is the core clock frequency.
	FreqHz uint64

	// Ways is the LLC associativity (number of CAT-partitionable ways).
	Ways int

	// WayBytes is the capacity of a single LLC way.
	WayBytes uint64

	// LineBytes is the cache line size.
	LineBytes uint64

	// NumCOS is the number of CAT classes of service the hardware exposes.
	NumCOS int

	// MinCBMBits is the minimum number of contiguous bits a capacity
	// bitmask must contain (1 on Skylake server parts).
	MinCBMBits int

	// LLCHitCycles is the additional latency (cycles) of an access served
	// by the LLC (i.e. an L2 miss that hits in L3).
	LLCHitCycles uint64

	// MemCycles is the additional latency (cycles) of an access served by
	// DRAM (an LLC miss), unloaded.
	MemCycles uint64

	// MaxBandwidth is the saturating DRAM bandwidth in bytes/second.
	MaxBandwidth uint64

	// MLP is the average memory-level parallelism the out-of-order core
	// extracts; effective stall per miss is MemCycles/MLP.
	MLP float64
}

// LLCBytes returns the total LLC capacity.
func (p *Platform) LLCBytes() uint64 { return uint64(p.Ways) * p.WayBytes }

// WaysToBytes converts a way count to bytes of LLC capacity.
func (p *Platform) WaysToBytes(ways int) uint64 { return uint64(ways) * p.WayBytes }

// Validate reports an error if the platform description is inconsistent.
func (p *Platform) Validate() error {
	switch {
	case p.Cores <= 0:
		return fmt.Errorf("machine: %s: Cores must be positive, got %d", p.Name, p.Cores)
	case p.Ways <= 0:
		return fmt.Errorf("machine: %s: Ways must be positive, got %d", p.Name, p.Ways)
	case p.WayBytes == 0:
		return fmt.Errorf("machine: %s: WayBytes must be positive", p.Name)
	case p.LineBytes == 0 || p.WayBytes%p.LineBytes != 0:
		return fmt.Errorf("machine: %s: LineBytes must divide WayBytes", p.Name)
	case p.FreqHz == 0:
		return fmt.Errorf("machine: %s: FreqHz must be positive", p.Name)
	case p.NumCOS < 1:
		return fmt.Errorf("machine: %s: NumCOS must be at least 1", p.Name)
	case p.MinCBMBits < 1 || p.MinCBMBits > p.Ways:
		return fmt.Errorf("machine: %s: MinCBMBits out of range", p.Name)
	case p.MLP <= 0:
		return fmt.Errorf("machine: %s: MLP must be positive", p.Name)
	}
	return nil
}

// Skylake returns the paper's experimental platform: a 20-core (the paper
// uses up to 16 applications) Xeon Gold 6138 with an 11-way 27.5 MB LLC.
func Skylake() *Platform {
	return &Platform{
		Name:       "xeon-gold-6138",
		Cores:      20,
		FreqHz:     2_000_000_000,
		Ways:       11,
		WayBytes:   2_621_440, // 2.5 MiB (27.5 MiB / 11 ways)
		LineBytes:  64,
		NumCOS:     16,
		MinCBMBits: 1,
		// Exposed (non-overlapped) stall cycles per L3 hit; raw L3 latency
		// is ~40 cycles but the OoO window hides most of it.
		LLCHitCycles: 12,
		MemCycles:    220,
		// Sustainable random-access read bandwidth under load; well below
		// the theoretical channel peak, as on the real machine.
		MaxBandwidth: 20_000_000_000,
		MLP:          4.0,
	}
}

// Small returns a reduced platform (fewer ways, smaller cache) that keeps
// tests fast while preserving the ways/apps ratio regimes the paper studies.
func Small(ways, cores int) *Platform {
	p := Skylake()
	p.Name = fmt.Sprintf("small-%dw-%dc", ways, cores)
	p.Ways = ways
	p.Cores = cores
	return p
}
