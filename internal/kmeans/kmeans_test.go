package kmeans

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClusterErrors(t *testing.T) {
	if _, err := Cluster(nil, 1); err == nil {
		t.Error("empty values accepted")
	}
	if _, err := Cluster([]float64{1, 2}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Cluster([]float64{1, 2}, 3); err == nil {
		t.Error("k>n accepted")
	}
}

func TestClusterK1(t *testing.T) {
	r, err := Cluster([]float64{1, 5, 9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 1 || r.Centroids[0] != 5 {
		t.Errorf("result = %+v", r)
	}
	for _, a := range r.Assignments {
		if a != 0 {
			t.Error("all values should be in cluster 0")
		}
	}
}

func TestWellSeparatedGroups(t *testing.T) {
	// Two obvious groups: ~0.1 and ~0.9.
	values := []float64{0.1, 0.12, 0.08, 0.9, 0.88, 0.93}
	r, err := Cluster(values, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 2 {
		t.Fatalf("K = %d", r.K)
	}
	// First three in the low cluster (index 0 after canonicalization).
	for i := 0; i < 3; i++ {
		if r.Assignments[i] != 0 {
			t.Errorf("value %d assigned to %d", i, r.Assignments[i])
		}
	}
	for i := 3; i < 6; i++ {
		if r.Assignments[i] != 1 {
			t.Errorf("value %d assigned to %d", i, r.Assignments[i])
		}
	}
	if r.Centroids[0] > r.Centroids[1] {
		t.Error("centroids not sorted")
	}
}

func TestIdenticalValues(t *testing.T) {
	r, err := Cluster([]float64{0.5, 0.5, 0.5, 0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Degenerate data collapses to one effective cluster.
	if r.K < 1 {
		t.Errorf("K = %d", r.K)
	}
	for _, a := range r.Assignments {
		if a < 0 || a >= r.K {
			t.Error("assignment out of range")
		}
	}
}

func TestSilhouetteSeparatedBeatsMixed(t *testing.T) {
	values := []float64{0.1, 0.11, 0.12, 0.9, 0.91, 0.92}
	good, _ := Cluster(values, 2)
	sGood := Silhouette(values, good.Assignments, good.K)
	// A deliberately bad assignment mixing the groups.
	bad := []int{0, 1, 0, 1, 0, 1}
	sBad := Silhouette(values, bad, 2)
	if sGood <= sBad {
		t.Errorf("silhouette: good=%v <= bad=%v", sGood, sBad)
	}
	if sGood < 0.8 {
		t.Errorf("well-separated silhouette = %v, want high", sGood)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	if Silhouette([]float64{1}, []int{0}, 1) != 0 {
		t.Error("k=1 silhouette should be 0")
	}
	if Silhouette([]float64{1, 2}, []int{0, 0}, 1) != 0 {
		t.Error("single-cluster silhouette should be 0")
	}
}

func TestChooseKFindsTwoGroups(t *testing.T) {
	values := []float64{0.05, 0.06, 0.07, 0.85, 0.87, 0.9}
	r, err := ChooseK(values, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 2 {
		t.Errorf("ChooseK selected K=%d, want 2", r.K)
	}
}

func TestChooseKThreeGroups(t *testing.T) {
	values := []float64{0.0, 0.01, 0.5, 0.51, 1.0, 1.01}
	r, err := ChooseK(values, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 3 {
		t.Errorf("ChooseK selected K=%d, want 3", r.K)
	}
}

func TestChooseKDegenerate(t *testing.T) {
	if _, err := ChooseK(nil, 2, 4); err == nil {
		t.Error("empty accepted")
	}
	r, err := ChooseK([]float64{0.4}, 2, 4)
	if err != nil || r.K != 1 {
		t.Errorf("singleton: %+v, %v", r, err)
	}
	// kMin clamping.
	r, err = ChooseK([]float64{0.4, 0.6}, -3, 17)
	if err != nil || r.K < 1 {
		t.Errorf("clamped: %+v, %v", r, err)
	}
}

// Property: every assignment is a valid cluster index and every cluster
// is non-empty after canonicalization.
func TestQuickAssignmentsValid(t *testing.T) {
	f := func(seed int64, k8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		k := int(k8)%n + 1
		values := make([]float64, n)
		for i := range values {
			values[i] = rng.Float64()
		}
		r, err := Cluster(values, k)
		if err != nil {
			return false
		}
		seen := make([]bool, r.K)
		for _, a := range r.Assignments {
			if a < 0 || a >= r.K {
				return false
			}
			seen[a] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		// Centroids ascending.
		for i := 1; i < r.K; i++ {
			if r.Centroids[i] < r.Centroids[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: clustering is deterministic.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 2
		values := make([]float64, n)
		for i := range values {
			values[i] = rng.Float64()
		}
		a, err1 := Cluster(values, 3%n+1)
		b, err2 := Cluster(values, 3%n+1)
		if err1 != nil || err2 != nil {
			return false
		}
		if a.K != b.K {
			return false
		}
		for i := range a.Assignments {
			if a.Assignments[i] != b.Assignments[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
