// Package kmeans provides 1-D k-means clustering with deterministic
// initialization and silhouette-based selection of k.
//
// It is the clustering engine of the Dunn baseline [24], which groups
// applications by their STALLS_L2_MISS stall fraction. Dunn is a
// user-level policy, so floating point is fine here (unlike in the LFOC
// core).
package kmeans

import (
	"fmt"
	"math"
	"sort"
)

// Result is one clustering outcome.
type Result struct {
	K           int
	Assignments []int     // cluster index per input value, clusters sorted by centroid ascending
	Centroids   []float64 // ascending
}

// Cluster runs 1-D k-means with quantile initialization until
// convergence. Values need not be sorted. k must be in [1, len(values)].
func Cluster(values []float64, k int) (Result, error) {
	n := len(values)
	if n == 0 {
		return Result{}, fmt.Errorf("kmeans: no values")
	}
	if k < 1 || k > n {
		return Result{}, fmt.Errorf("kmeans: k=%d out of [1,%d]", k, n)
	}

	// Deterministic init: centroids at evenly spaced quantiles of the
	// sorted values.
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	centroids := make([]float64, k)
	for i := 0; i < k; i++ {
		pos := float64(i*2+1) / float64(2*k) * float64(n-1)
		lo := int(pos)
		hi := lo + 1
		if hi >= n {
			hi = n - 1
		}
		frac := pos - float64(lo)
		centroids[i] = sorted[lo]*(1-frac) + sorted[hi]*frac
	}

	assign := make([]int, n)
	// Update scratch lives outside the iteration loop: the policy calls
	// this every partitioner activation, so per-iteration allocations
	// multiply into the simulator's hot loop.
	sums := make([]float64, k)
	counts := make([]int, k)
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i, v := range values {
			best, bestD := 0, math.Abs(v-centroids[0])
			for c := 1; c < k; c++ {
				if d := math.Abs(v - centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids; empty clusters keep their position.
		for c := 0; c < k; c++ {
			sums[c], counts[c] = 0, 0
		}
		for i, v := range values {
			sums[assign[i]] += v
			counts[assign[i]]++
		}
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				centroids[c] = sums[c] / float64(counts[c])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}

	// Canonicalize: sort clusters by centroid, drop empties, remap.
	type cc struct {
		centroid float64
		oldIdx   int
	}
	for c := 0; c < k; c++ {
		counts[c] = 0
	}
	for _, a := range assign {
		counts[a]++
	}
	var kept []cc
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			kept = append(kept, cc{centroids[c], c})
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].centroid < kept[j].centroid })
	remap := make([]int, k)
	outCent := make([]float64, len(kept))
	for newIdx, c := range kept {
		remap[c.oldIdx] = newIdx
		outCent[newIdx] = c.centroid
	}
	outAssign := make([]int, n)
	for i, a := range assign {
		outAssign[i] = remap[a]
	}
	return Result{K: len(kept), Assignments: outAssign, Centroids: outCent}, nil
}

// Silhouette computes the mean silhouette coefficient of a clustering
// (−1..1, higher is better). Singleton clusters contribute 0. Returns 0
// when fewer than two clusters exist.
func Silhouette(values []float64, assign []int, k int) float64 {
	n := len(values)
	if k < 2 || n < 2 {
		return 0
	}
	total := 0.0
	// Per-cluster scratch shared across points (zeroed per point):
	// allocating inside the point loop multiplies into ChooseK's k sweep
	// and the policy period.
	bSums := make([]float64, k)
	bCounts := make([]int, k)
	for i := 0; i < n; i++ {
		// a = mean distance within own cluster; b = min mean distance to
		// another cluster.
		var aSum float64
		aCount := 0
		for c := 0; c < k; c++ {
			bSums[c], bCounts[c] = 0, 0
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			d := math.Abs(values[i] - values[j])
			if assign[j] == assign[i] {
				aSum += d
				aCount++
			} else {
				bSums[assign[j]] += d
				bCounts[assign[j]]++
			}
		}
		if aCount == 0 {
			continue // singleton contributes 0
		}
		a := aSum / float64(aCount)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if bCounts[c] > 0 {
				if m := bSums[c] / float64(bCounts[c]); m < b {
					b = m
				}
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(n)
}

// ChooseK clusters values for every k in [kMin, kMax] (clamped to the
// value count) and returns the result with the highest silhouette; ties
// favor smaller k. With fewer than 2 values it returns the k=1 result.
func ChooseK(values []float64, kMin, kMax int) (Result, error) {
	n := len(values)
	if n == 0 {
		return Result{}, fmt.Errorf("kmeans: no values")
	}
	if kMin < 1 {
		kMin = 1
	}
	if kMax > n {
		kMax = n
	}
	if kMax < kMin {
		kMax = kMin
	}
	if n == 1 || kMax == 1 {
		return Cluster(values, 1)
	}
	var best Result
	bestScore := math.Inf(-1)
	for k := kMin; k <= kMax; k++ {
		r, err := Cluster(values, k)
		if err != nil {
			return Result{}, err
		}
		s := Silhouette(values, r.Assignments, r.K)
		if s > bestScore+1e-12 {
			best, bestScore = r, s
		}
	}
	if best.K == 0 {
		return Cluster(values, kMin)
	}
	return best, nil
}
