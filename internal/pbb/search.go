package pbb

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/faircache/lfoc/internal/plan"
	"github.com/faircache/lfoc/internal/sharing"
)

// nodeFlushEvery bounds how stale a worker's contribution to the shared
// node counter may get: locals are flushed to the atomics every this many
// counted nodes (and at worker exit), so the budget check sees an almost
// current total without any per-node shared-memory write.
const nodeFlushEvery = 64

// searcher holds the shared state of one branch-and-bound run.
//
// The read path is lock-free: the incumbent objective values are
// published as atomic float bits, so boundedOut/overBudget never block,
// and node counters are accumulated per worker and flushed in batches.
// The mutex is confined to offer(), the rare path where a candidate
// survived the lock-free bound and the incumbent plan itself must be
// replaced consistently.
//
// The published bounds are monotone up to the tie tolerance: unfairness
// only decreases (STP only increases) except when a tie-breaking
// improvement is installed, which may move the primary metric by at most
// its 1e-12 tie window. A stale lock-free read therefore prunes against
// a bound at most one tie-window tighter than the current one — the same
// race the mutex version had between a prune decision and an install
// that immediately followed it, and strictly inside the relative margin
// the prune thresholds carry.
type searcher struct {
	solver   *Solver
	memo     *memo
	obj      Objective
	n        int
	ways     int
	ident    []int
	budget   uint64
	partOnly bool

	nodes       atomic.Uint64
	pruned      atomic.Uint64
	bestUnfBits atomic.Uint64 // math.Float64bits of the incumbent unfairness
	bestSTPBits atomic.Uint64 // math.Float64bits of the incumbent STP

	mu       sync.Mutex // guards bestPlan/bestKey and incumbent updates
	bestPlan *plan.Plan
	bestKey  string
}

func (s *searcher) loadBestUnf() float64   { return math.Float64frombits(s.bestUnfBits.Load()) }
func (s *searcher) loadBestSTP() float64   { return math.Float64frombits(s.bestSTPBits.Load()) }
func (s *searcher) storeBestUnf(v float64) { s.bestUnfBits.Store(math.Float64bits(v)) }
func (s *searcher) storeBestSTP(v float64) { s.bestSTPBits.Store(math.Float64bits(v)) }

// worker owns one goroutine's private search state: the evaluation
// session, the memo-compute and enumeration scratch, and locally
// accumulated node counters. Nothing in it is shared, so the hot
// enumeration loop performs no allocation and no synchronized write.
type worker struct {
	s    *searcher
	eval *sharing.Evaluator

	// memo.compute scratch.
	members []int
	apps    []sharing.App
	res     []sharing.Result

	// Enumeration scratch: subset masks of the (partial) partition under
	// consideration, way assignment and per-cluster score tables for
	// composition scoring.
	subsets []uint32
	ways    []int
	scores  [][]clusterScore

	// Composition-bound scratch (flat [cluster*(ways+1)+w] tables): the
	// optimistic suffix aggregates that let composeWays prune partial way
	// assignments. suffMax[j][w] lower-bounds the max slowdown any
	// completion of clusters j.. can reach when each may take up to w
	// ways; suffMin upper-bounds the min slowdown; suffStp upper-bounds
	// the STP sum.
	suffMax []float64
	suffMin []float64
	suffStp []float64

	// Locally accumulated counters, flushed to the searcher's atomics.
	nodes, pruned uint64
}

func (s *searcher) newWorker() *worker {
	stride := s.ways + 1
	return &worker{
		s:       s,
		eval:    s.memo.newEvaluator(),
		members: make([]int, 0, s.n),
		apps:    make([]sharing.App, s.n),
		subsets: make([]uint32, s.n),
		ways:    make([]int, s.ways),
		scores:  make([][]clusterScore, s.ways),
		suffMax: make([]float64, s.ways*stride),
		suffMin: make([]float64, s.ways*stride),
		suffStp: make([]float64, s.ways*stride),
	}
}

// countNode counts one complete partition node, flushing periodically.
//
//lfoc:hotpath
func (w *worker) countNode() {
	w.nodes++
	if w.nodes >= nodeFlushEvery {
		w.flush()
	}
}

// flush publishes the local counters.
func (w *worker) flush() {
	if w.nodes > 0 {
		w.s.nodes.Add(w.nodes)
		w.nodes = 0
	}
	if w.pruned > 0 {
		w.s.pruned.Add(w.pruned)
		w.pruned = 0
	}
}

// overBudget is the lock-free anytime check.
//
//lfoc:hotpath
func (w *worker) overBudget() bool {
	return w.s.nodes.Load()+w.nodes > w.s.budget
}

// offerSeed scores a heuristic plan with the memo and installs it as the
// initial incumbent if valid. Invalid seeds are ignored.
func (s *searcher) offerSeed(p plan.Plan, w *worker) {
	if err := p.Validate(s.n, s.ways); err != nil || p.Overlapping {
		return
	}
	subsets := make([]uint32, len(p.Clusters))
	ways := make([]int, len(p.Clusters))
	maxSd, minSd, stp := 1.0, math.Inf(1), 0.0
	for ci, c := range p.Clusters {
		for _, a := range c.Apps {
			subsets[ci] |= 1 << a
		}
		ways[ci] = c.Ways
		sc := s.memo.get(subsets[ci], w)[c.Ways]
		maxSd = math.Max(maxSd, sc.maxSd)
		minSd = math.Min(minSd, sc.minSd)
		stp += sc.stp
	}
	s.offer(subsets, ways, maxSd/minSd, stp)
}

// run enumerates set partitions as restricted growth strings, fanning the
// first splitLevel levels out to a worker pool.
func (s *searcher) run(workers int) {
	// Sequentially expand prefixes up to a depth that yields enough
	// parallel tasks.
	splitDepth := 4
	if splitDepth > s.n {
		splitDepth = s.n
	}
	type prefix struct {
		assign []int
		m      int
	}
	var prefixes []prefix
	var gen func(assign []int, depth, m int)
	gen = func(assign []int, depth, m int) {
		if depth == splitDepth {
			cp := append([]int(nil), assign...)
			prefixes = append(prefixes, prefix{cp, m})
			return
		}
		maxC := m // may open cluster m (0-based new cluster index)
		for c := 0; c <= maxC; c++ {
			if !s.identOK(assign, depth, c) {
				continue
			}
			assign[depth] = c
			nm := m
			if c == m {
				nm++
			}
			if nm <= s.ways {
				gen(assign, depth+1, nm)
			}
		}
	}
	assign := make([]int, s.n)
	gen(assign, 0, 0)

	ch := make(chan prefix, len(prefixes))
	for _, p := range prefixes {
		ch <- p
	}
	close(ch)

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := s.newWorker()
			local := make([]int, s.n)
			for p := range ch {
				copy(local, p.assign)
				s.extend(local, splitDepth, p.m, w)
			}
			w.flush()
		}()
	}
	wg.Wait()
}

// identOK enforces the symmetry-breaking rule: an app identical to an
// earlier app may not be placed in a lower-indexed cluster.
//
//lfoc:hotpath
func (s *searcher) identOK(assign []int, app, cluster int) bool {
	prev := s.ident[app]
	if prev < 0 {
		return true
	}
	return cluster >= assign[prev]
}

// extend continues the restricted-growth enumeration from depth, scoring
// complete partitions and applying the partial bound.
//
//lfoc:hotpath
func (s *searcher) extend(assign []int, depth, m int, w *worker) {
	if w.overBudget() {
		return
	}
	if depth == s.n {
		if m < 1 {
			return
		}
		subsets := w.subsets[:m]
		for i := range subsets {
			subsets[i] = 0
		}
		for i, c := range assign {
			subsets[c] |= 1 << i
		}
		w.countNode()
		if !s.boundedOut(subsets, s.n, w) {
			s.scorePartition(subsets, w)
		} else {
			w.pruned++
		}
		return
	}
	// Partial bound: clusters formed so far can only get worse.
	if depth >= 2 && m >= 1 {
		subsets := w.subsets[:m]
		for i := range subsets {
			subsets[i] = 0
		}
		for i := 0; i < depth; i++ {
			subsets[assign[i]] |= 1 << i
		}
		if s.boundedOut(subsets, depth, w) {
			w.pruned++
			return
		}
	}
	for c := 0; c <= m; c++ {
		if c == m && m+1 > s.ways {
			continue // cannot open more clusters than ways
		}
		if !s.identOK(assign, depth, c) {
			continue
		}
		assign[depth] = c
		nm := m
		if c == m {
			nm++
		}
		s.extend(assign, depth+1, nm, w)
	}
}

// boundedOut computes an admissible lower bound for the (partial)
// partition and compares it with the incumbent, read lock-free (a stale
// incumbent only weakens pruning, never correctness). assignedApps is
// the number of apps already placed (== n for complete partitions).
//
//lfoc:hotpath
func (s *searcher) boundedOut(subsets []uint32, assignedApps int, w *worker) bool {
	m := len(subsets)
	wmax := s.ways - m + 1
	if wmax < 1 {
		return true // infeasible
	}
	switch s.obj {
	case Fairness:
		// Optimistic max slowdown: every cluster at its best (wmax ways,
		// current members only — adding members or removing ways only
		// increases slowdowns).
		lbMax := 1.0
		ubMin := math.Inf(1)
		for _, sub := range subsets {
			sc := s.memo.get(sub, w)[wmax]
			lbMax = math.Max(lbMax, sc.maxSd)
			ubMin = math.Min(ubMin, sc.minSd)
		}
		if assignedApps < s.n {
			// Unassigned apps may end up with slowdown ~1, lowering the
			// workload minimum.
			ubMin = 1
		}
		return lbMax/ubMin > s.loadBestUnf()*(1+1e-12)
	default: // Throughput
		ub := 0.0
		for _, sub := range subsets {
			ub += s.memo.get(sub, w)[wmax].stp
		}
		ub += float64(s.n - assignedApps) // unassigned apps contribute ≤ 1 each
		bs := s.loadBestSTP()
		return ub < bs-stpPruneTol(bs)
	}
}

// scorePartition enumerates way compositions for a complete partition and
// updates the incumbent. Before recursing it builds, in worker scratch,
// admissible suffix bounds over the clusters' score curves so partial
// compositions that cannot beat (or tie) the incumbent are cut without
// visiting their C(ways-1, m-1)-sized subtrees.
//
//lfoc:hotpath
func (s *searcher) scorePartition(subsets []uint32, w *worker) {
	m := len(subsets)
	if m > s.ways {
		return
	}
	scores := w.scores[:m]
	for i, sub := range subsets {
		scores[i] = s.memo.get(sub, w)
	}

	// Per-cluster optimistic curves, folded into suffix aggregates.
	// Prefix-optimizing over the way axis (rather than trusting the
	// model's monotonicity in ways) keeps the bound admissible even if an
	// equilibrium curve has a tiny non-monotone wobble; admissibility is
	// what makes pruning schedule-independent and therefore keeps the
	// solver's output identical across worker counts.
	stride := s.ways + 1
	for j := m - 1; j >= 0; j-- {
		sj := scores[j]
		row := j * stride
		nextRow := row + stride
		bMax, bMin, bStp := math.Inf(1), math.Inf(-1), math.Inf(-1)
		for ww := 1; ww <= s.ways; ww++ {
			sc := sj[ww]
			if sc.maxSd < bMax {
				bMax = sc.maxSd // best (lowest) max slowdown with ≤ ww ways
			}
			if sc.minSd > bMin {
				bMin = sc.minSd // best (highest) min slowdown with ≤ ww ways
			}
			if sc.stp > bStp {
				bStp = sc.stp // best STP contribution with ≤ ww ways
			}
			if j == m-1 {
				w.suffMax[row+ww] = bMax
				w.suffMin[row+ww] = bMin
				w.suffStp[row+ww] = bStp
			} else {
				nMax, nMin, nStp := w.suffMax[nextRow+ww], w.suffMin[nextRow+ww], w.suffStp[nextRow+ww]
				if nMax > bMax {
					w.suffMax[row+ww] = nMax
				} else {
					w.suffMax[row+ww] = bMax
				}
				if nMin < bMin {
					w.suffMin[row+ww] = nMin
				} else {
					w.suffMin[row+ww] = bMin
				}
				w.suffStp[row+ww] = bStp + nStp
			}
		}
	}

	s.composeWays(subsets, scores, w, 0, s.ways, 1, math.Inf(1), 0)
}

// composeWays recursively assigns way counts to clusters i.. given the
// remaining ways, carrying the running max/min slowdown and STP sum.
// Partial assignments whose admissible completion bound cannot reach the
// incumbent are pruned.
//
//lfoc:hotpath
func (s *searcher) composeWays(subsets []uint32, scores [][]clusterScore, w *worker, i, remaining int, maxSd, minSd, stp float64) {
	m := len(subsets)
	if i == m-1 {
		sc := scores[i][remaining]
		w.ways[i] = remaining
		tMax := maxSd
		if sc.maxSd > tMax {
			tMax = sc.maxSd
		}
		tMin := minSd
		if sc.minSd < tMin {
			tMin = sc.minSd
		}
		s.offer(subsets, w.ways[:m], tMax/tMin, stp+sc.stp)
		return
	}

	// Completion bound: clusters i.. may each take at most wcap ways.
	wcap := remaining - (m - i - 1)
	at := i*(s.ways+1) + wcap
	switch s.obj {
	case Fairness:
		lbMax := maxSd
		if sm := w.suffMax[at]; sm > lbMax {
			lbMax = sm
		}
		ubMin := minSd
		if sm := w.suffMin[at]; sm < ubMin {
			ubMin = sm
		}
		if lbMax/ubMin > s.loadBestUnf()*(1+1e-12) {
			return
		}
	default:
		bs := s.loadBestSTP()
		if stp+w.suffStp[at] < bs-stpPruneTol(bs) {
			return
		}
	}

	// Leave at least one way per remaining cluster.
	for ww := 1; ww <= wcap; ww++ {
		sc := scores[i][ww]
		w.ways[i] = ww
		tMax := maxSd
		if sc.maxSd > tMax {
			tMax = sc.maxSd
		}
		tMin := minSd
		if sc.minSd < tMin {
			tMin = sc.minSd
		}
		s.composeWays(subsets, scores, w, i+1, remaining-ww, tMax, tMin, stp+sc.stp)
	}
}

// offer proposes a complete solution to the incumbent. Candidates that
// cannot beat (or tie) the published bound are rejected without the lock;
// survivors re-check under the mutex, which also orders the atomic
// publication of the tightened bound.
func (s *searcher) offer(subsets []uint32, ways []int, unf, stp float64) {
	// Lock-free pre-filter against the published incumbent: reject only
	// candidates that could neither improve nor tie under the very
	// conditions the locked section evaluates. The published bound only
	// tightens, so a rejection now would also be a rejection later, and a
	// stale accept is re-checked under the lock — behaviour is identical
	// to always locking, minus the contention.
	switch s.obj {
	case Fairness:
		bu := s.loadBestUnf()
		if !(unf < bu+1e-12) && !unfEq(unf, bu) {
			return
		}
	default:
		bs := s.loadBestSTP()
		if !(stp > bs-1e-12) && !stpEq(stp, bs) {
			return
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	bestUnf, bestSTP := s.loadBestUnf(), s.loadBestSTP()
	better := false
	switch s.obj {
	case Fairness:
		if unf < bestUnf-1e-12 {
			better = true
		} else if unf < bestUnf+1e-12 && stp > bestSTP+1e-12 {
			better = true
		}
	default:
		if stp > bestSTP+1e-12 {
			better = true
		} else if stp > bestSTP-1e-12 && unf < bestUnf-1e-12 {
			better = true
		}
	}
	if !better && s.bestPlan != nil {
		// Deterministic tie-break across parallel workers.
		if unfEq(unf, bestUnf) && stpEq(stp, bestSTP) {
			cand := buildPlan(subsets, ways)
			if key := cand.Canonical(); key < s.bestKey {
				s.bestPlan = &cand
				s.bestKey = key
			}
		}
		return
	}
	if better {
		cand := buildPlan(subsets, ways)
		s.storeBestUnf(unf)
		s.storeBestSTP(stp)
		s.bestPlan = &cand
		s.bestKey = cand.Canonical()
	}
}

// stpPruneTol is the STP pruning tolerance: the same relative width as
// relEq's tie window, so a prune can never cut a candidate that the
// offer tie-break would have accepted — that consistency is what keeps
// the Throughput winner identical across worker counts and schedules.
func stpPruneTol(best float64) float64 {
	m := best
	if m < 0 {
		m = -m
	}
	if m < 1 {
		m = 1
	}
	return 1e-12 * m
}

// relEq reports |a-b| <= 1e-12*max(1,|b|), branch-only (hot in the offer
// pre-filter).
//
//lfoc:hotpath
func relEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := b
	if m < 0 {
		m = -m
	}
	if m < 1 {
		m = 1
	}
	return d <= 1e-12*m
}

func unfEq(a, b float64) bool { return relEq(a, b) }
func stpEq(a, b float64) bool { return relEq(a, b) }

func buildPlan(subsets []uint32, ways []int) plan.Plan {
	p := plan.Plan{Clusters: make([]plan.Cluster, len(subsets))}
	for i, sub := range subsets {
		var apps []int
		for b := 0; b < 32; b++ {
			if sub&(1<<b) != 0 {
				apps = append(apps, b)
			}
		}
		p.Clusters[i] = plan.Cluster{Apps: apps, Ways: ways[i]}
	}
	return p
}
