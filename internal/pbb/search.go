package pbb

import (
	"math"
	"sync"

	"github.com/faircache/lfoc/internal/plan"
)

// searcher holds the shared state of one branch-and-bound run. The
// incumbent (bestUnf/bestSTP/bestPlan) and the node counters are guarded
// by mu; workers read the incumbent under the lock only when a candidate
// survives the cheap local bound, so contention stays low.
type searcher struct {
	solver   *Solver
	memo     *memo
	obj      Objective
	n        int
	ways     int
	ident    []int
	budget   uint64
	partOnly bool

	mu       sync.Mutex
	nodes    uint64
	pruned   uint64
	bestUnf  float64
	bestSTP  float64
	bestPlan *plan.Plan
	bestKey  string
}

// offerSeed scores a heuristic plan with the memo and installs it as the
// initial incumbent if valid. Invalid seeds are ignored.
func (s *searcher) offerSeed(p plan.Plan) {
	if err := p.Validate(s.n, s.ways); err != nil || p.Overlapping {
		return
	}
	subsets := make([]uint32, len(p.Clusters))
	ways := make([]int, len(p.Clusters))
	maxSd, minSd, stp := 1.0, math.Inf(1), 0.0
	for ci, c := range p.Clusters {
		for _, a := range c.Apps {
			subsets[ci] |= 1 << a
		}
		ways[ci] = c.Ways
		sc := s.memo.get(subsets[ci])[c.Ways]
		maxSd = math.Max(maxSd, sc.maxSd)
		minSd = math.Min(minSd, sc.minSd)
		stp += sc.stp
	}
	s.offer(subsets, ways, maxSd/minSd, stp)
}

// run enumerates set partitions as restricted growth strings, fanning the
// first splitLevel levels out to a worker pool.
func (s *searcher) run(workers int) {
	// Sequentially expand prefixes up to a depth that yields enough
	// parallel tasks.
	splitDepth := 4
	if splitDepth > s.n {
		splitDepth = s.n
	}
	type prefix struct {
		assign []int
		m      int
	}
	var prefixes []prefix
	var gen func(assign []int, depth, m int)
	gen = func(assign []int, depth, m int) {
		if depth == splitDepth {
			cp := append([]int(nil), assign...)
			prefixes = append(prefixes, prefix{cp, m})
			return
		}
		maxC := m // may open cluster m (0-based new cluster index)
		for c := 0; c <= maxC; c++ {
			if !s.identOK(assign, depth, c) {
				continue
			}
			assign[depth] = c
			nm := m
			if c == m {
				nm++
			}
			if nm <= s.ways {
				gen(assign, depth+1, nm)
			}
		}
	}
	assign := make([]int, s.n)
	gen(assign, 0, 0)

	ch := make(chan prefix, len(prefixes))
	for _, p := range prefixes {
		ch <- p
	}
	close(ch)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int, s.n)
			for p := range ch {
				copy(local, p.assign)
				s.extend(local, splitDepth, p.m)
			}
		}()
	}
	wg.Wait()
}

// identOK enforces the symmetry-breaking rule: an app identical to an
// earlier app may not be placed in a lower-indexed cluster.
func (s *searcher) identOK(assign []int, app, cluster int) bool {
	prev := s.ident[app]
	if prev < 0 {
		return true
	}
	return cluster >= assign[prev]
}

// extend continues the restricted-growth enumeration from depth, scoring
// complete partitions and applying the partial bound.
func (s *searcher) extend(assign []int, depth, m int) {
	if s.overBudget() {
		return
	}
	if depth == s.n {
		if m < 1 {
			return
		}
		subsets := make([]uint32, m)
		for i, c := range assign {
			subsets[c] |= 1 << i
		}
		s.countNode()
		if !s.boundedOut(subsets, s.n) {
			s.scorePartition(subsets)
		} else {
			s.countPruned()
		}
		return
	}
	// Partial bound: clusters formed so far can only get worse.
	if depth >= 2 && m >= 1 {
		subsets := make([]uint32, m)
		for i := 0; i < depth; i++ {
			subsets[assign[i]] |= 1 << i
		}
		if s.boundedOut(subsets, depth) {
			s.countPruned()
			return
		}
	}
	for c := 0; c <= m; c++ {
		if c == m && m+1 > s.ways {
			continue // cannot open more clusters than ways
		}
		if !s.identOK(assign, depth, c) {
			continue
		}
		assign[depth] = c
		nm := m
		if c == m {
			nm++
		}
		s.extend(assign, depth+1, nm)
	}
}

// boundedOut computes an admissible lower bound for the (partial)
// partition and compares it with the incumbent. assignedApps is the
// number of apps already placed (== n for complete partitions).
func (s *searcher) boundedOut(subsets []uint32, assignedApps int) bool {
	m := len(subsets)
	wmax := s.ways - m + 1
	if wmax < 1 {
		return true // infeasible
	}
	switch s.obj {
	case Fairness:
		// Optimistic max slowdown: every cluster at its best (wmax ways,
		// current members only — adding members or removing ways only
		// increases slowdowns).
		lbMax := 1.0
		ubMin := math.Inf(1)
		for _, sub := range subsets {
			sc := s.memo.get(sub)[wmax]
			lbMax = math.Max(lbMax, sc.maxSd)
			ubMin = math.Min(ubMin, sc.minSd)
		}
		if assignedApps < s.n {
			// Unassigned apps may end up with slowdown ~1, lowering the
			// workload minimum.
			ubMin = 1
		}
		lb := lbMax / ubMin
		s.mu.Lock()
		out := lb > s.bestUnf*(1+1e-12)
		s.mu.Unlock()
		return out
	default: // Throughput
		ub := 0.0
		for _, sub := range subsets {
			ub += s.memo.get(sub)[wmax].stp
		}
		ub += float64(s.n - assignedApps) // unassigned apps contribute ≤ 1 each
		s.mu.Lock()
		out := ub < s.bestSTP-1e-12
		s.mu.Unlock()
		return out
	}
}

// scorePartition enumerates way compositions for a complete partition and
// updates the incumbent.
func (s *searcher) scorePartition(subsets []uint32) {
	m := len(subsets)
	if m > s.ways {
		return
	}
	scores := make([][]clusterScore, m)
	for i, sub := range subsets {
		scores[i] = s.memo.get(sub)
	}
	ways := make([]int, m)
	var rec func(i, remaining int, maxSd, minSd, stp float64)
	rec = func(i, remaining int, maxSd, minSd, stp float64) {
		if i == m-1 {
			sc := scores[i][remaining]
			ways[i] = remaining
			tMax := math.Max(maxSd, sc.maxSd)
			tMin := math.Min(minSd, sc.minSd)
			s.offer(subsets, ways, tMax/tMin, stp+sc.stp)
			return
		}
		// Leave at least one way per remaining cluster.
		maxW := remaining - (m - 1 - i)
		for w := 1; w <= maxW; w++ {
			sc := scores[i][w]
			ways[i] = w
			rec(i+1, remaining-w, math.Max(maxSd, sc.maxSd), math.Min(minSd, sc.minSd), stp+sc.stp)
		}
	}
	rec(0, s.ways, 1, math.Inf(1), 0)
}

// offer proposes a complete solution to the incumbent.
func (s *searcher) offer(subsets []uint32, ways []int, unf, stp float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	better := false
	switch s.obj {
	case Fairness:
		if unf < s.bestUnf-1e-12 {
			better = true
		} else if unf < s.bestUnf+1e-12 && stp > s.bestSTP+1e-12 {
			better = true
		}
	default:
		if stp > s.bestSTP+1e-12 {
			better = true
		} else if stp > s.bestSTP-1e-12 && unf < s.bestUnf-1e-12 {
			better = true
		}
	}
	if !better && s.bestPlan != nil {
		// Deterministic tie-break across parallel workers.
		if unfEq(unf, s.bestUnf) && stpEq(stp, s.bestSTP) {
			cand := buildPlan(subsets, ways)
			if key := cand.Canonical(); key < s.bestKey {
				s.bestPlan = &cand
				s.bestKey = key
			}
		}
		return
	}
	if better {
		cand := buildPlan(subsets, ways)
		s.bestUnf, s.bestSTP = unf, stp
		s.bestPlan = &cand
		s.bestKey = cand.Canonical()
	}
}

func unfEq(a, b float64) bool { return math.Abs(a-b) <= 1e-12*math.Max(1, math.Abs(b)) }
func stpEq(a, b float64) bool { return math.Abs(a-b) <= 1e-12*math.Max(1, math.Abs(b)) }

func buildPlan(subsets []uint32, ways []int) plan.Plan {
	p := plan.Plan{Clusters: make([]plan.Cluster, len(subsets))}
	for i, sub := range subsets {
		var apps []int
		for b := 0; b < 32; b++ {
			if sub&(1<<b) != 0 {
				apps = append(apps, b)
			}
		}
		p.Clusters[i] = plan.Cluster{Apps: apps, Ways: ways[i]}
	}
	return p
}

func (s *searcher) countNode() {
	s.mu.Lock()
	s.nodes++
	s.mu.Unlock()
}

func (s *searcher) countPruned() {
	s.mu.Lock()
	s.pruned++
	s.mu.Unlock()
}

func (s *searcher) overBudget() bool {
	s.mu.Lock()
	over := s.nodes > s.budget
	s.mu.Unlock()
	return over
}
