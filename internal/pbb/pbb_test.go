package pbb

import (
	"testing"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/plan"
	"github.com/faircache/lfoc/internal/profiles"
	"github.com/faircache/lfoc/internal/sharing"
)

func phaseOf(name string) *appmodel.PhaseSpec {
	return &profiles.MustGet(name).Phases[0]
}

func mix(names ...string) []*appmodel.PhaseSpec {
	out := make([]*appmodel.PhaseSpec, len(names))
	for i, n := range names {
		out[i] = phaseOf(n)
	}
	return out
}

func TestSolveErrors(t *testing.T) {
	s := New(machine.Skylake())
	if _, err := s.OptimalClustering(nil, Fairness); err == nil {
		t.Error("empty workload accepted")
	}
	big := make([]*appmodel.PhaseSpec, 17)
	for i := range big {
		big[i] = phaseOf("povray06")
	}
	if _, err := s.OptimalClustering(big, Fairness); err == nil {
		t.Error("oversized workload accepted")
	}
	twelve := make([]*appmodel.PhaseSpec, 12)
	for i := range twelve {
		twelve[i] = phaseOf("povray06")
	}
	if _, err := s.OptimalPartitioning(twelve, Fairness); err == nil {
		t.Error("partitioning with n > ways accepted")
	}
}

func TestOptimalIsolatesStreaming(t *testing.T) {
	plat := machine.Skylake()
	s := New(plat)
	phases := mix("xalancbmk06", "soplex06", "lbm06", "libquantum06")
	sol, err := s.OptimalClustering(phases, Fairness)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Plan.Validate(4, plat.Ways); err != nil {
		t.Fatalf("invalid plan: %v (%s)", err, sol.Plan.Canonical())
	}
	// The optimum must beat stock Linux on unfairness.
	model := sharing.NewModel(plat)
	stockSd, err := sharing.EvaluatePlan(model, phases, plan.SingleCluster(4, plat.Ways))
	if err != nil {
		t.Fatal(err)
	}
	stockUnf, _ := summarize(stockSd)
	if sol.Unfairness >= stockUnf {
		t.Errorf("optimal unfairness %.3f >= stock %.3f", sol.Unfairness, stockUnf)
	}
	// Streaming apps (indices 2,3) must be confined to few ways (§3: "no
	// greater than 2 in any workload").
	streamWays := 0
	for _, c := range sol.Plan.Clusters {
		hasStream := false
		for _, a := range c.Apps {
			if a == 2 || a == 3 {
				hasStream = true
			}
		}
		if hasStream {
			streamWays += c.Ways
		}
	}
	if streamWays > 3 {
		t.Errorf("optimal gives streaming apps %d ways (%s), expected confinement", streamWays, sol.Plan.Canonical())
	}
	if !sol.Exact {
		t.Error("4-app search should complete exactly")
	}
}

func TestClusteringBeatsPartitioningWhenTight(t *testing.T) {
	// With n close to k, clustering must be at least as fair as strict
	// partitioning (Fig. 3's message).
	plat := machine.Small(6, 8)
	s := New(plat)
	phases := mix("xalancbmk06", "soplex06", "omnetpp06", "lbm06", "milc06", "povray06")
	clu, err := s.OptimalClustering(phases, Fairness)
	if err != nil {
		t.Fatal(err)
	}
	part, err := s.OptimalPartitioning(phases, Fairness)
	if err != nil {
		t.Fatal(err)
	}
	if clu.Unfairness > part.Unfairness*1.001 {
		t.Errorf("optimal clustering (%.3f) worse than optimal partitioning (%.3f)",
			clu.Unfairness, part.Unfairness)
	}
}

func TestThroughputObjective(t *testing.T) {
	plat := machine.Skylake()
	s := New(plat)
	phases := mix("xalancbmk06", "lbm06", "povray06", "soplex06")
	fair, err := s.OptimalClustering(phases, Fairness)
	if err != nil {
		t.Fatal(err)
	}
	thr, err := s.OptimalClustering(phases, Throughput)
	if err != nil {
		t.Fatal(err)
	}
	if thr.STP < fair.STP-0.05 {
		t.Errorf("throughput objective STP %.3f < fairness objective STP %.3f", thr.STP, fair.STP)
	}
	if fair.Unfairness > thr.Unfairness+0.05 {
		t.Errorf("fairness objective unfairness %.3f > throughput objective %.3f", fair.Unfairness, thr.Unfairness)
	}
}

func TestAnytimeBudget(t *testing.T) {
	plat := machine.Skylake()
	s := New(plat)
	s.NodeBudget = 3
	phases := mix("xalancbmk06", "soplex06", "omnetpp06", "lbm06", "milc06",
		"povray06", "namd06", "sphinx306")
	sol, err := s.OptimalClustering(phases, Fairness)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Exact {
		t.Error("tiny budget should not complete exactly")
	}
	if err := sol.Plan.Validate(8, plat.Ways); err != nil {
		t.Errorf("anytime plan invalid: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	plat := machine.Skylake()
	phases := mix("xalancbmk06", "lbm06", "povray06", "soplex06", "milc06")
	a, err := New(plat).OptimalClustering(phases, Fairness)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(plat).OptimalClustering(phases, Fairness)
	if err != nil {
		t.Fatal(err)
	}
	if a.Plan.Canonical() != b.Plan.Canonical() {
		t.Errorf("nondeterministic winner: %s vs %s", a.Plan.Canonical(), b.Plan.Canonical())
	}
}

func TestSymmetryReduction(t *testing.T) {
	// Four identical apps: the symmetric search must still produce a
	// valid plan and visit far fewer nodes than the full Bell number
	// would suggest.
	plat := machine.Skylake()
	s := New(plat)
	phases := mix("povray06", "povray06", "povray06", "povray06")
	sol, err := s.OptimalClustering(phases, Fairness)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Plan.Validate(4, plat.Ways); err != nil {
		t.Fatal(err)
	}
	// B(4)=15 partitions; the nondecreasing-assignment rule for identical
	// apps leaves at most the 8 nondecreasing RGS strings.
	if sol.Nodes > 8 {
		t.Errorf("symmetry reduction ineffective: %d nodes", sol.Nodes)
	}
}

func TestBruteForceAgreementTinyCase(t *testing.T) {
	// On a tiny platform the B&B winner must match an exhaustive search
	// scored with the same frozen-scale memo.
	plat := machine.Small(4, 4)
	s := New(plat)
	phases := mix("xalancbmk06", "lbm06", "povray06")
	sol, err := s.OptimalClustering(phases, Fairness)
	if err != nil {
		t.Fatal(err)
	}

	scale := stockScale(phases, plat)
	mm := newMemo(phases, plat, scale)
	wk := (&searcher{memo: mm, n: len(phases), ways: plat.Ways}).newWorker()
	bestUnf := 2.0e18
	bestSTP := -1.0
	var bestPlan plan.Plan
	partitions := [][][]int{
		{{0, 1, 2}},
		{{0}, {1, 2}}, {{1}, {0, 2}}, {{2}, {0, 1}},
		{{0}, {1}, {2}},
	}
	for _, part := range partitions {
		m := len(part)
		var rec func(i, remaining int, ways []int)
		rec = func(i, remaining int, ways []int) {
			if i == m-1 {
				ways[i] = remaining
				maxSd, minSd, stp := 1.0, 2.0e18, 0.0
				for ci, cl := range part {
					var sub uint32
					for _, a := range cl {
						sub |= 1 << a
					}
					sc := mm.get(sub, wk)[ways[ci]]
					if sc.maxSd > maxSd {
						maxSd = sc.maxSd
					}
					if sc.minSd < minSd {
						minSd = sc.minSd
					}
					stp += sc.stp
				}
				unf := maxSd / minSd
				if unf < bestUnf-1e-12 || (unf < bestUnf+1e-12 && stp > bestSTP+1e-12) {
					bestUnf, bestSTP = unf, stp
					cls := make([]plan.Cluster, m)
					for ci, cl := range part {
						cls[ci] = plan.Cluster{Apps: append([]int(nil), cl...), Ways: ways[ci]}
					}
					bestPlan = plan.Plan{Clusters: cls}
				}
				return
			}
			for w := 1; w <= remaining-(m-1-i); w++ {
				ways[i] = w
				rec(i+1, remaining-w, ways)
			}
		}
		rec(0, plat.Ways, make([]int, m))
	}
	if sol.Plan.Canonical() != bestPlan.Canonical() {
		t.Errorf("B&B winner %s differs from brute force %s", sol.Plan.Canonical(), bestPlan.Canonical())
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	// The solver's output — plan, unfairness, STP — must be bit-identical
	// regardless of parallelism, with and without warm-start seeds.
	plat := machine.Skylake()
	phases := mix("xalancbmk06", "soplex06", "omnetpp06", "lbm06", "milc06",
		"povray06", "namd06", "sphinx306")
	seed := plan.Plan{Clusters: []plan.Cluster{
		{Apps: []int{0, 1, 2}, Ways: 5},
		{Apps: []int{4, 5, 6, 7}, Ways: 5},
		{Apps: []int{3}, Ways: 1},
	}}
	for _, obj := range []Objective{Fairness, Throughput} {
		for _, seeded := range []bool{false, true} {
			var ref Solution
			for i, workers := range []int{1, 4, 16} {
				s := New(plat)
				s.Workers = workers
				if seeded {
					s.Seeds = []plan.Plan{seed}
				}
				sol, err := s.OptimalClustering(phases, obj)
				if err != nil {
					t.Fatal(err)
				}
				if !sol.Exact {
					t.Fatalf("obj=%v seeded=%v workers=%d: search did not complete", obj, seeded, workers)
				}
				if i == 0 {
					ref = sol
					continue
				}
				if got, want := sol.Plan.Canonical(), ref.Plan.Canonical(); got != want {
					t.Errorf("obj=%v seeded=%v workers=%d: plan %s != workers=1 plan %s", obj, seeded, workers, got, want)
				}
				if sol.Unfairness != ref.Unfairness || sol.STP != ref.STP {
					t.Errorf("obj=%v seeded=%v workers=%d: (unf=%v stp=%v) != (unf=%v stp=%v)",
						obj, seeded, workers, sol.Unfairness, sol.STP, ref.Unfairness, ref.STP)
				}
			}
		}
	}
}

func TestSeedTightensSearch(t *testing.T) {
	// A valid seed must never change the winner, only prune more.
	plat := machine.Skylake()
	phases := mix("xalancbmk06", "soplex06", "lbm06", "milc06", "povray06", "namd06")
	base, err := New(plat).OptimalClustering(phases, Fairness)
	if err != nil {
		t.Fatal(err)
	}
	s := New(plat)
	s.Seeds = []plan.Plan{base.Plan}
	seeded, err := s.OptimalClustering(phases, Fairness)
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Plan.Canonical() != base.Plan.Canonical() {
		t.Errorf("seeding changed the winner: %s vs %s", seeded.Plan.Canonical(), base.Plan.Canonical())
	}
	if seeded.Unfairness != base.Unfairness {
		t.Errorf("seeding changed the unfairness: %v vs %v", seeded.Unfairness, base.Unfairness)
	}
}
