// Package pbb reimplements the PBBCache simulator's core capability [8]:
// determining the (approximately) optimal cache-clustering and
// cache-partitioning solutions for a workload from offline per-size
// profiles, for fairness or throughput objectives, using a parallel
// branch-and-bound search.
//
// Search space. A solution is a set partition of the applications into
// clusters plus a distribution of the k LLC ways among the clusters
// (§2.2). Set partitions are enumerated as restricted growth strings with
// two reductions: (a) partitions with more clusters than ways are
// infeasible, and (b) applications with identical profiles are
// interchangeable, so only representatives with nondecreasing cluster
// indices among identical apps are visited. For every complete partition,
// all ways-compositions are scored.
//
// Scoring. Cluster behaviour depends only on (member set, way count), so
// scores are memoized per subset bitmask: min/max member slowdown and the
// Σ1/slowdown STP contribution at every way count. Co-run slowdowns come
// from the internal/sharing equilibrium under a frozen workload-level
// bandwidth inflation factor (the factor the stock configuration
// converges to), which keeps candidate scoring decomposable; the final
// winner is re-scored with the full bandwidth fixed point.
//
// Bounding. A partial partition is pruned when a lower bound on its best
// achievable unfairness — the largest member slowdown any of its clusters
// would suffer even with the maximum feasible way count, divided by an
// optimistic bound on the workload's minimum slowdown — already exceeds
// the incumbent. For the throughput objective the bound is the optimistic
// STP sum. The search is an *anytime* branch-and-bound: a node budget
// caps exploration and the best solution found so far is returned with
// Exact=false, mirroring the paper's own use of an approximated optimum
// ("which we could approximate by means of a simulator", §3).
package pbb

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/cat"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/plan"
	"github.com/faircache/lfoc/internal/sharing"
)

// Objective selects what the solver optimizes.
type Objective int

const (
	// Fairness minimizes unfairness, breaking ties by maximum STP — the
	// paper's "optimal (minimal) unfairness value for the maximum
	// throughput attainable".
	Fairness Objective = iota
	// Throughput maximizes STP, breaking ties by minimum unfairness.
	Throughput
)

func (o Objective) String() string {
	if o == Throughput {
		return "throughput"
	}
	return "fairness"
}

// Solution is the solver's result.
type Solution struct {
	Plan       plan.Plan
	Slowdowns  []float64
	Unfairness float64
	STP        float64
	// Exact is false when the node budget was exhausted before the
	// search completed (anytime mode).
	Exact bool
	// Nodes is the number of partition nodes visited; Pruned counts
	// subtrees cut by the bound.
	Nodes  uint64
	Pruned uint64
}

// Solver computes optimal clusterings.
type Solver struct {
	Plat *machine.Platform
	// Workers bounds parallelism (default: GOMAXPROCS).
	Workers int
	// NodeBudget caps visited partition nodes (default 2e6; 0 = default).
	NodeBudget uint64
	// MaxApps guards against accidental exponential blowups (default 16).
	MaxApps int
	// Seeds are heuristic plans offered as the initial incumbent before
	// the search starts: they tighten the bound immediately, which makes
	// the anytime mode useful on large workloads (a warm-started B&B, as
	// in the authors' parallel solver).
	Seeds []plan.Plan
}

// New returns a solver for the platform with default limits.
func New(plat *machine.Platform) *Solver {
	return &Solver{Plat: plat}
}

// maxSubsetApps bounds the memo table (subset bitmask indexing).
const maxSubsetApps = 20

type clusterScore struct {
	minSd float64
	maxSd float64
	stp   float64
}

// memo lazily computes per-(subset, ways) cluster scores. Filled slots
// are published through per-subset atomic pointers, so the read path —
// the overwhelming majority of accesses once the search is warm — is a
// single lock-free load. A subset computed concurrently by two workers is
// computed twice; the result is deterministic, so last-writer-wins is
// harmless.
type memo struct {
	n      int
	ways   int
	phases []*appmodel.PhaseSpec
	curves map[*appmodel.PhaseSpec]*appmodel.CurveCache
	alone  []float64 // alone IPC per app
	model  *sharing.Model
	scale  float64
	slots  []atomic.Pointer[[]clusterScore] // [subset] -> [ways+1]
}

func newMemo(phases []*appmodel.PhaseSpec, plat *machine.Platform, scale float64) *memo {
	n := len(phases)
	m := &memo{
		n:      n,
		ways:   plat.Ways,
		phases: phases,
		curves: make(map[*appmodel.PhaseSpec]*appmodel.CurveCache, n),
		alone:  make([]float64, n),
		model:  &sharing.Model{Plat: plat, CacheIters: 12, Damping: 0.6},
		scale:  scale,
		slots:  make([]atomic.Pointer[[]clusterScore], 1<<n),
	}
	for i, ph := range phases {
		if _, ok := m.curves[ph]; !ok {
			m.curves[ph] = appmodel.NewCurveCache(ph, plat)
		}
		m.alone[i] = m.curves[ph].Perf(plat.LLCBytes(), 1).IPC
	}
	return m
}

// newEvaluator returns a fresh per-worker evaluation session that shares
// the memo's immutable curve caches.
func (m *memo) newEvaluator() *sharing.Evaluator {
	return sharing.NewEvaluatorWithCurves(m.model, m.curves)
}

// get returns the score table (indexed by way count) for a subset,
// computing it with the worker's private scratch on a miss.
//
//lfoc:hotpath
func (m *memo) get(subset uint32, w *worker) []clusterScore {
	if p := m.slots[subset].Load(); p != nil {
		return *p
	}
	t := m.compute(subset, w)
	m.slots[subset].Store(&t)
	return t
}

// compute scores one member subset at every way count.
func (m *memo) compute(subset uint32, w *worker) []clusterScore {
	members := w.members[:0]
	for i := 0; i < m.n; i++ {
		if subset&(1<<i) != 0 {
			members = append(members, i)
		}
	}
	t := make([]clusterScore, m.ways+1)
	apps := w.apps[:len(members)]
	for ways := 1; ways <= m.ways; ways++ {
		mask := cat.MaskRange(0, ways)
		for j, i := range members {
			apps[j] = sharing.App{ID: i, Phase: m.phases[i], Mask: mask}
		}
		w.res = w.eval.EvaluateAtScaleInto(w.res, apps, m.scale)
		sc := clusterScore{minSd: math.Inf(1), maxSd: 0, stp: 0}
		for j, i := range members {
			sd := m.alone[i] / w.res[j].Perf.IPC
			if sd < 1 {
				sd = 1
			}
			sc.minSd = math.Min(sc.minSd, sd)
			sc.maxSd = math.Max(sc.maxSd, sd)
			sc.stp += 1 / sd
		}
		t[ways] = sc
	}
	return t
}

// stockScale estimates the workload-level bandwidth inflation under the
// stock (single shared cluster) configuration.
func stockScale(phases []*appmodel.PhaseSpec, plat *machine.Platform) float64 {
	model := sharing.NewModel(plat)
	apps := make([]sharing.App, len(phases))
	for i, ph := range phases {
		apps[i] = sharing.App{ID: i, Phase: ph, Mask: cat.FullMask(plat.Ways)}
	}
	return model.MemScale(apps)
}

// OptimalClustering searches the full cache-clustering space.
func (s *Solver) OptimalClustering(phases []*appmodel.PhaseSpec, obj Objective) (Solution, error) {
	return s.solve(phases, obj, false)
}

// OptimalPartitioning restricts the search to strict cache partitioning:
// every application in its own cluster (feasible only when the
// application count does not exceed the way count).
func (s *Solver) OptimalPartitioning(phases []*appmodel.PhaseSpec, obj Objective) (Solution, error) {
	if len(phases) > s.Plat.Ways {
		return Solution{}, fmt.Errorf("pbb: partitioning infeasible: %d apps > %d ways", len(phases), s.Plat.Ways)
	}
	return s.solve(phases, obj, true)
}

func (s *Solver) solve(phases []*appmodel.PhaseSpec, obj Objective, partitioningOnly bool) (Solution, error) {
	n := len(phases)
	maxApps := s.MaxApps
	if maxApps <= 0 {
		maxApps = 16
	}
	if maxApps > maxSubsetApps {
		maxApps = maxSubsetApps
	}
	if n == 0 {
		return Solution{}, fmt.Errorf("pbb: empty workload")
	}
	if n > maxApps {
		return Solution{}, fmt.Errorf("pbb: %d applications exceed the solver limit of %d", n, maxApps)
	}
	budget := s.NodeBudget
	if budget == 0 {
		budget = 2_000_000
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	scale := stockScale(phases, s.Plat)
	mm := newMemo(phases, s.Plat, scale)

	// Identical-profile groups for symmetry breaking: identical[i] is the
	// index of the previous app with the same spec pointer, or -1.
	identical := make([]int, n)
	for i := range identical {
		identical[i] = -1
		for j := i - 1; j >= 0; j-- {
			if phases[j] == phases[i] {
				identical[i] = j
				break
			}
		}
	}

	search := &searcher{
		solver:   s,
		memo:     mm,
		obj:      obj,
		n:        n,
		ways:     s.Plat.Ways,
		ident:    identical,
		budget:   budget,
		partOnly: partitioningOnly,
	}
	search.storeBestUnf(math.Inf(1))
	search.storeBestSTP(math.Inf(-1))

	serial := search.newWorker()
	for _, seed := range s.Seeds {
		search.offerSeed(seed, serial)
	}

	if partitioningOnly {
		subsets := serial.subsets[:n]
		for i := range subsets {
			subsets[i] = 1 << i
		}
		serial.nodes++
		search.scorePartition(subsets, serial)
		serial.flush()
	} else {
		search.run(workers)
	}

	if search.bestPlan == nil {
		return Solution{}, fmt.Errorf("pbb: search found no feasible solution")
	}

	// Re-score the winner with the full bandwidth fixed point.
	model := sharing.NewModel(s.Plat)
	slow, err := sharing.EvaluatePlan(model, phases, *search.bestPlan)
	if err != nil {
		return Solution{}, fmt.Errorf("pbb: rescoring winner: %w", err)
	}
	unf, stp := summarize(slow)
	nodes := search.nodes.Load()
	return Solution{
		Plan:       *search.bestPlan,
		Slowdowns:  slow,
		Unfairness: unf,
		STP:        stp,
		Exact:      nodes <= budget,
		Nodes:      nodes,
		Pruned:     search.pruned.Load(),
	}, nil
}

func summarize(slow []float64) (unfairness, stp float64) {
	lo, hi := math.Inf(1), 0.0
	for _, s := range slow {
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
		stp += 1 / s
	}
	return hi / lo, stp
}
