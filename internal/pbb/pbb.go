// Package pbb reimplements the PBBCache simulator's core capability [8]:
// determining the (approximately) optimal cache-clustering and
// cache-partitioning solutions for a workload from offline per-size
// profiles, for fairness or throughput objectives, using a parallel
// branch-and-bound search.
//
// Search space. A solution is a set partition of the applications into
// clusters plus a distribution of the k LLC ways among the clusters
// (§2.2). Set partitions are enumerated as restricted growth strings with
// two reductions: (a) partitions with more clusters than ways are
// infeasible, and (b) applications with identical profiles are
// interchangeable, so only representatives with nondecreasing cluster
// indices among identical apps are visited. For every complete partition,
// all ways-compositions are scored.
//
// Scoring. Cluster behaviour depends only on (member set, way count), so
// scores are memoized per subset bitmask: min/max member slowdown and the
// Σ1/slowdown STP contribution at every way count. Co-run slowdowns come
// from the internal/sharing equilibrium under a frozen workload-level
// bandwidth inflation factor (the factor the stock configuration
// converges to), which keeps candidate scoring decomposable; the final
// winner is re-scored with the full bandwidth fixed point.
//
// Bounding. A partial partition is pruned when a lower bound on its best
// achievable unfairness — the largest member slowdown any of its clusters
// would suffer even with the maximum feasible way count, divided by an
// optimistic bound on the workload's minimum slowdown — already exceeds
// the incumbent. For the throughput objective the bound is the optimistic
// STP sum. The search is an *anytime* branch-and-bound: a node budget
// caps exploration and the best solution found so far is returned with
// Exact=false, mirroring the paper's own use of an approximated optimum
// ("which we could approximate by means of a simulator", §3).
package pbb

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/cat"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/plan"
	"github.com/faircache/lfoc/internal/sharing"
)

// Objective selects what the solver optimizes.
type Objective int

const (
	// Fairness minimizes unfairness, breaking ties by maximum STP — the
	// paper's "optimal (minimal) unfairness value for the maximum
	// throughput attainable".
	Fairness Objective = iota
	// Throughput maximizes STP, breaking ties by minimum unfairness.
	Throughput
)

func (o Objective) String() string {
	if o == Throughput {
		return "throughput"
	}
	return "fairness"
}

// Solution is the solver's result.
type Solution struct {
	Plan       plan.Plan
	Slowdowns  []float64
	Unfairness float64
	STP        float64
	// Exact is false when the node budget was exhausted before the
	// search completed (anytime mode).
	Exact bool
	// Nodes is the number of partition nodes visited; Pruned counts
	// subtrees cut by the bound.
	Nodes  uint64
	Pruned uint64
}

// Solver computes optimal clusterings.
type Solver struct {
	Plat *machine.Platform
	// Workers bounds parallelism (default: GOMAXPROCS).
	Workers int
	// NodeBudget caps visited partition nodes (default 2e6; 0 = default).
	NodeBudget uint64
	// MaxApps guards against accidental exponential blowups (default 16).
	MaxApps int
	// Seeds are heuristic plans offered as the initial incumbent before
	// the search starts: they tighten the bound immediately, which makes
	// the anytime mode useful on large workloads (a warm-started B&B, as
	// in the authors' parallel solver).
	Seeds []plan.Plan
}

// New returns a solver for the platform with default limits.
func New(plat *machine.Platform) *Solver {
	return &Solver{Plat: plat}
}

// maxSubsetApps bounds the memo table (subset bitmask indexing).
const maxSubsetApps = 20

type clusterScore struct {
	minSd float64
	maxSd float64
	stp   float64
}

// memo lazily computes per-(subset, ways) cluster scores.
type memo struct {
	n      int
	ways   int
	phases []*appmodel.PhaseSpec
	alone  []float64 // alone IPC per app
	model  *sharing.Model
	scale  float64
	mu     sync.Mutex
	table  [][]clusterScore // [subset] -> [ways+1]
	done   []bool
}

func newMemo(phases []*appmodel.PhaseSpec, plat *machine.Platform, scale float64) *memo {
	n := len(phases)
	m := &memo{
		n:      n,
		ways:   plat.Ways,
		phases: phases,
		alone:  make([]float64, n),
		model:  &sharing.Model{Plat: plat, CacheIters: 12, Damping: 0.6},
		scale:  scale,
		table:  make([][]clusterScore, 1<<n),
		done:   make([]bool, 1<<n),
	}
	for i, ph := range phases {
		m.alone[i] = appmodel.PhasePerf(ph, plat, plat.LLCBytes(), 1).IPC
	}
	return m
}

// get returns the score table (indexed by way count) for a subset.
func (m *memo) get(subset uint32) []clusterScore {
	m.mu.Lock()
	if m.done[subset] {
		t := m.table[subset]
		m.mu.Unlock()
		return t
	}
	m.mu.Unlock()

	// Compute outside the lock (duplicate computation is harmless and
	// deterministic).
	var members []int
	for i := 0; i < m.n; i++ {
		if subset&(1<<i) != 0 {
			members = append(members, i)
		}
	}
	t := make([]clusterScore, m.ways+1)
	apps := make([]sharing.App, len(members))
	for w := 1; w <= m.ways; w++ {
		mask := cat.MaskRange(0, w)
		for j, i := range members {
			apps[j] = sharing.App{ID: i, Phase: m.phases[i], Mask: mask}
		}
		res := m.model.EvaluateAtScale(apps, m.scale)
		sc := clusterScore{minSd: math.Inf(1), maxSd: 0, stp: 0}
		for _, i := range members {
			sd := m.alone[i] / res[i].Perf.IPC
			if sd < 1 {
				sd = 1
			}
			sc.minSd = math.Min(sc.minSd, sd)
			sc.maxSd = math.Max(sc.maxSd, sd)
			sc.stp += 1 / sd
		}
		t[w] = sc
	}

	m.mu.Lock()
	m.table[subset] = t
	m.done[subset] = true
	m.mu.Unlock()
	return t
}

// stockScale estimates the workload-level bandwidth inflation under the
// stock (single shared cluster) configuration.
func stockScale(phases []*appmodel.PhaseSpec, plat *machine.Platform) float64 {
	model := sharing.NewModel(plat)
	apps := make([]sharing.App, len(phases))
	for i, ph := range phases {
		apps[i] = sharing.App{ID: i, Phase: ph, Mask: cat.FullMask(plat.Ways)}
	}
	return model.MemScale(apps)
}

// OptimalClustering searches the full cache-clustering space.
func (s *Solver) OptimalClustering(phases []*appmodel.PhaseSpec, obj Objective) (Solution, error) {
	return s.solve(phases, obj, false)
}

// OptimalPartitioning restricts the search to strict cache partitioning:
// every application in its own cluster (feasible only when the
// application count does not exceed the way count).
func (s *Solver) OptimalPartitioning(phases []*appmodel.PhaseSpec, obj Objective) (Solution, error) {
	if len(phases) > s.Plat.Ways {
		return Solution{}, fmt.Errorf("pbb: partitioning infeasible: %d apps > %d ways", len(phases), s.Plat.Ways)
	}
	return s.solve(phases, obj, true)
}

func (s *Solver) solve(phases []*appmodel.PhaseSpec, obj Objective, partitioningOnly bool) (Solution, error) {
	n := len(phases)
	maxApps := s.MaxApps
	if maxApps <= 0 {
		maxApps = 16
	}
	if maxApps > maxSubsetApps {
		maxApps = maxSubsetApps
	}
	if n == 0 {
		return Solution{}, fmt.Errorf("pbb: empty workload")
	}
	if n > maxApps {
		return Solution{}, fmt.Errorf("pbb: %d applications exceed the solver limit of %d", n, maxApps)
	}
	budget := s.NodeBudget
	if budget == 0 {
		budget = 2_000_000
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	scale := stockScale(phases, s.Plat)
	mm := newMemo(phases, s.Plat, scale)

	// Identical-profile groups for symmetry breaking: identical[i] is the
	// index of the previous app with the same spec pointer, or -1.
	identical := make([]int, n)
	for i := range identical {
		identical[i] = -1
		for j := i - 1; j >= 0; j-- {
			if phases[j] == phases[i] {
				identical[i] = j
				break
			}
		}
	}

	search := &searcher{
		solver:   s,
		memo:     mm,
		obj:      obj,
		n:        n,
		ways:     s.Plat.Ways,
		ident:    identical,
		budget:   budget,
		bestUnf:  math.Inf(1),
		bestSTP:  math.Inf(-1),
		partOnly: partitioningOnly,
	}

	for _, seed := range s.Seeds {
		search.offerSeed(seed)
	}

	if partitioningOnly {
		subsets := make([]uint32, n)
		for i := range subsets {
			subsets[i] = 1 << i
		}
		search.nodes++
		search.scorePartition(subsets)
	} else {
		search.run(workers)
	}

	if search.bestPlan == nil {
		return Solution{}, fmt.Errorf("pbb: search found no feasible solution")
	}

	// Re-score the winner with the full bandwidth fixed point.
	model := sharing.NewModel(s.Plat)
	slow, err := sharing.EvaluatePlan(model, phases, *search.bestPlan)
	if err != nil {
		return Solution{}, fmt.Errorf("pbb: rescoring winner: %w", err)
	}
	unf, stp := summarize(slow)
	return Solution{
		Plan:       *search.bestPlan,
		Slowdowns:  slow,
		Unfairness: unf,
		STP:        stp,
		Exact:      search.nodes <= budget,
		Nodes:      search.nodes,
		Pruned:     search.pruned,
	}, nil
}

func summarize(slow []float64) (unfairness, stp float64) {
	lo, hi := math.Inf(1), 0.0
	for _, s := range slow {
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
		stp += 1 / s
	}
	return hi / lo, stp
}
