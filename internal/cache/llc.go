// Package cache implements a trace-driven, way-partitioned set-associative
// last-level cache model — the data plane of Intel CAT.
//
// The model enforces the CAT allocation semantics: on a miss, a task may
// only victimize lines in the ways its capacity bitmask (CBM) covers, but
// it may hit on its own lines anywhere (hits outside the current mask can
// occur right after a mask change, exactly as on real hardware). Per-task
// line ownership is tracked to provide CMT-style occupancy readings.
//
// This component plays two roles in the reproduction: it validates the
// analytic stack-distance model used by the fast contention simulator
// (internal/sharing), and it provides the "effective cache allocation"
// signal (§4.2, footnote 1) that LFOC's sensitive-class phase heuristic
// consumes.
package cache

import (
	"fmt"

	"github.com/faircache/lfoc/internal/cat"
)

type line struct {
	tag     uint64
	valid   bool
	owner   cat.TaskID
	lastUse uint64
}

// Stats aggregates per-task access statistics.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// Accesses returns the total number of accesses.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRatio returns Misses/Accesses (1 when no accesses occurred).
func (s Stats) MissRatio() float64 {
	if s.Accesses() == 0 {
		return 1
	}
	return float64(s.Misses) / float64(s.Accesses())
}

// LLC is a way-partitioned set-associative cache with per-set LRU
// replacement restricted to each task's way mask.
type LLC struct {
	sets      int
	ways      int
	lineBytes uint64
	lines     []line // sets*ways, row-major by set
	clock     uint64
	masks     map[cat.TaskID]cat.WayMask
	stats     map[cat.TaskID]*Stats
	occLines  map[cat.TaskID]uint64
	fullMask  cat.WayMask
}

// New creates an LLC with the given geometry. sets must be a power of two.
func New(sets, ways int, lineBytes uint64) (*LLC, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: sets must be a positive power of two, got %d", sets)
	}
	if ways <= 0 || ways > 32 {
		return nil, fmt.Errorf("cache: ways must be in [1,32], got %d", ways)
	}
	if lineBytes == 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: lineBytes must be a positive power of two, got %d", lineBytes)
	}
	return &LLC{
		sets:      sets,
		ways:      ways,
		lineBytes: lineBytes,
		lines:     make([]line, sets*ways),
		masks:     map[cat.TaskID]cat.WayMask{},
		stats:     map[cat.TaskID]*Stats{},
		occLines:  map[cat.TaskID]uint64{},
		fullMask:  cat.FullMask(ways),
	}, nil
}

// Sets returns the number of sets.
func (c *LLC) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *LLC) Ways() int { return c.ways }

// CapacityBytes returns the total capacity.
func (c *LLC) CapacityBytes() uint64 { return uint64(c.sets*c.ways) * c.lineBytes }

// SetMask installs the allocation mask for a task. An empty mask restores
// the default (all ways).
func (c *LLC) SetMask(task cat.TaskID, mask cat.WayMask) error {
	if mask == 0 {
		delete(c.masks, task)
		return nil
	}
	if mask&^c.fullMask != 0 {
		return fmt.Errorf("cache: mask %s exceeds %d ways", mask, c.ways)
	}
	c.masks[task] = mask
	return nil
}

// MaskOf returns the task's effective allocation mask.
func (c *LLC) MaskOf(task cat.TaskID) cat.WayMask {
	if m, ok := c.masks[task]; ok {
		return m
	}
	return c.fullMask
}

// Access performs one byte-address access on behalf of task and reports
// whether it hit.
func (c *LLC) Access(task cat.TaskID, addr uint64) bool {
	lineAddr := addr / c.lineBytes
	set := int(lineAddr) & (c.sets - 1)
	tag := lineAddr
	base := set * c.ways
	c.clock++

	st := c.stats[task]
	if st == nil {
		st = &Stats{}
		c.stats[task] = st
	}

	// Hit path: search every way (hits are allowed outside the mask).
	for w := 0; w < c.ways; w++ {
		l := &c.lines[base+w]
		if l.valid && l.tag == tag {
			l.lastUse = c.clock
			st.Hits++
			return true
		}
	}

	// Miss path: victimize within the task's mask only.
	st.Misses++
	mask := c.MaskOf(task)
	victim := -1
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		if !mask.Contains(w) {
			continue
		}
		l := &c.lines[base+w]
		if !l.valid {
			victim = w
			break
		}
		if l.lastUse < oldest {
			oldest = l.lastUse
			victim = w
		}
	}
	if victim < 0 {
		// Degenerate: empty effective mask; the access bypasses the cache.
		return false
	}
	l := &c.lines[base+victim]
	if l.valid {
		c.occLines[l.owner]--
	}
	l.tag = tag
	l.valid = true
	l.owner = task
	l.lastUse = c.clock
	c.occLines[task]++
	return false
}

// Stats returns a copy of the task's statistics.
func (c *LLC) Stats(task cat.TaskID) Stats {
	if s, ok := c.stats[task]; ok {
		return *s
	}
	return Stats{}
}

// ResetStats clears hit/miss statistics (cache contents are preserved),
// as when performance counters are reprogrammed.
func (c *LLC) ResetStats() {
	for _, s := range c.stats {
		*s = Stats{}
	}
}

// OccupancyBytes returns the CMT-style occupancy reading for a task: the
// number of bytes of LLC space its lines currently occupy.
func (c *LLC) OccupancyBytes(task cat.TaskID) uint64 {
	return c.occLines[task] * c.lineBytes
}

// Flush invalidates every line owned by the task (used when an
// application terminates).
func (c *LLC) Flush(task cat.TaskID) {
	for i := range c.lines {
		l := &c.lines[i]
		if l.valid && l.owner == task {
			l.valid = false
		}
	}
	c.occLines[task] = 0
}
