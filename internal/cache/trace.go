package cache

import "math/rand"

// Trace generators produce synthetic LLC access streams with known
// locality classes. They feed the LLC model in tests and examples and
// cross-validate the analytic stack-distance profiles: a StreamTrace
// behaves like a paper "streaming" program (no reuse at LLC sizes), a
// LoopTrace like a "sensitive" one (all-or-nothing reuse at its working
// set size), and a ZipfTrace like the mixed behaviours in between.

// TraceGen produces a stream of byte addresses.
type TraceGen interface {
	// Next returns the next access address.
	Next() uint64
}

// StreamTrace walks a huge footprint sequentially, never reusing a line.
type StreamTrace struct {
	next      uint64
	lineBytes uint64
}

// NewStreamTrace creates a streaming generator.
func NewStreamTrace(lineBytes uint64) *StreamTrace {
	return &StreamTrace{lineBytes: lineBytes}
}

// Next implements TraceGen.
func (s *StreamTrace) Next() uint64 {
	a := s.next
	s.next += s.lineBytes
	return a
}

// LoopTrace cycles through a fixed working set of bytes.
type LoopTrace struct {
	wsBytes   uint64
	lineBytes uint64
	pos       uint64
	base      uint64
}

// NewLoopTrace creates a generator looping over wsBytes starting at base.
func NewLoopTrace(base, wsBytes, lineBytes uint64) *LoopTrace {
	if wsBytes < lineBytes {
		wsBytes = lineBytes
	}
	return &LoopTrace{wsBytes: wsBytes, lineBytes: lineBytes, base: base}
}

// Next implements TraceGen.
func (l *LoopTrace) Next() uint64 {
	a := l.base + l.pos
	l.pos += l.lineBytes
	if l.pos >= l.wsBytes {
		l.pos = 0
	}
	return a
}

// ZipfTrace draws lines from a working set with a Zipf popularity skew:
// a few hot lines dominate, with a long cold tail — the typical shape of
// pointer-chasing SPEC codes.
type ZipfTrace struct {
	rng       *rand.Rand
	zipf      *rand.Zipf
	lineBytes uint64
	base      uint64
}

// NewZipfTrace creates a Zipf-distributed generator over wsBytes with the
// given skew s (>1; larger = more skew).
func NewZipfTrace(seed int64, base, wsBytes, lineBytes uint64, s float64) *ZipfTrace {
	if wsBytes < lineBytes {
		wsBytes = lineBytes
	}
	if s <= 1 {
		s = 1.0001
	}
	rng := rand.New(rand.NewSource(seed))
	return &ZipfTrace{
		rng:       rng,
		zipf:      rand.NewZipf(rng, s, 1, wsBytes/lineBytes-1),
		lineBytes: lineBytes,
		base:      base,
	}
}

// Next implements TraceGen.
func (z *ZipfTrace) Next() uint64 {
	return z.base + z.zipf.Uint64()*z.lineBytes
}

// MixTrace interleaves two generators with a fixed ratio: out of every
// `den` accesses, `num` come from a and the rest from b.
type MixTrace struct {
	a, b     TraceGen
	num, den int
	i        int
}

// NewMixTrace builds an interleaving generator.
func NewMixTrace(a, b TraceGen, num, den int) *MixTrace {
	if den <= 0 {
		den = 1
	}
	if num < 0 {
		num = 0
	}
	if num > den {
		num = den
	}
	return &MixTrace{a: a, b: b, num: num, den: den}
}

// Next implements TraceGen.
func (m *MixTrace) Next() uint64 {
	cur := m.i
	m.i = (m.i + 1) % m.den
	if cur < m.num {
		return m.a.Next()
	}
	return m.b.Next()
}
