package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/faircache/lfoc/internal/cat"
)

func mustLLC(t *testing.T, sets, ways int, lineBytes uint64) *LLC {
	t.Helper()
	c, err := New(sets, ways, lineBytes)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, 64); err == nil {
		t.Error("0 sets accepted")
	}
	if _, err := New(3, 4, 64); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := New(4, 0, 64); err == nil {
		t.Error("0 ways accepted")
	}
	if _, err := New(4, 33, 64); err == nil {
		t.Error("33 ways accepted")
	}
	if _, err := New(4, 4, 0); err == nil {
		t.Error("0 line bytes accepted")
	}
	if _, err := New(4, 4, 48); err == nil {
		t.Error("non-power-of-two line accepted")
	}
}

func TestGeometry(t *testing.T) {
	c := mustLLC(t, 64, 11, 64)
	if c.Sets() != 64 || c.Ways() != 11 {
		t.Error("geometry accessors wrong")
	}
	if c.CapacityBytes() != 64*11*64 {
		t.Errorf("capacity = %d", c.CapacityBytes())
	}
}

func TestHitMissBasics(t *testing.T) {
	c := mustLLC(t, 4, 2, 64)
	if c.Access(1, 0) {
		t.Error("first access should miss")
	}
	if !c.Access(1, 0) {
		t.Error("second access should hit")
	}
	if !c.Access(1, 63) {
		t.Error("same-line access should hit")
	}
	if c.Access(1, 64) {
		t.Error("next line should miss")
	}
	st := c.Stats(1)
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.MissRatio() != 0.5 {
		t.Errorf("miss ratio = %v", st.MissRatio())
	}
	if c.Stats(99).Accesses() != 0 {
		t.Error("unknown task should have empty stats")
	}
	if (Stats{}).MissRatio() != 1 {
		t.Error("empty stats miss ratio should be 1")
	}
}

func TestLRUWithinSet(t *testing.T) {
	// 1 set, 2 ways: touching A,B,C must evict A (LRU), then A misses.
	c := mustLLC(t, 1, 2, 64)
	addr := func(i int) uint64 { return uint64(i) * 64 }
	c.Access(1, addr(0)) // A
	c.Access(1, addr(1)) // B
	c.Access(1, addr(0)) // A hit; B is now LRU
	c.Access(1, addr(2)) // C evicts B
	if !c.Access(1, addr(0)) {
		t.Error("A should still be resident")
	}
	if c.Access(1, addr(1)) {
		t.Error("B should have been evicted")
	}
}

func TestPartitionIsolation(t *testing.T) {
	// Task 1 owns ways 0-1, task 2 owns ways 2-3. Task 2 thrashing its
	// partition must never evict task 1's lines.
	c := mustLLC(t, 16, 4, 64)
	if err := c.SetMask(1, cat.MaskRange(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.SetMask(2, cat.MaskRange(2, 2)); err != nil {
		t.Fatal(err)
	}
	// Task 1 loads a small working set that fits its 2 ways.
	for i := 0; i < 32; i++ {
		c.Access(1, uint64(i)*64)
	}
	// Task 2 streams a huge footprint.
	for i := 0; i < 100000; i++ {
		c.Access(2, uint64(1<<30)+uint64(i)*64)
	}
	// Task 1's lines must all still hit.
	c.ResetStats()
	for i := 0; i < 32; i++ {
		c.Access(1, uint64(i)*64)
	}
	if st := c.Stats(1); st.Misses != 0 {
		t.Errorf("partition isolation violated: %d misses", st.Misses)
	}
}

func TestOccupancyTracking(t *testing.T) {
	c := mustLLC(t, 16, 4, 64)
	_ = c.SetMask(1, cat.MaskRange(0, 2))
	for i := 0; i < 16*2; i++ { // exactly fills 2 ways of 16 sets
		c.Access(1, uint64(i)*64)
	}
	if occ := c.OccupancyBytes(1); occ != 16*2*64 {
		t.Errorf("occupancy = %d, want %d", occ, 16*2*64)
	}
	// Thrashing beyond the partition cannot raise occupancy.
	for i := 0; i < 1000; i++ {
		c.Access(1, uint64(i)*64)
	}
	if occ := c.OccupancyBytes(1); occ != 16*2*64 {
		t.Errorf("occupancy after thrash = %d, want %d", occ, 16*2*64)
	}
	c.Flush(1)
	if c.OccupancyBytes(1) != 0 {
		t.Error("flush did not clear occupancy")
	}
	// Flushed lines must miss again.
	c.ResetStats()
	c.Access(1, 0)
	if st := c.Stats(1); st.Misses != 1 {
		t.Error("flushed line still resident")
	}
}

func TestMaskChangeKeepsHits(t *testing.T) {
	// After shrinking a task's mask, lines previously placed outside the
	// new mask still produce hits (CAT constrains allocation, not lookup).
	c := mustLLC(t, 1, 4, 64)
	for i := 0; i < 4; i++ {
		c.Access(1, uint64(i)*64)
	}
	_ = c.SetMask(1, cat.MaskRange(0, 1))
	c.ResetStats()
	for i := 0; i < 4; i++ {
		c.Access(1, uint64(i)*64)
	}
	if st := c.Stats(1); st.Hits != 4 {
		t.Errorf("hits after mask shrink = %d, want 4", st.Hits)
	}
}

func TestSetMaskValidation(t *testing.T) {
	c := mustLLC(t, 4, 4, 64)
	if err := c.SetMask(1, cat.MaskRange(3, 3)); err == nil {
		t.Error("mask beyond associativity accepted")
	}
	_ = c.SetMask(1, cat.MaskRange(0, 2))
	if c.MaskOf(1) != cat.MaskRange(0, 2) {
		t.Error("mask not installed")
	}
	_ = c.SetMask(1, 0)
	if c.MaskOf(1) != cat.FullMask(4) {
		t.Error("empty mask should restore default")
	}
}

func TestStreamTraceNeverReuses(t *testing.T) {
	c := mustLLC(t, 64, 8, 64)
	tr := NewStreamTrace(64)
	for i := 0; i < 10000; i++ {
		c.Access(1, tr.Next())
	}
	if st := c.Stats(1); st.Hits != 0 {
		t.Errorf("stream trace produced %d hits", st.Hits)
	}
}

func TestLoopTraceFitsVsThrashes(t *testing.T) {
	const lineBytes = 64
	c := mustLLC(t, 4, 8, lineBytes) // 4*8*64 = 2048 B
	// Working set of 1 KiB fits; after warm-up it always hits.
	tr := NewLoopTrace(0, 1024, lineBytes)
	for i := 0; i < 1024/lineBytes; i++ {
		c.Access(1, tr.Next())
	}
	c.ResetStats()
	for i := 0; i < 1000; i++ {
		c.Access(1, tr.Next())
	}
	if st := c.Stats(1); st.Misses != 0 {
		t.Errorf("resident loop missed %d times", st.Misses)
	}
	// Working set of 4 KiB in a 2 KiB cache thrashes under LRU.
	c2 := mustLLC(t, 4, 8, lineBytes)
	tr2 := NewLoopTrace(0, 4096, lineBytes)
	for i := 0; i < 10000; i++ {
		c2.Access(1, tr2.Next())
	}
	if st := c2.Stats(1); st.MissRatio() < 0.99 {
		t.Errorf("oversized LRU loop should thrash, miss ratio %v", st.MissRatio())
	}
}

func TestZipfTraceSkew(t *testing.T) {
	tr := NewZipfTrace(42, 0, 1<<20, 64, 1.2)
	counts := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		counts[tr.Next()]++
	}
	if counts[0] < 1000 {
		t.Errorf("hottest line only %d accesses; zipf skew missing", counts[0])
	}
	if len(counts) < 100 {
		t.Errorf("only %d distinct lines; tail missing", len(counts))
	}
}

func TestMixTraceRatio(t *testing.T) {
	a := NewLoopTrace(0, 64, 64)     // always address 0
	b := NewLoopTrace(1<<30, 64, 64) // always address 2^30
	m := NewMixTrace(a, b, 1, 4)     // 25% from a
	na := 0
	for i := 0; i < 4000; i++ {
		if m.Next() < 1<<29 {
			na++
		}
	}
	if na != 1000 {
		t.Errorf("mix ratio: %d/4000 from a, want 1000", na)
	}
	// Degenerate parameters are clamped.
	d := NewMixTrace(a, b, 9, 0)
	_ = d.Next()
}

// Property: allocation never occurs outside a task's mask — after any
// access sequence, every valid line owned by a task that has a mask sits
// in a way the mask covers... observed indirectly: occupancy of a task
// never exceeds mask_ways * sets * lineBytes.
func TestQuickOccupancyBounded(t *testing.T) {
	f := func(seed int64, maskWays8 uint8) bool {
		maskWays := int(maskWays8%4) + 1
		c, err := New(8, 4, 64)
		if err != nil {
			return false
		}
		_ = c.SetMask(1, cat.MaskRange(0, maskWays))
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3000; i++ {
			c.Access(1, uint64(rng.Intn(1<<16))*64)
		}
		return c.OccupancyBytes(1) <= uint64(maskWays)*8*64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: two tasks with disjoint masks never evict each other (hit
// counts for a resident working set stay perfect regardless of the other
// task's behaviour).
func TestQuickIsolation(t *testing.T) {
	f := func(seed int64) bool {
		c, err := New(16, 4, 64)
		if err != nil {
			return false
		}
		_ = c.SetMask(1, cat.MaskRange(0, 2))
		_ = c.SetMask(2, cat.MaskRange(2, 2))
		for i := 0; i < 32; i++ {
			c.Access(1, uint64(i)*64)
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			c.Access(2, uint64(rng.Intn(1<<20))*64)
		}
		c.ResetStats()
		for i := 0; i < 32; i++ {
			c.Access(1, uint64(i)*64)
		}
		return c.Stats(1).Misses == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
