package harness

import (
	"fmt"

	"github.com/faircache/lfoc/internal/pbb"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/workloads"
)

// Fig3Row compares the optimal strict-partitioning solution against the
// optimal clustering solution at one workload size, with unfairness
// normalized to the clustering optimum (the paper's Fig. 3).
type Fig3Row struct {
	Apps             int
	NormClustering   float64 // always 1.0 (the baseline)
	NormPartitioning float64
}

// Fig3Data is the figure's series.
type Fig3Data struct {
	Rows      []Fig3Row
	MixesPerN int
}

// Fig3 computes the average normalized unfairness of optimal
// partitioning vs. optimal clustering for workload sizes 4..11 (the
// paper's range; partitioning is infeasible beyond the way count).
func Fig3(cfg Config, mixesPerN int) (Fig3Data, error) {
	cfg = cfg.normalized()
	if mixesPerN <= 0 {
		mixesPerN = 5
	}
	var out Fig3Data
	out.MixesPerN = mixesPerN
	for n := 4; n <= cfg.Plat.Ways; n++ {
		ratioSum := 0.0
		for mi := 0; mi < mixesPerN; mi++ {
			w := workloads.RandomMix(int64(1000*n+mi), n)
			sw := cfg.staticWorkload(w)
			solver := pbb.New(cfg.Plat)
			solver.Workers = cfg.Workers
			solver.NodeBudget = cfg.SolverBudgetSmall
			if seed, err := (policy.LFOCStatic{}).Decide(sw); err == nil {
				solver.Seeds = append(solver.Seeds, seed)
			}
			clu, err := solver.OptimalClustering(sw.Phases, pbb.Fairness)
			if err != nil {
				return Fig3Data{}, fmt.Errorf("fig3: n=%d mix=%d clustering: %w", n, mi, err)
			}
			part, err := solver.OptimalPartitioning(sw.Phases, pbb.Fairness)
			if err != nil {
				return Fig3Data{}, fmt.Errorf("fig3: n=%d mix=%d partitioning: %w", n, mi, err)
			}
			ratioSum += part.Unfairness / clu.Unfairness
		}
		out.Rows = append(out.Rows, Fig3Row{
			Apps:             n,
			NormClustering:   1.0,
			NormPartitioning: ratioSum / float64(mixesPerN),
		})
	}
	return out, nil
}

// Render formats the figure.
func (d Fig3Data) Render() string {
	rows := [][]string{{"apps", "optimal-clustering", "optimal-partitioning"}}
	for _, r := range d.Rows {
		rows = append(rows, []string{fmt.Sprint(r.Apps), f3(r.NormClustering), f3(r.NormPartitioning)})
	}
	return fmt.Sprintf("Fig. 3: Optimal clustering vs optimal partitioning (normalized unfairness, %d mixes per size)\n",
		d.MixesPerN) + renderTable(rows)
}
