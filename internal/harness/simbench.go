package harness

import (
	"fmt"
	"runtime"
	"time"

	"github.com/faircache/lfoc/internal/cluster"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/workloads"
)

// SimBenchRow is one simulator-throughput measurement: a fixed,
// deterministic kernel workload timed over several runs. TicksPerRun is
// exact (the simulated duration over the tick width, identical on every
// machine), so TicksPerSec is comparable across revisions even if a
// config change alters how long the scenario simulates — benchdiff
// gates on it rather than on wall-clock per run.
type SimBenchRow struct {
	Name        string  `json:"name"`
	TicksPerRun float64 `json:"ticks_per_run"`
	MsPerRun    float64 `json:"ms_per_run"`
	TicksPerSec float64 `json:"ticks_per_sec"`
	// AllocsPerRun is the heap-allocation count per run
	// (runtime.MemStats.Mallocs delta): deterministic for the
	// deterministic simulator, so any growth is a real code change.
	AllocsPerRun float64 `json:"allocs_per_run"`
}

// SimBenchData is the simulator-throughput baseline: the kernel's
// standing workloads (closed batch, open churn, 4-machine cluster,
// 1024-machine cluster).
type SimBenchData struct {
	Rows []SimBenchRow `json:"rows"`
}

// SimBenchCase is one simulator-throughput workload: Run executes it
// once and returns the exact number of simulated ticks it advanced.
// The cases are shared between SimBench (the BENCH_sim.json rows the
// CI gate compares) and the root-level BenchmarkSim* benchmarks, so
// the smoke benchmarks can never drift from the gated baseline.
type SimBenchCase struct {
	Name string
	Run  func() (float64, error)
}

// SimBenchCases builds the kernel's standing throughput workloads
// under the LFOC policy at the configured scale: the paper's closed
// batch on the S1 mix, an open-system churn run (seeded Poisson
// arrivals), a 4-machine cluster behind one arrival stream
// (fairness-aware placement, serial advancement so allocation counts
// stay machine-independent), and a 1024-machine heterogeneous fleet
// under Poisson churn — the sparse-fleet regime the lazy fleet event
// queue exists for, gated so an accidental return to eager per-arrival
// barriers shows up as a throughput collapse.
func SimBenchCases(cfg Config) ([]SimBenchCase, error) {
	cfg = cfg.normalized()
	w, err := workloads.Get("S1")
	if err != nil {
		return nil, err
	}
	simCfg := cfg.SimConfig()
	if err := simCfg.Validate(); err != nil { // applies the TicksPerPeriod default
		return nil, err
	}
	ticksOf := func(simSeconds float64) float64 {
		return simSeconds / simCfg.PolicyPeriod.Seconds() * float64(simCfg.TicksPerPeriod)
	}

	closed := func() (float64, error) {
		pol, _, err := cfg.NewDynamicPolicy("lfoc")
		if err != nil {
			return 0, err
		}
		res, err := sim.RunDynamic(simCfg, w.ScaledSpecs(cfg.Scale), pol)
		if err != nil {
			return 0, err
		}
		return ticksOf(res.SimSeconds), nil
	}
	openChurn := func() (float64, error) {
		scn, err := w.OpenScenario(2, 4, 7, cfg.Scale)
		if err != nil {
			return 0, err
		}
		pol, _, err := cfg.NewDynamicPolicy("lfoc")
		if err != nil {
			return 0, err
		}
		res, err := sim.RunOpen(simCfg, scn, pol)
		if err != nil {
			return 0, err
		}
		return ticksOf(res.SimSeconds), nil
	}
	cluster4 := func() (float64, error) {
		scn, err := w.OpenScenario(4, 4, 7, cfg.Scale)
		if err != nil {
			return 0, err
		}
		pl, err := cluster.NewPlacement("fair", cfg.Plat)
		if err != nil {
			return 0, err
		}
		ccfg := cluster.Config{Sim: simCfg, Machines: 4, Placement: pl, Workers: 1}
		res, err := cluster.Run(ccfg, scn, func(int) (sim.Dynamic, error) {
			pol, _, err := cfg.NewDynamicPolicy("lfoc")
			return pol, err
		})
		if err != nil {
			return 0, err
		}
		// Cluster throughput counts every machine's ticks: advancement
		// cost is the sum over the fleet, not the longest machine.
		var ticks float64
		for _, m := range res.PerMachine {
			ticks += ticksOf(m.Open.SimSeconds)
		}
		return ticks, nil
	}

	cluster1k := func() (float64, error) {
		scn, err := w.OpenScenario(128, 4, 7, cfg.Scale)
		if err != nil {
			return 0, err
		}
		fleet, err := cluster.ParseMachineMix("512x11way,512x7way", simCfg)
		if err != nil {
			return 0, err
		}
		ccfg := cluster.Config{Fleet: fleet, Placement: cluster.NewLeastLoaded(), Workers: 1}
		res, err := cluster.Run(ccfg, scn, func(i int) (sim.Dynamic, error) {
			pol, _, err := cfg.NewDynamicPolicyFor("lfoc", fleet[i].Plat)
			return pol, err
		})
		if err != nil {
			return 0, err
		}
		var ticks float64
		for _, m := range res.PerMachine {
			ticks += ticksOf(m.Open.SimSeconds)
		}
		return ticks, nil
	}

	return []SimBenchCase{
		{"closed-batch", closed},
		{"open-churn", openChurn},
		{"cluster-4", cluster4},
		{"cluster-1k", cluster1k},
	}, nil
}

// SimBench times every SimBenchCases workload. cmd/lfoc-bench -sim
// writes the result as BENCH_sim.json and cmd/benchdiff gates
// regressions against the committed baseline.
func SimBench(cfg Config, iters int) (SimBenchData, error) {
	if iters <= 0 {
		iters = 5
	}
	cases, err := SimBenchCases(cfg)
	if err != nil {
		return SimBenchData{}, err
	}
	var out SimBenchData
	for _, c := range cases {
		var ms0, ms1 runtime.MemStats
		var ticks float64
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for it := 0; it < iters; it++ {
			t, err := c.Run()
			if err != nil {
				return SimBenchData{}, fmt.Errorf("simbench: %s: %w", c.Name, err)
			}
			ticks = t
		}
		elapsed := time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)
		out.Rows = append(out.Rows, SimBenchRow{
			Name:         c.Name,
			TicksPerRun:  ticks,
			MsPerRun:     elapsed * 1000 / float64(iters),
			TicksPerSec:  ticks * float64(iters) / elapsed,
			AllocsPerRun: float64(ms1.Mallocs-ms0.Mallocs) / float64(iters),
		})
	}
	return out, nil
}

// Render formats the sim-throughput rows.
func (d SimBenchData) Render() string {
	rows := [][]string{{"scenario", "ticks/run", "ms/run", "ticks/sec", "allocs/run"}}
	for _, r := range d.Rows {
		rows = append(rows, []string{
			r.Name,
			fmt.Sprintf("%.0f", r.TicksPerRun),
			fmt.Sprintf("%.2f", r.MsPerRun),
			fmt.Sprintf("%.0f", r.TicksPerSec),
			fmt.Sprintf("%.0f", r.AllocsPerRun),
		})
	}
	return "Simulator throughput (kernel event-horizon advancement)\n" + renderTable(rows)
}
