package harness

import (
	"fmt"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/pbb"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/workloads"
)

// Fig2Row aggregates the optimal clustering's structure at one cluster
// size: how many clusters of that size the optimal solutions build and
// the average number of applications of each class inside them.
type Fig2Row struct {
	Size         int
	ClusterCount int
	AvgLight     float64
	AvgStreaming float64
	AvgSensitive float64
}

// Fig2Data reproduces Fig. 2 plus the §3 headline shares: the fraction
// of streaming instances confined to 1-way clusters (paper: >87%) and of
// sensitive instances in clusters of ≥4 ways (paper: >77%).
type Fig2Data struct {
	Rows             []Fig2Row
	StreamingIn1Way  float64
	SensitiveIn4Plus float64
	Mixes            int
	Exact            int // how many solves completed exactly
}

// Fig2 determines the optimal-fairness clustering for `mixes` random
// 10-application workloads (the paper uses 20) and aggregates cluster
// structure by size.
func Fig2(cfg Config, mixes int) (Fig2Data, error) {
	cfg = cfg.normalized()
	if mixes <= 0 {
		mixes = 20
	}
	counts := make([]int, cfg.Plat.Ways+1)
	classSum := make([][3]int, cfg.Plat.Ways+1) // [size] -> (light, streaming, sensitive)
	var streamTotal, streamIn1, sensTotal, sensIn4 int
	exact := 0

	for mi := 0; mi < mixes; mi++ {
		w := workloads.RandomMix(int64(100+mi), 10)
		sw := cfg.staticWorkload(w)
		solver := pbb.New(cfg.Plat)
		solver.NodeBudget = cfg.SolverBudgetSmall
		solver.Workers = cfg.Workers
		if seed, err := (policy.LFOCStatic{}).Decide(sw); err == nil {
			solver.Seeds = append(solver.Seeds, seed)
		}
		sol, err := solver.OptimalClustering(sw.Phases, pbb.Fairness)
		if err != nil {
			return Fig2Data{}, fmt.Errorf("fig2: mix %d: %w", mi, err)
		}
		if sol.Exact {
			exact++
		}
		classes := make([]appmodel.Class, len(w.Benchmarks))
		for i := range w.Benchmarks {
			classes[i] = appmodel.DefaultCriteria().Classify(sw.Tables[i])
		}
		for _, c := range sol.Plan.Clusters {
			counts[c.Ways]++
			for _, a := range c.Apps {
				switch classes[a] {
				case appmodel.ClassStreaming:
					classSum[c.Ways][1]++
					streamTotal++
					if c.Ways == 1 {
						streamIn1++
					}
				case appmodel.ClassSensitive:
					classSum[c.Ways][2]++
					sensTotal++
					if c.Ways >= 4 {
						sensIn4++
					}
				default:
					classSum[c.Ways][0]++
				}
			}
		}
	}

	var out Fig2Data
	out.Mixes = mixes
	out.Exact = exact
	for size := 1; size <= cfg.Plat.Ways; size++ {
		if counts[size] == 0 {
			continue
		}
		n := float64(counts[size])
		out.Rows = append(out.Rows, Fig2Row{
			Size:         size,
			ClusterCount: counts[size],
			AvgLight:     float64(classSum[size][0]) / n,
			AvgStreaming: float64(classSum[size][1]) / n,
			AvgSensitive: float64(classSum[size][2]) / n,
		})
	}
	if streamTotal > 0 {
		out.StreamingIn1Way = float64(streamIn1) / float64(streamTotal)
	}
	if sensTotal > 0 {
		out.SensitiveIn4Plus = float64(sensIn4) / float64(sensTotal)
	}
	return out, nil
}

// Render formats the figure.
func (d Fig2Data) Render() string {
	rows := [][]string{{"cluster-size(ways)", "cluster-count", "avg-light", "avg-streaming", "avg-sensitive"}}
	for _, r := range d.Rows {
		rows = append(rows, []string{
			fmt.Sprint(r.Size), fmt.Sprint(r.ClusterCount),
			f2(r.AvgLight), f2(r.AvgStreaming), f2(r.AvgSensitive),
		})
	}
	s := fmt.Sprintf("Fig. 2: Optimal-clustering structure over %d random 10-app mixes (%d exact solves)\n",
		d.Mixes, d.Exact)
	s += renderTable(rows)
	s += fmt.Sprintf("streaming instances in 1-way clusters: %.1f%% (paper: >87%%)\n", d.StreamingIn1Way*100)
	s += fmt.Sprintf("sensitive instances in >=4-way clusters: %.1f%% (paper: >77%%)\n", d.SensitiveIn4Plus*100)
	return s
}
