package harness

import (
	"fmt"

	"github.com/faircache/lfoc/internal/metrics"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/workloads"
)

// UCPRow compares strict utility-based partitioning against LFOC's
// clustering on one workload (normalized to stock).
type UCPRow struct {
	Workload string
	UCPUnf   float64
	LFOCUnf  float64
	UCPSTP   float64
	LFOCSTP  float64
}

// UCPData is the supplementary experiment behind §2.2's motivation:
// strict cache partitioning (one partition per app — UCP) is feasible
// only while apps ≤ ways and loses to clustering as the ratio tightens.
// Only the 8-app S workloads qualify on the 11-way platform.
type UCPData struct {
	Rows       []UCPRow
	GeoUCPUnf  float64
	GeoLFOCUnf float64
}

// SupplementUCP runs the comparison over the feasible S workloads
// (nil = all S workloads with ≤ 11 applications).
func SupplementUCP(cfg Config, names []string) (UCPData, error) {
	cfg = cfg.normalized()
	var list []workloads.Workload
	if names == nil {
		for _, w := range workloads.SWorkloads() {
			if w.Size <= cfg.Plat.Ways {
				list = append(list, w)
			}
		}
	} else {
		for _, n := range names {
			w, err := workloads.Get(n)
			if err != nil {
				return UCPData{}, err
			}
			list = append(list, w)
		}
	}
	if len(list) == 0 {
		return UCPData{}, fmt.Errorf("ucp: no feasible workloads")
	}

	simCfg := cfg.SimConfig()
	var data UCPData
	var ucpAgg, lfocAgg []float64
	for _, w := range list {
		sw := cfg.staticWorkload(w)
		specs := w.ScaledSpecs(cfg.Scale)

		stockPlan, err := (policy.Stock{}).Decide(sw)
		if err != nil {
			return UCPData{}, err
		}
		stockRes, err := sim.RunStatic(simCfg, specs, stockPlan)
		if err != nil {
			return UCPData{}, err
		}
		ucpPlan, err := (policy.UCP{}).Decide(sw)
		if err != nil {
			return UCPData{}, fmt.Errorf("%s: %w", w.Name, err)
		}
		ucpRes, err := sim.RunStatic(simCfg, specs, ucpPlan)
		if err != nil {
			return UCPData{}, err
		}
		lfocPlan, err := (policy.LFOCStatic{}).Decide(sw)
		if err != nil {
			return UCPData{}, err
		}
		lfocRes, err := sim.RunStatic(simCfg, specs, lfocPlan)
		if err != nil {
			return UCPData{}, err
		}
		row := UCPRow{
			Workload: w.Name,
			UCPUnf:   ucpRes.Summary.Unfairness / stockRes.Summary.Unfairness,
			LFOCUnf:  lfocRes.Summary.Unfairness / stockRes.Summary.Unfairness,
			UCPSTP:   ucpRes.Summary.STP / stockRes.Summary.STP,
			LFOCSTP:  lfocRes.Summary.STP / stockRes.Summary.STP,
		}
		data.Rows = append(data.Rows, row)
		ucpAgg = append(ucpAgg, row.UCPUnf)
		lfocAgg = append(lfocAgg, row.LFOCUnf)
	}
	var err error
	if data.GeoUCPUnf, err = metrics.GeoMean(ucpAgg); err != nil {
		return UCPData{}, err
	}
	if data.GeoLFOCUnf, err = metrics.GeoMean(lfocAgg); err != nil {
		return UCPData{}, err
	}
	return data, nil
}

// Render formats the comparison.
func (d UCPData) Render() string {
	rows := [][]string{{"workload", "UCP-unf", "LFOC-unf", "UCP-STP", "LFOC-STP"}}
	for _, r := range d.Rows {
		rows = append(rows, []string{r.Workload, f3(r.UCPUnf), f3(r.LFOCUnf), f3(r.UCPSTP), f3(r.LFOCSTP)})
	}
	rows = append(rows, []string{"geomean", f3(d.GeoUCPUnf), f3(d.GeoLFOCUnf), "", ""})
	return "Supplement: strict UCP partitioning vs LFOC clustering (normalized to Stock-Linux)\n" +
		renderTable(rows)
}
