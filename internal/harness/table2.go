package harness

import (
	"fmt"
	"runtime"
	"time"

	"github.com/faircache/lfoc/internal/core"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/workloads"
)

// Table2Row holds the average execution time — and, for the CI perf
// gate, the average heap allocations — of both partitioning algorithms
// for one workload size.
type Table2Row struct {
	Apps    int
	LFOCms  float64
	KPartms float64
	// LFOCAllocs and KPartAllocs are heap allocations per invocation
	// (runtime.MemStats.Mallocs deltas over the timing loop). Unlike the
	// millisecond columns they are essentially machine-independent,
	// which is what makes them a zero-tolerance regression signal.
	LFOCAllocs  float64
	KPartAllocs float64
}

// Table2Data reproduces Table 2: the execution-time comparison of LFOC's
// partitioning algorithm against KPart's for 4..11 applications. The
// reproduced claim is the orders-of-magnitude gap and its growth with n,
// not the absolute microsecond values of the authors' machine.
type Table2Data struct {
	Rows []Table2Row
}

// Table2 times both algorithms over random mixes of each size.
func Table2(cfg Config, itersPerSize int) (Table2Data, error) {
	cfg = cfg.normalized()
	if itersPerSize <= 0 {
		itersPerSize = 200
	}
	var out Table2Data
	for n := 4; n <= 11; n++ {
		w := workloads.RandomMix(int64(7000+n), n)
		sw := cfg.staticWorkload(w)

		// LFOC input: classified fixed-point app infos (the algorithm's
		// input in the kernel; classification happens separately).
		params := core.DefaultParams(cfg.Plat.Ways)
		infos := make([]core.AppInfo, n)
		for i, t := range sw.Tables {
			prof := policy.ProfileFromTable(t)
			infos[i] = core.AppInfo{ID: i, Class: core.Classify(prof, &params), Profile: prof}
		}

		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for it := 0; it < itersPerSize; it++ {
			if _, err := core.Partition(infos, &params); err != nil {
				return Table2Data{}, fmt.Errorf("table2: lfoc n=%d: %w", n, err)
			}
		}
		lfocMs := time.Since(start).Seconds() * 1000 / float64(itersPerSize)
		runtime.ReadMemStats(&ms1)
		lfocAllocs := float64(ms1.Mallocs-ms0.Mallocs) / float64(itersPerSize)

		kp := policy.KPart{}
		runtime.ReadMemStats(&ms0)
		start = time.Now()
		for it := 0; it < itersPerSize; it++ {
			if _, err := kp.Decide(sw); err != nil {
				return Table2Data{}, fmt.Errorf("table2: kpart n=%d: %w", n, err)
			}
		}
		kpartMs := time.Since(start).Seconds() * 1000 / float64(itersPerSize)
		runtime.ReadMemStats(&ms1)
		kpartAllocs := float64(ms1.Mallocs-ms0.Mallocs) / float64(itersPerSize)

		out.Rows = append(out.Rows, Table2Row{
			Apps:   n,
			LFOCms: lfocMs, KPartms: kpartMs,
			LFOCAllocs: lfocAllocs, KPartAllocs: kpartAllocs,
		})
	}
	return out, nil
}

// Render formats the table with the paper's row layout.
func (d Table2Data) Render() string {
	header := []string{"#Apps"}
	lfoc := []string{"LFOC (ms)"}
	kpart := []string{"KPart (ms)"}
	ratio := []string{"KPart/LFOC"}
	for _, r := range d.Rows {
		header = append(header, fmt.Sprint(r.Apps))
		lfoc = append(lfoc, fmt.Sprintf("%.5f", r.LFOCms))
		kpart = append(kpart, fmt.Sprintf("%.5f", r.KPartms))
		ratio = append(ratio, f1(r.KPartms/r.LFOCms))
	}
	return "Table 2: Average execution time (ms) of the KPart and LFOC algorithms\n" +
		renderTable([][]string{header, lfoc, kpart, ratio})
}
