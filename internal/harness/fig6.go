package harness

import (
	"fmt"

	"github.com/faircache/lfoc/internal/metrics"
	"github.com/faircache/lfoc/internal/plan"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/workloads"
)

// Fig6Policies is the policy order of Fig. 6's legend (Stock-Linux is
// the normalization baseline and is reported implicitly as 1.0).
var Fig6Policies = []string{"Dunn", "KPart", "LFOC", "Best-Static"}

// Fig6Row holds one workload's normalized metrics, indexed like
// Fig6Policies.
type Fig6Row struct {
	Workload string
	NormUnf  []float64
	NormSTP  []float64
}

// Fig6Data reproduces Fig. 6: unfairness and STP of the static
// clustering algorithms on the S workloads, normalized to Stock-Linux.
type Fig6Data struct {
	Rows []Fig6Row
	// Aggregates over all workloads (geometric means of the normalized
	// metrics).
	AvgNormUnf []float64
	AvgNormSTP []float64
}

// Fig6 runs the static-mode comparison (§5.1) over the given S
// workloads (nil = all 21).
func Fig6(cfg Config, names []string) (Fig6Data, error) {
	cfg = cfg.normalized()
	list := workloads.SWorkloads()
	if names != nil {
		list = nil
		for _, n := range names {
			w, err := workloads.Get(n)
			if err != nil {
				return Fig6Data{}, err
			}
			list = append(list, w)
		}
	}

	// Workload rows are independent experiments: fan them out over a
	// bounded worker pool (row order, and therefore every aggregate, is
	// preserved).
	rows, err := mapRows(cfg.workers(), list, func(w workloads.Workload) (Fig6Row, error) {
		row, err := fig6Workload(cfg, w)
		if err != nil {
			return Fig6Row{}, fmt.Errorf("fig6: %s: %w", w.Name, err)
		}
		return row, nil
	})
	if err != nil {
		return Fig6Data{}, err
	}

	var data Fig6Data
	unfAgg := make([][]float64, len(Fig6Policies))
	stpAgg := make([][]float64, len(Fig6Policies))
	for _, row := range rows {
		data.Rows = append(data.Rows, row)
		for pi := range Fig6Policies {
			unfAgg[pi] = append(unfAgg[pi], row.NormUnf[pi])
			stpAgg[pi] = append(stpAgg[pi], row.NormSTP[pi])
		}
	}
	for pi := range Fig6Policies {
		gu, err := metrics.GeoMean(unfAgg[pi])
		if err != nil {
			return Fig6Data{}, err
		}
		gs, err := metrics.GeoMean(stpAgg[pi])
		if err != nil {
			return Fig6Data{}, err
		}
		data.AvgNormUnf = append(data.AvgNormUnf, gu)
		data.AvgNormSTP = append(data.AvgNormSTP, gs)
	}
	return data, nil
}

// fig6Workload evaluates all policies on one workload.
func fig6Workload(cfg Config, w workloads.Workload) (Fig6Row, error) {
	sw := cfg.staticWorkload(w)
	specs := w.ScaledSpecs(cfg.Scale)
	simCfg := cfg.SimConfig()

	// Baseline: stock Linux.
	stockPlan, err := (policy.Stock{}).Decide(sw)
	if err != nil {
		return Fig6Row{}, err
	}
	stockRes, err := sim.RunStatic(simCfg, specs, stockPlan)
	if err != nil {
		return Fig6Row{}, err
	}

	// LFOC's plan doubles as the Best-Static warm start.
	lfocPlan, err := (policy.LFOCStatic{}).Decide(sw)
	if err != nil {
		return Fig6Row{}, err
	}
	budget := cfg.SolverBudgetSmall
	if w.Size > 10 {
		budget = cfg.SolverBudgetLarge
	}
	pols := []policy.Static{
		policy.Dunn{},
		policy.KPart{},
		fixedStatic{name: "LFOC", plan: lfocPlan},
		// Workload rows are already fanned out across cores (Fig6's
		// mapRows), so the per-row solver runs serially — two levels of
		// parallelism would oversubscribe multiplicatively.
		policy.BestStatic{NodeBudget: budget, Workers: 1, Seeds: []plan.Plan{lfocPlan}},
	}

	row := Fig6Row{Workload: w.Name}
	for _, pol := range pols {
		p, err := pol.Decide(sw)
		if err != nil {
			return Fig6Row{}, fmt.Errorf("%s: %w", pol.Name(), err)
		}
		res, err := sim.RunStatic(simCfg, specs, p)
		if err != nil {
			return Fig6Row{}, fmt.Errorf("%s: %w", pol.Name(), err)
		}
		row.NormUnf = append(row.NormUnf, res.Summary.Unfairness/stockRes.Summary.Unfairness)
		row.NormSTP = append(row.NormSTP, res.Summary.STP/stockRes.Summary.STP)
	}
	return row, nil
}

// fixedStatic serves an already-computed plan under a policy name.
type fixedStatic struct {
	name string
	plan plan.Plan
}

func (f fixedStatic) Name() string { return f.name }
func (f fixedStatic) Decide(*policy.Workload) (plan.Plan, error) {
	return f.plan, nil
}

// Render formats both panels of the figure.
func (d Fig6Data) Render() string {
	header := append([]string{"workload"}, Fig6Policies...)
	unfRows := [][]string{header}
	stpRows := [][]string{header}
	for _, r := range d.Rows {
		ur := []string{r.Workload}
		sr := []string{r.Workload}
		for pi := range Fig6Policies {
			ur = append(ur, f3(r.NormUnf[pi]))
			sr = append(sr, f3(r.NormSTP[pi]))
		}
		unfRows = append(unfRows, ur)
		stpRows = append(stpRows, sr)
	}
	avgU := []string{"geomean"}
	avgS := []string{"geomean"}
	for pi := range Fig6Policies {
		avgU = append(avgU, f3(d.AvgNormUnf[pi]))
		avgS = append(avgS, f3(d.AvgNormSTP[pi]))
	}
	unfRows = append(unfRows, avgU)
	stpRows = append(stpRows, avgS)
	return "Fig. 6 (top): Normalized unfairness, static clustering algorithms (Stock-Linux = 1.0)\n" +
		renderTable(unfRows) +
		"\nFig. 6 (bottom): Normalized STP (Stock-Linux = 1.0)\n" +
		renderTable(stpRows)
}
