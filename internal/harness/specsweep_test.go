package harness

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

const sweepSpec = `
spec_version: 1
seed: 9
duration_seconds: 4
cohorts:
  - mix:
      workload: S1
    rate:
      sinusoid:
        base: 2
        amplitude: 1
`

func writeSweepSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.yaml")
	if err := os.WriteFile(path, []byte(sweepSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSpecSweepSingleMachine(t *testing.T) {
	cfg := DefaultConfig()
	path := writeSweepSpec(t)
	d, err := SpecSweep(cfg, []string{path}, []string{"lfoc", "stock"}, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(d.Rows))
	}
	for _, r := range d.Rows {
		if r.Spec != "sweep" {
			t.Errorf("row spec %q, want file basename %q", r.Spec, "sweep")
		}
		if r.Arrivals == 0 {
			t.Errorf("%s: no arrivals", r.Policy)
		}
		if r.MachineArrivals != nil {
			t.Errorf("%s: single-machine row carries per-machine arrivals", r.Policy)
		}
	}
	// Both policies face the identical generated trace.
	if d.Rows[0].Arrivals != d.Rows[1].Arrivals {
		t.Errorf("policies saw different traces: %d vs %d arrivals", d.Rows[0].Arrivals, d.Rows[1].Arrivals)
	}
	if d.Render() == "" {
		t.Error("empty render")
	}
}

func TestSpecSweepClusterDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	path := writeSweepSpec(t)
	run := func() SpecSweepData {
		d, err := SpecSweep(cfg, []string{path}, []string{"lfoc"}, 2, "rr")
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("spec sweep is not deterministic")
	}
	r := a.Rows[0]
	if len(r.MachineArrivals) != 2 {
		t.Fatalf("want 2 machine-arrival counts, got %v", r.MachineArrivals)
	}
	if r.MachineArrivals[0]+r.MachineArrivals[1] != r.Arrivals {
		t.Fatalf("placement lost arrivals: %v vs %d", r.MachineArrivals, r.Arrivals)
	}
}

func TestSpecSweepErrors(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := SpecSweep(cfg, nil, nil, 1, ""); err == nil {
		t.Error("no spec files accepted")
	}
	if _, err := SpecSweep(cfg, []string{filepath.Join(t.TempDir(), "missing.yaml")}, nil, 1, ""); err == nil {
		t.Error("missing spec file accepted")
	}
}
