package harness

import (
	"fmt"
	"strings"

	"github.com/faircache/lfoc/internal/cluster"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/workloads"
)

// ClusterPlacements is the placement order of the cluster sweep.
var ClusterPlacements = []string{"rr", "least", "fair"}

// ClusterRow is one (placement, partitioning policy) cell of the grid.
type ClusterRow struct {
	Placement string `json:"placement"`
	Policy    string `json:"policy"`
	// Arrivals counts trace arrivals; MachineArrivals breaks them down
	// per machine — the load-balance view of the placement decision.
	Arrivals        int   `json:"arrivals"`
	MachineArrivals []int `json:"machine_arrivals"`
	Departed        int   `json:"departed"`
	Remaining       int   `json:"remaining"`
	// MeanSlowdown/MeanWait average over departed applications across
	// the fleet; Unfairness/STP are fleet-wide windowed means;
	// Throughput is completed runs per simulated second.
	MeanSlowdown float64 `json:"mean_slowdown"`
	MeanWait     float64 `json:"mean_wait"`
	Unfairness   float64 `json:"unfairness"`
	STP          float64 `json:"stp"`
	Throughput   float64 `json:"throughput"`
	PeakActive   int     `json:"peak_active"`
	SimSeconds   float64 `json:"sim_seconds"`
}

// ClusterSweepData is the placement × partitioning-policy grid: every
// cell faces the identical seeded arrival trace over the same fleet.
type ClusterSweepData struct {
	Workload string       `json:"workload"`
	Machines int          `json:"machines"`
	Rate     float64      `json:"rate"`
	Window   float64      `json:"window_seconds"`
	Seed     int64        `json:"seed"`
	Rows     []ClusterRow `json:"rows"`
}

// ClusterSweep runs the deployment-scale experiment the cluster layer
// exists for: applications from the named Fig. 5 mix arrive by one
// seeded Poisson process and are placed across a homogeneous fleet,
// comparing every placement policy against every per-machine
// partitioning policy on the identical trace. Empty placement/policy
// lists default to ClusterPlacements and ChurnPolicies.
func ClusterSweep(cfg Config, workloadName string, machines int, placements, policies []string, rate, window float64, seed int64) (ClusterSweepData, error) {
	cfg = cfg.normalized()
	if machines < 1 {
		return ClusterSweepData{}, fmt.Errorf("cluster sweep: need at least one machine, got %d", machines)
	}
	if len(placements) == 0 {
		placements = ClusterPlacements
	}
	if len(policies) == 0 {
		policies = ChurnPolicies
	}
	w, err := workloads.Get(workloadName)
	if err != nil {
		return ClusterSweepData{}, err
	}

	type cell struct{ placement, policy string }
	var cells []cell
	for _, pl := range placements {
		for _, po := range policies {
			cells = append(cells, cell{placement: pl, policy: po})
		}
	}
	rows, err := mapRows(cfg.workers(), cells, func(c cell) (ClusterRow, error) {
		row, err := clusterCell(cfg, w, machines, c.placement, c.policy, rate, window, seed)
		if err != nil {
			return ClusterRow{}, fmt.Errorf("cluster sweep: %s %s/%s: %w", w.Name, c.placement, c.policy, err)
		}
		return row, nil
	})
	if err != nil {
		return ClusterSweepData{}, err
	}
	return ClusterSweepData{Workload: w.Name, Machines: machines, Rate: rate, Window: window, Seed: seed, Rows: rows}, nil
}

func clusterCell(cfg Config, w workloads.Workload, machines int, placement, polName string, rate, window float64, seed int64) (ClusterRow, error) {
	// The same (rate, seed) trace for every cell: the comparison is
	// between placement/partitioning combinations, never between traces.
	scn, err := w.OpenScenario(rate, window, seed, cfg.Scale)
	if err != nil {
		return ClusterRow{}, err
	}
	pl, err := cluster.NewPlacement(placement, cfg.Plat)
	if err != nil {
		return ClusterRow{}, err
	}
	res, err := cluster.Run(cluster.Config{Sim: cfg.SimConfig(), Machines: machines, Placement: pl},
		scn, func(int) (sim.Dynamic, error) {
			pol, _, err := cfg.NewDynamicPolicy(polName)
			return pol, err
		})
	if err != nil {
		return ClusterRow{}, err
	}
	row := ClusterRow{
		Placement:    pl.Name(),
		Policy:       polName,
		Arrivals:     len(res.Assignments),
		Departed:     res.Departed,
		Remaining:    res.Remaining,
		MeanSlowdown: res.MeanSlowdown,
		MeanWait:     res.MeanWait,
		Unfairness:   res.Series.MeanUnfairness(),
		STP:          res.Series.MeanSTP(),
		Throughput:   res.Series.TotalThroughput(),
		PeakActive:   res.PeakActive,
		SimSeconds:   res.SimSeconds,
	}
	for _, m := range res.PerMachine {
		row.MachineArrivals = append(row.MachineArrivals, m.Arrivals)
	}
	return row, nil
}

// Render formats the grid as one table per placement policy.
func (d ClusterSweepData) Render() string {
	out := fmt.Sprintf("Cluster sweep: workload %s over %d machines, Poisson %g/s for %gs, seed %d\n",
		d.Workload, d.Machines, d.Rate, d.Window, d.Seed)
	header := []string{"policy", "arrivals", "per-machine", "departed", "slowdown", "wait(s)", "unfairness", "STP", "tput(runs/s)", "peak"}
	placement := ""
	var rows [][]string
	flush := func() {
		if len(rows) > 0 {
			out += fmt.Sprintf("\nplacement %s:\n%s", placement, renderTable(rows))
			rows = nil
		}
	}
	for _, r := range d.Rows {
		if r.Placement != placement {
			flush()
			placement = r.Placement
			rows = [][]string{header}
		}
		loads := make([]string, len(r.MachineArrivals))
		for i, n := range r.MachineArrivals {
			loads[i] = fmt.Sprint(n)
		}
		rows = append(rows, []string{
			r.Policy,
			fmt.Sprintf("%d", r.Arrivals),
			strings.Join(loads, "/"),
			fmt.Sprintf("%d", r.Departed),
			f3(r.MeanSlowdown),
			f3(r.MeanWait),
			f3(r.Unfairness),
			f3(r.STP),
			f3(r.Throughput),
			fmt.Sprintf("%d", r.PeakActive),
		})
	}
	flush()
	return out
}
