package harness

import (
	"fmt"
	"strings"

	"github.com/faircache/lfoc/internal/cluster"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/workloads"
)

// ClusterPlacements is the placement order of the cluster sweep.
var ClusterPlacements = []string{"rr", "least", "fair"}

// ClusterRow is one (placement, partitioning policy) cell of the grid.
type ClusterRow struct {
	Placement string `json:"placement"`
	Policy    string `json:"policy"`
	// Arrivals counts trace arrivals; MachineArrivals breaks them down
	// per machine — the load-balance view of the placement decision.
	Arrivals        int   `json:"arrivals"`
	MachineArrivals []int `json:"machine_arrivals"`
	Departed        int   `json:"departed"`
	Remaining       int   `json:"remaining"`
	// MeanSlowdown/MeanWait average over departed applications across
	// the fleet; Unfairness/STP are fleet-wide windowed means;
	// Throughput is completed runs per simulated second.
	MeanSlowdown float64 `json:"mean_slowdown"`
	MeanWait     float64 `json:"mean_wait"`
	Unfairness   float64 `json:"unfairness"`
	STP          float64 `json:"stp"`
	Throughput   float64 `json:"throughput"`
	PeakActive   int     `json:"peak_active"`
	SimSeconds   float64 `json:"sim_seconds"`
}

// ClusterSweepData is the placement × partitioning-policy grid: every
// cell faces the identical seeded arrival trace over the same fleet.
type ClusterSweepData struct {
	Workload string `json:"workload"`
	Machines int    `json:"machines"`
	// Mix is the heterogeneous fleet specification (empty for a
	// homogeneous fleet of Machines default-platform machines).
	Mix    string       `json:"mix,omitempty"`
	Rate   float64      `json:"rate"`
	Window float64      `json:"window_seconds"`
	Seed   int64        `json:"seed"`
	Rows   []ClusterRow `json:"rows"`
}

// ClusterSweep runs the deployment-scale experiment the cluster layer
// exists for: applications from the named Fig. 5 mix arrive by one
// seeded Poisson process and are placed across a fleet, comparing every
// placement policy against every per-machine partitioning policy on the
// identical trace. mix, when non-empty, is a cluster.ParseMachineMix
// heterogeneous fleet specification (e.g. "2x11way,2x7way") that
// overrides the homogeneous fleet of machines default-platform
// machines; machines must then be 0 or match the mix's total. Empty
// placement/policy lists default to ClusterPlacements and ChurnPolicies.
func ClusterSweep(cfg Config, workloadName string, machines int, mix string, placements, policies []string, rate, window float64, seed int64) (ClusterSweepData, error) {
	cfg = cfg.normalized()
	ccfg := cluster.Config{Sim: cfg.SimConfig(), Machines: machines}
	if mix != "" {
		fleet, err := cluster.ParseMachineMix(mix, ccfg.Sim)
		if err != nil {
			return ClusterSweepData{}, fmt.Errorf("cluster sweep: %w", err)
		}
		ccfg.Fleet = fleet
	}
	sims, err := ccfg.MachineConfigs()
	if err != nil {
		return ClusterSweepData{}, fmt.Errorf("cluster sweep: %w", err)
	}
	if len(placements) == 0 {
		placements = ClusterPlacements
	}
	if len(policies) == 0 {
		policies = ChurnPolicies
	}
	w, err := workloads.Get(workloadName)
	if err != nil {
		return ClusterSweepData{}, err
	}

	type cell struct{ placement, policy string }
	var cells []cell
	for _, pl := range placements {
		for _, po := range policies {
			cells = append(cells, cell{placement: pl, policy: po})
		}
	}
	rows, err := mapRows(cfg.workers(), cells, func(c cell) (ClusterRow, error) {
		row, err := clusterCell(cfg, w, ccfg, sims, c.placement, c.policy, rate, window, seed)
		if err != nil {
			return ClusterRow{}, fmt.Errorf("cluster sweep: %s %s/%s: %w", w.Name, c.placement, c.policy, err)
		}
		return row, nil
	})
	if err != nil {
		return ClusterSweepData{}, err
	}
	return ClusterSweepData{Workload: w.Name, Machines: len(sims), Mix: mix, Rate: rate, Window: window, Seed: seed, Rows: rows}, nil
}

func clusterCell(cfg Config, w workloads.Workload, ccfg cluster.Config, sims []sim.Config, placement, polName string, rate, window float64, seed int64) (ClusterRow, error) {
	// The same (rate, seed) trace for every cell: the comparison is
	// between placement/partitioning combinations, never between traces.
	scn, err := w.OpenScenario(rate, window, seed, cfg.Scale)
	if err != nil {
		return ClusterRow{}, err
	}
	pl, err := cluster.NewPlacement(placement, cfg.Plat)
	if err != nil {
		return ClusterRow{}, err
	}
	// Cells run concurrently: each needs its own placement instance
	// (set above) — the shared ccfg template only carries the fleet.
	// Cells are the unit of parallelism here (as in Fig. 6/7): a second
	// level of fleet-advancement workers per cell would oversubscribe
	// multiplicatively, so each cell's fleet advances serially.
	ccfg.Placement = pl
	ccfg.Workers = 1
	res, err := cluster.Run(ccfg,
		scn, func(i int) (sim.Dynamic, error) {
			// The per-machine policy must match the machine's platform:
			// in a heterogeneous fleet way counts differ per machine.
			pol, _, err := cfg.NewDynamicPolicyFor(polName, sims[i].Plat)
			return pol, err
		})
	if err != nil {
		return ClusterRow{}, err
	}
	row := ClusterRow{
		Placement:    pl.Name(),
		Policy:       polName,
		Arrivals:     len(scn.Arrivals()),
		Departed:     res.Departed,
		Remaining:    res.Remaining,
		MeanSlowdown: res.MeanSlowdown,
		MeanWait:     res.MeanWait,
		Unfairness:   res.Series.MeanUnfairness(),
		STP:          res.Series.MeanSTP(),
		Throughput:   res.Series.TotalThroughput(),
		PeakActive:   res.PeakActive,
		SimSeconds:   res.SimSeconds,
	}
	for _, m := range res.PerMachine {
		row.MachineArrivals = append(row.MachineArrivals, m.Arrivals)
	}
	return row, nil
}

// Render formats the grid as one table per placement policy.
func (d ClusterSweepData) Render() string {
	fleet := fmt.Sprintf("%d machines", d.Machines)
	if d.Mix != "" {
		fleet = fmt.Sprintf("%d machines (%s)", d.Machines, d.Mix)
	}
	out := fmt.Sprintf("Cluster sweep: workload %s over %s, Poisson %g/s for %gs, seed %d\n",
		d.Workload, fleet, d.Rate, d.Window, d.Seed)
	header := []string{"policy", "arrivals", "per-machine", "departed", "slowdown", "wait(s)", "unfairness", "STP", "tput(runs/s)", "peak"}
	placement := ""
	var rows [][]string
	flush := func() {
		if len(rows) > 0 {
			out += fmt.Sprintf("\nplacement %s:\n%s", placement, renderTable(rows))
			rows = nil
		}
	}
	for _, r := range d.Rows {
		if r.Placement != placement {
			flush()
			placement = r.Placement
			rows = [][]string{header}
		}
		loads := make([]string, len(r.MachineArrivals))
		for i, n := range r.MachineArrivals {
			loads[i] = fmt.Sprint(n)
		}
		rows = append(rows, []string{
			r.Policy,
			fmt.Sprintf("%d", r.Arrivals),
			strings.Join(loads, "/"),
			fmt.Sprintf("%d", r.Departed),
			f3(r.MeanSlowdown),
			f3(r.MeanWait),
			f3(r.Unfairness),
			f3(r.STP),
			f3(r.Throughput),
			fmt.Sprintf("%d", r.PeakActive),
		})
	}
	flush()
	return out
}
