package harness

import (
	"runtime"
	"sync"
)

// workers resolves the harness-level parallelism: Config.Workers when
// set, GOMAXPROCS otherwise.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// mapRows runs fn over items on a bounded worker pool and returns the
// results in input order. Items are independent experiments (one figure
// row each), so any interleaving yields the same output; on failure the
// error of the lowest-indexed failing item is returned, keeping error
// reporting deterministic too.
func mapRows[W, R any](workers int, items []W, fn func(W) (R, error)) ([]R, error) {
	n := len(items)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		out := make([]R, n)
		for i, it := range items {
			r, err := fn(it)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	out := make([]R, n)
	errs := make([]error, n)
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = fn(items[i])
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
