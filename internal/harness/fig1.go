package harness

import (
	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/profiles"
)

// Fig1Point is one x-position of Fig. 1: slowdown and LLCMPKC at a way
// count.
type Fig1Point struct {
	Ways     int
	Slowdown float64
	MPKC     float64
}

// Fig1Data reproduces Fig. 1: the per-way-count curves of a streaming
// application (lbm) and a cache-sensitive one (xalancbmk).
type Fig1Data struct {
	Lbm   []Fig1Point
	Xalan []Fig1Point
}

// Fig1 regenerates the figure's data from the application models.
func Fig1(cfg Config) Fig1Data {
	cfg = cfg.normalized()
	curve := func(name string) []Fig1Point {
		tbl := appmodel.DominantTable(profiles.MustGet(name), cfg.Plat)
		pts := make([]Fig1Point, 0, cfg.Plat.Ways)
		for w := 1; w <= cfg.Plat.Ways; w++ {
			pts = append(pts, Fig1Point{Ways: w, Slowdown: tbl.Slowdown(w), MPKC: tbl.MPKC[w]})
		}
		return pts
	}
	return Fig1Data{Lbm: curve("lbm06"), Xalan: curve("xalancbmk06")}
}

// Render formats the figure as the table of its two curves.
func (d Fig1Data) Render() string {
	rows := [][]string{{"ways", "lbm-Slowdown", "lbm-LLCMPKC", "xalancbmk-Slowdown", "xalancbmk-LLCMPKC"}}
	for i := range d.Lbm {
		rows = append(rows, []string{
			f1(float64(d.Lbm[i].Ways)),
			f3(d.Lbm[i].Slowdown), f1(d.Lbm[i].MPKC),
			f3(d.Xalan[i].Slowdown), f1(d.Xalan[i].MPKC),
		})
	}
	return "Fig. 1: Slowdown and LLCMPKC for different way counts\n" + renderTable(rows)
}
