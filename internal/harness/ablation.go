package harness

import (
	"fmt"

	"github.com/faircache/lfoc/internal/core"
	"github.com/faircache/lfoc/internal/metrics"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/workloads"
)

// AblationRow reports the fairness outcome of one LFOC parameter
// configuration across a workload set.
type AblationRow struct {
	MaxStreamingWay  int
	GapsPerStreaming int
	// GeoNormUnf is the geometric-mean unfairness normalized to stock.
	GeoNormUnf float64
	// GeoNormSTP is the geometric-mean STP normalized to stock.
	GeoNormSTP float64
}

// AblationData sweeps Algorithm 1's two tunables — max_streaming_way
// (streaming apps per 1-way cluster before a second way is reserved,
// default 5) and gaps_per_streaming (how aggressively light apps fill
// streaming clusters, default 3) — quantifying the paper's default
// choice.
type AblationData struct {
	Rows      []AblationRow
	Workloads []string
}

// AblationParams runs the sweep over the given S workloads (nil = a
// representative trio).
func AblationParams(cfg Config, names []string) (AblationData, error) {
	cfg = cfg.normalized()
	if names == nil {
		names = []string{"S1", "S4", "S8"}
	}
	var list []workloads.Workload
	for _, n := range names {
		w, err := workloads.Get(n)
		if err != nil {
			return AblationData{}, err
		}
		list = append(list, w)
	}

	// Stock baselines per workload.
	simCfg := cfg.SimConfig()
	baseUnf := make([]float64, len(list))
	baseSTP := make([]float64, len(list))
	for i, w := range list {
		sw := cfg.staticWorkload(w)
		stockPlan, err := (policy.Stock{}).Decide(sw)
		if err != nil {
			return AblationData{}, err
		}
		res, err := sim.RunStatic(simCfg, w.ScaledSpecs(cfg.Scale), stockPlan)
		if err != nil {
			return AblationData{}, err
		}
		baseUnf[i] = res.Summary.Unfairness
		baseSTP[i] = res.Summary.STP
	}

	var data AblationData
	data.Workloads = names
	for _, msw := range []int{1, 3, 5, 8} {
		for _, gaps := range []int{0, 1, 3, 6} {
			params := core.DefaultParams(cfg.Plat.Ways)
			params.MaxStreamingWay = msw
			params.GapsPerStreaming = gaps
			var normU, normS []float64
			for i, w := range list {
				sw := cfg.staticWorkload(w)
				p, err := (policy.LFOCStatic{Params: &params}).Decide(sw)
				if err != nil {
					return AblationData{}, fmt.Errorf("ablation msw=%d gaps=%d %s: %w", msw, gaps, w.Name, err)
				}
				res, err := sim.RunStatic(simCfg, w.ScaledSpecs(cfg.Scale), p)
				if err != nil {
					return AblationData{}, err
				}
				normU = append(normU, res.Summary.Unfairness/baseUnf[i])
				normS = append(normS, res.Summary.STP/baseSTP[i])
			}
			gu, err := metrics.GeoMean(normU)
			if err != nil {
				return AblationData{}, err
			}
			gs, err := metrics.GeoMean(normS)
			if err != nil {
				return AblationData{}, err
			}
			data.Rows = append(data.Rows, AblationRow{
				MaxStreamingWay:  msw,
				GapsPerStreaming: gaps,
				GeoNormUnf:       gu,
				GeoNormSTP:       gs,
			})
		}
	}
	return data, nil
}

// Render formats the sweep.
func (d AblationData) Render() string {
	rows := [][]string{{"max_streaming_way", "gaps_per_streaming", "norm-unfairness", "norm-STP"}}
	for _, r := range d.Rows {
		rows = append(rows, []string{
			fmt.Sprint(r.MaxStreamingWay), fmt.Sprint(r.GapsPerStreaming),
			f3(r.GeoNormUnf), f3(r.GeoNormSTP),
		})
	}
	return fmt.Sprintf("Ablation: Algorithm 1 parameters over %v (Stock-Linux = 1.0; paper defaults 5/3)\n",
		d.Workloads) + renderTable(rows)
}
