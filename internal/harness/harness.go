// Package harness regenerates every table and figure of the paper's
// evaluation (§3 and §5): one entry point per artifact, each returning
// structured data plus a text rendering that mirrors the rows/series the
// paper reports. cmd/lfoc-bench is a thin CLI over this package, and
// bench_test.go wraps the same entry points in testing.B benchmarks.
//
// Time scaling: the paper runs each program for 150 G instructions with
// 100M/10M-instruction counter windows and a 500 ms partitioner period.
// Config.Scale divides every instruction quantity and the partitioner
// period by the same factor, preserving all cadence ratios while keeping
// experiment runtime tractable; EXPERIMENTS.md records the scale used.
package harness

import (
	"fmt"
	"time"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/core"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/workloads"
)

// Config parameterizes all experiments.
type Config struct {
	Plat *machine.Platform
	// Scale divides all instruction quantities and the policy period
	// (1 = paper scale; default 50).
	Scale uint64
	// RunsTarget is the per-app completed-run requirement (default 3).
	RunsTarget int
	// SolverBudgetSmall/Large bound the optimal solver's anytime search
	// for ≤10-app and >10-app workloads respectively.
	SolverBudgetSmall uint64
	SolverBudgetLarge uint64
	// Workers bounds the harness's parallelism (0 = GOMAXPROCS). For
	// Fig. 6/7 the workload rows fan out over this many goroutines and
	// the per-row solver runs serially (rows are the unit of parallelism;
	// a second level would oversubscribe multiplicatively). Fig. 2/3 have
	// no row fan-out, so there Workers bounds the optimal solver's own
	// worker pool instead.
	Workers int
}

// DefaultConfig returns the standard experiment configuration.
func DefaultConfig() Config {
	return Config{
		Plat:              machine.Skylake(),
		Scale:             50,
		RunsTarget:        3,
		SolverBudgetSmall: 500_000,
		SolverBudgetLarge: 4_000,
	}
}

// normalized applies defaults.
func (c Config) normalized() Config {
	if c.Plat == nil {
		c.Plat = machine.Skylake()
	}
	if c.Scale == 0 {
		c.Scale = 50
	}
	if c.RunsTarget == 0 {
		c.RunsTarget = 3
	}
	if c.SolverBudgetSmall == 0 {
		c.SolverBudgetSmall = 500_000
	}
	if c.SolverBudgetLarge == 0 {
		c.SolverBudgetLarge = 4_000
	}
	return c
}

// paper-scale constants.
const (
	paperTargetInsns    = 150_000_000_000
	paperNormalWindow   = 100_000_000
	paperSamplingWindow = 10_000_000
	paperPolicyPeriodNs = int64(500 * time.Millisecond)
)

// SimConfig derives the scaled simulator configuration.
func (c Config) SimConfig() sim.Config {
	c = c.normalized()
	return sim.Config{
		Plat:         c.Plat,
		TargetInsns:  paperTargetInsns / c.Scale,
		RunsTarget:   c.RunsTarget,
		PolicyPeriod: time.Duration(paperPolicyPeriodNs / int64(c.Scale)),
	}
}

// NewDynamicPolicy constructs a dynamic policy by name ("stock", "dunn"
// or "lfoc"). For LFOC the controller is also returned so callers can
// inspect classifications.
func (c Config) NewDynamicPolicy(name string) (sim.Dynamic, *core.Controller, error) {
	c = c.normalized()
	switch name {
	case "stock":
		return policy.NewStockDynamic(c.Plat.Ways), nil, nil
	case "dunn":
		return c.newDunn(), nil, nil
	case "lfoc":
		ctrl, err := c.newLFOC()
		if err != nil {
			return nil, nil, err
		}
		return ctrl, ctrl, nil
	default:
		return nil, nil, fmt.Errorf("harness: unknown policy %q (want stock, dunn or lfoc)", name)
	}
}

// NewDynamicPolicyFor is NewDynamicPolicy against an explicit platform
// instead of Config.Plat — heterogeneous fleets need the per-machine
// policy built for the machine's own way count and way size, or its
// masks and thresholds would target the wrong LLC. A nil plat falls
// back to Config.Plat.
func (c Config) NewDynamicPolicyFor(name string, plat *machine.Platform) (sim.Dynamic, *core.Controller, error) {
	if plat != nil {
		c.Plat = plat
	}
	return c.NewDynamicPolicy(name)
}

// lfocParams derives scaled LFOC tunables.
func (c Config) lfocParams() core.Params {
	p := core.DefaultParams(c.Plat.Ways)
	p.NormalWindowInsns = paperNormalWindow / c.Scale
	if p.NormalWindowInsns == 0 {
		p.NormalWindowInsns = 1
	}
	p.SamplingWindowInsns = paperSamplingWindow / c.Scale
	if p.SamplingWindowInsns == 0 {
		p.SamplingWindowInsns = 1
	}
	return p
}

// newLFOC builds a fresh scaled LFOC controller.
func (c Config) newLFOC() (*core.Controller, error) {
	return core.NewController(c.lfocParams(), c.Plat.WayBytes)
}

// newDunn builds a fresh scaled dynamic Dunn runtime.
func (c Config) newDunn() *policy.DunnDynamic {
	d := policy.NewDunnDynamic(c.Plat.Ways)
	d.SetWindow(paperNormalWindow / c.Scale)
	return d
}

// staticWorkload converts a workload into the static policies' input:
// each app represented by its dominant phase and offline table.
func (c Config) staticWorkload(w workloads.Workload) *policy.Workload {
	out := &policy.Workload{Plat: c.Plat}
	for _, name := range w.Benchmarks {
		ph := specOf(name).DominantPhase()
		out.Phases = append(out.Phases, ph)
		out.Tables = append(out.Tables, appmodel.BuildTable(ph, c.Plat))
	}
	return out
}

func specOf(name string) *appmodel.Spec {
	w := workloads.Workload{Benchmarks: []string{name}}
	return w.Specs()[0]
}
