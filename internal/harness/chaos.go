package harness

import (
	"fmt"

	"github.com/faircache/lfoc/internal/cluster"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/workloads"
)

// ClusterEvents converts a workload event schedule to the cluster
// layer's lifecycle events. Joining machines inherit machine 0's
// configuration (Event.Config nil).
func ClusterEvents(events []workloads.FleetEvent) ([]cluster.Event, error) {
	out := make([]cluster.Event, 0, len(events))
	for _, e := range events {
		var kind cluster.EventKind
		switch e.Kind {
		case "join":
			kind = cluster.MachineJoin
		case "drain":
			kind = cluster.MachineDrain
		case "fail":
			kind = cluster.MachineFail
		default:
			return nil, fmt.Errorf("harness: fleet event at t=%g: unknown kind %q", e.Time, e.Kind)
		}
		out = append(out, cluster.Event{Time: e.Time, Kind: kind, Machine: e.Machine})
	}
	return out, nil
}

// ChaosRow is one (placement, partitioning policy, MTBF) cell of the
// chaos grid: the cluster sweep's quality metrics plus the lifecycle
// layer's disruption accounting.
type ChaosRow struct {
	Placement string  `json:"placement"`
	Policy    string  `json:"policy"`
	MTBF      float64 `json:"mtbf"`
	Arrivals  int     `json:"arrivals"`
	Departed  int     `json:"departed"`
	Remaining int     `json:"remaining"`
	// Failures/Drains/Joins count applied lifecycle events; Disruptions
	// the applications they displaced (migrated, requeued or
	// dead-lettered); Availability is the run-wide time-averaged
	// fraction of the fleet that was up.
	Failures     int     `json:"failures"`
	Drains       int     `json:"drains"`
	Joins        int     `json:"joins"`
	Disruptions  int     `json:"disruptions"`
	Migrations   int     `json:"migrations"`
	Requeues     int     `json:"requeues"`
	DeadLettered int     `json:"dead_lettered"`
	Availability float64 `json:"availability"`
	MeanSlowdown float64 `json:"mean_slowdown"`
	MeanWait     float64 `json:"mean_wait"`
	Unfairness   float64 `json:"unfairness"`
	STP          float64 `json:"stp"`
	SimSeconds   float64 `json:"sim_seconds"`
}

// ChaosSweepData is the placement × partitioning-policy × MTBF grid:
// every cell faces the identical seeded trace AND the identical
// lifecycle schedule (scheduled events plus the seeded failure process
// of its MTBF column), so differences isolate how each combination
// absorbs the same disruption.
type ChaosSweepData struct {
	Workload string                 `json:"workload"`
	Machines int                    `json:"machines"`
	Mix      string                 `json:"mix,omitempty"`
	Rate     float64                `json:"rate"`
	Window   float64                `json:"window_seconds"`
	Seed     int64                  `json:"seed"`
	Events   []workloads.FleetEvent `json:"events,omitempty"`
	Rows     []ChaosRow             `json:"rows"`
}

// ChaosSweep runs the robustness experiment the lifecycle layer exists
// for: the cluster sweep's grid with machine failures injected. mtbfs
// lists the mean-time-between-failures columns (0 = no random failures
// — the scheduled events alone); events is the scheduled lifecycle
// timeline shared by every cell. The failure process is seeded from
// seed, so the whole grid is reproducible. migrationCost parameterizes
// drain recovery (negative disables live migration). Empty
// placement/policy lists default to ClusterPlacements and ChurnPolicies.
func ChaosSweep(cfg Config, workloadName string, machines int, mix string, placements, policies []string, mtbfs []float64, events []workloads.FleetEvent, migrationCost, rate, window float64, seed int64) (ChaosSweepData, error) {
	cfg = cfg.normalized()
	ccfg := cluster.Config{Sim: cfg.SimConfig(), Machines: machines}
	if mix != "" {
		fleet, err := cluster.ParseMachineMix(mix, ccfg.Sim)
		if err != nil {
			return ChaosSweepData{}, fmt.Errorf("chaos sweep: %w", err)
		}
		ccfg.Fleet = fleet
	}
	sims, err := ccfg.MachineConfigs()
	if err != nil {
		return ChaosSweepData{}, fmt.Errorf("chaos sweep: %w", err)
	}
	cevents, err := ClusterEvents(events)
	if err != nil {
		return ChaosSweepData{}, fmt.Errorf("chaos sweep: %w", err)
	}
	if len(placements) == 0 {
		placements = ClusterPlacements
	}
	if len(policies) == 0 {
		policies = ChurnPolicies
	}
	if len(mtbfs) == 0 {
		mtbfs = []float64{0}
	}
	w, err := workloads.Get(workloadName)
	if err != nil {
		return ChaosSweepData{}, err
	}

	type cell struct {
		placement, policy string
		mtbf              float64
	}
	var cells []cell
	for _, pl := range placements {
		for _, po := range policies {
			for _, mtbf := range mtbfs {
				cells = append(cells, cell{placement: pl, policy: po, mtbf: mtbf})
			}
		}
	}
	rows, err := mapRows(cfg.workers(), cells, func(c cell) (ChaosRow, error) {
		row, err := chaosCell(cfg, w, ccfg, sims, cevents, c.placement, c.policy, c.mtbf, migrationCost, rate, window, seed)
		if err != nil {
			return ChaosRow{}, fmt.Errorf("chaos sweep: %s %s/%s mtbf=%g: %w", w.Name, c.placement, c.policy, c.mtbf, err)
		}
		return row, nil
	})
	if err != nil {
		return ChaosSweepData{}, err
	}
	return ChaosSweepData{Workload: w.Name, Machines: len(sims), Mix: mix, Rate: rate, Window: window, Seed: seed, Events: events, Rows: rows}, nil
}

func chaosCell(cfg Config, w workloads.Workload, ccfg cluster.Config, sims []sim.Config, events []cluster.Event, placement, polName string, mtbf, migrationCost, rate, window float64, seed int64) (ChaosRow, error) {
	// The same (rate, seed) trace and the same lifecycle schedule for
	// every cell; only the responses differ.
	scn, err := w.OpenScenario(rate, window, seed, cfg.Scale)
	if err != nil {
		return ChaosRow{}, err
	}
	pl, err := cluster.NewPlacement(placement, cfg.Plat)
	if err != nil {
		return ChaosRow{}, err
	}
	ccfg.Placement = pl
	ccfg.Workers = 1 // cells are the unit of parallelism, as in ClusterSweep
	ccfg.Lifecycle = &cluster.Lifecycle{
		Events:        events,
		MTBF:          mtbf,
		FailureSeed:   seed,
		MigrationCost: migrationCost,
		JoinPolicy: func(i int, mc sim.Config) (sim.Dynamic, error) {
			pol, _, err := cfg.NewDynamicPolicyFor(polName, mc.Plat)
			return pol, err
		},
	}
	res, err := cluster.Run(ccfg,
		scn, func(i int) (sim.Dynamic, error) {
			pol, _, err := cfg.NewDynamicPolicyFor(polName, sims[i].Plat)
			return pol, err
		})
	if err != nil {
		return ChaosRow{}, err
	}
	row := ChaosRow{
		Placement:    pl.Name(),
		Policy:       polName,
		MTBF:         mtbf,
		Arrivals:     len(scn.Arrivals()),
		Departed:     res.Departed,
		Remaining:    res.Remaining,
		MeanSlowdown: res.MeanSlowdown,
		MeanWait:     res.MeanWait,
		Unfairness:   res.Series.MeanUnfairness(),
		STP:          res.Series.MeanSTP(),
		SimSeconds:   res.SimSeconds,
		Availability: 1,
	}
	if lc := res.Lifecycle; lc != nil {
		row.Failures = lc.Failures
		row.Drains = lc.Drains
		row.Joins = lc.Joins
		row.Disruptions = lc.Disruptions
		row.Migrations = lc.Migrations
		row.Requeues = lc.Requeues
		row.DeadLettered = lc.DeadLettered
		row.Availability = lc.Availability
	}
	return row, nil
}

// Render formats the chaos grid as one table per placement policy.
func (d ChaosSweepData) Render() string {
	fleet := fmt.Sprintf("%d machines", d.Machines)
	if d.Mix != "" {
		fleet = fmt.Sprintf("%d machines (%s)", d.Machines, d.Mix)
	}
	out := fmt.Sprintf("Chaos sweep: workload %s over %s, Poisson %g/s for %gs, seed %d, %d scheduled events\n",
		d.Workload, fleet, d.Rate, d.Window, d.Seed, len(d.Events))
	header := []string{"policy", "mtbf(s)", "fails", "drains", "joins", "disrupted", "migrated", "requeued", "dead", "avail", "departed", "slowdown", "wait(s)", "unfairness", "STP"}
	placement := ""
	var rows [][]string
	flush := func() {
		if len(rows) > 0 {
			out += fmt.Sprintf("\nplacement %s:\n%s", placement, renderTable(rows))
			rows = nil
		}
	}
	for _, r := range d.Rows {
		if r.Placement != placement {
			flush()
			placement = r.Placement
			rows = [][]string{header}
		}
		mtbf := "-"
		if r.MTBF > 0 {
			mtbf = f3(r.MTBF)
		}
		rows = append(rows, []string{
			r.Policy,
			mtbf,
			fmt.Sprintf("%d", r.Failures),
			fmt.Sprintf("%d", r.Drains),
			fmt.Sprintf("%d", r.Joins),
			fmt.Sprintf("%d", r.Disruptions),
			fmt.Sprintf("%d", r.Migrations),
			fmt.Sprintf("%d", r.Requeues),
			fmt.Sprintf("%d", r.DeadLettered),
			f3(r.Availability),
			fmt.Sprintf("%d", r.Departed),
			f3(r.MeanSlowdown),
			f3(r.MeanWait),
			f3(r.Unfairness),
			f3(r.STP),
		})
	}
	flush()
	return out
}
