package harness

import (
	"fmt"
	"strings"
)

// renderTable formats rows as an aligned text table; the first row is
// the header.
func renderTable(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, r := range rows {
		for i, cell := range r {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for ri, r := range rows {
		for i, cell := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
