package harness

import (
	"fmt"

	"github.com/faircache/lfoc/internal/metrics"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/workloads"
)

// Fig7Policies is the legend order of Fig. 7 (Stock-Linux is the
// baseline).
var Fig7Policies = []string{"Dunn", "LFOC"}

// Fig7Row holds one workload's normalized dynamic-mode metrics.
type Fig7Row struct {
	Workload string
	NormUnf  []float64
	NormSTP  []float64
	// LFOCResamples counts phase-change-triggered sampling episodes.
	LFOCResamples int
}

// Fig7Data reproduces Fig. 7: unfairness and STP of the dynamic
// policies on the mixed P/S workload list, normalized to Stock-Linux.
type Fig7Data struct {
	Rows       []Fig7Row
	AvgNormUnf []float64
	AvgNormSTP []float64
}

// Fig7 runs the dynamic-policy study (§5.2) on the given workloads
// (nil = the paper's 24-workload list).
func Fig7(cfg Config, names []string) (Fig7Data, error) {
	cfg = cfg.normalized()
	list := workloads.Dynamic()
	if names != nil {
		list = nil
		for _, n := range names {
			w, err := workloads.Get(n)
			if err != nil {
				return Fig7Data{}, err
			}
			list = append(list, w)
		}
	}

	// Like Fig6: one independent experiment per workload row, fanned out
	// over a bounded worker pool with order preserved.
	rows, err := mapRows(cfg.workers(), list, func(w workloads.Workload) (Fig7Row, error) {
		row, err := fig7Workload(cfg, w)
		if err != nil {
			return Fig7Row{}, fmt.Errorf("fig7: %s: %w", w.Name, err)
		}
		return row, nil
	})
	if err != nil {
		return Fig7Data{}, err
	}

	var data Fig7Data
	unfAgg := make([][]float64, len(Fig7Policies))
	stpAgg := make([][]float64, len(Fig7Policies))
	for _, row := range rows {
		data.Rows = append(data.Rows, row)
		for pi := range Fig7Policies {
			unfAgg[pi] = append(unfAgg[pi], row.NormUnf[pi])
			stpAgg[pi] = append(stpAgg[pi], row.NormSTP[pi])
		}
	}
	for pi := range Fig7Policies {
		gu, err := metrics.GeoMean(unfAgg[pi])
		if err != nil {
			return Fig7Data{}, err
		}
		gs, err := metrics.GeoMean(stpAgg[pi])
		if err != nil {
			return Fig7Data{}, err
		}
		data.AvgNormUnf = append(data.AvgNormUnf, gu)
		data.AvgNormSTP = append(data.AvgNormSTP, gs)
	}
	return data, nil
}

func fig7Workload(cfg Config, w workloads.Workload) (Fig7Row, error) {
	specs := w.ScaledSpecs(cfg.Scale)
	simCfg := cfg.SimConfig()

	stockRes, err := sim.RunDynamic(simCfg, specs, policy.NewStockDynamic(cfg.Plat.Ways))
	if err != nil {
		return Fig7Row{}, fmt.Errorf("stock: %w", err)
	}

	dunnRes, err := sim.RunDynamic(simCfg, specs, cfg.newDunn())
	if err != nil {
		return Fig7Row{}, fmt.Errorf("dunn: %w", err)
	}

	ctrl, err := cfg.newLFOC()
	if err != nil {
		return Fig7Row{}, err
	}
	lfocRes, err := sim.RunDynamic(simCfg, specs, ctrl)
	if err != nil {
		return Fig7Row{}, fmt.Errorf("lfoc: %w", err)
	}
	resamples := 0
	for i := range specs {
		resamples += ctrl.Resamples(i)
	}

	return Fig7Row{
		Workload: w.Name,
		NormUnf: []float64{
			dunnRes.Summary.Unfairness / stockRes.Summary.Unfairness,
			lfocRes.Summary.Unfairness / stockRes.Summary.Unfairness,
		},
		NormSTP: []float64{
			dunnRes.Summary.STP / stockRes.Summary.STP,
			lfocRes.Summary.STP / stockRes.Summary.STP,
		},
		LFOCResamples: resamples,
	}, nil
}

// Render formats both panels.
func (d Fig7Data) Render() string {
	header := append([]string{"workload"}, Fig7Policies...)
	unfRows := [][]string{header}
	stpRows := [][]string{header}
	for _, r := range d.Rows {
		ur := []string{r.Workload}
		sr := []string{r.Workload}
		for pi := range Fig7Policies {
			ur = append(ur, f3(r.NormUnf[pi]))
			sr = append(sr, f3(r.NormSTP[pi]))
		}
		unfRows = append(unfRows, ur)
		stpRows = append(stpRows, sr)
	}
	avgU := []string{"geomean"}
	avgS := []string{"geomean"}
	for pi := range Fig7Policies {
		avgU = append(avgU, f3(d.AvgNormUnf[pi]))
		avgS = append(avgS, f3(d.AvgNormSTP[pi]))
	}
	unfRows = append(unfRows, avgU)
	stpRows = append(stpRows, avgS)
	return "Fig. 7 (top): Normalized unfairness, dynamic policies (Stock-Linux = 1.0)\n" +
		renderTable(unfRows) +
		"\nFig. 7 (bottom): Normalized STP (Stock-Linux = 1.0)\n" +
		renderTable(stpRows)
}
