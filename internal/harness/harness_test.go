package harness

import (
	"strings"
	"testing"
)

// fastConfig keeps harness tests quick: heavier scaling and tight solver
// budgets. Shape assertions still hold at this scale.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 150
	cfg.SolverBudgetSmall = 30_000
	cfg.SolverBudgetLarge = 1_000
	return cfg
}

func TestFig1Shapes(t *testing.T) {
	d := Fig1(fastConfig())
	if len(d.Lbm) != 11 || len(d.Xalan) != 11 {
		t.Fatal("curve lengths wrong")
	}
	// lbm flat, xalancbmk steep.
	if d.Lbm[0].Slowdown > 1.06 {
		t.Errorf("lbm slowdown@1 = %v", d.Lbm[0].Slowdown)
	}
	if d.Xalan[0].Slowdown < 1.5 {
		t.Errorf("xalancbmk slowdown@1 = %v", d.Xalan[0].Slowdown)
	}
	if d.Lbm[0].MPKC < 15 {
		t.Errorf("lbm MPKC@1 = %v", d.Lbm[0].MPKC)
	}
	if !strings.Contains(d.Render(), "xalancbmk") {
		t.Error("render missing series")
	}
}

func TestFig2Structure(t *testing.T) {
	d, err := Fig2(fastConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.StreamingIn1Way < 0.7 {
		t.Errorf("only %.0f%% of streaming instances in 1-way clusters (paper: >87%%)",
			d.StreamingIn1Way*100)
	}
	// Paper reports >77%; our catalog has more moderately-sensitive apps
	// (small critical sizes), so the share is lower but must remain the
	// dominant placement pattern (recorded in EXPERIMENTS.md).
	if d.SensitiveIn4Plus < 0.4 {
		t.Errorf("only %.0f%% of sensitive instances in >=4-way clusters (paper: >77%%)",
			d.SensitiveIn4Plus*100)
	}
	if !strings.Contains(d.Render(), "cluster-size") {
		t.Error("render broken")
	}
}

func TestFig3PartitioningDegrades(t *testing.T) {
	cfg := fastConfig()
	d, err := Fig3(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 8 { // n = 4..11
		t.Fatalf("rows = %d", len(d.Rows))
	}
	// Partitioning must never beat clustering, and must degrade at the
	// largest size.
	for _, r := range d.Rows {
		if r.NormPartitioning < 0.999 {
			t.Errorf("n=%d: partitioning (%.3f) better than clustering", r.Apps, r.NormPartitioning)
		}
	}
	last := d.Rows[len(d.Rows)-1]
	if last.NormPartitioning < 1.02 {
		t.Errorf("n=11: normalized partitioning unfairness = %.3f, expected visible degradation",
			last.NormPartitioning)
	}
	if !strings.Contains(d.Render(), "optimal-partitioning") {
		t.Error("render broken")
	}
}

func TestFig4PhaseTransition(t *testing.T) {
	d := Fig4(fastConfig(), 120)
	if len(d.Points) != 120 {
		t.Fatal("point count wrong")
	}
	if d.PhaseChange <= 0 {
		t.Fatal("no phase change observed")
	}
	// Early windows: light (low MPKC); late windows: streaming (high).
	if d.Points[0].MPKC > 5 {
		t.Errorf("early MPKC = %v, want light", d.Points[0].MPKC)
	}
	lastPt := d.Points[len(d.Points)-1]
	if lastPt.MPKC < 10 {
		t.Errorf("late MPKC = %v, want streaming", lastPt.MPKC)
	}
	if !strings.Contains(d.Render(), "LLCMPKC") {
		t.Error("render broken")
	}
}

func TestFig5Matrix(t *testing.T) {
	d := Fig5(fastConfig())
	if len(d.Workloads) != 36 || len(d.Benchmarks) != 34 {
		t.Fatalf("matrix is %dx%d", len(d.Workloads), len(d.Benchmarks))
	}
	for wi, row := range d.Counts {
		sum := 0
		for _, c := range row {
			sum += c
			if c > 2 {
				t.Errorf("%s: cell count %d", d.Workloads[wi], c)
			}
		}
		if sum != 8 && sum != 12 && sum != 16 {
			t.Errorf("%s: size %d", d.Workloads[wi], sum)
		}
	}
	if !strings.Contains(d.Render(), "S1") {
		t.Error("render broken")
	}
}

func TestFig6SubsetShape(t *testing.T) {
	cfg := fastConfig()
	d, err := Fig6(cfg, []string{"S1", "S2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 2 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	// LFOC (index 2) must reduce unfairness vs stock on these mixes.
	for _, r := range d.Rows {
		if r.NormUnf[2] >= 1.0 {
			t.Errorf("%s: LFOC normalized unfairness %.3f >= 1", r.Workload, r.NormUnf[2])
		}
	}
	if !strings.Contains(d.Render(), "Best-Static") {
		t.Error("render broken")
	}
}

func TestFig7SubsetShape(t *testing.T) {
	cfg := fastConfig()
	d, err := Fig7(cfg, []string{"P1", "S1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 2 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	for _, r := range d.Rows {
		// LFOC (index 1) should improve fairness vs stock.
		if r.NormUnf[1] >= 1.05 {
			t.Errorf("%s: LFOC dynamic normalized unfairness %.3f", r.Workload, r.NormUnf[1])
		}
	}
	if !strings.Contains(d.Render(), "LFOC") {
		t.Error("render broken")
	}
}

func TestTable2Gap(t *testing.T) {
	d, err := Table2(fastConfig(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 8 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	for _, r := range d.Rows {
		if r.LFOCms <= 0 || r.KPartms <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
		// The paper's headline: LFOC orders of magnitude faster.
		if r.KPartms < r.LFOCms*5 {
			t.Errorf("n=%d: KPart %.4fms not clearly slower than LFOC %.4fms",
				r.Apps, r.KPartms, r.LFOCms)
		}
	}
	if !strings.Contains(d.Render(), "KPart/LFOC") {
		t.Error("render broken")
	}
}

func TestAblationParams(t *testing.T) {
	cfg := fastConfig()
	d, err := AblationParams(cfg, []string{"S1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 16 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	// Every configuration must remain a valid improvement or at least
	// not a catastrophe, and the default (5,3) should be competitive:
	// within 10% of the best configuration in the sweep.
	best := d.Rows[0].GeoNormUnf
	var def float64
	for _, r := range d.Rows {
		if r.GeoNormUnf < best {
			best = r.GeoNormUnf
		}
		if r.MaxStreamingWay == 5 && r.GapsPerStreaming == 3 {
			def = r.GeoNormUnf
		}
	}
	if def == 0 {
		t.Fatal("default configuration missing from sweep")
	}
	if def > best*1.10 {
		t.Errorf("paper default (%.3f) is >10%% worse than best sweep point (%.3f)", def, best)
	}
	if !strings.Contains(d.Render(), "max_streaming_way") {
		t.Error("render broken")
	}
}

func TestSupplementUCP(t *testing.T) {
	cfg := fastConfig()
	d, err := SupplementUCP(cfg, []string{"S1", "S2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 2 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	// LFOC's clustering should be at least competitive with strict
	// partitioning on aggregate (the §2.2 motivation).
	if d.GeoLFOCUnf > d.GeoUCPUnf*1.05 {
		t.Errorf("LFOC (%.3f) clearly worse than UCP (%.3f)", d.GeoLFOCUnf, d.GeoUCPUnf)
	}
	if !strings.Contains(d.Render(), "UCP-unf") {
		t.Error("render broken")
	}
	// 12/16-app workloads are infeasible for UCP and must error.
	if _, err := SupplementUCP(cfg, []string{"S8"}); err == nil {
		t.Error("infeasible workload accepted")
	}
}

func TestChurnSweep(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 200
	d, err := Churn(cfg, "S3", []float64{2, 8}, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 2*len(ChurnPolicies) {
		t.Fatalf("%d rows, want %d", len(d.Rows), 2*len(ChurnPolicies))
	}
	// Identical traces per rate: every policy sees the same arrivals.
	for r := 0; r < 2; r++ {
		base := d.Rows[r*len(ChurnPolicies)]
		for pi := 1; pi < len(ChurnPolicies); pi++ {
			row := d.Rows[r*len(ChurnPolicies)+pi]
			if row.Arrivals != base.Arrivals {
				t.Errorf("rate %g: %s saw %d arrivals, %s saw %d",
					base.Rate, base.Policy, base.Arrivals, row.Policy, row.Arrivals)
			}
			if row.Rate != base.Rate {
				t.Errorf("row order broken: %+v", row)
			}
		}
	}
	// The higher rate must actually offer more load.
	if d.Rows[len(ChurnPolicies)].Arrivals <= d.Rows[0].Arrivals {
		t.Errorf("rate 8 offered %d arrivals vs %d at rate 2",
			d.Rows[len(ChurnPolicies)].Arrivals, d.Rows[0].Arrivals)
	}
	for _, row := range d.Rows {
		if row.Departed+row.Remaining != row.Arrivals {
			t.Errorf("%s@%g: %d departed + %d remaining != %d arrivals",
				row.Policy, row.Rate, row.Departed, row.Remaining, row.Arrivals)
		}
		if row.Departed > 0 && row.MeanSlowdown < 1 {
			t.Errorf("%s@%g: mean slowdown %v < 1", row.Policy, row.Rate, row.MeanSlowdown)
		}
	}
	if s := d.Render(); !strings.Contains(s, "arrival rate 2/s") || !strings.Contains(s, "lfoc") {
		t.Errorf("render missing expected sections:\n%s", s)
	}
}
