package harness

import (
	"fmt"
	"strings"

	"github.com/faircache/lfoc/internal/profiles"
	"github.com/faircache/lfoc/internal/workloads"
)

// Fig5Data is the workload-composition matrix of Fig. 5: one row per
// workload, one column per benchmark, cells counting instances.
type Fig5Data struct {
	Benchmarks []string
	Workloads  []string
	Counts     [][]int // [workload][benchmark]
}

// Fig5 builds the matrix from the generated workloads.
func Fig5(cfg Config) Fig5Data {
	_ = cfg.normalized()
	names := profiles.Names()
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	all := workloads.All()
	d := Fig5Data{Benchmarks: names}
	for _, w := range all {
		row := make([]int, len(names))
		for _, b := range w.Benchmarks {
			row[idx[b]]++
		}
		d.Workloads = append(d.Workloads, w.Name)
		d.Counts = append(d.Counts, row)
	}
	return d
}

// Render draws the matrix with workloads as rows.
func (d Fig5Data) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 5: Multiprogram workloads (cell = instance count)\n")
	// Column header: abbreviated benchmark names, vertical budget-wise
	// just index them.
	b.WriteString("columns:\n")
	for i, n := range d.Benchmarks {
		fmt.Fprintf(&b, "  c%02d=%s", i, n)
		if (i+1)%4 == 0 {
			b.WriteByte('\n')
		}
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-5s", "")
	for i := range d.Benchmarks {
		fmt.Fprintf(&b, "%3d", i)
	}
	b.WriteByte('\n')
	for wi, wname := range d.Workloads {
		fmt.Fprintf(&b, "%-5s", wname)
		for _, c := range d.Counts[wi] {
			if c == 0 {
				b.WriteString("  .")
			} else {
				fmt.Fprintf(&b, "%3d", c)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
