package harness

import (
	"fmt"

	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/workloads"
)

// ChurnPolicies is the policy order of the open-system load sweep.
var ChurnPolicies = []string{"stock", "dunn", "lfoc"}

// ChurnRow is one (arrival rate, policy) cell of the sweep.
type ChurnRow struct {
	Policy string  `json:"policy"`
	Rate   float64 `json:"rate"`
	// Arrivals/Departed/Remaining describe the population; Remaining is
	// nonzero only if the run hit a horizon before draining.
	Arrivals  int `json:"arrivals"`
	Departed  int `json:"departed"`
	Remaining int `json:"remaining"`
	// MeanSlowdown and MeanWait average over departed applications;
	// Unfairness and STP are windowed means (the open-system analogues
	// of Eqs. 3 and 4); Throughput is completed runs per simulated
	// second over the whole run.
	MeanSlowdown float64 `json:"mean_slowdown"`
	MeanWait     float64 `json:"mean_wait"`
	Unfairness   float64 `json:"unfairness"`
	STP          float64 `json:"stp"`
	Throughput   float64 `json:"throughput"`
	PeakActive   int     `json:"peak_active"`
	SimSeconds   float64 `json:"sim_seconds"`
}

// ChurnData is the open-system load sweep: the same seeded arrival
// process replayed against every dynamic policy at every rate.
type ChurnData struct {
	Workload string     `json:"workload"`
	Window   float64    `json:"window_seconds"`
	Seed     int64      `json:"seed"`
	Rows     []ChurnRow `json:"rows"`
}

// Churn runs the open-system experiment: applications from the named
// Fig. 5 mix arrive by a seeded Poisson process over window simulated
// seconds at each of the given rates, run one instruction quota, and
// depart; stock, Dunn and LFOC face the identical trace at each rate.
func Churn(cfg Config, workloadName string, rates []float64, window float64, seed int64) (ChurnData, error) {
	cfg = cfg.normalized()
	if len(rates) == 0 {
		return ChurnData{}, fmt.Errorf("churn: no arrival rates")
	}
	w, err := workloads.Get(workloadName)
	if err != nil {
		return ChurnData{}, err
	}

	type cell struct {
		rate   float64
		policy string
	}
	var cells []cell
	for _, r := range rates {
		for _, p := range ChurnPolicies {
			cells = append(cells, cell{rate: r, policy: p})
		}
	}
	rows, err := mapRows(cfg.workers(), cells, func(c cell) (ChurnRow, error) {
		row, err := churnCell(cfg, w, c.rate, c.policy, window, seed)
		if err != nil {
			return ChurnRow{}, fmt.Errorf("churn: %s rate %g %s: %w", w.Name, c.rate, c.policy, err)
		}
		return row, nil
	})
	if err != nil {
		return ChurnData{}, err
	}
	return ChurnData{Workload: w.Name, Window: window, Seed: seed, Rows: rows}, nil
}

func churnCell(cfg Config, w workloads.Workload, rate float64, polName string, window float64, seed int64) (ChurnRow, error) {
	// The same (rate, seed) trace for every policy: the comparison is
	// between policies, never between traces.
	scn, err := w.OpenScenario(rate, window, seed, cfg.Scale)
	if err != nil {
		return ChurnRow{}, err
	}
	pol, _, err := cfg.NewDynamicPolicy(polName)
	if err != nil {
		return ChurnRow{}, err
	}
	res, err := sim.RunOpen(cfg.SimConfig(), scn, pol)
	if err != nil {
		return ChurnRow{}, err
	}
	return ChurnRow{
		Policy:       polName,
		Rate:         rate,
		Arrivals:     len(res.Apps),
		Departed:     res.Departed,
		Remaining:    res.Remaining,
		MeanSlowdown: res.MeanSlowdown,
		MeanWait:     res.MeanWait,
		Unfairness:   res.Series.MeanUnfairness(),
		STP:          res.Series.MeanSTP(),
		Throughput:   res.Series.TotalThroughput(),
		PeakActive:   res.PeakActive,
		SimSeconds:   res.SimSeconds,
	}, nil
}

// Render formats the sweep as one table per arrival rate.
func (d ChurnData) Render() string {
	out := fmt.Sprintf("Open-system churn: workload %s, Poisson arrivals over %gs, seed %d\n",
		d.Workload, d.Window, d.Seed)
	header := []string{"policy", "arrivals", "departed", "slowdown", "wait(s)", "unfairness", "STP", "tput(runs/s)", "peak"}
	var rate float64 = -1
	var rows [][]string
	flush := func() {
		if len(rows) > 0 {
			out += fmt.Sprintf("\narrival rate %g/s:\n%s", rate, renderTable(rows))
			rows = nil
		}
	}
	for _, r := range d.Rows {
		if r.Rate != rate {
			flush()
			rate = r.Rate
			rows = [][]string{header}
		}
		rows = append(rows, []string{
			r.Policy,
			fmt.Sprintf("%d", r.Arrivals),
			fmt.Sprintf("%d", r.Departed),
			f3(r.MeanSlowdown),
			f3(r.MeanWait),
			f3(r.Unfairness),
			f3(r.STP),
			f3(r.Throughput),
			fmt.Sprintf("%d", r.PeakActive),
		})
	}
	flush()
	return out
}
