package harness

import (
	"fmt"

	"github.com/faircache/lfoc/internal/cluster"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/workloads"
)

// SpecRow is one (spec file, partitioning policy) cell of the spec
// sweep.
type SpecRow struct {
	// Spec is the scenario name of the loaded spec (its name field, or
	// the file basename).
	Spec   string `json:"spec"`
	Policy string `json:"policy"`
	// Arrivals counts the generated trace's arrivals; MachineArrivals
	// breaks them down per machine on multi-machine sweeps.
	Arrivals        int     `json:"arrivals"`
	MachineArrivals []int   `json:"machine_arrivals,omitempty"`
	Departed        int     `json:"departed"`
	Remaining       int     `json:"remaining"`
	MeanSlowdown    float64 `json:"mean_slowdown"`
	MeanWait        float64 `json:"mean_wait"`
	Unfairness      float64 `json:"unfairness"`
	STP             float64 `json:"stp"`
	Throughput      float64 `json:"throughput"`
	PeakActive      int     `json:"peak_active"`
	SimSeconds      float64 `json:"sim_seconds"`
}

// SpecSweepData is the spec-file × partitioning-policy grid.
type SpecSweepData struct {
	// Machines and Placement describe the fleet every cell ran on
	// (machines 1 means single-machine open runs, no placement).
	Machines  int       `json:"machines"`
	Placement string    `json:"placement,omitempty"`
	Rows      []SpecRow `json:"rows"`
}

// SpecSweep runs every workload-spec file against every partitioning
// policy — the declarative counterpart of the workload-name sweeps:
// each spec file is a complete experiment definition (cohorts, diurnal
// rates, bursts, job sizes, seed), so comparing spec files compares
// scenario designs with zero new code. Each cell regenerates the
// spec's trace at cfg.Scale — generation is a pure function of
// (spec, scale), so every policy faces the identical arrival stream.
// machines > 1 runs each cell over a homogeneous fleet under the named
// placement policy; machines ≤ 1 runs single-machine open simulations
// and ignores placement. Empty policies default to ChurnPolicies.
func SpecSweep(cfg Config, specPaths []string, policies []string, machines int, placement string) (SpecSweepData, error) {
	cfg = cfg.normalized()
	if len(specPaths) == 0 {
		return SpecSweepData{}, fmt.Errorf("spec sweep: no spec files")
	}
	if len(policies) == 0 {
		policies = ChurnPolicies
	}
	if machines < 1 {
		machines = 1
	}
	specs := make([]*workloads.Spec, len(specPaths))
	for i, p := range specPaths {
		s, err := workloads.LoadSpec(p)
		if err != nil {
			return SpecSweepData{}, fmt.Errorf("spec sweep: %w", err)
		}
		specs[i] = s
	}

	type cell struct {
		spec   *workloads.Spec
		policy string
	}
	var cells []cell
	for _, s := range specs {
		for _, po := range policies {
			cells = append(cells, cell{spec: s, policy: po})
		}
	}
	rows, err := mapRows(cfg.workers(), cells, func(c cell) (SpecRow, error) {
		row, err := specCell(cfg, c.spec, c.policy, machines, placement)
		if err != nil {
			return SpecRow{}, fmt.Errorf("spec sweep: %s/%s: %w", c.spec.Name, c.policy, err)
		}
		return row, nil
	})
	if err != nil {
		return SpecSweepData{}, err
	}
	d := SpecSweepData{Machines: machines, Rows: rows}
	if machines > 1 {
		d.Placement = placement
	}
	return d, nil
}

func specCell(cfg Config, spec *workloads.Spec, polName string, machines int, placement string) (SpecRow, error) {
	scn, err := spec.Scenario(cfg.Scale)
	if err != nil {
		return SpecRow{}, err
	}
	row := SpecRow{Spec: scn.Name(), Policy: polName, Arrivals: len(scn.Arrivals())}
	if machines <= 1 {
		pol, _, err := cfg.NewDynamicPolicy(polName)
		if err != nil {
			return SpecRow{}, err
		}
		res, err := sim.RunOpen(cfg.SimConfig(), scn, pol)
		if err != nil {
			return SpecRow{}, err
		}
		row.Departed = res.Departed
		row.Remaining = len(res.Apps) - res.Departed
		row.MeanSlowdown = res.MeanSlowdown
		row.MeanWait = res.MeanWait
		row.Unfairness = res.Series.MeanUnfairness()
		row.STP = res.Series.MeanSTP()
		row.Throughput = res.Series.TotalThroughput()
		row.PeakActive = res.PeakActive
		row.SimSeconds = res.SimSeconds
		return row, nil
	}
	pl, err := cluster.NewPlacement(placement, cfg.Plat)
	if err != nil {
		return SpecRow{}, err
	}
	// Cells are the unit of parallelism (as in the cluster sweep), so
	// each cell's fleet advances serially.
	ccfg := cluster.Config{Sim: cfg.SimConfig(), Machines: machines, Placement: pl, Workers: 1}
	res, err := cluster.Run(ccfg, scn, func(int) (sim.Dynamic, error) {
		pol, _, err := cfg.NewDynamicPolicy(polName)
		return pol, err
	})
	if err != nil {
		return SpecRow{}, err
	}
	row.Departed = res.Departed
	row.Remaining = res.Remaining
	row.MeanSlowdown = res.MeanSlowdown
	row.MeanWait = res.MeanWait
	row.Unfairness = res.Series.MeanUnfairness()
	row.STP = res.Series.MeanSTP()
	row.Throughput = res.Series.TotalThroughput()
	row.PeakActive = res.PeakActive
	row.SimSeconds = res.SimSeconds
	for _, m := range res.PerMachine {
		row.MachineArrivals = append(row.MachineArrivals, m.Arrivals)
	}
	return row, nil
}

// Render formats the sweep as one table per spec file.
func (d SpecSweepData) Render() string {
	fleet := "1 machine"
	if d.Machines > 1 {
		fleet = fmt.Sprintf("%d machines, placement %s", d.Machines, d.Placement)
	}
	out := fmt.Sprintf("Spec sweep over %s\n", fleet)
	header := []string{"policy", "arrivals", "departed", "slowdown", "wait(s)", "unfairness", "STP", "tput(runs/s)", "peak"}
	spec := ""
	var rows [][]string
	flush := func() {
		if len(rows) > 0 {
			out += fmt.Sprintf("\nspec %s:\n%s", spec, renderTable(rows))
			rows = nil
		}
	}
	for _, r := range d.Rows {
		if r.Spec != spec {
			flush()
			spec = r.Spec
			rows = [][]string{header}
		}
		rows = append(rows, []string{
			r.Policy,
			fmt.Sprintf("%d", r.Arrivals),
			fmt.Sprintf("%d", r.Departed),
			f3(r.MeanSlowdown),
			f3(r.MeanWait),
			f3(r.Unfairness),
			f3(r.STP),
			f3(r.Throughput),
			fmt.Sprintf("%d", r.PeakActive),
		})
	}
	flush()
	return out
}
