package harness

import (
	"fmt"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/profiles"
)

// Fig4Point is one monitoring window of fotonik3d's solo execution.
type Fig4Point struct {
	TimeSec float64
	MPKC    float64
}

// Fig4Data reproduces Fig. 4: the LLCMPKC trace captured at the
// beginning of fotonik3d's execution, showing the short light-sharing
// phase that precedes its long streaming behaviour.
type Fig4Data struct {
	Points      []Fig4Point
	PhaseChange float64 // time of the light→streaming transition
}

// Fig4 integrates fotonik3d running alone (full LLC) and reports the
// LLCMPKC of each 100M-instruction monitoring window. The trace always
// uses paper-scale windows regardless of Config.Scale — the figure is an
// analytic solo trace, so there is nothing to speed up.
func Fig4(cfg Config, windows int) Fig4Data {
	cfg = cfg.normalized()
	if windows <= 0 {
		windows = 160
	}
	spec := profiles.MustGet("fotonik3d17")
	inst := appmodel.NewInstance(spec)
	freq := float64(cfg.Plat.FreqHz)
	llc := cfg.Plat.LLCBytes()

	var out Fig4Data
	t := 0.0
	prevPhase := inst.PhaseIndex()
	for wi := 0; wi < windows; wi++ {
		perf := appmodel.PhasePerf(inst.Phase(), cfg.Plat, llc, 1)
		t += float64(paperNormalWindow) / (perf.IPC * freq)
		out.Points = append(out.Points, Fig4Point{TimeSec: t, MPKC: perf.MPKC})
		inst.Advance(paperNormalWindow)
		if inst.PhaseIndex() != prevPhase {
			out.PhaseChange = t
			prevPhase = inst.PhaseIndex()
		}
	}
	return out
}

// Render formats the trace, decimated for readability.
func (d Fig4Data) Render() string {
	rows := [][]string{{"time(s)", "LLCMPKC"}}
	step := len(d.Points) / 40
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(d.Points); i += step {
		rows = append(rows, []string{f2(d.Points[i].TimeSec), f1(d.Points[i].MPKC)})
	}
	return fmt.Sprintf("Fig. 4: LLCMPKC at the beginning of fotonik3d's execution (phase change at %.2fs)\n",
		d.PhaseChange) + renderTable(rows)
}
