package resctrl

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"github.com/faircache/lfoc/internal/cat"
)

func newFS(t *testing.T) (*FS, *cat.Controller) {
	t.Helper()
	ctrl, err := cat.NewController(11, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFS(ctrl, []int{0}, func(task cat.TaskID) uint64 { return uint64(task) * 1000 })
	if err != nil {
		t.Fatal(err)
	}
	return fs, ctrl
}

func TestParseSchemata(t *testing.T) {
	m, err := ParseSchemata("L3:0=7ff")
	if err != nil {
		t.Fatal(err)
	}
	if m[0] != cat.FullMask(11) {
		t.Errorf("mask = %x", uint32(m[0]))
	}
	m, err = ParseSchemata("L3:0=ff0;1=3")
	if err != nil {
		t.Fatal(err)
	}
	if m[0] != cat.MaskRange(4, 8) || m[1] != cat.MaskRange(0, 2) {
		t.Errorf("masks = %v", m)
	}
}

func TestParseSchemataErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"L2:0=f",
		"L3:",
		"L3:0",
		"L3:x=f",
		"L3:0=zz",
		"L3:0=0",     // empty CBM
		"L3:0=5",     // non-contiguous
		"L3:0=f;0=f", // duplicate id
	} {
		if _, err := ParseSchemata(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestFormatSchemata(t *testing.T) {
	s := FormatSchemata([]int{1, 0}, cat.MaskRange(0, 4))
	if s != "L3:0=f;1=f" {
		t.Errorf("schemata = %q", s)
	}
}

func TestGroupLifecycle(t *testing.T) {
	fs, ctrl := newFS(t)
	g, err := fs.MkGroup("lfoc_stream")
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "lfoc_stream" {
		t.Error("name wrong")
	}
	// New group defaults to the full mask.
	s, err := fs.ReadSchemata("lfoc_stream")
	if err != nil || s != "L3:0=7ff" {
		t.Errorf("schemata = %q, %v", s, err)
	}
	if err := fs.WriteSchemata("lfoc_stream", "L3:0=1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.AssignTask(42, "lfoc_stream"); err != nil {
		t.Fatal(err)
	}
	if ctrl.MaskOf(42) != cat.MaskRange(0, 1) {
		t.Error("mask did not reach the CAT controller")
	}
	if fs.GroupOf(42) != "lfoc_stream" {
		t.Error("GroupOf wrong")
	}
	// Removing the group returns its tasks to the default group.
	if err := fs.RmGroup("lfoc_stream"); err != nil {
		t.Fatal(err)
	}
	if fs.GroupOf(42) != "" {
		t.Error("task not returned to default group")
	}
	if ctrl.MaskOf(42) != cat.FullMask(11) {
		t.Error("task mask not reset")
	}
}

func TestGroupErrors(t *testing.T) {
	fs, _ := newFS(t)
	if _, err := fs.MkGroup("bad name"); err == nil {
		t.Error("space in name accepted")
	}
	if _, err := fs.MkGroup(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := fs.MkGroup("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.MkGroup("a"); err == nil {
		t.Error("duplicate accepted")
	}
	if err := fs.RmGroup("zzz"); err == nil {
		t.Error("removing unknown group accepted")
	}
	if err := fs.RmGroup(""); err == nil {
		t.Error("removing root accepted")
	}
	if err := fs.AssignTask(1, "zzz"); err == nil {
		t.Error("assigning to unknown group accepted")
	}
	if err := fs.WriteSchemata("zzz", "L3:0=f"); err == nil {
		t.Error("schemata on unknown group accepted")
	}
	if err := fs.WriteSchemata("a", "L3:9=f"); err == nil {
		t.Error("unknown cache id accepted")
	}
	if _, err := fs.ReadSchemata("zzz"); err == nil {
		t.Error("read on unknown group accepted")
	}
}

func TestCLOSIDExhaustion(t *testing.T) {
	ctrl, _ := cat.NewController(11, 3, 1) // COS 0 + 2 usable
	fs, _ := NewFS(ctrl, nil, nil)
	if _, err := fs.MkGroup("g1"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.MkGroup("g2"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.MkGroup("g3"); err == nil {
		t.Error("CLOSID exhaustion not detected")
	}
}

func TestTaskMovesBetweenGroups(t *testing.T) {
	fs, ctrl := newFS(t)
	_, _ = fs.MkGroup("a")
	_, _ = fs.MkGroup("b")
	_ = fs.WriteSchemata("a", "L3:0=3")
	_ = fs.WriteSchemata("b", "L3:0=7f8")
	_ = fs.AssignTask(7, "a")
	_ = fs.AssignTask(7, "b")
	if fs.GroupOf(7) != "b" {
		t.Error("task not moved")
	}
	if ctrl.MaskOf(7) != cat.MaskRange(3, 8) {
		t.Errorf("mask = %s", ctrl.MaskOf(7))
	}
	// Exactly one group holds the task.
	count := 0
	for _, name := range append(fs.Groups(), "") {
		g := fs.DefaultGroup()
		if name != "" {
			for _, tsk := range fsGroupTasks(fs, name) {
				if tsk == 7 {
					count++
				}
			}
			continue
		}
		for _, tsk := range g.Tasks() {
			if tsk == 7 {
				count++
			}
		}
	}
	if count != 1 {
		t.Errorf("task appears in %d groups", count)
	}
}

func fsGroupTasks(fs *FS, name string) []cat.TaskID {
	for _, n := range fs.Groups() {
		if n == name {
			// reach through AssignTask bookkeeping via GroupOf
			var out []cat.TaskID
			for t := cat.TaskID(0); t < 100; t++ {
				if fs.GroupOf(t) == name {
					out = append(out, t)
				}
			}
			return out
		}
	}
	return nil
}

func TestLLCOccupancy(t *testing.T) {
	fs, _ := newFS(t)
	_, _ = fs.MkGroup("g")
	_ = fs.AssignTask(3, "g")
	_ = fs.AssignTask(4, "g")
	occ, err := fs.LLCOccupancy("g")
	if err != nil || occ != 7000 {
		t.Errorf("occupancy = %d, %v", occ, err)
	}
	if _, err := fs.LLCOccupancy("zzz"); err == nil {
		t.Error("unknown group accepted")
	}
	noMon, _ := NewFS(mustCtrl(t), nil, nil)
	_, _ = noMon.MkGroup("g")
	if _, err := noMon.LLCOccupancy("g"); err == nil {
		t.Error("missing monitoring not reported")
	}
}

func mustCtrl(t *testing.T) *cat.Controller {
	t.Helper()
	c, err := cat.NewController(11, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestApplyPlanMasks(t *testing.T) {
	fs, ctrl := newFS(t)
	masks := []cat.WayMask{cat.MaskRange(0, 1), cat.MaskRange(1, 10)}
	members := [][]cat.TaskID{{1, 2}, {3}}
	if err := fs.ApplyPlanMasks(masks, members); err != nil {
		t.Fatal(err)
	}
	if ctrl.MaskOf(1) != masks[0] || ctrl.MaskOf(2) != masks[0] || ctrl.MaskOf(3) != masks[1] {
		t.Error("plan masks not applied")
	}
	if got := fs.Groups(); len(got) != 2 {
		t.Errorf("groups = %v", got)
	}
	// A smaller follow-up plan removes the stale group.
	if err := fs.ApplyPlanMasks(masks[:1], members[:1]); err != nil {
		t.Fatal(err)
	}
	if got := fs.Groups(); len(got) != 1 || got[0] != "cluster0" {
		t.Errorf("groups after shrink = %v", got)
	}
	// Mismatched inputs rejected.
	if err := fs.ApplyPlanMasks(masks, members[:1]); err == nil {
		t.Error("mismatched inputs accepted")
	}
}

// Property: Format→Parse round-trips any contiguous mask.
func TestQuickSchemataRoundTrip(t *testing.T) {
	f := func(lo8, c8 uint8) bool {
		lo, c := int(lo8%10), int(c8%10)+1
		if lo+c > 11 {
			c = 11 - lo
		}
		if c < 1 {
			return true
		}
		mask := cat.MaskRange(lo, c)
		s := FormatSchemata([]int{0}, mask)
		m, err := ParseSchemata(s)
		return err == nil && m[0] == mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewFSValidation(t *testing.T) {
	if _, err := NewFS(nil, nil, nil); err == nil {
		t.Error("nil controller accepted")
	}
	fs, _ := NewFS(mustCtrl(t), nil, nil)
	if s, err := fs.ReadSchemata(""); err != nil || !strings.HasPrefix(s, "L3:0=") {
		t.Errorf("default schemata = %q, %v", s, err)
	}
}

// Churn: an open system creates and removes one group per departing
// cluster for the lifetime of the deployment. Without COS reclamation
// the 16-entry CLOSID table is exhausted after 15 MkGroups ever; with
// it, group churn is bounded only by the number of *live* groups.
func TestCOSReclamationUnderChurn(t *testing.T) {
	fs, ctrl := newFS(t)
	for i := 0; i < 100; i++ {
		name := "g"
		g, err := fs.MkGroup(name)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if int(g.cos) >= ctrl.NumCOS() {
			t.Fatalf("iteration %d: COS %d beyond the table", i, g.cos)
		}
		if err := fs.WriteSchemata(name, "L3:0=3"); err != nil {
			t.Fatal(err)
		}
		if err := fs.AssignTask(cat.TaskID(i), name); err != nil {
			t.Fatal(err)
		}
		if err := fs.RmGroup(name); err != nil {
			t.Fatal(err)
		}
		// The kernel parks the task in the default group on rmdir...
		if got := fs.GroupOf(cat.TaskID(i)); got != "" {
			t.Fatalf("task %d in group %q after rmdir", i, got)
		}
		// ...and the exit cleans it up entirely.
		fs.RemoveTask(cat.TaskID(i))
		if got := len(fs.DefaultGroup().Tasks()); got != 0 {
			t.Fatalf("iteration %d: %d tasks left in default group", i, got)
		}
	}
	if got := len(fs.Groups()); got != 0 {
		t.Errorf("%d groups left after churn", got)
	}
}

// A reclaimed COS must come back with the kernel's mkdir default (full
// mask), not the departed cluster's schemata.
func TestReclaimedCOSResetToFullMask(t *testing.T) {
	fs, _ := newFS(t)
	if _, err := fs.MkGroup("narrow"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteSchemata("narrow", "L3:0=1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.RmGroup("narrow"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.MkGroup("fresh"); err != nil {
		t.Fatal(err)
	}
	s, err := fs.ReadSchemata("fresh")
	if err != nil {
		t.Fatal(err)
	}
	if s != FormatSchemata([]int{0}, cat.FullMask(11)) {
		t.Errorf("reused COS schemata = %q, want full mask", s)
	}
}

// Live groups must never have their COS handed out: reclamation only
// covers removed groups.
func TestReclamationDoesNotTouchLiveGroups(t *testing.T) {
	fs, ctrl := newFS(t)
	seen := map[cat.COSID]string{0: ""}
	// Fill the table with live groups.
	for i := 0; i < ctrl.NumCOS()-1; i++ {
		name := fmt.Sprintf("live%d", i)
		g, err := fs.MkGroup(name)
		if err != nil {
			t.Fatalf("group %d: %v", i, err)
		}
		if prev, dup := seen[g.cos]; dup {
			t.Fatalf("COS %d assigned to both %q and %q", g.cos, prev, name)
		}
		seen[g.cos] = name
	}
	// Table full: the next mkdir must fail, not steal a live COS.
	if _, err := fs.MkGroup("overflow"); err == nil {
		t.Fatal("mkdir beyond the COS table succeeded")
	}
	// Freeing one group frees exactly one slot.
	if err := fs.RmGroup("live3"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.MkGroup("replacement"); err != nil {
		t.Fatalf("mkdir after rmdir: %v", err)
	}
	if _, err := fs.MkGroup("overflow"); err == nil {
		t.Fatal("second mkdir beyond the COS table succeeded")
	}
}

// A mid-experiment departure through the plan-application path: the
// follow-up plan has fewer clusters, and the departed app's task is
// gone from the filesystem.
func TestApplyPlanMasksDeparture(t *testing.T) {
	fs, ctrl := newFS(t)
	masks := []cat.WayMask{cat.MaskRange(0, 2), cat.MaskRange(2, 9)}
	members := [][]cat.TaskID{{1, 2}, {3}}
	if err := fs.ApplyPlanMasks(masks, members); err != nil {
		t.Fatal(err)
	}
	// App 3 departs: the next plan only has one cluster.
	fs.RemoveTask(3)
	if err := fs.ApplyPlanMasks(masks[:1], members[:1]); err != nil {
		t.Fatal(err)
	}
	if got := fs.Groups(); len(got) != 1 || got[0] != "cluster0" {
		t.Errorf("groups after departure = %v", got)
	}
	if got := fs.GroupOf(3); got != "" {
		t.Errorf("departed task still in group %q", got)
	}
	if got := ctrl.COSOf(3); got != 0 {
		t.Errorf("departed task still associated with COS %d", got)
	}
	// The freed COS is reusable immediately.
	if _, err := fs.MkGroup("next"); err != nil {
		t.Fatal(err)
	}
}
