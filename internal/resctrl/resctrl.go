// Package resctrl emulates the Linux resctrl filesystem interface to
// Intel CAT — the control surface a production deployment of LFOC would
// sit behind (the kernel's /sys/fs/resctrl, also wrapped by userland
// libraries such as intel/goresctrl).
//
// The emulation covers the subset the paper's system needs:
//
//   - resource groups (directories) holding a task list and an L3
//     "schemata" line of the form "L3:0=7ff;1=7ff";
//   - schemata parsing/formatting with the kernel's validation rules
//     (hex CBM, contiguous bits, minimum width);
//   - task assignment semantics (a task lives in exactly one group; the
//     default group holds every unassigned task);
//   - monitoring hooks mirroring resctrl's mon_data (llc_occupancy).
//
// Internally every group maps to one class of service of a cat.Controller,
// so policies written against this API drive exactly the same CAT model
// as the rest of the repository, and a real-kernel backend could be
// substituted without touching policy code.
package resctrl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/faircache/lfoc/internal/cat"
)

// Group is one resctrl resource group.
type Group struct {
	name  string
	cos   cat.COSID
	tasks map[cat.TaskID]bool
}

// Name returns the group's directory name.
func (g *Group) Name() string { return g.name }

// Tasks returns the group's task list in ascending order (the "tasks"
// file).
func (g *Group) Tasks() []cat.TaskID {
	out := make([]cat.TaskID, 0, len(g.tasks))
	for t := range g.tasks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FS is the emulated resctrl filesystem root.
type FS struct {
	ctrl     *cat.Controller
	cacheIDs []int // L3 cache domains (sockets)
	groups   map[string]*Group
	nextCOS  cat.COSID
	// freeCOS holds classes of service reclaimed from removed groups,
	// reused LIFO before fresh CLOSIDs are allocated — without this an
	// open system that churns groups exhausts the COS table even though
	// only a handful are ever live at once.
	freeCOS []cat.COSID
	occFn   func(cat.TaskID) uint64
}

// NewFS mounts an emulated resctrl over a CAT controller. cacheIDs lists
// the L3 domains (one per socket; the paper's testbed uses one). occFn,
// if non-nil, backs the llc_occupancy monitoring files.
func NewFS(ctrl *cat.Controller, cacheIDs []int, occFn func(cat.TaskID) uint64) (*FS, error) {
	if ctrl == nil {
		return nil, fmt.Errorf("resctrl: nil controller")
	}
	if len(cacheIDs) == 0 {
		cacheIDs = []int{0}
	}
	fs := &FS{
		ctrl:     ctrl,
		cacheIDs: append([]int(nil), cacheIDs...),
		groups:   map[string]*Group{},
		nextCOS:  1,
		occFn:    occFn,
	}
	fs.groups[""] = &Group{name: "", cos: 0, tasks: map[cat.TaskID]bool{}}
	return fs, nil
}

// DefaultGroup returns the root group (COS 0).
func (fs *FS) DefaultGroup() *Group { return fs.groups[""] }

// Groups lists the group names (excluding the default root), sorted.
func (fs *FS) Groups() []string {
	out := make([]string, 0, len(fs.groups)-1)
	for n := range fs.groups {
		if n != "" {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// validName mirrors the kernel's directory-name restrictions.
func validName(name string) bool {
	if name == "" || name == "." || name == ".." || len(name) > 64 {
		return false
	}
	for _, r := range name {
		ok := r == '_' || r == '-' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// MkGroup creates a resource group (mkdir). The group starts with the
// full-LLC schemata, like the kernel's default.
func (fs *FS) MkGroup(name string) (*Group, error) {
	if !validName(name) {
		return nil, fmt.Errorf("resctrl: invalid group name %q", name)
	}
	if _, dup := fs.groups[name]; dup {
		return nil, fmt.Errorf("resctrl: group %q exists", name)
	}
	var cos cat.COSID
	if n := len(fs.freeCOS); n > 0 {
		cos = fs.freeCOS[n-1]
		fs.freeCOS = fs.freeCOS[:n-1]
	} else {
		if int(fs.nextCOS) >= fs.ctrl.NumCOS() {
			return nil, fmt.Errorf("resctrl: out of hardware CLOSIDs (%d)", fs.ctrl.NumCOS())
		}
		cos = fs.nextCOS
		fs.nextCOS++
	}
	if err := fs.ctrl.SetCOS(cos, cat.FullMask(fs.ctrl.Ways())); err != nil {
		return nil, err
	}
	g := &Group{name: name, cos: cos, tasks: map[cat.TaskID]bool{}}
	fs.groups[name] = g
	return g, nil
}

// RmGroup removes a group (rmdir); its tasks fall back to the default
// group, as in the kernel, and its class of service is reclaimed for
// the next MkGroup.
func (fs *FS) RmGroup(name string) error {
	g, ok := fs.groups[name]
	if !ok || name == "" {
		return fmt.Errorf("resctrl: no such group %q", name)
	}
	def := fs.groups[""]
	for t := range g.tasks {
		def.tasks[t] = true
		if err := fs.ctrl.Assign(t, 0); err != nil {
			return err
		}
	}
	delete(fs.groups, name)
	fs.freeCOS = append(fs.freeCOS, g.cos)
	return nil
}

// RemoveTask drops a task from the filesystem entirely — the task
// exited. Its group keeps its schemata; the CAT association is
// released. Removing an unknown task is a no-op, like the kernel
// cleaning up an already-reaped pid.
func (fs *FS) RemoveTask(task cat.TaskID) {
	for _, g := range fs.groups {
		delete(g.tasks, task)
	}
	fs.ctrl.Remove(task)
}

// AssignTask moves a task into a group (writing to the "tasks" file).
func (fs *FS) AssignTask(task cat.TaskID, group string) error {
	g, ok := fs.groups[group]
	if !ok {
		return fmt.Errorf("resctrl: no such group %q", group)
	}
	for _, other := range fs.groups {
		delete(other.tasks, task)
	}
	g.tasks[task] = true
	return fs.ctrl.Assign(task, g.cos)
}

// GroupOf returns the name of the group holding the task ("" = default).
func (fs *FS) GroupOf(task cat.TaskID) string {
	for name, g := range fs.groups {
		if g.tasks[task] {
			return name
		}
	}
	return ""
}

// WriteSchemata programs a group's L3 schemata from its textual form,
// e.g. "L3:0=7ff;1=3".
func (fs *FS) WriteSchemata(group, schemata string) error {
	g, ok := fs.groups[group]
	if !ok {
		return fmt.Errorf("resctrl: no such group %q", group)
	}
	masks, err := ParseSchemata(schemata)
	if err != nil {
		return err
	}
	// Validate coverage: every configured domain must exist.
	for id := range masks {
		if !fs.hasDomain(id) {
			return fmt.Errorf("resctrl: unknown cache id %d", id)
		}
	}
	// This model has a single COS table shared by all domains; the
	// kernel programs per-domain masks. We require all domains to agree
	// (the only mode the paper uses) and program the controller once.
	var mask cat.WayMask
	first := true
	for _, m := range masks {
		if first {
			mask = m
			first = false
		} else if m != mask {
			return fmt.Errorf("resctrl: per-domain masks differ; this model supports uniform masks only")
		}
	}
	if first {
		return fmt.Errorf("resctrl: schemata has no L3 line")
	}
	return fs.ctrl.SetCOS(g.cos, mask)
}

// ReadSchemata renders a group's current schemata line.
func (fs *FS) ReadSchemata(group string) (string, error) {
	g, ok := fs.groups[group]
	if !ok {
		return "", fmt.Errorf("resctrl: no such group %q", group)
	}
	mask, err := fs.ctrl.COSMask(g.cos)
	if err != nil {
		return "", err
	}
	return FormatSchemata(fs.cacheIDs, mask), nil
}

// LLCOccupancy returns the mon_data llc_occupancy reading for a group:
// the sum of its tasks' occupancy.
func (fs *FS) LLCOccupancy(group string) (uint64, error) {
	g, ok := fs.groups[group]
	if !ok {
		return 0, fmt.Errorf("resctrl: no such group %q", group)
	}
	if fs.occFn == nil {
		return 0, fmt.Errorf("resctrl: monitoring not available")
	}
	var total uint64
	for t := range g.tasks {
		total += fs.occFn(t)
	}
	return total, nil
}

func (fs *FS) hasDomain(id int) bool {
	for _, d := range fs.cacheIDs {
		if d == id {
			return true
		}
	}
	return false
}

// ParseSchemata parses an "L3:<id>=<hexmask>;<id>=<hexmask>" line into
// per-domain masks.
func ParseSchemata(s string) (map[int]cat.WayMask, error) {
	s = strings.TrimSpace(s)
	rest, ok := strings.CutPrefix(s, "L3:")
	if !ok {
		return nil, fmt.Errorf("resctrl: schemata %q does not start with \"L3:\"", s)
	}
	out := map[int]cat.WayMask{}
	for _, part := range strings.Split(rest, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("resctrl: malformed schemata element %q", part)
		}
		id, err := strconv.Atoi(strings.TrimSpace(kv[0]))
		if err != nil {
			return nil, fmt.Errorf("resctrl: bad cache id %q: %v", kv[0], err)
		}
		raw, err := strconv.ParseUint(strings.TrimSpace(kv[1]), 16, 32)
		if err != nil {
			return nil, fmt.Errorf("resctrl: bad CBM %q: %v", kv[1], err)
		}
		mask := cat.WayMask(raw)
		if mask == 0 || !mask.Contiguous() {
			return nil, fmt.Errorf("resctrl: CBM %#x must be a nonempty contiguous mask", raw)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("resctrl: duplicate cache id %d", id)
		}
		out[id] = mask
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("resctrl: empty schemata")
	}
	return out, nil
}

// FormatSchemata renders the same mask for every cache domain.
func FormatSchemata(cacheIDs []int, mask cat.WayMask) string {
	parts := make([]string, 0, len(cacheIDs))
	ids := append([]int(nil), cacheIDs...)
	sort.Ints(ids)
	for _, id := range ids {
		parts = append(parts, fmt.Sprintf("%d=%x", id, uint32(mask)))
	}
	return "L3:" + strings.Join(parts, ";")
}

// ApplyPlanMasks programs a whole clustering decision through the
// filesystem interface: one group per cluster named cluster0..N, tasks
// assigned per the mapping. Existing clusterN groups are reused or
// created; surplus ones are removed. This is how a userland LFOC daemon
// would enforce plans.
func (fs *FS) ApplyPlanMasks(masks []cat.WayMask, members [][]cat.TaskID) error {
	if len(masks) != len(members) {
		return fmt.Errorf("resctrl: %d masks for %d member lists", len(masks), len(members))
	}
	for ci, mask := range masks {
		name := fmt.Sprintf("cluster%d", ci)
		if _, ok := fs.groups[name]; !ok {
			if _, err := fs.MkGroup(name); err != nil {
				return err
			}
		}
		if err := fs.WriteSchemata(name, FormatSchemata(fs.cacheIDs, mask)); err != nil {
			return err
		}
		for _, t := range members[ci] {
			if err := fs.AssignTask(t, name); err != nil {
				return err
			}
		}
	}
	// Remove stale cluster groups beyond the plan.
	for _, name := range fs.Groups() {
		var idx int
		if n, err := fmt.Sscanf(name, "cluster%d", &idx); err == nil && n == 1 && idx >= len(masks) {
			if err := fs.RmGroup(name); err != nil {
				return err
			}
		}
	}
	return nil
}
