// Package yamlite parses the small, regular subset of YAML the
// repository's declarative artifacts (workload specs under
// examples/specs/) are written in, without pulling in an external YAML
// dependency. The subset is:
//
//   - block mappings ("key: value" / "key:" + indented block),
//   - block sequences ("- item", "- key: value" starting an inline
//     mapping item),
//   - scalars: double-quoted strings, booleans (true/false), null (null
//     or ~), integers and floats (JSON number syntax), and bare strings,
//   - full-line and trailing "# ..." comments, blank lines.
//
// Indentation is significant and must be spaces. Anchors, aliases, flow
// collections ([a, b] / {k: v}), multi-line scalars, documents ("---")
// and tags are deliberately out of scope — Parse rejects them with a
// positioned error instead of guessing. The result tree uses the same
// shapes encoding/json produces (map[string]any, []any, json.Number,
// string, bool, nil), so callers can re-marshal it to JSON and decode
// strictly into a typed struct; that is exactly how workloads.ParseSpec
// gets unknown-field rejection for YAML and JSON through one code path.
package yamlite

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Error is a positioned parse error.
type Error struct {
	Line int    // 1-based source line
	Msg  string // what is wrong
}

func (e *Error) Error() string { return fmt.Sprintf("yamlite: line %d: %s", e.Line, e.Msg) }

// line is one significant source line.
type line struct {
	num    int    // 1-based line number
	indent int    // leading spaces
	text   string // content, comments and trailing space stripped
}

// Parse decodes src into a JSON-shaped tree (map[string]any, []any,
// json.Number, string, bool, nil). Empty input yields nil.
func Parse(src []byte) (any, error) {
	lines, err := split(src)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, nil
	}
	p := &parser{lines: lines}
	v, err := p.block(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, &Error{l.num, fmt.Sprintf("unexpected content at indent %d", l.indent)}
	}
	return v, nil
}

// split scans src into significant lines, stripping comments.
func split(src []byte) ([]line, error) {
	var out []line
	for num, raw := range strings.Split(string(src), "\n") {
		if strings.ContainsRune(raw, '\t') {
			return nil, &Error{num + 1, "tab in indentation or content (use spaces)"}
		}
		text := stripComment(raw)
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		if trimmed == "---" || strings.HasPrefix(trimmed, "--- ") {
			return nil, &Error{num + 1, "document markers (---) are not supported"}
		}
		out = append(out, line{num: num + 1, indent: len(text) - len(strings.TrimLeft(text, " ")), text: trimmed})
	}
	return out, nil
}

// stripComment removes a trailing "# ..." comment outside double quotes.
func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if !inStr {
				inStr = true
			} else if i == 0 || s[i-1] != '\\' {
				inStr = false
			}
		case '#':
			if !inStr && (i == 0 || s[i-1] == ' ') {
				return s[:i]
			}
		}
	}
	return s
}

type parser struct {
	lines []line
	pos   int
}

// block parses the run of lines at exactly the given indent as one
// mapping or sequence (decided by the first line).
func (p *parser) block(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, &Error{0, "empty block"}
	}
	if strings.HasPrefix(p.lines[p.pos].text, "- ") || p.lines[p.pos].text == "-" {
		return p.sequence(indent)
	}
	return p.mapping(indent)
}

// mapping parses "key: ..." entries at the given indent.
func (p *parser) mapping(indent int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, &Error{l.num, fmt.Sprintf("unexpected indent %d (mapping is at %d)", l.indent, indent)}
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, &Error{l.num, "sequence item inside a mapping"}
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, &Error{l.num, fmt.Sprintf("duplicate key %q", key)}
		}
		p.pos++
		var v any
		if rest == "" {
			// Nested block (or an empty value when nothing is indented
			// deeper — YAML's "key:" with no content means null).
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				v, err = p.block(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
			}
		} else {
			v, err = scalar(rest, l.num)
			if err != nil {
				return nil, err
			}
		}
		m[key] = v
	}
	return m, nil
}

// sequence parses "- ..." items at the given indent.
func (p *parser) sequence(indent int) (any, error) {
	s := []any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || (!strings.HasPrefix(l.text, "- ") && l.text != "-") {
			if l.indent > indent {
				return nil, &Error{l.num, fmt.Sprintf("unexpected indent %d (sequence is at %d)", l.indent, indent)}
			}
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		if rest == "" {
			// "-" alone: the item is the deeper-indented block.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				s = append(s, nil)
				continue
			}
			v, err := p.block(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			s = append(s, v)
			continue
		}
		if _, _, err := trySplitKey(rest, l.num); err == nil {
			// "- key: value" starts a mapping item: rewrite the line as
			// the mapping's first entry at the dash-adjusted indent and
			// parse the whole item as a mapping block.
			itemIndent := l.indent + (len(l.text) - len(rest))
			p.lines[p.pos] = line{num: l.num, indent: itemIndent, text: rest}
			v, err := p.mapping(itemIndent)
			if err != nil {
				return nil, err
			}
			s = append(s, v)
			continue
		}
		v, err := scalar(rest, l.num)
		if err != nil {
			return nil, err
		}
		s = append(s, v)
		p.pos++
	}
	return s, nil
}

// splitKey splits a mapping line into key and inline value.
func splitKey(l line) (key, rest string, err error) {
	key, rest, e := trySplitKey(l.text, l.num)
	if e != nil {
		return "", "", e
	}
	return key, rest, nil
}

// trySplitKey splits "key: value" / "key:"; the key may be bare (no
// colon, quote or space) or double-quoted.
func trySplitKey(s string, num int) (key, rest string, err error) {
	if strings.HasPrefix(s, `"`) {
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '"' && s[i-1] != '\\' {
				end = i
				break
			}
		}
		if end < 0 || end+1 >= len(s) || s[end+1] != ':' {
			return "", "", &Error{num, fmt.Sprintf("malformed quoted key in %q", s)}
		}
		k, uerr := strconv.Unquote(s[:end+1])
		if uerr != nil {
			return "", "", &Error{num, fmt.Sprintf("bad quoted key in %q: %v", s, uerr)}
		}
		return k, strings.TrimSpace(s[end+2:]), nil
	}
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return "", "", &Error{num, fmt.Sprintf("expected \"key: value\", got %q", s)}
	}
	if i+1 < len(s) && s[i+1] != ' ' {
		return "", "", &Error{num, fmt.Sprintf("missing space after colon in %q", s)}
	}
	key = strings.TrimSpace(s[:i])
	if strings.ContainsAny(key, " \"") {
		return "", "", &Error{num, fmt.Sprintf("malformed key %q", key)}
	}
	return key, strings.TrimSpace(s[i+1:]), nil
}

// scalar types one inline value.
func scalar(s string, num int) (any, error) {
	switch {
	case s == "null", s == "~":
		return nil, nil
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	}
	if strings.HasPrefix(s, `"`) {
		v, err := strconv.Unquote(s)
		if err != nil {
			return nil, &Error{num, fmt.Sprintf("bad quoted string %s: %v", s, err)}
		}
		return v, nil
	}
	if strings.HasPrefix(s, "[") || strings.HasPrefix(s, "{") {
		return nil, &Error{num, fmt.Sprintf("flow collections are not supported: %q", s)}
	}
	if strings.HasPrefix(s, "'") {
		return nil, &Error{num, fmt.Sprintf("single-quoted strings are not supported: %q (use double quotes)", s)}
	}
	// A JSON-syntax number stays a number; anything else is a bare string.
	if _, err := strconv.ParseFloat(s, 64); err == nil && json.Valid([]byte(s)) {
		return json.Number(s), nil
	}
	return s, nil
}

// ToJSON re-marshals a Parse tree as JSON bytes, so strict typed
// decoding (json.Decoder with DisallowUnknownFields) covers YAML input
// through the ordinary JSON path.
func ToJSON(v any) ([]byte, error) { return json.Marshal(v) }
