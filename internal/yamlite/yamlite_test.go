package yamlite

import (
	"encoding/json"
	"reflect"
	"testing"
)

func parseJSON(t *testing.T, src string) any {
	t.Helper()
	v, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	buf, err := ToJSON(v)
	if err != nil {
		t.Fatalf("ToJSON: %v", err)
	}
	var out any
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatalf("re-unmarshal: %v", err)
	}
	return out
}

func TestParseSpecShapedDocument(t *testing.T) {
	src := `
# workload spec
spec_version: 1
name: "diurnal web"
seed: 42
duration_seconds: 10.5
cohorts:
  - name: web
    mix:
      workload: S3
    rate:
      sinusoid:
        base: 2
        amplitude: 1.5
  - name: batch
    mix:
      apps:
        - name: lbm06
          weight: 2
        - name: povray06
    rate:
      constant: 0.5
    enabled: true
    note: ~
`
	got := parseJSON(t, src)
	want := map[string]any{
		"spec_version":     1.0,
		"name":             "diurnal web",
		"seed":             42.0,
		"duration_seconds": 10.5,
		"cohorts": []any{
			map[string]any{
				"name": "web",
				"mix":  map[string]any{"workload": "S3"},
				"rate": map[string]any{"sinusoid": map[string]any{"base": 2.0, "amplitude": 1.5}},
			},
			map[string]any{
				"name": "batch",
				"mix": map[string]any{"apps": []any{
					map[string]any{"name": "lbm06", "weight": 2.0},
					map[string]any{"name": "povray06"},
				}},
				"rate":    map[string]any{"constant": 0.5},
				"enabled": true,
				"note":    nil,
			},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parse mismatch:\n got %#v\nwant %#v", got, want)
	}
}

func TestParseScalarSequence(t *testing.T) {
	got := parseJSON(t, "files:\n  - a.yaml\n  - b.yaml\n")
	want := map[string]any{"files": []any{"a.yaml", "b.yaml"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v want %#v", got, want)
	}
}

func TestParseNumbersStayExact(t *testing.T) {
	v, err := Parse([]byte("x: 0.30000000000000004\n"))
	if err != nil {
		t.Fatal(err)
	}
	n := v.(map[string]any)["x"].(json.Number)
	if string(n) != "0.30000000000000004" {
		t.Fatalf("number mangled: %q", n)
	}
}

func TestParseEmpty(t *testing.T) {
	v, err := Parse([]byte("\n# only comments\n\n"))
	if err != nil || v != nil {
		t.Fatalf("want nil, nil; got %#v, %v", v, err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"tab":            "a:\n\tb: 1\n",
		"document":       "---\na: 1\n",
		"flow seq":       "a: [1, 2]\n",
		"flow map":       "a: {b: 1}\n",
		"single quote":   "a: 'x'\n",
		"no colon":       "justaword\n",
		"dup key":        "a: 1\na: 2\n",
		"bad indent":     "a: 1\n   b: 2\n",
		"seq in map":     "a: 1\n- b\n",
		"colon no space": "a:1\n",
	}
	for name, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("%s: parse accepted %q", name, src)
		} else if _, ok := err.(*Error); !ok {
			t.Errorf("%s: error not a *yamlite.Error: %v", name, err)
		}
	}
}

func TestTrailingCommentAndQuotedHash(t *testing.T) {
	got := parseJSON(t, "a: 1 # one\nb: \"# not a comment\"\n")
	want := map[string]any{"a": 1.0, "b": "# not a comment"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v want %#v", got, want)
	}
}
