package workloads

import (
	"testing"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/profiles"
)

func classCount(w Workload, c appmodel.Class) int {
	n := 0
	for _, b := range w.Benchmarks {
		if profiles.MustGet(b).Class == c {
			n++
		}
	}
	return n
}

func TestAllHas36(t *testing.T) {
	all := All()
	if len(all) != 36 {
		t.Fatalf("got %d workloads", len(all))
	}
	if all[0].Name != "S1" || all[20].Name != "S21" || all[21].Name != "P1" || all[35].Name != "P15" {
		t.Error("naming order wrong")
	}
}

func TestSizesFollowPaper(t *testing.T) {
	sizes := map[int]int{}
	for _, w := range All() {
		sizes[w.Size]++
		if len(w.Benchmarks) != w.Size {
			t.Errorf("%s: %d benchmarks for size %d", w.Name, len(w.Benchmarks), w.Size)
		}
	}
	if sizes[8] != 12 || sizes[12] != 12 || sizes[16] != 12 {
		t.Errorf("size distribution %v, want 12 each of 8/12/16", sizes)
	}
}

func TestInstanceCap(t *testing.T) {
	for _, w := range All() {
		counts := map[string]int{}
		for _, b := range w.Benchmarks {
			counts[b]++
			if counts[b] > 2 {
				t.Errorf("%s: benchmark %s appears %d times", w.Name, b, counts[b])
			}
		}
	}
}

func TestClassRepresentation(t *testing.T) {
	for _, w := range All() {
		if classCount(w, appmodel.ClassStreaming) < 1 {
			t.Errorf("%s has no streaming app", w.Name)
		}
		if classCount(w, appmodel.ClassSensitive) < 1 {
			t.Errorf("%s has no sensitive app", w.Name)
		}
	}
}

func TestSWorkloadsAreStable(t *testing.T) {
	for _, w := range SWorkloads() {
		for _, b := range w.Benchmarks {
			if profiles.MustGet(b).Phased() {
				t.Errorf("%s contains phased app %s", w.Name, b)
			}
		}
	}
}

func TestPWorkloadsHavePhasedApps(t *testing.T) {
	for _, w := range PWorkloads() {
		phased := 0
		for _, b := range w.Benchmarks {
			if profiles.MustGet(b).Phased() {
				phased++
			}
		}
		if phased < 2 {
			t.Errorf("%s has only %d phased apps", w.Name, phased)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := All(), All()
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatal("name mismatch")
		}
		for j := range a[i].Benchmarks {
			if a[i].Benchmarks[j] != b[i].Benchmarks[j] {
				t.Fatalf("%s nondeterministic", a[i].Name)
			}
		}
	}
}

func TestGet(t *testing.T) {
	w, err := Get("P3")
	if err != nil || w.Name != "P3" || w.Kind != KindP {
		t.Errorf("Get(P3) = %+v, %v", w, err)
	}
	if _, err := Get("Z9"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestDynamicList(t *testing.T) {
	d := Dynamic()
	if len(d) != 24 {
		t.Fatalf("dynamic list has %d entries", len(d))
	}
	if d[0].Name != "P1" || d[5].Name != "S1" || d[23].Name != "S17" {
		t.Error("Fig. 7 x-axis order wrong")
	}
}

func TestSpecsResolve(t *testing.T) {
	w, _ := Get("S1")
	specs := w.Specs()
	if len(specs) != w.Size {
		t.Fatal("spec count wrong")
	}
	for i, s := range specs {
		if s.Name != w.Benchmarks[i] {
			t.Error("spec order mismatch")
		}
	}
}

func TestScaledSpecs(t *testing.T) {
	w, _ := Get("P1")
	orig := w.Specs()
	scaled := w.ScaledSpecs(50)
	for i := range orig {
		if len(orig[i].Phases) != len(scaled[i].Phases) {
			t.Fatal("phase count changed")
		}
		for p := range orig[i].Phases {
			od, sd := orig[i].Phases[p].DurationInsns, scaled[i].Phases[p].DurationInsns
			if od == 0 {
				if sd != 0 {
					t.Error("endless phase gained a duration")
				}
				continue
			}
			if sd != od/50 {
				t.Errorf("duration %d scaled to %d", od, sd)
			}
		}
		if err := scaled[i].Validate(); err != nil {
			t.Errorf("scaled spec invalid: %v", err)
		}
		// Original untouched.
		if orig[i] != profiles.MustGet(w.Benchmarks[i]) {
			t.Error("ScaledSpecs mutated the catalog")
		}
	}
	// Scale 1 returns catalog pointers directly.
	same := w.ScaledSpecs(1)
	for i := range same {
		if same[i] != orig[i] {
			t.Error("scale 1 should not copy")
		}
	}
}

func TestRandomMix(t *testing.T) {
	w := RandomMix(7, 10)
	if w.Size != 10 || len(w.Benchmarks) != 10 {
		t.Fatalf("mix = %+v", w)
	}
	if classCount(w, appmodel.ClassStreaming) < 1 || classCount(w, appmodel.ClassSensitive) < 1 {
		t.Error("random mix lacks class representation")
	}
	// Deterministic per seed.
	w2 := RandomMix(7, 10)
	for i := range w.Benchmarks {
		if w.Benchmarks[i] != w2.Benchmarks[i] {
			t.Fatal("RandomMix nondeterministic")
		}
	}
}

func TestOpenScenarioBuilder(t *testing.T) {
	w, err := Get("S1")
	if err != nil {
		t.Fatal(err)
	}
	a, err := w.OpenScenario(4, 10, 42, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.OpenScenario(4, 10, 42, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Arrivals()) != len(b.Arrivals()) {
		t.Fatal("same seed, different traces")
	}
	names := map[string]bool{}
	for _, n := range w.Benchmarks {
		names[n] = true
	}
	for i, arr := range a.Arrivals() {
		// ScaledSpecs copies specs per call, so compare by value.
		if arr.Time != b.Arrivals()[i].Time || arr.Spec.Name != b.Arrivals()[i].Spec.Name {
			t.Fatal("same seed, different traces")
		}
		if !names[arr.Spec.Name] {
			t.Errorf("arrival %d draws %q, not in the mix", i, arr.Spec.Name)
		}
	}
	// Scaled specs: every bounded phase shrank.
	for _, arr := range a.Arrivals() {
		for _, ph := range arr.Spec.Phases {
			full := profilePhaseDuration(t, arr.Spec.Name, ph.Name)
			if full > 0 && ph.DurationInsns >= full {
				t.Errorf("%s phase %q not scaled: %d", arr.Spec.Name, ph.Name, ph.DurationInsns)
			}
		}
	}
}

func profilePhaseDuration(t *testing.T, specName, phaseName string) uint64 {
	t.Helper()
	s := profiles.MustGet(specName)
	for _, ph := range s.Phases {
		if ph.Name == phaseName {
			return ph.DurationInsns
		}
	}
	t.Fatalf("%s has no phase %q", specName, phaseName)
	return 0
}

func TestUniformScenarioBuilder(t *testing.T) {
	w, err := Get("S1")
	if err != nil {
		t.Fatal(err)
	}
	scn, err := w.UniformScenario(0.5, 6, 50)
	if err != nil {
		t.Fatal(err)
	}
	arr := scn.Arrivals()
	if len(arr) != 6 {
		t.Fatalf("%d arrivals, want 6", len(arr))
	}
	for i := range arr {
		if arr[i].Time != 0.5*float64(i) {
			t.Errorf("arrival %d at %v, want %v", i, arr[i].Time, 0.5*float64(i))
		}
		if arr[i].Spec.Name != profiles.MustGet(w.Benchmarks[i%len(w.Benchmarks)]).Name {
			t.Errorf("arrival %d draws %q, want mix order", i, arr[i].Spec.Name)
		}
	}
	if _, err := w.UniformScenario(0, 6, 50); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := w.UniformScenario(0.5, 0, 50); err == nil {
		t.Error("zero count accepted")
	}
}

func TestSplitArrivals(t *testing.T) {
	w, err := Get("S1")
	if err != nil {
		t.Fatal(err)
	}
	scn, err := w.UniformScenario(0.5, 7, 50)
	if err != nil {
		t.Fatal(err)
	}
	arr := scn.Arrivals()

	split, err := SplitArrivals(arr, []int{0, 1, 2, 0, 1, 2, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(split[0]) != 3 || len(split[1]) != 2 || len(split[2]) != 2 {
		t.Fatalf("split sizes %d/%d/%d, want 3/2/2", len(split[0]), len(split[1]), len(split[2]))
	}
	for m, sub := range split {
		for i := 1; i < len(sub); i++ {
			if sub[i].Time < sub[i-1].Time {
				t.Errorf("machine %d: sub-trace out of order", m)
			}
		}
	}
	// Round-robin is the same split.
	rr, err := SplitRoundRobin(arr, 3)
	if err != nil {
		t.Fatal(err)
	}
	for m := range rr {
		if len(rr[m]) != len(split[m]) {
			t.Errorf("machine %d: round-robin split %d arrivals, want %d", m, len(rr[m]), len(split[m]))
		}
	}

	if _, err := SplitArrivals(arr, []int{0}, 3); err == nil {
		t.Error("assignment length mismatch accepted")
	}
	if _, err := SplitArrivals(arr, []int{0, 1, 2, 0, 1, 2, 3}, 3); err == nil {
		t.Error("out-of-range machine accepted")
	}
	if _, err := SplitRoundRobin(arr, 0); err == nil {
		t.Error("zero machines accepted")
	}
}
