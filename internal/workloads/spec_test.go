package workloads

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// minimalYAML is a small but fully featured spec: two cohorts, diurnal
// sinusoid + MMPP burst + Pareto sizes on one, piecewise periods on the
// other.
const minimalYAML = `
spec_version: 1
name: spec-test
seed: 11
duration_seconds: 4
day_seconds: 2
cohorts:
  - name: web
    mix:
      workload: S1
    rate:
      sinusoid:
        base: 3
        amplitude: 2
    burst:
      factor: 4
      mean_calm_seconds: 0.5
      mean_burst_seconds: 0.2
    size:
      dist: pareto
      alpha: 2.5
      max_factor: 4
  - name: batch
    mix:
      apps:
        - name: lbm06
          weight: 3
        - name: povray06
          weight: 1
    rate:
      periods:
        - start_seconds: 0
          rate: 1
        - start_seconds: 1
          rate: 0.25
`

const minimalJSON = `{
  "spec_version": 1,
  "name": "spec-test",
  "seed": 11,
  "duration_seconds": 4,
  "day_seconds": 2,
  "cohorts": [
    {
      "name": "web",
      "mix": {"workload": "S1"},
      "rate": {"sinusoid": {"base": 3, "amplitude": 2}},
      "burst": {"factor": 4, "mean_calm_seconds": 0.5, "mean_burst_seconds": 0.2},
      "size": {"dist": "pareto", "alpha": 2.5, "max_factor": 4}
    },
    {
      "name": "batch",
      "mix": {"apps": [{"name": "lbm06", "weight": 3}, {"name": "povray06", "weight": 1}]},
      "rate": {"periods": [{"start_seconds": 0, "rate": 1}, {"start_seconds": 1, "rate": 0.25}]}
    }
  ]
}`

func TestParseSpecYAMLEqualsJSON(t *testing.T) {
	y, err := ParseSpec([]byte(minimalYAML), ".yaml")
	if err != nil {
		t.Fatalf("yaml: %v", err)
	}
	j, err := ParseSpec([]byte(minimalJSON), ".json")
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	if !reflect.DeepEqual(y, j) {
		t.Fatalf("YAML and JSON parses differ:\n yaml %+v\n json %+v", y, j)
	}
}

func TestParseSpecSniffsFormat(t *testing.T) {
	if _, err := ParseSpec([]byte(minimalJSON), ""); err != nil {
		t.Errorf("JSON sniff: %v", err)
	}
	if _, err := ParseSpec([]byte(minimalYAML), ""); err != nil {
		t.Errorf("YAML sniff: %v", err)
	}
}

// edit applies a YAML-level rewrite to the minimal spec.
func edit(t *testing.T, old, new string) []byte {
	t.Helper()
	if !strings.Contains(minimalYAML, old) {
		t.Fatalf("fixture does not contain %q", old)
	}
	return []byte(strings.Replace(minimalYAML, old, new, 1))
}

func TestSpecVersionRejected(t *testing.T) {
	for _, v := range []string{"spec_version: 2", "spec_version: 0"} {
		_, err := ParseSpec(edit(t, "spec_version: 1", v), ".yaml")
		var ve *VersionError
		if !errors.As(err, &ve) {
			t.Errorf("%s: want *VersionError, got %v", v, err)
		} else if ve.Want != SpecVersion {
			t.Errorf("%s: VersionError.Want = %d", v, ve.Want)
		}
	}
}

func TestSpecUnknownFieldRejected(t *testing.T) {
	_, err := ParseSpec(edit(t, "name: spec-test", "name: spec-test\nsurprise: 1"), ".yaml")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if !strings.Contains(err.Error(), "surprise") {
		t.Fatalf("error does not name the unknown field: %v", err)
	}
}

func TestSpecValidationErrors(t *testing.T) {
	cases := []struct {
		name      string
		old, new  string
		wantField string
	}{
		{"negative duration", "duration_seconds: 4", "duration_seconds: -1", "duration_seconds"},
		{"all-zero period rates", "rate: 1\n        - start_seconds: 1\n          rate: 0.25", "rate: 0\n        - start_seconds: 1\n          rate: 0", ".rate.periods"},
		{"first period not at zero", "start_seconds: 0\n          rate: 1", "start_seconds: 0.5\n          rate: 1", "periods[0].start_seconds"},
		{"period beyond day", "start_seconds: 1\n          rate: 0.25", "start_seconds: 7\n          rate: 0.25", "periods[1].start_seconds"},
		{"amplitude above base", "amplitude: 2", "amplitude: 5", ".sinusoid.amplitude"},
		{"unknown workload", "workload: S1", "workload: S99", ".mix.workload"},
		{"unknown benchmark", "name: lbm06", "name: nosuch06", ".name"},
		{"zero-weight cohort", "weight: 3", "weight: 0", ".apps"},
		{"negative weight", "weight: 3", "weight: -1", ".weight"},
		{"burst factor", "factor: 4", "factor: 0", ".burst.factor"},
		{"burst dwell", "mean_calm_seconds: 0.5", "mean_calm_seconds: 0", "mean_calm_seconds"},
		{"pareto alpha", "alpha: 2.5", "alpha: 0", ".alpha"},
		{"unknown dist", "dist: pareto", "dist: zipf", ".dist"},
	}
	for _, tc := range cases {
		src := edit(t, tc.old, tc.new)
		// The "zero-weight cohort" case needs BOTH weights zero.
		if tc.name == "zero-weight cohort" {
			src = []byte(strings.Replace(string(src), "weight: 1", "weight: 0", 1))
		}
		_, err := ParseSpec(src, ".yaml")
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Errorf("%s: want *ValidationError, got %v", tc.name, err)
			continue
		}
		if !strings.Contains(ve.Field, tc.wantField) {
			t.Errorf("%s: error field %q does not mention %q", tc.name, ve.Field, tc.wantField)
		}
	}
}

func TestSpecEmptyCollectionsRejected(t *testing.T) {
	// yamlite has no flow syntax, so present-but-empty lists are a
	// JSON-side concern.
	empty := strings.Replace(minimalJSON,
		`[{"start_seconds": 0, "rate": 1}, {"start_seconds": 1, "rate": 0.25}]`, "[]", 1)
	_, err := ParseSpec([]byte(empty), ".json")
	var ve *ValidationError
	if !errors.As(err, &ve) || !strings.Contains(ve.Field, ".rate.periods") {
		t.Errorf("empty periods: want *ValidationError on .rate.periods, got %v", err)
	}

	noCohorts := `{"spec_version": 1, "duration_seconds": 1, "cohorts": []}`
	_, err = ParseSpec([]byte(noCohorts), ".json")
	if !errors.As(err, &ve) || ve.Field != "cohorts" {
		t.Errorf("no cohorts: want *ValidationError on cohorts, got %v", err)
	}
}

func TestSpecNegativeConstantRate(t *testing.T) {
	src := `
spec_version: 1
duration_seconds: 1
cohorts:
  - mix:
      workload: S1
    rate:
      constant: -2
`
	_, err := ParseSpec([]byte(src), ".yaml")
	var ve *ValidationError
	if !errors.As(err, &ve) || !strings.Contains(ve.Field, ".rate.constant") {
		t.Fatalf("want *ValidationError on .rate.constant, got %v", err)
	}
}

func TestSpecRateAlternativesExclusive(t *testing.T) {
	src := edit(t, "rate:\n      sinusoid:", "rate:\n      constant: 2\n      sinusoid:")
	_, err := ParseSpec(src, ".yaml")
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("two rate forms accepted: %v", err)
	}
}

func mustParse(t *testing.T) *Spec {
	t.Helper()
	s, err := ParseSpec([]byte(minimalYAML), ".yaml")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGenerateDeterministic(t *testing.T) {
	s := mustParse(t)
	a, err := s.Generate(200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Generate(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("spec generated no arrivals")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two generations of the same spec differ")
	}
	s2 := mustParse(t)
	s2.Seed = 12
	c, err := s2.Generate(200)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced the identical trace")
	}
}

func TestGenerateSizeFactors(t *testing.T) {
	s := mustParse(t)
	arrivals, err := s.Generate(200)
	if err != nil {
		t.Fatal(err)
	}
	sized := 0
	for _, a := range arrivals {
		f := a.Spec.SizeFactor
		if f == 0 {
			continue // batch cohort: no size spec
		}
		sized++
		if f < 1 || f > 4 {
			t.Fatalf("pareto(min 1, cap 4) drew factor %v", f)
		}
	}
	if sized == 0 {
		t.Fatal("no sized arrivals generated")
	}
}

func TestSizeCapAppliesExactly(t *testing.T) {
	// Lognormal with sigma 0 draws exp(mu) ≈ 2.72 every time; a cap of 2
	// must clamp every factor to exactly 2.
	src := `
spec_version: 1
duration_seconds: 5
cohorts:
  - mix:
      workload: S1
    rate:
      constant: 2
    size:
      dist: lognormal
      mu: 1
      max_factor: 2
`
	s, err := ParseSpec([]byte(src), ".yaml")
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := s.Generate(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) == 0 {
		t.Fatal("no arrivals")
	}
	for _, a := range arrivals {
		if a.Spec.SizeFactor != 2 {
			t.Fatalf("cap 2 not applied: factor %v", a.Spec.SizeFactor)
		}
	}
}

func TestGenerateWeightedMixNeverDrawsZeroWeight(t *testing.T) {
	src := edit(t, "weight: 1", "weight: 0")
	s, err := ParseSpec(src, ".yaml")
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := s.Generate(200)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals {
		if a.Spec.Name == "povray06" {
			t.Fatal("zero-weight benchmark was drawn")
		}
	}
}

func TestGenerateDiurnalShape(t *testing.T) {
	// A sinusoid peaking in the first half of each day must place more
	// arrivals there than in the trough half.
	src := `
spec_version: 1
seed: 3
duration_seconds: 40
day_seconds: 4
cohorts:
  - mix:
      workload: S1
    rate:
      sinusoid:
        base: 4
        amplitude: 4
        phase_seconds: 0
`
	s, err := ParseSpec([]byte(src), ".yaml")
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := s.Generate(200)
	if err != nil {
		t.Fatal(err)
	}
	peakHalf, troughHalf := 0, 0
	for _, a := range arrivals {
		if m := a.Time - 4*float64(int(a.Time/4)); m < 2 {
			peakHalf++
		} else {
			troughHalf++
		}
	}
	if peakHalf <= 2*troughHalf {
		t.Fatalf("diurnal shape missing: %d peak-half vs %d trough-half arrivals", peakHalf, troughHalf)
	}
}

func TestGenerateBurstRaisesVolume(t *testing.T) {
	base := `
spec_version: 1
seed: 5
duration_seconds: 20
cohorts:
  - mix:
      workload: S1
    rate:
      constant: 1
`
	bursty := base + `    burst:
      factor: 8
      mean_calm_seconds: 1
      mean_burst_seconds: 1
`
	calm, err := ParseSpec([]byte(base), ".yaml")
	if err != nil {
		t.Fatal(err)
	}
	burst, err := ParseSpec([]byte(bursty), ".yaml")
	if err != nil {
		t.Fatal(err)
	}
	ca, err := calm.Generate(200)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := burst.Generate(200)
	if err != nil {
		t.Fatal(err)
	}
	// Burst states multiply the rate 8x roughly half the time: the
	// bursty trace must be decisively denser.
	if len(ba) < 2*len(ca) {
		t.Fatalf("MMPP bursts missing: %d bursty vs %d calm arrivals", len(ba), len(ca))
	}
}

func TestScaledSpecsUnchangedByRefactor(t *testing.T) {
	// scaledSpec is the extracted per-benchmark form of ScaledSpecs;
	// the slices must match element-wise, and scale ≤ 1 must return
	// the catalog pointers themselves.
	w, err := Get("S3")
	if err != nil {
		t.Fatal(err)
	}
	specs := w.ScaledSpecs(50)
	for i, n := range w.Benchmarks {
		if !reflect.DeepEqual(specs[i], scaledSpec(n, 50)) {
			t.Fatalf("ScaledSpecs[%d] diverges from scaledSpec(%q)", i, n)
		}
	}
	plain := w.ScaledSpecs(1)
	for i, sp := range w.Specs() {
		if plain[i] != sp {
			t.Fatalf("scale 1 no longer returns catalog pointers (index %d)", i)
		}
	}
}
