package workloads

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"reflect"
	"strconv"
	"strings"

	"github.com/faircache/lfoc/internal/atomicfile"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

// TraceVersion is the arrival-trace file-format version this build
// reads and writes.
const TraceVersion = 1

// traceMagic heads every trace file; the version rides on it.
const traceMagic = "lfoc-trace"

// Trace is a materialized arrival stream: the versioned, on-disk
// counterpart of a generated scenario. Recording a trace once and
// replaying it under different placements, partitioning policies or
// fleets guarantees every variant faces the identical arrival stream
// bit for bit (reflect.DeepEqual over the arrivals), which is the
// methodological backbone of any cross-policy comparison. Traces
// compose with the cluster split-trace machinery: SplitArrivals over a
// replayed trace reproduces per-machine sub-traces exactly as it does
// over a generated one.
//
// The format is a line-oriented text file:
//
//	lfoc-trace v1
//	name <scenario name>
//	scale <time-scale divisor>
//	arrivals <count>
//	<time> <benchmark> <size-factor>
//	...
//
// Floats are written with strconv.FormatFloat(v, 'g', -1, 64), the
// shortest representation that round-trips float64 exactly — replayed
// arrival times and size factors are bit-identical to the recorded
// ones. Records reference applications by catalog benchmark name plus
// size factor; the reader rebuilds each spec through the identical
// scaling path generation uses, so the specs match DeepEqual too.
// Lines starting with '#' are comments.
type Trace struct {
	// Name is the recorded scenario name.
	Name string
	// Scale is the time-scale divisor the arrival specs were built at;
	// replay must run at the same scale (the specs bake it in).
	Scale uint64
	// Arrivals is the stream in nondecreasing time order.
	Arrivals []scenario.Arrival
}

// TraceError reports a malformed or unrepresentable trace.
type TraceError struct {
	// Path is the file ("" for stream IO), Line the 1-based source
	// line (0 when the error is not positional).
	Path string
	Line int
	// Msg describes the problem.
	Msg string
}

func (e *TraceError) Error() string {
	switch {
	case e.Path != "" && e.Line > 0:
		return fmt.Sprintf("workloads: trace %s:%d: %s", e.Path, e.Line, e.Msg)
	case e.Line > 0:
		return fmt.Sprintf("workloads: trace line %d: %s", e.Line, e.Msg)
	case e.Path != "":
		return fmt.Sprintf("workloads: trace %s: %s", e.Path, e.Msg)
	default:
		return fmt.Sprintf("workloads: trace: %s", e.Msg)
	}
}

// Scenario wraps the trace in an open-system scenario.
func (t *Trace) Scenario() (*scenario.Open, error) {
	return scenario.NewTrace(t.Name, nil, t.Arrivals)
}

// WriteTrace serializes an arrival stream. Every arrival must be
// representable — a catalog benchmark scaled by the trace's scale and
// the spec's own SizeFactor, with a zero Tag — which holds for all
// arrivals produced by Spec.Generate, Workload.OpenScenario and
// Workload.UniformScenario. The check is exact (the writer rebuilds
// each distinct (benchmark, size) spec and compares DeepEqual), so a
// trace that writes cleanly is guaranteed to replay bit-identically.
func WriteTrace(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s v%d\n", traceMagic, TraceVersion)
	fmt.Fprintf(bw, "name %s\n", t.Name)
	fmt.Fprintf(bw, "scale %d\n", t.Scale)
	fmt.Fprintf(bw, "arrivals %d\n", len(t.Arrivals))
	cache := newSpecCache(t.Scale)
	verified := map[sizedKey]bool{}
	for i, a := range t.Arrivals {
		if a.Spec == nil {
			return &TraceError{Msg: fmt.Sprintf("arrival %d has no spec", i)}
		}
		if a.Tag != 0 {
			return &TraceError{Msg: fmt.Sprintf("arrival %d carries runtime tag %d (tags are not trace data)", i, a.Tag)}
		}
		factor := a.Spec.SizeFactor
		if factor == 0 {
			factor = 1
		}
		key := sizedKey{name: a.Spec.Name, bits: math.Float64bits(factor)}
		if !verified[key] {
			rebuilt, err := cache.get(a.Spec.Name, factor)
			if err != nil {
				return &TraceError{Msg: fmt.Sprintf("arrival %d: %v", i, err)}
			}
			if !reflect.DeepEqual(rebuilt, a.Spec) {
				return &TraceError{Msg: fmt.Sprintf(
					"arrival %d: spec %q (size %v) does not match the catalog at scale %d — the trace cannot represent it",
					i, a.Spec.Name, factor, t.Scale)}
			}
			verified[key] = true
		}
		fmt.Fprintf(bw, "%s %s %s\n",
			strconv.FormatFloat(a.Time, 'g', -1, 64),
			a.Spec.Name,
			strconv.FormatFloat(factor, 'g', -1, 64))
	}
	return bw.Flush()
}

// ReadTrace parses a trace stream, rebuilding every arrival spec
// through the same scaling path generation uses.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, true
		}
		return "", false
	}

	header, ok := next()
	if !ok {
		return nil, &TraceError{Line: lineNo, Msg: "empty trace"}
	}
	magic, ver, found := strings.Cut(header, " ")
	if !found || magic != traceMagic || !strings.HasPrefix(ver, "v") {
		return nil, &TraceError{Line: lineNo, Msg: fmt.Sprintf("not an arrival trace (header %q)", header)}
	}
	version, err := strconv.Atoi(strings.TrimPrefix(ver, "v"))
	if err != nil {
		return nil, &TraceError{Line: lineNo, Msg: fmt.Sprintf("malformed version in header %q", header)}
	}
	if version != TraceVersion {
		return nil, &VersionError{What: "arrival trace", Got: version, Want: TraceVersion}
	}

	t := &Trace{}
	count := -1
	for _, want := range []string{"name", "scale", "arrivals"} {
		line, ok := next()
		if !ok {
			return nil, &TraceError{Line: lineNo, Msg: fmt.Sprintf("truncated header: missing %q", want)}
		}
		key, val, _ := strings.Cut(line, " ")
		if key != want {
			return nil, &TraceError{Line: lineNo, Msg: fmt.Sprintf("expected header field %q, got %q", want, key)}
		}
		switch want {
		case "name":
			t.Name = val
		case "scale":
			s, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, &TraceError{Line: lineNo, Msg: fmt.Sprintf("bad scale %q", val)}
			}
			t.Scale = s
		case "arrivals":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, &TraceError{Line: lineNo, Msg: fmt.Sprintf("bad arrival count %q", val)}
			}
			count = n
		}
	}

	cache := newSpecCache(t.Scale)
	t.Arrivals = make([]scenario.Arrival, 0, count)
	prev := 0.0
	for {
		line, ok := next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, &TraceError{Line: lineNo, Msg: fmt.Sprintf("want \"<time> <benchmark> <size>\", got %q", line)}
		}
		tm, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || tm < 0 {
			return nil, &TraceError{Line: lineNo, Msg: fmt.Sprintf("bad arrival time %q", fields[0])}
		}
		if tm < prev {
			return nil, &TraceError{Line: lineNo, Msg: fmt.Sprintf("arrival times must be nondecreasing (%v after %v)", tm, prev)}
		}
		prev = tm
		factor, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, &TraceError{Line: lineNo, Msg: fmt.Sprintf("bad size factor %q", fields[2])}
		}
		sp, err := cache.get(fields[1], factor)
		if err != nil {
			return nil, &TraceError{Line: lineNo, Msg: err.Error()}
		}
		t.Arrivals = append(t.Arrivals, scenario.Arrival{Time: tm, Spec: sp})
	}
	if err := sc.Err(); err != nil {
		return nil, &TraceError{Line: lineNo, Msg: err.Error()}
	}
	if len(t.Arrivals) != count {
		return nil, &TraceError{Line: lineNo, Msg: fmt.Sprintf("header declares %d arrivals, file has %d", count, len(t.Arrivals))}
	}
	return t, nil
}

// WriteTraceFile records a trace to path, atomically (temp+rename): an
// interrupted run can never leave a truncated trace behind.
func WriteTraceFile(path string, t *Trace) error {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, t); err != nil {
		if te, ok := err.(*TraceError); ok {
			te.Path = path
		}
		return err
	}
	if err := atomicfile.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("workloads: %w", err)
	}
	return nil
}

// ReadTraceFile replays a trace from path.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workloads: %w", err)
	}
	defer f.Close()
	t, err := ReadTrace(f)
	if err != nil {
		if te, ok := err.(*TraceError); ok {
			te.Path = path
		}
		return nil, err
	}
	return t, nil
}
