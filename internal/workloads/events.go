package workloads

import (
	"fmt"
	"strconv"
	"strings"
)

// FleetEvent is one machine lifecycle event of a workload's event
// schedule — the declarative, tooling-friendly form (JSON-serializable,
// CLI-parseable) that rides alongside an arrival trace. The cluster
// layer consumes it converted to a cluster.Event (see
// harness.ClusterEvents); keeping the schedule here lets workload
// definitions bundle "what arrives" and "what breaks" as one artifact.
type FleetEvent struct {
	// Time is the event instant in simulated seconds.
	Time float64 `json:"t"`
	// Kind is "join", "drain" or "fail".
	Kind string `json:"kind"`
	// Machine is the drain/fail target index (ignored for joins).
	Machine int `json:"machine,omitempty"`
}

// ParseFleetEvents parses a compact event-schedule string:
//
//	drain:t=5,m=1;fail:t=7,m=0;join:t=9
//
// Events are ';'-separated; each is kind:key=value,... with keys t
// (time, seconds, required) and m (machine index, required for drain
// and fail, rejected for join). The empty string is an empty schedule.
func ParseFleetEvents(s string) ([]FleetEvent, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var events []FleetEvent
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, spec, _ := strings.Cut(part, ":")
		kind = strings.TrimSpace(kind)
		switch kind {
		case "join", "drain", "fail":
		default:
			return nil, fmt.Errorf("workloads: event %q: unknown kind %q (want join, drain or fail)", part, kind)
		}
		ev := FleetEvent{Time: -1, Machine: -1}
		if spec != "" {
			for _, kv := range strings.Split(spec, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("workloads: event %q: malformed field %q (want key=value)", part, kv)
				}
				switch key {
				case "t":
					t, err := strconv.ParseFloat(val, 64)
					if err != nil || t < 0 {
						return nil, fmt.Errorf("workloads: event %q: bad time %q", part, val)
					}
					ev.Time = t
				case "m":
					m, err := strconv.Atoi(val)
					if err != nil || m < 0 {
						return nil, fmt.Errorf("workloads: event %q: bad machine %q", part, val)
					}
					ev.Machine = m
				default:
					return nil, fmt.Errorf("workloads: event %q: unknown field %q (want t or m)", part, key)
				}
			}
		}
		if ev.Time < 0 {
			return nil, fmt.Errorf("workloads: event %q: missing time (t=...)", part)
		}
		if kind == "join" {
			if ev.Machine >= 0 {
				return nil, fmt.Errorf("workloads: event %q: join takes no machine (the fleet assigns the next index)", part)
			}
			ev.Machine = 0
		} else if ev.Machine < 0 {
			return nil, fmt.Errorf("workloads: event %q: missing machine (m=...)", part)
		}
		ev.Kind = kind
		events = append(events, ev)
	}
	return events, nil
}
