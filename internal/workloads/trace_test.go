package workloads_test

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/faircache/lfoc/internal/cluster"
	"github.com/faircache/lfoc/internal/harness"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/workloads"
)

// traceSpec is the diurnal+bursty+heavy-tailed acceptance shape: the
// kind of spec the record/replay path exists for.
const traceSpec = `
spec_version: 1
name: trace-test
seed: 42
duration_seconds: 6
day_seconds: 3
cohorts:
  - name: web
    mix:
      workload: S1
    rate:
      sinusoid:
        base: 2
        amplitude: 1.5
    burst:
      factor: 3
      mean_calm_seconds: 1
      mean_burst_seconds: 0.3
    size:
      dist: pareto
      alpha: 2
      max_factor: 6
  - name: batch
    mix:
      workload: P1
    rate:
      constant: 1
`

const traceScale = 200

func genTrace(t *testing.T) *workloads.Trace {
	t.Helper()
	s, err := workloads.ParseSpec([]byte(traceSpec), ".yaml")
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := s.Generate(traceScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) == 0 {
		t.Fatal("spec generated no arrivals")
	}
	return &workloads.Trace{Name: s.Name, Scale: traceScale, Arrivals: arrivals}
}

func TestTraceRoundTrip(t *testing.T) {
	orig := genTrace(t)
	var buf bytes.Buffer
	if err := workloads.WriteTrace(&buf, orig); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := workloads.ReadTrace(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if back.Name != orig.Name || back.Scale != orig.Scale {
		t.Fatalf("header mismatch: %q/%d vs %q/%d", back.Name, back.Scale, orig.Name, orig.Scale)
	}
	if !reflect.DeepEqual(back.Arrivals, orig.Arrivals) {
		t.Fatal("replayed arrivals are not DeepEqual to the recorded ones")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	orig := genTrace(t)
	path := t.TempDir() + "/trace.txt"
	if err := workloads.WriteTraceFile(path, orig); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := workloads.ReadTraceFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(back.Arrivals, orig.Arrivals) {
		t.Fatal("file round-trip lost bit-identity")
	}
}

func TestTraceReplayEqualsGenerate(t *testing.T) {
	// Generating twice and replaying a recording of the first must all
	// yield the same arrivals — replay is a faithful stand-in for
	// generation.
	a := genTrace(t)
	b := genTrace(t)
	if !reflect.DeepEqual(a.Arrivals, b.Arrivals) {
		t.Fatal("generation is not deterministic")
	}
	var buf bytes.Buffer
	if err := workloads.WriteTrace(&buf, a); err != nil {
		t.Fatal(err)
	}
	replayed, err := workloads.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed.Arrivals, b.Arrivals) {
		t.Fatal("replayed trace differs from a fresh generation")
	}
}

func TestTraceVersionRejected(t *testing.T) {
	_, err := workloads.ReadTrace(strings.NewReader("lfoc-trace v9\nname x\nscale 1\narrivals 0\n"))
	var ve *workloads.VersionError
	if !errors.As(err, &ve) || ve.Got != 9 {
		t.Fatalf("want *VersionError{Got: 9}, got %v", err)
	}
}

func TestTraceMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"wrong magic":      "not-a-trace v1\n",
		"missing header":   "lfoc-trace v1\nname x\n",
		"bad scale":        "lfoc-trace v1\nname x\nscale pony\narrivals 0\n",
		"bad record":       "lfoc-trace v1\nname x\nscale 1\narrivals 1\n0.5 lbm06\n",
		"unknown app":      "lfoc-trace v1\nname x\nscale 1\narrivals 1\n0.5 nosuch06 1\n",
		"negative factor":  "lfoc-trace v1\nname x\nscale 1\narrivals 1\n0.5 lbm06 -1\n",
		"time regression":  "lfoc-trace v1\nname x\nscale 1\narrivals 2\n2 lbm06 1\n1 lbm06 1\n",
		"count mismatch":   "lfoc-trace v1\nname x\nscale 1\narrivals 3\n0.5 lbm06 1\n",
		"bad arrival time": "lfoc-trace v1\nname x\nscale 1\narrivals 1\nnoon lbm06 1\n",
	}
	for name, src := range cases {
		_, err := workloads.ReadTrace(strings.NewReader(src))
		var te *workloads.TraceError
		if !errors.As(err, &te) {
			t.Errorf("%s: want *TraceError, got %v", name, err)
		}
	}
}

func TestTraceCommentsAndBlanksIgnored(t *testing.T) {
	src := "# recorded by a test\nlfoc-trace v1\n\nname x\nscale 1\narrivals 1\n# one record\n0.5 lbm06 1\n"
	tr, err := workloads.ReadTrace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Arrivals) != 1 || tr.Arrivals[0].Spec.Name != "lbm06" {
		t.Fatalf("unexpected trace: %+v", tr)
	}
}

func TestTraceRejectsUnrepresentableArrivals(t *testing.T) {
	orig := genTrace(t)
	// A tagged arrival carries runtime state no trace can hold.
	bad := *orig
	bad.Arrivals = append(bad.Arrivals[:0:0], bad.Arrivals...)
	bad.Arrivals[0].Tag = 7
	if err := workloads.WriteTrace(&bytes.Buffer{}, &bad); err == nil {
		t.Fatal("tagged arrival written without error")
	}
	// A hand-mutated spec no longer matches the catalog rebuild.
	mut := *orig
	mut.Arrivals = append(mut.Arrivals[:0:0], mut.Arrivals...)
	cp := *mut.Arrivals[0].Spec
	cp.LoopPhases = !cp.LoopPhases
	mut.Arrivals[0].Spec = &cp
	if err := workloads.WriteTrace(&bytes.Buffer{}, &mut); err == nil {
		t.Fatal("off-catalog spec written without error")
	}
}

// TestTraceClusterReplayAcrossPlacements is the acceptance bar: a trace
// recorded once replays bit-exactly (DeepEqual arrivals) for every
// placement policy on a 4-machine fleet, and each placement run over
// the replayed trace matches the same placement run over the freshly
// generated arrivals exactly.
func TestTraceClusterReplayAcrossPlacements(t *testing.T) {
	orig := genTrace(t)
	var buf bytes.Buffer
	if err := workloads.WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	recorded := buf.Bytes()

	cfg := harness.DefaultConfig()
	cfg.Scale = traceScale
	runOnce := func(arr *workloads.Trace, placement string) *cluster.Result {
		t.Helper()
		scn, err := arr.Scenario()
		if err != nil {
			t.Fatal(err)
		}
		pl, err := cluster.NewPlacement(placement, cfg.Plat)
		if err != nil {
			t.Fatal(err)
		}
		ccfg := cluster.Config{Sim: cfg.SimConfig(), Machines: 4, Placement: pl}
		res, err := cluster.Run(ccfg, scn, func(int) (sim.Dynamic, error) {
			pol, _, err := cfg.NewDynamicPolicy("lfoc")
			return pol, err
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	for _, placement := range []string{"rr", "least", "fair"} {
		replayed, err := workloads.ReadTrace(bytes.NewReader(recorded))
		if err != nil {
			t.Fatalf("%s: replay: %v", placement, err)
		}
		if !reflect.DeepEqual(replayed.Arrivals, orig.Arrivals) {
			t.Fatalf("%s: replayed arrivals not DeepEqual to recorded", placement)
		}
		fresh := runOnce(orig, placement)
		replay := runOnce(replayed, placement)
		if !reflect.DeepEqual(fresh, replay) {
			t.Fatalf("%s: cluster result over the replayed trace differs from the generated one", placement)
		}
	}
}
