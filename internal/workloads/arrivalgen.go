package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/profiles"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

// Generate expands the spec into its arrival trace: a pure function of
// (spec, scale), byte-identical across runs, processes and GOMAXPROCS —
// the same determinism bar the simulator itself meets. Each cohort
// generates independently from seeded substreams (arrival thinning, mix
// draws, size draws and the MMPP state path each have their own stream,
// so adding burstiness to a cohort does not reshuffle its mix), and the
// cohort streams merge into one time-sorted trace.
//
// Arrival times follow a non-homogeneous Poisson process via
// Lewis–Shedler thinning: candidates at the cohort's peak rate, each
// kept with probability rate(t)/peak, where rate(t) is the diurnal
// curve times the current MMPP state factor. Job sizes, when a cohort
// declares them, become per-arrival spec clones whose phase durations
// and run quota are stretched by the drawn factor.
func (s *Spec) Generate(scale uint64) ([]scenario.Arrival, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	day := s.Day
	if day == 0 {
		day = s.Duration
	}
	cache := newSpecCache(scale)
	var all []scenario.Arrival
	for ci := range s.Cohorts {
		arrivals, err := s.Cohorts[ci].generate(s.Seed, ci, s.Duration, day, cache)
		if err != nil {
			return nil, err
		}
		all = append(all, arrivals...)
	}
	// Stable merge: cohort order breaks time ties deterministically
	// (scenario.NewTrace re-sorts with the same stable comparison).
	sort.SliceStable(all, func(i, j int) bool { return all[i].Time < all[j].Time })
	return all, nil
}

// Scenario wraps Generate into an open-system scenario named after the
// spec.
func (s *Spec) Scenario(scale uint64) (*scenario.Open, error) {
	arrivals, err := s.Generate(scale)
	if err != nil {
		return nil, err
	}
	name := s.Name
	if name == "" {
		name = "spec"
	}
	return scenario.NewTrace(name, nil, arrivals)
}

// generate builds one cohort's arrival stream.
func (c *CohortSpec) generate(seed int64, index int, duration, day float64, cache *specCache) ([]scenario.Arrival, error) {
	rngArr := rand.New(rand.NewSource(subSeed(seed, index, streamArrivals)))
	rngMix := rand.New(rand.NewSource(subSeed(seed, index, streamMix)))
	rngSize := rand.New(rand.NewSource(subSeed(seed, index, streamSize)))

	base := c.Rate.curve(day)
	states := c.burstPath(seed, index, duration)
	peak := base.peak * states.peak
	if peak <= 0 {
		return nil, nil // a zero-peak cohort never arrives (e.g. calm_factor 0 with an all-burst-free path)
	}

	draw := c.Mix.drawer()
	var arrivals []scenario.Arrival
	t := 0.0
	si := 0 // walking index into the MMPP state path (t is monotone)
	for {
		t += rngArr.ExpFloat64() / peak
		if t >= duration {
			break
		}
		r := base.at(t)
		if states.segs != nil {
			for si+1 < len(states.segs) && states.segs[si+1].start <= t {
				si++
			}
			r *= states.segs[si].factor
		}
		if rngArr.Float64()*peak >= r {
			continue // thinned
		}
		name := draw(rngMix)
		factor := 1.0
		if c.Size != nil {
			factor = c.Size.draw(rngSize)
		}
		sp, err := cache.get(name, factor)
		if err != nil {
			return nil, err
		}
		arrivals = append(arrivals, scenario.Arrival{Time: t, Spec: sp})
	}
	return arrivals, nil
}

// Seed-derivation stream ids: every (cohort, stream) pair gets an
// independent substream of the spec seed.
const (
	streamArrivals = iota
	streamMix
	streamSize
	streamBurst
)

// subSeed derives a well-mixed child seed via splitmix64-style
// finalization, so neighbouring (seed, cohort, stream) triples do not
// produce correlated math/rand streams.
func subSeed(seed int64, cohort, stream int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(cohort+1) + 0xbf58476d1ce4e5b9*uint64(stream+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// rateCurve is a resolved diurnal rate profile.
type rateCurve struct {
	at   func(t float64) float64
	peak float64
}

// curve resolves the rate spec against the day length. The spec is
// already validated.
func (r *RateSpec) curve(day float64) rateCurve {
	switch {
	case r.Constant != 0:
		c := r.Constant
		return rateCurve{at: func(float64) float64 { return c }, peak: c}
	case r.Periods != nil:
		periods := r.Periods
		peak := 0.0
		for _, p := range periods {
			if p.Rate > peak {
				peak = p.Rate
			}
		}
		return rateCurve{
			at: func(t float64) float64 {
				tm := math.Mod(t, day)
				// Linear scan: period lists are short (a handful of
				// pieces per day) and tm wraps, so a walking index
				// would reset anyway.
				rate := periods[len(periods)-1].Rate
				for i := range periods {
					if periods[i].Start > tm {
						rate = periods[i-1].Rate
						break
					}
				}
				return rate
			},
			peak: peak,
		}
	default:
		sn := r.Sinusoid
		period := sn.Period
		if period == 0 {
			period = day
		}
		base, amp, phase := sn.Base, sn.Amplitude, sn.Phase
		return rateCurve{
			at: func(t float64) float64 {
				v := base + amp*math.Sin(2*math.Pi*(t-phase)/period)
				if v < 0 {
					v = 0 // guard against float dust at amplitude == base
				}
				return v
			},
			peak: base + amp,
		}
	}
}

// burstSeg is one MMPP dwell episode.
type burstSeg struct {
	start  float64
	factor float64
}

type burstPath struct {
	segs []burstSeg
	peak float64 // max factor over the path (1 when no burst spec)
}

// burstPath pregenerates the cohort's MMPP state path over
// [0, duration] from its own seeded stream, so the arrival thinning
// stream is independent of how many episodes the path has.
func (c *CohortSpec) burstPath(seed int64, index int, duration float64) burstPath {
	if c.Burst == nil {
		return burstPath{peak: 1}
	}
	b := c.Burst
	calm := 1.0
	if b.CalmFactor != nil {
		calm = *b.CalmFactor
	}
	rng := rand.New(rand.NewSource(subSeed(seed, index, streamBurst)))
	var segs []burstSeg
	t, inBurst := 0.0, false
	for t < duration {
		factor, mean := calm, b.MeanCalm
		if inBurst {
			factor, mean = b.Factor, b.MeanBurst
		}
		segs = append(segs, burstSeg{start: t, factor: factor})
		t += rng.ExpFloat64() * mean
		inBurst = !inBurst
	}
	peak := calm
	if b.Factor > peak {
		peak = b.Factor
	}
	return burstPath{segs: segs, peak: peak}
}

// drawer resolves the mix into a draw function over benchmark names.
// The spec is already validated.
func (m *MixSpec) drawer() func(*rand.Rand) string {
	switch {
	case m.Workload != "":
		w, err := Get(m.Workload)
		if err != nil {
			panic(err) // validated
		}
		pool := w.Benchmarks
		return func(rng *rand.Rand) string { return pool[rng.Intn(len(pool))] }
	case m.Random != nil:
		pool := RandomMix(m.Random.Seed, m.Random.Size).Benchmarks
		return func(rng *rand.Rand) string { return pool[rng.Intn(len(pool))] }
	default:
		names := make([]string, len(m.Apps))
		cum := make([]float64, len(m.Apps))
		total := 0.0
		for i, a := range m.Apps {
			names[i] = a.Name
			total += a.weight()
			cum[i] = total
		}
		return func(rng *rand.Rand) string {
			x := rng.Float64() * total
			for i, c := range cum {
				if x < c {
					return names[i]
				}
			}
			return names[len(names)-1]
		}
	}
}

// draw samples one size factor. The spec is already validated.
func (z *SizeSpec) draw(rng *rand.Rand) float64 {
	var f float64
	switch z.Dist {
	case "pareto":
		// Inverse-CDF: min/(1−U)^(1/α); 1−U ∈ (0,1] keeps f finite.
		f = z.minFactor() / math.Pow(1-rng.Float64(), 1/z.Alpha)
	default: // lognormal
		f = math.Exp(z.Mu + z.Sigma*rng.NormFloat64())
	}
	if z.Max > 0 && f > z.Max {
		f = z.Max
	}
	return f
}

// specCache builds and dedups per-arrival application specs: all
// arrivals sharing (benchmark, size factor) share one spec clone, so a
// million-arrival trace holds as many Spec values as it has distinct
// (app, size) pairs. The builder is the single code path trace replay
// reuses, which is what makes replayed arrivals reflect.DeepEqual the
// generated ones.
type specCache struct {
	scale uint64
	specs map[sizedKey]*appmodel.Spec
}

type sizedKey struct {
	name string
	bits uint64 // math.Float64bits of the size factor
}

func newSpecCache(scale uint64) *specCache {
	return &specCache{scale: scale, specs: map[sizedKey]*appmodel.Spec{}}
}

// get returns the (possibly cached) spec clone for a benchmark at a
// size factor, time-scaled by the cache's scale.
func (c *specCache) get(name string, factor float64) (*appmodel.Spec, error) {
	if !(factor > 0) || math.IsInf(factor, 0) {
		return nil, fmt.Errorf("workloads: size factor %v for %q is not a positive finite number", factor, name)
	}
	key := sizedKey{name: name, bits: math.Float64bits(factor)}
	if sp, ok := c.specs[key]; ok {
		return sp, nil
	}
	if _, err := profiles.Get(name); err != nil {
		return nil, err
	}
	sp := sizedSpec(scaledSpec(name, c.scale), factor)
	c.specs[key] = sp
	return sp, nil
}

// scaledSpec is the single-benchmark form of Workload.ScaledSpecs: the
// catalog spec with every phase duration divided by scale (the catalog
// pointer itself when scale ≤ 1).
func scaledSpec(name string, scale uint64) *appmodel.Spec {
	src := profiles.MustGet(name)
	if scale <= 1 {
		return src
	}
	cp := *src
	cp.Phases = append([]appmodel.PhaseSpec(nil), src.Phases...)
	for pi := range cp.Phases {
		if d := cp.Phases[pi].DurationInsns; d > 0 {
			nd := d / scale
			if nd == 0 {
				nd = 1
			}
			cp.Phases[pi].DurationInsns = nd
		}
	}
	return &cp
}

// sizedSpec stretches a spec by a job-size factor: phase durations and
// the run quota (via SizeFactor, applied by sim.RunQuota) scale
// together, so the job is the same program running factor× longer. A
// unit factor returns base unchanged.
func sizedSpec(base *appmodel.Spec, factor float64) *appmodel.Spec {
	if factor == 1 {
		return base
	}
	cp := *base
	cp.Phases = append([]appmodel.PhaseSpec(nil), base.Phases...)
	for pi := range cp.Phases {
		if d := cp.Phases[pi].DurationInsns; d > 0 {
			nd := uint64(math.Round(float64(d) * factor))
			if nd == 0 {
				nd = 1
			}
			cp.Phases[pi].DurationInsns = nd
		}
	}
	cp.SizeFactor = factor
	return &cp
}
