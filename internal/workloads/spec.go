package workloads

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/faircache/lfoc/internal/profiles"
	"github.com/faircache/lfoc/internal/yamlite"
)

// SpecVersion is the workload-spec schema version this build reads and
// writes. Spec files carry it as "spec_version"; any other value is
// rejected with a *VersionError so old binaries fail loudly on new
// schemas instead of misreading them.
const SpecVersion = 1

// Spec is a declarative open-system workload scenario: who arrives
// (per-cohort application mixes), when (diurnal rate curves, optionally
// Markov-modulated into calm/burst episodes), and how big each job is
// (heavy-tailed size factors). A spec file is the whole experiment
// definition — Generate turns it into a concrete arrival trace as a
// pure seeded function of the spec, so every new spec file is a new
// experiment with zero new code, reproducible bit-for-bit.
type Spec struct {
	// SpecVersion must equal the package's SpecVersion (1).
	SpecVersion int `json:"spec_version"`
	// Name labels the generated scenario (default "spec").
	Name string `json:"name,omitempty"`
	// Seed is the base seed of every random stream the generator uses;
	// each cohort derives independent arrival/mix/size/burst substreams
	// from it. Identical (spec, scale) inputs yield identical traces.
	Seed int64 `json:"seed,omitempty"`
	// Duration bounds arrival generation: arrivals occur in
	// [0, Duration) simulated seconds.
	Duration float64 `json:"duration_seconds"`
	// Day is the diurnal cycle length rate curves repeat over
	// (piecewise periods wrap modulo Day; a sinusoid defaults its
	// period to Day). Zero means Duration — one cycle spanning the
	// whole experiment.
	Day float64 `json:"day_seconds,omitempty"`
	// Cohorts are independent arrival streams merged into one trace.
	Cohorts []CohortSpec `json:"cohorts"`
}

// CohortSpec is one independent arrival stream: an application mix, a
// rate profile, and optional burstiness and job-size modulation.
type CohortSpec struct {
	// Name labels the cohort in errors (default "cohort<i>").
	Name string `json:"name,omitempty"`
	// Mix chooses which application each arrival runs.
	Mix MixSpec `json:"mix"`
	// Rate shapes the arrival intensity over time.
	Rate RateSpec `json:"rate"`
	// Burst, when set, modulates Rate with a two-state Markov process
	// (MMPP): calm and burst episodes with exponential dwell times.
	Burst *BurstSpec `json:"burst,omitempty"`
	// Size, when set, draws a heavy-tailed per-job size factor scaling
	// the run's instruction quota (and the job's phase durations).
	Size *SizeSpec `json:"size,omitempty"`
}

// MixSpec selects the cohort's application distribution. Exactly one of
// Workload, Random or Apps must be set.
type MixSpec struct {
	// Workload draws uniformly from a Fig. 5 catalog mix by name
	// ("S1".."S21", "P1".."P15"); duplicates in the mix weight the draw
	// exactly as the closed methodology does.
	Workload string `json:"workload,omitempty"`
	// Random draws uniformly from a RandomMix(seed, size) mix.
	Random *RandomMixSpec `json:"random,omitempty"`
	// Apps draws from an explicit weighted benchmark list.
	Apps []WeightedApp `json:"apps,omitempty"`
}

// RandomMixSpec parameterizes a RandomMix draw pool.
type RandomMixSpec struct {
	Seed int64 `json:"seed"`
	Size int   `json:"size"`
}

// WeightedApp is one entry of an explicit application mix.
type WeightedApp struct {
	// Name is a catalog benchmark name (e.g. "lbm06").
	Name string `json:"name"`
	// Weight is the entry's relative draw weight (default 1; weights
	// need not sum to 1 — they are normalized — but must not all be
	// zero). Negative weights are rejected.
	Weight *float64 `json:"weight,omitempty"`
}

// RateSpec is a time-varying arrival intensity in arrivals per
// simulated second. Exactly one of Constant, Periods or Sinusoid must
// be set.
type RateSpec struct {
	// Constant is a flat rate (> 0).
	Constant float64 `json:"constant,omitempty"`
	// Periods is a piecewise-constant diurnal profile: each period
	// starts at its offset within the day and holds its rate until the
	// next period (the last one wraps to the first at the day
	// boundary). The first period must start at 0; starts are strictly
	// increasing and below the day length; rates are non-negative with
	// at least one positive.
	Periods []RatePeriod `json:"periods,omitempty"`
	// Sinusoid is a smooth diurnal profile:
	// rate(t) = base + amplitude·sin(2π·(t−phase)/period).
	Sinusoid *SinusoidSpec `json:"sinusoid,omitempty"`
}

// RatePeriod is one piece of a piecewise-constant rate profile.
type RatePeriod struct {
	// Start is the piece's offset within the day, in seconds.
	Start float64 `json:"start_seconds"`
	// Rate is the arrival intensity over the piece (≥ 0).
	Rate float64 `json:"rate"`
}

// SinusoidSpec is a sinusoidal rate curve.
type SinusoidSpec struct {
	// Base is the mean rate (> 0).
	Base float64 `json:"base"`
	// Amplitude is the swing around Base (0 ≤ amplitude ≤ base, so the
	// rate never goes negative).
	Amplitude float64 `json:"amplitude,omitempty"`
	// Period is the oscillation period in seconds (default: the spec's
	// day length).
	Period float64 `json:"period_seconds,omitempty"`
	// Phase shifts the curve right by this many seconds.
	Phase float64 `json:"phase_seconds,omitempty"`
}

// BurstSpec is a two-state Markov-modulated Poisson process (MMPP)
// overlay: the cohort alternates between a calm and a burst state with
// exponentially distributed dwell times, and the instantaneous rate is
// the diurnal rate times the current state's factor.
type BurstSpec struct {
	// Factor multiplies the rate during burst episodes (> 0, typically
	// well above 1).
	Factor float64 `json:"factor"`
	// CalmFactor multiplies the rate during calm episodes (default 1;
	// ≥ 0, so pure on/off bursting is expressible with 0).
	CalmFactor *float64 `json:"calm_factor,omitempty"`
	// MeanCalm is the mean calm-episode length in seconds (> 0).
	MeanCalm float64 `json:"mean_calm_seconds"`
	// MeanBurst is the mean burst-episode length in seconds (> 0).
	MeanBurst float64 `json:"mean_burst_seconds"`
}

// SizeSpec draws a heavy-tailed per-job size factor. The factor scales
// the job's per-run instruction quota and its phase durations together,
// so a factor-f job is the same program stretched f× (sim.RunQuota
// applies the quota side).
type SizeSpec struct {
	// Dist is "pareto" or "lognormal".
	Dist string `json:"dist"`
	// Alpha is the Pareto shape (> 0; smaller = heavier tail).
	Alpha float64 `json:"alpha,omitempty"`
	// Min is the Pareto scale — the minimum factor (default 1).
	Min float64 `json:"min_factor,omitempty"`
	// Mu is the lognormal location: exp(Mu) is the median factor.
	Mu float64 `json:"mu,omitempty"`
	// Sigma is the lognormal shape (≥ 0).
	Sigma float64 `json:"sigma,omitempty"`
	// Max caps the drawn factor (0 = uncapped).
	Max float64 `json:"max_factor,omitempty"`
}

// VersionError reports a spec or trace file written under a schema
// version this build does not understand.
type VersionError struct {
	// What is the artifact kind ("workload spec" or "arrival trace").
	What string
	// Got is the version the file declared; Want the one supported.
	Got, Want int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("workloads: %s version %d not supported (want %d)", e.What, e.Got, e.Want)
}

// ValidationError reports a semantically invalid spec field.
type ValidationError struct {
	// Field is the dotted path of the offending field, e.g.
	// "cohorts[1].rate.constant".
	Field string
	// Msg says what is wrong with it.
	Msg string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("workloads: spec field %s: %s", e.Field, e.Msg)
}

// ParseError wraps a syntax-level spec failure (malformed YAML/JSON,
// unknown fields) with its source context.
type ParseError struct {
	// Path is the source file ("" when parsing bytes directly).
	Path string
	// Err is the underlying decoder error.
	Err error
}

func (e *ParseError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("workloads: parsing spec: %v", e.Err)
	}
	return fmt.Sprintf("workloads: parsing spec %s: %v", e.Path, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

// LoadSpec reads, parses and validates a spec file. The format follows
// the extension (".json" = JSON, ".yaml"/".yml" = the YAML subset of
// internal/yamlite); any other extension is sniffed (a leading '{'
// means JSON).
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workloads: %w", err)
	}
	s, err := ParseSpec(data, filepath.Ext(path))
	if err != nil {
		if pe, ok := err.(*ParseError); ok {
			pe.Path = path
		}
		return nil, err
	}
	if s.Name == "" {
		base := filepath.Base(path)
		s.Name = strings.TrimSuffix(base, filepath.Ext(base))
	}
	return s, nil
}

// ParseSpec parses and validates spec bytes. ext selects the format
// (".json", ".yaml", ".yml", or "" to sniff); parsing is strict —
// unknown fields are a *ParseError, semantic problems a
// *ValidationError, and a schema-version mismatch a *VersionError.
func ParseSpec(data []byte, ext string) (*Spec, error) {
	var jsonBytes []byte
	switch strings.ToLower(ext) {
	case ".json":
		jsonBytes = data
	case ".yaml", ".yml":
		var err error
		jsonBytes, err = yamlToJSON(data)
		if err != nil {
			return nil, err
		}
	default:
		if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '{' {
			jsonBytes = data
		} else {
			var err error
			jsonBytes, err = yamlToJSON(data)
			if err != nil {
				return nil, err
			}
		}
	}
	dec := json.NewDecoder(bytes.NewReader(jsonBytes))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, &ParseError{Err: err}
	}
	if dec.More() {
		return nil, &ParseError{Err: fmt.Errorf("trailing content after the spec document")}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func yamlToJSON(data []byte) ([]byte, error) {
	tree, err := yamlite.Parse(data)
	if err != nil {
		return nil, &ParseError{Err: err}
	}
	if tree == nil {
		return nil, &ParseError{Err: fmt.Errorf("empty spec document")}
	}
	buf, err := yamlite.ToJSON(tree)
	if err != nil {
		return nil, &ParseError{Err: err}
	}
	return buf, nil
}

// Validate checks the spec's semantic constraints, returning a
// *VersionError or *ValidationError describing the first violation.
func (s *Spec) Validate() error {
	if s.SpecVersion != SpecVersion {
		return &VersionError{What: "workload spec", Got: s.SpecVersion, Want: SpecVersion}
	}
	if s.Duration <= 0 {
		return &ValidationError{"duration_seconds", fmt.Sprintf("must be positive, got %v", s.Duration)}
	}
	if s.Day < 0 {
		return &ValidationError{"day_seconds", fmt.Sprintf("must be non-negative, got %v", s.Day)}
	}
	if len(s.Cohorts) == 0 {
		return &ValidationError{"cohorts", "need at least one cohort"}
	}
	day := s.Day
	if day == 0 {
		day = s.Duration
	}
	for i := range s.Cohorts {
		if err := s.Cohorts[i].validate(fmt.Sprintf("cohorts[%d]", i), day); err != nil {
			return err
		}
	}
	return nil
}

// DisplayName returns the cohort label used in errors.
func (c *CohortSpec) label(path string) string {
	if c.Name != "" {
		return path + " (" + c.Name + ")"
	}
	return path
}

func (c *CohortSpec) validate(path string, day float64) error {
	if err := c.Mix.validate(c.label(path) + ".mix"); err != nil {
		return err
	}
	if err := c.Rate.validate(c.label(path)+".rate", day); err != nil {
		return err
	}
	if b := c.Burst; b != nil {
		p := c.label(path) + ".burst"
		if b.Factor <= 0 {
			return &ValidationError{p + ".factor", fmt.Sprintf("must be positive, got %v", b.Factor)}
		}
		if b.CalmFactor != nil && *b.CalmFactor < 0 {
			return &ValidationError{p + ".calm_factor", fmt.Sprintf("must be non-negative, got %v", *b.CalmFactor)}
		}
		if b.MeanCalm <= 0 {
			return &ValidationError{p + ".mean_calm_seconds", fmt.Sprintf("must be positive, got %v", b.MeanCalm)}
		}
		if b.MeanBurst <= 0 {
			return &ValidationError{p + ".mean_burst_seconds", fmt.Sprintf("must be positive, got %v", b.MeanBurst)}
		}
	}
	if z := c.Size; z != nil {
		p := c.label(path) + ".size"
		switch z.Dist {
		case "pareto":
			if z.Alpha <= 0 {
				return &ValidationError{p + ".alpha", fmt.Sprintf("pareto shape must be positive, got %v", z.Alpha)}
			}
			if z.Min < 0 {
				return &ValidationError{p + ".min_factor", fmt.Sprintf("must be non-negative, got %v", z.Min)}
			}
			if z.Mu != 0 || z.Sigma != 0 {
				return &ValidationError{p, "mu/sigma are lognormal fields (dist is pareto)"}
			}
		case "lognormal":
			if z.Sigma < 0 {
				return &ValidationError{p + ".sigma", fmt.Sprintf("must be non-negative, got %v", z.Sigma)}
			}
			if z.Alpha != 0 || z.Min != 0 {
				return &ValidationError{p, "alpha/min_factor are pareto fields (dist is lognormal)"}
			}
		case "":
			return &ValidationError{p + ".dist", "required (pareto or lognormal)"}
		default:
			return &ValidationError{p + ".dist", fmt.Sprintf("unknown distribution %q (want pareto or lognormal)", z.Dist)}
		}
		if z.Max < 0 {
			return &ValidationError{p + ".max_factor", fmt.Sprintf("must be non-negative, got %v", z.Max)}
		}
		if z.Max > 0 && z.Dist == "pareto" && z.Max < z.minFactor() {
			return &ValidationError{p + ".max_factor", fmt.Sprintf("cap %v below the minimum factor %v", z.Max, z.minFactor())}
		}
	}
	return nil
}

// minFactor resolves the Pareto minimum (scale) with its default.
func (z *SizeSpec) minFactor() float64 {
	if z.Min == 0 {
		return 1
	}
	return z.Min
}

func (m *MixSpec) validate(path string) error {
	set := 0
	if m.Workload != "" {
		set++
	}
	if m.Random != nil {
		set++
	}
	if m.Apps != nil {
		set++
	}
	if set != 1 {
		return &ValidationError{path, "exactly one of workload, random or apps must be set"}
	}
	switch {
	case m.Workload != "":
		if _, err := Get(m.Workload); err != nil {
			return &ValidationError{path + ".workload", fmt.Sprintf("unknown workload %q", m.Workload)}
		}
	case m.Random != nil:
		if m.Random.Size < 2 {
			return &ValidationError{path + ".random.size", fmt.Sprintf("need at least 2 applications, got %d", m.Random.Size)}
		}
	default:
		if len(m.Apps) == 0 {
			return &ValidationError{path + ".apps", "must not be empty"}
		}
		total := 0.0
		for i, a := range m.Apps {
			ep := fmt.Sprintf("%s.apps[%d]", path, i)
			if a.Name == "" {
				return &ValidationError{ep + ".name", "required"}
			}
			if _, err := profiles.Get(a.Name); err != nil {
				return &ValidationError{ep + ".name", fmt.Sprintf("unknown benchmark %q", a.Name)}
			}
			w := a.weight()
			if w < 0 {
				return &ValidationError{ep + ".weight", fmt.Sprintf("must be non-negative, got %v", w)}
			}
			total += w
		}
		if total <= 0 {
			return &ValidationError{path + ".apps", "weights sum to zero (a zero-weight cohort can never draw an application)"}
		}
	}
	return nil
}

// weight resolves the entry weight with its default of 1.
func (a *WeightedApp) weight() float64 {
	if a.Weight == nil {
		return 1
	}
	return *a.Weight
}

func (r *RateSpec) validate(path string, day float64) error {
	set := 0
	if r.Constant != 0 {
		set++
	}
	if r.Periods != nil {
		set++
	}
	if r.Sinusoid != nil {
		set++
	}
	if set != 1 {
		return &ValidationError{path, "exactly one of constant, periods or sinusoid must be set"}
	}
	switch {
	case r.Constant != 0:
		if r.Constant < 0 {
			return &ValidationError{path + ".constant", fmt.Sprintf("rate must be positive, got %v", r.Constant)}
		}
	case r.Periods != nil:
		if len(r.Periods) == 0 {
			return &ValidationError{path + ".periods", "must not be empty"}
		}
		anyPositive := false
		for i, p := range r.Periods {
			pp := fmt.Sprintf("%s.periods[%d]", path, i)
			if p.Rate < 0 {
				return &ValidationError{pp + ".rate", fmt.Sprintf("rate must be non-negative, got %v", p.Rate)}
			}
			if p.Rate > 0 {
				anyPositive = true
			}
			switch {
			case i == 0 && p.Start != 0:
				return &ValidationError{pp + ".start_seconds", fmt.Sprintf("the first period must start at 0, got %v", p.Start)}
			case i > 0 && p.Start <= r.Periods[i-1].Start:
				return &ValidationError{pp + ".start_seconds", fmt.Sprintf("starts must be strictly increasing (%v after %v)", p.Start, r.Periods[i-1].Start)}
			case p.Start >= day:
				return &ValidationError{pp + ".start_seconds", fmt.Sprintf("start %v beyond the day length %v", p.Start, day)}
			}
		}
		if !anyPositive {
			return &ValidationError{path + ".periods", "every period has rate 0 — the cohort would never arrive"}
		}
	default:
		sn := r.Sinusoid
		sp := path + ".sinusoid"
		if sn.Base <= 0 {
			return &ValidationError{sp + ".base", fmt.Sprintf("must be positive, got %v", sn.Base)}
		}
		if sn.Amplitude < 0 {
			return &ValidationError{sp + ".amplitude", fmt.Sprintf("must be non-negative, got %v", sn.Amplitude)}
		}
		if sn.Amplitude > sn.Base {
			return &ValidationError{sp + ".amplitude", fmt.Sprintf("amplitude %v above base %v would make the rate negative", sn.Amplitude, sn.Base)}
		}
		if sn.Period < 0 {
			return &ValidationError{sp + ".period_seconds", fmt.Sprintf("must be non-negative, got %v", sn.Period)}
		}
	}
	return nil
}
