// Package workloads defines what runs in an experiment: the paper's
// Fig. 5 mix catalog, random mixes, and a declarative workload spec
// engine that expands scenario descriptions into deterministic
// open-system arrival traces.
//
// # Fig. 5 mixes
//
// The catalog reproduces the paper's experimental workloads: 36
// randomly generated multiprogram mixes of SPEC benchmarks — 21 "S"
// workloads whose applications keep a stable behaviour class for the
// whole execution (§5.1), and 15 "P" workloads that include programs
// with distinct long-term phases such as xz, astar, mcf and xalancbmk
// (§5.2), in sizes 8, 12 and 16 to study the ways-to-applications
// ratio. Generation is deterministic (seeded per workload index) and
// follows the visible constraints of Fig. 5: at most two instances of
// a benchmark per mix, and every mix contains both streaming and
// cache-sensitive programs. Get and RandomMix are the entry points;
// Workload.ScaledSpecs resolves a mix to time-scaled application
// models.
//
// # Workload specs
//
// A Spec is a versioned (SpecVersion) declarative scenario: one or
// more cohorts, each with an application mix (a catalog workload, a
// random pool, or an explicit weighted benchmark list), a diurnal
// arrival-rate shape (constant, piecewise periods, or sinusoid),
// optional MMPP calm/burst modulation, and optional heavy-tailed
// (Pareto or lognormal) job-size factors. LoadSpec and ParseSpec read
// YAML or JSON strictly (unknown fields are errors) and validate;
// violations surface as *VersionError, *ParseError and
// *ValidationError (match with errors.As).
//
// Spec.Generate expands a spec into a merged, time-sorted arrival
// stream as a pure function of (spec, scale): every random stream is
// derived from the spec seed with per-cohort substreams, arrival times
// come from Lewis–Shedler thinning of the non-homogeneous rate, and
// the result is byte-identical across runs, machines and GOMAXPROCS.
// Spec.Scenario wraps the same arrivals as a *scenario.Open ready for
// sim.RunOpen or cluster.Run.
//
// # Arrival traces
//
// Trace, WriteTraceFile and ReadTraceFile implement a versioned text
// format ("lfoc-trace v1") for recording generated arrival streams and
// replaying them bit-exactly: the writer verifies every arrival is
// exactly representable before committing the file, so replayed
// arrivals are reflect.DeepEqual to the recorded ones. Record once,
// then compare placements or policies on the identical stream.
//
// docs/workload-spec.md holds the full field reference and cookbook.
package workloads

import (
	"fmt"
	"math/rand"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/profiles"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

// Kind distinguishes stable-class (S) from phased (P) workloads.
type Kind int

const (
	// KindS marks workloads whose apps hold one behaviour class.
	KindS Kind = iota
	// KindP marks workloads including phased applications.
	KindP
)

func (k Kind) String() string {
	if k == KindP {
		return "P"
	}
	return "S"
}

// Workload is one experimental mix.
type Workload struct {
	Name       string
	Kind       Kind
	Size       int
	Benchmarks []string // catalog names, len == Size
}

// Specs resolves the workload's benchmark names to application models.
func (w Workload) Specs() []*appmodel.Spec {
	out := make([]*appmodel.Spec, len(w.Benchmarks))
	for i, n := range w.Benchmarks {
		out[i] = profiles.MustGet(n)
	}
	return out
}

// ScaledSpecs returns copies of the workload's specs with every phase
// duration divided by scale, so experiments can shrink simulated time
// while preserving the ratio of phase lengths to run lengths. Endless
// phases stay endless. scale must be ≥ 1.
func (w Workload) ScaledSpecs(scale uint64) []*appmodel.Spec {
	out := make([]*appmodel.Spec, len(w.Benchmarks))
	for i, n := range w.Benchmarks {
		out[i] = scaledSpec(n, scale)
	}
	return out
}

// sizes follows the paper: equal thirds of 8-, 12- and 16-app mixes.
func sizeFor(index, total int) int {
	third := total / 3
	switch {
	case index < third:
		return 8
	case index < 2*third:
		return 12
	default:
		return 16
	}
}

// generate builds one mix deterministically.
func generate(kind Kind, index, size int) Workload {
	seed := int64(1000*int(kind+1) + index)
	rng := rand.New(rand.NewSource(seed))

	streaming := profiles.ByClass(appmodel.ClassStreaming)
	sensitive := profiles.ByClass(appmodel.ClassSensitive)
	light := profiles.ByClass(appmodel.ClassLight)
	phased := profiles.Phased()

	counts := map[string]int{}
	var picks []string
	add := func(name string) bool {
		if counts[name] >= 2 || len(picks) >= size {
			return false
		}
		counts[name]++
		picks = append(picks, name)
		return true
	}
	pickFrom := func(pool []string) {
		for tries := 0; tries < 100; tries++ {
			if add(pool[rng.Intn(len(pool))]) {
				return
			}
		}
	}

	if kind == KindP {
		// Phased programs are the point of the P mixes.
		pickFrom(phased)
		pickFrom(phased)
		pickFrom(phased)
	} else {
		// S mixes use only stable-class apps.
		isPhased := map[string]bool{}
		for _, p := range phased {
			isPhased[p] = true
		}
		filter := func(pool []string) []string {
			var out []string
			for _, n := range pool {
				if !isPhased[n] {
					out = append(out, n)
				}
			}
			return out
		}
		streaming = filter(streaming)
		sensitive = filter(sensitive)
		light = filter(light)
	}
	// Every mix gets streaming and sensitive representation.
	pickFrom(streaming)
	pickFrom(streaming)
	pickFrom(sensitive)
	pickFrom(sensitive)

	all := append(append(append([]string{}, streaming...), sensitive...), light...)
	if kind == KindP {
		all = append(all, phased...)
	}
	for len(picks) < size {
		pickFrom(all)
	}
	return Workload{
		Name:       fmt.Sprintf("%s%d", kind, index+1),
		Kind:       kind,
		Size:       size,
		Benchmarks: picks,
	}
}

// SWorkloads returns S1..S21.
func SWorkloads() []Workload {
	out := make([]Workload, 21)
	for i := range out {
		out[i] = generate(KindS, i, sizeFor(i, 21))
	}
	return out
}

// PWorkloads returns P1..P15.
func PWorkloads() []Workload {
	out := make([]Workload, 15)
	for i := range out {
		out[i] = generate(KindP, i, sizeFor(i, 15))
	}
	return out
}

// All returns the 36 workloads of Fig. 5 (S1..S21 then P1..P15).
func All() []Workload {
	return append(SWorkloads(), PWorkloads()...)
}

// Get looks a workload up by name (e.g. "S3", "P11").
func Get(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Dynamic returns the 24 mixes of the §5.2 dynamic-policy study:
// P1–P5, S1–S3, P6–P10, S8–S10, P11–P15, S15–S17 (the x-axis of Fig. 7).
func Dynamic() []Workload {
	names := []string{
		"P1", "P2", "P3", "P4", "P5", "S1", "S2", "S3",
		"P6", "P7", "P8", "P9", "P10", "S8", "S9", "S10",
		"P11", "P12", "P13", "P14", "P15", "S15", "S16", "S17",
	}
	out := make([]Workload, 0, len(names))
	for _, n := range names {
		w, err := Get(n)
		if err != nil {
			panic(err)
		}
		out = append(out, w)
	}
	return out
}

// OpenScenario turns the mix into an open-system workload: arrivals
// follow a seeded Poisson process of the given rate (arrivals per
// simulated second) over [0, window) seconds, each arrival drawing its
// application uniformly from the mix (duplicates in the mix weight the
// draw, as in the closed methodology). scale applies the usual
// time-scale division to the specs.
func (w Workload) OpenScenario(rate, window float64, seed int64, scale uint64) (*scenario.Open, error) {
	name := fmt.Sprintf("%s-poisson(%g/s)", w.Name, rate)
	return scenario.NewPoisson(name, w.ScaledSpecs(scale), rate, window, seed)
}

// UniformScenario is the deterministic counterpart of OpenScenario: one
// arrival every interval seconds, count arrivals total, cycling through
// the mix in order. Useful for load sweeps that must not confound rate
// with trace randomness.
func (w Workload) UniformScenario(interval float64, count int, scale uint64) (*scenario.Open, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("workloads: arrival interval must be positive, got %v", interval)
	}
	if count <= 0 {
		return nil, fmt.Errorf("workloads: arrival count must be positive, got %d", count)
	}
	specs := w.ScaledSpecs(scale)
	arrivals := make([]scenario.Arrival, count)
	for i := range arrivals {
		arrivals[i] = scenario.Arrival{Time: float64(i) * interval, Spec: specs[i%len(specs)]}
	}
	name := fmt.Sprintf("%s-uniform(%gs)", w.Name, interval)
	return scenario.NewTrace(name, nil, arrivals)
}

// SplitArrivals partitions a trace across machines by an explicit
// per-arrival assignment (assignment[i] is arrival i's machine). Each
// sub-trace preserves the original arrival order, so replaying machine
// m's sub-trace through a single-machine open run reproduces exactly
// what machine m executed inside a cluster run — the machine-
// independence property the cluster tests pin.
func SplitArrivals(arrivals []scenario.Arrival, assignment []int, machines int) ([][]scenario.Arrival, error) {
	if machines < 1 {
		return nil, fmt.Errorf("workloads: need at least one machine, got %d", machines)
	}
	if len(assignment) != len(arrivals) {
		return nil, fmt.Errorf("workloads: %d assignments for %d arrivals", len(assignment), len(arrivals))
	}
	out := make([][]scenario.Arrival, machines)
	for i, arr := range arrivals {
		m := assignment[i]
		if m < 0 || m >= machines {
			return nil, fmt.Errorf("workloads: arrival %d assigned to machine %d of %d", i, m, machines)
		}
		out[m] = append(out[m], arr)
	}
	return out, nil
}

// SplitRoundRobin partitions a trace round-robin across machines — the
// static counterpart of the cluster's RoundRobin placement, useful for
// building per-machine scenarios without running a cluster.
func SplitRoundRobin(arrivals []scenario.Arrival, machines int) ([][]scenario.Arrival, error) {
	if machines < 1 {
		return nil, fmt.Errorf("workloads: need at least one machine, got %d", machines)
	}
	assignment := make([]int, len(arrivals))
	for i := range assignment {
		assignment[i] = i % machines
	}
	return SplitArrivals(arrivals, assignment, machines)
}

// RandomMix draws a size-app mix (max two instances per benchmark, at
// least one streaming and one sensitive app) from the whole catalog —
// used by the Fig. 2/3 optimal-solution studies.
func RandomMix(seed int64, size int) Workload {
	rng := rand.New(rand.NewSource(seed))
	streaming := profiles.ByClass(appmodel.ClassStreaming)
	sensitive := profiles.ByClass(appmodel.ClassSensitive)
	names := profiles.Names()
	counts := map[string]int{}
	var picks []string
	add := func(name string) bool {
		if counts[name] >= 2 || len(picks) >= size {
			return false
		}
		counts[name]++
		picks = append(picks, name)
		return true
	}
	add(streaming[rng.Intn(len(streaming))])
	add(sensitive[rng.Intn(len(sensitive))])
	for len(picks) < size {
		add(names[rng.Intn(len(names))])
	}
	return Workload{
		Name:       fmt.Sprintf("R%d-%d", seed, size),
		Kind:       KindS,
		Size:       size,
		Benchmarks: picks,
	}
}
