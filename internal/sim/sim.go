// Package sim is the execution substrate that replaces the paper's
// Linux + Skylake testbed: a deterministic discrete-time simulator that
// co-runs synthetic applications under a cache-management policy and
// reproduces the §5 measurement methodology.
//
// Methodology (faithful to §5): all applications start simultaneously;
// each runs a fixed number of instructions per "run" and is restarted
// immediately upon completion; the experiment ends when every application
// has completed at least RunsTarget (3) runs — i.e. when the longest
// application completes three times. Per-application completion time is
// the geometric mean over its completed runs; slowdown divides it by the
// analytically-computed alone completion time (full LLC, unloaded
// memory); unfairness and STP follow Eqs. (3) and (4).
//
// Mechanics: time advances in fixed ticks (PolicyPeriod/TicksPerPeriod).
// Application progress per tick comes from the internal/sharing
// contention model, re-evaluated only when the CAT configuration or some
// application's phase changes. Hardware counters accumulate exactly the
// quantities the policies read (instructions, cycles, LLC misses,
// STALLS_L2_MISS, CMT occupancy), and counter windows are delivered to
// the policy at its requested instruction cadence — 100M instructions in
// normal mode, 10M during LFOC sampling episodes, exactly as in §5.2.
// One deliberate simplification: a restarted program keeps its monitoring
// identity (class and history) instead of appearing as a brand-new
// process; behaviour-wise the policy would re-learn the same class within
// a few windows.
package sim

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/cat"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/metrics"
	"github.com/faircache/lfoc/internal/plan"
	"github.com/faircache/lfoc/internal/pmc"
	"github.com/faircache/lfoc/internal/sharing"
)

// Dynamic is the policy interface the simulator drives. core.Controller
// (LFOC), policy.DunnDynamic and policy.StockDynamic implement it.
type Dynamic interface {
	AddApp(id int) error
	WindowInsns(id int) uint64
	OnWindow(id int, w pmc.Sample) bool
	Reconfigure() plan.Plan
	Assignment() (map[int]cat.WayMask, error)
}

// Config parameterizes a simulation.
type Config struct {
	Plat *machine.Platform
	// TargetInsns is the per-run instruction quota (150G in the paper;
	// experiments may scale it down together with the policy cadences).
	TargetInsns uint64
	// RunsTarget is the number of completed runs every app must reach
	// before the experiment stops (3 in the paper).
	RunsTarget int
	// PolicyPeriod is the partitioner activation period (500ms).
	PolicyPeriod time.Duration
	// TicksPerPeriod sets the simulation tick: PolicyPeriod/this
	// (default 250).
	TicksPerPeriod int
	// MaxSimTime aborts runaway experiments (default 1 hour of
	// simulated time).
	MaxSimTime time.Duration

	// noEquilCache disables the equilibrium memoization (testing knob:
	// the memoized and direct paths must agree exactly).
	noEquilCache bool
}

// Validate applies defaults and checks consistency.
func (c *Config) Validate() error {
	if c.Plat == nil {
		return fmt.Errorf("sim: config without platform")
	}
	if c.TargetInsns == 0 {
		return fmt.Errorf("sim: TargetInsns must be positive")
	}
	if c.RunsTarget <= 0 {
		c.RunsTarget = 3
	}
	if c.PolicyPeriod <= 0 {
		c.PolicyPeriod = 500 * time.Millisecond
	}
	if c.TicksPerPeriod <= 0 {
		c.TicksPerPeriod = 250
	}
	if c.MaxSimTime <= 0 {
		c.MaxSimTime = time.Hour
	}
	return nil
}

// Result carries everything the experiments report.
type Result struct {
	// RunTimes[i] holds app i's completed run times in seconds.
	RunTimes [][]float64
	// CT[i] is the geometric-mean completion time of app i.
	CT []float64
	// AloneCT[i] is the analytic alone completion time.
	AloneCT []float64
	// Slowdowns[i] = CT[i]/AloneCT[i].
	Slowdowns []float64
	// Summary holds unfairness and STP.
	Summary metrics.Summary
	// Repartitions counts policy activations; SimSeconds is the
	// simulated duration.
	Repartitions int
	SimSeconds   float64
}

type simApp struct {
	id       int
	inst     *appmodel.Instance
	counter  pmc.Counter
	nextWin  uint64 // cumulative instruction threshold for next window
	runInsns uint64
	runStart float64
	runs     []float64
	// fractional accumulators (counters are integers, progress is not)
	fracInsns  float64
	fracCycles float64
	fracMiss   float64
	fracStall  float64
	perf       appmodel.Perf
	share      uint64
}

// RunDynamic co-runs the workload under a dynamic policy.
func RunDynamic(cfg Config, specs []*appmodel.Spec, pol Dynamic) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("sim: empty workload")
	}
	if len(specs) > cfg.Plat.Cores {
		return nil, fmt.Errorf("sim: %d apps exceed %d cores", len(specs), cfg.Plat.Cores)
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}

	n := len(specs)
	apps := make([]*simApp, n)
	for i, s := range specs {
		apps[i] = &simApp{id: i, inst: appmodel.NewInstance(s)}
		if err := pol.AddApp(i); err != nil {
			return nil, err
		}
		apps[i].nextWin = pol.WindowInsns(i)
	}

	model := sharing.NewModel(cfg.Plat)
	dt := cfg.PolicyPeriod.Seconds() / float64(cfg.TicksPerPeriod)
	freq := float64(cfg.Plat.FreqHz)

	masks := map[int]cat.WayMask{}
	perfDirty := true
	refreshMasks := func() error {
		m, err := pol.Assignment()
		if err != nil {
			return err
		}
		masks = m
		perfDirty = true
		return nil
	}
	pol.Reconfigure()
	if err := refreshMasks(); err != nil {
		return nil, err
	}

	// The equilibrium is a pure function of (per-app phase index, per-app
	// mask): restarted applications revisit identical configurations
	// constantly, and the policy cycles through a small set of plans, so
	// memoizing the fixed point pays for itself within a few runs. The
	// evaluator and the app/result slices are reused across refreshes.
	eval := sharing.NewEvaluator(model)
	shApps := make([]sharing.App, n)
	shRes := make([]sharing.Result, n)
	type equilState struct {
		perfs  []appmodel.Perf
		shares []uint64
	}
	const equilCacheMax = 4096
	equil := make(map[string]*equilState)
	keyBuf := make([]byte, 0, n*8)

	refreshPerf := func() {
		for i, a := range apps {
			mask := masks[a.id]
			if mask == 0 {
				mask = cat.FullMask(cfg.Plat.Ways)
			}
			shApps[i] = sharing.App{ID: a.id, Phase: a.inst.Phase(), Mask: mask}
		}
		perfDirty = false
		var key string
		if !cfg.noEquilCache {
			keyBuf = keyBuf[:0]
			for i, a := range apps {
				keyBuf = binary.LittleEndian.AppendUint32(keyBuf, uint32(a.inst.PhaseIndex()))
				keyBuf = binary.LittleEndian.AppendUint32(keyBuf, uint32(shApps[i].Mask))
			}
			key = string(keyBuf)
			if st, ok := equil[key]; ok {
				for i, a := range apps {
					a.perf = st.perfs[i]
					a.share = st.shares[i]
				}
				return
			}
		}
		shRes = eval.EvaluateInto(shRes, shApps)
		for i, a := range apps {
			a.perf = shRes[i].Perf
			a.share = shRes[i].ShareBytes
		}
		if !cfg.noEquilCache {
			if len(equil) >= equilCacheMax {
				clear(equil)
			}
			st := &equilState{perfs: make([]appmodel.Perf, n), shares: make([]uint64, n)}
			for i, a := range apps {
				st.perfs[i] = a.perf
				st.shares[i] = a.share
			}
			equil[key] = st
		}
	}

	simTime := 0.0
	nextPolicy := cfg.PolicyPeriod.Seconds()
	repartitions := 0
	maxTime := cfg.MaxSimTime.Seconds()

	done := func() bool {
		for _, a := range apps {
			if len(a.runs) < cfg.RunsTarget {
				return false
			}
		}
		return true
	}

	for !done() {
		if simTime > maxTime {
			return nil, fmt.Errorf("sim: exceeded MaxSimTime (%v) with runs %v", cfg.MaxSimTime, runCounts(apps))
		}
		if perfDirty {
			refreshPerf()
		}
		simTime += dt
		anyChange := false
		for _, a := range apps {
			// Progress.
			ips := a.perf.IPC * freq
			a.fracInsns += ips * dt
			insns := uint64(a.fracInsns)
			a.fracInsns -= float64(insns)
			if insns > 0 {
				if a.inst.Advance(insns) {
					perfDirty = true
				}
			}
			// Counters.
			a.fracCycles += freq * dt
			cycles := uint64(a.fracCycles)
			a.fracCycles -= float64(cycles)
			a.fracMiss += a.perf.MPKC / 1000 * freq * dt
			miss := uint64(a.fracMiss)
			a.fracMiss -= float64(miss)
			a.fracStall += a.perf.StallFrac * freq * dt
			stall := uint64(a.fracStall)
			a.fracStall -= float64(stall)
			a.counter.Add(pmc.Sample{
				Instructions:   insns,
				Cycles:         cycles,
				LLCMisses:      miss,
				LLCAccesses:    miss * 2,
				StallsL2Miss:   stall,
				OccupancyBytes: a.share,
			})
			// Window delivery.
			for a.counter.Total().Instructions >= a.nextWin {
				w := a.counter.ReadWindow()
				if pol.OnWindow(a.id, w) {
					anyChange = true
				}
				a.nextWin = a.counter.Total().Instructions + pol.WindowInsns(a.id)
			}
			// Run completion and restart.
			a.runInsns += insns
			for a.runInsns >= cfg.TargetInsns {
				a.runs = append(a.runs, simTime-a.runStart)
				a.runStart = simTime
				a.runInsns -= cfg.TargetInsns
				a.inst.Restart()
				perfDirty = true
			}
		}
		if anyChange {
			if err := refreshMasks(); err != nil {
				return nil, err
			}
		}
		if simTime >= nextPolicy {
			pol.Reconfigure()
			repartitions++
			nextPolicy += cfg.PolicyPeriod.Seconds()
			if err := refreshMasks(); err != nil {
				return nil, err
			}
		}
	}

	return buildResult(cfg, specs, apps, repartitions, simTime)
}

func runCounts(apps []*simApp) []int {
	out := make([]int, len(apps))
	for i, a := range apps {
		out[i] = len(a.runs)
	}
	return out
}

func buildResult(cfg Config, specs []*appmodel.Spec, apps []*simApp, repartitions int, simTime float64) (*Result, error) {
	n := len(apps)
	res := &Result{
		RunTimes:     make([][]float64, n),
		CT:           make([]float64, n),
		AloneCT:      make([]float64, n),
		Slowdowns:    make([]float64, n),
		Repartitions: repartitions,
		SimSeconds:   simTime,
	}
	for i, a := range apps {
		res.RunTimes[i] = append([]float64(nil), a.runs...)
		g, err := metrics.GeoMean(a.runs)
		if err != nil {
			return nil, fmt.Errorf("sim: app %d: %w", i, err)
		}
		res.CT[i] = g
		res.AloneCT[i] = AloneCompletionTime(specs[i], cfg.Plat, cfg.TargetInsns)
		sd, err := metrics.Slowdown(g, res.AloneCT[i])
		if err != nil {
			return nil, err
		}
		// Tick quantization can nudge a fast run fractionally below the
		// analytic alone time; slowdowns below 1 are clamped.
		res.Slowdowns[i] = math.Max(1, sd)
	}
	summary, err := metrics.Summarize(res.Slowdowns)
	if err != nil {
		return nil, err
	}
	res.Summary = summary
	return res, nil
}

// AloneCompletionTime integrates an application's phases running alone
// with the full LLC and unloaded memory until targetInsns retire.
func AloneCompletionTime(spec *appmodel.Spec, plat *machine.Platform, targetInsns uint64) float64 {
	inst := appmodel.NewInstance(spec)
	freq := float64(plat.FreqHz)
	llc := plat.LLCBytes()
	var t float64
	remaining := targetInsns
	for remaining > 0 {
		perf := appmodel.PhasePerf(inst.Phase(), plat, llc, 1)
		step := inst.InstructionsToPhaseEnd()
		if step == 0 || step > remaining {
			step = remaining
		}
		t += float64(step) / (perf.IPC * freq)
		inst.Advance(step)
		remaining -= step
	}
	return t
}

// FixedPlanPolicy adapts a static plan to the Dynamic interface: no
// monitoring, constant masks — the §5.1 static evaluation mode.
type FixedPlanPolicy struct {
	ways  int
	plan  plan.Plan
	masks map[int]cat.WayMask
}

// NewFixedPlanPolicy validates the plan against the workload size and
// precomputes its masks.
func NewFixedPlanPolicy(p plan.Plan, nApps, ways int) (*FixedPlanPolicy, error) {
	if err := p.Validate(nApps, ways); err != nil {
		return nil, err
	}
	am, err := p.AppMasks(nApps, ways)
	if err != nil {
		return nil, err
	}
	masks := make(map[int]cat.WayMask, nApps)
	for i, m := range am {
		masks[i] = m
	}
	return &FixedPlanPolicy{ways: ways, plan: p, masks: masks}, nil
}

// AddApp implements Dynamic.
func (f *FixedPlanPolicy) AddApp(id int) error {
	if _, ok := f.masks[id]; !ok {
		return fmt.Errorf("sim: app %d not covered by the fixed plan", id)
	}
	return nil
}

// WindowInsns implements Dynamic (a huge window: no monitoring needed).
func (f *FixedPlanPolicy) WindowInsns(int) uint64 { return math.MaxUint64 / 4 }

// OnWindow implements Dynamic.
func (f *FixedPlanPolicy) OnWindow(int, pmc.Sample) bool { return false }

// Reconfigure implements Dynamic.
func (f *FixedPlanPolicy) Reconfigure() plan.Plan { return f.plan }

// Assignment implements Dynamic.
func (f *FixedPlanPolicy) Assignment() (map[int]cat.WayMask, error) {
	out := make(map[int]cat.WayMask, len(f.masks))
	for k, v := range f.masks {
		out[k] = v
	}
	return out, nil
}

// RunStatic co-runs the workload under a fixed clustering plan.
func RunStatic(cfg Config, specs []*appmodel.Spec, p plan.Plan) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pol, err := NewFixedPlanPolicy(p, len(specs), cfg.Plat.Ways)
	if err != nil {
		return nil, err
	}
	return RunDynamic(cfg, specs, pol)
}
