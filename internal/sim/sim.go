// Package sim is the execution substrate that replaces the paper's
// Linux + Skylake testbed: a deterministic discrete-event simulator that
// co-runs synthetic applications under a cache-management policy.
//
// The package is split into a scenario-agnostic kernel (kernel.go) and
// a scenario layer (the internal/sim/scenario sub-package). The kernel
// integrates application progress under the internal/sharing contention
// model, accumulates exactly the hardware counters the policies read
// (instructions, cycles, LLC misses, STALLS_L2_MISS, CMT occupancy),
// delivers counter windows at each application's requested instruction
// cadence — 100M instructions in normal mode, 10M during LFOC sampling
// episodes, as in §5.2 — and activates the partitioner periodically.
// The scenario decides which applications exist, when they arrive, and
// what happens when one retires its per-run instruction quota.
//
// Closed methodology (faithful to §5, scenario.Closed, RunDynamic): all
// applications start simultaneously; each runs a fixed number of
// instructions per "run" and is restarted immediately upon completion;
// the experiment ends when every application has completed at least
// RunsTarget (3) runs. Per-application completion time is the geometric
// mean over its completed runs; slowdown divides it by the analytic
// alone completion time; unfairness and STP follow Eqs. (3) and (4).
// By default a restarted program keeps its monitoring identity (the
// paper's simplification); scenario.Closed.ResetIdentityOnRestart makes
// every restart look like an exit plus a fresh spawn instead, so the
// policy must re-learn the class.
//
// Open methodology (scenario.Open, RunOpen): applications arrive from a
// seeded Poisson process or an explicit trace, run their quota once and
// depart, freeing their core (a full machine queues arrivals FIFO).
// Because the population changes under the metrics, results are
// time-windowed series (metrics.WindowedSeries) plus per-application
// slowdowns at departure, not end-of-run scalars.
//
// Time advances in fixed ticks (PolicyPeriod/TicksPerPeriod); progress
// per tick comes from the contention model, re-evaluated (memoized)
// only when the CAT configuration, the population or some application's
// phase changes. Between state-changing events every rate is constant,
// so the kernel batches all whole ticks up to the earliest next event
// (arrival, counter window, run completion, phase boundary, policy
// activation, metrics window, horizon) into one event-horizon advance
// with bit-identical results — see DESIGN.md §2 "Time advancement".
package sim

import (
	"fmt"
	"math"
	"time"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/cat"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/metrics"
	"github.com/faircache/lfoc/internal/plan"
	"github.com/faircache/lfoc/internal/pmc"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

// Dynamic is the policy interface the simulator drives. core.Controller
// (LFOC), policy.DunnDynamic, policy.StockDynamic and
// policy.KPartDynaway implement it. Ids are monitoring identities: the
// kernel allocates a fresh id per admission (and per identity-reset
// restart), and RemoveApp retires it when the application departs —
// policies must release all per-app state there, or an open-system run
// leaks monitoring state and classes of service.
type Dynamic interface {
	AddApp(id int) error
	RemoveApp(id int)
	WindowInsns(id int) uint64
	OnWindow(id int, w pmc.Sample) bool
	Reconfigure() plan.Plan
	Assignment() (map[int]cat.WayMask, error)
}

// PassiveWindows is an optional Dynamic refinement the kernel's
// event-horizon fast path consults. A policy reporting true promises
// that its counter-window delivery is application-local:
//
//   - OnWindow always returns false (it never requests a mask refresh
//     between partitioner activations),
//   - WindowInsns is constant for an id over that id's lifetime, and
//   - neither OnWindow nor WindowInsns for one id depends on deliveries
//     made to other ids.
//
// Under that promise the kernel may deliver counter windows inside an
// event-horizon batch, per app instead of in global tick order —
// indistinguishable to a conforming policy — so a fleet of staggered
// windows no longer fragments the batch. Stock and Dunn qualify (they
// only record per-app samples between activations); LFOC and
// KPartDynaway do not (their sampling episodes reconfigure masks from
// OnWindow) and must not declare it.
type PassiveWindows interface {
	PassiveWindows() bool
}

// Config parameterizes a simulation.
type Config struct {
	Plat *machine.Platform
	// TargetInsns is the per-run instruction quota (150G in the paper;
	// experiments may scale it down together with the policy cadences).
	TargetInsns uint64
	// RunsTarget is the number of completed runs every app must reach
	// before a closed experiment stops (3 in the paper).
	RunsTarget int
	// PolicyPeriod is the partitioner activation period (500ms).
	PolicyPeriod time.Duration
	// TicksPerPeriod sets the simulation tick: PolicyPeriod/this
	// (default 250).
	TicksPerPeriod int
	// MaxSimTime aborts runaway experiments (default 1 hour of
	// simulated time).
	MaxSimTime time.Duration
	// MetricsWindow enables time-windowed metrics collection at the
	// given simulated-time granularity (0 = off for closed runs; open
	// runs default it to PolicyPeriod).
	MetricsWindow time.Duration
	// Cancel, when non-nil, is polled at tick-loop boundaries: when it
	// fires, the advance stops at the current deterministic coordinate
	// and returns ErrCanceled. The machine stays valid and resumable.
	Cancel *CancelFlag

	// noEquilCache disables the equilibrium memoization (testing knob:
	// the memoized and direct paths must agree exactly).
	noEquilCache bool

	// noEventHorizon forces the legacy per-tick reference path,
	// disabling the kernel's event-horizon batched advancement (testing
	// knob: the batched and per-tick paths must produce bit-identical
	// results, pinned by the randomized differential test).
	noEventHorizon bool
}

// Validate applies defaults and checks consistency.
func (c *Config) Validate() error {
	if c.Plat == nil {
		return fmt.Errorf("sim: config without platform")
	}
	if c.TargetInsns == 0 {
		return fmt.Errorf("sim: TargetInsns must be positive")
	}
	if c.RunsTarget <= 0 {
		c.RunsTarget = 3
	}
	if c.PolicyPeriod <= 0 {
		c.PolicyPeriod = 500 * time.Millisecond
	}
	if c.TicksPerPeriod <= 0 {
		c.TicksPerPeriod = 250
	}
	if c.MaxSimTime <= 0 {
		c.MaxSimTime = time.Hour
	}
	if c.MetricsWindow < 0 {
		return fmt.Errorf("sim: MetricsWindow must be non-negative")
	}
	return nil
}

// EffectiveMetricsWindow is the metric-window width an open-system run
// collects at: MetricsWindow, defaulting to the policy period (RunOpen
// and NewOpenMachine apply exactly this rule). The cluster layer
// validates fleet-wide width agreement against it.
func (c *Config) EffectiveMetricsWindow() time.Duration {
	if c.MetricsWindow > 0 {
		return c.MetricsWindow
	}
	return c.PolicyPeriod
}

// Result carries everything the closed-methodology experiments report.
type Result struct {
	// RunTimes[i] holds app i's completed run times in seconds.
	RunTimes [][]float64
	// CT[i] is the geometric-mean completion time of app i.
	CT []float64
	// AloneCT[i] is the analytic alone completion time.
	AloneCT []float64
	// Slowdowns[i] = CT[i]/AloneCT[i].
	Slowdowns []float64
	// Summary holds unfairness and STP.
	Summary metrics.Summary
	// Repartitions counts policy activations; SimSeconds is the
	// simulated duration.
	Repartitions int
	SimSeconds   float64
	// FinalMonIDs[i] is app i's monitoring identity at the end of the
	// run — equal to i unless the scenario resets identities on
	// restart; use it to query per-app policy state (classes,
	// resamples) after a run.
	FinalMonIDs []int
	// Series holds windowed metrics when Config.MetricsWindow was set
	// (nil otherwise).
	Series *metrics.WindowedSeries
}

// RunDynamic co-runs the workload under a dynamic policy with the
// paper's closed methodology (scenario.Closed with the configured
// RunsTarget).
func RunDynamic(cfg Config, specs []*appmodel.Spec, pol Dynamic) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return RunClosed(cfg, scenario.NewClosed(specs, cfg.RunsTarget), pol)
}

// RunClosed co-runs a closed scenario (every application present from
// time zero, restarting until done) under a dynamic policy.
func RunClosed(cfg Config, scn *scenario.Closed, pol Dynamic) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(scn.Specs) == 0 {
		return nil, fmt.Errorf("sim: empty workload")
	}
	if scn.RunsTarget <= 0 {
		// Default through a copy: the caller's scenario stays untouched.
		c := *scn
		c.RunsTarget = cfg.RunsTarget
		scn = &c
	}
	k, err := newKernel(cfg, scn, pol)
	if err != nil {
		return nil, err
	}
	if err := k.run(); err != nil {
		return nil, err
	}
	return buildResult(k)
}

func buildResult(k *kernel) (*Result, error) {
	n := len(k.apps)
	res := &Result{
		RunTimes:     make([][]float64, n),
		CT:           make([]float64, n),
		AloneCT:      make([]float64, n),
		Slowdowns:    make([]float64, n),
		Repartitions: k.repartitions,
		SimSeconds:   k.simTime,
		FinalMonIDs:  make([]int, n),
	}
	if k.collect {
		res.Series = &k.series
	}
	for i, a := range k.apps {
		res.RunTimes[i] = append([]float64(nil), a.runs...)
		res.FinalMonIDs[i] = a.monID
		g, err := metrics.GeoMean(a.runs)
		if err != nil {
			return nil, fmt.Errorf("sim: app %d: %w", i, err)
		}
		res.CT[i] = g
		res.AloneCT[i] = AloneCompletionTime(a.spec, k.cfg.Plat, a.quota)
		sd, err := metrics.Slowdown(g, res.AloneCT[i])
		if err != nil {
			return nil, err
		}
		// Tick quantization can nudge a fast run fractionally below the
		// analytic alone time; slowdowns below 1 are clamped.
		res.Slowdowns[i] = math.Max(1, sd)
	}
	summary, err := metrics.Summarize(res.Slowdowns)
	if err != nil {
		return nil, err
	}
	res.Summary = summary
	return res, nil
}

// RunQuota is the per-run instruction quota an application with the
// given spec runs under: Config.TargetInsns scaled by the spec's
// SizeFactor (rounded, minimum 1). A zero or unit factor returns
// targetInsns exactly, so workloads without per-job sizing are
// bit-identical to a build without the knob.
func RunQuota(targetInsns uint64, spec *appmodel.Spec) uint64 {
	f := spec.SizeFactor
	if f == 0 || f == 1 {
		return targetInsns
	}
	q := uint64(math.Round(float64(targetInsns) * f))
	if q == 0 {
		q = 1
	}
	return q
}

// AloneCompletionTime integrates an application's phases running alone
// with the full LLC and unloaded memory until targetInsns retire.
func AloneCompletionTime(spec *appmodel.Spec, plat *machine.Platform, targetInsns uint64) float64 {
	inst := appmodel.NewInstance(spec)
	freq := float64(plat.FreqHz)
	llc := plat.LLCBytes()
	var t float64
	remaining := targetInsns
	for remaining > 0 {
		perf := appmodel.PhasePerf(inst.Phase(), plat, llc, 1)
		step := inst.InstructionsToPhaseEnd()
		if step == 0 || step > remaining {
			step = remaining
		}
		t += float64(step) / (perf.IPC * freq)
		inst.Advance(step)
		remaining -= step
	}
	return t
}

// FixedPlanPolicy adapts a static plan to the Dynamic interface: no
// monitoring, constant masks — the §5.1 static evaluation mode.
type FixedPlanPolicy struct {
	ways  int
	plan  plan.Plan
	masks map[int]cat.WayMask
}

// NewFixedPlanPolicy validates the plan against the workload size and
// precomputes its masks.
func NewFixedPlanPolicy(p plan.Plan, nApps, ways int) (*FixedPlanPolicy, error) {
	if err := p.Validate(nApps, ways); err != nil {
		return nil, err
	}
	am, err := p.AppMasks(nApps, ways)
	if err != nil {
		return nil, err
	}
	masks := make(map[int]cat.WayMask, nApps)
	for i, m := range am {
		masks[i] = m
	}
	return &FixedPlanPolicy{ways: ways, plan: p, masks: masks}, nil
}

// AddApp implements Dynamic.
func (f *FixedPlanPolicy) AddApp(id int) error {
	if _, ok := f.masks[id]; !ok {
		return fmt.Errorf("sim: app %d not covered by the fixed plan", id)
	}
	return nil
}

// RemoveApp implements Dynamic: the plan is fixed, departures leave it
// untouched (departed ids simply stop being asked about).
func (f *FixedPlanPolicy) RemoveApp(int) {}

// WindowInsns implements Dynamic (a huge window: no monitoring needed).
func (f *FixedPlanPolicy) WindowInsns(int) uint64 { return math.MaxUint64 / 4 }

// OnWindow implements Dynamic.
func (f *FixedPlanPolicy) OnWindow(int, pmc.Sample) bool { return false }

// PassiveWindows implements the PassiveWindows refinement: a fixed plan
// ignores windows entirely.
func (f *FixedPlanPolicy) PassiveWindows() bool { return true }

// Reconfigure implements Dynamic.
func (f *FixedPlanPolicy) Reconfigure() plan.Plan { return f.plan }

// Assignment implements Dynamic.
func (f *FixedPlanPolicy) Assignment() (map[int]cat.WayMask, error) {
	out := make(map[int]cat.WayMask, len(f.masks))
	for k, v := range f.masks {
		out[k] = v
	}
	return out, nil
}

// RunStatic co-runs the workload under a fixed clustering plan.
func RunStatic(cfg Config, specs []*appmodel.Spec, p plan.Plan) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pol, err := NewFixedPlanPolicy(p, len(specs), cfg.Plat.Ways)
	if err != nil {
		return nil, err
	}
	return RunDynamic(cfg, specs, pol)
}
