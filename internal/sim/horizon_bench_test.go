package sim

// Benchmarks contrasting the event-horizon batched advancement with the
// legacy per-tick reference path at the default TicksPerPeriod=250 and
// the harness's scale-50 cadences — the measured speedups quoted in
// DESIGN.md §2 "Time advancement" come from these.

import (
	"fmt"
	"testing"
	"time"

	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/sim/scenario"
	"github.com/faircache/lfoc/internal/workloads"
)

func benchOpenConfig(legacy bool) Config {
	return Config{
		Plat:           machine.Skylake(),
		TargetInsns:    3_000_000_000,
		PolicyPeriod:   10 * time.Millisecond,
		TicksPerPeriod: 250,
		noEventHorizon: legacy,
	}
}

// BenchmarkKernelOpenChurn measures an open-churn run (Poisson
// arrivals, LFOC) on both advancement paths.
func BenchmarkKernelOpenChurn(b *testing.B) {
	pool := specsOf("xalancbmk06", "lbm06", "povray06", "soplex06", "omnetpp06")
	for _, mode := range []string{"horizon", "legacy"} {
		b.Run(mode, func(b *testing.B) {
			cfg := benchOpenConfig(mode == "legacy")
			var ticks float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scn, err := scenario.NewPoisson("bench", pool, 2, 4, 7)
				if err != nil {
					b.Fatal(err)
				}
				res, err := RunOpen(cfg, scn, horizonPolicy(b, "lfoc", cfg.Plat))
				if err != nil {
					b.Fatal(err)
				}
				ticks = res.SimSeconds / cfg.PolicyPeriod.Seconds() * float64(cfg.TicksPerPeriod)
			}
			b.ReportMetric(ticks*float64(b.N)/b.Elapsed().Seconds(), "ticks/sec")
		})
	}
}

// BenchmarkKernelClosed measures the paper's closed methodology on both
// advancement paths.
func BenchmarkKernelClosed(b *testing.B) {
	specs := specsOf("xalancbmk06", "lbm06", "povray06", "soplex06")
	for _, mode := range []string{"horizon", "legacy"} {
		b.Run(mode, func(b *testing.B) {
			cfg := benchOpenConfig(mode == "legacy")
			var ticks float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := RunDynamic(cfg, specs, horizonPolicy(b, "lfoc", cfg.Plat))
				if err != nil {
					b.Fatal(err)
				}
				ticks = res.SimSeconds / cfg.PolicyPeriod.Seconds() * float64(cfg.TicksPerPeriod)
			}
			b.ReportMetric(ticks*float64(b.N)/b.Elapsed().Seconds(), "ticks/sec")
		})
	}
}

// BenchmarkKernelChurnSweep measures the open-churn sweep cell set of
// harness.Churn — the S1 mix under seeded Poisson arrivals, each policy
// against the identical trace — on both advancement paths, at the
// default TicksPerPeriod=250 and the harness's scale-50 cadences. The
// DESIGN.md speedups quote these cells.
func BenchmarkKernelChurnSweep(b *testing.B) {
	w, err := workloads.Get("S1")
	if err != nil {
		b.Fatal(err)
	}
	for _, rate := range []float64{1, 4} {
		for _, polName := range []string{"stock", "dunn", "lfoc"} {
			for _, mode := range []string{"horizon", "legacy"} {
				b.Run(fmt.Sprintf("rate%g/%s/%s", rate, polName, mode), func(b *testing.B) {
					cfg := benchOpenConfig(mode == "legacy")
					var ticks float64
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						scn, err := w.OpenScenario(rate, 6, 7, 50)
						if err != nil {
							b.Fatal(err)
						}
						res, err := RunOpen(cfg, scn, horizonPolicy(b, polName, cfg.Plat))
						if err != nil {
							b.Fatal(err)
						}
						ticks = res.SimSeconds / cfg.PolicyPeriod.Seconds() * float64(cfg.TicksPerPeriod)
					}
					b.ReportMetric(ticks*float64(b.N)/b.Elapsed().Seconds(), "ticks/sec")
				})
			}
		}
	}
}
