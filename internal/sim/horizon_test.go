package sim

// Tests for the event-horizon fast path (advanceHorizon) and the
// two-generation equilibrium memo: the batched and legacy per-tick
// advancement must be bit-identical on every field of every result, for
// every scenario shape, machine shape and tick granularity, and cache
// eviction must never dump the equilibrium working set.

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/core"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

// horizonPolicy mirrors harness.NewDynamicPolicy without importing the
// harness (which would cycle back into this package), scaling the LFOC
// and Dunn window cadences like the harness does at scale 50.
func horizonPolicy(t testing.TB, name string, plat *machine.Platform) Dynamic {
	t.Helper()
	switch name {
	case "stock":
		return policy.NewStockDynamic(plat.Ways)
	case "dunn":
		d := policy.NewDunnDynamic(plat.Ways)
		d.SetWindow(2_000_000)
		return d
	case "lfoc":
		params := core.DefaultParams(plat.Ways)
		params.NormalWindowInsns = 2_000_000
		params.SamplingWindowInsns = 200_000
		ctrl, err := core.NewController(params, plat.WayBytes)
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	default:
		t.Fatalf("unknown policy %q", name)
		return nil
	}
}

// uniformTrace builds an explicit open trace: count arrivals every
// interval seconds, cycling through the pool.
func uniformTrace(t testing.TB, pool []*appmodel.Spec, interval float64, count int) *scenario.Open {
	t.Helper()
	arrivals := make([]scenario.Arrival, count)
	for i := range arrivals {
		arrivals[i] = scenario.Arrival{Time: float64(i) * interval, Spec: pool[i%len(pool)]}
	}
	scn, err := scenario.NewTrace("uniform", nil, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// TestEventHorizonDifferential is the randomized differential pin: the
// batched event-horizon path must reproduce the legacy per-tick path
// field-identically across seeds, arrival processes, machine shapes and
// tick granularities. Run under -race in CI.
func TestEventHorizonDifferential(t *testing.T) {
	pool := specsOf("xalancbmk06", "lbm06", "povray06", "soplex06", "omnetpp06")
	plats := []*machine.Platform{machine.Skylake(), machine.Small(7, 4)}
	policies := []string{"lfoc", "dunn", "stock"}
	ticksPerPeriod := []int{50, 250, 617}
	seeds := []int64{3, 11}

	caseIdx := 0
	for _, plat := range plats {
		for _, tpp := range ticksPerPeriod {
			for _, seed := range seeds {
				// Rotate the policy and arrival process with the case
				// index: every (plat, ticks) cell still sees at least one
				// of each without running the full cross product.
				polName := policies[caseIdx%len(policies)]
				poisson := caseIdx%2 == 0
				caseIdx++
				name := fmt.Sprintf("%s-t%d-seed%d-%s", plat.Name, tpp, seed, polName)
				t.Run(name, func(t *testing.T) {
					cfg := Config{
						Plat:           plat,
						TargetInsns:    300_000_000 + uint64(seed)*50_000_000,
						PolicyPeriod:   10 * time.Millisecond,
						TicksPerPeriod: tpp,
					}
					var scn *scenario.Open
					if poisson {
						var err error
						scn, err = scenario.NewPoisson("diff", pool, 6, 1.5, seed)
						if err != nil {
							t.Fatal(err)
						}
					} else {
						scn = uniformTrace(t, pool, 0.11, 10+int(seed))
					}
					run := func(legacy bool) *OpenResult {
						c := cfg
						c.noEventHorizon = legacy
						res, err := RunOpen(c, scn, horizonPolicy(t, polName, plat))
						if err != nil {
							t.Fatal(err)
						}
						return res
					}
					fast, legacy := run(false), run(true)
					if !reflect.DeepEqual(fast, legacy) {
						t.Errorf("batched and legacy open runs diverge:\nfast   %+v\nlegacy %+v", fast, legacy)
					}
				})
			}
		}
	}
}

// TestEventHorizonDifferentialClosed pins the closed methodology the
// same way, including the identity-reset restart flavour.
func TestEventHorizonDifferentialClosed(t *testing.T) {
	specs := specsOf("xalancbmk06", "lbm06", "povray06", "soplex06")
	for _, tpp := range []int{100, 250} {
		for _, reset := range []bool{false, true} {
			t.Run(fmt.Sprintf("ticks%d-reset%v", tpp, reset), func(t *testing.T) {
				cfg := testConfig()
				cfg.TargetInsns = 500_000_000
				cfg.PolicyPeriod = 10 * time.Millisecond
				cfg.TicksPerPeriod = tpp
				run := func(legacy bool) *Result {
					c := cfg
					c.noEventHorizon = legacy
					scn := scenario.NewClosed(specs, 3)
					scn.ResetIdentityOnRestart = reset
					res, err := RunClosed(c, scn, horizonPolicy(t, "lfoc", c.Plat))
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				fast, legacy := run(false), run(true)
				if !reflect.DeepEqual(fast, legacy) {
					t.Errorf("batched and legacy closed runs diverge:\nfast   %+v\nlegacy %+v", fast, legacy)
				}
			})
		}
	}
}

// TestEventHorizonPausePoints pins the cluster contract: stepping a
// machine through arbitrary AdvanceTo pause points with the fast path on
// must equal one uninterrupted batched run (the horizon must stop at the
// pause point, not batch across it).
func TestEventHorizonPausePoints(t *testing.T) {
	pool := specsOf("xalancbmk06", "lbm06", "povray06", "soplex06")
	scn, err := scenario.NewPoisson("pause", pool, 5, 1, 17)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Plat:         machine.Small(7, 4),
		TargetInsns:  400_000_000,
		PolicyPeriod: 10 * time.Millisecond,
	}
	whole, err := RunOpen(cfg, scn, horizonPolicy(t, "lfoc", cfg.Plat))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewOpenMachine(cfg, horizonPolicy(t, "lfoc", cfg.Plat), "pause", nil, scn.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	for i, arr := range scn.Arrivals() {
		// Irregular pause points: before some injections, advance to an
		// extra off-event time too.
		if i%3 == 1 {
			if err := m.AdvanceTo(arr.Time * 0.9); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.AdvanceTo(arr.Time); err != nil {
			t.Fatal(err)
		}
		if err := m.Inject(arr); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	stepped := m.Result()
	if !reflect.DeepEqual(whole, stepped) {
		t.Errorf("stepped machine diverges from uninterrupted run:\nwhole   %+v\nstepped %+v", whole, stepped)
	}
}

// equilStats runs an open churn scenario through a kernel with the
// given equilibrium-cache capacity and returns the result plus the
// cache hit rate.
func equilStats(t *testing.T, max int) (*OpenResult, float64) {
	t.Helper()
	pool := specsOf("xalancbmk06", "lbm06", "povray06", "soplex06")
	scn, err := scenario.NewPoisson("equil", pool, 6, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Plat:         machine.Small(7, 4),
		TargetInsns:  300_000_000,
		PolicyPeriod: 10 * time.Millisecond,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.MetricsWindow = cfg.EffectiveMetricsWindow()
	k, err := newKernel(cfg, scn, horizonPolicy(t, "lfoc", cfg.Plat))
	if err != nil {
		t.Fatal(err)
	}
	k.equilMax = max
	if err := k.run(); err != nil {
		t.Fatal(err)
	}
	if k.equilHits+k.equilMiss == 0 {
		t.Fatal("no equilibrium lookups")
	}
	return buildOpenResult(k, scn.Name()), float64(k.equilHits) / float64(k.equilHits+k.equilMiss)
}

// TestEquilCacheRotationKeepsWorkingSet pins the two-generation
// eviction: even under absurd pressure (capacity 2, so the cache
// rotates on almost every distinct configuration) the current working
// set keeps hitting, because rotation moves the hot generation to the
// cold one and a touch promotes it back — unlike the wholesale clear
// this replaced, which dumped the live configuration and forced
// periodic full re-solve storms. Results must be identical regardless
// of eviction, since memoized fixed points are deterministic.
func TestEquilCacheRotationKeepsWorkingSet(t *testing.T) {
	unboundedRes, unboundedRate := equilStats(t, 1<<30)
	pressuredRes, pressuredRate := equilStats(t, 2)
	if !reflect.DeepEqual(unboundedRes, pressuredRes) {
		t.Error("eviction changed simulation results")
	}
	if unboundedRate < 0.5 {
		t.Errorf("churn run should be memo-friendly, hit rate %.3f", unboundedRate)
	}
	if pressuredRate < unboundedRate-0.03 {
		t.Errorf("eviction dumped the working set: hit rate %.3f under pressure vs %.3f unbounded",
			pressuredRate, unboundedRate)
	}
}

// TestCarryBatchMatchesFloatTicks is the focused exactness pin for the
// integer carry advancement (carryGrid/carryRun/carryBatch): for random
// steps across magnitudes — including sub-1 steps and binade edges that
// must take the float fallback — and random starting carries, a batched
// advance must reproduce the legacy per-tick float loop bit-for-bit:
// same total output, same final carry.
func TestCarryBatchMatchesFloatTicks(t *testing.T) {
	f := func(stepBits uint32, fracBits uint16, ticksRaw uint16, scale uint8) bool {
		// Steps spread over magnitudes 2^-8 .. 2^24-ish.
		step := float64(stepBits) / 256 * math.Pow(2, float64(scale%16))
		frac := float64(fracBits) / 65536 // [0,1)
		ticks := int(ticksRaw)%2000 + 1

		// Reference: the legacy per-tick float loop.
		refFrac := frac
		var refSum uint64
		for i := 0; i < ticks; i++ {
			refFrac += step
			v := uint64(refFrac)
			refFrac -= float64(v)
			refSum += v
		}

		g := carryGrid(step)
		gotFrac := frac
		gotSum := carryBatch(&gotFrac, step, &g, ticks)
		return gotSum == refSum && math.Float64bits(gotFrac) == math.Float64bits(refFrac)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestCarryGridEdges pins the fallback decisions: sub-1 steps, binade
// edges and huge steps must refuse the integer path rather than risk a
// rounding divergence.
func TestCarryGridEdges(t *testing.T) {
	for _, step := range []float64{0, 0.25, 0.999999, 1 << 52, math.Inf(1), math.NaN()} {
		if g := carryGrid(step); g.ok {
			t.Errorf("step %v must take the float path", step)
		}
	}
	// ⌊step⌋+2 crossing the binade: step+1 could round past 2^17.
	if g := carryGrid(131071.5); g.ok {
		t.Error("binade-edge step must take the float path")
	}
	if g := carryGrid(80000.25); !g.ok || g.base != 80000 {
		t.Errorf("well-formed step rejected: %+v", g)
	}
}
