package sim

import (
	"fmt"

	"github.com/faircache/lfoc/internal/appmodel"
)

// Resident is one application lifted out of a machine by a lifecycle
// extraction — the unit of migration between cluster machines. It
// carries the complete progress coordinate (instructions retired this
// run, phase position, accumulated alone-clock) plus the original
// arrival/admission times, so an application injected elsewhere resumes
// exactly where it stopped and its end-of-life slowdown and wait span
// both machines.
//
// Monitoring state deliberately does NOT migrate: hardware counters and
// the partitioning policy's learned class live on the source machine's
// resctrl-style state, so the destination sees a fresh process and
// re-learns the class — exactly what a real migration looks like to a
// per-machine LFOC.
type Resident struct {
	Spec *appmodel.Spec
	// Attempts counts lifecycle placements so far (scenario.Arrival.Tag):
	// 0 for an app on its first machine, incremented by the cluster layer
	// on every failure-driven requeue.
	Attempts int
	// ArrivedAt is the original trace arrival time; AdmittedAt the
	// original admission (negative if the app was still queued); both are
	// preserved across migrations so waits and slowdowns stay end-to-end.
	ArrivedAt  float64
	AdmittedAt float64
	// Queued marks an application that held no core yet (admission queue
	// or undelivered arrival): it has no progress to preserve and can
	// only be requeued, never migrated live.
	Queued bool
	// Progress coordinate (zero for queued residents).
	RunInsns     uint64
	PhaseIndex   int
	IntoPhase    uint64
	AloneSeconds float64
	// RunStartAt is when the current run's quota started counting (the
	// cluster clock is global, so run durations span machines).
	RunStartAt float64
}

// extractResidents lifts every application out of the kernel: actives
// in slot order (marked evicted — they neither departed nor remain),
// then the admission queue FIFO, then undelivered arrivals in time
// order. The kernel is left empty; the caller is expected to halt it.
func (k *kernel) extractResidents(dst []Resident) []Resident {
	for _, a := range k.actives {
		if !a.active {
			continue
		}
		dst = append(dst, Resident{
			Spec:         a.spec,
			Attempts:     a.tag,
			ArrivedAt:    a.arrivedAt,
			AdmittedAt:   a.admittedAt,
			RunInsns:     a.runInsns,
			PhaseIndex:   a.inst.PhaseIndex(),
			IntoPhase:    a.inst.IntoPhase(),
			AloneSeconds: a.aloneT,
			RunStartAt:   a.runStart,
		})
		a.active = false
		a.evicted = true
		k.nActive--
		k.activesDirty = true
		k.pol.RemoveApp(a.monID)
	}
	for _, arr := range k.waitQ {
		dst = append(dst, Resident{
			Spec:       arr.Spec,
			Attempts:   arr.Tag,
			ArrivedAt:  arr.Time,
			AdmittedAt: -1,
			Queued:     true,
		})
	}
	k.waitQ = nil
	for _, arr := range k.arrivals[k.arrIdx:] {
		dst = append(dst, Resident{
			Spec:       arr.Spec,
			Attempts:   arr.Tag,
			ArrivedAt:  arr.Time,
			AdmittedAt: -1,
			Queued:     true,
		})
	}
	k.arrivals = k.arrivals[:k.arrIdx]
	k.compactActives()
	k.perfDirty = true
	return dst
}

// injectResident admits a migrated application, restoring its progress
// coordinate. The policy sees a brand-new process (fresh monitoring id,
// zeroed counters) — monitoring state does not migrate, see Resident.
func (k *kernel) injectResident(r Resident) error {
	if r.Queued {
		return fmt.Errorf("sim: a queued resident has no progress to migrate — requeue it")
	}
	if k.nActive >= k.cfg.Plat.Cores {
		return fmt.Errorf("sim: no free core for migrated %s", r.Spec.Name)
	}
	inst := appmodel.NewInstance(r.Spec)
	if err := inst.SeekTo(r.PhaseIndex, r.IntoPhase, r.RunInsns); err != nil {
		return err
	}
	a := &kernelApp{
		slot:       len(k.apps),
		monID:      k.nextMonID,
		spec:       r.Spec,
		inst:       inst,
		active:     true,
		tag:        r.Attempts,
		arrivedAt:  r.ArrivedAt,
		admittedAt: r.AdmittedAt,
		runStart:   r.RunStartAt,
		runInsns:   r.RunInsns,
		aloneT:     r.AloneSeconds,
		departedAt: -1,
	}
	k.nextMonID++
	if err := k.pol.AddApp(a.monID); err != nil {
		return err
	}
	a.nextWin = k.pol.WindowInsns(a.monID)
	k.apps = append(k.apps, a)
	k.actives = append(k.actives, a)
	k.runCounts = append(k.runCounts, 0)
	k.nActive++
	if k.nActive > k.peak {
		k.peak = k.nActive
	}
	k.winArr++
	k.perfDirty = true
	// Injection happens between runUntil calls, so the post-admission
	// mask refresh the arrival path gets from its loop must run here.
	return k.refreshMasks()
}

// ExtractResidents appends every application on the machine — actives
// in slot order, then the admission queue FIFO, then undelivered
// arrivals — to dst and returns it, leaving the machine empty. Extracted
// actives are reported as evicted in the machine's result (neither
// departed nor remaining); queued residents vanish from this machine
// entirely (they never ran here — the lifecycle layer re-places them).
// Call at a placement point (between AdvanceTo calls), typically right
// before Halt.
func (m *OpenMachine) ExtractResidents(dst []Resident) []Resident {
	return m.k.extractResidents(dst)
}

// InjectResident admits a migrated application with its progress
// restored (see Resident). The machine must have a free core and must
// have been advanced to the migration instant; queued residents cannot
// be injected — requeue them through normal placement instead.
func (m *OpenMachine) InjectResident(r Resident) error {
	if m.err != nil {
		return m.err
	}
	if m.halted {
		return fmt.Errorf("sim: inject resident on halted %q", m.feed.name)
	}
	return m.k.injectResident(r)
}

// Halt takes the machine out of service immediately: the arrival stream
// is marked drained and the trailing metrics window closes at the
// current time, so the machine's series ends exactly at the halt
// instant. Halting is idempotent; a halted machine no-ops AdvanceTo and
// Drain, letting the fleet pool treat up and down machines uniformly.
// Extract residents first — Halt does not run the system empty.
func (m *OpenMachine) Halt() {
	if m.halted {
		return
	}
	m.halted = true
	m.feed.drained = true
	m.k.finish()
}

// Halted reports whether the machine has been taken out of service.
func (m *OpenMachine) Halted() bool { return m.halted }
