package sim_test

// Golden pins: the kernel+scenario refactor must reproduce the
// pre-refactor monolithic RunDynamic bit-for-bit on the paper's closed
// methodology. The constants below were captured from the monolithic
// implementation (commit "PR 1", scale 1/200, LFOC policy) on two
// Fig. 5 workloads — one stable-class mix (S1) and one phased mix (P1).
// Any arithmetic reordering in the kernel shows up here as a
// non-identical float64.

import (
	"fmt"
	"testing"

	"github.com/faircache/lfoc/internal/harness"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/workloads"
)

type goldenRun struct {
	workload     string
	simSeconds   float64
	unfairness   float64
	stp          float64
	repartitions int
	slowdowns    []float64
	runs         []int
}

var goldenRuns = []goldenRun{
	{
		workload:     "S1",
		simSeconds:   2.1567000000056615,
		unfairness:   1.4575688028221692,
		stp:          7.3243386265096326,
		repartitions: 862,
		slowdowns: []float64{
			1.0000000000026255,
			1.0000000000026255,
			1.4575688028257356,
			1.1306074393873562,
			1.0101525913918237,
			1.2813927673031127,
			1.0000000000024469,
			1.0168449732938096,
		},
		runs: []int{3, 3, 4, 5, 10, 5, 3, 10},
	},
	{
		workload:     "P1",
		simSeconds:   2.0249900000047987,
		unfairness:   1.8063513138471323,
		stp:          6.2721563015360795,
		repartitions: 809,
		slowdowns: []float64{
			1.2504836137492052,
			1.2347206949142264,
			1.3338190481212826,
			1.0000000000021787,
			1.0000014109216855,
			1.3002057293094078,
			1.8063513138510678,
			1.6945440774707972,
		},
		runs: []int{5, 5, 5, 3, 3, 4, 3, 3},
	},
}

func goldenConfig() harness.Config {
	cfg := harness.DefaultConfig()
	cfg.Scale = 200
	return cfg
}

func TestClosedScenarioGolden(t *testing.T) {
	for _, g := range goldenRuns {
		t.Run(g.workload, func(t *testing.T) {
			cfg := goldenConfig()
			w, err := workloads.Get(g.workload)
			if err != nil {
				t.Fatal(err)
			}
			pol, _, err := cfg.NewDynamicPolicy("lfoc")
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.RunDynamic(cfg.SimConfig(), w.ScaledSpecs(cfg.Scale), pol)
			if err != nil {
				t.Fatal(err)
			}
			if res.SimSeconds != g.simSeconds {
				t.Errorf("SimSeconds = %.17g, golden %.17g", res.SimSeconds, g.simSeconds)
			}
			if res.Summary.Unfairness != g.unfairness {
				t.Errorf("Unfairness = %.17g, golden %.17g", res.Summary.Unfairness, g.unfairness)
			}
			if res.Summary.STP != g.stp {
				t.Errorf("STP = %.17g, golden %.17g", res.Summary.STP, g.stp)
			}
			if res.Repartitions != g.repartitions {
				t.Errorf("Repartitions = %d, golden %d", res.Repartitions, g.repartitions)
			}
			for i, want := range g.slowdowns {
				if res.Slowdowns[i] != want {
					t.Errorf("slowdown[%d] = %.17g, golden %.17g", i, res.Slowdowns[i], want)
				}
				if len(res.RunTimes[i]) != g.runs[i] {
					t.Errorf("runs[%d] = %d, golden %d", i, len(res.RunTimes[i]), g.runs[i])
				}
			}
		})
	}
}

// The golden runs above fix one policy; this check covers the whole
// closed surface more cheaply: two identical invocations must agree
// bit-for-bit for every policy, including the windowed-metrics path.
func TestClosedScenarioSelfDeterminism(t *testing.T) {
	cfg := goldenConfig()
	w, err := workloads.Get("S2")
	if err != nil {
		t.Fatal(err)
	}
	specs := w.ScaledSpecs(cfg.Scale)
	for _, name := range []string{"stock", "dunn", "lfoc"} {
		run := func() *sim.Result {
			pol, _, err := cfg.NewDynamicPolicy(name)
			if err != nil {
				t.Fatal(err)
			}
			sc := cfg.SimConfig()
			sc.MetricsWindow = sc.PolicyPeriod * 4
			res, err := sim.RunDynamic(sc, specs, pol)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(), run()
		if fmt.Sprintf("%v", a.Slowdowns) != fmt.Sprintf("%v", b.Slowdowns) {
			t.Errorf("%s: nondeterministic slowdowns", name)
		}
		if a.Series == nil || b.Series == nil {
			t.Fatalf("%s: windowed series not collected", name)
		}
		if a.Series.Fingerprint() != b.Series.Fingerprint() {
			t.Errorf("%s: nondeterministic windowed series", name)
		}
	}
}
