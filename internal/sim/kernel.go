// This file holds the event-horizon carry chains whose float
// trajectories must be bit-identical across architectures; floatpin
// (cmd/lfoc-vet) checks every multiply-add here for an explicit
// float64(...) rounding pin. See docs/static-analysis.md.
//
//lfoc:floatstrict
package sim

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/cat"
	"github.com/faircache/lfoc/internal/metrics"
	"github.com/faircache/lfoc/internal/pmc"
	"github.com/faircache/lfoc/internal/sharing"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

// kernelApp is one application slot. A slot is created at admission and
// never reused; it survives identity resets (the monitoring id changes,
// the slot does not), which is how results stay attributable across the
// paper's restart semantics, fresh-process restarts and departures.
type kernelApp struct {
	slot  int // result index, stable for the app's lifetime
	monID int // policy/monitoring identity; changes on RestartFresh
	spec  *appmodel.Spec
	inst  *appmodel.Instance

	counter  pmc.Counter
	nextWin  uint64 // cumulative instruction threshold for next window
	runInsns uint64
	quota    uint64 // per-run instruction quota (TargetInsns·spec.SizeFactor)
	runStart float64
	runs     []float64
	// fractional accumulators (counters are integers, progress is not)
	fracInsns  float64
	fracCycles float64
	fracMiss   float64
	fracStall  float64
	perf       appmodel.Perf
	share      uint64

	active     bool
	evicted    bool    // lifted out by a lifecycle extraction, not departed
	tag        int     // scenario.Arrival.Tag, carried through untouched
	arrivedAt  float64 // scheduled arrival time (trace time)
	admittedAt float64 // when the app actually got a core
	departedAt float64 // negative while in the system

	// Alone-clock: simulated seconds an identical solo run (full LLC,
	// unloaded memory) would have needed for the instructions retired so
	// far. Feeds instantaneous slowdowns for windowed metrics and the
	// slowdown-at-departure of open scenarios.
	aloneT     float64
	alonePhase *appmodel.PhaseSpec
	aloneIPS   float64

	// Batch-invariant state of the event-horizon fast path, derived
	// from perf (and the kernel's fixed freq/dt) by refreshSteps when
	// stepsDirty: the per-tick rate products in the legacy expression
	// shape, their integer carry grids, and the reciprocal rate the
	// horizon bound divides by. Refreshed whenever perf is written —
	// cheaper than recomputing per batch, since equilibria change on
	// policy events but batches end on every counter window.
	stepsDirty bool
	insnStep   float64
	cycleStep  float64
	missStep   float64
	stallStep  float64
	insnGrid   carryParams
	cycleGrid  carryParams
	missGrid   carryParams
	stallGrid  carryParams
	horizonInv float64 // 1/(insnStep·(1+horizonSlack))

	// Alone-clock increment memo: with the carry in [0,1) a tick
	// retires base or base+1 instructions, so the two quotients are
	// computed once per (base, aloneIPS) pair instead of per tick.
	incBase    uint64
	incIPS     float64
	inc0, inc1 float64
}

// equilState is one memoized contention-model fixed point, positional
// over the active apps in slot order.
type equilState struct {
	perfs  []appmodel.Perf
	shares []uint64
}

const equilCacheMax = 4096

const (
	// maxBatchTicks caps one event-horizon batch. Far beyond any real
	// horizon (the policy period alone is TicksPerPeriod ticks), it only
	// bounds the float error the horizonSlack margin must absorb.
	maxBatchTicks = 1 << 20
	// horizonSlack over-estimates per-tick instruction progress when
	// bounding a batch: the per-tick carry accumulation rounds by at
	// most ~2^-52 relatively per add (≤ ~2^-32 over maxBatchTicks),
	// so inflating the rate by 1e-7 guarantees an instruction event
	// can never fire strictly inside a batch — at worst the batch ends
	// a few ticks early and the next one picks up the slack.
	horizonSlack = 1e-7
)

// kernel is the scenario-agnostic execution engine: it integrates
// application progress under the contention model, accumulates hardware
// counters, delivers counter windows to the policy, activates the
// partitioner periodically, and consults the scenario for arrivals,
// run-completion outcomes and termination.
type kernel struct {
	cfg Config
	pol Dynamic
	scn scenario.Scenario

	apps      []*kernelApp
	runCounts []int // completed runs per slot (shared with scenario.Progress)
	// actives is the active subset of apps in slot order — the hot
	// scans (integration, equilibrium key build, horizon bound, metrics
	// windows) iterate it instead of every slot ever admitted, which
	// matters once a churn run has retired hundreds of slots. Departure
	// only marks activesDirty; compaction happens between advances, so
	// an in-flight iteration never sees elements shift underneath it.
	actives      []*kernelApp
	activesDirty bool
	nActive      int
	nextMonID    int
	peak         int

	arrivals []scenario.Arrival
	arrIdx   int
	waitQ    []scenario.Arrival // arrivals waiting for a free core

	eval   *sharing.Evaluator
	shApps []sharing.App
	shRes  []sharing.Result
	// Equilibrium memo, two generations: lookups hit equil (hot) then
	// equilPrev (cold, promoted back on touch); a full hot map rotates
	// into the cold slot instead of being cleared, so eviction never
	// dumps the working set (see storeEquil).
	equil     map[string]*equilState
	equilPrev map[string]*equilState
	equilMax  int
	equilHits uint64
	equilMiss uint64
	keyBuf    []byte

	masks     map[int]cat.WayMask
	perfDirty bool

	aloneIPSCache map[*appmodel.PhaseSpec]float64

	freq float64
	dt   float64

	simTime      float64
	nextPolicy   float64
	repartitions int

	// Event-horizon fast path (see advanceHorizon). fastPath is set when
	// the scenario implements scenario.TimeHorizoned and the testing
	// knob Config.noEventHorizon is off; doneAt is the scenario's only
	// time-based Done trigger (0 = Done is time-invariant); passiveWin
	// is set when the policy declares PassiveWindows, letting window
	// deliveries happen inside a batch instead of bounding it.
	fastPath   bool
	doneAt     float64
	passiveWin bool

	// Windowed-metrics collection (enabled by Config.MetricsWindow).
	collect   bool
	series    metrics.WindowedSeries
	winStart  float64
	winArr    int
	winDep    int
	winRuns   int
	sdScratch []float64
}

// newKernel validates the configuration, admits the scenario's initial
// applications and primes the policy, mirroring the historical
// RunDynamic setup sequence exactly.
func newKernel(cfg Config, scn scenario.Scenario, pol Dynamic) (*kernel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	initial := scn.Initial()
	for _, s := range initial {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	for i, arr := range scn.Arrivals() {
		if arr.Spec == nil {
			return nil, fmt.Errorf("sim: arrival %d without a spec", i)
		}
		if err := arr.Spec.Validate(); err != nil {
			return nil, err
		}
	}

	k := &kernel{
		cfg:           cfg,
		pol:           pol,
		scn:           scn,
		arrivals:      scn.Arrivals(),
		eval:          sharing.NewEvaluator(sharing.NewModel(cfg.Plat)),
		equil:         make(map[string]*equilState),
		equilMax:      equilCacheMax,
		masks:         map[int]cat.WayMask{},
		aloneIPSCache: map[*appmodel.PhaseSpec]float64{},
		freq:          float64(cfg.Plat.FreqHz),
		dt:            cfg.PolicyPeriod.Seconds() / float64(cfg.TicksPerPeriod),
		nextPolicy:    cfg.PolicyPeriod.Seconds(),
		perfDirty:     true,
		collect:       cfg.MetricsWindow > 0,
	}
	// The batched fast path must know the only time at which Done can
	// flip as a function of time alone; scenarios that don't declare it
	// (scenario.TimeHorizoned) run on the legacy per-tick path.
	if h, ok := scn.(scenario.TimeHorizoned); ok && !cfg.noEventHorizon {
		k.fastPath = true
		k.doneAt = h.Horizon()
		if p, ok := pol.(PassiveWindows); ok && p.PassiveWindows() {
			k.passiveWin = true
		}
	}
	if k.collect {
		k.series.Width = cfg.MetricsWindow.Seconds()
	}
	if len(initial) > cfg.Plat.Cores {
		// Open-system scenarios (their apps depart and free cores) queue
		// the overflow FIFO, exactly like arrivals on a full machine;
		// everything else — the closed methodology, whose apps never
		// release a core — is rejected up-front as before.
		q, ok := scn.(interface{ QueueInitialOverflow() bool })
		if !ok || !q.QueueInitialOverflow() {
			return nil, fmt.Errorf("sim: %d apps exceed %d cores", len(initial), cfg.Plat.Cores)
		}
	}
	for _, s := range initial {
		if k.nActive < cfg.Plat.Cores {
			if err := k.admit(s, 0, 0); err != nil {
				return nil, err
			}
		} else {
			k.waitQ = append(k.waitQ, scenario.Arrival{Time: 0, Spec: s})
		}
	}
	pol.Reconfigure()
	if err := k.refreshMasks(); err != nil {
		return nil, err
	}
	return k, nil
}

// admit creates a slot for spec and registers it with the policy. The
// caller has verified a core is free.
func (k *kernel) admit(spec *appmodel.Spec, arrivedAt float64, tag int) error {
	a := &kernelApp{
		slot:       len(k.apps),
		monID:      k.nextMonID,
		spec:       spec,
		inst:       appmodel.NewInstance(spec),
		quota:      RunQuota(k.cfg.TargetInsns, spec),
		active:     true,
		tag:        tag,
		arrivedAt:  arrivedAt,
		admittedAt: k.simTime,
		runStart:   k.simTime,
		departedAt: -1,
	}
	k.nextMonID++
	if err := k.pol.AddApp(a.monID); err != nil {
		return err
	}
	a.nextWin = k.pol.WindowInsns(a.monID)
	k.apps = append(k.apps, a)
	k.actives = append(k.actives, a)
	k.runCounts = append(k.runCounts, 0)
	k.nActive++
	if k.nActive > k.peak {
		k.peak = k.nActive
	}
	k.winArr++
	k.perfDirty = true
	return nil
}

// depart removes an application from the system, releasing its core and
// its policy state, and back-fills the core from the wait queue.
func (k *kernel) depart(a *kernelApp) error {
	a.active = false
	a.departedAt = k.simTime
	k.nActive--
	k.activesDirty = true
	k.winDep++
	k.pol.RemoveApp(a.monID)
	k.perfDirty = true
	for len(k.waitQ) > 0 && k.nActive < k.cfg.Plat.Cores {
		arr := k.waitQ[0]
		k.waitQ = k.waitQ[1:]
		if err := k.admit(arr.Spec, arr.Time, arr.Tag); err != nil {
			return err
		}
	}
	return nil
}

// compactActives drops departed apps from the active list, preserving
// slot order. Called between advances, never during an iteration.
func (k *kernel) compactActives() {
	live := k.actives[:0]
	for _, a := range k.actives {
		if a.active {
			live = append(live, a)
		}
	}
	// Clear the tail so departed apps do not leak through the backing
	// array.
	for i := len(live); i < len(k.actives); i++ {
		k.actives[i] = nil
	}
	k.actives = live
	k.activesDirty = false
}

// refreshIdentity gives the slot a brand-new monitoring identity: the
// policy sees the old process exit and a new one spawn, so class and
// history are re-learned from scratch.
func (k *kernel) refreshIdentity(a *kernelApp) error {
	k.pol.RemoveApp(a.monID)
	a.monID = k.nextMonID
	k.nextMonID++
	if err := k.pol.AddApp(a.monID); err != nil {
		return err
	}
	a.counter.Reset()
	a.nextWin = k.pol.WindowInsns(a.monID)
	return nil
}

func (k *kernel) refreshMasks() error {
	m, err := k.pol.Assignment()
	if err != nil {
		return err
	}
	k.masks = m
	k.perfDirty = true
	return nil
}

// refreshPerf re-evaluates the contention-model fixed point over the
// active applications. The equilibrium is a pure function of (per-app
// spec, phase index, mask): restarted applications revisit identical
// configurations constantly and the policy cycles through a small set
// of plans, so memoizing the fixed point pays for itself within a few
// runs; the slot stands in for the spec in the key since a slot's spec
// never changes.
func (k *kernel) refreshPerf() {
	k.shApps = k.shApps[:0]
	for _, a := range k.actives {
		if !a.active {
			continue
		}
		mask := k.masks[a.monID]
		if mask == 0 {
			mask = cat.FullMask(k.cfg.Plat.Ways)
		}
		k.shApps = append(k.shApps, sharing.App{ID: a.monID, Phase: a.inst.Phase(), Mask: mask})
	}
	k.perfDirty = false
	if len(k.shApps) == 0 {
		return
	}
	if !k.cfg.noEquilCache {
		k.keyBuf = k.keyBuf[:0]
		idx := 0
		for _, a := range k.actives {
			if !a.active {
				continue
			}
			k.keyBuf = binary.LittleEndian.AppendUint32(k.keyBuf, uint32(a.slot))
			k.keyBuf = binary.LittleEndian.AppendUint32(k.keyBuf, uint32(a.inst.PhaseIndex()))
			k.keyBuf = binary.LittleEndian.AppendUint32(k.keyBuf, uint32(k.shApps[idx].Mask))
			idx++
		}
		// Inline []byte→string conversions in map lookups do not
		// allocate; the key string is only materialized on a promote or
		// an insert.
		st, ok := k.equil[string(k.keyBuf)]
		if !ok {
			if st, ok = k.equilPrev[string(k.keyBuf)]; ok {
				k.storeEquil(string(k.keyBuf), st) // touched: promote to the hot generation
			}
		}
		if ok {
			k.equilHits++
			idx = 0
			for _, a := range k.actives {
				if !a.active {
					continue
				}
				a.perf = st.perfs[idx]
				a.share = st.shares[idx]
				a.stepsDirty = true
				idx++
			}
			return
		}
		k.equilMiss++
	}
	k.shRes = k.eval.EvaluateInto(k.shRes, k.shApps)
	idx := 0
	for _, a := range k.actives {
		if !a.active {
			continue
		}
		a.perf = k.shRes[idx].Perf
		a.share = k.shRes[idx].ShareBytes
		a.stepsDirty = true
		idx++
	}
	if !k.cfg.noEquilCache {
		st := &equilState{
			perfs:  make([]appmodel.Perf, len(k.shApps)),
			shares: make([]uint64, len(k.shApps)),
		}
		idx = 0
		for _, a := range k.actives {
			if !a.active {
				continue
			}
			st.perfs[idx] = a.perf
			st.shares[idx] = a.share
			idx++
		}
		k.storeEquil(string(k.keyBuf), st)
	}
}

// storeEquil inserts one fixed point into the hot generation, rotating
// generations when it is full: the hot map becomes the cold one and only
// entries untouched for a whole generation fall off the far end. Unlike
// the wholesale clear this replaces, the rotation can never dump the
// working set — live configurations are promoted back on first touch —
// so a long churn run keeps its hit rate through evictions.
func (k *kernel) storeEquil(key string, st *equilState) {
	if len(k.equil) >= k.equilMax {
		k.equilPrev = k.equil
		k.equil = make(map[string]*equilState, k.equilMax)
	}
	k.equil[key] = st
}

// alonePhaseIPS returns the solo instruction rate (insns/second, full
// LLC, unloaded memory) for a phase, cached per phase spec.
func (k *kernel) alonePhaseIPS(ph *appmodel.PhaseSpec) float64 {
	if ips, ok := k.aloneIPSCache[ph]; ok {
		return ips
	}
	ips := appmodel.PhasePerf(ph, k.cfg.Plat, k.cfg.Plat.LLCBytes(), 1).IPC * k.freq
	k.aloneIPSCache[ph] = ips
	return ips
}

// closeWindow finalizes the current metrics window at the given end
// time and opens the next one.
func (k *kernel) closeWindow(end float64) {
	p := metrics.WindowPoint{
		Start:         k.winStart,
		End:           end,
		Active:        k.nActive,
		Arrivals:      k.winArr,
		Departures:    k.winDep,
		RunsCompleted: k.winRuns,
	}
	if w := end - k.winStart; w > 0 {
		p.Throughput = float64(k.winRuns) / w
	}
	k.sdScratch = k.sdScratch[:0]
	for _, a := range k.actives {
		if !a.active || a.aloneT <= 0 {
			continue
		}
		k.sdScratch = append(k.sdScratch, (end-a.admittedAt)/a.aloneT)
	}
	p.Unfairness, p.STP, p.MeanSlowdown, p.MinSlowdown, p.MaxSlowdown = metrics.SlowdownStats(k.sdScratch)
	p.Samples = len(k.sdScratch)
	k.series.Add(p)
	k.winStart = end
	k.winArr, k.winDep, k.winRuns = 0, 0, 0
}

// progress assembles the scenario's view of the kernel state. Runs
// shares the kernel's storage; scenarios treat it as read-only.
func (k *kernel) progress() scenario.Progress {
	return scenario.Progress{
		Time:    k.simTime,
		Active:  k.nActive,
		Pending: len(k.arrivals) - k.arrIdx + len(k.waitQ),
		Runs:    k.runCounts,
	}
}

// run executes the scenario to completion. The per-tick structure —
// termination check, arrival delivery, equilibrium refresh, time
// advance, per-app integration, mask refresh, partitioner activation,
// metrics windows — keeps the historical closed-methodology operation
// order exactly, so closed runs are bit-identical to the pre-kernel
// monolithic loop (pinned by the golden test).
func (k *kernel) run() error {
	if err := k.runUntil(math.Inf(1)); err != nil {
		return err
	}
	k.finish()
	return nil
}

// runUntil advances the simulation until simTime reaches until or the
// scenario reports done, whichever comes first. It is run's loop with a
// pause point: pausing after a tick and resuming executes exactly the
// operation sequence of an uninterrupted run (the extra `simTime <
// until` test and the repeated Done call are pure), which is what lets
// a cluster interleave placement decisions between ticks of independent
// machines without perturbing any single machine's trajectory.
//
// Between state-changing events the equilibrium and every rate are
// constant, so when the scenario permits it (fastPath) the loop body
// advances a whole event horizon per iteration (advanceHorizon) instead
// of a single tick (advanceTick); both paths are bit-identical (pinned
// by TestEventHorizonDifferential and the goldens) because the batched
// path preserves the per-tick float carry op order exactly and every
// event lands on an iteration boundary, where the shared delivery code
// runs in the legacy order.
func (k *kernel) runUntil(until float64) error {
	maxTime := k.cfg.MaxSimTime.Seconds()
	for k.simTime < until && !k.scn.Done(k.progress()) {
		// Cooperative cancellation: loop-top boundaries are exactly the
		// states a checkpoint can capture, so stopping here keeps the
		// pause-point invariance guarantee (resuming replays the same
		// operation sequence the uninterrupted run would have executed).
		if k.cfg.Cancel.Canceled() {
			return ErrCanceled
		}
		if k.simTime > maxTime {
			return fmt.Errorf("sim: exceeded MaxSimTime (%v) with runs %v", k.cfg.MaxSimTime, k.runCounts)
		}
		// Deliver arrivals that are due; a full machine queues them.
		admitted := false
		for k.arrIdx < len(k.arrivals) && k.arrivals[k.arrIdx].Time <= k.simTime {
			arr := k.arrivals[k.arrIdx]
			k.arrIdx++
			if k.nActive >= k.cfg.Plat.Cores {
				k.waitQ = append(k.waitQ, arr)
				continue
			}
			if err := k.admit(arr.Spec, arr.Time, arr.Tag); err != nil {
				return err
			}
			admitted = true
		}
		if admitted {
			if err := k.refreshMasks(); err != nil {
				return err
			}
		}
		if k.perfDirty {
			k.refreshPerf()
		}
		var anyChange bool
		var err error
		if k.fastPath {
			anyChange, err = k.advanceHorizon(until, maxTime)
		} else {
			anyChange, err = k.advanceTick()
		}
		if err != nil {
			return err
		}
		if k.activesDirty {
			k.compactActives()
		}
		if anyChange {
			if err := k.refreshMasks(); err != nil {
				return err
			}
		}
		if k.simTime >= k.nextPolicy {
			k.pol.Reconfigure()
			k.repartitions++
			k.nextPolicy += k.cfg.PolicyPeriod.Seconds()
			if err := k.refreshMasks(); err != nil {
				return err
			}
		}
		if k.collect {
			for k.simTime >= k.winStart+k.series.Width {
				k.closeWindow(k.winStart + k.series.Width)
			}
		}
	}
	return nil
}

// advanceTick is the legacy reference path: one fixed tick with every
// event check inline, exactly the historical per-tick operation order
// (the closed golden pins it bit-for-bit).
//
// The explicit float64 conversions around the per-tick rate products
// are bit-level no-ops that force the product to round before the
// accumulating add, so a compiler may not contract the pair into an
// FMA on platforms where it otherwise could (arm64): both advancement
// paths — and the goldens — stay identical across architectures, and
// the batched path may hoist the products out of its inner loop.
//
//lfoc:hotpath
func (k *kernel) advanceTick() (bool, error) {
	k.simTime += k.dt
	anyChange := false
	for _, a := range k.actives {
		if !a.active {
			continue
		}
		// Progress.
		ips := a.perf.IPC * k.freq
		a.fracInsns += float64(ips * k.dt)
		insns := uint64(a.fracInsns)
		a.fracInsns -= float64(insns)
		if insns > 0 {
			// Alone-clock: charge the retired instructions at the
			// solo rate of the phase they retired under (phase
			// boundaries inside one tick are charged to the phase
			// the tick started in — a sub-tick approximation).
			ph := a.inst.Phase()
			if ph != a.alonePhase {
				a.alonePhase = ph
				a.aloneIPS = k.alonePhaseIPS(ph)
			}
			a.aloneT += float64(insns) / a.aloneIPS
			if a.inst.Advance(insns) {
				k.perfDirty = true
			}
		}
		// Counters.
		a.fracCycles += float64(k.freq * k.dt)
		cycles := uint64(a.fracCycles)
		a.fracCycles -= float64(cycles)
		a.fracMiss += float64(a.perf.MPKC / 1000 * k.freq * k.dt)
		miss := uint64(a.fracMiss)
		a.fracMiss -= float64(miss)
		a.fracStall += float64(a.perf.StallFrac * k.freq * k.dt)
		stall := uint64(a.fracStall)
		a.fracStall -= float64(stall)
		a.counter.Add(pmc.Sample{
			Instructions:   insns,
			Cycles:         cycles,
			LLCMisses:      miss,
			LLCAccesses:    miss * 2,
			StallsL2Miss:   stall,
			OccupancyBytes: a.share,
		})
		changed, err := k.appEvents(a, insns)
		if err != nil {
			return false, err
		}
		anyChange = anyChange || changed
	}
	return anyChange, nil
}

// appEvents runs one application's post-integration event checks —
// counter-window delivery and run completion — shared verbatim by the
// per-tick and batched paths (the horizon guarantees they can only
// trigger on a batch's last tick, where the batched path calls this at
// the same point of the operation order as the legacy tick).
func (k *kernel) appEvents(a *kernelApp, insns uint64) (bool, error) {
	anyChange := false
	// Window delivery.
	for a.counter.Total().Instructions >= a.nextWin {
		w := a.counter.ReadWindow()
		if k.pol.OnWindow(a.monID, w) {
			anyChange = true
		}
		a.nextWin = a.counter.Total().Instructions + k.pol.WindowInsns(a.monID)
	}
	// Run completion: the scenario decides the app's fate.
	a.runInsns += insns
	for a.active && a.runInsns >= a.quota {
		a.runs = append(a.runs, k.simTime-a.runStart)
		k.runCounts[a.slot]++
		k.winRuns++
		a.runStart = k.simTime
		a.runInsns -= a.quota
		switch k.scn.OnRunComplete(a.slot, len(a.runs)) {
		case scenario.Depart:
			if err := k.depart(a); err != nil {
				return false, err
			}
			anyChange = true
		case scenario.RestartFresh:
			a.inst.Restart()
			k.perfDirty = true
			if err := k.refreshIdentity(a); err != nil {
				return false, err
			}
			anyChange = true
		default: // scenario.Restart
			a.inst.Restart()
			k.perfDirty = true
		}
	}
	return anyChange, nil
}

// carryParams is the integer decomposition of one per-tick carry step
// (see carryGrid); ok is false when the step needs the float path.
type carryParams struct {
	base  uint64
	sfrac uint64
	mask  uint64
	sh    uint
	ok    bool
}

// carryGrid decomposes a per-tick carry step for the exact integer
// advancement of a fractional accumulator.
//
// Exactness argument. Let g = ulp(step) = 2^(e−52) with e = ⌊log2
// step⌋, and suppose (a) 1 ≤ step < 2^52, and (b) ⌊step⌋+2 ≤ 2^(e+1).
// step is by definition a multiple of g, and so are ⌊step⌋ (an integer;
// 1/g = 2^(52−e) is an integer) and sfrac = step−⌊step⌋. If the carry
// f ∈ [0,1) is also a multiple of g, the true sum f+step is a multiple
// of g inside [2^e, 2^(e+1)] by (b) — exactly representable, so the
// float add `f += step` performs NO rounding, and the floor/subtract
// pair is always exact (Sterbenz). The whole per-tick sequence
// therefore equals integer arithmetic on multiples of g: F += S;
// carry-out = F ≫ (52−e); F &= 2^(52−e)−1 — and the chain can even be
// advanced m ticks in closed form (carryRun). The carry IS a multiple
// of g after one float tick under the current step (the add rounds the
// sum onto the grid, floor and subtract are exact), which is why batch
// chains run tick 1 in the legacy float shape first.
//
// The decomposition itself is pure bit arithmetic: step = mant·g with
// mant = 2^52 | mantissa-bits, so base = mant ≫ (52−e) and sfrac =
// mant & (2^(52−e)−1), with no float operation that could round.
//
// ok is false for steps outside (a)/(b) — less than one unit per tick,
// at a binade edge, or absurdly large — which fall back to legacy
// float ticks.
//
//lfoc:hotpath
func carryGrid(step float64) carryParams {
	if !(step >= 1) || step >= 1<<52 {
		return carryParams{}
	}
	b := math.Float64bits(step)
	e := int(b>>52) - 1023      // exponent, 0..51 given the range check
	mant := b&(1<<52-1) | 1<<52 // step/ulp(step), exact
	sh := uint(52 - e)
	mask := uint64(1)<<sh - 1
	base := mant >> sh
	if base+2 > 2<<uint(e) { // binade margin: ⌊step⌋+2 ≤ 2^(e+1)
		return carryParams{}
	}
	return carryParams{base: base, sfrac: mant & mask, mask: mask, sh: sh, ok: true}
}

// carryRun advances one carry chain m ticks in closed form: the chain's
// total output is m·base plus the number of fractional wrap-arounds,
// (F₀ + m·sfrac) div 2^sh, with the final carry the matching mod —
// exact in 128-bit integer arithmetic (carryGrid's grid argument). ok
// is false only when the wrap count would overflow the shift; the
// caller then runs legacy float ticks.
//
//lfoc:hotpath
func carryRun(frac *float64, g *carryParams, m int) (sum uint64, ok bool) {
	hi, lo := bits.Mul64(g.sfrac, uint64(m))
	var c uint64
	lo, c = bits.Add64(lo, uint64(*frac*float64(g.mask+1)), 0)
	hi += c
	if hi>>g.sh != 0 {
		return 0, false
	}
	*frac = float64(lo&g.mask) / float64(g.mask+1)
	return uint64(m)*g.base + (hi<<(64-g.sh) | lo>>g.sh), true
}

// carryBatch advances one side-effect-free carry chain a whole batch:
// tick 1 in the legacy float shape (grid alignment, see carryGrid),
// the remaining ticks in closed form when the step allows it and tick
// by tick otherwise. A zero step is skipped outright: adding +0.0 to a
// non-negative carry and flooring is a bitwise no-op.
//
//lfoc:hotpath
func carryBatch(frac *float64, step float64, g *carryParams, ticks int) uint64 {
	if step == 0 {
		return 0
	}
	f := *frac + step
	sum := uint64(f)
	f -= float64(sum)
	*frac = f
	if m := ticks - 1; m > 0 {
		if g.ok {
			if s, ok := carryRun(frac, g, m); ok {
				return sum + s
			}
		}
		for i := 0; i < m; i++ {
			f += step
			v := uint64(f)
			f -= float64(v)
			sum += v
		}
		*frac = f
	}
	return sum
}

// refreshSteps rederives an application's batch-invariant advancement
// state after a perf change: the per-tick rate products (in the legacy
// expression shape — see advanceTick — so re-adding the precomputed
// value every tick is bit-identical to the legacy recomputation), their
// integer carry grids, and the reciprocal rate horizonTicks multiplies
// by (its 1-ulp rounding is absorbed by horizonSlack).
//
//lfoc:hotpath
func (k *kernel) refreshSteps(a *kernelApp) {
	ips := a.perf.IPC * k.freq
	a.insnStep = float64(ips * k.dt)
	a.cycleStep = float64(k.freq * k.dt)
	a.missStep = float64(a.perf.MPKC / 1000 * k.freq * k.dt)
	a.stallStep = float64(a.perf.StallFrac * k.freq * k.dt)
	a.insnGrid = carryGrid(a.insnStep)
	a.cycleGrid = carryGrid(a.cycleStep)
	a.missGrid = carryGrid(a.missStep)
	a.stallGrid = carryGrid(a.stallStep)
	a.horizonInv = 1 / (a.insnStep * (1 + horizonSlack))
	a.stepsDirty = false
}

// horizonTicks bounds the next batch by the instruction-driven events:
// per active app, the whole ticks guaranteed to pass before it can reach
// its next counter-window delivery, run completion or phase boundary.
// The bound is conservative (events may land on the batch's last tick,
// never strictly inside it): after j ticks an app has retired at most
// j·step·(1+horizonSlack)+1 instructions — the carry is < 1 and the
// slack absorbs both the per-tick float rounding and the 1-ulp error of
// the precomputed reciprocal — so ticks 1..safe cannot reach the
// nearest event, and the event fires on tick safe+1 at the earliest,
// where the post-batch appEvents delivery handles it exactly like the
// legacy per-tick checks.
//
// It is also where stale per-app advancement state is rederived: it
// runs once per batch, after the loop top has refreshed the equilibrium
// and before any chain advances.
//
//lfoc:hotpath
func (k *kernel) horizonTicks() int {
	n := maxBatchTicks
	for _, a := range k.actives {
		if !a.active {
			continue
		}
		if a.stepsDirty {
			k.refreshSteps(a)
		}
		if !(a.insnStep > 0) {
			continue // no instruction progress: no instruction events
		}
		// A passive policy takes its window deliveries inside the batch
		// (advanceHorizon's segment loop), so they do not bound it.
		remain := float64(a.quota - a.runInsns)
		if !k.passiveWin {
			if r := float64(a.nextWin - a.counter.Total().Instructions); r < remain {
				remain = r
			}
		}
		if pe := a.inst.InstructionsToPhaseEnd(); pe > 0 {
			if r := float64(pe); r < remain {
				remain = r
			}
		}
		if ticksF := (remain - 1) * a.horizonInv; ticksF < float64(n-1) {
			safe := int(ticksF)
			if safe < 0 {
				safe = 0
			}
			n = safe + 1
		}
	}
	return n
}

// nextEventTime returns a conservative lower bound H on the next
// simulated instant at which this kernel's externally visible state —
// the placement view (active count, queue depth, resident phases) and
// the migration coordinates a Resident carries — can differ from its
// current content. The cluster layer uses it to skip advancement: for
// any pause point t < H, runUntil(t) is guaranteed to deliver no
// arrival, complete no run, cross no phase boundary and change no
// policy input, so deferring the call is indistinguishable from making
// it (runUntil's pause-point invariance covers the rest).
//
// The bound is the earliest of:
//   - the next undelivered injected arrival (delivery changes the
//     active set and admits from the wait queue);
//   - the next policy activation, but only while applications are
//     resident — a repartition changes masks and therefore every rate,
//     invalidating the instruction-event bound below (an idle machine
//     has no rates to invalidate, which is what lets a 1000-machine
//     fleet skip its idle members entirely);
//   - the last tick horizonTicks guarantees free of instruction events
//     (window delivery, run completion, phase boundary), shrunk by a
//     relative slack that dominates the accumulated per-tick rounding
//     of the real clock (simTime sums dt tick by tick; the closed form
//     here may land up to ~2^-32 relative above the true boundary, and
//     an arrival in that gap must still count as due).
//
// Metrics-window closes deliberately do not bound H: they are pure
// recording, replayed bit-identically inside the catch-up runUntil.
// A done machine (horizon reached, or drained and empty) returns +Inf:
// its state is frozen. Calling refreshPerf/refreshSteps here is safe
// between runUntil calls — both are idempotent rederivations the next
// loop top would perform with identical inputs.
//
//lfoc:hotpath
func (k *kernel) nextEventTime() float64 {
	if k.scn.Done(k.progress()) {
		return math.Inf(1)
	}
	if !k.fastPath {
		return k.simTime // legacy per-tick path: treat every instant as an event
	}
	h := math.Inf(1)
	if k.arrIdx < len(k.arrivals) {
		h = k.arrivals[k.arrIdx].Time
	}
	if k.nActive > 0 {
		if k.nextPolicy < h {
			h = k.nextPolicy
		}
		if k.perfDirty {
			k.refreshPerf()
		}
		n := k.horizonTicks()
		hins := k.simTime + float64(float64(n-1)*k.dt)
		hins -= float64(hins * 1e-9)
		if hins < h {
			h = hins
		}
	}
	return h
}

// advanceHorizon is the event-horizon fast path: it advances all whole
// ticks until the earliest next event — due arrival, policy activation,
// metrics-window close, the until pause point, MaxSimTime, the
// scenario's time horizon, or any app's instruction-driven event
// (horizonTicks) — in a tight per-app inner loop with no event checks,
// then runs the event deliveries once at the boundary.
//
// Bit-exactness: the inner loop keeps the per-tick float carry ops in
// the legacy op order and expression shape (per-app accumulators are
// independent, so app-major iteration equals the legacy tick-major
// order), the clock accumulates tick by tick (a closed-form n·dt would
// round differently), and the integer counter deltas are summed locally
// and issued as one batched pmc add per app per horizon — exact because
// integer sums are associative and occupancy adopts the latest reading
// (pinned in internal/pmc).
//
//lfoc:hotpath
func (k *kernel) advanceHorizon(until, maxTime float64) (bool, error) {
	n := k.horizonTicks()
	// Time-driven events: stop at the first tick that reaches one. The
	// post-batch checks (and the next loop top) then handle it exactly
	// like the legacy path, which also only acts on tick boundaries.
	stop := until
	if k.arrIdx < len(k.arrivals) && k.arrivals[k.arrIdx].Time < stop {
		stop = k.arrivals[k.arrIdx].Time
	}
	if k.nextPolicy < stop {
		stop = k.nextPolicy
	}
	if k.collect {
		if w := k.winStart + k.series.Width; w < stop {
			stop = w
		}
	}
	if k.doneAt > 0 && k.doneAt < stop {
		stop = k.doneAt
	}
	ticks := 0
	for {
		k.simTime += k.dt
		ticks++
		if ticks >= n || k.simTime >= stop || k.simTime > maxTime {
			break
		}
	}

	anyChange := false
	for _, a := range k.actives {
		if !a.active {
			continue
		}
		ph := a.inst.Phase() // constant for the whole batch (Advance is deferred)

		// The four carry chains touch disjoint state, so they commute
		// across the batch: process them chain-major instead of
		// tick-major (bit-identical to the legacy interleaving), in
		// segments that end at the app's own counter-window deliveries.
		// Under a non-passive policy the horizon already ends the batch
		// at the first possible window, so there is exactly one segment;
		// under a passive one (passiveWin) windows land mid-batch and
		// are delivered here, per app instead of in global tick order —
		// indistinguishable by the PassiveWindows contract.
		var insnsSum uint64
		remaining := ticks
		for {
			seg, segInsns := k.advanceInsnsChain(a, ph, remaining)
			insnsSum += segInsns
			// Cycle, miss and stall chains have no per-tick side
			// effects: tick 1 in the legacy float shape, remainder in
			// closed form (or legacy float ticks for degenerate steps).
			missSum := carryBatch(&a.fracMiss, a.missStep, &a.missGrid, seg)
			a.counter.Add(pmc.Sample{
				Instructions:   segInsns,
				Cycles:         carryBatch(&a.fracCycles, a.cycleStep, &a.cycleGrid, seg),
				LLCMisses:      missSum,
				LLCAccesses:    missSum * 2,
				StallsL2Miss:   carryBatch(&a.fracStall, a.stallStep, &a.stallGrid, seg),
				OccupancyBytes: a.share,
			})
			remaining -= seg
			if remaining == 0 {
				break
			}
			// Mid-batch window delivery, the legacy delivery loop
			// verbatim. OnWindow must return false here (the policy
			// declared its windows passive); anyChange is still
			// honored as a best-effort defense, but a policy that
			// violates the contract forfeits bit-identity with the
			// per-tick path.
			for a.counter.Total().Instructions >= a.nextWin {
				w := a.counter.ReadWindow()
				if k.pol.OnWindow(a.monID, w) {
					anyChange = true
				}
				a.nextWin = a.counter.Total().Instructions + k.pol.WindowInsns(a.monID)
			}
		}

		if insnsSum > 0 {
			if a.inst.Advance(insnsSum) {
				k.perfDirty = true
			}
		}
		changed, err := k.appEvents(a, insnsSum)
		if err != nil {
			return false, err
		}
		anyChange = anyChange || changed
	}
	return anyChange, nil
}

// advanceInsnsChain advances one application's instruction and
// alone-clock chain by up to maxTicks ticks, stopping at (and
// including) the first tick whose cumulative retirement reaches the
// app's next counter-window threshold. It returns the ticks consumed —
// the segment length the sibling chains must then advance — and the
// instructions retired.
//
// Tick 1 runs in the legacy float shape (grid alignment, lazy
// alone-phase resolution); the remaining ticks advance the carry on
// exact integer arithmetic when the step allows it (carryGrid), with
// the alone-clock's two possible per-tick quotients memoized per
// (base, rate) instead of divided per tick. The per-tick rate product
// is loop-invariant (cached by refreshSteps in the legacy expression
// shape): re-adding the identical value every tick is bit-identical to
// the legacy recomputation.
//
//lfoc:hotpath
func (k *kernel) advanceInsnsChain(a *kernelApp, ph *appmodel.PhaseSpec, maxTicks int) (int, uint64) {
	insnStep := a.insnStep
	if !(insnStep > 0) {
		// No retirement: every tick adds +0.0 to a non-negative carry
		// and floors it — a bitwise no-op, so the whole segment is
		// consumed at once.
		return maxTicks, 0
	}
	winLeft := a.nextWin - a.counter.Total().Instructions // ≥ 1 between deliveries

	// Tick 1, legacy shape.
	a.fracInsns += insnStep
	insns := uint64(a.fracInsns)
	a.fracInsns -= float64(insns)
	var cum uint64
	if insns > 0 {
		if ph != a.alonePhase {
			a.alonePhase = ph
			a.aloneIPS = k.alonePhaseIPS(ph)
		}
		a.aloneT += float64(insns) / a.aloneIPS
		cum = insns
	}
	done := 1
	if m := maxTicks - 1; m > 0 && cum < winLeft {
		if g := &a.insnGrid; g.ok {
			// base ≥ 1, so tick 1 retired instructions and resolved the
			// alone-clock rate.
			if a.incBase != g.base || a.incIPS != a.aloneIPS {
				a.incBase, a.incIPS = g.base, a.aloneIPS
				a.inc0 = float64(g.base) / a.aloneIPS
				a.inc1 = float64(g.base+1) / a.aloneIPS
			}
			inc0, inc1 := a.inc0, a.inc1
			base, sfrac, sh, mask := g.base, g.sfrac, g.sh, g.mask
			f := uint64(a.fracInsns * float64(mask+1))
			aloneT := a.aloneT
			for i := 0; i < m; i++ {
				f += sfrac
				extra := f >> sh
				f &= mask
				inc := inc0
				if extra != 0 {
					inc = inc1
				}
				aloneT += inc
				cum += base + extra
				done++
				if cum >= winLeft {
					break
				}
			}
			a.aloneT = aloneT
			a.fracInsns = float64(f) / float64(mask+1)
		} else {
			// Degenerate steps (< 1 instruction per tick, or at a
			// binade edge): legacy float ticks.
			fracInsns, aloneT := a.fracInsns, a.aloneT
			for i := 0; i < m; i++ {
				fracInsns += insnStep
				insns := uint64(fracInsns)
				fracInsns -= float64(insns)
				if insns > 0 {
					if ph != a.alonePhase {
						a.alonePhase = ph
						a.aloneIPS = k.alonePhaseIPS(ph)
					}
					aloneT += float64(insns) / a.aloneIPS
					cum += insns
				}
				done++
				if cum >= winLeft {
					break
				}
			}
			a.fracInsns, a.aloneT = fracInsns, aloneT
		}
	}
	return done, cum
}

// finish closes the trailing partial metrics window once the run is
// over. Split from runUntil so stepped execution closes it exactly once.
func (k *kernel) finish() {
	if k.collect && k.simTime > k.winStart {
		k.closeWindow(k.simTime)
	}
}
